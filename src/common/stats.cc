#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace skyrise::stats {

double Sum(const std::vector<double>& xs) {
  double s = 0;
  for (double x : xs) s += x;
  return s;
}

double Mean(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : Sum(xs) / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double acc = 0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double CoV(const std::vector<double>& xs) {
  const double m = Mean(xs);
  return m == 0.0 ? 0.0 : 100.0 * StdDev(xs) / m;
}

double Median(std::vector<double> xs) { return Percentile(std::move(xs), 50.0); }

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double Min(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

std::vector<double> PolyFit(const std::vector<double>& xs,
                            const std::vector<double>& ys, int degree) {
  SKYRISE_CHECK(xs.size() == ys.size());
  SKYRISE_CHECK(degree >= 0);
  const int n = degree + 1;
  // Normal equations A^T A c = A^T y solved by Gaussian elimination with
  // partial pivoting. Fine for the low degrees used in experiment fits.
  std::vector<std::vector<double>> m(n, std::vector<double>(n + 1, 0.0));
  for (size_t k = 0; k < xs.size(); ++k) {
    double xi = 1.0;
    std::vector<double> powers(2 * n - 1);
    for (int i = 0; i < 2 * n - 1; ++i) {
      powers[i] = xi;
      xi *= xs[k];
    }
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) m[r][c] += powers[r + c];
      m[r][n] += powers[r] * ys[k];
    }
  }
  for (int col = 0; col < n; ++col) {
    int pivot = col;
    for (int r = col + 1; r < n; ++r) {
      if (std::fabs(m[r][col]) > std::fabs(m[pivot][col])) pivot = r;
    }
    std::swap(m[col], m[pivot]);
    if (std::fabs(m[col][col]) < 1e-12) continue;  // Degenerate; leave zero.
    for (int r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = m[r][col] / m[col][col];
      for (int c = col; c <= n; ++c) m[r][c] -= f * m[col][c];
    }
  }
  std::vector<double> coeffs(n, 0.0);
  for (int r = 0; r < n; ++r) {
    coeffs[r] = std::fabs(m[r][r]) < 1e-12 ? 0.0 : m[r][n] / m[r][r];
  }
  return coeffs;
}

double PolyEval(const std::vector<double>& coeffs, double x) {
  double acc = 0;
  for (size_t i = coeffs.size(); i-- > 0;) acc = acc * x + coeffs[i];
  return acc;
}

}  // namespace skyrise::stats
