#pragma once

#include <sstream>
#include <string>

/// \file logging.h
/// Minimal leveled logging to stderr. Simulation-heavy code keeps logging off
/// the hot path; the default level is kWarning so test output stays clean.

namespace skyrise {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

#define SKYRISE_LOG(level)                                             \
  if (static_cast<int>(::skyrise::LogLevel::level) <                   \
      static_cast<int>(::skyrise::GetLogLevel())) {                    \
  } else                                                               \
    ::skyrise::internal::LogMessage(::skyrise::LogLevel::level,        \
                                    __FILE__, __LINE__)                \
        .stream()

}  // namespace skyrise
