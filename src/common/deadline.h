#pragma once

#include <algorithm>
#include <limits>

#include "common/units.h"

/// \file deadline.h
/// Absolute end-to-end deadline carried down the request path (query ->
/// invoke -> storage request -> backoff wait). A deadline is a point on the
/// simulation clock, not a duration: every layer that waits or retries
/// clamps its own timers against `Remaining(now)` so the cumulative work a
/// request triggers can never outlive the caller that asked for it (the
/// retry-amplification fix: max_attempts × backoff_cap used to dwarf any
/// caller's useful lifetime). Default-constructed deadlines are unbounded,
/// which keeps every existing call site byte-for-byte unchanged until a
/// bounded deadline is explicitly threaded in.

namespace skyrise {

class Deadline {
 public:
  /// Unbounded: never expires, never clamps.
  constexpr Deadline() = default;

  /// Deadline at the absolute simulation time `at`. `at <= 0` means
  /// unbounded (the natural encoding for "deadline_us" payload fields,
  /// where 0/absent means no deadline was propagated).
  static constexpr Deadline At(SimTime at) { return Deadline(at); }

  /// Deadline `after` from `now` (<= 0 duration means unbounded).
  static constexpr Deadline After(SimTime now, SimDuration after) {
    return after <= 0 ? Deadline() : Deadline(now + after);
  }

  constexpr bool bounded() const { return at_ != kUnbounded; }
  /// Absolute expiry, or 0 when unbounded (payload encoding).
  constexpr SimTime at_or_zero() const { return bounded() ? at_ : 0; }

  constexpr bool Expired(SimTime now) const {
    return bounded() && now >= at_;
  }

  /// Time left before expiry; never negative. Unbounded deadlines report
  /// the maximum representable duration.
  constexpr SimDuration Remaining(SimTime now) const {
    if (!bounded()) return kUnbounded;
    return at_ > now ? at_ - now : 0;
  }

  /// Clamps a proposed wait/timeout to the remaining lifetime.
  constexpr SimDuration Clamp(SimTime now, SimDuration duration) const {
    return std::min(duration, Remaining(now));
  }

  /// The tighter of two deadlines.
  constexpr Deadline Earliest(Deadline other) const {
    return at_ <= other.at_ ? *this : other;
  }

  constexpr bool operator==(const Deadline& other) const {
    return at_ == other.at_;
  }

 private:
  static constexpr SimTime kUnbounded = std::numeric_limits<SimTime>::max();

  explicit constexpr Deadline(SimTime at)
      : at_(at <= 0 ? kUnbounded : at) {}

  SimTime at_ = kUnbounded;
};

}  // namespace skyrise
