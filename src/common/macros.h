#pragma once

/// \file macros.h
/// Common preprocessor macros used throughout the Skyrise codebase.

#define SKYRISE_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;              \
  TypeName& operator=(const TypeName&) = delete

#define SKYRISE_CONCAT_IMPL(x, y) x##y
#define SKYRISE_CONCAT(x, y) SKYRISE_CONCAT_IMPL(x, y)

/// Propagates a non-OK Status from an expression returning `Status`.
#define SKYRISE_RETURN_IF_ERROR(expr)               \
  do {                                              \
    ::skyrise::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                      \
  } while (false)

/// Evaluates an expression returning `Result<T>`; on success assigns the value
/// to `lhs`, otherwise returns the error Status from the enclosing function.
#define SKYRISE_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                  \
  if (!result_name.ok()) return result_name.status();          \
  lhs = std::move(result_name).ValueUnsafe()

#define SKYRISE_ASSIGN_OR_RETURN(lhs, rexpr) \
  SKYRISE_ASSIGN_OR_RETURN_IMPL(SKYRISE_CONCAT(_result_, __LINE__), lhs, rexpr)

/// Aborts the process when `condition` does not hold. Used for internal
/// invariants that indicate programmer error rather than runtime failures.
#define SKYRISE_CHECK(condition)                                             \
  do {                                                                       \
    if (!(condition)) {                                                      \
      ::skyrise::internal::CheckFailed(__FILE__, __LINE__, #condition);      \
    }                                                                        \
  } while (false)

#define SKYRISE_CHECK_OK(expr)                                               \
  do {                                                                       \
    ::skyrise::Status _st = (expr);                                          \
    if (!_st.ok()) {                                                         \
      ::skyrise::internal::CheckFailed(__FILE__, __LINE__,                   \
                                       _st.ToString().c_str());              \
    }                                                                        \
  } while (false)

namespace skyrise::internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* message);
}  // namespace skyrise::internal
