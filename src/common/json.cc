#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/macros.h"
#include "common/string_util.h"

namespace skyrise {

Json::Json(JsonArray a)
    : type_(Type::kArray), array_(std::make_shared<JsonArray>(std::move(a))) {}
Json::Json(JsonObject o)
    : type_(Type::kObject),
      object_(std::make_shared<JsonObject>(std::move(o))) {}

bool Json::AsBool() const {
  SKYRISE_CHECK(is_bool());
  return bool_;
}
double Json::AsDouble() const {
  SKYRISE_CHECK(is_number());
  return number_;
}
int64_t Json::AsInt() const {
  SKYRISE_CHECK(is_number());
  return static_cast<int64_t>(std::llround(number_));
}
const std::string& Json::AsString() const {
  SKYRISE_CHECK(is_string());
  return string_;
}
const JsonArray& Json::AsArray() const {
  SKYRISE_CHECK(is_array());
  return *array_;
}
JsonArray& Json::AsArray() {
  SKYRISE_CHECK(is_array());
  return *array_;
}
const JsonObject& Json::AsObject() const {
  SKYRISE_CHECK(is_object());
  return *object_;
}
JsonObject& Json::AsObject() {
  SKYRISE_CHECK(is_object());
  return *object_;
}

const Json& Json::Get(const std::string& key) const {
  static const Json kNull;
  if (!is_object()) return kNull;
  auto it = object_->find(key);
  return it == object_->end() ? kNull : it->second;
}

bool Json::Has(const std::string& key) const {
  return is_object() && object_->count(key) > 0;
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) {
    type_ = Type::kObject;
    object_ = std::make_shared<JsonObject>();
  }
  SKYRISE_CHECK(is_object());
  return (*object_)[key];
}

int64_t Json::GetInt(const std::string& key, int64_t def) const {
  const Json& v = Get(key);
  return v.is_number() ? v.AsInt() : def;
}
double Json::GetDouble(const std::string& key, double def) const {
  const Json& v = Get(key);
  return v.is_number() ? v.AsDouble() : def;
}
std::string Json::GetString(const std::string& key,
                            const std::string& def) const {
  const Json& v = Get(key);
  return v.is_string() ? v.AsString() : def;
}
bool Json::GetBool(const std::string& key, bool def) const {
  const Json& v = Get(key);
  return v.is_bool() ? v.AsBool() : def;
}

void Json::Append(Json value) {
  if (is_null()) {
    type_ = Type::kArray;
    array_ = std::make_shared<JsonArray>();
  }
  SKYRISE_CHECK(is_array());
  array_->push_back(std::move(value));
}

size_t Json::size() const {
  if (is_array()) return array_->size();
  if (is_object()) return object_->size();
  return 0;
}

namespace {

void EscapeString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double n, std::string* out) {
  if (std::isfinite(n) && n == std::floor(n) && std::fabs(n) < 1e15) {
    *out += StrFormat("%lld", static_cast<long long>(n));
  } else {
    *out += StrFormat("%.17g", n);
  }
}

void Indent(std::string* out, int indent, int depth) {
  if (indent < 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(number_, out);
      break;
    case Type::kString:
      EscapeString(string_, out);
      break;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& v : *array_) {
        if (!first) out->push_back(',');
        first = false;
        Indent(out, indent, depth + 1);
        v.DumpTo(out, indent, depth + 1);
      }
      if (!array_->empty()) Indent(out, indent, depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : *object_) {
        if (!first) out->push_back(',');
        first = false;
        Indent(out, indent, depth + 1);
        EscapeString(k, out);
        out->push_back(':');
        if (indent >= 0) out->push_back(' ');
        v.DumpTo(out, indent, depth + 1);
      }
      if (!object_->empty()) Indent(out, indent, depth);
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return *array_ == *other.array_;
    case Type::kObject:
      return *object_ == *other.object_;
  }
  return false;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> Parse() {
    SkipWhitespace();
    auto value = ParseValue();
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at offset %zu: %s", pos_, what.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        auto s = ParseString();
        if (!s.ok()) return s.status();
        return Json(std::move(s).ValueUnsafe());
      }
      case 't':
        return ParseLiteral("true", Json(true));
      case 'f':
        return ParseLiteral("false", Json(false));
      case 'n':
        return ParseLiteral("null", Json());
      default:
        return ParseNumber();
    }
  }

  Result<Json> ParseLiteral(const char* lit, Json value) {
    const size_t len = std::string(lit).size();
    if (text_.compare(pos_, len, lit) != 0) return Fail("invalid literal");
    pos_ += len;
    return value;
  }

  Result<Json> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("invalid number");
    char* end = nullptr;
    const double v = std::strtod(text_.c_str() + start, &end);
    if (end != text_.c_str() + pos_) return Fail("invalid number");
    return Json(v);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Fail("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
            unsigned int code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("bad \\u escape");
              }
            }
            // Encode as UTF-8 (BMP only; adequate for our plan/result files).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Fail("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  Result<Json> ParseArray() {
    Consume('[');
    Json arr = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    while (true) {
      SkipWhitespace();
      auto v = ParseValue();
      if (!v.ok()) return v;
      arr.Append(std::move(v).ValueUnsafe());
      SkipWhitespace();
      if (Consume(']')) return arr;
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
  }

  Result<Json> ParseObject() {
    Consume('{');
    Json obj = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    while (true) {
      SkipWhitespace();
      auto key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':'");
      SkipWhitespace();
      auto v = ParseValue();
      if (!v.ok()) return v;
      obj[std::move(key).ValueUnsafe()] = std::move(v).ValueUnsafe();
      SkipWhitespace();
      if (Consume('}')) return obj;
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace skyrise
