#include "common/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/string_util.h"

namespace skyrise {

namespace {
// We bucket values by (exponent, mantissa-slice). Values below 1.0 go into a
// dedicated linear region scaled by 2^-32 to retain sub-unit resolution.
constexpr int kExponentRange = 96;  // Covers 2^-32 .. 2^64.
constexpr int kExponentBias = 32;
}  // namespace

Histogram::Histogram(int significant_digits) {
  SKYRISE_CHECK(significant_digits >= 1 && significant_digits <= 3);
  // ~3.3 bits per decimal digit of relative precision.
  sub_bucket_bits_ = significant_digits * 4;
  buckets_.assign(static_cast<size_t>(kExponentRange) << sub_bucket_bits_, 0);
}

size_t Histogram::BucketIndex(double value) const {
  if (value <= 0) return 0;
  int exp = 0;
  const double mant = std::frexp(value, &exp);  // mant in [0.5, 1).
  int e = exp + kExponentBias - 1;
  e = std::clamp(e, 0, kExponentRange - 1);
  const int sub_buckets = 1 << sub_bucket_bits_;
  int sub = static_cast<int>((mant - 0.5) * 2.0 * sub_buckets);
  sub = std::clamp(sub, 0, sub_buckets - 1);
  return (static_cast<size_t>(e) << sub_bucket_bits_) + static_cast<size_t>(sub);
}

double Histogram::BucketMid(size_t index) const {
  const int sub_buckets = 1 << sub_bucket_bits_;
  const int e = static_cast<int>(index >> sub_bucket_bits_) - kExponentBias + 1;
  const int sub = static_cast<int>(index & (sub_buckets - 1));
  const double mant = 0.5 + (sub + 0.5) / (2.0 * sub_buckets);
  return std::ldexp(mant, e);
}

void Histogram::Record(double value) { RecordN(value, 1); }

void Histogram::RecordN(double value, int64_t count) {
  if (count <= 0) return;
  buckets_[BucketIndex(value)] += count;
  count_ += count;
  sum_ += value * count;
  sum_sq_ += value * value * count;
  if (!has_values_) {
    min_ = max_ = value;
    has_values_ = true;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
}

double Histogram::min() const { return has_values_ ? min_ : 0.0; }

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  const double target = std::clamp(p, 0.0, 100.0) / 100.0 *
                        static_cast<double>(count_);
  int64_t acc = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    acc += buckets_[i];
    if (static_cast<double>(acc) >= target && buckets_[i] > 0) {
      // Clamp bucket midpoint to the true observed range.
      return std::clamp(BucketMid(i), min_, max_);
    }
  }
  return max_;
}

double Histogram::StdDev() const {
  if (count_ < 2) return 0.0;
  const double mean = sum_ / count_;
  const double var = std::max(0.0, sum_sq_ / count_ - mean * mean);
  return std::sqrt(var);
}

double Histogram::CoV() const {
  const double m = mean();
  return m == 0.0 ? 0.0 : 100.0 * StdDev() / m;
}

void Histogram::Merge(const Histogram& other) {
  SKYRISE_CHECK(sub_bucket_bits_ == other.sub_bucket_bits_);
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  if (other.has_values_) {
    if (!has_values_) {
      min_ = other.min_;
      max_ = other.max_;
      has_values_ = true;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = sum_sq_ = 0;
  min_ = max_ = 0;
  has_values_ = false;
}

std::string Histogram::Summary(const std::string& unit) const {
  const char* u = unit.c_str();
  return StrFormat(
      "n=%lld mean=%.3f%s p50=%.3f%s p95=%.3f%s p99=%.3f%s max=%.3f%s",
      static_cast<long long>(count_), mean(), u, Percentile(50), u,
      Percentile(95), u, Percentile(99), u, max(), u);
}

}  // namespace skyrise
