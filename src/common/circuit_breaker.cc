#include "common/circuit_breaker.h"

namespace skyrise {

CircuitBreaker::CircuitBreaker(const Options& options) : opt_(options) {}

int CircuitBreaker::AddObserver(TransitionCallback callback) {
  const int handle = next_observer_handle_++;
  observers_[handle] = std::move(callback);
  return handle;
}

void CircuitBreaker::RemoveObserver(int handle) { observers_.erase(handle); }

void CircuitBreaker::set_on_transition(TransitionCallback callback) {
  if (callback) {
    observers_[0] = std::move(callback);
  } else {
    observers_.erase(0);
  }
}

const char* CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

double CircuitBreaker::FailureRate() const {
  if (window_.empty()) return 0;
  return static_cast<double>(window_failures_) /
         static_cast<double>(window_.size());
}

void CircuitBreaker::TransitionTo(State next, SimTime now) {
  if (next == state_) return;
  const State from = state_;
  state_ = next;
  switch (next) {
    case State::kOpen:
      ++stats_.opened;
      opened_at_ = now;
      break;
    case State::kHalfOpen:
      probes_in_flight_ = 0;
      probe_successes_ = 0;
      break;
    case State::kClosed:
      ++stats_.closed;
      window_.clear();
      window_failures_ = 0;
      break;
  }
  for (const auto& [handle, callback] : observers_) {
    if (callback) callback(from, next, now);
  }
}

bool CircuitBreaker::Allow(SimTime now) {
  if (state_ == State::kOpen) {
    if (now - opened_at_ < opt_.cooldown) {
      ++stats_.rejected;
      return false;
    }
    TransitionTo(State::kHalfOpen, now);
  }
  if (state_ == State::kHalfOpen) {
    if (probes_in_flight_ >= opt_.half_open_probes) {
      ++stats_.rejected;
      return false;
    }
    ++probes_in_flight_;
    return true;
  }
  return true;
}

void CircuitBreaker::RecordOutcome(bool failure, SimTime now) {
  window_.push_back(failure);
  if (failure) ++window_failures_;
  while (static_cast<int>(window_.size()) > opt_.window) {
    if (window_.front()) --window_failures_;
    window_.pop_front();
  }
  if (static_cast<int>(window_.size()) >= opt_.min_samples &&
      FailureRate() >= opt_.failure_threshold) {
    TransitionTo(State::kOpen, now);
  }
}

void CircuitBreaker::RecordSuccess(SimTime now) {
  ++stats_.successes;
  switch (state_) {
    case State::kClosed:
      RecordOutcome(/*failure=*/false, now);
      break;
    case State::kHalfOpen:
      if (probes_in_flight_ > 0) --probes_in_flight_;
      if (++probe_successes_ >= opt_.half_open_probes) {
        TransitionTo(State::kClosed, now);
      }
      break;
    case State::kOpen:
      // Late result from before the trip; the cooldown clock decides.
      break;
  }
}

void CircuitBreaker::RecordFailure(SimTime now) {
  ++stats_.failures;
  switch (state_) {
    case State::kClosed:
      RecordOutcome(/*failure=*/true, now);
      break;
    case State::kHalfOpen:
      // A failed probe re-opens for another full cooldown.
      TransitionTo(State::kOpen, now);
      break;
    case State::kOpen:
      break;
  }
}

SimDuration CircuitBreaker::RetryAfter(SimTime now) const {
  if (state_ != State::kOpen) return 0;
  const SimTime reopen = opened_at_ + opt_.cooldown;
  return reopen > now ? reopen - now : 0;
}

}  // namespace skyrise
