#include "common/random.h"

#include <cstring>

#include "common/macros.h"

namespace skyrise {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

/// splitmix64 — used to expand seeds into full state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

Rng Rng::Fork(uint64_t stream_id) const {
  // Mix the current state with the stream id through splitmix.
  uint64_t sm = s_[0] ^ Rotl(s_[2], 17) ^ (stream_id * 0xD1B54A32D192ED03ULL);
  Rng child(SplitMix64(&sm));
  return child;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SKYRISE_CHECK(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextUint64());  // Full range.
  // Lemire's nearly-divisionless bounded sampling (single multiply; the bias
  // at 64-bit scale is negligible for simulation purposes).
  const uint64_t x = NextUint64();
  const unsigned __int128 m = static_cast<unsigned __int128>(x) * range;
  return lo + static_cast<int64_t>(static_cast<uint64_t>(m >> 64));
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Exponential(double mean) {
  double u = NextDouble();
  if (u >= 1.0) u = 0.9999999999999999;
  return -mean * std::log1p(-u);
}

double Rng::Normal(double mean, double stddev) {
  // Box-Muller; draws two uniforms per call for statelessness.
  double u1 = NextDouble();
  const double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 1e-300;
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

double Rng::Lognormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

double Rng::Pareto(double scale, double alpha) {
  double u = NextDouble();
  if (u >= 1.0) u = 0.9999999999999999;
  return scale / std::pow(1.0 - u, 1.0 / alpha);
}

int64_t Rng::Zipf(int64_t n, double s) {
  SKYRISE_CHECK(n > 0);
  if (s <= 0.0) return UniformInt(0, n - 1);
  // Inverse-CDF on the generalized harmonic number via rejection-free
  // approximation (adequate for workload skew modelling).
  const double h = [&] {
    double sum = 0;
    for (int64_t k = 1; k <= n; ++k) sum += 1.0 / std::pow(k, s);
    return sum;
  }();
  const double u = NextDouble() * h;
  double acc = 0;
  for (int64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(k, s);
    if (acc >= u) return k - 1;
  }
  return n - 1;
}

void Rng::FillBytes(uint8_t* out, size_t n) {
  size_t i = 0;
  while (i + 8 <= n) {
    const uint64_t v = NextUint64();
    std::memcpy(out + i, &v, 8);
    i += 8;
  }
  if (i < n) {
    const uint64_t v = NextUint64();
    std::memcpy(out + i, &v, n - i);
  }
}

}  // namespace skyrise
