#pragma once

#include <memory>
#include <string>
#include <utility>

/// \file status.h
/// Arrow/RocksDB-style error propagation. Library code never throws across
/// module boundaries; fallible functions return `Status` or `Result<T>`.

namespace skyrise {

enum class StatusCode : char {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,   ///< Quota exceeded / throttled (e.g., S3 SlowDown).
  kDeadlineExceeded,    ///< Request timed out.
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kIoError,
  kCancelled,
};

/// Returned by fallible operations. Cheap to pass around: the OK state is a
/// null pointer, errors carry a heap-allocated code + message.
///
/// Marked [[nodiscard]] so dropping a fallible call's Status on the floor is a
/// compile error under -Werror=unused-result (see tools/skyrise_check for the
/// matching lint rule).
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message);

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  [[nodiscard]] static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const;

  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }

  /// True for transient failures that a retrying client should re-attempt.
  bool IsRetriable() const {
    return IsResourceExhausted() || IsDeadlineExceeded() ||
           code() == StatusCode::kIoError;
  }

  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const State> state_;  ///< Null when OK.
};

const char* StatusCodeToString(StatusCode code);

}  // namespace skyrise
