#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

/// \file json.h
/// Minimal JSON document model with parser and serializer. Used for physical
/// query plans (coordinator protocol) and experiment result files, matching
/// the paper's JSON-based interfaces.

namespace skyrise {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}            // NOLINT
  Json(double n) : type_(Type::kNumber), number_(n) {}      // NOLINT
  Json(int n) : Json(static_cast<double>(n)) {}             // NOLINT
  Json(int64_t n) : Json(static_cast<double>(n)) {}         // NOLINT
  Json(uint64_t n) : Json(static_cast<double>(n)) {}        // NOLINT
  Json(const char* s) : type_(Type::kString), string_(s) {} // NOLINT
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Json(JsonArray a);   // NOLINT
  Json(JsonObject o);  // NOLINT

  static Json Array() { return Json(JsonArray{}); }
  static Json Object() { return Json(JsonObject{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const;
  double AsDouble() const;
  int64_t AsInt() const;
  const std::string& AsString() const;
  const JsonArray& AsArray() const;
  JsonArray& AsArray();
  const JsonObject& AsObject() const;
  JsonObject& AsObject();

  /// Object access. `Get` returns null JSON for a missing key.
  const Json& Get(const std::string& key) const;
  bool Has(const std::string& key) const;
  Json& operator[](const std::string& key);

  /// Typed object accessors with defaults for optional fields.
  int64_t GetInt(const std::string& key, int64_t def = 0) const;
  double GetDouble(const std::string& key, double def = 0.0) const;
  std::string GetString(const std::string& key,
                        const std::string& def = "") const;
  bool GetBool(const std::string& key, bool def = false) const;

  /// Array append.
  void Append(Json value);
  size_t size() const;

  /// Serializes; `indent` < 0 produces compact output.
  std::string Dump(int indent = -1) const;

  /// Parses a JSON document.
  [[nodiscard]] static Result<Json> Parse(const std::string& text);

  bool operator==(const Json& other) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

}  // namespace skyrise
