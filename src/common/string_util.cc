#include "common/string_util.h"

#include <cstdio>

#include "common/units.h"

namespace skyrise {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(const std::string& s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatBytes(int64_t bytes) {
  const double b = static_cast<double>(bytes);
  if (bytes >= kTiB) return StrFormat("%.2f TiB", b / kTiB);
  if (bytes >= kGiB) return StrFormat("%.2f GiB", b / kGiB);
  if (bytes >= kMiB) return StrFormat("%.2f MiB", b / kMiB);
  if (bytes >= kKiB) return StrFormat("%.2f KiB", b / kKiB);
  return StrFormat("%ld B", static_cast<long>(bytes));
}

std::string FormatDuration(SimDuration d) {
  if (d >= kDay) return StrFormat("%.1f d", static_cast<double>(d) / kDay);
  if (d >= kHour) return StrFormat("%.1f h", static_cast<double>(d) / kHour);
  if (d >= kMinute) {
    return StrFormat("%.1f min", static_cast<double>(d) / kMinute);
  }
  if (d >= kSecond) return StrFormat("%.2f s", ToSeconds(d));
  if (d >= kMillisecond) return StrFormat("%.2f ms", ToMillis(d));
  return StrFormat("%ld us", static_cast<long>(d));
}

}  // namespace skyrise
