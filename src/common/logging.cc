#include "common/logging.h"

#include <cstdio>

namespace skyrise {

namespace {
// Diagnostics-only: the log threshold gates stderr output and is never read
// by simulation logic, so it cannot perturb replay or a parallel run.
// skyrise-check: allow(shared-mutable-state)
LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal

}  // namespace skyrise
