#pragma once

#include <vector>

/// \file stats.h
/// Exact summary statistics over small-to-medium sample vectors, used for
/// experiment reporting (median ratios, coefficients of variation, fits).

namespace skyrise::stats {

double Sum(const std::vector<double>& xs);
double Mean(const std::vector<double>& xs);
/// Sample standard deviation (n-1 denominator); 0 for n < 2.
double StdDev(const std::vector<double>& xs);
/// Coefficient of variation in percent: 100 * stddev / mean.
double CoV(const std::vector<double>& xs);
/// Exact median (average of middle two for even n).
double Median(std::vector<double> xs);
/// Exact percentile p in [0,100] with linear interpolation.
double Percentile(std::vector<double> xs, double p);
double Min(const std::vector<double>& xs);
double Max(const std::vector<double>& xs);

/// Least-squares polynomial fit of given degree; returns coefficients
/// c[0] + c[1] x + ... + c[degree] x^degree. Used for the Fig. 12
/// time/cost extrapolation.
std::vector<double> PolyFit(const std::vector<double>& xs,
                            const std::vector<double>& ys, int degree);
/// Evaluates a polynomial (coefficients low-order first) at x.
double PolyEval(const std::vector<double>& coeffs, double x);

}  // namespace skyrise::stats
