#pragma once

#include <cstdint>

/// \file retry_budget.h
/// Shared per-query retry token pool (the classic "retry budget" from
/// SRE-style overload design): the first attempt of any request is free,
/// every retry — storage re-request, worker re-invocation, speculative
/// duplicate — must acquire a token from the query's single pool, and each
/// success refunds a small fraction (10-20%). Under a fault storm the pool
/// drains and the query degrades or fails typed instead of multiplying
/// load layer by layer: total retries across *all* layers are conserved at
/// `initial_tokens + refunds`, which is exactly the invariant the
/// chaos-sweep harness pins.
///
/// Deterministic by construction (plain arithmetic, no clock, no RNG), so
/// chaos runs with a fixed seed drain the budget identically every time.

namespace skyrise {

class RetryBudget {
 public:
  struct Options {
    /// Tokens available at query start; one retry consumes one token.
    double initial_tokens = 32;
    /// Fraction of a token returned per successful request, capped so the
    /// pool never exceeds its initial size (a long healthy run cannot bank
    /// unlimited retry capacity for a later storm).
    double refund_per_success = 0.15;
  };

  struct Stats {
    int64_t acquired = 0;  ///< Retries granted.
    int64_t denied = 0;    ///< Retries refused (pool empty).
    double refunded = 0;   ///< Tokens returned by successes.
  };

  RetryBudget() : RetryBudget(Options()) {}
  explicit RetryBudget(const Options& options);

  /// Takes one token for a retry attempt. False (and nothing is consumed)
  /// when less than one whole token remains.
  [[nodiscard]] bool TryAcquire();

  /// Refunds `refund_per_success` tokens, saturating at `initial_tokens`.
  void RecordSuccess();

  double tokens() const { return tokens_; }
  const Options& options() const { return opt_; }
  const Stats& stats() const { return stats_; }

 private:
  Options opt_;
  double tokens_ = 0;
  Stats stats_;
};

}  // namespace skyrise
