#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

/// \file random.h
/// Deterministic random number generation. Every simulation entity owns its
/// own `Rng` seeded from the experiment seed plus a stable stream id, so runs
/// are reproducible regardless of event interleavings.

namespace skyrise {

/// xoshiro256++ — fast, high-quality, 64-bit PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Derives an independent stream for entity `stream_id`.
  Rng Fork(uint64_t stream_id) const;

  uint64_t NextUint64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform real in [lo, hi).
  double Uniform(double lo, double hi);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Exponential with mean `mean`.
  double Exponential(double mean);

  /// Standard normal via Box-Muller (no state caching, deterministic).
  double Normal(double mean, double stddev);

  /// Lognormal parameterized by the underlying normal's mu/sigma.
  double Lognormal(double mu, double sigma);

  /// Lognormal parameterized by target median and sigma (mu = ln(median)).
  double LognormalMedianSigma(double median, double sigma) {
    return Lognormal(std::log(median), sigma);
  }

  /// Pareto with scale x_m and shape alpha (heavy tail for alpha small).
  double Pareto(double scale, double alpha);

  /// Zipf-distributed integer in [0, n) with skew s (s=0 → uniform).
  int64_t Zipf(int64_t n, double s);

  /// Fills `out` with random bytes (for synthetic payload generation).
  void FillBytes(uint8_t* out, size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace skyrise
