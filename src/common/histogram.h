#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file histogram.h
/// HDR-style log-bucketed histogram for latency/size distributions. Records
/// non-negative values with bounded relative error and answers percentile
/// queries over millions of samples in O(buckets).

namespace skyrise {

class Histogram {
 public:
  /// `significant_digits` controls relative precision (1-3 supported).
  explicit Histogram(int significant_digits = 2);

  void Record(double value);
  void RecordN(double value, int64_t count);

  int64_t count() const { return count_; }
  double min() const;
  double max() const { return max_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double sum() const { return sum_; }

  /// Value at percentile p in [0, 100].
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  /// Standard deviation of recorded values (approximate, bucket midpoints).
  double StdDev() const;
  /// Coefficient of variation in percent: 100 * stddev / mean.
  double CoV() const;

  void Merge(const Histogram& other);
  void Reset();

  /// One-line summary: count, mean, p50/p95/p99/max.
  std::string Summary(const std::string& unit = "") const;

 private:
  size_t BucketIndex(double value) const;
  double BucketMid(size_t index) const;

  int sub_bucket_bits_;        ///< log2 of sub-buckets per power of two.
  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  double sum_ = 0;
  double sum_sq_ = 0;
  double min_ = 0;
  double max_ = 0;
  bool has_values_ = false;
};

}  // namespace skyrise
