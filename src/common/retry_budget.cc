#include "common/retry_budget.h"

#include <algorithm>

namespace skyrise {

RetryBudget::RetryBudget(const Options& options)
    : opt_(options), tokens_(options.initial_tokens) {}

bool RetryBudget::TryAcquire() {
  if (tokens_ < 1.0) {
    ++stats_.denied;
    return false;
  }
  tokens_ -= 1.0;
  ++stats_.acquired;
  return true;
}

void RetryBudget::RecordSuccess() {
  const double refund =
      std::min(opt_.refund_per_success, opt_.initial_tokens - tokens_);
  if (refund <= 0) return;
  tokens_ += refund;
  stats_.refunded += refund;
}

}  // namespace skyrise
