#pragma once

#include <cstdint>
#include <string>

/// \file units.h
/// Byte-size and simulated-time units. Simulated time is an int64 count of
/// microseconds since simulation start; byte sizes are int64 byte counts.

namespace skyrise {

using SimTime = int64_t;      ///< Microseconds since simulation start.
using SimDuration = int64_t;  ///< Microseconds.

constexpr SimDuration kMicrosecond = 1;
constexpr SimDuration kMillisecond = 1000;
constexpr SimDuration kSecond = 1000 * kMillisecond;
constexpr SimDuration kMinute = 60 * kSecond;
constexpr SimDuration kHour = 60 * kMinute;
constexpr SimDuration kDay = 24 * kHour;

constexpr SimDuration Micros(double x) {
  return static_cast<SimDuration>(x * kMicrosecond);
}
constexpr SimDuration Millis(double x) {
  return static_cast<SimDuration>(x * kMillisecond);
}
constexpr SimDuration Seconds(double x) {
  return static_cast<SimDuration>(x * kSecond);
}
constexpr SimDuration Minutes(double x) {
  return static_cast<SimDuration>(x * kMinute);
}
constexpr SimDuration Hours(double x) { return static_cast<SimDuration>(x * kHour); }

constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / kSecond;
}
constexpr double ToMillis(SimDuration d) {
  return static_cast<double>(d) / kMillisecond;
}

constexpr int64_t kKiB = 1024;
constexpr int64_t kMiB = 1024 * kKiB;
constexpr int64_t kGiB = 1024 * kMiB;
constexpr int64_t kTiB = 1024 * kGiB;
constexpr int64_t kKB = 1000;
constexpr int64_t kMB = 1000 * kKB;
constexpr int64_t kGB = 1000 * kMB;

constexpr int64_t KiB(double x) { return static_cast<int64_t>(x * kKiB); }
constexpr int64_t MiB(double x) { return static_cast<int64_t>(x * kMiB); }
constexpr int64_t GiB(double x) { return static_cast<int64_t>(x * kGiB); }

constexpr double ToMiB(int64_t bytes) {
  return static_cast<double>(bytes) / kMiB;
}
constexpr double ToGiB(int64_t bytes) {
  return static_cast<double>(bytes) / kGiB;
}

/// Converts a byte count and a duration into a rate in GiB/s.
constexpr double GiBPerSecond(int64_t bytes, SimDuration d) {
  return d == 0 ? 0.0 : ToGiB(bytes) / ToSeconds(d);
}
constexpr double MiBPerSecond(int64_t bytes, SimDuration d) {
  return d == 0 ? 0.0 : ToMiB(bytes) / ToSeconds(d);
}

/// Gbps (decimal, network convention) → bytes per second.
constexpr double GbpsToBytesPerSecond(double gbps) { return gbps * 1e9 / 8.0; }
/// Bytes per second → Gbps (decimal).
constexpr double BytesPerSecondToGbps(double bps) { return bps * 8.0 / 1e9; }

/// Human-readable byte size, e.g. "1.5 GiB".
std::string FormatBytes(int64_t bytes);
/// Human-readable duration, e.g. "2.5 s", "130 ms", "3.2 min".
std::string FormatDuration(SimDuration d);

}  // namespace skyrise
