#include "common/status.h"

#include <cstdio>
#include <cstdlib>

#include "common/macros.h"

namespace skyrise {

namespace internal {
void CheckFailed(const char* file, int line, const char* message) {
  std::fprintf(stderr, "SKYRISE_CHECK failed at %s:%d: %s\n", file, line,
               message);
  std::abort();
}
}  // namespace internal

Status::Status(StatusCode code, std::string message)
    : state_(std::make_shared<const State>(State{code, std::move(message)})) {}

const std::string& Status::message() const {
  static const std::string kEmpty;
  return state_ ? state_->message : kEmpty;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

}  // namespace skyrise
