#pragma once

#include <cstdarg>
#include <string>
#include <vector>

/// \file string_util.h
/// printf-style formatting and small string helpers (GCC 12 lacks
/// std::format, so we keep a minimal shim).

namespace skyrise {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Splits on a single character delimiter; keeps empty tokens.
std::vector<std::string> StrSplit(const std::string& s, char delim);

/// True when `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// Joins tokens with a separator.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

}  // namespace skyrise
