#pragma once

#include <utility>
#include <variant>

#include "common/macros.h"
#include "common/status.h"

/// \file result.h
/// `Result<T>` holds either a value of type T or a non-OK Status, mirroring
/// arrow::Result. Use with SKYRISE_ASSIGN_OR_RETURN.

namespace skyrise {

template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from an error status. Must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    SKYRISE_CHECK(!std::get<Status>(repr_).ok());
  }
  /// Constructs from a value.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the error status, or OK when a value is held.
  [[nodiscard]] Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    SKYRISE_CHECK(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    SKYRISE_CHECK(ok());
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    SKYRISE_CHECK(ok());
    return std::move(std::get<T>(repr_));
  }

  /// Moves the value out without checking; only call after ok().
  T ValueUnsafe() && { return std::move(std::get<T>(repr_)); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace skyrise
