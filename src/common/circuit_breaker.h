#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "common/units.h"

/// \file circuit_breaker.h
/// Deterministic per-service circuit breaker (closed -> open -> half-open)
/// for the storage and invoke paths. Outcomes feed a rolling window; when
/// the window's failure rate crosses the threshold the breaker opens and
/// sheds requests for a cooldown, after which a limited number of half-open
/// probes decide between closing again and re-opening. A pure state machine
/// over explicit `SimTime` arguments: no clock, no RNG, no dependency on
/// sim/ or obs/ — callers (which all live above common/) pass `env->now()`
/// in and observe transitions through the callback, so the same fault
/// sequence produces the same transition trace on every run.

namespace skyrise {

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Options {
    /// Diagnostic name ("storage", "invoke"); surfaces in obs markers and
    /// shed-error messages.
    std::string name = "breaker";
    /// Rolling outcome window the failure rate is computed over.
    int window = 20;
    /// Outcomes required in the window before the breaker may trip (a
    /// single early failure is not a 100% failure rate worth tripping on).
    int min_samples = 10;
    /// Failure fraction at or above which the breaker opens.
    double failure_threshold = 0.5;
    /// How long an open breaker sheds before allowing half-open probes.
    SimDuration cooldown = Seconds(5);
    /// Consecutive successful probes required to close from half-open; any
    /// probe failure re-opens for another cooldown.
    int half_open_probes = 3;
  };

  struct Stats {
    int64_t opened = 0;      ///< Transitions into kOpen.
    int64_t closed = 0;      ///< Transitions into kClosed (recoveries).
    int64_t rejected = 0;    ///< Allow() == false decisions.
    int64_t successes = 0;
    int64_t failures = 0;
  };

  using TransitionCallback =
      std::function<void(State from, State to, SimTime now)>;

  CircuitBreaker() : CircuitBreaker(Options()) {}
  explicit CircuitBreaker(const Options& options);

  /// May a request proceed at `now`? Open breakers reject until the
  /// cooldown elapses (then transition to half-open); half-open breakers
  /// admit at most `half_open_probes` concurrent probes.
  [[nodiscard]] bool Allow(SimTime now);

  void RecordSuccess(SimTime now);
  void RecordFailure(SimTime now);

  /// Wait suggested to shed callers: time until the cooldown admits probes
  /// again (0 when not open).
  SimDuration RetryAfter(SimTime now) const;

  State state() const { return state_; }
  double FailureRate() const;
  const Options& options() const { return opt_; }
  const Stats& stats() const { return stats_; }

  /// Registers an observer for state transitions (obs instants/metrics live
  /// above this layer). Multiple observers may be attached at once — each
  /// in-flight query registers its own — and fire in registration order.
  /// Returns a handle for RemoveObserver.
  int AddObserver(TransitionCallback callback);
  void RemoveObserver(int handle);

  /// Legacy single-observer accessor: replaces the previous callback set
  /// through this entry point (observers added via AddObserver are
  /// unaffected); pass nullptr to detach.
  void set_on_transition(TransitionCallback callback);

  /// True when `handle` is the oldest live observer registered via
  /// AddObserver (the legacy slot is excluded). Lets N per-query observers
  /// on a shared breaker elect exactly one emitter for per-transition
  /// counters that must not be multiplied by the in-flight query count.
  bool IsOldestObserver(int handle) const {
    auto it = observers_.lower_bound(1);
    return it != observers_.end() && it->first == handle;
  }

  static const char* StateName(State state);

 private:
  void TransitionTo(State next, SimTime now);
  void RecordOutcome(bool ok, SimTime now);

  Options opt_;
  State state_ = State::kClosed;
  std::deque<bool> window_;   ///< Rolling outcomes; true = failure.
  int window_failures_ = 0;
  SimTime opened_at_ = 0;
  int probes_in_flight_ = 0;
  int probe_successes_ = 0;
  Stats stats_;
  /// Observers keyed by handle; std::map so firing order is deterministic
  /// (registration order, since handles increase monotonically). Handle 0 is
  /// reserved for the legacy set_on_transition slot.
  std::map<int, TransitionCallback> observers_;
  int next_observer_handle_ = 1;
};

}  // namespace skyrise
