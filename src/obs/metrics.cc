#include "obs/metrics.h"

namespace skyrise::obs {

Json MetricsRegistry::ToJson() const {
  Json counters = Json::Object();
  for (const auto& [name, value] : counters_) counters[name] = value;
  Json histograms = Json::Object();
  for (const auto& [name, hist] : histograms_) {
    Json entry = Json::Object();
    entry["count"] = hist.count();
    entry["mean"] = hist.mean();
    entry["p50"] = hist.Percentile(50.0);
    entry["p95"] = hist.Percentile(95.0);
    entry["p99"] = hist.Percentile(99.0);
    entry["max"] = hist.max();
    histograms[name] = std::move(entry);
  }
  Json doc = Json::Object();
  doc["counters"] = std::move(counters);
  doc["histograms"] = std::move(histograms);
  return doc;
}

}  // namespace skyrise::obs
