#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "sim/environment.h"

/// \file trace.h
/// Span-based tracing on the simulated clock. Every layer of the stack
/// (faas invocation lifecycle, storage requests and retries, engine stage/
/// fragment execution) opens and closes spans against sim::SimEnvironment
/// time, so a trace is a pure function of (seed, configuration): two runs
/// with the same seed serialize to byte-identical JSON.
///
/// Spans form a tree via explicit parent ids (there is no ambient thread
/// context in an event-driven simulation; parent ids travel through
/// ClientContext / FunctionContext / invocation payloads). Each span carries
/// the exact USD cost the CostMeter charged while it was the attribution
/// target, so per-span costs reconcile against the meter totals.
///
/// Export is Chrome trace-event JSON ("X" complete slices plus "i" instant
/// markers), loadable in Perfetto / chrome://tracing. The schema is
/// documented field-by-field in DESIGN.md §10 and enforced by
/// tools/trace_check in CI.

namespace skyrise::obs {

/// Span handle. 0 (`kNoSpan`) means "no enclosing span"; every Tracer
/// method accepts it and degrades to a no-op (or, for cost attribution,
/// books into the "unattributed" bucket).
using SpanId = int64_t;
inline constexpr SpanId kNoSpan = 0;

struct Span {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  /// Display track (one Chrome-trace "process" per distinct name), e.g.
  /// "lambda", "storage/s3", "worker".
  std::string track;
  std::string name;
  /// Cost/metric bucket: "faas", "storage", "engine", ...
  std::string category;
  SimTime start = 0;
  SimTime end = -1;  ///< -1 while the span is open.
  bool instant = false;
  /// Exact sum of the CostMeter deltas attributed to this span.
  double cost_usd = 0;
  /// Final state: "ok", "error", "timeout", "throttle", "crash",
  /// "fail_fast"; empty while open.
  std::string outcome;
  /// Extra annotations (batch counts, peak memory, keys, byte counts...).
  Json args = Json::Object();

  SimDuration duration() const { return end < start ? 0 : end - start; }
};

class Tracer {
 public:
  explicit Tracer(sim::SimEnvironment* env) : env_(env) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span at the current simulated time. Ids are assigned from a
  /// per-tracer sequence, so identical runs produce identical ids.
  SpanId Begin(const std::string& track, const std::string& name,
               const std::string& category, SpanId parent = kNoSpan);

  /// Closes a span with outcome "ok". No-op for kNoSpan or a closed span.
  void End(SpanId id) { EndWith(id, "ok"); }
  void EndWith(SpanId id, const std::string& outcome);

  /// Records a zero-duration marker (throttle, injected fault, reap...).
  void Instant(const std::string& track, const std::string& name,
               const std::string& category, SpanId parent = kNoSpan);

  /// Attaches/overwrites an annotation on an open or closed span.
  void SetArg(SpanId id, const std::string& key, Json value);

  /// Attributes a CostMeter delta to `id`. The delta is also accumulated
  /// into the span's category bucket in call order, which makes
  /// `attributed_usd(bucket)` bitwise-equal to the corresponding meter
  /// total (same doubles added in the same order). kNoSpan books into the
  /// "unattributed" bucket.
  void AddCost(SpanId id, double usd);

  const std::vector<Span>& spans() const { return spans_; }
  /// nullptr for kNoSpan / unknown ids.
  const Span* Find(SpanId id) const;
  int64_t open_spans() const { return open_; }

  double attributed_usd(const std::string& bucket) const;
  /// Sum over all buckets (deterministic map order).
  double attributed_usd_total() const;
  const std::map<std::string, double>& cost_buckets() const {
    return cost_buckets_;
  }

  /// Structural invariants: every span closed, parents open before their
  /// children, and same-track children contained in their parent's
  /// interval (cross-track children may outlive their parent: a zombie
  /// worker keeps issuing storage requests after its execution span was
  /// settled by a timeout or an injected crash).
  [[nodiscard]] Status Validate() const;

  /// Chrome trace-event JSON document. Tracks become processes; overlapping
  /// subtrees within a track are spread over lanes (tids) greedily so
  /// "X" slices on one lane always nest. Open spans export with
  /// outcome "open" and a duration up to the current simulated time.
  Json ExportChromeTrace() const;
  std::string DumpChromeTrace() const { return ExportChromeTrace().Dump(); }
  [[nodiscard]] Status WriteChromeTrace(const std::string& path) const;

  void Reset();

 private:
  Span* FindMutable(SpanId id);

  sim::SimEnvironment* env_;
  std::vector<Span> spans_;  ///< Index i holds span id i+1.
  std::map<std::string, double> cost_buckets_;
  int64_t open_ = 0;
};

}  // namespace skyrise::obs
