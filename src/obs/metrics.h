#pragma once

#include <map>
#include <string>

#include "common/histogram.h"
#include "common/json.h"

/// \file metrics.h
/// Per-service metrics registry: named monotonic counters plus log-bucketed
/// latency histograms, keyed by dotted paths ("lambda.cold_starts",
/// "storage.s3.attempts", "worker.input_ms"). This is the single stats path
/// for platform- and engine-level observability numbers — layers publish
/// here instead of growing ad-hoc counter fields, and reports render from
/// here. Backed by std::map, so iteration order (and the JSON export) is
/// deterministic.

namespace skyrise::obs {

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Increments counter `name` by `delta` (creates it at 0 first).
  void Add(const std::string& name, int64_t delta = 1) {
    counters_[name] += delta;
  }
  /// Sets counter `name` to the max of its current value and `value`
  /// (high-water marks: peak memory, peak concurrency).
  void Max(const std::string& name, int64_t value) {
    int64_t& slot = counters_[name];
    if (value > slot) slot = value;
  }
  int64_t Counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  /// Records `value` into histogram `name` (creates it on first use).
  void Record(const std::string& name, double value) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, Histogram(2)).first;
    }
    it->second.Record(value);
  }
  const Histogram* Hist(const std::string& name) const {
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
  }

  const std::map<std::string, int64_t>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// {"counters": {name: value}, "histograms": {name: {count, mean, p50,
  /// p95, p99, max}}}, deterministically ordered.
  Json ToJson() const;

  void Reset() {
    counters_.clear();
    histograms_.clear();
  }

 private:
  std::map<std::string, int64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace skyrise::obs
