#include "obs/trace.h"

#include <algorithm>
#include <fstream>

#include "common/string_util.h"

namespace skyrise::obs {

SpanId Tracer::Begin(const std::string& track, const std::string& name,
                     const std::string& category, SpanId parent) {
  Span span;
  span.id = static_cast<SpanId>(spans_.size()) + 1;
  span.parent = parent;
  span.track = track;
  span.name = name;
  span.category = category;
  span.start = env_->now();
  spans_.push_back(std::move(span));
  ++open_;
  return spans_.back().id;
}

void Tracer::EndWith(SpanId id, const std::string& outcome) {
  Span* span = FindMutable(id);
  if (span == nullptr || span->end >= span->start) return;
  span->end = env_->now();
  span->outcome = outcome;
  --open_;
}

void Tracer::Instant(const std::string& track, const std::string& name,
                     const std::string& category, SpanId parent) {
  Span span;
  span.id = static_cast<SpanId>(spans_.size()) + 1;
  span.parent = parent;
  span.track = track;
  span.name = name;
  span.category = category;
  span.start = env_->now();
  span.end = span.start;
  span.instant = true;
  span.outcome = "ok";
  spans_.push_back(std::move(span));
}

void Tracer::SetArg(SpanId id, const std::string& key, Json value) {
  Span* span = FindMutable(id);
  if (span == nullptr) return;
  span->args[key] = std::move(value);
}

void Tracer::AddCost(SpanId id, double usd) {
  Span* span = FindMutable(id);
  if (span == nullptr) {
    cost_buckets_["unattributed"] += usd;
    return;
  }
  span->cost_usd += usd;
  cost_buckets_[span->category] += usd;
}

const Span* Tracer::Find(SpanId id) const {
  if (id <= 0 || id > static_cast<SpanId>(spans_.size())) return nullptr;
  return &spans_[static_cast<size_t>(id) - 1];
}

Span* Tracer::FindMutable(SpanId id) {
  if (id <= 0 || id > static_cast<SpanId>(spans_.size())) return nullptr;
  return &spans_[static_cast<size_t>(id) - 1];
}

double Tracer::attributed_usd(const std::string& bucket) const {
  auto it = cost_buckets_.find(bucket);
  return it == cost_buckets_.end() ? 0.0 : it->second;
}

double Tracer::attributed_usd_total() const {
  double total = 0;
  for (const auto& [bucket, usd] : cost_buckets_) total += usd;
  return total;
}

Status Tracer::Validate() const {
  for (const Span& span : spans_) {
    if (span.end < span.start) {
      return Status::Internal(StrFormat("span %lld (%s) never closed",
                                        static_cast<long long>(span.id),
                                        span.name.c_str()));
    }
    if (span.parent == kNoSpan) continue;
    const Span* parent = Find(span.parent);
    if (parent == nullptr || parent->id >= span.id) {
      return Status::Internal(StrFormat(
          "span %lld (%s) has invalid parent %lld",
          static_cast<long long>(span.id), span.name.c_str(),
          static_cast<long long>(span.parent)));
    }
    if (span.start < parent->start) {
      return Status::Internal(StrFormat(
          "span %lld (%s) starts before its parent %lld",
          static_cast<long long>(span.id), span.name.c_str(),
          static_cast<long long>(parent->id)));
    }
    if (!span.instant && span.track == parent->track &&
        span.end > parent->end) {
      return Status::Internal(StrFormat(
          "span %lld (%s) outlives same-track parent %lld (%s)",
          static_cast<long long>(span.id), span.name.c_str(),
          static_cast<long long>(parent->id), parent->name.c_str()));
    }
  }
  return Status::OK();
}

Json Tracer::ExportChromeTrace() const {
  const SimTime now = env_->now();
  // Track -> pid in first-appearance (span id) order.
  std::map<std::string, int> pid_of;
  std::vector<std::string> track_order;
  for (const Span& span : spans_) {
    if (pid_of.count(span.track) == 0) {
      pid_of[span.track] = static_cast<int>(track_order.size()) + 1;
      track_order.push_back(span.track);
    }
  }

  // Lane (tid) assignment: a span whose parent lives on another track (or
  // has no parent) roots a subtree; subtree roots are packed greedily into
  // the lowest free lane of their track, children inherit their parent's
  // lane. Same-track containment (see Validate) keeps lanes well-nested.
  std::vector<int> lane_of(spans_.size(), 0);
  std::map<std::string, std::vector<SimTime>> lane_busy_until;
  for (const Span& span : spans_) {
    const Span* parent = Find(span.parent);
    const SimTime effective_end = span.end < span.start ? now : span.end;
    if (parent != nullptr && parent->track == span.track) {
      lane_of[static_cast<size_t>(span.id) - 1] =
          lane_of[static_cast<size_t>(parent->id) - 1];
      continue;
    }
    std::vector<SimTime>& lanes = lane_busy_until[span.track];
    size_t lane = 0;
    while (lane < lanes.size() && lanes[lane] > span.start) ++lane;
    if (lane == lanes.size()) lanes.push_back(effective_end);
    lanes[lane] = std::max(lanes[lane], effective_end);
    lane_of[static_cast<size_t>(span.id) - 1] = static_cast<int>(lane);
  }

  Json events = Json::Array();
  // Metadata: name each process after its track, each lane after its index.
  for (const std::string& track : track_order) {
    Json meta = Json::Object();
    meta["ph"] = "M";
    meta["pid"] = pid_of[track];
    meta["name"] = "process_name";
    Json args = Json::Object();
    args["name"] = track;
    meta["args"] = std::move(args);
    events.Append(std::move(meta));
    const size_t lanes = lane_busy_until[track].size();
    for (size_t lane = 0; lane < std::max<size_t>(lanes, 1); ++lane) {
      Json thread = Json::Object();
      thread["ph"] = "M";
      thread["pid"] = pid_of[track];
      thread["tid"] = static_cast<int64_t>(lane);
      thread["name"] = "thread_name";
      Json targs = Json::Object();
      targs["name"] = StrFormat("lane %zu", lane);
      thread["args"] = std::move(targs);
      events.Append(std::move(thread));
    }
  }

  for (const Span& span : spans_) {
    Json event = Json::Object();
    event["pid"] = pid_of[span.track];
    event["tid"] =
        static_cast<int64_t>(lane_of[static_cast<size_t>(span.id) - 1]);
    event["name"] = span.name;
    event["cat"] = span.category;
    event["ts"] = span.start;
    Json args = span.args;
    args["span"] = span.id;
    args["parent"] = span.parent;
    if (span.instant) {
      event["ph"] = "i";
      event["s"] = "t";
    } else {
      event["ph"] = "X";
      event["dur"] = (span.end < span.start ? now : span.end) - span.start;
      args["cost_usd"] = span.cost_usd;
      args["outcome"] = span.outcome.empty() ? "open" : span.outcome;
    }
    event["args"] = std::move(args);
    events.Append(std::move(event));
  }

  Json metadata = Json::Object();
  metadata["clock"] = "sim_us";
  metadata["seed"] = static_cast<int64_t>(env_->seed());
  metadata["span_count"] = static_cast<int64_t>(spans_.size());
  Json buckets = Json::Object();
  for (const auto& [bucket, usd] : cost_buckets_) buckets[bucket] = usd;
  metadata["attributed_usd"] = std::move(buckets);

  Json doc = Json::Object();
  doc["displayTimeUnit"] = "ms";
  doc["metadata"] = std::move(metadata);
  doc["traceEvents"] = std::move(events);
  return doc;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path);
  if (!out.good()) return Status::IoError("cannot open " + path);
  out << DumpChromeTrace() << "\n";
  if (!out.good()) return Status::IoError("failed writing " + path);
  return Status::OK();
}

void Tracer::Reset() {
  spans_.clear();
  cost_buckets_.clear();
  open_ = 0;
}

}  // namespace skyrise::obs
