#include "data/types.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace skyrise::data {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
    case DataType::kDate:
      return "date";
  }
  return "?";
}

namespace {
// Days from civil date algorithm (Howard Hinnant), relative to 1970-01-01.
// constexpr so kTpchEpoch is compile-time initialized: callers in other
// translation units may run during their own static initialization.
constexpr int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}
constexpr int64_t kTpchEpoch = DaysFromCivil(1992, 1, 1);
}  // namespace

int32_t DaysSinceEpoch(int year, int month, int day) {
  return static_cast<int32_t>(DaysFromCivil(year, month, day) - kTpchEpoch);
}

std::string FormatDate(int32_t days_since_epoch) {
  // Invert DaysFromCivil.
  int64_t z = days_since_epoch + kTpchEpoch + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  return StrFormat("%04lld-%02u-%02u", static_cast<long long>(y + (m <= 2)),
                   m, d);
}

}  // namespace skyrise::data
