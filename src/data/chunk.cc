#include "data/chunk.h"

namespace skyrise::data {

void Column::AppendFrom(const Column& other, size_t row) {
  SKYRISE_CHECK(type_ == other.type_);
  switch (type_) {
    case DataType::kDouble:
      doubles_.push_back(other.doubles_[row]);
      break;
    case DataType::kString:
      strings_.push_back(other.strings_[row]);
      break;
    default:
      ints_.push_back(other.ints_[row]);
  }
}

Column Column::Filter(const std::vector<uint32_t>& selection) const {
  Column out(type_);
  switch (type_) {
    case DataType::kDouble:
      out.doubles_.reserve(selection.size());
      for (uint32_t i : selection) out.doubles_.push_back(doubles_[i]);
      break;
    case DataType::kString:
      out.strings_.reserve(selection.size());
      for (uint32_t i : selection) out.strings_.push_back(strings_[i]);
      break;
    default:
      out.ints_.reserve(selection.size());
      for (uint32_t i : selection) out.ints_.push_back(ints_[i]);
  }
  return out;
}

void Column::FilterInto(const std::vector<uint32_t>& selection,
                        Column* out) const {
  SKYRISE_CHECK(out != this && out->type_ == type_);
  const size_t n = selection.size();
  switch (type_) {
    case DataType::kDouble: {
      out->doubles_.resize(n);
      double* dst = out->doubles_.data();
      const double* src = doubles_.data();
      for (size_t i = 0; i < n; ++i) dst[i] = src[selection[i]];
      break;
    }
    case DataType::kString: {
      // resize + operator= (not clear + push_back) so surviving elements
      // keep their heap buffers across refills.
      out->strings_.resize(n);
      for (size_t i = 0; i < n; ++i) out->strings_[i] = strings_[selection[i]];
      break;
    }
    default: {
      out->ints_.resize(n);
      int64_t* dst = out->ints_.data();
      const int64_t* src = ints_.data();
      for (size_t i = 0; i < n; ++i) dst[i] = src[selection[i]];
    }
  }
}

Column Column::Slice(size_t offset, size_t count) const {
  SKYRISE_CHECK(offset + count <= size());
  Column out(type_);
  switch (type_) {
    case DataType::kDouble:
      out.doubles_.assign(doubles_.begin() + static_cast<ptrdiff_t>(offset),
                          doubles_.begin() +
                              static_cast<ptrdiff_t>(offset + count));
      break;
    case DataType::kString:
      out.strings_.assign(strings_.begin() + static_cast<ptrdiff_t>(offset),
                          strings_.begin() +
                              static_cast<ptrdiff_t>(offset + count));
      break;
    default:
      out.ints_.assign(ints_.begin() + static_cast<ptrdiff_t>(offset),
                       ints_.begin() + static_cast<ptrdiff_t>(offset + count));
  }
  return out;
}

void Column::SliceInto(size_t offset, size_t count, Column* out) const {
  SKYRISE_CHECK(out != this && out->type_ == type_);
  SKYRISE_CHECK(offset + count <= size());
  switch (type_) {
    case DataType::kDouble:
      out->doubles_.assign(doubles_.begin() + static_cast<ptrdiff_t>(offset),
                           doubles_.begin() +
                               static_cast<ptrdiff_t>(offset + count));
      break;
    case DataType::kString:
      // vector::assign copies into existing elements first, so string
      // buffers are recycled across morsels.
      out->strings_.assign(strings_.begin() + static_cast<ptrdiff_t>(offset),
                           strings_.begin() +
                               static_cast<ptrdiff_t>(offset + count));
      break;
    default:
      out->ints_.assign(ints_.begin() + static_cast<ptrdiff_t>(offset),
                        ints_.begin() +
                            static_cast<ptrdiff_t>(offset + count));
  }
}

void Column::Clear() {
  ints_.clear();
  doubles_.clear();
  strings_.clear();
}

void Column::Reset(DataType type) {
  type_ = type;
  Clear();
}

int64_t Column::CapacityBytes() const {
  int64_t bytes = static_cast<int64_t>(ints_.capacity()) * 8 +
                  static_cast<int64_t>(doubles_.capacity()) * 8 +
                  static_cast<int64_t>(strings_.capacity() *
                                       sizeof(std::string));
  for (const auto& s : strings_) bytes += static_cast<int64_t>(s.capacity());
  return bytes;
}

void Chunk::Append(const Chunk& other) {
  SKYRISE_CHECK(schema_ == other.schema_);
  if (is_synthetic() || other.is_synthetic()) {
    const int64_t total = rows() + other.rows();
    columns_.clear();
    synthetic_rows_ = total;
    return;
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    for (size_t r = 0; r < static_cast<size_t>(other.rows()); ++r) {
      columns_[c].AppendFrom(other.columns_[c], r);
    }
  }
}

Chunk Chunk::Slice(int64_t offset, int64_t count) const {
  SKYRISE_CHECK(offset >= 0 && count >= 0 && offset + count <= rows());
  if (is_synthetic()) return Synthetic(schema_, count);
  std::vector<Column> columns;
  columns.reserve(columns_.size());
  for (const auto& col : columns_) {
    columns.push_back(col.Slice(static_cast<size_t>(offset),
                                static_cast<size_t>(count)));
  }
  return Chunk(schema_, std::move(columns));
}

void Chunk::SliceInto(int64_t offset, int64_t count, Chunk* out) const {
  SKYRISE_CHECK(out != this);
  SKYRISE_CHECK(offset >= 0 && count >= 0 && offset + count <= rows());
  if (is_synthetic()) {
    *out = Synthetic(schema_, count);
    return;
  }
  out->PrepareFor(schema_);
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].SliceInto(static_cast<size_t>(offset),
                          static_cast<size_t>(count), &out->columns_[c]);
  }
}

void Chunk::PrepareFor(const Schema& schema) {
  synthetic_rows_ = -1;
  if (columns_.size() > schema.size()) {
    columns_.erase(columns_.begin() + static_cast<ptrdiff_t>(schema.size()),
                   columns_.end());
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].type() != schema.field(i).type) {
      columns_[i].Reset(schema.field(i).type);
    }
  }
  while (columns_.size() < schema.size()) {
    columns_.emplace_back(schema.field(columns_.size()).type);
  }
  schema_ = schema;
}

void Chunk::ResetTo(const Schema& schema) {
  PrepareFor(schema);
  for (auto& column : columns_) column.Clear();
}

int64_t Chunk::CapacityBytes() const {
  int64_t bytes = 0;
  for (const auto& column : columns_) bytes += column.CapacityBytes();
  return bytes;
}

int64_t Chunk::ByteSize() const {
  int64_t per_row = 0;
  for (const auto& f : schema_.fields()) {
    switch (f.type) {
      case DataType::kString:
        per_row += 12;  // Typical short TPC string + length.
        break;
      default:
        per_row += 8;
    }
  }
  if (is_synthetic()) return rows() * per_row;
  int64_t bytes = 0;
  for (const auto& col : columns_) {
    switch (col.type()) {
      case DataType::kDouble:
        bytes += static_cast<int64_t>(col.doubles().size()) * 8;
        break;
      case DataType::kString: {
        for (const auto& s : col.strings()) {
          bytes += static_cast<int64_t>(s.size()) + 4;
        }
        break;
      }
      default:
        bytes += static_cast<int64_t>(col.ints().size()) * 8;
    }
  }
  return bytes;
}

}  // namespace skyrise::data
