#include "data/chunk.h"

namespace skyrise::data {

void Column::AppendFrom(const Column& other, size_t row) {
  SKYRISE_CHECK(type_ == other.type_);
  switch (type_) {
    case DataType::kDouble:
      doubles_.push_back(other.doubles_[row]);
      break;
    case DataType::kString:
      strings_.push_back(other.strings_[row]);
      break;
    default:
      ints_.push_back(other.ints_[row]);
  }
}

Column Column::Filter(const std::vector<uint32_t>& selection) const {
  Column out(type_);
  switch (type_) {
    case DataType::kDouble:
      out.doubles_.reserve(selection.size());
      for (uint32_t i : selection) out.doubles_.push_back(doubles_[i]);
      break;
    case DataType::kString:
      out.strings_.reserve(selection.size());
      for (uint32_t i : selection) out.strings_.push_back(strings_[i]);
      break;
    default:
      out.ints_.reserve(selection.size());
      for (uint32_t i : selection) out.ints_.push_back(ints_[i]);
  }
  return out;
}

Column Column::Slice(size_t offset, size_t count) const {
  SKYRISE_CHECK(offset + count <= size());
  Column out(type_);
  switch (type_) {
    case DataType::kDouble:
      out.doubles_.assign(doubles_.begin() + static_cast<ptrdiff_t>(offset),
                          doubles_.begin() +
                              static_cast<ptrdiff_t>(offset + count));
      break;
    case DataType::kString:
      out.strings_.assign(strings_.begin() + static_cast<ptrdiff_t>(offset),
                          strings_.begin() +
                              static_cast<ptrdiff_t>(offset + count));
      break;
    default:
      out.ints_.assign(ints_.begin() + static_cast<ptrdiff_t>(offset),
                       ints_.begin() + static_cast<ptrdiff_t>(offset + count));
  }
  return out;
}

void Chunk::Append(const Chunk& other) {
  SKYRISE_CHECK(schema_ == other.schema_);
  if (is_synthetic() || other.is_synthetic()) {
    const int64_t total = rows() + other.rows();
    columns_.clear();
    synthetic_rows_ = total;
    return;
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    for (size_t r = 0; r < static_cast<size_t>(other.rows()); ++r) {
      columns_[c].AppendFrom(other.columns_[c], r);
    }
  }
}

Chunk Chunk::Slice(int64_t offset, int64_t count) const {
  SKYRISE_CHECK(offset >= 0 && count >= 0 && offset + count <= rows());
  if (is_synthetic()) return Synthetic(schema_, count);
  std::vector<Column> columns;
  columns.reserve(columns_.size());
  for (const auto& col : columns_) {
    columns.push_back(col.Slice(static_cast<size_t>(offset),
                                static_cast<size_t>(count)));
  }
  return Chunk(schema_, std::move(columns));
}

int64_t Chunk::ByteSize() const {
  int64_t per_row = 0;
  for (const auto& f : schema_.fields()) {
    switch (f.type) {
      case DataType::kString:
        per_row += 12;  // Typical short TPC string + length.
        break;
      default:
        per_row += 8;
    }
  }
  if (is_synthetic()) return rows() * per_row;
  int64_t bytes = 0;
  for (const auto& col : columns_) {
    switch (col.type()) {
      case DataType::kDouble:
        bytes += static_cast<int64_t>(col.doubles().size()) * 8;
        break;
      case DataType::kString: {
        for (const auto& s : col.strings()) {
          bytes += static_cast<int64_t>(s.size()) + 4;
        }
        break;
      }
      default:
        bytes += static_cast<int64_t>(col.ints().size()) * 8;
    }
  }
  return bytes;
}

}  // namespace skyrise::data
