#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "data/types.h"

/// \file chunk.h
/// Vectorized batches. A Column is a typed value vector; a Chunk is a batch
/// of equal-length columns flowing between operators; a Schema names them.
/// Chunks may alternatively be *synthetic* — carrying only a row count — so
/// paper-scale experiments can exercise the identical operator/IO code paths
/// without materializing terabytes (see DESIGN.md "hybrid fidelity").

namespace skyrise::data {

struct Field {
  std::string name;
  DataType type;
  bool operator==(const Field&) const = default;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t size() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of a column by name; -1 when absent.
  int FieldIndex(const std::string& name) const {
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (fields_[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  [[nodiscard]] Result<Schema> Select(const std::vector<std::string>& names) const {
    std::vector<Field> out;
    for (const auto& name : names) {
      const int idx = FieldIndex(name);
      if (idx < 0) return Status::NotFound("no column: " + name);
      out.push_back(fields_[static_cast<size_t>(idx)]);
    }
    return Schema(std::move(out));
  }

  bool operator==(const Schema&) const = default;

 private:
  std::vector<Field> fields_;
};

/// A typed value vector. Int64/date values live in `ints`, doubles in
/// `doubles`, strings in `strings` (only the matching vector is populated).
class Column {
 public:
  explicit Column(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const {
    switch (type_) {
      case DataType::kDouble:
        return doubles_.size();
      case DataType::kString:
        return strings_.size();
      default:
        return ints_.size();
    }
  }

  std::vector<int64_t>& ints() { return ints_; }
  const std::vector<int64_t>& ints() const { return ints_; }
  std::vector<double>& doubles() { return doubles_; }
  const std::vector<double>& doubles() const { return doubles_; }
  std::vector<std::string>& strings() { return strings_; }
  const std::vector<std::string>& strings() const { return strings_; }

  void AppendInt(int64_t v) { ints_.push_back(v); }
  void AppendDouble(double v) { doubles_.push_back(v); }
  void AppendString(std::string v) { strings_.push_back(std::move(v)); }

  /// Appends row `row` of `other` to this column.
  void AppendFrom(const Column& other, size_t row);

  /// Gathers the rows selected by `selection` into a new column.
  Column Filter(const std::vector<uint32_t>& selection) const;

  /// Gathers the selected rows into `out`, overwriting its contents but
  /// reusing its buffers (vector capacity; per-element string capacity via
  /// assignment). `out` must have this column's type and must not alias it.
  void FilterInto(const std::vector<uint32_t>& selection, Column* out) const;

  /// Copies the contiguous row range [offset, offset + count) into a new
  /// column. The range must lie within the column.
  Column Slice(size_t offset, size_t count) const;

  /// Range copy into `out`, overwriting contents but reusing buffers — the
  /// allocation-free morsel primitive. `out` must match type, no aliasing.
  void SliceInto(size_t offset, size_t count, Column* out) const;

  /// Drops all values but keeps vector capacity for refill.
  void Clear();

  /// Retypes the column and clears it (retained buffers of the old type keep
  /// their capacity; CapacityBytes still counts them).
  void Reset(DataType type);

  /// Heap bytes currently reserved by this column's buffers, independent of
  /// value count — the quantity a chunk pool retains across reuse.
  int64_t CapacityBytes() const;

 private:
  DataType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
};

class Chunk {
 public:
  Chunk() = default;
  Chunk(Schema schema, std::vector<Column> columns)
      : schema_(std::move(schema)), columns_(std::move(columns)) {
    for (const auto& c : columns_) {
      SKYRISE_CHECK(c.size() == columns_[0].size());
    }
  }

  /// Synthetic chunk: a row count with no materialized values.
  static Chunk Synthetic(Schema schema, int64_t rows) {
    Chunk c;
    c.schema_ = std::move(schema);
    c.synthetic_rows_ = rows;
    return c;
  }

  /// Empty materialized chunk with the given schema.
  static Chunk Empty(const Schema& schema) {
    std::vector<Column> cols;
    for (const auto& f : schema.fields()) cols.emplace_back(f.type);
    return Chunk(schema, std::move(cols));
  }

  bool is_synthetic() const { return synthetic_rows_ >= 0; }
  int64_t rows() const {
    if (is_synthetic()) return synthetic_rows_;
    return columns_.empty() ? 0 : static_cast<int64_t>(columns_[0].size());
  }

  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  Column& column(size_t i) { return columns_[i]; }
  const Column& column(size_t i) const { return columns_[i]; }
  const Column& column(const std::string& name) const {
    const int idx = schema_.FieldIndex(name);
    SKYRISE_CHECK(idx >= 0);
    return columns_[static_cast<size_t>(idx)];
  }

  /// Appends all rows of `other` (schemas must match).
  void Append(const Chunk& other);

  /// Contiguous row range [offset, offset + count) as a new chunk — the
  /// morsel primitive. Synthetic chunks slice to synthetic chunks of `count`
  /// rows. The range must lie within the chunk.
  [[nodiscard]] Chunk Slice(int64_t offset, int64_t count) const;

  /// Slice() into `out`, overwriting its contents but reusing its buffers.
  /// `out` is reshaped to this chunk's schema and must not alias this chunk.
  void SliceInto(int64_t offset, int64_t count, Chunk* out) const;

  /// Reshapes to `schema` reusing column buffers where the positional types
  /// match; column contents become unspecified (callers overwrite them via
  /// the *Into APIs). Clears the synthetic flag.
  void PrepareFor(const Schema& schema);

  /// PrepareFor + Clear on every column: an empty materialized chunk of
  /// `schema` with recycled capacity, ready for Append.
  void ResetTo(const Schema& schema);

  /// Rough in-memory/in-flight byte size (used by the CPU and shuffle size
  /// models; also valid for synthetic chunks via per-type width estimates).
  int64_t ByteSize() const;

  /// Heap bytes reserved across all column buffers (see Column::CapacityBytes).
  int64_t CapacityBytes() const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  int64_t synthetic_rows_ = -1;
};

}  // namespace skyrise::data
