#pragma once

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "data/chunk.h"

/// \file chunk_pool.h
/// Per-worker recycling pool for data::Chunk buffers. Morsel-driven execution
/// creates and drops a chunk per Push()/operator hop; without reuse every hop
/// reallocates each column's vectors (and every string element). The pool
/// keeps released chunks on a LIFO free list so the next Acquire hands back
/// warm capacity.
///
/// Ownership rules (see DESIGN.md "Event-kernel and data-plane memory
/// model"): a chunk obtained from Acquire is owned by the caller and may
/// outlive the pool; Release is an optional donation, never an obligation.
/// Pools are strictly per-worker (single-threaded on the sim event loop), so
/// there is no locking. Retained capacity is *not* charged to
/// engine::MemoryTracker — the tracker prices live data bytes, and pooled
/// buffers hold no live rows; the retained footprint is visible through
/// stats().retained_bytes instead.

namespace skyrise::data {

class ChunkPool {
 public:
  /// `max_free` bounds how many spent chunks the pool retains; releases past
  /// the cap are dropped so a burst cannot pin capacity forever.
  explicit ChunkPool(size_t max_free = 64) : max_free_(max_free) {}
  SKYRISE_DISALLOW_COPY_AND_ASSIGN(ChunkPool);

  /// Returns an empty materialized chunk shaped to `schema`, recycling the
  /// most recently released chunk's buffers when one is available.
  Chunk Acquire(const Schema& schema) {
    ++acquired_;
    if (!free_.empty()) {
      ++reuse_hits_;
      Chunk chunk = std::move(free_.back());
      free_.pop_back();
      chunk.ResetTo(schema);
      return chunk;
    }
    return Chunk::Empty(schema);
  }

  /// Like Acquire but reshapes with Chunk::PrepareFor instead of ResetTo:
  /// column contents are unspecified (not cleared), which keeps string
  /// *element* buffers alive for FilterInto/SliceInto/DecodeColumnInto
  /// refills. Use only when every column is overwritten before being read.
  Chunk AcquirePrepared(const Schema& schema) {
    ++acquired_;
    if (!free_.empty()) {
      ++reuse_hits_;
      Chunk chunk = std::move(free_.back());
      free_.pop_back();
      chunk.PrepareFor(schema);
      return chunk;
    }
    return Chunk::Empty(schema);
  }

  /// Returns a free chunk as-is (arbitrary shape, unspecified contents) for
  /// decode-into flows that reshape it themselves, e.g.
  /// format::DecodeRowGroupInto. Returns a default-constructed chunk when
  /// the free list is empty.
  Chunk AcquireRaw() {
    ++acquired_;
    if (!free_.empty()) {
      ++reuse_hits_;
      Chunk chunk = std::move(free_.back());
      free_.pop_back();
      return chunk;
    }
    return Chunk();
  }

  /// Donates a spent chunk's buffers back to the pool. Synthetic and
  /// moved-from chunks carry no buffers and are dropped.
  void Release(Chunk&& chunk) {
    ++released_;
    if (chunk.is_synthetic() || chunk.num_columns() == 0 ||
        free_.size() >= max_free_) {
      ++dropped_;
      return;
    }
    free_.push_back(std::move(chunk));
  }

  struct Stats {
    uint64_t acquired = 0;    ///< Total Acquire calls.
    uint64_t reuse_hits = 0;  ///< Acquires served from the free list.
    uint64_t released = 0;    ///< Total Release calls.
    uint64_t dropped = 0;     ///< Releases dropped (synthetic or cap).
    uint64_t free_chunks = 0;
    int64_t retained_bytes = 0;  ///< Capacity currently parked on the free list.
  };

  Stats stats() const {
    Stats s;
    s.acquired = acquired_;
    s.reuse_hits = reuse_hits_;
    s.released = released_;
    s.dropped = dropped_;
    s.free_chunks = free_.size();
    for (const auto& chunk : free_) s.retained_bytes += chunk.CapacityBytes();
    return s;
  }

 private:
  size_t max_free_;
  std::vector<Chunk> free_;
  uint64_t acquired_ = 0;
  uint64_t reuse_hits_ = 0;
  uint64_t released_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace skyrise::data
