#pragma once

#include <cstdint>
#include <string>

/// \file types.h
/// Logical column types of the engine's vectorized data model. Dates are
/// stored as int32 days since 1992-01-01 (the TPC-H epoch); decimals are
/// scaled int64 cents, matching TPC numeric semantics without floating-point
/// drift in aggregations.

namespace skyrise::data {

enum class DataType : uint8_t {
  kInt64,
  kDouble,
  kString,
  kDate,  ///< int32 days since 1992-01-01, stored in the int64 vector.
};

const char* DataTypeName(DataType type);

/// Days since 1992-01-01 for a calendar date (proleptic Gregorian).
int32_t DaysSinceEpoch(int year, int month, int day);

/// Formats a day offset as YYYY-MM-DD.
std::string FormatDate(int32_t days_since_epoch);

}  // namespace skyrise::data
