#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "common/units.h"
#include "pricing/price_list.h"

/// \file break_even.h
/// Section 5.3 economics: the two variants of Gray's five-minute rule for
/// cloud storage tiers (capacity-priced and request-priced), and the
/// break-even access size for shuffling through object storage vs. a
/// provisioned VM cluster.

namespace skyrise::pricing {

/// Capacity-priced tier-2 (RAM vs. SSD/EBS):
///   BEI = PagesPerMB / AccessesPerSecondPerDisk
///         * RentPerHourPerDisk / RentPerHourPerMBofRAM
/// `accesses_per_second` should already account for the device bandwidth cap
/// (min(max_iops, bandwidth / access_size)).
double BreakEvenIntervalCapacityPriced(int64_t access_size_bytes,
                                       double accesses_per_second,
                                       double disk_rent_hourly,
                                       double tier1_rent_mb_hourly);

/// Request-priced tier-2 (object / KV storage):
///   BEI = PagesPerMB * PricePerAccessToTier2 / RentPerSecondPerMBofTier1
double BreakEvenIntervalRequestPriced(int64_t access_size_bytes,
                                      double price_per_access,
                                      double tier1_rent_mb_hourly);

/// Break-even shuffle access size in MB (Section 5.3.2):
///   BEAS = PricePerAccess * MBPerHourPerServer / RentPerHourPerServer
/// With a per-GiB transfer fee the fee may exceed the VM's own $/MB, in which
/// case object storage never breaks even and the result is infinity.
double BreakEvenAccessSizeMb(double price_per_request,
                             double transfer_fee_per_gib,
                             double server_mb_per_hour,
                             double server_rent_hourly);

/// Memory-config recommendation from observed execution: the smallest Lambda
/// memory setting (in the platform's 128 MiB steps, within [128 MiB, 10 GiB])
/// whose allocation covers `peak_memory_bytes` of resident query state plus
/// `headroom` slack for the runtime and allocator. Peaks beyond the largest
/// configuration clamp to it. Streaming execution lowers the peak and thus
/// the recommended (and billed) memory size.
int RecommendLambdaMemoryMib(int64_t peak_memory_bytes,
                             double headroom = 1.5);

/// One row of Table 7 (seconds, indexed by access size).
struct BeiRow {
  std::string combination;             ///< e.g. "RAM/S3 Standard".
  std::vector<double> interval_seconds;  ///< One per access size.
};

/// Computes Table 7 for the given access sizes using `prices`.
std::vector<BeiRow> ComputeStorageHierarchyTable(
    const PriceList& prices, const std::vector<int64_t>& access_sizes);

/// One cell of Table 8.
struct BeasCell {
  std::string instance_type;
  bool reserved = false;
  std::string storage_class;  ///< "s3" or "s3express".
  double access_size_mb = 0;  ///< Infinity => never breaks even.
};

/// Computes Table 8 for the paper's instance/pricing columns.
std::vector<BeasCell> ComputeShuffleBeasTable(const PriceList& prices);

}  // namespace skyrise::pricing
