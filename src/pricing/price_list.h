#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "common/units.h"

/// \file price_list.h
/// AWS us-east-1 price book as of the paper's study window (Feb–Oct 2024),
/// encoding Tables 1 and 2 plus the storage-hierarchy parameters used by the
/// Section 5.3 break-even analyses. All prices in USD.

namespace skyrise::pricing {

/// AWS Lambda (ARM / Graviton2) pricing.
struct LambdaPricing {
  /// $/GiB-second of configured memory, by monthly usage tier.
  double gib_second_first_tier = 1.33334e-5;   ///< First 6B GiB-s (4.80 c/GiB-h).
  double gib_second_last_tier = 1.06667e-5;    ///< Beyond 15B GiB-s (3.84 c/GiB-h).
  double per_request = 2.0e-7;                 ///< $0.20 per 1M invocations.
  double ephemeral_gib_month = 0.0812;         ///< 8.12 c/GiB-mo beyond 512 MiB.
  double min_memory_gib = 0.125;
  double max_memory_gib = 10.0;
  /// One vCPU equivalent per 1,769 MiB of configured memory.
  double mib_per_vcpu = 1769.0;
};

/// One EC2 instance type's pricing/sizing.
struct Ec2InstancePricing {
  std::string instance_type;
  int vcpus = 0;
  double memory_gib = 0;
  double on_demand_hourly = 0;
  double reserved_hourly = 0;  ///< 3-yr reserved effective rate.
  double local_ssd_gb = 0;     ///< NVMe instance storage (d-variants).
};

/// Serverless storage service pricing (Table 2).
struct StorageServicePricing {
  std::string service;            ///< "s3", "s3express", "dynamodb", "efs".
  double read_request = 0;        ///< $/request.
  double write_request = 0;       ///< $/request.
  double read_transfer_gib = 0;   ///< $/GiB read payload.
  double write_transfer_gib = 0;  ///< $/GiB written payload.
  /// Bytes included per request before transfer pricing kicks in
  /// (S3 Express charges only beyond 512 KiB).
  int64_t transfer_free_bytes_per_request = 0;
  double storage_gib_month = 0;
  /// DynamoDB-style request units: requests are split into ceil(size/unit)
  /// billed units; 0 => flat per-request billing regardless of size.
  int64_t request_unit_bytes_read = 0;
  int64_t request_unit_bytes_write = 0;
};

/// Parameters for the cloud storage hierarchy of Section 5.3.1.
struct StorageHierarchyPricing {
  /// RAM rent attributed per GiB-hour (3-yr reserved memory-optimized).
  double ram_gib_hour = 0.0022;
  /// Local NVMe SSD: per-device rent and performance envelope.
  double ssd_device_hourly = 0.1435;
  double ssd_device_gb = 1900.0;
  double ssd_max_iops = 427000.0;       ///< 4 KiB random reads.
  double ssd_max_bandwidth_mb_s = 2147.0;  ///< "2 GiB/s" EC2 NVMe cap.
  /// EBS gp3: 1 TB volume provisioned to 16K IOPS / 590 MB/s.
  double ebs_volume_hourly = 0.2244;
  double ebs_max_iops = 16000.0;
  double ebs_max_bandwidth_mb_s = 590.0;
  /// Cross-region data transfer surcharge.
  double cross_region_transfer_gib = 0.02;
};

class PriceList {
 public:
  static const PriceList& Default();

  const LambdaPricing& lambda() const { return lambda_; }
  const StorageHierarchyPricing& hierarchy() const { return hierarchy_; }

  [[nodiscard]] Result<Ec2InstancePricing> Ec2(const std::string& instance_type) const;
  [[nodiscard]] Result<StorageServicePricing> Storage(const std::string& service) const;

  const std::vector<Ec2InstancePricing>& ec2_instances() const {
    return ec2_;
  }
  const std::vector<StorageServicePricing>& storage_services() const {
    return storage_;
  }

  /// Cost of a Lambda invocation: `memory_gib` for `duration` (billed at 1 ms
  /// granularity, rounded up) plus the request fee.
  double LambdaInvocationCost(double memory_gib, SimDuration duration) const;

  /// Cost of running an EC2 instance for `duration` (per-second billing with
  /// a 60 s minimum, as for Linux on-demand).
  [[nodiscard]] Result<double> Ec2Cost(const std::string& instance_type,
                         SimDuration duration, bool reserved = false) const;

  /// Cost of one storage request of `payload_bytes` against `service`.
  [[nodiscard]] Result<double> StorageRequestCost(const std::string& service, bool is_write,
                                    int64_t payload_bytes) const;

 private:
  PriceList();

  LambdaPricing lambda_;
  StorageHierarchyPricing hierarchy_;
  std::vector<Ec2InstancePricing> ec2_;
  std::vector<StorageServicePricing> storage_;
};

}  // namespace skyrise::pricing
