#include "pricing/break_even.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"
#include "net/instance_specs.h"

namespace skyrise::pricing {

namespace {
constexpr double kMbPerPageUnit = 1.0e6;  // Formulas use decimal MB.

double PagesPerMb(int64_t access_size_bytes) {
  return kMbPerPageUnit / static_cast<double>(access_size_bytes);
}
}  // namespace

double BreakEvenIntervalCapacityPriced(int64_t access_size_bytes,
                                       double accesses_per_second,
                                       double disk_rent_hourly,
                                       double tier1_rent_mb_hourly) {
  SKYRISE_CHECK(accesses_per_second > 0 && tier1_rent_mb_hourly > 0);
  return PagesPerMb(access_size_bytes) / accesses_per_second *
         (disk_rent_hourly / tier1_rent_mb_hourly);
}

double BreakEvenIntervalRequestPriced(int64_t access_size_bytes,
                                      double price_per_access,
                                      double tier1_rent_mb_hourly) {
  SKYRISE_CHECK(tier1_rent_mb_hourly > 0);
  const double rent_per_second_per_mb = tier1_rent_mb_hourly / 3600.0;
  return PagesPerMb(access_size_bytes) * price_per_access /
         rent_per_second_per_mb;
}

double BreakEvenAccessSizeMb(double price_per_request,
                             double transfer_fee_per_gib,
                             double server_mb_per_hour,
                             double server_rent_hourly) {
  SKYRISE_CHECK(server_mb_per_hour > 0 && server_rent_hourly > 0);
  // VM network cost per MB moved.
  const double vm_cost_per_mb = server_rent_hourly / server_mb_per_hour;
  const double fee_per_mb = transfer_fee_per_gib / 1073.741824;  // GiB -> MB.
  if (fee_per_mb >= vm_cost_per_mb) {
    return std::numeric_limits<double>::infinity();
  }
  return price_per_request / (vm_cost_per_mb - fee_per_mb);
}

int RecommendLambdaMemoryMib(int64_t peak_memory_bytes, double headroom) {
  SKYRISE_CHECK(peak_memory_bytes >= 0 && headroom >= 1.0);
  constexpr int kStepMib = 128;
  constexpr int kMinMib = 128;
  constexpr int kMaxMib = 10240;
  const double needed_mib =
      static_cast<double>(peak_memory_bytes) * headroom / (1024.0 * 1024.0);
  const int steps = static_cast<int>(std::ceil(needed_mib / kStepMib));
  return std::clamp(steps * kStepMib, kMinMib, kMaxMib);
}

std::vector<BeiRow> ComputeStorageHierarchyTable(
    const PriceList& prices, const std::vector<int64_t>& access_sizes) {
  const StorageHierarchyPricing& h = prices.hierarchy();
  const double ram_mb_hourly = h.ram_gib_hour / 1024.0;  // $/MiB-h ~= $/MB-h.
  const double ssd_mb_hourly = h.ssd_device_hourly / (h.ssd_device_gb * 1000.0);

  auto device_aps = [](double max_iops, double max_bw_mb_s, int64_t size) {
    return std::min(max_iops,
                    max_bw_mb_s * 1.0e6 / static_cast<double>(size));
  };

  const auto s3 = prices.Storage("s3").ValueOrDie();
  const auto s3x = prices.Storage("s3express").ValueOrDie();

  auto request_price = [](const StorageServicePricing& svc, int64_t size,
                          double extra_transfer_gib = 0.0) {
    double price = svc.read_request;
    const int64_t billable =
        std::max<int64_t>(0, size - svc.transfer_free_bytes_per_request);
    price += svc.read_transfer_gib * ToGiB(billable);
    price += extra_transfer_gib * ToGiB(size);
    return price;
  };

  std::vector<BeiRow> rows;
  {
    BeiRow row{"RAM/SSD", {}};
    for (int64_t size : access_sizes) {
      row.interval_seconds.push_back(BreakEvenIntervalCapacityPriced(
          size, device_aps(h.ssd_max_iops, h.ssd_max_bandwidth_mb_s, size),
          h.ssd_device_hourly, ram_mb_hourly));
    }
    rows.push_back(std::move(row));
  }
  {
    BeiRow row{"RAM/EBS", {}};
    for (int64_t size : access_sizes) {
      row.interval_seconds.push_back(BreakEvenIntervalCapacityPriced(
          size, device_aps(h.ebs_max_iops, h.ebs_max_bandwidth_mb_s, size),
          h.ebs_volume_hourly, ram_mb_hourly));
    }
    rows.push_back(std::move(row));
  }
  {
    BeiRow row{"RAM/S3 Standard", {}};
    for (int64_t size : access_sizes) {
      row.interval_seconds.push_back(BreakEvenIntervalRequestPriced(
          size, request_price(s3, size), ram_mb_hourly));
    }
    rows.push_back(std::move(row));
  }
  {
    BeiRow row{"RAM/S3 Express", {}};
    for (int64_t size : access_sizes) {
      row.interval_seconds.push_back(BreakEvenIntervalRequestPriced(
          size, request_price(s3x, size), ram_mb_hourly));
    }
    rows.push_back(std::move(row));
  }
  {
    BeiRow row{"SSD/S3 Standard", {}};
    for (int64_t size : access_sizes) {
      row.interval_seconds.push_back(BreakEvenIntervalRequestPriced(
          size, request_price(s3, size), ssd_mb_hourly));
    }
    rows.push_back(std::move(row));
  }
  {
    BeiRow row{"SSD/S3 Express", {}};
    for (int64_t size : access_sizes) {
      row.interval_seconds.push_back(BreakEvenIntervalRequestPriced(
          size, request_price(s3x, size), ssd_mb_hourly));
    }
    rows.push_back(std::move(row));
  }
  {
    BeiRow row{"SSD/S3 X-Region", {}};
    for (int64_t size : access_sizes) {
      row.interval_seconds.push_back(BreakEvenIntervalRequestPriced(
          size, request_price(s3, size, h.cross_region_transfer_gib),
          ssd_mb_hourly));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<BeasCell> ComputeShuffleBeasTable(const PriceList& prices) {
  struct Column {
    const char* instance;
    bool reserved;
  };
  const Column columns[] = {{"c6g.xlarge", false},
                            {"c6g.8xlarge", false},
                            {"c6gn.xlarge", false},
                            {"c6gn.xlarge", true}};
  std::vector<BeasCell> cells;
  for (const auto& col : columns) {
    const auto ec2 = prices.Ec2(col.instance).ValueOrDie();
    const auto spec = net::FindInstanceSpec(col.instance).ValueOrDie();
    const double mb_per_hour =
        GbpsToBytesPerSecond(spec.baseline_gbps) / 1.0e6 * 3600.0;
    const double rent =
        col.reserved ? ec2.reserved_hourly : ec2.on_demand_hourly;
    for (const char* storage : {"s3", "s3express"}) {
      const auto svc = prices.Storage(storage).ValueOrDie();
      // Shuffle: every byte is written once and read once; request price and
      // transfer fees apply on both sides. We follow the paper in sizing by
      // the read path (reads dominate: every downstream worker reads every
      // upstream partition object).
      const double fee =
          svc.read_transfer_gib + 0.0;  // Read-side transfer fee per GiB.
      cells.push_back(BeasCell{
          col.instance, col.reserved, storage,
          BreakEvenAccessSizeMb(svc.read_request, fee, mb_per_hour, rent)});
    }
  }
  return cells;
}

}  // namespace skyrise::pricing
