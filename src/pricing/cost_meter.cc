#include "pricing/cost_meter.h"

namespace skyrise::pricing {

double CostMeter::RecordStorageRequest(const std::string& service,
                                       bool is_write, int64_t payload_bytes,
                                       bool success) {
  requests_by_service_[service] += 1;
  bytes_by_service_[service] += payload_bytes;
  if (!success) ++failed_requests_;
  // AWS bills throttled/failed requests that reached the service as well.
  auto cost = prices_->StorageRequestCost(service, is_write, payload_bytes);
  if (!cost.ok()) return 0;
  storage_usd_ += *cost;
  return *cost;
}

double CostMeter::RecordLambdaInvocation(double memory_gib,
                                         SimDuration duration) {
  ++lambda_invocations_;
  lambda_lifetime_ += duration;
  const double cost = prices_->LambdaInvocationCost(memory_gib, duration);
  compute_usd_ += cost;
  return cost;
}

double CostMeter::RecordEc2Usage(const std::string& instance_type,
                                 SimDuration duration, bool reserved) {
  auto cost = prices_->Ec2Cost(instance_type, duration, reserved);
  if (!cost.ok()) return 0;
  compute_usd_ += *cost;
  return *cost;
}

int64_t CostMeter::TotalRequests() const {
  int64_t total = 0;
  for (const auto& [service, count] : requests_by_service_) total += count;
  return total;
}

int64_t CostMeter::RequestCount(const std::string& service) const {
  auto it = requests_by_service_.find(service);
  return it == requests_by_service_.end() ? 0 : it->second;
}

int64_t CostMeter::BytesMoved(const std::string& service) const {
  auto it = bytes_by_service_.find(service);
  return it == bytes_by_service_.end() ? 0 : it->second;
}

void CostMeter::Merge(const CostMeter& other) {
  storage_usd_ += other.storage_usd_;
  compute_usd_ += other.compute_usd_;
  for (const auto& [service, count] : other.requests_by_service_) {
    requests_by_service_[service] += count;
  }
  for (const auto& [service, bytes] : other.bytes_by_service_) {
    bytes_by_service_[service] += bytes;
  }
  failed_requests_ += other.failed_requests_;
  lambda_invocations_ += other.lambda_invocations_;
  lambda_lifetime_ += other.lambda_lifetime_;
}

void CostMeter::Reset() { *this = CostMeter(prices_); }

}  // namespace skyrise::pricing
