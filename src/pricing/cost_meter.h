#pragma once

#include <map>
#include <string>

#include "common/units.h"
#include "pricing/price_list.h"

/// \file cost_meter.h
/// Usage metering for experiment cost reporting. Mirrors the paper's client
/// hook that "counts all requests, including failures and retries", plus
/// compute lifetimes, and prices them with the AWS price book (no bulk
/// discounts).

namespace skyrise::pricing {

class CostMeter {
 public:
  explicit CostMeter(const PriceList* prices = &PriceList::Default())
      : prices_(prices) {}

  /// Records one storage request (counted whether or not it succeeded).
  /// Returns the exact USD amount added to the meter (0 when the service has
  /// no price entry), so callers can attribute it to a trace span.
  double RecordStorageRequest(const std::string& service, bool is_write,
                              int64_t payload_bytes, bool success);

  /// Records a completed Lambda invocation of `memory_gib` for `duration`.
  /// Returns the exact USD amount added to the meter.
  double RecordLambdaInvocation(double memory_gib, SimDuration duration);

  /// Records EC2 instance usage. Returns the exact USD amount added to the
  /// meter (0 when the instance type has no price entry).
  double RecordEc2Usage(const std::string& instance_type, SimDuration duration,
                        bool reserved = false);

  /// Total accumulated cost in USD.
  double TotalUsd() const { return storage_usd_ + compute_usd_; }
  double StorageUsd() const { return storage_usd_; }
  double ComputeUsd() const { return compute_usd_; }

  int64_t TotalRequests() const;
  int64_t FailedRequests() const { return failed_requests_; }
  int64_t RequestCount(const std::string& service) const;
  int64_t BytesMoved(const std::string& service) const;

  int64_t lambda_invocations() const { return lambda_invocations_; }
  SimDuration lambda_lifetime() const { return lambda_lifetime_; }

  void Merge(const CostMeter& other);
  void Reset();

 private:
  const PriceList* prices_;
  double storage_usd_ = 0;
  double compute_usd_ = 0;
  std::map<std::string, int64_t> requests_by_service_;
  std::map<std::string, int64_t> bytes_by_service_;
  int64_t failed_requests_ = 0;
  int64_t lambda_invocations_ = 0;
  SimDuration lambda_lifetime_ = 0;
};

}  // namespace skyrise::pricing
