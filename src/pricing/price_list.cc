#include "pricing/price_list.h"

#include <cmath>

#include "common/string_util.h"

namespace skyrise::pricing {

namespace {

std::vector<Ec2InstancePricing> BuildEc2() {
  // {type, vcpus, mem GiB, on-demand $/h, 3yr-reserved $/h, local SSD GB}.
  // C6g on-demand scales linearly at $0.034 per vCPU-hour (us-east-1);
  // reserved is the ~52% discounted 3-yr effective rate the paper's Table 8
  // "reserved" column relies on. C6gn carries the network-optimized premium,
  // C6gd includes local NVMe.
  std::vector<Ec2InstancePricing> out;
  struct Size {
    const char* suffix;
    int vcpus;
    double mem;
  };
  const Size sizes[] = {{"medium", 1, 2},    {"large", 2, 4},
                        {"xlarge", 4, 8},    {"2xlarge", 8, 16},
                        {"4xlarge", 16, 32}, {"8xlarge", 32, 64},
                        {"12xlarge", 48, 96}, {"16xlarge", 64, 128}};
  for (const auto& s : sizes) {
    const double od_c6g = 0.034 * s.vcpus;
    out.push_back({std::string("c6g.") + s.suffix, s.vcpus, s.mem, od_c6g,
                   od_c6g * 0.48, 0});
    const double od_c6gn = 0.0432 * s.vcpus;
    out.push_back({std::string("c6gn.") + s.suffix, s.vcpus, s.mem, od_c6gn,
                   od_c6gn * 0.3327, 0});
    const double od_c6gd = 0.03856 * s.vcpus;
    // NVMe capacity grows with size: 59 GB per vCPU (xlarge: 237 GB).
    out.push_back({std::string("c6gd.") + s.suffix, s.vcpus, s.mem, od_c6gd,
                   od_c6gd * 0.48, 59.4 * s.vcpus});
  }
  return out;
}

std::vector<StorageServicePricing> BuildStorage() {
  std::vector<StorageServicePricing> out;
  // S3 Standard: $0.40/M GET, $5.00/M PUT, no transfer fee in-region,
  // 2.1-2.3 c/GiB-mo (we use 2.3, the first tier).
  out.push_back({"s3", 4.0e-7, 5.0e-6, 0, 0, 0, 0.023, 0, 0});
  // S3 Express One Zone: half the request prices, but request payload beyond
  // 512 KiB is charged per GiB (0.15 c read / 0.8 c write).
  out.push_back({"s3express", 2.0e-7, 2.5e-6, 0.0015, 0.008, 512 * kKiB,
                 0.16, 0, 0});
  // DynamoDB on-demand: $0.25/M read request units (4 KiB, eventually
  // consistent halves it; we price strongly consistent), $1.25/M write
  // request units (1 KiB).
  out.push_back({"dynamodb", 2.5e-7, 1.25e-6, 0, 0, 0, 0.25, 4 * kKiB,
                 1 * kKiB});
  // EFS elastic throughput: no request fee, 3 c/GiB read, 6 c/GiB write,
  // 16-30 c/GiB-mo (we use standard storage at 30; the 16 end is archival).
  out.push_back({"efs", 0, 0, 0.03, 0.06, 0, 0.30, 0, 0});
  return out;
}

}  // namespace

PriceList::PriceList() : ec2_(BuildEc2()), storage_(BuildStorage()) {}

const PriceList& PriceList::Default() {
  static const PriceList instance;
  return instance;
}

Result<Ec2InstancePricing> PriceList::Ec2(
    const std::string& instance_type) const {
  for (const auto& e : ec2_) {
    if (e.instance_type == instance_type) return e;
  }
  return Status::NotFound(
      StrFormat("no pricing for instance type %s", instance_type.c_str()));
}

Result<StorageServicePricing> PriceList::Storage(
    const std::string& service) const {
  for (const auto& s : storage_) {
    if (s.service == service) return s;
  }
  return Status::NotFound(
      StrFormat("no pricing for storage service %s", service.c_str()));
}

double PriceList::LambdaInvocationCost(double memory_gib,
                                       SimDuration duration) const {
  const double billed_ms = std::ceil(ToMillis(duration));
  const double gib_seconds = memory_gib * billed_ms / 1000.0;
  return gib_seconds * lambda_.gib_second_first_tier + lambda_.per_request;
}

Result<double> PriceList::Ec2Cost(const std::string& instance_type,
                                  SimDuration duration, bool reserved) const {
  Ec2InstancePricing p;
  SKYRISE_ASSIGN_OR_RETURN(p, Ec2(instance_type));
  const double billed_seconds = std::max(60.0, ToSeconds(duration));
  const double hourly = reserved ? p.reserved_hourly : p.on_demand_hourly;
  return hourly * billed_seconds / 3600.0;
}

Result<double> PriceList::StorageRequestCost(const std::string& service,
                                             bool is_write,
                                             int64_t payload_bytes) const {
  StorageServicePricing p;
  SKYRISE_ASSIGN_OR_RETURN(p, Storage(service));
  double cost = 0;
  const int64_t unit =
      is_write ? p.request_unit_bytes_write : p.request_unit_bytes_read;
  const double request_price = is_write ? p.write_request : p.read_request;
  if (unit > 0) {
    const int64_t units = std::max<int64_t>(1, (payload_bytes + unit - 1) / unit);
    cost += request_price * static_cast<double>(units);
  } else {
    cost += request_price;
  }
  const double transfer_price =
      is_write ? p.write_transfer_gib : p.read_transfer_gib;
  if (transfer_price > 0) {
    const int64_t billable =
        std::max<int64_t>(0, payload_bytes - p.transfer_free_bytes_per_request);
    cost += transfer_price * ToGiB(billable);
  }
  return cost;
}

}  // namespace skyrise::pricing
