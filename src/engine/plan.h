#pragma once

#include <string>
#include <utility>
#include <vector>

#include "engine/expression.h"

/// \file plan.h
/// Physical query plans, exchanged as JSON between the driver, coordinator,
/// and workers (the paper's coordinator protocol). A plan is a DAG of
/// pipelines; each pipeline streams one input through a linear chain of
/// vectorized operators and terminates in either a shuffle write or the
/// final result. Additional inputs (e.g., a hash-join build side) are fully
/// materialized before streaming starts.
///
/// Operators carry *synthetic-mode hints* (selectivity, group counts, join
/// multipliers) so paper-scale runs over synthetic data propagate realistic
/// cardinalities through the identical execution code.

namespace skyrise::engine {

struct InputSpec {
  enum class Type { kTable, kShuffle };
  Type type = Type::kTable;
  std::string table;                  ///< kTable: dataset name.
  std::vector<std::string> columns;   ///< kTable: projection pushdown.
  ExprPtr pushdown;                   ///< kTable: selection pushdown (opt).
  double pushdown_selectivity = 1.0;  ///< Synthetic hint for `pushdown`.
  int upstream_pipeline = -1;         ///< kShuffle.

  Json ToJson() const;
  [[nodiscard]] static Result<InputSpec> FromJson(const Json& json);
};

struct AggregateSpec {
  std::string func;  ///< "sum", "count", "min", "max".
  ExprPtr expr;      ///< Null for count.
  std::string as;
};

struct OperatorSpec {
  /// "filter", "project", "hash_agg", "hash_join", "partition_write",
  /// "sort", "limit", "bb_sessionize".
  std::string op;

  // filter.
  ExprPtr predicate;
  double selectivity = 1.0;

  // project: output column name -> expression.
  std::vector<std::pair<std::string, ExprPtr>> projections;

  // hash_agg.
  std::vector<std::string> group_by;
  std::vector<AggregateSpec> aggregates;
  int64_t groups_hint = 1;

  // hash_join (inner, hash on equality keys).
  std::vector<std::string> probe_keys;
  std::vector<std::string> build_keys;
  std::vector<std::string> build_columns;  ///< Carried from the build side.
  int build_input = 1;                     ///< Index into pipeline inputs.
  double join_multiplier = 1.0;

  // partition_write.
  std::vector<std::string> partition_keys;
  int partition_count = 1;

  // sort / limit.
  std::vector<std::string> sort_keys;
  std::vector<bool> sort_ascending;
  int64_t limit = -1;

  // bb_sessionize (TPCx-BB Q3 UDF): for each purchase of an item in the
  // target category, count views of same-category items by the same user in
  // the preceding window.
  int64_t session_window_days = 10;
  int64_t target_category = 1;
  double udf_output_ratio = 0.05;

  Json ToJson() const;
  [[nodiscard]] static Result<OperatorSpec> FromJson(const Json& json);
};

struct PipelineSpec {
  int id = 0;
  std::vector<InputSpec> inputs;  ///< inputs[0] streams; others are builds.
  std::vector<OperatorSpec> ops;
  std::vector<int> depends_on;

  Json ToJson() const;
  [[nodiscard]] static Result<PipelineSpec> FromJson(const Json& json);
};

struct QueryPlan {
  std::string query_name;
  std::vector<PipelineSpec> pipelines;

  Json ToJson() const;
  [[nodiscard]] static Result<QueryPlan> FromJson(const Json& json);

  const PipelineSpec* FindPipeline(int id) const;
};

/// Storage key of a shuffle partition object:
/// shuffle/<query_id>/p<pipeline>/f<fragment>/part-<partition>.cof
std::string ShuffleKey(const std::string& query_id, int pipeline, int fragment,
                       int partition);
/// Storage key of the final query result.
std::string ResultKey(const std::string& query_id);

}  // namespace skyrise::engine
