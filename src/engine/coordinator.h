#pragma once

#include "engine/context.h"
#include "engine/worker.h"

/// \file coordinator.h
/// The Skyrise query coordinator function. It receives a physical plan in
/// JSON, fetches dataset metadata (file counts/sizes), compiles a
/// distributed plan (fragments per pipeline, worker assignment), schedules
/// pipelines stage-wise along their dependencies, fans out worker
/// invocations (two-level for large stages), and returns the result
/// location, runtime, and execution statistics.

namespace skyrise::engine {

faas::FunctionHandler MakeCoordinatorHandler(EngineContext* context);
faas::FunctionHandler MakeInvokerHandler(EngineContext* context);

/// Builds the coordinator invocation payload.
/// `partitions_per_worker` <= 0 uses the context default.
Json CoordinatorPayload(const QueryPlan& plan, const std::string& query_id,
                        int partitions_per_worker = 0);

}  // namespace skyrise::engine
