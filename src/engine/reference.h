#pragma once

#include "data/chunk.h"
#include "engine/queries.h"

/// \file reference.h
/// Independent single-pass, in-memory implementations of the query suite,
/// used as ground truth to validate the distributed engine's results. They
/// share no code with the operator implementations.

namespace skyrise::engine {

struct Q6Reference {
  double revenue = 0;
};
Q6Reference ReferenceQ6(const data::Chunk& lineitem);

struct Q1Group {
  std::string returnflag;
  std::string linestatus;
  double sum_qty = 0;
  double sum_base_price = 0;
  double sum_disc_price = 0;
  double sum_charge = 0;
  double avg_qty = 0;
  double avg_price = 0;
  double avg_disc = 0;
  int64_t count_order = 0;
};
/// Sorted by (returnflag, linestatus).
std::vector<Q1Group> ReferenceQ1(const data::Chunk& lineitem);

struct Q12Group {
  std::string shipmode;
  int64_t high_line_count = 0;
  int64_t low_line_count = 0;
};
/// Sorted by shipmode.
std::vector<Q12Group> ReferenceQ12(const data::Chunk& lineitem,
                                   const data::Chunk& orders);

struct BbQ3Row {
  int64_t item_sk = 0;
  int64_t views = 0;
};
/// Top-k items viewed within the window before same-category purchases,
/// sorted by (views desc, item asc).
std::vector<BbQ3Row> ReferenceBbQ3(const data::Chunk& clickstreams,
                                   const data::Chunk& item,
                                   const QuerySuiteOptions& options);

}  // namespace skyrise::engine
