#include "engine/engine.h"

#include "format/encoding.h"

namespace skyrise::engine {

QueryResponse QueryResponse::FromJson(const Json& json) {
  QueryResponse response;
  response.result_key = json.GetString("result_key");
  response.runtime_ms = json.GetDouble("runtime_ms");
  response.cumulated_worker_ms = json.GetDouble("cumulated_worker_ms");
  response.total_workers = static_cast<int>(json.GetInt("total_workers"));
  response.peak_workers = static_cast<int>(json.GetInt("peak_workers"));
  response.requests = json.GetInt("requests");
  response.worker_retries = static_cast<int>(json.GetInt("worker_retries"));
  response.speculative_launches =
      static_cast<int>(json.GetInt("speculative_launches"));
  response.worker_errors = static_cast<int>(json.GetInt("worker_errors"));
  response.peak_worker_memory_bytes = json.GetInt("peak_worker_memory_bytes");
  response.total_batches = json.GetInt("total_batches");
  response.recommended_memory_mib =
      static_cast<int>(json.GetInt("recommended_memory_mib"));
  response.degraded_stages = static_cast<int>(json.GetInt("degraded_stages"));
  if (json.Has("retry_budget")) {
    const Json budget = json.Get("retry_budget");
    response.retry_budget_initial = budget.GetDouble("initial_tokens");
    response.retry_budget_remaining = budget.GetDouble("remaining_tokens");
    response.retry_budget_acquired = budget.GetInt("acquired");
    response.retry_budget_denied = budget.GetInt("denied");
  }
  response.raw = json;
  return response;
}

Status QueryEngine::Deploy(faas::FunctionRegistry* registry,
                           double worker_memory_mib) {
  faas::FunctionConfig worker;
  worker.name = kWorkerFunction;
  worker.memory_mib = worker_memory_mib;
  // The coordinator's memory-aware scan sizing budgets against this.
  context_.worker_memory_mib = static_cast<int>(worker_memory_mib);
  worker.binary_size_bytes = 8 * kMiB;  // Small binaries: fast coldstarts.
  SKYRISE_RETURN_IF_ERROR(
      registry->Register(worker, MakeWorkerHandler(&context_)));

  faas::FunctionConfig coordinator;
  coordinator.name = kCoordinatorFunction;
  coordinator.memory_mib = 3538;  // 2 vCPUs.
  coordinator.binary_size_bytes = 8 * kMiB;
  SKYRISE_RETURN_IF_ERROR(
      registry->Register(coordinator, MakeCoordinatorHandler(&context_)));

  faas::FunctionConfig invoker;
  invoker.name = kInvokerFunction;
  invoker.memory_mib = 1769;
  invoker.binary_size_bytes = 8 * kMiB;
  SKYRISE_RETURN_IF_ERROR(
      registry->Register(invoker, MakeInvokerHandler(&context_)));
  return Status::OK();
}

void QueryEngine::Run(faas::ComputePlatform* platform, const QueryPlan& plan,
                      const std::string& query_id,
                      std::function<void(Result<QueryResponse>)> callback,
                      int partitions_per_worker) {
  context_.worker_platform = platform;
  Json payload = CoordinatorPayload(plan, query_id, partitions_per_worker);
  if (context_.query_deadline > 0) {
    // Absolute expiry; every layer below (platform timeouts, storage
    // retries) clamps against it. The coordinator fails the query typed at
    // this time instead of hanging to a driver horizon.
    payload["deadline_us"] = context_.env->now() + context_.query_deadline;
  }
  platform->Invoke(kCoordinatorFunction, std::move(payload),
                   [callback = std::move(callback)](Result<Json> result) {
                     if (!result.ok()) {
                       callback(result.status());
                       return;
                     }
                     callback(QueryResponse::FromJson(*result));
                   });
}

Result<data::Chunk> QueryEngine::FetchResult(
    const std::string& query_id) const {
  storage::Blob blob;
  SKYRISE_ASSIGN_OR_RETURN(blob,
                           context_.shuffle_store->Peek(ResultKey(query_id)));
  if (blob.is_synthetic()) {
    format::FileMeta meta;
    SKYRISE_ASSIGN_OR_RETURN(meta,
                             context_.catalog->Find(ResultKey(query_id)));
    return data::Chunk::Synthetic(meta.schema, meta.TotalRows());
  }
  format::FileMeta meta;
  SKYRISE_ASSIGN_OR_RETURN(
      meta, format::ParseFooter(blob.data(), 0,
                                static_cast<int64_t>(blob.size())));
  std::vector<std::string> projection;
  for (const auto& f : meta.schema.fields()) projection.push_back(f.name);
  data::Chunk out = data::Chunk::Empty(meta.schema);
  for (size_t rg = 0; rg < meta.row_groups.size(); ++rg) {
    std::vector<std::string> column_bytes;
    for (const auto& cm : meta.row_groups[rg].columns) {
      column_bytes.push_back(blob.data().substr(
          static_cast<size_t>(cm.offset), static_cast<size_t>(cm.size)));
    }
    data::Chunk chunk;
    SKYRISE_ASSIGN_OR_RETURN(
        chunk, format::DecodeRowGroup(meta, rg, projection, column_bytes));
    out.Append(chunk);
  }
  return out;
}

}  // namespace skyrise::engine
