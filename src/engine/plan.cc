#include "engine/plan.h"

#include "common/string_util.h"

namespace skyrise::engine {

namespace {

Json StringsToJson(const std::vector<std::string>& values) {
  Json out = Json::Array();
  for (const auto& v : values) out.Append(v);
  return out;
}

std::vector<std::string> StringsFromJson(const Json& json) {
  std::vector<std::string> out;
  if (json.is_array()) {
    for (const auto& v : json.AsArray()) out.push_back(v.AsString());
  }
  return out;
}

}  // namespace

Json InputSpec::ToJson() const {
  Json out = Json::Object();
  out["type"] = type == Type::kTable ? "table" : "shuffle";
  if (type == Type::kTable) {
    out["table"] = table;
    out["columns"] = StringsToJson(columns);
    if (pushdown) out["pushdown"] = pushdown->ToJson();
    out["pushdown_selectivity"] = pushdown_selectivity;
  } else {
    out["upstream_pipeline"] = upstream_pipeline;
  }
  return out;
}

Result<InputSpec> InputSpec::FromJson(const Json& json) {
  InputSpec spec;
  spec.type = json.GetString("type") == "shuffle" ? Type::kShuffle
                                                  : Type::kTable;
  spec.table = json.GetString("table");
  spec.columns = StringsFromJson(json.Get("columns"));
  if (json.Has("pushdown")) {
    SKYRISE_ASSIGN_OR_RETURN(spec.pushdown,
                             Expr::FromJson(json.Get("pushdown")));
  }
  spec.pushdown_selectivity = json.GetDouble("pushdown_selectivity", 1.0);
  spec.upstream_pipeline =
      static_cast<int>(json.GetInt("upstream_pipeline", -1));
  return spec;
}

Json OperatorSpec::ToJson() const {
  Json out = Json::Object();
  out["op"] = op;
  if (predicate) out["predicate"] = predicate->ToJson();
  out["selectivity"] = selectivity;
  if (!projections.empty()) {
    Json projs = Json::Array();
    for (const auto& [name, expr] : projections) {
      Json p = Json::Object();
      p["name"] = name;
      p["expr"] = expr->ToJson();
      projs.Append(std::move(p));
    }
    out["projections"] = std::move(projs);
  }
  if (!group_by.empty()) out["group_by"] = StringsToJson(group_by);
  if (!aggregates.empty()) {
    Json aggs = Json::Array();
    for (const auto& agg : aggregates) {
      Json a = Json::Object();
      a["func"] = agg.func;
      if (agg.expr) a["expr"] = agg.expr->ToJson();
      a["as"] = agg.as;
      aggs.Append(std::move(a));
    }
    out["aggregates"] = std::move(aggs);
  }
  out["groups_hint"] = groups_hint;
  if (!probe_keys.empty()) {
    out["probe_keys"] = StringsToJson(probe_keys);
    out["build_keys"] = StringsToJson(build_keys);
    out["build_columns"] = StringsToJson(build_columns);
    out["build_input"] = build_input;
    out["join_multiplier"] = join_multiplier;
  }
  if (!partition_keys.empty() || op == "partition_write") {
    out["partition_keys"] = StringsToJson(partition_keys);
    out["partition_count"] = partition_count;
  }
  if (!sort_keys.empty()) {
    out["sort_keys"] = StringsToJson(sort_keys);
    Json asc = Json::Array();
    for (bool b : sort_ascending) asc.Append(b);
    out["sort_ascending"] = std::move(asc);
  }
  out["limit"] = limit;
  if (op == "bb_sessionize") {
    out["session_window_days"] = session_window_days;
    out["target_category"] = target_category;
    out["udf_output_ratio"] = udf_output_ratio;
  }
  return out;
}

Result<OperatorSpec> OperatorSpec::FromJson(const Json& json) {
  OperatorSpec spec;
  spec.op = json.GetString("op");
  if (json.Has("predicate")) {
    SKYRISE_ASSIGN_OR_RETURN(spec.predicate,
                             Expr::FromJson(json.Get("predicate")));
  }
  spec.selectivity = json.GetDouble("selectivity", 1.0);
  if (json.Has("projections")) {
    for (const auto& p : json.Get("projections").AsArray()) {
      ExprPtr expr;
      SKYRISE_ASSIGN_OR_RETURN(expr, Expr::FromJson(p.Get("expr")));
      spec.projections.emplace_back(p.GetString("name"), std::move(expr));
    }
  }
  spec.group_by = StringsFromJson(json.Get("group_by"));
  if (json.Has("aggregates")) {
    for (const auto& a : json.Get("aggregates").AsArray()) {
      AggregateSpec agg;
      agg.func = a.GetString("func");
      if (a.Has("expr")) {
        SKYRISE_ASSIGN_OR_RETURN(agg.expr, Expr::FromJson(a.Get("expr")));
      }
      agg.as = a.GetString("as");
      spec.aggregates.push_back(std::move(agg));
    }
  }
  spec.groups_hint = json.GetInt("groups_hint", 1);
  spec.probe_keys = StringsFromJson(json.Get("probe_keys"));
  spec.build_keys = StringsFromJson(json.Get("build_keys"));
  spec.build_columns = StringsFromJson(json.Get("build_columns"));
  spec.build_input = static_cast<int>(json.GetInt("build_input", 1));
  spec.join_multiplier = json.GetDouble("join_multiplier", 1.0);
  spec.partition_keys = StringsFromJson(json.Get("partition_keys"));
  spec.partition_count = static_cast<int>(json.GetInt("partition_count", 1));
  spec.sort_keys = StringsFromJson(json.Get("sort_keys"));
  if (json.Has("sort_ascending")) {
    for (const auto& b : json.Get("sort_ascending").AsArray()) {
      spec.sort_ascending.push_back(b.AsBool());
    }
  }
  spec.limit = json.GetInt("limit", -1);
  spec.session_window_days = json.GetInt("session_window_days", 10);
  spec.target_category = json.GetInt("target_category", 1);
  spec.udf_output_ratio = json.GetDouble("udf_output_ratio", 0.05);
  return spec;
}

Json PipelineSpec::ToJson() const {
  Json out = Json::Object();
  out["id"] = id;
  Json ins = Json::Array();
  for (const auto& input : inputs) ins.Append(input.ToJson());
  out["inputs"] = std::move(ins);
  Json op_list = Json::Array();
  for (const auto& op : ops) op_list.Append(op.ToJson());
  out["ops"] = std::move(op_list);
  Json deps = Json::Array();
  for (int d : depends_on) deps.Append(d);
  out["depends_on"] = std::move(deps);
  return out;
}

Result<PipelineSpec> PipelineSpec::FromJson(const Json& json) {
  PipelineSpec spec;
  spec.id = static_cast<int>(json.GetInt("id"));
  for (const auto& input : json.Get("inputs").AsArray()) {
    InputSpec parsed;
    SKYRISE_ASSIGN_OR_RETURN(parsed, InputSpec::FromJson(input));
    spec.inputs.push_back(std::move(parsed));
  }
  for (const auto& op : json.Get("ops").AsArray()) {
    OperatorSpec parsed;
    SKYRISE_ASSIGN_OR_RETURN(parsed, OperatorSpec::FromJson(op));
    spec.ops.push_back(std::move(parsed));
  }
  if (json.Has("depends_on")) {
    for (const auto& d : json.Get("depends_on").AsArray()) {
      spec.depends_on.push_back(static_cast<int>(d.AsInt()));
    }
  }
  return spec;
}

Json QueryPlan::ToJson() const {
  Json out = Json::Object();
  out["query_name"] = query_name;
  Json list = Json::Array();
  for (const auto& pipeline : pipelines) list.Append(pipeline.ToJson());
  out["pipelines"] = std::move(list);
  return out;
}

Result<QueryPlan> QueryPlan::FromJson(const Json& json) {
  QueryPlan plan;
  plan.query_name = json.GetString("query_name");
  for (const auto& p : json.Get("pipelines").AsArray()) {
    PipelineSpec parsed;
    SKYRISE_ASSIGN_OR_RETURN(parsed, PipelineSpec::FromJson(p));
    plan.pipelines.push_back(std::move(parsed));
  }
  return plan;
}

const PipelineSpec* QueryPlan::FindPipeline(int id) const {
  for (const auto& pipeline : pipelines) {
    if (pipeline.id == id) return &pipeline;
  }
  return nullptr;
}

std::string ShuffleKey(const std::string& query_id, int pipeline, int fragment,
                       int partition) {
  return StrFormat("shuffle/%s/p%d/f%05d/part-%05d.cof", query_id.c_str(),
                   pipeline, fragment, partition);
}

std::string ResultKey(const std::string& query_id) {
  return StrFormat("results/%s/final.cof", query_id.c_str());
}

}  // namespace skyrise::engine
