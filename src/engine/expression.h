#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "data/chunk.h"

/// \file expression.h
/// Scalar expressions for predicates and projections, JSON-serializable as
/// part of physical plans. Supports column references, numeric/string
/// literals, comparisons (column-literal and column-column), boolean
/// AND/OR, arithmetic (incl. division), BETWEEN, string IN-lists, and
/// boolean-to-numeric indicators (for conditional aggregation, e.g. the Q12
/// priority counts) — everything the paper's query suite needs.

namespace skyrise::engine {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  enum class Kind {
    kColumn,
    kNumber,
    kString,
    kCompare,  ///< op in {"<","<=",">",">=","==","!="}.
    kAnd,
    kOr,
    kArith,    ///< op in {"+","-","*"}.
    kBetween,  ///< children[0] in [children[1], children[2]] (numeric).
    kInList,   ///< children[0]'s string value in literal list.
    kIndicator,  ///< 1.0 when the boolean child holds, else 0.0.
  };

  Kind kind;
  std::string column;                ///< kColumn.
  double number = 0;                 ///< kNumber.
  std::string text;                  ///< kString.
  std::string op;                    ///< kCompare / kArith ("+","-","*","/").
  std::vector<ExprPtr> children;
  std::vector<std::string> in_list;  ///< kInList.

  Json ToJson() const;
  [[nodiscard]] static Result<ExprPtr> FromJson(const Json& json);
};

// Builders.
ExprPtr Col(const std::string& name);
ExprPtr Num(double value);
ExprPtr Str(const std::string& value);
ExprPtr Cmp(const std::string& op, ExprPtr lhs, ExprPtr rhs);
ExprPtr And(ExprPtr lhs, ExprPtr rhs);
ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
ExprPtr Arith(const std::string& op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Between(ExprPtr value, ExprPtr lo, ExprPtr hi);
ExprPtr InList(ExprPtr value, std::vector<std::string> values);
ExprPtr Indicator(ExprPtr condition);

/// Evaluates a boolean expression over a materialized chunk; returns the
/// indices of qualifying rows.
[[nodiscard]] Result<std::vector<uint32_t>> EvalPredicate(const Expr& expr,
                                            const data::Chunk& chunk);

/// Eval-into variant: clears and refills `out`, reusing its capacity across
/// morsels. The hot path under engine::FragmentPipeline's filter operator;
/// EvalPredicate wraps it.
[[nodiscard]] Status EvalPredicateInto(const Expr& expr,
                                       const data::Chunk& chunk,
                                       std::vector<uint32_t>* out);

/// Evaluates a numeric expression over a chunk into a double column.
[[nodiscard]] Result<std::vector<double>> EvalNumeric(const Expr& expr,
                                        const data::Chunk& chunk);

/// Eval-into variant of EvalNumeric; clears and refills `out`.
[[nodiscard]] Status EvalNumericInto(const Expr& expr,
                                     const data::Chunk& chunk,
                                     std::vector<double>* out);

/// Columns referenced anywhere in the expression (deduplicated).
void CollectColumns(const Expr& expr, std::vector<std::string>* out);

/// Conservative check whether a row group with [min, max] on the predicate's
/// columns can contain matches; used for row-group pruning. Returns true
/// (keep) when unsure.
bool RangeMayMatch(const Expr& expr,
                   const std::function<bool(const std::string&, double*,
                                            double*)>& column_range);

}  // namespace skyrise::engine
