#include "engine/worker.h"

#include <deque>
#include <memory>
#include <optional>

#include "common/string_util.h"

namespace skyrise::engine {

namespace {

using data::Chunk;
using storage::Blob;

/// One pending ranged read; large column chunks are split into
/// `range_chunk_bytes` pieces processed in parallel (Section 3.2).
struct ReadOp {
  std::string key;
  int64_t offset = 0;
  int64_t length = 0;
  size_t buffer = 0;  ///< Result slot.
  int64_t buffer_offset = 0;
};

/// Issues reads with bounded concurrency against a retrying client,
/// reassembling split ranges, then fires `done` with the buffers. Used for
/// build-side inputs, which must materialize fully before the probe stream
/// starts.
class ReadBatch : public std::enable_shared_from_this<ReadBatch> {
 public:
  ReadBatch(EngineContext* ec, storage::RetryClient* client,
            storage::ClientContext storage_ctx, size_t buffer_count)
      : ec_(ec), client_(client), storage_ctx_(std::move(storage_ctx)) {
    buffers_.resize(buffer_count);
    synthetic_.assign(buffer_count, false);
  }

  void Add(ReadOp op) {
    // Split oversized ranges into parallel chunked requests.
    while (op.length > ec_->range_chunk_bytes) {
      ReadOp piece = op;
      piece.length = ec_->range_chunk_bytes;
      pending_.push_back(piece);
      op.offset += ec_->range_chunk_bytes;
      op.buffer_offset += ec_->range_chunk_bytes;
      op.length -= ec_->range_chunk_bytes;
    }
    if (op.length > 0) pending_.push_back(op);
  }

  /// `done(status, buffers, synthetic_flags, bytes_read)`.
  using DoneFn = std::function<void(Status, std::vector<std::string>,
                                    std::vector<bool>, int64_t)>;

  void Start(DoneFn done) {
    done_ = std::move(done);
    if (pending_.empty()) {
      Settle(Status::OK());
      return;
    }
    total_ = pending_.size();
    Pump();
  }

 private:
  void Pump() {
    while (outstanding_ < ec_->max_concurrent_requests && !pending_.empty()) {
      ReadOp op = pending_.front();
      pending_.pop_front();
      ++outstanding_;
      auto self = shared_from_this();
      client_->GetRange(op.key, op.offset, op.length, storage_ctx_,
                        [self, op](Result<Blob> result) {
                          self->OnRead(op, std::move(result));
                        });
    }
  }

  void OnRead(const ReadOp& op, Result<Blob> result) {
    --outstanding_;
    ++completed_;
    if (settled_) return;
    if (!result.ok()) {
      Settle(result.status());
      return;
    }
    bytes_read_ += result->size();
    if (result->is_synthetic()) {
      synthetic_[op.buffer] = true;
    } else {
      std::string& buffer = buffers_[op.buffer];
      const size_t end = static_cast<size_t>(op.buffer_offset) +
                         result->data().size();
      if (buffer.size() < end) buffer.resize(end);
      result->data().copy(buffer.data() + op.buffer_offset,
                          result->data().size());
    }
    if (completed_ == total_) {
      Settle(Status::OK());
      return;
    }
    Pump();
  }

  void Settle(Status status) {
    if (settled_) return;
    settled_ = true;
    done_(std::move(status), std::move(buffers_), std::move(synthetic_),
          bytes_read_);
  }

  EngineContext* ec_;
  // Client stub for the storage crossings (RetryClient::GetRange).
  // skyrise-check: allow(domain-escape) — client stub for a crossing API.
  storage::RetryClient* client_;
  storage::ClientContext storage_ctx_;
  std::deque<ReadOp> pending_;
  std::vector<std::string> buffers_;
  std::vector<bool> synthetic_;
  size_t total_ = 0;
  size_t completed_ = 0;
  int outstanding_ = 0;
  int64_t bytes_read_ = 0;
  bool settled_ = false;
  DoneFn done_;
};

/// Executes one fragment as a streaming morsel pipeline: build-side inputs
/// (pipeline inputs 1..n) materialize first, then the streamed input 0 is
/// read one row group at a time and pushed through a FragmentPipeline while
/// further ranged reads are in flight — I/O and compute overlap on the sim
/// event loop. Decoded row groups enter the pipeline in deterministic
/// (file, row group) / upstream-fragment order regardless of which reads
/// straggled or were retried, so result bytes are reproducible under faults.
class WorkerTask : public std::enable_shared_from_this<WorkerTask> {
 public:
  WorkerTask(EngineContext* ec,
             std::shared_ptr<faas::FunctionContext> fctx)
      : ec_(ec), fctx_(std::move(fctx)), cost_(ec->cost_model) {}

  void Run() {
    start_ = Now();
    tracer_ = fctx_->tracer();
    metrics_ = fctx_->metrics();
    const Json& payload = fctx_->payload();
    query_id_ = payload.GetString("query_id");
    fragment_ = static_cast<int>(payload.GetInt("fragment"));
    barrier_participants_ =
        static_cast<int>(payload.GetInt("barrier_participants", 0));
    // Phase spans live on the "worker" track under the platform's execution
    // span; storage request spans hang off the phase that issued them.
    if (tracer_ != nullptr) {
      input_span_ = tracer_->Begin("worker", "input", "engine", fctx_->span());
      tracer_->SetArg(input_span_, "fragment", Json(fragment_));
    }
    auto parsed = PipelineSpec::FromJson(payload.Get("pipeline"));
    if (!parsed.ok()) {
      Fail(parsed.status());
      return;
    }
    pipeline_ = std::move(parsed).ValueUnsafe();
    for (const auto& input : payload.Get("inputs").AsArray()) {
      WorkerInputAssignment assignment;
      for (const auto& f : input.Get("files").AsArray()) {
        assignment.files.push_back(
            TableFileAssignment{f.GetString("key"), f.GetInt("size")});
      }
      assignment.upstream_fragments =
          static_cast<int>(input.GetInt("upstream_fragments"));
      assignments_.push_back(std::move(assignment));
    }
    if (assignments_.size() != pipeline_.inputs.size()) {
      Fail(Status::InvalidArgument("input assignment mismatch"));
      return;
    }
    table_client_ = std::make_unique<storage::RetryClient>(
        ec_->env, ec_->table_store, ec_->retry,
        0x9000 + static_cast<uint64_t>(fragment_));
    shuffle_client_ = std::make_unique<storage::RetryClient>(
        ec_->env, ec_->shuffle_store, ec_->retry,
        0xA000 + static_cast<uint64_t>(fragment_));
    storage_ctx_.nic = fctx_->nic();
    storage_ctx_.fabric = fctx_->fabric();
    storage_ctx_.meter = ec_->meter;
    storage_ctx_.tracer = tracer_;
    storage_ctx_.span = input_span_;
    storage_ctx_.metrics = metrics_;
    // Overload robustness: the query deadline rides in the payload; the
    // retry-token pool is this query's coordinator-published grant, looked
    // up by query id (queries interleave on a shared context). A missing
    // entry means the coordinator already finished — this is a zombie
    // attempt and runs without a pooled budget.
    storage_ctx_.deadline =
        Deadline::At(fctx_->payload().GetInt("deadline_us", 0));
    const auto* grants = ec_->FindGrants(query_id_);
    storage_ctx_.retry_budget =
        grants != nullptr ? grants->retry_budget : nullptr;
    storage_ctx_.breaker = ec_->storage_breaker;
    loaded_.resize(pipeline_.inputs.size());
    LoadBuildInput(1);
  }

 private:
  SimTime Now() const { return ec_->env->now(); }

  void Fail(Status status) {
    if (done_) return;
    done_ = true;
    if (tracer_ != nullptr) {
      // Close whichever phase is still open (EndWith no-ops on the rest).
      tracer_->EndWith(input_span_, "error");
      tracer_->EndWith(compute_span_, "error");
      tracer_->EndWith(output_span_, "error");
    }
    fctx_->FinishError(std::move(status));
  }

  // --- Build-side inputs (pipeline inputs 1..n): fully materialized. ---

  void LoadBuildInput(size_t index) {
    if (index >= pipeline_.inputs.size()) {
      MaybeBarrier();
      return;
    }
    const InputSpec& spec = pipeline_.inputs[index];
    if (spec.type == InputSpec::Type::kTable) {
      LoadTableInput(index);
    } else {
      LoadShuffleInput(index);
    }
  }

  // --- Table input: footer fetch -> prune -> chunked column reads. ---

  void LoadTableInput(size_t index) {
    auto files = std::make_shared<std::vector<TableFileAssignment>>(
        assignments_[index].files);
    LoadNextFile(index, files, 0);
  }

  void LoadNextFile(size_t index,
                    std::shared_ptr<std::vector<TableFileAssignment>> files,
                    size_t file_index) {
    if (file_index >= files->size()) {
      LoadBuildInput(index + 1);
      return;
    }
    const TableFileAssignment& file = (*files)[file_index];
    auto self = shared_from_this();
    FetchFooter(file, [self, index, files, file_index](
                          format::FileMeta meta) {
      self->ReadFileColumns(index, files, file_index, (*files)[file_index],
                            std::move(meta));
    });
  }

  /// Fetches + parses a file footer (or resolves it via the synthetic
  /// catalog) and hands the FileMeta to `then`. Failures finish the task.
  void FetchFooter(const TableFileAssignment& file,
                   std::function<void(format::FileMeta)> then) {
    const int64_t fetch =
        std::min<int64_t>(file.size, format::kFooterFetchSize);
    auto self = shared_from_this();
    table_client_->GetRange(
        file.key, file.size - fetch, fetch, storage_ctx_,
        [self, file, fetch, then](Result<Blob> result) {
          if (self->done_) return;
          if (!result.ok()) {
            self->Fail(result.status());
            return;
          }
          self->bytes_read_ += result->size();
          format::FileMeta meta;
          if (result->is_synthetic()) {
            auto found = self->ec_->catalog->Find(file.key);
            if (!found.ok()) {
              self->Fail(found.status());
              return;
            }
            meta = std::move(found).ValueUnsafe();
          } else {
            auto parsed = format::ParseFooter(result->data(),
                                              file.size - fetch, file.size);
            if (!parsed.ok()) {
              self->Fail(parsed.status());
              return;
            }
            meta = std::move(parsed).ValueUnsafe();
          }
          then(std::move(meta));
        });
  }

  /// Row-group pruning on min/max statistics (selection pushdown).
  std::vector<size_t> PruneRowGroups(const InputSpec& spec,
                                     const format::FileMeta& meta) const {
    std::vector<size_t> survivors;
    for (size_t rg = 0; rg < meta.row_groups.size(); ++rg) {
      bool keep = true;
      if (spec.pushdown) {
        const auto& groups = meta.row_groups[rg];
        keep = RangeMayMatch(
            *spec.pushdown,
            [&](const std::string& column, double* min, double* max) {
              const int idx = meta.schema.FieldIndex(column);
              if (idx < 0) return false;
              const auto& cm = groups.columns[static_cast<size_t>(idx)];
              if (!cm.min.has_value() || !cm.max.has_value()) return false;
              *min = *cm.min;
              *max = *cm.max;
              return true;
            });
      }
      if (keep) survivors.push_back(rg);
    }
    return survivors;
  }

  std::vector<std::string> ProjectionFor(const InputSpec& spec,
                                         const format::FileMeta& meta) const {
    std::vector<std::string> projection = spec.columns;
    if (projection.empty()) {
      for (const auto& f : meta.schema.fields()) projection.push_back(f.name);
    }
    return projection;
  }

  /// Applies the input's pushdown predicate to a freshly decoded row group.
  /// Synthetic pruning already reduced groups; the residual selectivity is
  /// relative to the pruned set.
  [[nodiscard]] Result<Chunk> ApplyPushdown(const InputSpec& spec,
                                            Chunk&& chunk) {
    if (!spec.pushdown) return std::move(chunk);
    OperatorSpec filter;
    filter.op = "filter";
    filter.predicate = spec.pushdown;
    filter.selectivity = spec.pushdown_selectivity;
    Result<Chunk> out = ApplyFilterOp(filter, std::move(chunk), &cost_);
    // ApplyFilterOp copies surviving rows out; the decoded source buffers
    // go back to the pool for the next row group.
    // skyrise-check: allow(use-after-move) — Release accepts moved-from chunks.
    chunk_pool_.Release(std::move(chunk));
    return out;
  }

  void ReadFileColumns(size_t index,
                       std::shared_ptr<std::vector<TableFileAssignment>> files,
                       size_t file_index, const TableFileAssignment& file,
                       format::FileMeta meta) {
    const InputSpec& spec = pipeline_.inputs[index];
    auto meta_ptr = std::make_shared<format::FileMeta>(std::move(meta));
    auto survivors =
        std::make_shared<std::vector<size_t>>(PruneRowGroups(spec, *meta_ptr));
    std::vector<std::string> projection = ProjectionFor(spec, *meta_ptr);

    // Make the input schema known even if every row group is pruned.
    {
      auto projected = meta_ptr->schema.Select(projection);
      if (!projected.ok()) {
        Fail(projected.status());
        return;
      }
      if (!loaded_[index].has_value()) {
        loaded_[index] = Chunk::Empty(*projected);
      }
    }
    auto batch = std::make_shared<ReadBatch>(
        ec_, table_client_.get(), storage_ctx_,
        survivors->size() * projection.size());
    size_t buffer = 0;
    for (size_t rg : *survivors) {
      auto ranges =
          format::RowGroupColumnRanges(*meta_ptr, rg, projection);
      if (!ranges.ok()) {
        Fail(ranges.status());
        return;
      }
      for (const format::ColumnRange& range : *ranges) {
        batch->Add(ReadOp{file.key, range.offset, range.size, buffer, 0});
        ++buffer;
      }
    }
    auto self = shared_from_this();
    auto projection_ptr =
        std::make_shared<std::vector<std::string>>(std::move(projection));
    batch->Start([self, index, files, file_index, meta_ptr, survivors,
                  projection_ptr](Status status,
                                  std::vector<std::string> buffers,
                                  std::vector<bool> synthetic,
                                  int64_t bytes) {
      if (!status.ok()) {
        self->Fail(status);
        return;
      }
      self->bytes_read_ += bytes;
      self->cost_.AddNs(static_cast<double>(bytes) *
                        self->cost_.model().decode_ns_per_byte);
      size_t buffer = 0;
      for (size_t rg : *survivors) {
        std::vector<std::string> column_bytes;
        for (size_t c = 0; c < projection_ptr->size(); ++c) {
          column_bytes.push_back(std::move(buffers[buffer]));
          (void)synthetic;
          ++buffer;
        }
        Chunk decoded = self->chunk_pool_.AcquireRaw();
        const Status decode_status = format::DecodeRowGroupInto(
            *meta_ptr, rg, *projection_ptr, column_bytes, &decoded);
        if (!decode_status.ok()) {
          self->Fail(decode_status);
          return;
        }
        auto filtered = self->ApplyPushdown(self->pipeline_.inputs[index],
                                            std::move(decoded));
        if (!filtered.ok()) {
          self->Fail(filtered.status());
          return;
        }
        self->AccumulateInput(index, std::move(filtered).ValueUnsafe());
      }
      self->LoadNextFile(index, files, file_index + 1);
    });
  }

  // --- Shuffle input: read every upstream fragment's partition object. ---

  void LoadShuffleInput(size_t index) {
    const InputSpec& spec = pipeline_.inputs[index];
    const int upstream = spec.upstream_pipeline;
    const int count = assignments_[index].upstream_fragments;
    auto remaining = std::make_shared<int>(count);
    auto failed = std::make_shared<bool>(false);
    if (count == 0) {
      LoadBuildInput(index + 1);
      return;
    }
    auto self = shared_from_this();
    auto outstanding = std::make_shared<int>(0);
    auto next = std::make_shared<int>(0);
    // Reads complete in storage-latency order, which is not deterministic
    // across fault/retry schedules. Decode into one slot per upstream
    // fragment and accumulate in fragment order once all reads are in, so
    // the input chunk order (and thus the query result bytes) is identical
    // regardless of which attempts straggled or were retried.
    auto slots = std::make_shared<std::vector<std::vector<Chunk>>>(
        static_cast<size_t>(count));
    auto pump = std::make_shared<std::function<void()>>();
    *pump = [self, index, upstream, count, remaining, failed, outstanding,
             next, slots, pump] {
      while (*outstanding < self->ec_->max_concurrent_requests &&
             *next < count) {
        const int uf = (*next)++;
        ++(*outstanding);
        const std::string key =
            ShuffleKey(self->query_id_, upstream, uf, self->fragment_);
        self->shuffle_client_->Get(
            key, self->storage_ctx_,
            [self, index, key, uf, remaining, failed, outstanding, slots,
             pump](Result<Blob> result) {
              --(*outstanding);
              if (*failed) return;
              if (!result.ok()) {
                *failed = true;
                self->Fail(result.status());
                return;
              }
              self->bytes_read_ += result->size();
              if (!self->DecodeShuffleObject(
                      key, *result, &(*slots)[static_cast<size_t>(uf)])) {
                *failed = true;
                return;
              }
              if (--(*remaining) == 0) {
                for (auto& slot : *slots) {
                  for (auto& chunk : slot) {
                    self->AccumulateInput(index, std::move(chunk));
                  }
                }
                self->LoadBuildInput(index + 1);
                return;
              }
              (*pump)();
            });
      }
    };
    (*pump)();
  }

  bool DecodeShuffleObject(const std::string& key, const Blob& blob,
                           std::vector<Chunk>* out) {
    format::FileMeta meta;
    if (blob.is_synthetic()) {
      auto found = ec_->catalog->Find(key);
      if (!found.ok()) {
        Fail(found.status());
        return false;
      }
      meta = std::move(found).ValueUnsafe();
    } else {
      auto parsed = format::ParseFooter(blob.data(), 0,
                                        static_cast<int64_t>(blob.size()));
      if (!parsed.ok()) {
        Fail(parsed.status());
        return false;
      }
      meta = std::move(parsed).ValueUnsafe();
    }
    cost_.AddNs(static_cast<double>(blob.size()) *
                cost_.model().decode_ns_per_byte);
    std::vector<std::string> projection;
    for (const auto& f : meta.schema.fields()) projection.push_back(f.name);
    for (size_t rg = 0; rg < meta.row_groups.size(); ++rg) {
      std::vector<std::string> column_bytes;
      for (size_t c = 0; c < projection.size(); ++c) {
        if (meta.synthetic) {
          column_bytes.emplace_back();
        } else {
          const auto& cm = meta.row_groups[rg].columns[c];
          column_bytes.push_back(blob.data().substr(
              static_cast<size_t>(cm.offset), static_cast<size_t>(cm.size)));
        }
      }
      Chunk decoded = chunk_pool_.AcquireRaw();
      const Status decode_status =
          format::DecodeRowGroupInto(meta, rg, projection, column_bytes,
                                     &decoded);
      if (!decode_status.ok()) {
        Fail(decode_status);
        return false;
      }
      out->push_back(std::move(decoded));
    }
    if (meta.row_groups.empty()) {
      out->push_back(Chunk::Empty(meta.schema));
    }
    return true;
  }

  void AccumulateInput(size_t index, Chunk&& chunk) {
    if (!loaded_[index].has_value()) {
      loaded_[index] = std::move(chunk);
      return;
    }
    loaded_[index]->Append(chunk);
    chunk_pool_.Release(std::move(chunk));
  }

  // --- Barrier, then the streamed input drives the pipeline. ---

  void MaybeBarrier() {
    bool has_barrier = false;
    for (const auto& op : pipeline_.ops) {
      if (op.op == "barrier") has_barrier = true;
    }
    if (!has_barrier || ec_->queue == nullptr || barrier_participants_ <= 0) {
      StartStream();
      return;
    }
    const std::string name =
        StrFormat("%s/p%d/barrier", query_id_.c_str(), pipeline_.id);
    obs::SpanId barrier_span = obs::kNoSpan;
    if (tracer_ != nullptr) {
      barrier_span = tracer_->Begin("worker", "barrier", "engine",
                                    input_span_);
    }
    auto self = shared_from_this();
    ec_->queue->Arrive(name, barrier_participants_, [self, barrier_span] {
      if (self->tracer_ != nullptr) self->tracer_->End(barrier_span);
      self->StartStream();
    });
  }

  void StartStream() {
    std::vector<Chunk> builds;
    for (size_t i = 1; i < loaded_.size(); ++i) {
      builds.push_back(loaded_[i].has_value() ? std::move(*loaded_[i])
                                              : Chunk::Empty(data::Schema()));
    }
    executor_ = std::make_unique<FragmentPipeline>(
        pipeline_, std::move(builds), &cost_, &memory_, ec_->morsel_rows,
        &chunk_pool_);
    if (pipeline_.inputs.empty()) {
      StreamEof();
      return;
    }
    if (pipeline_.inputs[0].type == InputSpec::Type::kTable) {
      StreamTableInput();
    } else {
      StreamShuffleInput();
    }
  }

  // --- Streamed table input: per-row-group ranged reads, decoded and
  // pushed in (file, row group) order while later reads are in flight. ---

  void StreamTableInput() {
    stream_files_ = std::make_shared<std::vector<TableFileAssignment>>(
        assignments_[0].files);
    StreamNextFile(0);
  }

  void StreamNextFile(size_t file_index) {
    if (file_index >= stream_files_->size()) {
      StreamEof();
      return;
    }
    const TableFileAssignment& file = (*stream_files_)[file_index];
    auto self = shared_from_this();
    FetchFooter(file, [self, file_index](format::FileMeta meta) {
      self->StreamFileColumns(file_index, std::move(meta));
    });
  }

  void StreamFileColumns(size_t file_index, format::FileMeta meta) {
    const InputSpec& spec = pipeline_.inputs[0];
    stream_meta_ = std::make_shared<format::FileMeta>(std::move(meta));
    stream_projection_ = ProjectionFor(spec, *stream_meta_);
    stream_survivors_ = PruneRowGroups(spec, *stream_meta_);
    {
      auto projected = stream_meta_->schema.Select(stream_projection_);
      if (!projected.ok()) {
        Fail(projected.status());
        return;
      }
      if (!fallback_schema_.has_value()) fallback_schema_ = *projected;
    }
    stream_file_index_ = file_index;
    if (stream_survivors_.empty()) {
      StreamNextFile(file_index + 1);
      return;
    }
    const size_t cols = stream_projection_.size();
    const std::string& key = (*stream_files_)[file_index].key;
    stream_buffers_.assign(stream_survivors_.size() * cols, std::string());
    stream_synthetic_.assign(stream_survivors_.size() * cols, false);
    rg_pieces_.assign(stream_survivors_.size(), 0);
    rg_ready_.assign(stream_survivors_.size(), false);
    rg_cursor_ = 0;
    for (size_t slot = 0; slot < stream_survivors_.size(); ++slot) {
      auto ranges = format::RowGroupColumnRanges(
          *stream_meta_, stream_survivors_[slot], stream_projection_);
      if (!ranges.ok()) {
        Fail(ranges.status());
        return;
      }
      for (size_t c = 0; c < cols; ++c) {
        ReadOp op{key, (*ranges)[c].offset, (*ranges)[c].size, slot * cols + c,
                  0};
        // Split oversized ranges into parallel chunked requests.
        while (op.length > ec_->range_chunk_bytes) {
          ReadOp piece = op;
          piece.length = ec_->range_chunk_bytes;
          stream_pending_.push_back(piece);
          ++rg_pieces_[slot];
          op.offset += ec_->range_chunk_bytes;
          op.buffer_offset += ec_->range_chunk_bytes;
          op.length -= ec_->range_chunk_bytes;
        }
        if (op.length > 0) {
          stream_pending_.push_back(op);
          ++rg_pieces_[slot];
        }
      }
      if (rg_pieces_[slot] == 0) rg_ready_[slot] = true;
    }
    AdvanceRowGroupCursor();
    PumpStreamReads();
  }

  void PumpStreamReads() {
    auto self = shared_from_this();
    while (stream_outstanding_ < ec_->max_concurrent_requests &&
           !stream_pending_.empty()) {
      ReadOp op = stream_pending_.front();
      stream_pending_.pop_front();
      ++stream_outstanding_;
      table_client_->GetRange(op.key, op.offset, op.length, storage_ctx_,
                              [self, op](Result<Blob> result) {
                                self->OnStreamRead(op, std::move(result));
                              });
    }
  }

  void OnStreamRead(const ReadOp& op, Result<Blob> result) {
    --stream_outstanding_;
    if (done_) return;
    if (!result.ok()) {
      Fail(result.status());
      return;
    }
    bytes_read_ += result->size();
    cost_.AddNs(static_cast<double>(result->size()) *
                cost_.model().decode_ns_per_byte);
    if (result->is_synthetic()) {
      stream_synthetic_[op.buffer] = true;
    } else {
      std::string& buffer = stream_buffers_[op.buffer];
      const size_t end = static_cast<size_t>(op.buffer_offset) +
                         result->data().size();
      if (buffer.size() < end) buffer.resize(end);
      result->data().copy(buffer.data() + op.buffer_offset,
                          result->data().size());
    }
    const size_t slot = op.buffer / stream_projection_.size();
    if (--rg_pieces_[slot] == 0) {
      rg_ready_[slot] = true;
      AdvanceRowGroupCursor();
    }
    if (!done_) PumpStreamReads();
  }

  /// Decodes + pushes every ready row group at the front of the in-order
  /// cursor, then moves to the next file once this one is fully decoded.
  void AdvanceRowGroupCursor() {
    const size_t cols = stream_projection_.size();
    while (rg_cursor_ < stream_survivors_.size() && rg_ready_[rg_cursor_]) {
      std::vector<std::string> column_bytes;
      column_bytes.reserve(cols);
      for (size_t c = 0; c < cols; ++c) {
        column_bytes.push_back(
            std::move(stream_buffers_[rg_cursor_ * cols + c]));
      }
      Chunk decoded = chunk_pool_.AcquireRaw();
      const Status decode_status = format::DecodeRowGroupInto(
          *stream_meta_, stream_survivors_[rg_cursor_], stream_projection_,
          column_bytes, &decoded);
      if (!decode_status.ok()) {
        Fail(decode_status);
        return;
      }
      auto filtered = ApplyPushdown(pipeline_.inputs[0], std::move(decoded));
      if (!filtered.ok()) {
        Fail(filtered.status());
        return;
      }
      ++rg_cursor_;
      Enqueue(std::move(filtered).ValueUnsafe());
    }
    if (!stream_survivors_.empty() &&
        rg_cursor_ == stream_survivors_.size()) {
      stream_survivors_.clear();
      rg_cursor_ = 0;
      StreamNextFile(stream_file_index_ + 1);
    }
  }

  // --- Streamed shuffle input: bounded GETs, decoded per upstream fragment
  // and pushed in fragment order as the completion cursor advances. ---

  void StreamShuffleInput() {
    const int count = assignments_[0].upstream_fragments;
    if (count == 0) {
      StreamEof();
      return;
    }
    shuffle_slots_.assign(static_cast<size_t>(count), {});
    shuffle_done_.assign(static_cast<size_t>(count), false);
    shuffle_cursor_ = 0;
    shuffle_next_ = 0;
    PumpShuffleStream(count);
  }

  void PumpShuffleStream(int count) {
    const int upstream = pipeline_.inputs[0].upstream_pipeline;
    auto self = shared_from_this();
    while (shuffle_outstanding_ < ec_->max_concurrent_requests &&
           shuffle_next_ < count) {
      const int uf = shuffle_next_++;
      ++shuffle_outstanding_;
      const std::string key = ShuffleKey(query_id_, upstream, uf, fragment_);
      shuffle_client_->Get(
          key, storage_ctx_, [self, key, uf, count](Result<Blob> result) {
            --self->shuffle_outstanding_;
            if (self->done_) return;
            if (!result.ok()) {
              self->Fail(result.status());
              return;
            }
            self->bytes_read_ += result->size();
            if (!self->DecodeShuffleObject(
                    key, *result,
                    &self->shuffle_slots_[static_cast<size_t>(uf)])) {
              return;
            }
            self->shuffle_done_[static_cast<size_t>(uf)] = true;
            self->AdvanceShuffleCursor(count);
            if (!self->done_) self->PumpShuffleStream(count);
          });
    }
  }

  void AdvanceShuffleCursor(int count) {
    while (shuffle_cursor_ < count &&
           shuffle_done_[static_cast<size_t>(shuffle_cursor_)]) {
      for (auto& chunk : shuffle_slots_[static_cast<size_t>(shuffle_cursor_)]) {
        Enqueue(std::move(chunk));
      }
      shuffle_slots_[static_cast<size_t>(shuffle_cursor_)].clear();
      ++shuffle_cursor_;
    }
    if (shuffle_cursor_ == count) StreamEof();
  }

  // --- The compute pump: one morsel per Compute hop, charged as the
  // cumulative cost delta so total CPU equals the materialized path. ---

  void Enqueue(Chunk&& morsel) {
    ++morsels_seen_;
    morsels_.push_back(std::move(morsel));
    PumpCompute();
  }

  void StreamEof() {
    // Zero-morsel streams (e.g. every row group pruned) still run the chain
    // once over an empty batch with the projected schema, as the
    // materialized path did.
    if (morsels_seen_ == 0 && fallback_schema_.has_value()) {
      morsels_.push_back(Chunk::Empty(*fallback_schema_));
    }
    stream_eof_ = true;
    input_done_ = Now();
    if (tracer_ != nullptr) {
      tracer_->SetArg(input_span_, "bytes_read", Json(bytes_read_));
      tracer_->End(input_span_);
      compute_span_ = tracer_->Begin("worker", "compute", "engine",
                                     fctx_->span());
      tracer_->SetArg(compute_span_, "fragment", Json(fragment_));
      storage_ctx_.span = compute_span_;
    }
    PumpCompute();
  }

  void PumpCompute() {
    if (done_ || computing_ || finished_ || executor_ == nullptr) return;
    if (morsels_.empty()) {
      if (stream_eof_) FinishPipeline();
      return;
    }
    Chunk morsel = std::move(morsels_.front());
    morsels_.pop_front();
    Status pushed = executor_->Push(std::move(morsel));
    if (!pushed.ok()) {
      Fail(std::move(pushed));
      return;
    }
    computing_ = true;
    auto self = shared_from_this();
    ChargeCompute([self] {
      self->computing_ = false;
      self->PumpCompute();
    });
  }

  /// Sleeps for the not-yet-charged share of the accumulated CPU cost. The
  /// cumulative-delta scheme telescopes: total charged time equals
  /// Duration(total cost) regardless of how many batches it was split over.
  void ChargeCompute(std::function<void()> then) {
    const SimDuration total = cost_.Duration(fctx_->config().vcpus());
    const SimDuration delta = total - charged_;
    charged_ = total;
    fctx_->Compute(delta, std::move(then));
  }

  void FinishPipeline() {
    finished_ = true;
    auto outputs = executor_->Finish();
    if (!outputs.ok()) {
      Fail(outputs.status());
      return;
    }
    auto outs = std::make_shared<std::vector<FragmentOutput>>(
        std::move(*outputs));
    auto self = shared_from_this();
    ChargeCompute([self, outs] {
      self->compute_done_ = self->Now();
      if (self->tracer_ != nullptr) {
        self->tracer_->SetArg(self->compute_span_, "batches",
                              Json(self->executor_->batches()));
        self->tracer_->SetArg(self->compute_span_, "morsels",
                              Json(self->morsels_seen_));
        self->tracer_->SetArg(self->compute_span_, "peak_memory_bytes",
                              Json(self->memory_.peak()));
        self->tracer_->End(self->compute_span_);
        self->output_span_ = self->tracer_->Begin("worker", "output", "engine",
                                                  self->fctx_->span());
        self->tracer_->SetArg(self->output_span_, "fragment",
                              Json(self->fragment_));
        self->storage_ctx_.span = self->output_span_;
      }
      self->WriteOutputs(outs);
    });
  }

  void WriteOutputs(std::shared_ptr<std::vector<FragmentOutput>> outputs) {
    if (outputs->empty()) {
      Respond();
      return;
    }
    // Encode all outputs (CPU already accounted), then write them with
    // bounded concurrency — an unbounded PUT volley against a cold bucket
    // would immediately exceed the write-IOPS envelope for every worker.
    struct PendingWrite {
      std::string key;
      Blob blob;
    };
    auto writes = std::make_shared<std::vector<PendingWrite>>();
    for (auto& output : *outputs) {
      std::string key;
      if (output.partition < 0) {
        key = ResultKey(query_id_);
      } else {
        key = ShuffleKey(query_id_, pipeline_.id, fragment_,
                         output.partition);
      }
      Blob blob;
      if (output.chunk.is_synthetic()) {
        const int64_t encoded =
            std::max<int64_t>(static_cast<int64_t>(
                                  static_cast<double>(output.chunk.ByteSize()) *
                                  0.55),
                              64) +
            format::kCofTrailerSize;
        format::FileMeta meta = format::BuildSyntheticFileMeta(
            output.chunk.schema(), output.chunk.rows(), encoded, 1 << 20, {});
        ec_->catalog->Register(key, std::move(meta));
        blob = Blob::Synthetic(encoded);
      } else {
        std::string bytes =
            format::WriteCofFile(output.chunk.schema(), {output.chunk});
        cost_.AddNs(static_cast<double>(bytes.size()) *
                    cost_.model().encode_ns_per_byte);
        blob = Blob::FromString(std::move(bytes));
      }
      bytes_written_ += blob.size();
      rows_out_ += output.chunk.rows();
      writes->push_back(PendingWrite{std::move(key), std::move(blob)});
    }

    auto self = shared_from_this();
    auto remaining = std::make_shared<int>(static_cast<int>(writes->size()));
    auto next = std::make_shared<size_t>(0);
    auto outstanding = std::make_shared<int>(0);
    auto failed = std::make_shared<bool>(false);
    auto pump = std::make_shared<std::function<void()>>();
    *pump = [self, writes, remaining, next, outstanding, failed, pump] {
      while (*outstanding < self->ec_->max_concurrent_requests &&
             *next < writes->size()) {
        PendingWrite& w = (*writes)[(*next)++];
        ++(*outstanding);
        self->shuffle_client_->Put(
            w.key, std::move(w.blob), self->storage_ctx_,
            [self, remaining, outstanding, failed, pump](Status status) {
              --(*outstanding);
              if (*failed) return;
              if (!status.ok()) {
                *failed = true;
                self->Fail(status);
                return;
              }
              if (--(*remaining) == 0) {
                self->Respond();
                return;
              }
              (*pump)();
            });
      }
    };
    (*pump)();
  }

  void Respond() {
    if (done_) return;
    done_ = true;
    if (tracer_ != nullptr) {
      tracer_->SetArg(output_span_, "bytes_written", Json(bytes_written_));
      tracer_->SetArg(output_span_, "rows_out", Json(rows_out_));
      tracer_->End(output_span_);
    }
    // Phase timings live in the trace and the metrics registry; the response
    // carries only the fields the coordinator aggregates.
    if (metrics_ != nullptr) {
      metrics_->Add("worker.fragments");
      metrics_->Record("worker.input_ms", ToMillis(input_done_ - start_));
      metrics_->Record("worker.compute_ms",
                       ToMillis(compute_done_ - input_done_));
      metrics_->Record("worker.output_ms", ToMillis(Now() - compute_done_));
      metrics_->Record("worker.duration_ms", ToMillis(Now() - start_));
      metrics_->Max("worker.peak_memory_bytes", memory_.peak());
    }
    Json response = Json::Object();
    response["fragment"] = fragment_;
    response["rows_out"] = rows_out_;
    response["bytes_read"] = bytes_read_;
    response["bytes_written"] = bytes_written_;
    response["requests"] = table_client_->stats().attempts +
                           shuffle_client_->stats().attempts;
    response["cold_start"] = fctx_->cold_start();
    response["duration_ms"] = ToMillis(Now() - start_);
    response["peak_memory_bytes"] = memory_.peak();
    response["batches"] = executor_ != nullptr ? executor_->batches() : 0;
    fctx_->Finish(std::move(response));
  }

  EngineContext* ec_;
  // The sandbox this worker runs in; mutations go through the sandbox
  // lifecycle API crossings.
  // skyrise-check: allow(domain-escape) — sandbox handle, crossings only.
  std::shared_ptr<faas::FunctionContext> fctx_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::SpanId input_span_ = obs::kNoSpan;
  obs::SpanId compute_span_ = obs::kNoSpan;
  obs::SpanId output_span_ = obs::kNoSpan;
  CostAccumulator cost_;
  MemoryTracker memory_;
  // Client stubs for the storage crossings (RetryClient::GetRange/Put).
  // skyrise-check: allow(domain-escape) — client stub for a crossing API.
  std::unique_ptr<storage::RetryClient> table_client_;
  // skyrise-check: allow(domain-escape) — client stub, see table_client_.
  std::unique_ptr<storage::RetryClient> shuffle_client_;
  storage::ClientContext storage_ctx_;
  PipelineSpec pipeline_;
  std::string query_id_;
  int fragment_ = 0;
  int barrier_participants_ = 0;
  std::vector<WorkerInputAssignment> assignments_;
  std::vector<std::optional<Chunk>> loaded_;  ///< Build-side inputs.

  // Streaming state for input 0.
  /// Per-task recycling pool: decoded row groups, pushdown-spent inputs, and
  /// pipeline morsels all share one free list (single-threaded on the sim
  /// event loop).
  data::ChunkPool chunk_pool_;
  std::unique_ptr<FragmentPipeline> executor_;
  std::deque<Chunk> morsels_;
  int64_t morsels_seen_ = 0;
  bool computing_ = false;
  bool finished_ = false;
  bool stream_eof_ = false;
  SimDuration charged_ = 0;
  std::optional<data::Schema> fallback_schema_;
  std::shared_ptr<std::vector<TableFileAssignment>> stream_files_;
  size_t stream_file_index_ = 0;
  std::shared_ptr<format::FileMeta> stream_meta_;
  std::vector<std::string> stream_projection_;
  std::vector<size_t> stream_survivors_;
  std::deque<ReadOp> stream_pending_;
  std::vector<std::string> stream_buffers_;
  std::vector<bool> stream_synthetic_;
  std::vector<int> rg_pieces_;
  std::vector<bool> rg_ready_;
  size_t rg_cursor_ = 0;
  int stream_outstanding_ = 0;
  std::vector<std::vector<Chunk>> shuffle_slots_;
  std::vector<bool> shuffle_done_;
  int shuffle_cursor_ = 0;
  int shuffle_next_ = 0;
  int shuffle_outstanding_ = 0;

  SimTime start_ = 0;
  SimTime input_done_ = 0;
  SimTime compute_done_ = 0;
  int64_t bytes_read_ = 0;
  int64_t bytes_written_ = 0;
  int64_t rows_out_ = 0;
  bool done_ = false;
};

}  // namespace

faas::FunctionHandler MakeWorkerHandler(EngineContext* context) {
  return [context](const std::shared_ptr<faas::FunctionContext>& fctx) {
    auto task = std::make_shared<WorkerTask>(context, fctx);
    task->Run();
  };
}

Json WorkerPayload(const std::string& query_id, const PipelineSpec& pipeline,
                   int fragment,
                   const std::vector<WorkerInputAssignment>& inputs) {
  Json payload = Json::Object();
  payload["query_id"] = query_id;
  payload["pipeline"] = pipeline.ToJson();
  payload["fragment"] = fragment;
  Json input_list = Json::Array();
  for (const auto& input : inputs) {
    Json in = Json::Object();
    Json files = Json::Array();
    for (const auto& f : input.files) {
      Json file = Json::Object();
      file["key"] = f.key;
      file["size"] = f.size;
      files.Append(std::move(file));
    }
    in["files"] = std::move(files);
    in["upstream_fragments"] = input.upstream_fragments;
    input_list.Append(std::move(in));
  }
  payload["inputs"] = std::move(input_list);
  return payload;
}

}  // namespace skyrise::engine
