#include "engine/worker.h"

#include <deque>
#include <memory>
#include <optional>

#include "common/string_util.h"

namespace skyrise::engine {

namespace {

using data::Chunk;
using storage::Blob;

/// One pending ranged read; large column chunks are split into
/// `range_chunk_bytes` pieces processed in parallel (Section 3.2).
struct ReadOp {
  std::string key;
  int64_t offset = 0;
  int64_t length = 0;
  size_t buffer = 0;  ///< Result slot.
  int64_t buffer_offset = 0;
};

/// Issues reads with bounded concurrency against a retrying client,
/// reassembling split ranges, then fires `done` with the buffers.
class ReadBatch : public std::enable_shared_from_this<ReadBatch> {
 public:
  ReadBatch(EngineContext* ec, storage::RetryClient* client,
            storage::ClientContext storage_ctx, size_t buffer_count)
      : ec_(ec), client_(client), storage_ctx_(std::move(storage_ctx)) {
    buffers_.resize(buffer_count);
    synthetic_.assign(buffer_count, false);
  }

  void Add(ReadOp op) {
    // Split oversized ranges into parallel chunked requests.
    while (op.length > ec_->range_chunk_bytes) {
      ReadOp piece = op;
      piece.length = ec_->range_chunk_bytes;
      pending_.push_back(piece);
      op.offset += ec_->range_chunk_bytes;
      op.buffer_offset += ec_->range_chunk_bytes;
      op.length -= ec_->range_chunk_bytes;
    }
    if (op.length > 0) pending_.push_back(op);
  }

  /// `done(status, buffers, synthetic_flags, bytes_read)`.
  using DoneFn = std::function<void(Status, std::vector<std::string>,
                                    std::vector<bool>, int64_t)>;

  void Start(DoneFn done) {
    done_ = std::move(done);
    if (pending_.empty()) {
      Settle(Status::OK());
      return;
    }
    total_ = pending_.size();
    Pump();
  }

 private:
  void Pump() {
    while (outstanding_ < ec_->max_concurrent_requests && !pending_.empty()) {
      ReadOp op = pending_.front();
      pending_.pop_front();
      ++outstanding_;
      auto self = shared_from_this();
      client_->GetRange(op.key, op.offset, op.length, storage_ctx_,
                        [self, op](Result<Blob> result) {
                          self->OnRead(op, std::move(result));
                        });
    }
  }

  void OnRead(const ReadOp& op, Result<Blob> result) {
    --outstanding_;
    ++completed_;
    if (settled_) return;
    if (!result.ok()) {
      Settle(result.status());
      return;
    }
    bytes_read_ += result->size();
    if (result->is_synthetic()) {
      synthetic_[op.buffer] = true;
    } else {
      std::string& buffer = buffers_[op.buffer];
      const size_t end = static_cast<size_t>(op.buffer_offset) +
                         result->data().size();
      if (buffer.size() < end) buffer.resize(end);
      result->data().copy(buffer.data() + op.buffer_offset,
                          result->data().size());
    }
    if (completed_ == total_) {
      Settle(Status::OK());
      return;
    }
    Pump();
  }

  void Settle(Status status) {
    if (settled_) return;
    settled_ = true;
    done_(std::move(status), std::move(buffers_), std::move(synthetic_),
          bytes_read_);
  }

  EngineContext* ec_;
  storage::RetryClient* client_;
  storage::ClientContext storage_ctx_;
  std::deque<ReadOp> pending_;
  std::vector<std::string> buffers_;
  std::vector<bool> synthetic_;
  size_t total_ = 0;
  size_t completed_ = 0;
  int outstanding_ = 0;
  int64_t bytes_read_ = 0;
  bool settled_ = false;
  DoneFn done_;
};

class WorkerTask : public std::enable_shared_from_this<WorkerTask> {
 public:
  WorkerTask(EngineContext* ec,
             std::shared_ptr<faas::FunctionContext> fctx)
      : ec_(ec), fctx_(std::move(fctx)), cost_(ec->cost_model) {}

  void Run() {
    start_ = Now();
    const Json& payload = fctx_->payload();
    query_id_ = payload.GetString("query_id");
    fragment_ = static_cast<int>(payload.GetInt("fragment"));
    barrier_participants_ =
        static_cast<int>(payload.GetInt("barrier_participants", 0));
    auto parsed = PipelineSpec::FromJson(payload.Get("pipeline"));
    if (!parsed.ok()) {
      Fail(parsed.status());
      return;
    }
    pipeline_ = std::move(parsed).ValueUnsafe();
    for (const auto& input : payload.Get("inputs").AsArray()) {
      WorkerInputAssignment assignment;
      for (const auto& f : input.Get("files").AsArray()) {
        assignment.files.push_back(
            TableFileAssignment{f.GetString("key"), f.GetInt("size")});
      }
      assignment.upstream_fragments =
          static_cast<int>(input.GetInt("upstream_fragments"));
      assignments_.push_back(std::move(assignment));
    }
    if (assignments_.size() != pipeline_.inputs.size()) {
      Fail(Status::InvalidArgument("input assignment mismatch"));
      return;
    }
    table_client_ = std::make_unique<storage::RetryClient>(
        ec_->env, ec_->table_store, ec_->retry,
        0x9000 + static_cast<uint64_t>(fragment_));
    shuffle_client_ = std::make_unique<storage::RetryClient>(
        ec_->env, ec_->shuffle_store, ec_->retry,
        0xA000 + static_cast<uint64_t>(fragment_));
    storage_ctx_.nic = fctx_->nic();
    storage_ctx_.fabric = fctx_->fabric();
    storage_ctx_.meter = ec_->meter;
    loaded_.resize(pipeline_.inputs.size());
    LoadInput(0);
  }

 private:
  SimTime Now() const { return ec_->env->now(); }

  void Fail(Status status) {
    if (done_) return;
    done_ = true;
    fctx_->FinishError(std::move(status));
  }

  void LoadInput(size_t index) {
    if (index >= pipeline_.inputs.size()) {
      input_done_ = Now();
      MaybeBarrier();
      return;
    }
    const InputSpec& spec = pipeline_.inputs[index];
    if (spec.type == InputSpec::Type::kTable) {
      LoadTableInput(index);
    } else {
      LoadShuffleInput(index);
    }
  }

  // --- Table input: footer fetch -> prune -> chunked column reads. ---

  void LoadTableInput(size_t index) {
    auto files = std::make_shared<std::vector<TableFileAssignment>>(
        assignments_[index].files);
    LoadNextFile(index, files, 0);
  }

  void LoadNextFile(size_t index,
                    std::shared_ptr<std::vector<TableFileAssignment>> files,
                    size_t file_index) {
    if (file_index >= files->size()) {
      LoadInput(index + 1);
      return;
    }
    const TableFileAssignment& file = (*files)[file_index];
    const int64_t fetch =
        std::min<int64_t>(file.size, format::kFooterFetchSize);
    auto self = shared_from_this();
    table_client_->GetRange(
        file.key, file.size - fetch, fetch, storage_ctx_,
        [self, index, files, file_index, file, fetch](Result<Blob> result) {
          if (!result.ok()) {
            self->Fail(result.status());
            return;
          }
          self->bytes_read_ += result->size();
          format::FileMeta meta;
          if (result->is_synthetic()) {
            auto found = self->ec_->catalog->Find(file.key);
            if (!found.ok()) {
              self->Fail(found.status());
              return;
            }
            meta = std::move(found).ValueUnsafe();
          } else {
            auto parsed = format::ParseFooter(result->data(),
                                              file.size - fetch, file.size);
            if (!parsed.ok()) {
              self->Fail(parsed.status());
              return;
            }
            meta = std::move(parsed).ValueUnsafe();
          }
          self->ReadFileColumns(index, files, file_index, file,
                                std::move(meta));
        });
  }

  void ReadFileColumns(size_t index,
                       std::shared_ptr<std::vector<TableFileAssignment>> files,
                       size_t file_index, const TableFileAssignment& file,
                       format::FileMeta meta) {
    const InputSpec& spec = pipeline_.inputs[index];
    std::vector<std::string> projection = spec.columns;
    if (projection.empty()) {
      for (const auto& f : meta.schema.fields()) projection.push_back(f.name);
    }
    // Row-group pruning on min/max statistics (selection pushdown).
    auto meta_ptr = std::make_shared<format::FileMeta>(std::move(meta));
    auto survivors = std::make_shared<std::vector<size_t>>();
    for (size_t rg = 0; rg < meta_ptr->row_groups.size(); ++rg) {
      bool keep = true;
      if (spec.pushdown) {
        const auto& groups = meta_ptr->row_groups[rg];
        keep = RangeMayMatch(
            *spec.pushdown,
            [&](const std::string& column, double* min, double* max) {
              const int idx = meta_ptr->schema.FieldIndex(column);
              if (idx < 0) return false;
              const auto& cm = groups.columns[static_cast<size_t>(idx)];
              if (!cm.min.has_value() || !cm.max.has_value()) return false;
              *min = *cm.min;
              *max = *cm.max;
              return true;
            });
      }
      if (keep) survivors->push_back(rg);
    }

    // Make the input schema known even if every row group is pruned.
    {
      auto projected = meta_ptr->schema.Select(projection);
      if (!projected.ok()) {
        Fail(projected.status());
        return;
      }
      if (!loaded_[index].has_value()) {
        loaded_[index] = Chunk::Empty(*projected);
      }
    }
    auto batch = std::make_shared<ReadBatch>(
        ec_, table_client_.get(), storage_ctx_,
        survivors->size() * projection.size());
    size_t buffer = 0;
    for (size_t rg : *survivors) {
      for (const auto& column : projection) {
        const int idx = meta_ptr->schema.FieldIndex(column);
        if (idx < 0) {
          Fail(Status::NotFound("no column in file: " + column));
          return;
        }
        const auto& cm =
            meta_ptr->row_groups[rg].columns[static_cast<size_t>(idx)];
        batch->Add(ReadOp{file.key, cm.offset, cm.size, buffer, 0});
        ++buffer;
      }
    }
    auto self = shared_from_this();
    auto projection_ptr =
        std::make_shared<std::vector<std::string>>(std::move(projection));
    batch->Start([self, index, files, file_index, meta_ptr, survivors,
                  projection_ptr](Status status,
                                  std::vector<std::string> buffers,
                                  std::vector<bool> synthetic,
                                  int64_t bytes) {
      if (!status.ok()) {
        self->Fail(status);
        return;
      }
      self->bytes_read_ += bytes;
      self->cost_.AddNs(static_cast<double>(bytes) *
                        self->cost_.model().decode_ns_per_byte);
      size_t buffer = 0;
      for (size_t rg : *survivors) {
        std::vector<std::string> column_bytes;
        for (size_t c = 0; c < projection_ptr->size(); ++c) {
          column_bytes.push_back(std::move(buffers[buffer]));
          (void)synthetic;
          ++buffer;
        }
        auto decoded = format::DecodeRowGroup(*meta_ptr, rg, *projection_ptr,
                                              column_bytes);
        if (!decoded.ok()) {
          self->Fail(decoded.status());
          return;
        }
        Chunk chunk = std::move(decoded).ValueUnsafe();
        // Apply the pushdown predicate to the decoded rows right away.
        const InputSpec& spec = self->pipeline_.inputs[index];
        if (spec.pushdown) {
          OperatorSpec filter;
          filter.op = "filter";
          filter.predicate = spec.pushdown;
          filter.selectivity = spec.pushdown_selectivity;
          // Synthetic pruning already reduced groups; apply the residual
          // selectivity relative to the pruned set.
          PipelineSpec wrapper;
          wrapper.ops.push_back(filter);
          auto filtered = ExecuteFragment(wrapper, std::move(chunk), {},
                                          &self->cost_);
          if (!filtered.ok()) {
            self->Fail(filtered.status());
            return;
          }
          chunk = std::move((*filtered)[0].chunk);
        }
        self->AccumulateInput(index, std::move(chunk));
      }
      self->LoadNextFile(index, files, file_index + 1);
    });
  }

  // --- Shuffle input: read every upstream fragment's partition object. ---

  void LoadShuffleInput(size_t index) {
    const InputSpec& spec = pipeline_.inputs[index];
    const int upstream = spec.upstream_pipeline;
    const int count = assignments_[index].upstream_fragments;
    auto remaining = std::make_shared<int>(count);
    auto failed = std::make_shared<bool>(false);
    if (count == 0) {
      LoadInput(index + 1);
      return;
    }
    auto self = shared_from_this();
    auto outstanding = std::make_shared<int>(0);
    auto next = std::make_shared<int>(0);
    // Reads complete in storage-latency order, which is not deterministic
    // across fault/retry schedules. Decode into one slot per upstream
    // fragment and accumulate in fragment order once all reads are in, so
    // the input chunk order (and thus the query result bytes) is identical
    // regardless of which attempts straggled or were retried.
    auto slots = std::make_shared<std::vector<std::vector<Chunk>>>(
        static_cast<size_t>(count));
    auto pump = std::make_shared<std::function<void()>>();
    *pump = [self, index, upstream, count, remaining, failed, outstanding,
             next, slots, pump] {
      while (*outstanding < self->ec_->max_concurrent_requests &&
             *next < count) {
        const int uf = (*next)++;
        ++(*outstanding);
        const std::string key =
            ShuffleKey(self->query_id_, upstream, uf, self->fragment_);
        self->shuffle_client_->Get(
            key, self->storage_ctx_,
            [self, index, key, uf, remaining, failed, outstanding, slots,
             pump](Result<Blob> result) {
              --(*outstanding);
              if (*failed) return;
              if (!result.ok()) {
                *failed = true;
                self->Fail(result.status());
                return;
              }
              self->bytes_read_ += result->size();
              if (!self->DecodeShuffleObject(
                      key, *result, &(*slots)[static_cast<size_t>(uf)])) {
                *failed = true;
                return;
              }
              if (--(*remaining) == 0) {
                for (auto& slot : *slots) {
                  for (auto& chunk : slot) {
                    self->AccumulateInput(index, std::move(chunk));
                  }
                }
                self->LoadInput(index + 1);
                return;
              }
              (*pump)();
            });
      }
    };
    (*pump)();
  }

  bool DecodeShuffleObject(const std::string& key, const Blob& blob,
                           std::vector<Chunk>* out) {
    format::FileMeta meta;
    if (blob.is_synthetic()) {
      auto found = ec_->catalog->Find(key);
      if (!found.ok()) {
        Fail(found.status());
        return false;
      }
      meta = std::move(found).ValueUnsafe();
    } else {
      auto parsed = format::ParseFooter(blob.data(), 0,
                                        static_cast<int64_t>(blob.size()));
      if (!parsed.ok()) {
        Fail(parsed.status());
        return false;
      }
      meta = std::move(parsed).ValueUnsafe();
    }
    cost_.AddNs(static_cast<double>(blob.size()) *
                cost_.model().decode_ns_per_byte);
    std::vector<std::string> projection;
    for (const auto& f : meta.schema.fields()) projection.push_back(f.name);
    for (size_t rg = 0; rg < meta.row_groups.size(); ++rg) {
      std::vector<std::string> column_bytes;
      for (size_t c = 0; c < projection.size(); ++c) {
        if (meta.synthetic) {
          column_bytes.emplace_back();
        } else {
          const auto& cm = meta.row_groups[rg].columns[c];
          column_bytes.push_back(blob.data().substr(
              static_cast<size_t>(cm.offset), static_cast<size_t>(cm.size)));
        }
      }
      auto decoded = format::DecodeRowGroup(meta, rg, projection, column_bytes);
      if (!decoded.ok()) {
        Fail(decoded.status());
        return false;
      }
      out->push_back(std::move(decoded).ValueUnsafe());
    }
    if (meta.row_groups.empty()) {
      out->push_back(Chunk::Empty(meta.schema));
    }
    return true;
  }

  void AccumulateInput(size_t index, Chunk chunk) {
    if (!loaded_[index].has_value()) {
      loaded_[index] = std::move(chunk);
      return;
    }
    loaded_[index]->Append(chunk);
  }

  // --- Barrier, compute, output. ---

  void MaybeBarrier() {
    bool has_barrier = false;
    for (const auto& op : pipeline_.ops) {
      if (op.op == "barrier") has_barrier = true;
    }
    if (!has_barrier || ec_->queue == nullptr || barrier_participants_ <= 0) {
      Compute();
      return;
    }
    const std::string name =
        StrFormat("%s/p%d/barrier", query_id_.c_str(), pipeline_.id);
    auto self = shared_from_this();
    ec_->queue->Arrive(name, barrier_participants_,
                       [self] { self->Compute(); });
  }

  void Compute() {
    // Missing inputs (e.g., fully pruned scans) become empty chunks; their
    // schema is not known here, so use an empty schema — operators tolerate
    // it only when no rows flow, which is exactly this case.
    Chunk stream = loaded_[0].has_value() ? std::move(*loaded_[0])
                                          : Chunk::Empty(data::Schema());
    std::vector<Chunk> builds;
    for (size_t i = 1; i < loaded_.size(); ++i) {
      builds.push_back(loaded_[i].has_value() ? std::move(*loaded_[i])
                                              : Chunk::Empty(data::Schema()));
    }
    auto outputs = ExecuteFragment(pipeline_, std::move(stream),
                                   std::move(builds), &cost_);
    if (!outputs.ok()) {
      Fail(outputs.status());
      return;
    }
    const SimDuration cpu = cost_.Duration(fctx_->config().vcpus());
    auto self = shared_from_this();
    auto outs = std::make_shared<std::vector<FragmentOutput>>(
        std::move(*outputs));
    fctx_->Compute(cpu, [self, outs] {
      self->compute_done_ = self->Now();
      self->WriteOutputs(outs);
    });
  }

  void WriteOutputs(std::shared_ptr<std::vector<FragmentOutput>> outputs) {
    if (outputs->empty()) {
      Respond();
      return;
    }
    // Encode all outputs (CPU already accounted), then write them with
    // bounded concurrency — an unbounded PUT volley against a cold bucket
    // would immediately exceed the write-IOPS envelope for every worker.
    struct PendingWrite {
      std::string key;
      Blob blob;
    };
    auto writes = std::make_shared<std::vector<PendingWrite>>();
    for (auto& output : *outputs) {
      std::string key;
      if (output.partition < 0) {
        key = ResultKey(query_id_);
      } else {
        key = ShuffleKey(query_id_, pipeline_.id, fragment_,
                         output.partition);
      }
      Blob blob;
      if (output.chunk.is_synthetic()) {
        const int64_t encoded =
            std::max<int64_t>(static_cast<int64_t>(
                                  static_cast<double>(output.chunk.ByteSize()) *
                                  0.55),
                              64) +
            format::kCofTrailerSize;
        format::FileMeta meta = format::BuildSyntheticFileMeta(
            output.chunk.schema(), output.chunk.rows(), encoded, 1 << 20, {});
        ec_->catalog->Register(key, std::move(meta));
        blob = Blob::Synthetic(encoded);
      } else {
        std::string bytes =
            format::WriteCofFile(output.chunk.schema(), {output.chunk});
        cost_.AddNs(static_cast<double>(bytes.size()) *
                    cost_.model().encode_ns_per_byte);
        blob = Blob::FromString(std::move(bytes));
      }
      bytes_written_ += blob.size();
      rows_out_ += output.chunk.rows();
      writes->push_back(PendingWrite{std::move(key), std::move(blob)});
    }

    auto self = shared_from_this();
    auto remaining = std::make_shared<int>(static_cast<int>(writes->size()));
    auto next = std::make_shared<size_t>(0);
    auto outstanding = std::make_shared<int>(0);
    auto failed = std::make_shared<bool>(false);
    auto pump = std::make_shared<std::function<void()>>();
    *pump = [self, writes, remaining, next, outstanding, failed, pump] {
      while (*outstanding < self->ec_->max_concurrent_requests &&
             *next < writes->size()) {
        PendingWrite& w = (*writes)[(*next)++];
        ++(*outstanding);
        self->shuffle_client_->Put(
            w.key, std::move(w.blob), self->storage_ctx_,
            [self, remaining, outstanding, failed, pump](Status status) {
              --(*outstanding);
              if (*failed) return;
              if (!status.ok()) {
                *failed = true;
                self->Fail(status);
                return;
              }
              if (--(*remaining) == 0) {
                self->Respond();
                return;
              }
              (*pump)();
            });
      }
    };
    (*pump)();
  }

  void Respond() {
    if (done_) return;
    done_ = true;
    Json response = Json::Object();
    response["fragment"] = fragment_;
    response["rows_out"] = rows_out_;
    response["bytes_read"] = bytes_read_;
    response["bytes_written"] = bytes_written_;
    response["requests"] = table_client_->stats().attempts +
                           shuffle_client_->stats().attempts;
    response["cold_start"] = fctx_->cold_start();
    response["input_ms"] = ToMillis(input_done_ - start_);
    response["compute_ms"] = ToMillis(compute_done_ - input_done_);
    response["output_ms"] = ToMillis(Now() - compute_done_);
    response["duration_ms"] = ToMillis(Now() - start_);
    fctx_->Finish(std::move(response));
  }

  EngineContext* ec_;
  std::shared_ptr<faas::FunctionContext> fctx_;
  CostAccumulator cost_;
  std::unique_ptr<storage::RetryClient> table_client_;
  std::unique_ptr<storage::RetryClient> shuffle_client_;
  storage::ClientContext storage_ctx_;
  PipelineSpec pipeline_;
  std::string query_id_;
  int fragment_ = 0;
  int barrier_participants_ = 0;
  std::vector<WorkerInputAssignment> assignments_;
  std::vector<std::optional<Chunk>> loaded_;
  SimTime start_ = 0;
  SimTime input_done_ = 0;
  SimTime compute_done_ = 0;
  int64_t bytes_read_ = 0;
  int64_t bytes_written_ = 0;
  int64_t rows_out_ = 0;
  bool done_ = false;
};

}  // namespace

faas::FunctionHandler MakeWorkerHandler(EngineContext* context) {
  return [context](const std::shared_ptr<faas::FunctionContext>& fctx) {
    auto task = std::make_shared<WorkerTask>(context, fctx);
    task->Run();
  };
}

Json WorkerPayload(const std::string& query_id, const PipelineSpec& pipeline,
                   int fragment,
                   const std::vector<WorkerInputAssignment>& inputs) {
  Json payload = Json::Object();
  payload["query_id"] = query_id;
  payload["pipeline"] = pipeline.ToJson();
  payload["fragment"] = fragment;
  Json input_list = Json::Array();
  for (const auto& input : inputs) {
    Json in = Json::Object();
    Json files = Json::Array();
    for (const auto& f : input.files) {
      Json file = Json::Object();
      file["key"] = f.key;
      file["size"] = f.size;
      files.Append(std::move(file));
    }
    in["files"] = std::move(files);
    in["upstream_fragments"] = input.upstream_fragments;
    input_list.Append(std::move(in));
  }
  payload["inputs"] = std::move(input_list);
  return payload;
}

}  // namespace skyrise::engine
