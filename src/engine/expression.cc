#include "engine/expression.h"

#include <algorithm>
#include <functional>

namespace skyrise::engine {

namespace {

const char* KindName(Expr::Kind kind) {
  switch (kind) {
    case Expr::Kind::kColumn:
      return "column";
    case Expr::Kind::kNumber:
      return "number";
    case Expr::Kind::kString:
      return "string";
    case Expr::Kind::kCompare:
      return "compare";
    case Expr::Kind::kAnd:
      return "and";
    case Expr::Kind::kOr:
      return "or";
    case Expr::Kind::kArith:
      return "arith";
    case Expr::Kind::kBetween:
      return "between";
    case Expr::Kind::kInList:
      return "in";
    case Expr::Kind::kIndicator:
      return "indicator";
  }
  return "?";
}

Result<Expr::Kind> KindFromName(const std::string& name) {
  if (name == "column") return Expr::Kind::kColumn;
  if (name == "number") return Expr::Kind::kNumber;
  if (name == "string") return Expr::Kind::kString;
  if (name == "compare") return Expr::Kind::kCompare;
  if (name == "and") return Expr::Kind::kAnd;
  if (name == "or") return Expr::Kind::kOr;
  if (name == "arith") return Expr::Kind::kArith;
  if (name == "between") return Expr::Kind::kBetween;
  if (name == "in") return Expr::Kind::kInList;
  if (name == "indicator") return Expr::Kind::kIndicator;
  return Status::InvalidArgument("unknown expr kind: " + name);
}

std::shared_ptr<Expr> Make(Expr::Kind kind) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  return e;
}

}  // namespace

Json Expr::ToJson() const {
  Json out = Json::Object();
  out["kind"] = KindName(kind);
  switch (kind) {
    case Kind::kColumn:
      out["column"] = column;
      break;
    case Kind::kNumber:
      out["value"] = number;
      break;
    case Kind::kString:
      out["value"] = text;
      break;
    case Kind::kCompare:
    case Kind::kArith:
      out["op"] = op;
      break;
    case Kind::kInList: {
      Json values = Json::Array();
      for (const auto& v : in_list) values.Append(v);
      out["values"] = std::move(values);
      break;
    }
    default:
      break;
  }
  if (!children.empty()) {
    Json kids = Json::Array();
    for (const auto& child : children) kids.Append(child->ToJson());
    out["children"] = std::move(kids);
  }
  return out;
}

Result<ExprPtr> Expr::FromJson(const Json& json) {
  if (!json.is_object()) return Status::InvalidArgument("expr not an object");
  Expr::Kind kind;
  SKYRISE_ASSIGN_OR_RETURN(kind, KindFromName(json.GetString("kind")));
  auto e = Make(kind);
  e->column = json.GetString("column");
  e->op = json.GetString("op");
  if (kind == Kind::kNumber) e->number = json.GetDouble("value");
  if (kind == Kind::kString) e->text = json.GetString("value");
  if (json.Has("values")) {
    for (const auto& v : json.Get("values").AsArray()) {
      e->in_list.push_back(v.AsString());
    }
  }
  if (json.Has("children")) {
    for (const auto& child : json.Get("children").AsArray()) {
      ExprPtr parsed;
      SKYRISE_ASSIGN_OR_RETURN(parsed, FromJson(child));
      e->children.push_back(std::move(parsed));
    }
  }
  return ExprPtr(e);
}

ExprPtr Col(const std::string& name) {
  auto e = Make(Expr::Kind::kColumn);
  e->column = name;
  return e;
}
ExprPtr Num(double value) {
  auto e = Make(Expr::Kind::kNumber);
  e->number = value;
  return e;
}
ExprPtr Str(const std::string& value) {
  auto e = Make(Expr::Kind::kString);
  e->text = value;
  return e;
}
ExprPtr Cmp(const std::string& op, ExprPtr lhs, ExprPtr rhs) {
  auto e = Make(Expr::Kind::kCompare);
  e->op = op;
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}
ExprPtr And(ExprPtr lhs, ExprPtr rhs) {
  auto e = Make(Expr::Kind::kAnd);
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}
ExprPtr Or(ExprPtr lhs, ExprPtr rhs) {
  auto e = Make(Expr::Kind::kOr);
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}
ExprPtr Arith(const std::string& op, ExprPtr lhs, ExprPtr rhs) {
  auto e = Make(Expr::Kind::kArith);
  e->op = op;
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}
ExprPtr Between(ExprPtr value, ExprPtr lo, ExprPtr hi) {
  auto e = Make(Expr::Kind::kBetween);
  e->children = {std::move(value), std::move(lo), std::move(hi)};
  return e;
}
ExprPtr InList(ExprPtr value, std::vector<std::string> values) {
  auto e = Make(Expr::Kind::kInList);
  e->children = {std::move(value)};
  e->in_list = std::move(values);
  return e;
}
ExprPtr Indicator(ExprPtr condition) {
  auto e = Make(Expr::Kind::kIndicator);
  e->children = {std::move(condition)};
  return e;
}

namespace {

/// Numeric value accessor for a column (ints/dates/doubles).
Result<std::function<double(size_t)>> NumericAccessor(
    const data::Chunk& chunk, const std::string& name) {
  const int idx = chunk.schema().FieldIndex(name);
  if (idx < 0) return Status::NotFound("no column: " + name);
  const data::Column* col = &chunk.column(static_cast<size_t>(idx));
  if (col->type() == data::DataType::kDouble) {
    return std::function<double(size_t)>(
        [col](size_t row) { return col->doubles()[row]; });
  }
  if (col->type() == data::DataType::kString) {
    return Status::InvalidArgument("column is not numeric: " + name);
  }
  return std::function<double(size_t)>(
      [col](size_t row) { return static_cast<double>(col->ints()[row]); });
}

Result<std::function<double(size_t)>> NumericEvaluator(
    const Expr& expr, const data::Chunk& chunk);

Result<std::function<bool(size_t)>> BoolEvaluator(const Expr& expr,
                                                  const data::Chunk& chunk) {
  using Kind = Expr::Kind;
  switch (expr.kind) {
    case Kind::kAnd: {
      std::function<bool(size_t)> lhs, rhs;
      SKYRISE_ASSIGN_OR_RETURN(lhs, BoolEvaluator(*expr.children[0], chunk));
      SKYRISE_ASSIGN_OR_RETURN(rhs, BoolEvaluator(*expr.children[1], chunk));
      return std::function<bool(size_t)>(
          [lhs, rhs](size_t row) { return lhs(row) && rhs(row); });
    }
    case Kind::kOr: {
      std::function<bool(size_t)> lhs, rhs;
      SKYRISE_ASSIGN_OR_RETURN(lhs, BoolEvaluator(*expr.children[0], chunk));
      SKYRISE_ASSIGN_OR_RETURN(rhs, BoolEvaluator(*expr.children[1], chunk));
      return std::function<bool(size_t)>(
          [lhs, rhs](size_t row) { return lhs(row) || rhs(row); });
    }
    case Kind::kBetween: {
      std::function<double(size_t)> value;
      SKYRISE_ASSIGN_OR_RETURN(value,
                               NumericEvaluator(*expr.children[0], chunk));
      std::function<double(size_t)> lo, hi;
      SKYRISE_ASSIGN_OR_RETURN(lo, NumericEvaluator(*expr.children[1], chunk));
      SKYRISE_ASSIGN_OR_RETURN(hi, NumericEvaluator(*expr.children[2], chunk));
      return std::function<bool(size_t)>([value, lo, hi](size_t row) {
        const double v = value(row);
        return v >= lo(row) && v <= hi(row);
      });
    }
    case Kind::kInList: {
      const Expr& target = *expr.children[0];
      if (target.kind != Kind::kColumn) {
        return Status::InvalidArgument("IN requires a column");
      }
      const int idx = chunk.schema().FieldIndex(target.column);
      if (idx < 0) return Status::NotFound("no column: " + target.column);
      const data::Column* col = &chunk.column(static_cast<size_t>(idx));
      if (col->type() != data::DataType::kString) {
        return Status::InvalidArgument("IN requires a string column");
      }
      auto values = std::make_shared<std::vector<std::string>>(expr.in_list);
      std::sort(values->begin(), values->end());
      return std::function<bool(size_t)>([col, values](size_t row) {
        return std::binary_search(values->begin(), values->end(),
                                  col->strings()[row]);
      });
    }
    case Kind::kCompare: {
      const Expr& lhs = *expr.children[0];
      const Expr& rhs = *expr.children[1];
      // String comparison: column vs string literal.
      const bool string_cmp =
          rhs.kind == Kind::kString || lhs.kind == Kind::kString;
      if (string_cmp) {
        if (lhs.kind != Kind::kColumn || rhs.kind != Kind::kString) {
          return Status::InvalidArgument(
              "string compare must be column <op> literal");
        }
        const int idx = chunk.schema().FieldIndex(lhs.column);
        if (idx < 0) return Status::NotFound("no column: " + lhs.column);
        const data::Column* col = &chunk.column(static_cast<size_t>(idx));
        const std::string value = rhs.text;
        const std::string op = expr.op;
        return std::function<bool(size_t)>([col, value, op](size_t row) {
          const int c = col->strings()[row].compare(value);
          if (op == "==") return c == 0;
          if (op == "!=") return c != 0;
          if (op == "<") return c < 0;
          if (op == "<=") return c <= 0;
          if (op == ">") return c > 0;
          return c >= 0;
        });
      }
      std::function<double(size_t)> le, re;
      SKYRISE_ASSIGN_OR_RETURN(le, NumericEvaluator(lhs, chunk));
      SKYRISE_ASSIGN_OR_RETURN(re, NumericEvaluator(rhs, chunk));
      const std::string op = expr.op;
      return std::function<bool(size_t)>([le, re, op](size_t row) {
        const double l = le(row), r = re(row);
        if (op == "==") return l == r;
        if (op == "!=") return l != r;
        if (op == "<") return l < r;
        if (op == "<=") return l <= r;
        if (op == ">") return l > r;
        return l >= r;
      });
    }
    default:
      return Status::InvalidArgument("expression is not boolean");
  }
}

Result<std::function<double(size_t)>> NumericEvaluator(
    const Expr& expr, const data::Chunk& chunk) {
  using Kind = Expr::Kind;
  switch (expr.kind) {
    case Kind::kColumn:
      return NumericAccessor(chunk, expr.column);
    case Kind::kNumber: {
      const double v = expr.number;
      return std::function<double(size_t)>([v](size_t) { return v; });
    }
    case Kind::kArith: {
      std::function<double(size_t)> lhs, rhs;
      SKYRISE_ASSIGN_OR_RETURN(lhs, NumericEvaluator(*expr.children[0], chunk));
      SKYRISE_ASSIGN_OR_RETURN(rhs, NumericEvaluator(*expr.children[1], chunk));
      const std::string op = expr.op;
      return std::function<double(size_t)>([lhs, rhs, op](size_t row) {
        const double l = lhs(row), r = rhs(row);
        if (op == "+") return l + r;
        if (op == "-") return l - r;
        if (op == "/") return r == 0 ? 0 : l / r;
        return l * r;
      });
    }
    case Kind::kIndicator: {
      std::function<bool(size_t)> cond;
      SKYRISE_ASSIGN_OR_RETURN(cond, BoolEvaluator(*expr.children[0], chunk));
      return std::function<double(size_t)>(
          [cond](size_t row) { return cond(row) ? 1.0 : 0.0; });
    }
    default:
      return Status::InvalidArgument("expression is not numeric");
  }
}

}  // namespace

Status EvalPredicateInto(const Expr& expr, const data::Chunk& chunk,
                         std::vector<uint32_t>* out) {
  std::function<bool(size_t)> eval;
  SKYRISE_ASSIGN_OR_RETURN(eval, BoolEvaluator(expr, chunk));
  out->clear();
  const size_t rows = static_cast<size_t>(chunk.rows());
  for (size_t row = 0; row < rows; ++row) {
    if (eval(row)) out->push_back(static_cast<uint32_t>(row));
  }
  return Status::OK();
}

Result<std::vector<uint32_t>> EvalPredicate(const Expr& expr,
                                            const data::Chunk& chunk) {
  std::vector<uint32_t> selection;
  SKYRISE_RETURN_IF_ERROR(EvalPredicateInto(expr, chunk, &selection));
  return selection;
}

Status EvalNumericInto(const Expr& expr, const data::Chunk& chunk,
                       std::vector<double>* out) {
  std::function<double(size_t)> eval;
  SKYRISE_ASSIGN_OR_RETURN(eval, NumericEvaluator(expr, chunk));
  out->clear();
  const size_t rows = static_cast<size_t>(chunk.rows());
  out->reserve(rows);
  for (size_t row = 0; row < rows; ++row) out->push_back(eval(row));
  return Status::OK();
}

Result<std::vector<double>> EvalNumeric(const Expr& expr,
                                        const data::Chunk& chunk) {
  std::vector<double> out;
  SKYRISE_RETURN_IF_ERROR(EvalNumericInto(expr, chunk, &out));
  return out;
}

void CollectColumns(const Expr& expr, std::vector<std::string>* out) {
  if (expr.kind == Expr::Kind::kColumn) {
    if (std::find(out->begin(), out->end(), expr.column) == out->end()) {
      out->push_back(expr.column);
    }
  }
  for (const auto& child : expr.children) CollectColumns(*child, out);
}

bool RangeMayMatch(const Expr& expr,
                   const std::function<bool(const std::string&, double*,
                                            double*)>& column_range) {
  using Kind = Expr::Kind;
  switch (expr.kind) {
    case Kind::kAnd:
      return RangeMayMatch(*expr.children[0], column_range) &&
             RangeMayMatch(*expr.children[1], column_range);
    case Kind::kOr:
      return RangeMayMatch(*expr.children[0], column_range) ||
             RangeMayMatch(*expr.children[1], column_range);
    case Kind::kBetween: {
      const Expr& target = *expr.children[0];
      if (target.kind != Kind::kColumn ||
          expr.children[1]->kind != Kind::kNumber ||
          expr.children[2]->kind != Kind::kNumber) {
        return true;
      }
      double min, max;
      if (!column_range(target.column, &min, &max)) return true;
      return max >= expr.children[1]->number &&
             min <= expr.children[2]->number;
    }
    case Kind::kCompare: {
      const Expr& lhs = *expr.children[0];
      const Expr& rhs = *expr.children[1];
      if (lhs.kind != Kind::kColumn || rhs.kind != Kind::kNumber) return true;
      double min, max;
      if (!column_range(lhs.column, &min, &max)) return true;
      const double v = rhs.number;
      if (expr.op == "<") return min < v;
      if (expr.op == "<=") return min <= v;
      if (expr.op == ">") return max > v;
      if (expr.op == ">=") return max >= v;
      if (expr.op == "==") return min <= v && v <= max;
      return true;
    }
    default:
      return true;
  }
}

}  // namespace skyrise::engine
