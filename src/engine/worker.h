#pragma once

#include "engine/context.h"

/// \file worker.h
/// The Skyrise query worker function. A worker receives one pipeline
/// fragment, loads its inputs from shared storage (footer fetch, row-group
/// pruning, chunked ranged column reads with straggler re-triggering, or
/// shuffle-partition reads), executes the vectorized operator chain, writes
/// partitioned outputs back to storage, and reports per-phase timings.

namespace skyrise::engine {

/// Builds the worker handler bound to `context`. Register under
/// kWorkerFunction on both platforms.
faas::FunctionHandler MakeWorkerHandler(EngineContext* context);

/// Payload helpers (also used by the coordinator).
struct TableFileAssignment {
  std::string key;
  int64_t size = 0;
};

struct WorkerInputAssignment {
  // Mirrors the pipeline's InputSpec order.
  std::vector<TableFileAssignment> files;  ///< kTable inputs.
  int upstream_fragments = 0;              ///< kShuffle inputs.
};

Json WorkerPayload(const std::string& query_id, const PipelineSpec& pipeline,
                   int fragment,
                   const std::vector<WorkerInputAssignment>& inputs);

}  // namespace skyrise::engine
