#pragma once

#include <utility>
#include <vector>

#include <algorithm>

#include "common/units.h"
#include "data/chunk.h"
#include "engine/plan.h"

/// \file executor.h
/// In-worker execution of one pipeline fragment: the streamed input chunk is
/// pushed through the operator chain (vectorized, chunk-at-a-time semantics
/// with the fragment materialized as one batch), producing either shuffle
/// partitions or the final result rows. Execution is pure compute —
/// independent of the simulation — and accounts its CPU cost in a
/// deterministic model so FaaS/IaaS timing comparisons are reproducible.
///
/// Synthetic chunks flow through the same operators: cardinalities propagate
/// via the plan's hints, schemas and byte sizes stay correct, and the CPU
/// model charges the same per-row costs.

namespace skyrise::engine {

/// Deterministic per-operator CPU costs (single-core ns), divided by the
/// worker's vCPU count for wall time.
struct CostModel {
  double decode_ns_per_byte = 1.0;   ///< ~1 GB/s/core ZSTD-class decode.
  double encode_ns_per_byte = 0.80;
  double filter_ns_per_row = 6;
  double project_ns_per_row_col = 3;
  double agg_ns_per_row = 14;
  double join_build_ns_per_row = 28;
  double join_probe_ns_per_row = 18;
  double partition_ns_per_row = 10;
  double sort_ns_per_row_log = 8;
  double udf_ns_per_row = 40;
};

class CostAccumulator {
 public:
  explicit CostAccumulator(const CostModel& model = CostModel())
      : model_(model) {}
  void AddNs(double ns) { ns_ += ns; }
  double ns() const { return ns_; }
  const CostModel& model() const { return model_; }
  /// Wall-clock duration on `vcpus` cores (operators parallelize across the
  /// worker's cores in the vectorized model).
  SimDuration Duration(int vcpus) const {
    return static_cast<SimDuration>(ns_ / 1000.0 / std::max(1, vcpus));
  }
  void Reset() { ns_ = 0; }

 private:
  CostModel model_;
  double ns_ = 0;
};

/// One produced output: shuffle partition id (or -1 for the terminal result)
/// and its rows.
struct FragmentOutput {
  int partition = -1;
  data::Chunk chunk;
};

/// Executes `pipeline`'s operator chain over a materialized (or synthetic)
/// streamed input and the fully-built side inputs. `builds[i]` corresponds
/// to pipeline input i+1.
[[nodiscard]] Result<std::vector<FragmentOutput>> ExecuteFragment(
    const PipelineSpec& pipeline, data::Chunk stream,
    std::vector<data::Chunk> builds, CostAccumulator* cost);

/// Output schema of the pipeline (after all non-terminal operators), given
/// the streamed input schema and build schemas. Exposed for planning and
/// tests.
[[nodiscard]] Result<data::Schema> PipelineOutputSchema(const PipelineSpec& pipeline,
                                          const data::Schema& stream_schema,
                                          const std::vector<data::Schema>&
                                              build_schemas);

}  // namespace skyrise::engine
