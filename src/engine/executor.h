#pragma once

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "common/units.h"
#include "data/chunk.h"
#include "data/chunk_pool.h"
#include "engine/memory_tracker.h"
#include "engine/plan.h"

/// \file executor.h
/// In-worker execution of one pipeline fragment as a push-based morsel
/// pipeline: the streamed input arrives in fixed-size row batches (morsels)
/// that flow through the operator chain batch-at-a-time. Streaming operators
/// (filter, project, join probe, limit, partition) transform each morsel in
/// place; pipeline breakers (hash_agg, sort, bb_sessionize) accumulate
/// explicit state that a MemoryTracker accounts, and emit on Finish().
/// Execution is pure compute — independent of the simulation — and accounts
/// its CPU cost in a deterministic model so FaaS/IaaS timing comparisons are
/// reproducible. Results are bit-identical across batch sizes: per-row cost
/// terms and per-row accumulation order do not depend on where morsel
/// boundaries fall.
///
/// Synthetic chunks flow through the same operators: cardinalities propagate
/// via the plan's hints, schemas and byte sizes stay correct, and the CPU
/// model charges the same per-row costs. Because synthetic cardinality hints
/// are nonlinear (rounding, group caps), a pipeline that receives a synthetic
/// morsel accumulates its input and executes once on Finish().

namespace skyrise::engine {

/// Deterministic per-operator CPU costs (single-core ns), divided by the
/// worker's vCPU count for wall time.
struct CostModel {
  double decode_ns_per_byte = 1.0;   ///< ~1 GB/s/core ZSTD-class decode.
  double encode_ns_per_byte = 0.80;
  double filter_ns_per_row = 6;
  double project_ns_per_row_col = 3;
  double agg_ns_per_row = 14;
  double join_build_ns_per_row = 28;
  double join_probe_ns_per_row = 18;
  double partition_ns_per_row = 10;
  double sort_ns_per_row_log = 8;
  double udf_ns_per_row = 40;
};

class CostAccumulator {
 public:
  explicit CostAccumulator(const CostModel& model = CostModel())
      : model_(model) {}
  void AddNs(double ns) { ns_ += ns; }
  double ns() const { return ns_; }
  const CostModel& model() const { return model_; }
  /// Wall-clock duration on `vcpus` cores (operators parallelize across the
  /// worker's cores in the vectorized model). Rounded to the nearest
  /// microsecond — not floored — so many small batches cost the same as one
  /// large batch when charged via cumulative deltas.
  SimDuration Duration(int vcpus) const {
    return static_cast<SimDuration>(
        std::llround(ns_ / 1000.0 / std::max(1, vcpus)));
  }
  void Reset() { ns_ = 0; }

 private:
  CostModel model_;
  double ns_ = 0;
};

/// One produced output: shuffle partition id (or -1 for the terminal result)
/// and its rows.
struct FragmentOutput {
  int partition = -1;
  data::Chunk chunk;
};

/// Push-based streaming execution of one pipeline fragment. Build-side
/// inputs must be fully materialized up front (`builds[i]` corresponds to
/// pipeline input i+1); the streamed input is then fed morsel-by-morsel via
/// Push() and finalized with Finish().
///
/// `morsel_rows` selects the batching strategy:
///   > 0  — incoming chunks are re-sliced into morsels of at most that many
///          rows before entering the operator chain;
///   == 0 — incoming chunks pass through at their natural granularity
///          (typically one decoded row group each);
///   < 0  — whole-fragment mode: the entire stream is accumulated and
///          executed as a single batch on Finish() (the seed's materialized
///          semantics, also used as the reference in equivalence tests).
///
/// `pool` optionally supplies a data::ChunkPool for recycling morsel buffers
/// between operator hops (spent inputs are donated back after each hop, and
/// filter/slice outputs are acquired from it). Pass the worker's per-task
/// pool to share capacity across pipelines; when null the pipeline uses a
/// private pool. Pooling changes allocation behavior only — operator results
/// are bit-identical with or without it.
class FragmentPipeline {
 public:
  FragmentPipeline(const PipelineSpec& pipeline,
                   std::vector<data::Chunk> builds, CostAccumulator* cost,
                   MemoryTracker* memory = nullptr, int64_t morsel_rows = 0,
                   data::ChunkPool* pool = nullptr);
  ~FragmentPipeline();
  FragmentPipeline(const FragmentPipeline&) = delete;
  FragmentPipeline& operator=(const FragmentPipeline&) = delete;

  /// Feeds the next batch of the streamed input through the operator chain.
  [[nodiscard]] Status Push(data::Chunk&& morsel);

  /// Ends the stream: flushes pipeline breakers in operator order and
  /// returns the fragment outputs. Call exactly once, after the last Push.
  [[nodiscard]] Result<std::vector<FragmentOutput>> Finish();

  /// Number of morsels that entered the operator chain.
  int64_t batches() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Executes `pipeline`'s operator chain over a fully materialized (or
/// synthetic) streamed input and the fully-built side inputs, as a single
/// batch. Thin wrapper over FragmentPipeline in whole-fragment mode.
[[nodiscard]] Result<std::vector<FragmentOutput>> ExecuteFragment(
    const PipelineSpec& pipeline, data::Chunk&& stream,
    std::vector<data::Chunk> builds, CostAccumulator* cost);

/// Applies one filter operator to a chunk (used by scan workers for
/// per-row-group predicate pushdown before morsels enter the pipeline).
[[nodiscard]] Result<data::Chunk> ApplyFilterOp(const OperatorSpec& op,
                                                data::Chunk&& in,
                                                CostAccumulator* cost);

/// Output schema of the pipeline (after all non-terminal operators), given
/// the streamed input schema and build schemas. Exposed for planning and
/// tests.
[[nodiscard]] Result<data::Schema> PipelineOutputSchema(const PipelineSpec& pipeline,
                                          const data::Schema& stream_schema,
                                          const std::vector<data::Schema>&
                                              build_schemas);

}  // namespace skyrise::engine
