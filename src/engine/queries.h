#pragma once

#include "engine/plan.h"

/// \file queries.h
/// Physical plans for the paper's query suite (Section 3.1): the I/O-heavy
/// TPC-H Q1 (scan-heavy aggregation), Q6 (selective scan + aggregation),
/// Q12 (shuffle join with conditional aggregation), and TPCx-BB Q3 (an
/// I/O-bound MapReduce-style sessionization job with a UDF). Plans include
/// the synthetic-mode cardinality hints used at paper scale.

namespace skyrise::engine {

struct QuerySuiteOptions {
  /// Shuffle width for join queries (fragments of the join stage).
  int join_partitions = 8;
  /// TPCx-BB Q3 parameters.
  int64_t bb_target_category = 1;
  int64_t bb_window_days = 10;
  int bb_top_k = 30;
};

/// TPC-H Q6: revenue from discounted small-quantity lineitems of 1994.
QueryPlan BuildTpchQ6();

/// TPC-H Q1: pricing summary report (scan-heavy aggregation).
QueryPlan BuildTpchQ1();

/// TPC-H Q12: shipmode priority counts (lineitem-orders shuffle join).
QueryPlan BuildTpchQ12(const QuerySuiteOptions& options = {});

/// TPCx-BB Q3: items viewed before purchases of a category (sessionization).
QueryPlan BuildTpcxBbQ3(const QuerySuiteOptions& options = {});

/// All four, in the paper's order (Q1, Q6, Q12, BB Q3).
std::vector<QueryPlan> BuildQuerySuite(const QuerySuiteOptions& options = {});

}  // namespace skyrise::engine
