#pragma once

#include <algorithm>
#include <cstdint>

/// \file memory_tracker.h
/// Per-worker accounting of resident data bytes during streaming fragment
/// execution: in-flight read buffers, the morsel being processed, and the
/// accumulated state of pipeline breakers (join build tables, aggregate
/// groups, sort/sessionize buffers) and sinks. The peak feeds worker stats,
/// the query response, and the break-even memory-config recommendation
/// (see pricing::RecommendLambdaMemoryMib).

namespace skyrise::engine {

class MemoryTracker {
 public:
  void Add(int64_t bytes) {
    current_ += bytes;
    peak_ = std::max(peak_, current_);
  }
  void Release(int64_t bytes) { current_ -= bytes; }

  int64_t current() const { return current_; }
  int64_t peak() const { return peak_; }

 private:
  int64_t current_ = 0;
  int64_t peak_ = 0;
};

}  // namespace skyrise::engine
