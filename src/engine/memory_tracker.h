#pragma once

#include <algorithm>
#include <cstdint>

/// \file memory_tracker.h
/// Per-worker accounting of resident data bytes during streaming fragment
/// execution: in-flight read buffers, the morsel being processed, and the
/// accumulated state of pipeline breakers (join build tables, aggregate
/// groups, sort/sessionize buffers) and sinks. The peak feeds worker stats,
/// the query response, and the break-even memory-config recommendation
/// (see pricing::RecommendLambdaMemoryMib).

namespace skyrise::engine {

class MemoryTracker {
 public:
  void Add(int64_t bytes) {
    current_ += bytes;
    peak_ = std::max(peak_, current_);
  }
  void Release(int64_t bytes) { current_ -= bytes; }

  int64_t current() const { return current_; }
  int64_t peak() const { return peak_; }

  /// Records the chunk-pool capacity parked on free lists. Deliberately kept
  /// out of current()/peak(): those price *live* data bytes (and feed the
  /// memory-size recommendation), while pooled buffers hold no rows — they
  /// are capacity waiting to be recycled. Reported separately in worker
  /// stats so the reuse footprint stays visible.
  void SetPooledRetained(int64_t bytes) {
    pooled_retained_ = bytes;
    pooled_peak_ = std::max(pooled_peak_, bytes);
  }
  int64_t pooled_retained() const { return pooled_retained_; }
  int64_t pooled_peak() const { return pooled_peak_; }

 private:
  int64_t current_ = 0;
  int64_t peak_ = 0;
  int64_t pooled_retained_ = 0;
  int64_t pooled_peak_ = 0;
};

}  // namespace skyrise::engine
