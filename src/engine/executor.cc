#include "engine/executor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_map>

#include "common/string_util.h"

namespace skyrise::engine {

namespace {

using data::Chunk;
using data::Column;
using data::DataType;
using data::Schema;

/// Builds a compound key string from the named columns of `chunk` at `row`.
std::string RowKey(const Chunk& chunk, const std::vector<int>& key_indices,
                   size_t row) {
  std::string key;
  for (int idx : key_indices) {
    const Column& col = chunk.column(static_cast<size_t>(idx));
    switch (col.type()) {
      case DataType::kString:
        key += col.strings()[row];
        break;
      case DataType::kDouble:
        key += StrFormat("%.17g", col.doubles()[row]);
        break;
      default:
        key += std::to_string(col.ints()[row]);
    }
    key.push_back('\x1f');
  }
  return key;
}

Result<std::vector<int>> ResolveColumns(const Schema& schema,
                                        const std::vector<std::string>& names) {
  std::vector<int> out;
  for (const auto& name : names) {
    const int idx = schema.FieldIndex(name);
    if (idx < 0) return Status::NotFound("no column: " + name);
    out.push_back(idx);
  }
  return out;
}

uint64_t HashString(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// --- Per-operator schema propagation. ---

Result<Schema> ProjectSchema(const OperatorSpec& op, const Schema& in) {
  std::vector<data::Field> fields;
  for (const auto& [name, expr] : op.projections) {
    if (expr->kind == Expr::Kind::kColumn) {
      const int idx = in.FieldIndex(expr->column);
      if (idx < 0) return Status::NotFound("no column: " + expr->column);
      fields.push_back(data::Field{name, in.field(static_cast<size_t>(idx)).type});
    } else {
      fields.push_back(data::Field{name, DataType::kDouble});
    }
  }
  return Schema(std::move(fields));
}

Result<Schema> AggSchema(const OperatorSpec& op, const Schema& in) {
  std::vector<data::Field> fields;
  for (const auto& name : op.group_by) {
    const int idx = in.FieldIndex(name);
    if (idx < 0) return Status::NotFound("no group column: " + name);
    fields.push_back(in.field(static_cast<size_t>(idx)));
  }
  for (const auto& agg : op.aggregates) {
    fields.push_back(data::Field{
        agg.as,
        agg.func == "count" ? DataType::kInt64 : DataType::kDouble});
  }
  return Schema(std::move(fields));
}

Result<Schema> JoinSchema(const OperatorSpec& op, const Schema& probe,
                          const Schema& build) {
  std::vector<data::Field> fields = probe.fields();
  for (const auto& name : op.build_columns) {
    const int idx = build.FieldIndex(name);
    if (idx < 0) return Status::NotFound("no build column: " + name);
    fields.push_back(build.field(static_cast<size_t>(idx)));
  }
  return Schema(std::move(fields));
}

Schema SessionizeSchema() {
  return Schema({{"item_sk", DataType::kInt64}});
}

// --- Operator implementations (materialized path). ---

Result<Chunk> ApplyFilter(const OperatorSpec& op, Chunk in,
                          CostAccumulator* cost) {
  cost->AddNs(static_cast<double>(in.rows()) *
              cost->model().filter_ns_per_row);
  if (in.is_synthetic()) {
    return Chunk::Synthetic(in.schema(),
                            static_cast<int64_t>(std::llround(
                                static_cast<double>(in.rows()) *
                                op.selectivity)));
  }
  std::vector<uint32_t> selection;
  SKYRISE_ASSIGN_OR_RETURN(selection, EvalPredicate(*op.predicate, in));
  std::vector<Column> columns;
  for (size_t c = 0; c < in.num_columns(); ++c) {
    columns.push_back(in.column(c).Filter(selection));
  }
  return Chunk(in.schema(), std::move(columns));
}

Result<Chunk> ApplyProject(const OperatorSpec& op, Chunk in,
                           CostAccumulator* cost) {
  Schema schema;
  SKYRISE_ASSIGN_OR_RETURN(schema, ProjectSchema(op, in.schema()));
  cost->AddNs(static_cast<double>(in.rows()) *
              static_cast<double>(op.projections.size()) *
              cost->model().project_ns_per_row_col);
  if (in.is_synthetic()) return Chunk::Synthetic(schema, in.rows());
  std::vector<Column> columns;
  for (size_t i = 0; i < op.projections.size(); ++i) {
    const auto& [name, expr] = op.projections[i];
    if (expr->kind == Expr::Kind::kColumn) {
      const int idx = in.schema().FieldIndex(expr->column);
      columns.push_back(in.column(static_cast<size_t>(idx)));
    } else {
      std::vector<double> values;
      SKYRISE_ASSIGN_OR_RETURN(values, EvalNumeric(*expr, in));
      Column col(DataType::kDouble);
      col.doubles() = std::move(values);
      columns.push_back(std::move(col));
    }
  }
  return Chunk(schema, std::move(columns));
}

Result<Chunk> ApplyAggregate(const OperatorSpec& op, Chunk in,
                             CostAccumulator* cost) {
  Schema schema;
  SKYRISE_ASSIGN_OR_RETURN(schema, AggSchema(op, in.schema()));
  cost->AddNs(static_cast<double>(in.rows()) * cost->model().agg_ns_per_row);
  if (in.is_synthetic()) {
    return Chunk::Synthetic(schema, std::min(in.rows(), op.groups_hint));
  }
  std::vector<int> group_indices;
  SKYRISE_ASSIGN_OR_RETURN(group_indices,
                           ResolveColumns(in.schema(), op.group_by));
  // Evaluate aggregate argument expressions once per chunk.
  std::vector<std::vector<double>> arguments;
  for (const auto& agg : op.aggregates) {
    if (agg.func == "count" && !agg.expr) {
      arguments.emplace_back();
      continue;
    }
    std::vector<double> values;
    SKYRISE_ASSIGN_OR_RETURN(values, EvalNumeric(*agg.expr, in));
    arguments.push_back(std::move(values));
  }

  struct GroupState {
    size_t representative_row = 0;
    std::vector<double> accumulators;
  };
  std::unordered_map<std::string, GroupState> groups;
  const size_t rows = static_cast<size_t>(in.rows());
  for (size_t row = 0; row < rows; ++row) {
    const std::string key = RowKey(in, group_indices, row);
    auto [it, inserted] = groups.try_emplace(key);
    GroupState& state = it->second;
    if (inserted) {
      state.representative_row = row;
      state.accumulators.resize(op.aggregates.size());
      for (size_t a = 0; a < op.aggregates.size(); ++a) {
        const auto& func = op.aggregates[a].func;
        if (func == "min") {
          state.accumulators[a] = std::numeric_limits<double>::infinity();
        } else if (func == "max") {
          state.accumulators[a] = -std::numeric_limits<double>::infinity();
        } else {
          state.accumulators[a] = 0;
        }
      }
    }
    for (size_t a = 0; a < op.aggregates.size(); ++a) {
      const auto& func = op.aggregates[a].func;
      if (func == "count") {
        state.accumulators[a] += 1;
      } else {
        const double v = arguments[a][row];
        if (func == "sum") {
          state.accumulators[a] += v;
        } else if (func == "min") {
          state.accumulators[a] = std::min(state.accumulators[a], v);
        } else if (func == "max") {
          state.accumulators[a] = std::max(state.accumulators[a], v);
        } else {
          return Status::InvalidArgument("unknown aggregate: " + func);
        }
      }
    }
  }

  Chunk out = Chunk::Empty(schema);
  // Deterministic output order: sort group keys.
  std::vector<std::pair<std::string, const GroupState*>> ordered;
  ordered.reserve(groups.size());
  // skyrise-check: allow(unordered-iteration) — collected then sorted below.
  for (const auto& [key, state] : groups) ordered.emplace_back(key, &state);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [key, state] : ordered) {
    for (size_t g = 0; g < group_indices.size(); ++g) {
      out.column(g).AppendFrom(
          in.column(static_cast<size_t>(group_indices[g])),
          state->representative_row);
    }
    for (size_t a = 0; a < op.aggregates.size(); ++a) {
      Column& col = out.column(group_indices.size() + a);
      if (op.aggregates[a].func == "count") {
        col.AppendInt(static_cast<int64_t>(std::llround(state->accumulators[a])));
      } else {
        col.AppendDouble(state->accumulators[a]);
      }
    }
  }
  return out;
}

Result<Chunk> ApplyJoin(const OperatorSpec& op, Chunk probe, const Chunk& build,
                        CostAccumulator* cost) {
  Schema schema;
  SKYRISE_ASSIGN_OR_RETURN(schema,
                           JoinSchema(op, probe.schema(), build.schema()));
  cost->AddNs(static_cast<double>(build.rows()) *
                  cost->model().join_build_ns_per_row +
              static_cast<double>(probe.rows()) *
                  cost->model().join_probe_ns_per_row);
  if (probe.is_synthetic() || build.is_synthetic()) {
    return Chunk::Synthetic(
        schema, static_cast<int64_t>(std::llround(
                    static_cast<double>(probe.rows()) * op.join_multiplier)));
  }
  std::vector<int> probe_indices, build_indices, carried;
  SKYRISE_ASSIGN_OR_RETURN(probe_indices,
                           ResolveColumns(probe.schema(), op.probe_keys));
  SKYRISE_ASSIGN_OR_RETURN(build_indices,
                           ResolveColumns(build.schema(), op.build_keys));
  SKYRISE_ASSIGN_OR_RETURN(carried,
                           ResolveColumns(build.schema(), op.build_columns));
  std::unordered_multimap<std::string, size_t> table;
  const size_t build_rows = static_cast<size_t>(build.rows());
  table.reserve(build_rows);
  for (size_t row = 0; row < build_rows; ++row) {
    table.emplace(RowKey(build, build_indices, row), row);
  }
  Chunk out = Chunk::Empty(schema);
  const size_t probe_rows = static_cast<size_t>(probe.rows());
  for (size_t row = 0; row < probe_rows; ++row) {
    auto [begin, end] = table.equal_range(RowKey(probe, probe_indices, row));
    for (auto it = begin; it != end; ++it) {
      for (size_t c = 0; c < probe.num_columns(); ++c) {
        out.column(c).AppendFrom(probe.column(c), row);
      }
      for (size_t c = 0; c < carried.size(); ++c) {
        out.column(probe.num_columns() + c)
            .AppendFrom(build.column(static_cast<size_t>(carried[c])),
                        it->second);
      }
    }
  }
  return out;
}

Result<Chunk> ApplySort(const OperatorSpec& op, Chunk in,
                        CostAccumulator* cost) {
  const double n = static_cast<double>(std::max<int64_t>(in.rows(), 1));
  cost->AddNs(n * std::log2(n + 1) * cost->model().sort_ns_per_row_log);
  if (in.is_synthetic()) return in;
  std::vector<int> key_indices;
  SKYRISE_ASSIGN_OR_RETURN(key_indices,
                           ResolveColumns(in.schema(), op.sort_keys));
  std::vector<uint32_t> order(static_cast<size_t>(in.rows()));
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<uint32_t>(i);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    for (size_t k = 0; k < key_indices.size(); ++k) {
      const Column& col = in.column(static_cast<size_t>(key_indices[k]));
      const bool asc =
          k < op.sort_ascending.size() ? op.sort_ascending[k] : true;
      int cmp = 0;
      switch (col.type()) {
        case DataType::kString:
          cmp = col.strings()[a].compare(col.strings()[b]);
          break;
        case DataType::kDouble:
          cmp = col.doubles()[a] < col.doubles()[b]
                    ? -1
                    : (col.doubles()[a] > col.doubles()[b] ? 1 : 0);
          break;
        default:
          cmp = col.ints()[a] < col.ints()[b]
                    ? -1
                    : (col.ints()[a] > col.ints()[b] ? 1 : 0);
      }
      if (cmp != 0) return asc ? cmp < 0 : cmp > 0;
    }
    return false;
  });
  std::vector<Column> columns;
  for (size_t c = 0; c < in.num_columns(); ++c) {
    columns.push_back(in.column(c).Filter(order));
  }
  return Chunk(in.schema(), std::move(columns));
}

Result<Chunk> ApplyLimit(const OperatorSpec& op, Chunk in) {
  if (op.limit < 0 || in.rows() <= op.limit) return in;
  if (in.is_synthetic()) return Chunk::Synthetic(in.schema(), op.limit);
  std::vector<uint32_t> head(static_cast<size_t>(op.limit));
  for (size_t i = 0; i < head.size(); ++i) head[i] = static_cast<uint32_t>(i);
  std::vector<Column> columns;
  for (size_t c = 0; c < in.num_columns(); ++c) {
    columns.push_back(in.column(c).Filter(head));
  }
  return Chunk(in.schema(), std::move(columns));
}

/// TPCx-BB Q3 style sessionization UDF: for every purchase of an item in the
/// target category, emit the same-category items the user viewed within the
/// preceding window. Requires columns: wcs_click_date, wcs_user_sk,
/// wcs_item_sk, wcs_sales_sk, i_category_id.
Result<Chunk> ApplySessionize(const OperatorSpec& op, Chunk in,
                              CostAccumulator* cost) {
  cost->AddNs(static_cast<double>(in.rows()) * cost->model().udf_ns_per_row);
  const Schema out_schema = SessionizeSchema();
  if (in.is_synthetic()) {
    return Chunk::Synthetic(out_schema,
                            static_cast<int64_t>(std::llround(
                                static_cast<double>(in.rows()) *
                                op.udf_output_ratio)));
  }
  std::vector<int> indices;
  SKYRISE_ASSIGN_OR_RETURN(
      indices,
      ResolveColumns(in.schema(), {"wcs_click_date", "wcs_user_sk",
                                   "wcs_item_sk", "wcs_sales_sk",
                                   "i_category_id"}));
  const auto& date = in.column(static_cast<size_t>(indices[0])).ints();
  const auto& user = in.column(static_cast<size_t>(indices[1])).ints();
  const auto& item = in.column(static_cast<size_t>(indices[2])).ints();
  const auto& sale = in.column(static_cast<size_t>(indices[3])).ints();
  const auto& category = in.column(static_cast<size_t>(indices[4])).ints();

  // Group row indices per user, sort each user's clicks by date.
  std::map<int64_t, std::vector<size_t>> by_user;
  for (size_t row = 0; row < static_cast<size_t>(in.rows()); ++row) {
    by_user[user[row]].push_back(row);
  }
  Chunk out = Chunk::Empty(out_schema);
  auto& out_items = out.column(0).ints();
  for (auto& [user_sk, rows] : by_user) {
    std::stable_sort(rows.begin(), rows.end(), [&](size_t a, size_t b) {
      return date[a] < date[b];
    });
    for (size_t i = 0; i < rows.size(); ++i) {
      const size_t purchase = rows[i];
      if (sale[purchase] <= 0 || category[purchase] != op.target_category) {
        continue;
      }
      // Views on strictly earlier days within the window. Day-granular
      // semantics keep the result independent of intra-day row order, which
      // is arbitrary after a shuffle.
      for (size_t view : rows) {
        if (sale[view] != 0) continue;
        if (category[view] != op.target_category) continue;
        const int64_t gap = date[purchase] - date[view];
        if (gap < 1 || gap > op.session_window_days) continue;
        out_items.push_back(item[view]);
      }
    }
  }
  return out;
}

}  // namespace

Result<std::vector<FragmentOutput>> ExecuteFragment(
    const PipelineSpec& pipeline, Chunk stream, std::vector<Chunk> builds,
    CostAccumulator* cost) {
  Chunk current = std::move(stream);
  for (const auto& op : pipeline.ops) {
    if (op.op == "filter") {
      SKYRISE_ASSIGN_OR_RETURN(current, ApplyFilter(op, std::move(current), cost));
    } else if (op.op == "project") {
      SKYRISE_ASSIGN_OR_RETURN(current,
                               ApplyProject(op, std::move(current), cost));
    } else if (op.op == "hash_agg") {
      SKYRISE_ASSIGN_OR_RETURN(current,
                               ApplyAggregate(op, std::move(current), cost));
    } else if (op.op == "hash_join") {
      const size_t build_index = static_cast<size_t>(op.build_input - 1);
      if (build_index >= builds.size()) {
        return Status::InvalidArgument("missing join build input");
      }
      SKYRISE_ASSIGN_OR_RETURN(
          current, ApplyJoin(op, std::move(current), builds[build_index], cost));
    } else if (op.op == "sort") {
      SKYRISE_ASSIGN_OR_RETURN(current, ApplySort(op, std::move(current), cost));
    } else if (op.op == "limit") {
      SKYRISE_ASSIGN_OR_RETURN(current, ApplyLimit(op, std::move(current)));
    } else if (op.op == "bb_sessionize") {
      SKYRISE_ASSIGN_OR_RETURN(current,
                               ApplySessionize(op, std::move(current), cost));
    } else if (op.op == "partition_write") {
      cost->AddNs(static_cast<double>(current.rows()) *
                  cost->model().partition_ns_per_row);
      std::vector<FragmentOutput> outputs;
      const int parts = op.partition_count;
      if (current.is_synthetic()) {
        const int64_t rows = current.rows();
        for (int p = 0; p < parts; ++p) {
          const int64_t share =
              rows * (p + 1) / parts - rows * p / parts;
          outputs.push_back(FragmentOutput{
              p, Chunk::Synthetic(current.schema(), share)});
        }
        return outputs;
      }
      std::vector<int> key_indices;
      SKYRISE_ASSIGN_OR_RETURN(
          key_indices, ResolveColumns(current.schema(), op.partition_keys));
      std::vector<std::vector<uint32_t>> selections(
          static_cast<size_t>(parts));
      for (size_t row = 0; row < static_cast<size_t>(current.rows()); ++row) {
        const uint64_t h = HashString(RowKey(current, key_indices, row));
        selections[h % static_cast<uint64_t>(parts)].push_back(
            static_cast<uint32_t>(row));
      }
      for (int p = 0; p < parts; ++p) {
        std::vector<Column> columns;
        for (size_t c = 0; c < current.num_columns(); ++c) {
          columns.push_back(
              current.column(c).Filter(selections[static_cast<size_t>(p)]));
        }
        outputs.push_back(
            FragmentOutput{p, Chunk(current.schema(), std::move(columns))});
      }
      return outputs;
    } else if (op.op == "barrier") {
      // Synchronization barriers are awaited by the worker's I/O state
      // machine (they poll a shared queue); no data transformation here.
      continue;
    } else if (op.op == "collect") {
      std::vector<FragmentOutput> outputs;
      outputs.push_back(FragmentOutput{-1, std::move(current)});
      return outputs;
    } else {
      return Status::InvalidArgument("unknown operator: " + op.op);
    }
  }
  // No terminal operator: return the stream as the result.
  std::vector<FragmentOutput> outputs;
  outputs.push_back(FragmentOutput{-1, std::move(current)});
  return outputs;
}

Result<data::Schema> PipelineOutputSchema(
    const PipelineSpec& pipeline, const data::Schema& stream_schema,
    const std::vector<data::Schema>& build_schemas) {
  Schema current = stream_schema;
  for (const auto& op : pipeline.ops) {
    if (op.op == "project") {
      SKYRISE_ASSIGN_OR_RETURN(current, ProjectSchema(op, current));
    } else if (op.op == "hash_agg") {
      SKYRISE_ASSIGN_OR_RETURN(current, AggSchema(op, current));
    } else if (op.op == "hash_join") {
      const size_t build_index = static_cast<size_t>(op.build_input - 1);
      if (build_index >= build_schemas.size()) {
        return Status::InvalidArgument("missing join build schema");
      }
      SKYRISE_ASSIGN_OR_RETURN(
          current, JoinSchema(op, current, build_schemas[build_index]));
    } else if (op.op == "bb_sessionize") {
      current = SessionizeSchema();
    }
  }
  return current;
}

}  // namespace skyrise::engine
