#include "engine/executor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/string_util.h"

namespace skyrise::engine {

namespace {

using data::Chunk;
using data::Column;
using data::DataType;
using data::Schema;

/// Builds a compound key string from the named columns of `chunk` at `row`.
std::string RowKey(const Chunk& chunk, const std::vector<int>& key_indices,
                   size_t row) {
  std::string key;
  for (int idx : key_indices) {
    const Column& col = chunk.column(static_cast<size_t>(idx));
    switch (col.type()) {
      case DataType::kString:
        key += col.strings()[row];
        break;
      case DataType::kDouble:
        key += StrFormat("%.17g", col.doubles()[row]);
        break;
      default:
        key += std::to_string(col.ints()[row]);
    }
    key.push_back('\x1f');
  }
  return key;
}

Result<std::vector<int>> ResolveColumns(const Schema& schema,
                                        const std::vector<std::string>& names) {
  std::vector<int> out;
  for (const auto& name : names) {
    const int idx = schema.FieldIndex(name);
    if (idx < 0) return Status::NotFound("no column: " + name);
    out.push_back(idx);
  }
  return out;
}

uint64_t HashString(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// --- Per-operator schema propagation. ---

Result<Schema> ProjectSchema(const OperatorSpec& op, const Schema& in) {
  std::vector<data::Field> fields;
  for (const auto& [name, expr] : op.projections) {
    if (expr->kind == Expr::Kind::kColumn) {
      const int idx = in.FieldIndex(expr->column);
      if (idx < 0) return Status::NotFound("no column: " + expr->column);
      fields.push_back(data::Field{name, in.field(static_cast<size_t>(idx)).type});
    } else {
      fields.push_back(data::Field{name, DataType::kDouble});
    }
  }
  return Schema(std::move(fields));
}

Result<Schema> AggSchema(const OperatorSpec& op, const Schema& in) {
  std::vector<data::Field> fields;
  for (const auto& name : op.group_by) {
    const int idx = in.FieldIndex(name);
    if (idx < 0) return Status::NotFound("no group column: " + name);
    fields.push_back(in.field(static_cast<size_t>(idx)));
  }
  for (const auto& agg : op.aggregates) {
    fields.push_back(data::Field{
        agg.as,
        agg.func == "count" ? DataType::kInt64 : DataType::kDouble});
  }
  return Schema(std::move(fields));
}

Result<Schema> JoinSchema(const OperatorSpec& op, const Schema& probe,
                          const Schema& build) {
  std::vector<data::Field> fields = probe.fields();
  for (const auto& name : op.build_columns) {
    const int idx = build.FieldIndex(name);
    if (idx < 0) return Status::NotFound("no build column: " + name);
    fields.push_back(build.field(static_cast<size_t>(idx)));
  }
  return Schema(std::move(fields));
}

Schema SessionizeSchema() {
  return Schema({{"item_sk", DataType::kInt64}});
}

// --- Stateless per-morsel operator kernels. ---

Result<Chunk> ApplyFilter(const OperatorSpec& op, Chunk&& in,
                          CostAccumulator* cost) {
  cost->AddNs(static_cast<double>(in.rows()) *
              cost->model().filter_ns_per_row);
  if (in.is_synthetic()) {
    return Chunk::Synthetic(in.schema(),
                            static_cast<int64_t>(std::llround(
                                static_cast<double>(in.rows()) *
                                op.selectivity)));
  }
  std::vector<uint32_t> selection;
  SKYRISE_ASSIGN_OR_RETURN(selection, EvalPredicate(*op.predicate, in));
  std::vector<Column> columns;
  for (size_t c = 0; c < in.num_columns(); ++c) {
    columns.push_back(in.column(c).Filter(selection));
  }
  return Chunk(in.schema(), std::move(columns));
}

Result<Chunk> ApplySort(const OperatorSpec& op, Chunk&& in,
                        CostAccumulator* cost) {
  const double n = static_cast<double>(std::max<int64_t>(in.rows(), 1));
  cost->AddNs(n * std::log2(n + 1) * cost->model().sort_ns_per_row_log);
  if (in.is_synthetic()) return std::move(in);
  std::vector<int> key_indices;
  SKYRISE_ASSIGN_OR_RETURN(key_indices,
                           ResolveColumns(in.schema(), op.sort_keys));
  std::vector<uint32_t> order(static_cast<size_t>(in.rows()));
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<uint32_t>(i);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    for (size_t k = 0; k < key_indices.size(); ++k) {
      const Column& col = in.column(static_cast<size_t>(key_indices[k]));
      const bool asc =
          k < op.sort_ascending.size() ? op.sort_ascending[k] : true;
      int cmp = 0;
      switch (col.type()) {
        case DataType::kString:
          cmp = col.strings()[a].compare(col.strings()[b]);
          break;
        case DataType::kDouble:
          cmp = col.doubles()[a] < col.doubles()[b]
                    ? -1
                    : (col.doubles()[a] > col.doubles()[b] ? 1 : 0);
          break;
        default:
          cmp = col.ints()[a] < col.ints()[b]
                    ? -1
                    : (col.ints()[a] > col.ints()[b] ? 1 : 0);
      }
      if (cmp != 0) return asc ? cmp < 0 : cmp > 0;
    }
    return false;
  });
  std::vector<Column> columns;
  for (size_t c = 0; c < in.num_columns(); ++c) {
    columns.push_back(in.column(c).Filter(order));
  }
  return Chunk(in.schema(), std::move(columns));
}

/// TPCx-BB Q3 style sessionization UDF: for every purchase of an item in the
/// target category, emit the same-category items the user viewed within the
/// preceding window. Requires columns: wcs_click_date, wcs_user_sk,
/// wcs_item_sk, wcs_sales_sk, i_category_id.
Result<Chunk> ApplySessionize(const OperatorSpec& op, Chunk&& in,
                              CostAccumulator* cost) {
  cost->AddNs(static_cast<double>(in.rows()) * cost->model().udf_ns_per_row);
  const Schema out_schema = SessionizeSchema();
  if (in.is_synthetic()) {
    return Chunk::Synthetic(out_schema,
                            static_cast<int64_t>(std::llround(
                                static_cast<double>(in.rows()) *
                                op.udf_output_ratio)));
  }
  std::vector<int> indices;
  SKYRISE_ASSIGN_OR_RETURN(
      indices,
      ResolveColumns(in.schema(), {"wcs_click_date", "wcs_user_sk",
                                   "wcs_item_sk", "wcs_sales_sk",
                                   "i_category_id"}));
  const auto& date = in.column(static_cast<size_t>(indices[0])).ints();
  const auto& user = in.column(static_cast<size_t>(indices[1])).ints();
  const auto& item = in.column(static_cast<size_t>(indices[2])).ints();
  const auto& sale = in.column(static_cast<size_t>(indices[3])).ints();
  const auto& category = in.column(static_cast<size_t>(indices[4])).ints();

  // Group row indices per user, sort each user's clicks by date.
  std::map<int64_t, std::vector<size_t>> by_user;
  for (size_t row = 0; row < static_cast<size_t>(in.rows()); ++row) {
    by_user[user[row]].push_back(row);
  }
  Chunk out = Chunk::Empty(out_schema);
  auto& out_items = out.column(0).ints();
  for (auto& [user_sk, rows] : by_user) {
    std::stable_sort(rows.begin(), rows.end(), [&](size_t a, size_t b) {
      return date[a] < date[b];
    });
    for (size_t i = 0; i < rows.size(); ++i) {
      const size_t purchase = rows[i];
      if (sale[purchase] <= 0 || category[purchase] != op.target_category) {
        continue;
      }
      // Views on strictly earlier days within the window. Day-granular
      // semantics keep the result independent of intra-day row order, which
      // is arbitrary after a shuffle.
      for (size_t view : rows) {
        if (sale[view] != 0) continue;
        if (category[view] != op.target_category) continue;
        const int64_t gap = date[purchase] - date[view];
        if (gap < 1 || gap > op.session_window_days) continue;
        out_items.push_back(item[view]);
      }
    }
  }
  return out;
}

// --- Streaming operator states. ---
//
// Each operator in the chain is an OperatorState: Push() consumes one morsel
// and either returns the transformed morsel (streaming operators) or absorbs
// it into accumulated state (pipeline breakers and sinks, which return
// nullopt). Flush() emits a breaker's accumulated result at end-of-stream.
// StateBytes() reports accumulated-state size for the MemoryTracker.

class OperatorState {
 public:
  virtual ~OperatorState() = default;
  [[nodiscard]] virtual Result<std::optional<Chunk>> Push(Chunk&& in) = 0;
  [[nodiscard]] virtual Result<std::optional<Chunk>> Flush() {
    return std::optional<Chunk>();
  }
  virtual bool is_sink() const { return false; }
  virtual std::vector<FragmentOutput> TakeOutputs() { return {}; }
  virtual int64_t StateBytes() const { return 0; }
};

/// Streaming filter with pooled output: the selection vector and the output
/// chunk's column buffers are reused across morsels (the spent input goes
/// back to the pool in WalkFrom). Selection semantics are identical to
/// ApplyFilter, which remains the unpooled single-shot path.
class FilterOp final : public OperatorState {
 public:
  FilterOp(const OperatorSpec& op, CostAccumulator* cost,
           data::ChunkPool* pool)
      : op_(op), cost_(cost), pool_(pool) {}
  Result<std::optional<Chunk>> Push(Chunk&& in) override {
    cost_->AddNs(static_cast<double>(in.rows()) *
                 cost_->model().filter_ns_per_row);
    if (in.is_synthetic()) {
      return std::optional<Chunk>(
          Chunk::Synthetic(in.schema(),
                           static_cast<int64_t>(std::llround(
                               static_cast<double>(in.rows()) *
                               op_.selectivity))));
    }
    SKYRISE_RETURN_IF_ERROR(EvalPredicateInto(*op_.predicate, in,
                                              &selection_));
    Chunk out = pool_->AcquirePrepared(in.schema());
    for (size_t c = 0; c < in.num_columns(); ++c) {
      in.column(c).FilterInto(selection_, &out.column(c));
    }
    return std::optional<Chunk>(std::move(out));
  }

 private:
  const OperatorSpec& op_;
  CostAccumulator* cost_;
  data::ChunkPool* pool_;
  std::vector<uint32_t> selection_;
};

/// Streaming projection that moves pass-through columns out of the input
/// instead of copying them; only computed expressions materialize new
/// buffers. Expressions are evaluated before any column is moved, since they
/// may read columns the projection also passes through.
class ProjectOp final : public OperatorState {
 public:
  ProjectOp(const OperatorSpec& op, CostAccumulator* cost)
      : op_(op), cost_(cost) {}
  Result<std::optional<Chunk>> Push(Chunk&& in) override {
    if (!resolved_) {
      SKYRISE_ASSIGN_OR_RETURN(out_schema_, ProjectSchema(op_, in.schema()));
      resolved_ = true;
    }
    cost_->AddNs(static_cast<double>(in.rows()) *
                 static_cast<double>(op_.projections.size()) *
                 cost_->model().project_ns_per_row_col);
    if (in.is_synthetic()) {
      return std::optional<Chunk>(Chunk::Synthetic(out_schema_, in.rows()));
    }
    std::vector<Column> computed;
    for (const auto& [name, expr] : op_.projections) {
      if (expr->kind == Expr::Kind::kColumn) continue;
      Column col(DataType::kDouble);
      SKYRISE_RETURN_IF_ERROR(EvalNumericInto(*expr, in, &col.doubles()));
      computed.push_back(std::move(col));
    }
    std::vector<Column> columns;
    columns.reserve(op_.projections.size());
    moved_to_.assign(in.num_columns(), -1);
    size_t next_computed = 0;
    for (const auto& [name, expr] : op_.projections) {
      if (expr->kind != Expr::Kind::kColumn) {
        columns.push_back(std::move(computed[next_computed++]));
        continue;
      }
      const size_t idx =
          static_cast<size_t>(in.schema().FieldIndex(expr->column));
      if (moved_to_[idx] >= 0) {
        // Duplicate reference: copy from the already-built output column,
        // never from the moved-from input.
        columns.push_back(columns[static_cast<size_t>(moved_to_[idx])]);
      } else {
        moved_to_[idx] = static_cast<int>(columns.size());
        columns.push_back(std::move(in.column(idx)));
      }
    }
    return std::optional<Chunk>(Chunk(out_schema_, std::move(columns)));
  }

 private:
  const OperatorSpec& op_;
  CostAccumulator* cost_;
  bool resolved_ = false;
  Schema out_schema_;
  std::vector<int> moved_to_;
};

/// Pipeline breaker: accumulates group states across morsels in row order
/// (so floating-point accumulation matches the materialized path bit for
/// bit) and emits the sorted group table on Flush().
class AggOp final : public OperatorState {
 public:
  AggOp(const OperatorSpec& op, CostAccumulator* cost)
      : op_(op), cost_(cost) {}

  Result<std::optional<Chunk>> Push(Chunk&& in) override {
    cost_->AddNs(static_cast<double>(in.rows()) *
                 cost_->model().agg_ns_per_row);
    if (!resolved_) {
      SKYRISE_ASSIGN_OR_RETURN(out_schema_, AggSchema(op_, in.schema()));
      SKYRISE_ASSIGN_OR_RETURN(group_indices_,
                               ResolveColumns(in.schema(), op_.group_by));
      std::vector<data::Field> key_fields;
      for (int idx : group_indices_) {
        key_fields.push_back(in.schema().field(static_cast<size_t>(idx)));
      }
      key_chunk_ = Chunk::Empty(Schema(std::move(key_fields)));
      resolved_ = true;
    }
    if (in.is_synthetic()) {
      synthetic_result_ =
          Chunk::Synthetic(out_schema_, std::min(in.rows(), op_.groups_hint));
      return std::optional<Chunk>();
    }
    std::vector<std::vector<double>> arguments;
    for (const auto& agg : op_.aggregates) {
      if (agg.func == "count" && !agg.expr) {
        arguments.emplace_back();
        continue;
      }
      std::vector<double> values;
      SKYRISE_ASSIGN_OR_RETURN(values, EvalNumeric(*agg.expr, in));
      arguments.push_back(std::move(values));
    }
    const size_t rows = static_cast<size_t>(in.rows());
    for (size_t row = 0; row < rows; ++row) {
      std::string key = RowKey(in, group_indices_, row);
      auto [it, inserted] = groups_.try_emplace(std::move(key));
      GroupState& state = it->second;
      if (inserted) {
        state.key_row = static_cast<size_t>(key_chunk_.rows());
        for (size_t g = 0; g < group_indices_.size(); ++g) {
          key_chunk_.column(g).AppendFrom(
              in.column(static_cast<size_t>(group_indices_[g])), row);
        }
        state.accumulators.resize(op_.aggregates.size());
        for (size_t a = 0; a < op_.aggregates.size(); ++a) {
          const auto& func = op_.aggregates[a].func;
          if (func == "min") {
            state.accumulators[a] = std::numeric_limits<double>::infinity();
          } else if (func == "max") {
            state.accumulators[a] = -std::numeric_limits<double>::infinity();
          } else {
            state.accumulators[a] = 0;
          }
        }
        state_bytes_ += static_cast<int64_t>(it->first.size()) + 48 +
                        8 * static_cast<int64_t>(op_.aggregates.size());
      }
      for (size_t a = 0; a < op_.aggregates.size(); ++a) {
        const auto& func = op_.aggregates[a].func;
        if (func == "count") {
          state.accumulators[a] += 1;
        } else {
          const double v = arguments[a][row];
          if (func == "sum") {
            state.accumulators[a] += v;
          } else if (func == "min") {
            state.accumulators[a] = std::min(state.accumulators[a], v);
          } else if (func == "max") {
            state.accumulators[a] = std::max(state.accumulators[a], v);
          } else {
            return Status::InvalidArgument("unknown aggregate: " + func);
          }
        }
      }
    }
    return std::optional<Chunk>();
  }

  Result<std::optional<Chunk>> Flush() override {
    state_bytes_ = 0;
    if (synthetic_result_.has_value()) {
      return std::optional<Chunk>(std::move(*synthetic_result_));
    }
    if (!resolved_) return std::optional<Chunk>();
    Chunk out = Chunk::Empty(out_schema_);
    // Deterministic output order: sort group keys.
    std::vector<std::pair<std::string, const GroupState*>> ordered;
    ordered.reserve(groups_.size());
    // skyrise-check: allow(unordered-iteration) — collected then sorted below.
    for (const auto& [key, state] : groups_) ordered.emplace_back(key, &state);
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [key, state] : ordered) {
      for (size_t g = 0; g < group_indices_.size(); ++g) {
        out.column(g).AppendFrom(key_chunk_.column(g), state->key_row);
      }
      for (size_t a = 0; a < op_.aggregates.size(); ++a) {
        Column& col = out.column(group_indices_.size() + a);
        if (op_.aggregates[a].func == "count") {
          col.AppendInt(
              static_cast<int64_t>(std::llround(state->accumulators[a])));
        } else {
          col.AppendDouble(state->accumulators[a]);
        }
      }
    }
    groups_.clear();
    return std::optional<Chunk>(std::move(out));
  }

  int64_t StateBytes() const override { return state_bytes_; }

 private:
  struct GroupState {
    size_t key_row = 0;  ///< Representative row in key_chunk_.
    std::vector<double> accumulators;
  };

  const OperatorSpec& op_;
  CostAccumulator* cost_;
  bool resolved_ = false;
  Schema out_schema_;
  std::vector<int> group_indices_;
  Chunk key_chunk_;  ///< One row per group, insertion order.
  std::unordered_map<std::string, GroupState> groups_;
  std::optional<Chunk> synthetic_result_;
  int64_t state_bytes_ = 0;
};

/// Streaming probe over a build table constructed once on the first morsel.
/// The build side is a pipeline breaker by construction (it arrives fully
/// materialized); the probe side streams.
class JoinOp final : public OperatorState {
 public:
  JoinOp(const OperatorSpec& op, const Chunk* build, CostAccumulator* cost)
      : op_(op), build_(build), cost_(cost) {}

  Result<std::optional<Chunk>> Push(Chunk&& in) override {
    if (!resolved_) {
      SKYRISE_ASSIGN_OR_RETURN(out_schema_,
                               JoinSchema(op_, in.schema(), build_->schema()));
      SKYRISE_ASSIGN_OR_RETURN(probe_indices_,
                               ResolveColumns(in.schema(), op_.probe_keys));
      resolved_ = true;
    }
    if (!build_charged_) {
      cost_->AddNs(static_cast<double>(build_->rows()) *
                   cost_->model().join_build_ns_per_row);
      build_charged_ = true;
    }
    cost_->AddNs(static_cast<double>(in.rows()) *
                 cost_->model().join_probe_ns_per_row);
    if (in.is_synthetic() || build_->is_synthetic()) {
      return std::optional<Chunk>(Chunk::Synthetic(
          out_schema_, static_cast<int64_t>(std::llround(
                           static_cast<double>(in.rows()) *
                           op_.join_multiplier))));
    }
    if (!table_built_) {
      SKYRISE_ASSIGN_OR_RETURN(build_indices_,
                               ResolveColumns(build_->schema(), op_.build_keys));
      SKYRISE_ASSIGN_OR_RETURN(
          carried_, ResolveColumns(build_->schema(), op_.build_columns));
      const size_t build_rows = static_cast<size_t>(build_->rows());
      table_.reserve(build_rows);
      for (size_t row = 0; row < build_rows; ++row) {
        std::string key = RowKey(*build_, build_indices_, row);
        state_bytes_ += static_cast<int64_t>(key.size()) + 24;
        table_.emplace(std::move(key), row);
      }
      table_built_ = true;
    }
    Chunk out = Chunk::Empty(out_schema_);
    const size_t probe_rows = static_cast<size_t>(in.rows());
    for (size_t row = 0; row < probe_rows; ++row) {
      auto [begin, end] = table_.equal_range(RowKey(in, probe_indices_, row));
      for (auto it = begin; it != end; ++it) {
        for (size_t c = 0; c < in.num_columns(); ++c) {
          out.column(c).AppendFrom(in.column(c), row);
        }
        for (size_t c = 0; c < carried_.size(); ++c) {
          out.column(in.num_columns() + c)
              .AppendFrom(build_->column(static_cast<size_t>(carried_[c])),
                          it->second);
        }
      }
    }
    return std::optional<Chunk>(std::move(out));
  }

  int64_t StateBytes() const override { return state_bytes_; }

 private:
  const OperatorSpec& op_;
  const Chunk* build_;
  CostAccumulator* cost_;
  bool resolved_ = false;
  bool build_charged_ = false;
  bool table_built_ = false;
  Schema out_schema_;
  std::vector<int> probe_indices_, build_indices_, carried_;
  std::unordered_multimap<std::string, size_t> table_;
  int64_t state_bytes_ = 0;
};

/// Pipeline breaker: buffers the full input, sorts on Flush(). The n·log n
/// cost is charged once over the whole input, as in the materialized path.
class SortOp final : public OperatorState {
 public:
  SortOp(const OperatorSpec& op, CostAccumulator* cost)
      : op_(op), cost_(cost) {}

  Result<std::optional<Chunk>> Push(Chunk&& in) override {
    state_bytes_ += in.ByteSize();
    if (!acc_.has_value()) {
      acc_.emplace(std::move(in));
    } else {
      acc_->Append(in);
    }
    return std::optional<Chunk>();
  }

  Result<std::optional<Chunk>> Flush() override {
    state_bytes_ = 0;
    if (!acc_.has_value()) return std::optional<Chunk>();
    Chunk out;
    SKYRISE_ASSIGN_OR_RETURN(out, ApplySort(op_, std::move(*acc_), cost_));
    acc_.reset();
    return std::optional<Chunk>(std::move(out));
  }

  int64_t StateBytes() const override { return state_bytes_; }

 private:
  const OperatorSpec& op_;
  CostAccumulator* cost_;
  std::optional<Chunk> acc_;
  int64_t state_bytes_ = 0;
};

class LimitOp final : public OperatorState {
 public:
  explicit LimitOp(const OperatorSpec& op) : op_(op) {}

  Result<std::optional<Chunk>> Push(Chunk&& in) override {
    if (op_.limit < 0) return std::optional<Chunk>(std::move(in));
    const int64_t remaining = op_.limit - emitted_;
    if (in.rows() <= remaining) {
      emitted_ += in.rows();
      return std::optional<Chunk>(std::move(in));
    }
    Chunk out = in.Slice(0, remaining);
    emitted_ = op_.limit;
    return std::optional<Chunk>(std::move(out));
  }

 private:
  const OperatorSpec& op_;
  int64_t emitted_ = 0;
};

/// Pipeline breaker: the sessionization UDF needs every click of a user, so
/// it buffers the full input and runs once on Flush().
class SessionizeOp final : public OperatorState {
 public:
  SessionizeOp(const OperatorSpec& op, CostAccumulator* cost)
      : op_(op), cost_(cost) {}

  Result<std::optional<Chunk>> Push(Chunk&& in) override {
    state_bytes_ += in.ByteSize();
    if (!acc_.has_value()) {
      acc_.emplace(std::move(in));
    } else {
      acc_->Append(in);
    }
    return std::optional<Chunk>();
  }

  Result<std::optional<Chunk>> Flush() override {
    state_bytes_ = 0;
    if (!acc_.has_value()) return std::optional<Chunk>();
    Chunk out;
    SKYRISE_ASSIGN_OR_RETURN(out,
                             ApplySessionize(op_, std::move(*acc_), cost_));
    acc_.reset();
    return std::optional<Chunk>(std::move(out));
  }

  int64_t StateBytes() const override { return state_bytes_; }

 private:
  const OperatorSpec& op_;
  CostAccumulator* cost_;
  std::optional<Chunk> acc_;
  int64_t state_bytes_ = 0;
};

/// Barriers are awaited by the worker's I/O state machine (they poll a
/// shared queue); no data transformation here.
class BarrierOp final : public OperatorState {
 public:
  Result<std::optional<Chunk>> Push(Chunk&& in) override {
    return std::optional<Chunk>(std::move(in));
  }
};

/// Sink: hash-partitions each morsel's rows (in row order, so partition
/// contents are identical to the materialized path) into per-partition
/// output chunks.
class PartitionSink final : public OperatorState {
 public:
  PartitionSink(const OperatorSpec& op, CostAccumulator* cost)
      : op_(op), cost_(cost) {}

  Result<std::optional<Chunk>> Push(Chunk&& in) override {
    cost_->AddNs(static_cast<double>(in.rows()) *
                 cost_->model().partition_ns_per_row);
    if (in.is_synthetic()) {
      synthetic_ = true;
      synthetic_rows_ += in.rows();
      schema_ = in.schema();
      return std::optional<Chunk>();
    }
    if (!initialized_) {
      SKYRISE_ASSIGN_OR_RETURN(
          key_indices_, ResolveColumns(in.schema(), op_.partition_keys));
      schema_ = in.schema();
      parts_.reserve(static_cast<size_t>(op_.partition_count));
      for (int p = 0; p < op_.partition_count; ++p) {
        parts_.push_back(Chunk::Empty(schema_));
      }
      initialized_ = true;
    }
    state_bytes_ += in.ByteSize();
    const size_t rows = static_cast<size_t>(in.rows());
    for (size_t row = 0; row < rows; ++row) {
      const uint64_t h = HashString(RowKey(in, key_indices_, row));
      Chunk& dst = parts_[h % static_cast<uint64_t>(op_.partition_count)];
      for (size_t c = 0; c < in.num_columns(); ++c) {
        dst.column(c).AppendFrom(in.column(c), row);
      }
    }
    return std::optional<Chunk>();
  }

  bool is_sink() const override { return true; }

  std::vector<FragmentOutput> TakeOutputs() override {
    std::vector<FragmentOutput> outputs;
    const int parts = op_.partition_count;
    if (synthetic_ || !initialized_) {
      const int64_t rows = synthetic_rows_;
      for (int p = 0; p < parts; ++p) {
        const int64_t share = rows * (p + 1) / parts - rows * p / parts;
        outputs.push_back(
            FragmentOutput{p, Chunk::Synthetic(schema_, share)});
      }
      return outputs;
    }
    for (int p = 0; p < parts; ++p) {
      outputs.push_back(FragmentOutput{
          p, std::move(parts_[static_cast<size_t>(p)])});
    }
    return outputs;
  }

  int64_t StateBytes() const override { return state_bytes_; }

 private:
  const OperatorSpec& op_;
  CostAccumulator* cost_;
  bool initialized_ = false;
  bool synthetic_ = false;
  int64_t synthetic_rows_ = 0;
  Schema schema_;
  std::vector<int> key_indices_;
  std::vector<Chunk> parts_;
  int64_t state_bytes_ = 0;
};

/// Sink: concatenates morsels (in arrival order) into the terminal result.
class CollectSink final : public OperatorState {
 public:
  Result<std::optional<Chunk>> Push(Chunk&& in) override {
    state_bytes_ += in.ByteSize();
    if (!acc_.has_value()) {
      acc_.emplace(std::move(in));
    } else {
      acc_->Append(in);
    }
    return std::optional<Chunk>();
  }

  bool is_sink() const override { return true; }

  std::vector<FragmentOutput> TakeOutputs() override {
    std::vector<FragmentOutput> outputs;
    outputs.push_back(FragmentOutput{
        -1, acc_.has_value() ? std::move(*acc_) : Chunk()});
    return outputs;
  }

  int64_t StateBytes() const override { return state_bytes_; }

 private:
  std::optional<Chunk> acc_;
  int64_t state_bytes_ = 0;
};

}  // namespace

// --- FragmentPipeline. ---

struct FragmentPipeline::Impl {
  PipelineSpec spec;
  std::vector<Chunk> builds;
  CostAccumulator* cost = nullptr;
  MemoryTracker local_memory;
  MemoryTracker* memory = nullptr;
  data::ChunkPool local_pool;
  data::ChunkPool* pool = nullptr;
  int64_t morsel_rows = 0;
  Status init = Status::OK();
  std::vector<std::unique_ptr<OperatorState>> ops;
  std::vector<int64_t> op_state_bytes;
  OperatorState* sink = nullptr;
  bool accumulating = false;
  std::optional<Chunk> pending;
  int64_t pending_bytes = 0;
  std::optional<data::Schema> stream_schema;
  std::optional<Chunk> tail;
  int64_t batches = 0;

  Status BuildOps();
  void SyncState(size_t i);
  Status WalkFrom(size_t start, Chunk&& chunk);
};

Status FragmentPipeline::Impl::BuildOps() {
  for (const auto& op : spec.ops) {
    if (op.op == "filter") {
      ops.push_back(std::make_unique<FilterOp>(op, cost, pool));
    } else if (op.op == "project") {
      ops.push_back(std::make_unique<ProjectOp>(op, cost));
    } else if (op.op == "hash_agg") {
      ops.push_back(std::make_unique<AggOp>(op, cost));
    } else if (op.op == "hash_join") {
      const size_t build_index = static_cast<size_t>(op.build_input - 1);
      if (build_index >= builds.size()) {
        return Status::InvalidArgument("missing join build input");
      }
      ops.push_back(std::make_unique<JoinOp>(op, &builds[build_index], cost));
      // Synthetic cardinality hints are nonlinear: joins against a synthetic
      // build must see the whole probe stream at once.
      if (builds[build_index].is_synthetic()) accumulating = true;
    } else if (op.op == "sort") {
      ops.push_back(std::make_unique<SortOp>(op, cost));
    } else if (op.op == "limit") {
      ops.push_back(std::make_unique<LimitOp>(op));
    } else if (op.op == "bb_sessionize") {
      ops.push_back(std::make_unique<SessionizeOp>(op, cost));
    } else if (op.op == "barrier") {
      ops.push_back(std::make_unique<BarrierOp>());
    } else if (op.op == "partition_write") {
      ops.push_back(std::make_unique<PartitionSink>(op, cost));
      sink = ops.back().get();
      break;  // Operators past the first sink are unreachable.
    } else if (op.op == "collect") {
      ops.push_back(std::make_unique<CollectSink>());
      sink = ops.back().get();
      break;
    } else {
      return Status::InvalidArgument("unknown operator: " + op.op);
    }
  }
  op_state_bytes.assign(ops.size(), 0);
  return Status::OK();
}

void FragmentPipeline::Impl::SyncState(size_t i) {
  const int64_t now = ops[i]->StateBytes();
  const int64_t delta = now - op_state_bytes[i];
  if (delta >= 0) {
    memory->Add(delta);
  } else {
    memory->Release(-delta);
  }
  op_state_bytes[i] = now;
}

Status FragmentPipeline::Impl::WalkFrom(size_t start, Chunk&& chunk) {
  if (start == 0) ++batches;
  Chunk current = std::move(chunk);
  for (size_t i = start; i < ops.size(); ++i) {
    const int64_t in_bytes = current.ByteSize();
    memory->Add(in_bytes);
    Result<std::optional<Chunk>> out = ops[i]->Push(std::move(current));
    SyncState(i);
    memory->Release(in_bytes);
    if (!out.ok()) return out.status();
    // Donate the spent input back to the pool. Operators that consumed it by
    // move left an empty shell behind, which Release drops; operators that
    // copied (or filtered) out of it leave warm buffers to recycle.
    const bool absorbed = !out->has_value();
    // skyrise-check: allow(use-after-move) — Release accepts moved-from chunks.
    pool->Release(std::move(current));
    if (absorbed) return Status::OK();
    current = std::move(**out);
  }
  // No terminal operator: collect the stream as the result.
  const int64_t bytes = current.ByteSize();
  if (!tail.has_value()) {
    tail.emplace(std::move(current));
  } else {
    tail->Append(current);
    pool->Release(std::move(current));
  }
  memory->Add(bytes);
  return Status::OK();
}

FragmentPipeline::FragmentPipeline(const PipelineSpec& pipeline,
                                   std::vector<data::Chunk> builds,
                                   CostAccumulator* cost,
                                   MemoryTracker* memory, int64_t morsel_rows,
                                   data::ChunkPool* pool)
    : impl_(std::make_unique<Impl>()) {
  impl_->spec = pipeline;
  impl_->builds = std::move(builds);
  impl_->cost = cost;
  impl_->memory = memory != nullptr ? memory : &impl_->local_memory;
  impl_->pool = pool != nullptr ? pool : &impl_->local_pool;
  impl_->morsel_rows = morsel_rows;
  impl_->accumulating = morsel_rows < 0;
  for (const auto& build : impl_->builds) {
    impl_->memory->Add(build.ByteSize());
  }
  impl_->init = impl_->BuildOps();
}

FragmentPipeline::~FragmentPipeline() = default;

Status FragmentPipeline::Push(data::Chunk&& morsel) {
  Impl& im = *impl_;
  if (!im.init.ok()) return im.init;
  if (!im.stream_schema.has_value()) im.stream_schema = morsel.schema();
  // Synthetic cardinality hints round per batch; fall back to one batch.
  if (morsel.is_synthetic()) im.accumulating = true;
  if (im.accumulating) {
    const int64_t bytes = morsel.ByteSize();
    if (!im.pending.has_value()) {
      im.pending.emplace(std::move(morsel));
    } else {
      im.pending->Append(morsel);
    }
    im.pending_bytes += bytes;
    im.memory->Add(bytes);
    return Status::OK();
  }
  if (im.morsel_rows > 0 && morsel.rows() > im.morsel_rows) {
    const int64_t total = morsel.rows();
    for (int64_t offset = 0; offset < total; offset += im.morsel_rows) {
      const int64_t count = std::min(im.morsel_rows, total - offset);
      Chunk piece = im.pool->AcquirePrepared(morsel.schema());
      morsel.SliceInto(offset, count, &piece);
      SKYRISE_RETURN_IF_ERROR(im.WalkFrom(0, std::move(piece)));
    }
    im.pool->Release(std::move(morsel));
    return Status::OK();
  }
  return im.WalkFrom(0, std::move(morsel));
}

Result<std::vector<FragmentOutput>> FragmentPipeline::Finish() {
  Impl& im = *impl_;
  if (!im.init.ok()) return im.init;
  if (im.pending.has_value()) {
    im.memory->Release(im.pending_bytes);
    im.pending_bytes = 0;
    Chunk whole = std::move(*im.pending);
    im.pending.reset();
    SKYRISE_RETURN_IF_ERROR(im.WalkFrom(0, std::move(whole)));
  } else if (im.batches == 0) {
    // Zero-morsel stream: run the chain once over an empty batch so schema
    // propagation and breaker flushes match the materialized path.
    SKYRISE_RETURN_IF_ERROR(im.WalkFrom(
        0, Chunk::Empty(im.stream_schema.value_or(data::Schema()))));
  }
  for (size_t i = 0; i < im.ops.size(); ++i) {
    Result<std::optional<Chunk>> flushed = im.ops[i]->Flush();
    im.SyncState(i);
    if (!flushed.ok()) return flushed.status();
    if (flushed->has_value()) {
      SKYRISE_RETURN_IF_ERROR(im.WalkFrom(i + 1, std::move(**flushed)));
    }
  }
  im.memory->SetPooledRetained(im.pool->stats().retained_bytes);
  if (im.sink != nullptr) return im.sink->TakeOutputs();
  std::vector<FragmentOutput> outputs;
  Chunk result = im.tail.has_value()
                     ? std::move(*im.tail)
                     : Chunk::Empty(im.stream_schema.value_or(data::Schema()));
  outputs.push_back(FragmentOutput{-1, std::move(result)});
  return outputs;
}

int64_t FragmentPipeline::batches() const { return impl_->batches; }

Result<std::vector<FragmentOutput>> ExecuteFragment(
    const PipelineSpec& pipeline, data::Chunk&& stream,
    std::vector<data::Chunk> builds, CostAccumulator* cost) {
  FragmentPipeline executor(pipeline, std::move(builds), cost,
                            /*memory=*/nullptr, /*morsel_rows=*/-1);
  SKYRISE_RETURN_IF_ERROR(executor.Push(std::move(stream)));
  return executor.Finish();
}

Result<data::Chunk> ApplyFilterOp(const OperatorSpec& op, data::Chunk&& in,
                                  CostAccumulator* cost) {
  return ApplyFilter(op, std::move(in), cost);
}

Result<data::Schema> PipelineOutputSchema(
    const PipelineSpec& pipeline, const data::Schema& stream_schema,
    const std::vector<data::Schema>& build_schemas) {
  Schema current = stream_schema;
  for (const auto& op : pipeline.ops) {
    if (op.op == "project") {
      SKYRISE_ASSIGN_OR_RETURN(current, ProjectSchema(op, current));
    } else if (op.op == "hash_agg") {
      SKYRISE_ASSIGN_OR_RETURN(current, AggSchema(op, current));
    } else if (op.op == "hash_join") {
      const size_t build_index = static_cast<size_t>(op.build_input - 1);
      if (build_index >= build_schemas.size()) {
        return Status::InvalidArgument("missing join build schema");
      }
      SKYRISE_ASSIGN_OR_RETURN(
          current, JoinSchema(op, current, build_schemas[build_index]));
    } else if (op.op == "bb_sessionize") {
      current = SessionizeSchema();
    }
  }
  return current;
}

}  // namespace skyrise::engine
