#include "engine/coordinator.h"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <set>

#include "common/string_util.h"
#include "datagen/dataset.h"
#include "pricing/break_even.h"

namespace skyrise::engine {

namespace {

/// Latency of issuing one Invoke API call from inside a function. Makes the
/// two-level invocation procedure (Section 3.2) matter: fanning 1,000 calls
/// from one coordinator serializes ~2 s of dispatch, while two levels of 32
/// dispatch in ~130 ms.
constexpr SimDuration kInvokeDispatchLatency = Millis(2);

class CoordinatorTask : public std::enable_shared_from_this<CoordinatorTask> {
 public:
  CoordinatorTask(EngineContext* ec,
                  std::shared_ptr<faas::FunctionContext> fctx)
      : ec_(ec), fctx_(std::move(fctx)) {}

  void Run() {
    start_ = Now();
    tracer_ = fctx_->tracer();
    metrics_ = fctx_->metrics();
    const Json& payload = fctx_->payload();
    query_id_ = payload.GetString("query_id");
    partitions_per_worker_ = static_cast<int>(
        payload.GetInt("partitions_per_worker", ec_->partitions_per_worker));
    if (tracer_ != nullptr) {
      query_span_ = tracer_->Begin("coordinator", "query " + query_id_,
                                   "engine", fctx_->span());
      tracer_->SetArg(query_span_, "query_id", Json(query_id_));
      plan_span_ = tracer_->Begin("coordinator", "plan", "engine",
                                  query_span_);
    }
    auto plan = QueryPlan::FromJson(payload.Get("plan"));
    if (!plan.ok()) {
      Fail(plan.status());
      return;
    }
    plan_ = std::move(plan).ValueUnsafe();

    // Overload-robustness setup: resolve the query deadline (propagated as
    // an absolute "deadline_us", or derived from policy when invoked
    // without one), mint the per-query retry-token pool, and publish both
    // on the context for the workers this query is about to launch.
    deadline_ = Deadline::At(payload.GetInt("deadline_us", 0));
    if (!deadline_.bounded() && ec_->query_deadline > 0) {
      deadline_ = Deadline::After(Now(), ec_->query_deadline);
    }
    if (ec_->retry_budget_tokens > 0) {
      RetryBudget::Options budget_options;
      budget_options.initial_tokens = ec_->retry_budget_tokens;
      budget_options.refund_per_success = ec_->retry_budget_refund;
      budget_ = std::make_unique<RetryBudget>(budget_options);
    }
    ec_->query_grants[query_id_] =
        EngineContext::QueryGrants{budget_.get(), deadline_};
    storage_observer_ = InstallBreakerObserver(ec_->storage_breaker);
    invoke_observer_ = InstallBreakerObserver(ec_->invoke_breaker);
    if (deadline_.bounded()) {
      // Fires one tick before the platform's clamped execution timeout
      // would kill this coordinator, so the query fails typed with spans
      // closed instead of being torn down mid-flight.
      const SimDuration lead =
          std::max<SimDuration>(0, deadline_.Remaining(Now()) - 1);
      auto self = shared_from_this();
      deadline_event_ =
          ec_->env->Schedule(lead, [self] { self->OnDeadline(); });
    }

    client_ = std::make_unique<storage::RetryClient>(
        ec_->env, ec_->table_store, ec_->retry, 0x7777);
    storage_ctx_.nic = fctx_->nic();
    storage_ctx_.fabric = fctx_->fabric();
    storage_ctx_.meter = ec_->meter;
    storage_ctx_.tracer = tracer_;
    storage_ctx_.span = plan_span_;
    storage_ctx_.metrics = metrics_;
    storage_ctx_.deadline = deadline_;
    storage_ctx_.retry_budget = budget_.get();
    storage_ctx_.breaker = ec_->storage_breaker;

    // Collect referenced tables.
    for (const auto& pipeline : plan_.pipelines) {
      for (const auto& input : pipeline.inputs) {
        if (input.type == InputSpec::Type::kTable) {
          tables_.insert(input.table);
        }
      }
    }
    FetchNextManifest(tables_.begin());
  }

 private:
  SimTime Now() const { return ec_->env->now(); }

  void Fail(Status status) {
    if (done_) return;
    done_ = true;
    Cleanup();
    if (tracer_ != nullptr) {
      tracer_->EndWith(plan_span_, "error");
      tracer_->EndWith(query_span_, "error");
    }
    fctx_->FinishError(std::move(status));
  }

  /// Emits breaker state transitions as obs instants/counters for the
  /// duration of this query (removed again in Cleanup). Each in-flight
  /// query registers its own observer, parented to its own query span, so
  /// interleaved queries all see shared-breaker transitions. Returns the
  /// observer handle, or 0 when no breaker is wired.
  int InstallBreakerObserver(CircuitBreaker* breaker) {
    if (breaker == nullptr) return 0;
    obs::Tracer* tracer = tracer_;
    obs::MetricsRegistry* metrics = metrics_;
    const obs::SpanId parent = query_span_;
    const std::string name = breaker->options().name;
    // The handle is only known after AddObserver returns; publish it to the
    // callback through shared state so the oldest live observer can elect
    // itself sole counter emitter (instants stay per-query).
    auto handle_holder = std::make_shared<int>(0);
    const int handle = breaker->AddObserver(
        [tracer, metrics, parent, name, breaker, handle_holder](
            CircuitBreaker::State from, CircuitBreaker::State to, SimTime) {
          if (tracer != nullptr) {
            tracer->Instant("breaker",
                            name + " " + CircuitBreaker::StateName(from) +
                                " -> " + CircuitBreaker::StateName(to),
                            "engine", parent);
          }
          if (metrics != nullptr &&
              breaker->IsOldestObserver(*handle_holder)) {
            metrics->Add("breaker." + name + "." +
                         CircuitBreaker::StateName(to));
          }
        });
    *handle_holder = handle;
    return handle;
  }

  /// Tears down per-query robustness state exactly once: the deadline
  /// timer, this query's published grants (workers must not read a dead
  /// query's pool), this query's breaker observers (other in-flight
  /// queries keep theirs), and — on abnormal exits — the still open stage
  /// span and its speculation timer.
  void Cleanup() {
    ec_->env->Cancel(deadline_event_);
    deadline_event_ = sim::kInvalidEventId;
    ec_->query_grants.erase(query_id_);
    if (ec_->storage_breaker != nullptr && storage_observer_ != 0) {
      ec_->storage_breaker->RemoveObserver(storage_observer_);
      storage_observer_ = 0;
    }
    if (ec_->invoke_breaker != nullptr && invoke_observer_ != 0) {
      ec_->invoke_breaker->RemoveObserver(invoke_observer_);
      invoke_observer_ = 0;
    }
    if (current_stage_ != nullptr && !current_stage_->failed) {
      ec_->env->Cancel(current_stage_->spec_timer);
      if (tracer_ != nullptr) {
        tracer_->EndWith(current_stage_->span, "error");
      }
      current_stage_->failed = true;
    }
    current_stage_ = nullptr;
  }

  /// The query's end-to-end deadline expired with work still in flight:
  /// fail typed (the late workers' attempt spans close as their outcomes
  /// drain; the platforms kill their executions at the same clamped time).
  void OnDeadline() {
    if (done_) return;
    if (tracer_ != nullptr) {
      tracer_->Instant("coordinator", "query.deadline_exceeded", "engine",
                       query_span_);
    }
    if (metrics_ != nullptr) metrics_->Add("coord.deadline_failures");
    Fail(Status::DeadlineExceeded(
        "query " + query_id_ + " exceeded its deadline after " +
        std::to_string(static_cast<long long>(ToMillis(Now() - start_))) +
        " ms"));
  }

  void FetchNextManifest(std::set<std::string>::iterator it) {
    if (it == tables_.end()) {
      ScheduleStages();
      return;
    }
    const std::string table = *it;
    auto self = shared_from_this();
    client_->Get(datagen::DatasetManifestKey(table), storage_ctx_,
                 [self, it, table](Result<storage::Blob> result) mutable {
                   if (!result.ok()) {
                     self->Fail(result.status());
                     return;
                   }
                   // Synthetic-manifest datasets are not supported: the
                   // manifest object is always real JSON.
                   auto json = Json::Parse(result->data());
                   if (!json.ok()) {
                     self->Fail(json.status());
                     return;
                   }
                   auto info = datagen::DatasetInfo::FromJson(*json);
                   if (!info.ok()) {
                     self->Fail(info.status());
                     return;
                   }
                   self->manifests_[table] = std::move(info).ValueUnsafe();
                   self->FetchNextManifest(++it);
                 });
  }

  // --- Distributed plan compilation and stage-wise scheduling. ---

  void ScheduleStages() {
    // Topological order over pipeline dependencies.
    std::set<int> done;
    std::vector<const PipelineSpec*> order;
    while (order.size() < plan_.pipelines.size()) {
      bool progress = false;
      for (const auto& pipeline : plan_.pipelines) {
        if (done.count(pipeline.id) > 0) continue;
        bool ready = true;
        for (int dep : pipeline.depends_on) {
          if (done.count(dep) == 0) ready = false;
        }
        if (ready) {
          order.push_back(&pipeline);
          done.insert(pipeline.id);
          progress = true;
        }
      }
      if (!progress) {
        Fail(Status::InvalidArgument("cyclic pipeline dependencies"));
        return;
      }
    }
    stages_ = std::move(order);
    if (tracer_ != nullptr) tracer_->End(plan_span_);
    RunStage(0);
  }

  int FragmentsFor(const PipelineSpec& pipeline) {
    const InputSpec& stream = pipeline.inputs[0];
    if (stream.type == InputSpec::Type::kShuffle) {
      // One fragment per upstream shuffle partition.
      const PipelineSpec* upstream =
          plan_.FindPipeline(stream.upstream_pipeline);
      SKYRISE_CHECK(upstream != nullptr);
      for (const auto& op : upstream->ops) {
        if (op.op == "partition_write") return op.partition_count;
      }
      return 1;
    }
    const auto it = manifests_.find(stream.table);
    SKYRISE_CHECK(it != manifests_.end());
    const int files = static_cast<int>(it->second.partitions.size());
    int ppw = partitions_per_worker_;
    if (ppw <= 0) ppw = MemoryAwarePartitionsPerWorker(it->second);
    // Degraded scan stages pack more partitions per worker: less invoke and
    // retry pressure at the cost of per-stage latency. Shuffle-consuming
    // stages are pinned to the upstream partition count and cannot shrink.
    if (degrade_) ppw *= std::max(1, ec_->degrade_fanout_factor);
    return std::max(1, (files + ppw - 1) / ppw);
  }

  /// Memory-aware scan sizing: assign table partitions per worker so the
  /// streamed input stays within a quarter of the deployed Lambda allocation.
  /// Morsel execution keeps only one decoded row group plus breaker state
  /// resident, but build-side broadcasts and output buffers still scale with
  /// the assignment, so the budget is conservative. Workers report their
  /// actual peak back, closing the loop via recommended_memory_mib.
  int MemoryAwarePartitionsPerWorker(const datagen::DatasetInfo& info) {
    const int64_t budget =
        static_cast<int64_t>(ec_->worker_memory_mib) * kMiB / 4;
    int64_t total_bytes = 0;
    for (const auto& p : info.partitions) total_bytes += p.size_bytes;
    const int files = static_cast<int>(info.partitions.size());
    if (files == 0 || total_bytes == 0) return 1;
    const int64_t avg = std::max<int64_t>(1, total_bytes / files);
    return static_cast<int>(
        std::clamp<int64_t>(budget / avg, 1, std::max(1, files)));
  }

  Json BuildWorkerPayload(const PipelineSpec& pipeline, int fragment,
                          int fragments) {
    std::vector<WorkerInputAssignment> assignments;
    for (size_t i = 0; i < pipeline.inputs.size(); ++i) {
      const InputSpec& input = pipeline.inputs[i];
      WorkerInputAssignment assignment;
      if (input.type == InputSpec::Type::kTable) {
        const auto& parts = manifests_[input.table].partitions;
        const int n = static_cast<int>(parts.size());
        if (i == 0) {
          // Streamed input: contiguous slice of the partition list.
          const int begin = n * fragment / fragments;
          const int end = n * (fragment + 1) / fragments;
          for (int p = begin; p < end; ++p) {
            assignment.files.push_back(
                TableFileAssignment{parts[static_cast<size_t>(p)].key,
                                    parts[static_cast<size_t>(p)].size_bytes});
          }
        } else {
          // Build input: broadcast all files to every fragment.
          for (const auto& p : parts) {
            assignment.files.push_back(
                TableFileAssignment{p.key, p.size_bytes});
          }
        }
      } else {
        assignment.upstream_fragments =
            fragments_of_.at(input.upstream_pipeline);
      }
      assignments.push_back(std::move(assignment));
    }
    Json payload = WorkerPayload(query_id_, pipeline, fragment, assignments);
    payload["barrier_participants"] = fragments;
    // Workers inherit the query deadline; the platform clamps their
    // execution timeout against it and their storage clients stop retrying
    // past it.
    if (deadline_.bounded()) payload["deadline_us"] = deadline_.at_or_zero();
    return payload;
  }

  // Per-fragment attempt bookkeeping. A fragment may have several attempts
  // in flight at once (retry racing a straggler, or a speculative copy);
  // the first successful completion wins, later outcomes are ignored.
  // Worker execution is deterministic and shuffle writes replace whole
  // objects under attempt-independent keys, so duplicates are idempotent.
  struct FragmentState {
    Json payload;
    int attempts = 0;     ///< Invocations launched (first + retry + spec).
    int outstanding = 0;  ///< Invocations currently in flight.
    bool completed = false;
    SimTime last_dispatch = 0;
    std::string last_error;
  };

  struct StageState {
    size_t index = 0;
    const PipelineSpec* pipeline = nullptr;
    int fragments = 0;
    SimTime start = 0;
    std::vector<FragmentState> frags;
    std::deque<int> pending;  ///< Fragment indices awaiting first dispatch.
    int running = 0;          ///< In-flight invocations across fragments.
    int completed = 0;        ///< Completed fragments.
    int peak_running = 0;
    bool failed = false;
    double worker_ms = 0;
    int64_t requests = 0;
    int64_t bytes_read = 0;
    int64_t bytes_written = 0;
    int cold_starts = 0;
    int retries = 0;        ///< Re-invocations after a failed attempt.
    int speculative = 0;    ///< Straggler duplicates launched.
    int worker_errors = 0;  ///< Failed attempts observed (all causes).
    int64_t peak_memory = 0;  ///< Max resident bytes over the stage's workers.
    int64_t batches = 0;      ///< Morsels processed across the stage.
    bool degraded = false;  ///< Scheduled with degraded (reduced) fan-out.
    sim::EventId spec_timer = sim::kInvalidEventId;
    obs::SpanId span = obs::kNoSpan;  ///< "stage p<id>" span.
  };

  void RunStage(size_t stage_index) {
    if (stage_index >= stages_.size()) {
      Finish();
      return;
    }
    const PipelineSpec& pipeline = *stages_[stage_index];
    // Invoke-path breaker: with the worker-invocation service open,
    // launching a stage's fan-out would only pile on load. Shed typed with
    // a retry-after hint instead of hanging the query.
    if (ec_->invoke_breaker != nullptr &&
        !ec_->invoke_breaker->Allow(Now())) {
      if (metrics_ != nullptr) metrics_->Add("coord.breaker_sheds");
      Fail(Status::ResourceExhausted(StrFormat(
          "invoke circuit open at stage p%d; retry after %lld us",
          pipeline.id,
          static_cast<long long>(ec_->invoke_breaker->RetryAfter(Now())))));
      return;
    }
    // Graceful degradation: a drained retry pool means the fault storm is
    // winning — trade stage latency for pressure before the pool empties.
    degrade_ = budget_ != nullptr &&
               budget_->tokens() < ec_->degrade_budget_fraction *
                                       budget_->options().initial_tokens;
    const int fragments = FragmentsFor(pipeline);
    fragments_of_[pipeline.id] = fragments;
    auto state = std::make_shared<StageState>();
    state->index = stage_index;
    state->pipeline = &pipeline;
    state->fragments = fragments;
    state->start = Now();
    state->degraded = degrade_;
    if (degrade_) {
      ++degraded_stages_;
      if (metrics_ != nullptr) metrics_->Add("coord.degraded_stages");
      if (tracer_ != nullptr) {
        tracer_->Instant("coordinator",
                         StrFormat("stage p%d degraded fan-out", pipeline.id),
                         "engine", query_span_);
      }
    }
    current_stage_ = state;
    if (tracer_ != nullptr) {
      state->span = tracer_->Begin(
          "coordinator", StrFormat("stage p%d", pipeline.id), "engine",
          query_span_);
    }
    state->frags.resize(static_cast<size_t>(fragments));
    for (int f = 0; f < fragments; ++f) {
      state->frags[static_cast<size_t>(f)].payload =
          BuildWorkerPayload(pipeline, f, fragments);
      state->pending.push_back(f);
    }
    ScheduleSpeculationSweep(state);
    if (fragments >= ec_->two_level_threshold) {
      DispatchTwoLevel(state);
    } else {
      DispatchDirect(state);
    }
  }

  /// Attempt-launch bookkeeping shared by direct, two-level, retry, and
  /// speculative dispatch paths.
  void NoteLaunch(const std::shared_ptr<StageState>& state, int f) {
    FragmentState& frag = state->frags[static_cast<size_t>(f)];
    ++frag.attempts;
    ++frag.outstanding;
    frag.last_dispatch = Now();
    ++state->running;
    state->peak_running = std::max(state->peak_running, state->running);
  }

  /// Opens an attempt span for fragment `f` (track "fragments") and stamps
  /// its id into `payload` as "trace_parent", so the platform's invoke span
  /// — and the worker's phase spans — nest under this attempt.
  obs::SpanId BeginAttempt(const std::shared_ptr<StageState>& state, int f,
                           Json* payload) {
    if (tracer_ == nullptr) return obs::kNoSpan;
    const obs::SpanId span = tracer_->Begin(
        "fragments",
        StrFormat("f%d a%d", f, state->frags[static_cast<size_t>(f)].attempts),
        "engine", state->span);
    (*payload)["trace_parent"] = span;
    return span;
  }

  /// Launches one attempt of fragment `f` directly on the worker platform.
  void InvokeFragment(std::shared_ptr<StageState> state, int f) {
    NoteLaunch(state, f);
    auto self = shared_from_this();
    Json payload = state->frags[static_cast<size_t>(f)].payload;
    const obs::SpanId attempt_span = BeginAttempt(state, f, &payload);
    // `attempt_span` is a tracing id, not retry state, and the invocation is
    // bounded end to end by the propagated "deadline_us" in the payload (the
    // platform clamps execution lifetime to it — see faas/ec2_fleet.cc /
    // lambda_platform.cc). skyrise-check: allow(unbounded-retry-wrapper)
    ec_->worker_platform->Invoke(
        kWorkerFunction, std::move(payload),
        [self, state, f, attempt_span](Result<Json> r) {
          self->OnWorkerOutcome(state, f, attempt_span, std::move(r));
        });
  }

  void DispatchDirect(std::shared_ptr<StageState> state) {
    auto self = shared_from_this();
    // Serialized dispatch: one Invoke API call per kInvokeDispatchLatency,
    // capped by the scheduling wave width. Retries and speculative copies
    // bypass the wave (they go out as soon as they are due).
    if (state->failed) return;
    if (state->pending.empty()) return;
    if (state->running >= ec_->max_parallelism) return;  // Wave is full.
    const int f = state->pending.front();
    state->pending.pop_front();
    InvokeFragment(state, f);
    ec_->env->Schedule(kInvokeDispatchLatency,
                       [self, state] { self->DispatchDirect(state); });
  }

  void DispatchTwoLevel(std::shared_ptr<StageState> state) {
    // Group fragments into invoker batches and dispatch those serially; each
    // invoker fans out its batch in parallel with the others. Responses are
    // routed back to fragments by the "fragment" field, so individual worker
    // failures inside a batch retry per-fragment, not per-batch.
    auto self = shared_from_this();
    std::vector<std::vector<int>> batch_fragments;
    while (!state->pending.empty()) {
      std::vector<int> members;
      for (int i = 0; i < ec_->invoker_fanout && !state->pending.empty();
           ++i) {
        const int f = state->pending.front();
        state->pending.pop_front();
        members.push_back(f);
      }
      batch_fragments.push_back(std::move(members));
    }
    auto member_list = std::make_shared<std::vector<std::vector<int>>>(
        std::move(batch_fragments));
    auto issue = std::make_shared<std::function<void(size_t)>>();
    *issue = [self, state, member_list, issue](size_t i) {
      if (i >= member_list->size() || state->failed) return;
      const std::vector<int>& members = (*member_list)[i];
      // The batch payload is assembled at issue time so each member carries
      // a fresh attempt span as its trace parent; the invoker's own invoke
      // span nests under the stage.
      Json batch = Json::Object();
      Json payloads = Json::Array();
      auto attempt_spans = std::make_shared<std::map<int, obs::SpanId>>();
      for (int f : members) {
        self->NoteLaunch(state, f);
        Json payload = state->frags[static_cast<size_t>(f)].payload;
        (*attempt_spans)[f] = self->BeginAttempt(state, f, &payload);
        payloads.Append(std::move(payload));
      }
      batch["payloads"] = std::move(payloads);
      if (self->deadline_.bounded()) {
        batch["deadline_us"] = self->deadline_.at_or_zero();
      }
      if (self->tracer_ != nullptr) batch["trace_parent"] = state->span;
      self->ec_->worker_platform->Invoke(
          kInvokerFunction, std::move(batch),
          [self, state, members, attempt_spans](Result<Json> r) {
            if (!r.ok()) {
              // The invoker itself died (crash/timeout): every fragment of
              // the batch failed; each retries independently.
              for (int f : members) {
                self->OnWorkerOutcome(state, f, (*attempt_spans)[f],
                                      r.status());
              }
              return;
            }
            // The invoker returns the collected worker responses (including
            // per-fragment error entries), routed by fragment index.
            for (const auto& response : r->Get("responses").AsArray()) {
              const int f = static_cast<int>(response.GetInt("fragment", -1));
              if (f < 0 || f >= state->fragments) continue;
              self->OnWorkerOutcome(state, f, (*attempt_spans)[f],
                                    Json(response));
            }
          });
      self->ec_->env->Schedule(kInvokeDispatchLatency,
                               [issue, i] { (*issue)(i + 1); });
    };
    (*issue)(0);
  }

  void OnWorkerOutcome(std::shared_ptr<StageState> state, int f,
                       obs::SpanId attempt_span, Result<Json> result) {
    FragmentState& frag = state->frags[static_cast<size_t>(f)];
    --frag.outstanding;
    --state->running;
    const bool ok = result.ok() && !result->Has("error");
    // The attempt span closes whenever its callback fires, even for late
    // duplicates or outcomes arriving after the stage already failed.
    if (tracer_ != nullptr) {
      tracer_->EndWith(attempt_span, ok ? "ok" : "error");
    }
    // Worker-attempt outcomes are the invoke path's health signal; feed the
    // breaker even for late/post-failure arrivals (service-level state).
    if (ec_->invoke_breaker != nullptr) {
      if (ok) {
        ec_->invoke_breaker->RecordSuccess(Now());
      } else {
        ec_->invoke_breaker->RecordFailure(Now());
      }
    }
    if (state->failed || done_) return;
    if (ok) {
      if (!frag.completed) {
        frag.completed = true;
        ++state->completed;
        const Json& response = *result;
        state->worker_ms += response.GetDouble("duration_ms");
        state->requests += response.GetInt("requests");
        state->bytes_read += response.GetInt("bytes_read");
        state->bytes_written += response.GetInt("bytes_written");
        state->cold_starts += response.GetBool("cold_start") ? 1 : 0;
        state->peak_memory = std::max(
            state->peak_memory, response.GetInt("peak_memory_bytes", 0));
        state->batches += response.GetInt("batches", 0);
        if (state->completed == state->fragments) {
          FinishStage(state);
          return;
        }
      }
      // else: duplicate completion of a retried/speculated fragment; the
      // first attempt's stats already counted.
    } else {
      ++state->worker_errors;
      frag.last_error = result.ok() ? result->GetString("error")
                                    : result.status().ToString();
      if (!frag.completed && frag.outstanding == 0) {
        // No other attempt can still save this fragment: retry or give up.
        if (frag.attempts >= ec_->worker_max_attempts) {
          state->failed = true;
          ec_->env->Cancel(state->spec_timer);
          if (tracer_ != nullptr) tracer_->EndWith(state->span, "error");
          Fail(Status::Internal(
              "pipeline " + std::to_string(state->pipeline->id) +
              " fragment " + std::to_string(f) + " failed after " +
              std::to_string(frag.attempts) +
              " attempts: " + frag.last_error));
          return;
        }
        // Every re-invocation draws from the query's shared retry pool; an
        // empty pool means retries across all layers have hit their cap, so
        // shed typed rather than amplify the fault storm.
        if (budget_ != nullptr && !budget_->TryAcquire()) {
          state->failed = true;
          ec_->env->Cancel(state->spec_timer);
          if (tracer_ != nullptr) tracer_->EndWith(state->span, "error");
          if (metrics_ != nullptr) metrics_->Add("coord.budget_sheds");
          Fail(Status::ResourceExhausted(
              "retry budget exhausted; pipeline " +
              std::to_string(state->pipeline->id) + " fragment " +
              std::to_string(f) + " failed after " +
              std::to_string(frag.attempts) +
              " attempts: " + frag.last_error));
          return;
        }
        ++state->retries;
        auto self = shared_from_this();
        const SimDuration backoff =
            ec_->worker_retry_backoff * frag.attempts;
        ec_->env->Schedule(backoff, [self, state, f] {
          if (state->failed || self->done_) return;
          if (state->frags[static_cast<size_t>(f)].completed) return;
          // The breaker may have opened while this retry waited out its
          // backoff; re-check at dispatch time.
          CircuitBreaker* breaker = self->ec_->invoke_breaker;
          if (breaker != nullptr && !breaker->Allow(self->Now())) {
            state->failed = true;
            self->ec_->env->Cancel(state->spec_timer);
            if (self->tracer_ != nullptr) {
              self->tracer_->EndWith(state->span, "error");
            }
            if (self->metrics_ != nullptr) {
              self->metrics_->Add("coord.breaker_sheds");
            }
            self->Fail(Status::ResourceExhausted(StrFormat(
                "invoke circuit open on retry of fragment %d; retry after "
                "%lld us",
                f, static_cast<long long>(breaker->RetryAfter(self->Now())))));
            return;
          }
          self->InvokeFragment(state, f);
        });
      }
      // else: a concurrent attempt (speculative copy or racing retry) is
      // still in flight; its outcome decides what happens next.
    }
    // A slot freed up: continue dispatching the wave.
    if (state->fragments < ec_->two_level_threshold) DispatchDirect(state);
  }

  // --- Straggler speculation. ---

  void ScheduleSpeculationSweep(std::shared_ptr<StageState> state) {
    if (ec_->speculation_after <= 0) return;
    auto self = shared_from_this();
    state->spec_timer = ec_->env->Schedule(
        ec_->speculation_interval,
        [self, state] { self->SpeculationSweep(state); });
  }

  void SpeculationSweep(std::shared_ptr<StageState> state) {
    if (state->failed || done_ || state->completed == state->fragments) {
      return;
    }
    for (int f = 0; f < state->fragments; ++f) {
      FragmentState& frag = state->frags[static_cast<size_t>(f)];
      // Duplicate a straggler only when exactly one attempt is in flight
      // (never pile speculative copies on top of each other) and the
      // attempt budget allows a wasted duplicate.
      if (frag.completed || frag.outstanding != 1) continue;
      if (frag.attempts >= ec_->worker_max_attempts) continue;
      if (Now() - frag.last_dispatch < ec_->speculation_after) continue;
      // Speculative duplicates are discretionary retries: they draw from
      // the same pool, and an empty pool just skips speculation (the
      // original attempt is still in flight — nothing to fail).
      if (budget_ != nullptr && !budget_->TryAcquire()) break;
      ++state->speculative;
      InvokeFragment(state, f);
    }
    ScheduleSpeculationSweep(state);
  }

  void FinishStage(const std::shared_ptr<StageState>& state) {
    ec_->env->Cancel(state->spec_timer);
    Json summary = Json::Object();
    summary["pipeline"] = state->pipeline->id;
    summary["fragments"] = state->fragments;
    summary["runtime_ms"] = ToMillis(Now() - state->start);
    summary["worker_ms"] = state->worker_ms;
    summary["peak_workers"] = state->peak_running;
    summary["requests"] = state->requests;
    summary["bytes_read"] = state->bytes_read;
    summary["bytes_written"] = state->bytes_written;
    summary["cold_starts"] = state->cold_starts;
    summary["retries"] = state->retries;
    summary["speculative"] = state->speculative;
    summary["worker_errors"] = state->worker_errors;
    summary["peak_memory_bytes"] = state->peak_memory;
    summary["batches"] = state->batches;
    summary["degraded"] = state->degraded;
    if (tracer_ != nullptr) {
      tracer_->SetArg(state->span, "fragments", Json(state->fragments));
      tracer_->SetArg(state->span, "retries", Json(state->retries));
      tracer_->SetArg(state->span, "speculative", Json(state->speculative));
      tracer_->SetArg(state->span, "worker_errors",
                      Json(state->worker_errors));
      tracer_->SetArg(state->span, "batches", Json(state->batches));
      tracer_->SetArg(state->span, "peak_memory_bytes",
                      Json(state->peak_memory));
      tracer_->End(state->span);
    }
    if (metrics_ != nullptr) {
      metrics_->Add("coord.stages");
      metrics_->Add("coord.fragments", state->fragments);
      metrics_->Add("coord.retries", state->retries);
      metrics_->Add("coord.speculative", state->speculative);
      metrics_->Record("coord.stage_ms", ToMillis(Now() - state->start));
    }
    stage_summaries_.push_back(std::move(summary));
    cumulated_worker_ms_ += state->worker_ms;
    total_requests_ += state->requests;
    total_workers_ += state->fragments;
    peak_workers_ = std::max(peak_workers_, state->peak_running);
    worker_retries_ += state->retries;
    speculative_launches_ += state->speculative;
    worker_errors_ += state->worker_errors;
    peak_worker_memory_ = std::max(peak_worker_memory_, state->peak_memory);
    total_batches_ += state->batches;
    // The stage's span is closed and its timer cancelled; detach it before
    // Cleanup could mistake it for an in-flight stage.
    current_stage_ = nullptr;
    RunStage(state->index + 1);
  }

  void Finish() {
    if (done_) return;
    done_ = true;
    Cleanup();
    Json response = Json::Object();
    response["query"] = plan_.query_name;
    response["query_id"] = query_id_;
    response["result_key"] = ResultKey(query_id_);
    response["runtime_ms"] = ToMillis(Now() - start_);
    response["cumulated_worker_ms"] = cumulated_worker_ms_;
    response["total_workers"] = total_workers_;
    response["peak_workers"] = peak_workers_;
    response["requests"] = total_requests_;
    response["worker_retries"] = worker_retries_;
    response["speculative_launches"] = speculative_launches_;
    response["worker_errors"] = worker_errors_;
    response["peak_worker_memory_bytes"] = peak_worker_memory_;
    response["total_batches"] = total_batches_;
    response["degraded_stages"] = degraded_stages_;
    if (budget_ != nullptr) {
      Json budget = Json::Object();
      budget["initial_tokens"] = budget_->options().initial_tokens;
      budget["remaining_tokens"] = budget_->tokens();
      budget["acquired"] = budget_->stats().acquired;
      budget["denied"] = budget_->stats().denied;
      budget["refunded"] = budget_->stats().refunded;
      response["retry_budget"] = std::move(budget);
    }
    // Memory-config advice: the smallest Lambda size whose allocation covers
    // the observed peak resident bytes (Section 5 economics — memory is the
    // Lambda price dimension, so the peak directly sets the bill).
    response["recommended_memory_mib"] =
        pricing::RecommendLambdaMemoryMib(peak_worker_memory_);
    Json stages = Json::Array();
    for (auto& s : stage_summaries_) stages.Append(std::move(s));
    response["stages"] = std::move(stages);
    if (tracer_ != nullptr) tracer_->End(query_span_);
    fctx_->Finish(std::move(response));
  }

  EngineContext* ec_;
  // The sandbox this coordinator runs in; mutations go through the sandbox
  // lifecycle API crossings.
  // skyrise-check: allow(domain-escape) — sandbox handle, crossings only.
  std::shared_ptr<faas::FunctionContext> fctx_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::SpanId query_span_ = obs::kNoSpan;
  obs::SpanId plan_span_ = obs::kNoSpan;
  // Client stub for the storage crossings (RetryClient::GetRange/Put).
  // skyrise-check: allow(domain-escape) — client stub for a crossing API.
  std::unique_ptr<storage::RetryClient> client_;
  storage::ClientContext storage_ctx_;
  QueryPlan plan_;
  std::string query_id_;
  int partitions_per_worker_ = 1;
  std::set<std::string> tables_;
  std::map<std::string, datagen::DatasetInfo> manifests_;
  std::vector<const PipelineSpec*> stages_;
  std::map<int, int> fragments_of_;
  std::vector<Json> stage_summaries_;
  double cumulated_worker_ms_ = 0;
  int64_t total_requests_ = 0;
  int total_workers_ = 0;
  int peak_workers_ = 0;
  int worker_retries_ = 0;
  int speculative_launches_ = 0;
  int worker_errors_ = 0;
  int64_t peak_worker_memory_ = 0;
  int64_t total_batches_ = 0;
  SimTime start_ = 0;
  bool done_ = false;

  // Overload-robustness state (see DESIGN.md "Overload & degradation
  // model"). `deadline_` / `budget_` are minted in Run() and published on
  // the context for this query's workers; `current_stage_` tracks the one
  // in-flight stage so abnormal exits close its span.
  Deadline deadline_;
  std::unique_ptr<RetryBudget> budget_;
  sim::EventId deadline_event_ = sim::kInvalidEventId;
  int storage_observer_ = 0;  ///< Breaker observer handles (0 = none).
  int invoke_observer_ = 0;
  std::shared_ptr<StageState> current_stage_;
  int degraded_stages_ = 0;
  bool degrade_ = false;
};

class InvokerTask : public std::enable_shared_from_this<InvokerTask> {
 public:
  InvokerTask(EngineContext* ec, std::shared_ptr<faas::FunctionContext> fctx)
      : ec_(ec), fctx_(std::move(fctx)) {}

  void Run() {
    const auto& payloads = fctx_->payload().Get("payloads").AsArray();
    total_ = static_cast<int>(payloads.size());
    if (total_ == 0) {
      Finish();
      return;
    }
    responses_.resize(static_cast<size_t>(total_));
    Issue(0);
  }

 private:
  void Issue(size_t i) {
    const auto& payloads = fctx_->payload().Get("payloads").AsArray();
    if (i >= payloads.size()) return;
    auto self = shared_from_this();
    const int fragment =
        static_cast<int>(payloads[i].GetInt("fragment", -1));
    ec_->worker_platform->Invoke(
        kWorkerFunction, payloads[i], [self, i, fragment](Result<Json> r) {
          if (r.ok()) {
            self->responses_[i] = *r;
          } else {
            // A worker died under this invoker: report it per-fragment so
            // the coordinator retries just that fragment, not the batch.
            Json entry = Json::Object();
            entry["fragment"] = fragment;
            entry["error"] = r.status().ToString();
            self->responses_[i] = std::move(entry);
          }
          if (++self->completed_ == self->total_) self->Finish();
        });
    ec_->env->Schedule(kInvokeDispatchLatency,
                       [self, i] { self->Issue(i + 1); });
  }

  void Finish() {
    Json response = Json::Object();
    Json list = Json::Array();
    for (auto& r : responses_) list.Append(std::move(r));
    response["responses"] = std::move(list);
    fctx_->Finish(std::move(response));
  }

  EngineContext* ec_;
  // The sandbox this invoker runs in; crossings only.
  // skyrise-check: allow(domain-escape) — sandbox handle, crossings only.
  std::shared_ptr<faas::FunctionContext> fctx_;
  std::vector<Json> responses_;
  int total_ = 0;
  int completed_ = 0;
};

}  // namespace

faas::FunctionHandler MakeCoordinatorHandler(EngineContext* context) {
  return [context](const std::shared_ptr<faas::FunctionContext>& fctx) {
    std::make_shared<CoordinatorTask>(context, fctx)->Run();
  };
}

faas::FunctionHandler MakeInvokerHandler(EngineContext* context) {
  return [context](const std::shared_ptr<faas::FunctionContext>& fctx) {
    std::make_shared<InvokerTask>(context, fctx)->Run();
  };
}

Json CoordinatorPayload(const QueryPlan& plan, const std::string& query_id,
                        int partitions_per_worker) {
  Json payload = Json::Object();
  payload["plan"] = plan.ToJson();
  payload["query_id"] = query_id;
  if (partitions_per_worker > 0) {
    payload["partitions_per_worker"] = partitions_per_worker;
  }
  return payload;
}

}  // namespace skyrise::engine
