#include "engine/reference.h"

#include <algorithm>
#include <map>

#include "data/types.h"

namespace skyrise::engine {

namespace {
int32_t DateNum(int y, int m, int d) { return data::DaysSinceEpoch(y, m, d); }
}  // namespace

Q6Reference ReferenceQ6(const data::Chunk& lineitem) {
  const auto& shipdate = lineitem.column("l_shipdate").ints();
  const auto& discount = lineitem.column("l_discount").doubles();
  const auto& quantity = lineitem.column("l_quantity").doubles();
  const auto& price = lineitem.column("l_extendedprice").doubles();
  const int32_t lo = DateNum(1994, 1, 1);
  const int32_t hi = DateNum(1995, 1, 1);
  Q6Reference out;
  for (size_t i = 0; i < shipdate.size(); ++i) {
    if (shipdate[i] >= lo && shipdate[i] < hi && discount[i] >= 0.05 &&
        discount[i] <= 0.07 && quantity[i] < 24) {
      out.revenue += price[i] * discount[i];
    }
  }
  return out;
}

std::vector<Q1Group> ReferenceQ1(const data::Chunk& lineitem) {
  const auto& shipdate = lineitem.column("l_shipdate").ints();
  const auto& returnflag = lineitem.column("l_returnflag").strings();
  const auto& linestatus = lineitem.column("l_linestatus").strings();
  const auto& quantity = lineitem.column("l_quantity").doubles();
  const auto& price = lineitem.column("l_extendedprice").doubles();
  const auto& discount = lineitem.column("l_discount").doubles();
  const auto& tax = lineitem.column("l_tax").doubles();
  const int32_t cutoff = DateNum(1998, 9, 2);
  std::map<std::pair<std::string, std::string>, Q1Group> groups;
  double sum_disc = 0;
  (void)sum_disc;
  std::map<std::pair<std::string, std::string>, double> discs;
  for (size_t i = 0; i < shipdate.size(); ++i) {
    if (shipdate[i] > cutoff) continue;
    auto key = std::make_pair(returnflag[i], linestatus[i]);
    Q1Group& g = groups[key];
    g.returnflag = returnflag[i];
    g.linestatus = linestatus[i];
    g.sum_qty += quantity[i];
    g.sum_base_price += price[i];
    const double disc_price = price[i] * (1 - discount[i]);
    g.sum_disc_price += disc_price;
    g.sum_charge += disc_price * (1 + tax[i]);
    discs[key] += discount[i];
    g.count_order += 1;
  }
  std::vector<Q1Group> out;
  for (auto& [key, g] : groups) {
    g.avg_qty = g.sum_qty / static_cast<double>(g.count_order);
    g.avg_price = g.sum_base_price / static_cast<double>(g.count_order);
    g.avg_disc = discs[key] / static_cast<double>(g.count_order);
    out.push_back(g);
  }
  return out;  // std::map iterates sorted by (returnflag, linestatus).
}

std::vector<Q12Group> ReferenceQ12(const data::Chunk& lineitem,
                                   const data::Chunk& orders) {
  std::map<int64_t, std::string> priority_of;
  const auto& orderkey = orders.column("o_orderkey").ints();
  const auto& priority = orders.column("o_orderpriority").strings();
  for (size_t i = 0; i < orderkey.size(); ++i) {
    priority_of[orderkey[i]] = priority[i];
  }
  const auto& l_orderkey = lineitem.column("l_orderkey").ints();
  const auto& shipmode = lineitem.column("l_shipmode").strings();
  const auto& shipdate = lineitem.column("l_shipdate").ints();
  const auto& commitdate = lineitem.column("l_commitdate").ints();
  const auto& receiptdate = lineitem.column("l_receiptdate").ints();
  const int32_t lo = DateNum(1994, 1, 1);
  const int32_t hi = DateNum(1995, 1, 1);
  std::map<std::string, Q12Group> groups;
  for (size_t i = 0; i < l_orderkey.size(); ++i) {
    if (shipmode[i] != "MAIL" && shipmode[i] != "SHIP") continue;
    if (!(commitdate[i] < receiptdate[i])) continue;
    if (!(shipdate[i] < commitdate[i])) continue;
    if (receiptdate[i] < lo || receiptdate[i] >= hi) continue;
    auto it = priority_of.find(l_orderkey[i]);
    if (it == priority_of.end()) continue;
    Q12Group& g = groups[shipmode[i]];
    g.shipmode = shipmode[i];
    if (it->second == "1-URGENT" || it->second == "2-HIGH") {
      g.high_line_count += 1;
    } else {
      g.low_line_count += 1;
    }
  }
  std::vector<Q12Group> out;
  for (auto& [key, g] : groups) out.push_back(g);
  return out;
}

std::vector<BbQ3Row> ReferenceBbQ3(const data::Chunk& clickstreams,
                                   const data::Chunk& item,
                                   const QuerySuiteOptions& options) {
  std::map<int64_t, int64_t> category_of;
  {
    const auto& sk = item.column("i_item_sk").ints();
    const auto& category = item.column("i_category_id").ints();
    for (size_t i = 0; i < sk.size(); ++i) category_of[sk[i]] = category[i];
  }
  const auto& date = clickstreams.column("wcs_click_date").ints();
  const auto& user = clickstreams.column("wcs_user_sk").ints();
  const auto& item_sk = clickstreams.column("wcs_item_sk").ints();
  const auto& sale = clickstreams.column("wcs_sales_sk").ints();

  struct Click {
    int64_t date, item, sale;
    size_t row;
  };
  std::map<int64_t, std::vector<Click>> by_user;
  for (size_t i = 0; i < date.size(); ++i) {
    by_user[user[i]].push_back(Click{date[i], item_sk[i], sale[i], i});
  }
  std::map<int64_t, int64_t> views;
  for (auto& [u, clicks] : by_user) {
    std::stable_sort(clicks.begin(), clicks.end(),
                     [](const Click& a, const Click& b) {
                       if (a.date != b.date) return a.date < b.date;
                       return a.row < b.row;
                     });
    for (size_t i = 0; i < clicks.size(); ++i) {
      const Click& purchase = clicks[i];
      if (purchase.sale <= 0) continue;
      auto cat = category_of.find(purchase.item);
      if (cat == category_of.end() || cat->second != options.bb_target_category) {
        continue;
      }
      for (const Click& view : clicks) {
        if (view.sale != 0) continue;
        auto vcat = category_of.find(view.item);
        if (vcat == category_of.end() ||
            vcat->second != options.bb_target_category) {
          continue;
        }
        const int64_t gap = purchase.date - view.date;
        if (gap < 1 || gap > options.bb_window_days) continue;
        views[view.item] += 1;
      }
    }
  }
  std::vector<BbQ3Row> out;
  for (const auto& [sk, count] : views) out.push_back(BbQ3Row{sk, count});
  std::sort(out.begin(), out.end(), [](const BbQ3Row& a, const BbQ3Row& b) {
    if (a.views != b.views) return a.views > b.views;
    return a.item_sk < b.item_sk;
  });
  if (static_cast<int>(out.size()) > options.bb_top_k) {
    out.resize(static_cast<size_t>(options.bb_top_k));
  }
  return out;
}

}  // namespace skyrise::engine
