#include "engine/queries.h"

#include "data/types.h"

namespace skyrise::engine {

namespace {

double Date(int y, int m, int d) {
  return static_cast<double>(data::DaysSinceEpoch(y, m, d));
}

OperatorSpec PartitionWrite(std::vector<std::string> keys, int partitions) {
  OperatorSpec op;
  op.op = "partition_write";
  op.partition_keys = std::move(keys);
  op.partition_count = partitions;
  return op;
}

OperatorSpec Collect() {
  OperatorSpec op;
  op.op = "collect";
  return op;
}

}  // namespace

QueryPlan BuildTpchQ6() {
  QueryPlan plan;
  plan.query_name = "tpch-q6";

  // Stage 1: selective scan + partial aggregation per worker.
  PipelineSpec scan;
  scan.id = 1;
  InputSpec input;
  input.type = InputSpec::Type::kTable;
  input.table = "lineitem";
  input.columns = {"l_shipdate", "l_discount", "l_quantity",
                   "l_extendedprice"};
  input.pushdown =
      And(And(Cmp(">=", Col("l_shipdate"), Num(Date(1994, 1, 1))),
              Cmp("<", Col("l_shipdate"), Num(Date(1995, 1, 1)))),
          And(Between(Col("l_discount"), Num(0.05), Num(0.07)),
              Cmp("<", Col("l_quantity"), Num(24))));
  // Synthetic hint: shipdate pruning removes most row groups; the residual
  // discount/quantity/date selectivity within surviving groups is ~0.125
  // (3/11 discount steps x 23/50 quantities).
  input.pushdown_selectivity = 0.125;
  scan.inputs.push_back(std::move(input));

  OperatorSpec project;
  project.op = "project";
  project.projections.emplace_back(
      "revenue", Arith("*", Col("l_extendedprice"), Col("l_discount")));
  scan.ops.push_back(std::move(project));

  OperatorSpec partial;
  partial.op = "hash_agg";
  partial.aggregates.push_back({"sum", Col("revenue"), "revenue"});
  partial.groups_hint = 1;
  scan.ops.push_back(std::move(partial));
  scan.ops.push_back(PartitionWrite({}, 1));
  plan.pipelines.push_back(std::move(scan));

  // Stage 2: final aggregation.
  PipelineSpec final_stage;
  final_stage.id = 2;
  final_stage.depends_on = {1};
  InputSpec shuffle;
  shuffle.type = InputSpec::Type::kShuffle;
  shuffle.upstream_pipeline = 1;
  final_stage.inputs.push_back(std::move(shuffle));
  OperatorSpec final_agg;
  final_agg.op = "hash_agg";
  final_agg.aggregates.push_back({"sum", Col("revenue"), "revenue"});
  final_agg.groups_hint = 1;
  final_stage.ops.push_back(std::move(final_agg));
  final_stage.ops.push_back(Collect());
  plan.pipelines.push_back(std::move(final_stage));
  return plan;
}

QueryPlan BuildTpchQ1() {
  QueryPlan plan;
  plan.query_name = "tpch-q1";

  PipelineSpec scan;
  scan.id = 1;
  InputSpec input;
  input.type = InputSpec::Type::kTable;
  input.table = "lineitem";
  input.columns = {"l_returnflag", "l_linestatus", "l_quantity",
                   "l_extendedprice", "l_discount", "l_tax", "l_shipdate"};
  input.pushdown = Cmp("<=", Col("l_shipdate"), Num(Date(1998, 9, 2)));
  input.pushdown_selectivity = 0.98;
  scan.inputs.push_back(std::move(input));

  OperatorSpec project;
  project.op = "project";
  project.projections.emplace_back("l_returnflag", Col("l_returnflag"));
  project.projections.emplace_back("l_linestatus", Col("l_linestatus"));
  project.projections.emplace_back("l_quantity", Col("l_quantity"));
  project.projections.emplace_back("l_extendedprice", Col("l_extendedprice"));
  project.projections.emplace_back("l_discount", Col("l_discount"));
  project.projections.emplace_back(
      "disc_price", Arith("*", Col("l_extendedprice"),
                          Arith("-", Num(1), Col("l_discount"))));
  project.projections.emplace_back(
      "charge",
      Arith("*",
            Arith("*", Col("l_extendedprice"),
                  Arith("-", Num(1), Col("l_discount"))),
            Arith("+", Num(1), Col("l_tax"))));
  scan.ops.push_back(std::move(project));

  OperatorSpec partial;
  partial.op = "hash_agg";
  partial.group_by = {"l_returnflag", "l_linestatus"};
  partial.aggregates.push_back({"sum", Col("l_quantity"), "sum_qty"});
  partial.aggregates.push_back(
      {"sum", Col("l_extendedprice"), "sum_base_price"});
  partial.aggregates.push_back({"sum", Col("disc_price"), "sum_disc_price"});
  partial.aggregates.push_back({"sum", Col("charge"), "sum_charge"});
  partial.aggregates.push_back({"sum", Col("l_discount"), "sum_disc"});
  partial.aggregates.push_back({"count", nullptr, "count_order"});
  partial.groups_hint = 4;
  scan.ops.push_back(std::move(partial));
  scan.ops.push_back(PartitionWrite({}, 1));
  plan.pipelines.push_back(std::move(scan));

  PipelineSpec final_stage;
  final_stage.id = 2;
  final_stage.depends_on = {1};
  InputSpec shuffle;
  shuffle.type = InputSpec::Type::kShuffle;
  shuffle.upstream_pipeline = 1;
  final_stage.inputs.push_back(std::move(shuffle));

  OperatorSpec final_agg;
  final_agg.op = "hash_agg";
  final_agg.group_by = {"l_returnflag", "l_linestatus"};
  final_agg.aggregates.push_back({"sum", Col("sum_qty"), "sum_qty"});
  final_agg.aggregates.push_back(
      {"sum", Col("sum_base_price"), "sum_base_price"});
  final_agg.aggregates.push_back(
      {"sum", Col("sum_disc_price"), "sum_disc_price"});
  final_agg.aggregates.push_back({"sum", Col("sum_charge"), "sum_charge"});
  final_agg.aggregates.push_back({"sum", Col("sum_disc"), "sum_disc"});
  final_agg.aggregates.push_back({"sum", Col("count_order"), "count_order"});
  final_agg.groups_hint = 4;
  final_stage.ops.push_back(std::move(final_agg));

  OperatorSpec averages;
  averages.op = "project";
  averages.projections.emplace_back("l_returnflag", Col("l_returnflag"));
  averages.projections.emplace_back("l_linestatus", Col("l_linestatus"));
  averages.projections.emplace_back("sum_qty", Col("sum_qty"));
  averages.projections.emplace_back("sum_base_price", Col("sum_base_price"));
  averages.projections.emplace_back("sum_disc_price", Col("sum_disc_price"));
  averages.projections.emplace_back("sum_charge", Col("sum_charge"));
  averages.projections.emplace_back(
      "avg_qty", Arith("/", Col("sum_qty"), Col("count_order")));
  averages.projections.emplace_back(
      "avg_price", Arith("/", Col("sum_base_price"), Col("count_order")));
  averages.projections.emplace_back(
      "avg_disc", Arith("/", Col("sum_disc"), Col("count_order")));
  averages.projections.emplace_back("count_order", Col("count_order"));
  final_stage.ops.push_back(std::move(averages));

  OperatorSpec sort;
  sort.op = "sort";
  sort.sort_keys = {"l_returnflag", "l_linestatus"};
  sort.sort_ascending = {true, true};
  final_stage.ops.push_back(std::move(sort));
  final_stage.ops.push_back(Collect());
  plan.pipelines.push_back(std::move(final_stage));
  return plan;
}

QueryPlan BuildTpchQ12(const QuerySuiteOptions& options) {
  QueryPlan plan;
  plan.query_name = "tpch-q12";
  const int parts = options.join_partitions;

  // Stage 1: lineitem scan, selective, shuffled by order key.
  PipelineSpec lineitem;
  lineitem.id = 1;
  InputSpec li;
  li.type = InputSpec::Type::kTable;
  li.table = "lineitem";
  li.columns = {"l_orderkey", "l_shipmode", "l_shipdate", "l_commitdate",
                "l_receiptdate"};
  li.pushdown = And(
      And(InList(Col("l_shipmode"), {"MAIL", "SHIP"}),
          And(Cmp("<", Col("l_commitdate"), Col("l_receiptdate")),
              Cmp("<", Col("l_shipdate"), Col("l_commitdate")))),
      And(Cmp(">=", Col("l_receiptdate"), Num(Date(1994, 1, 1))),
          Cmp("<", Col("l_receiptdate"), Num(Date(1995, 1, 1)))));
  // 2/7 shipmodes x ~1/4 date orderings x ~1/7 receipt year (partially
  // handled by pruning on receiptdate; residual hint).
  li.pushdown_selectivity = 0.07;
  lineitem.inputs.push_back(std::move(li));
  lineitem.ops.push_back(PartitionWrite({"l_orderkey"}, parts));
  plan.pipelines.push_back(std::move(lineitem));

  // Stage 2: orders scan, shuffled by order key.
  PipelineSpec orders;
  orders.id = 2;
  InputSpec o;
  o.type = InputSpec::Type::kTable;
  o.table = "orders";
  o.columns = {"o_orderkey", "o_orderpriority"};
  orders.inputs.push_back(std::move(o));
  orders.ops.push_back(PartitionWrite({"o_orderkey"}, parts));
  plan.pipelines.push_back(std::move(orders));

  // Stage 3: co-partitioned hash join + partial conditional aggregation.
  PipelineSpec join;
  join.id = 3;
  join.depends_on = {1, 2};
  InputSpec probe;
  probe.type = InputSpec::Type::kShuffle;
  probe.upstream_pipeline = 1;
  join.inputs.push_back(std::move(probe));
  InputSpec build;
  build.type = InputSpec::Type::kShuffle;
  build.upstream_pipeline = 2;
  join.inputs.push_back(std::move(build));

  OperatorSpec hash_join;
  hash_join.op = "hash_join";
  hash_join.probe_keys = {"l_orderkey"};
  hash_join.build_keys = {"o_orderkey"};
  hash_join.build_columns = {"o_orderpriority"};
  hash_join.build_input = 1;
  hash_join.join_multiplier = 1.0;  // Every lineitem has exactly one order.
  join.ops.push_back(std::move(hash_join));

  OperatorSpec flags;
  flags.op = "project";
  flags.projections.emplace_back("l_shipmode", Col("l_shipmode"));
  flags.projections.emplace_back(
      "high_flag", Indicator(InList(Col("o_orderpriority"),
                                    {"1-URGENT", "2-HIGH"})));
  flags.projections.emplace_back(
      "low_flag",
      Arith("-", Num(1), Indicator(InList(Col("o_orderpriority"),
                                          {"1-URGENT", "2-HIGH"}))));
  join.ops.push_back(std::move(flags));

  OperatorSpec partial;
  partial.op = "hash_agg";
  partial.group_by = {"l_shipmode"};
  partial.aggregates.push_back({"sum", Col("high_flag"), "high_line_count"});
  partial.aggregates.push_back({"sum", Col("low_flag"), "low_line_count"});
  partial.groups_hint = 2;
  join.ops.push_back(std::move(partial));
  join.ops.push_back(PartitionWrite({}, 1));
  plan.pipelines.push_back(std::move(join));

  // Stage 4: final aggregation + sort.
  PipelineSpec final_stage;
  final_stage.id = 4;
  final_stage.depends_on = {3};
  InputSpec shuffle;
  shuffle.type = InputSpec::Type::kShuffle;
  shuffle.upstream_pipeline = 3;
  final_stage.inputs.push_back(std::move(shuffle));
  OperatorSpec final_agg;
  final_agg.op = "hash_agg";
  final_agg.group_by = {"l_shipmode"};
  final_agg.aggregates.push_back(
      {"sum", Col("high_line_count"), "high_line_count"});
  final_agg.aggregates.push_back(
      {"sum", Col("low_line_count"), "low_line_count"});
  final_agg.groups_hint = 2;
  final_stage.ops.push_back(std::move(final_agg));
  OperatorSpec sort;
  sort.op = "sort";
  sort.sort_keys = {"l_shipmode"};
  sort.sort_ascending = {true};
  final_stage.ops.push_back(std::move(sort));
  final_stage.ops.push_back(Collect());
  plan.pipelines.push_back(std::move(final_stage));
  return plan;
}

QueryPlan BuildTpcxBbQ3(const QuerySuiteOptions& options) {
  QueryPlan plan;
  plan.query_name = "tpcxbb-q3";
  const int parts = options.join_partitions;

  // Stage 1: clickstream scan shuffled by user (map phase).
  PipelineSpec clicks;
  clicks.id = 1;
  InputSpec cs;
  cs.type = InputSpec::Type::kTable;
  cs.table = "clickstreams";
  cs.columns = {"wcs_click_date", "wcs_user_sk", "wcs_item_sk",
                "wcs_sales_sk"};
  clicks.inputs.push_back(std::move(cs));
  clicks.ops.push_back(PartitionWrite({"wcs_user_sk"}, parts));
  plan.pipelines.push_back(std::move(clicks));

  // Stage 2: per-user sessionization with the item dimension broadcast.
  PipelineSpec sessionize;
  sessionize.id = 2;
  sessionize.depends_on = {1};
  InputSpec shuffle;
  shuffle.type = InputSpec::Type::kShuffle;
  shuffle.upstream_pipeline = 1;
  sessionize.inputs.push_back(std::move(shuffle));
  InputSpec item;
  item.type = InputSpec::Type::kTable;
  item.table = "item";
  item.columns = {"i_item_sk", "i_category_id"};
  sessionize.inputs.push_back(std::move(item));

  OperatorSpec join;
  join.op = "hash_join";
  join.probe_keys = {"wcs_item_sk"};
  join.build_keys = {"i_item_sk"};
  join.build_columns = {"i_category_id"};
  join.build_input = 1;
  join.join_multiplier = 1.0;
  sessionize.ops.push_back(std::move(join));

  OperatorSpec udf;
  udf.op = "bb_sessionize";
  udf.session_window_days = options.bb_window_days;
  udf.target_category = options.bb_target_category;
  udf.udf_output_ratio = 0.02;
  sessionize.ops.push_back(std::move(udf));

  OperatorSpec partial;
  partial.op = "hash_agg";
  partial.group_by = {"item_sk"};
  partial.aggregates.push_back({"count", nullptr, "views"});
  partial.groups_hint = 1000;
  sessionize.ops.push_back(std::move(partial));
  sessionize.ops.push_back(PartitionWrite({}, 1));
  plan.pipelines.push_back(std::move(sessionize));

  // Stage 3: final count + top-k (reduce phase).
  PipelineSpec final_stage;
  final_stage.id = 3;
  final_stage.depends_on = {2};
  InputSpec in;
  in.type = InputSpec::Type::kShuffle;
  in.upstream_pipeline = 2;
  final_stage.inputs.push_back(std::move(in));
  OperatorSpec final_agg;
  final_agg.op = "hash_agg";
  final_agg.group_by = {"item_sk"};
  final_agg.aggregates.push_back({"sum", Col("views"), "views"});
  final_agg.groups_hint = 1000;
  final_stage.ops.push_back(std::move(final_agg));
  OperatorSpec sort;
  sort.op = "sort";
  sort.sort_keys = {"views", "item_sk"};
  sort.sort_ascending = {false, true};
  final_stage.ops.push_back(std::move(sort));
  OperatorSpec limit;
  limit.op = "limit";
  limit.limit = options.bb_top_k;
  final_stage.ops.push_back(std::move(limit));
  final_stage.ops.push_back(Collect());
  plan.pipelines.push_back(std::move(final_stage));
  return plan;
}

std::vector<QueryPlan> BuildQuerySuite(const QuerySuiteOptions& options) {
  return {BuildTpchQ1(), BuildTpchQ6(), BuildTpchQ12(options),
          BuildTpcxBbQ3(options)};
}

}  // namespace skyrise::engine
