#pragma once

#include "engine/coordinator.h"
#include "engine/context.h"
#include "faas/ec2_fleet.h"
#include "faas/lambda_platform.h"

/// \file engine.h
/// Facade for the Skyrise serverless query engine (Fig. 4): deploys the
/// coordinator/worker/invoker function binaries into a registry shared by
/// the FaaS platform and the IaaS shim, and submits physical plans to either
/// deployment. The query plan and execution logic are identical across
/// deployments; only the invocation substrate differs.

// skyrise-domain(coordinator)
namespace skyrise::engine {

struct QueryResponse {
  std::string result_key;
  double runtime_ms = 0;
  double cumulated_worker_ms = 0;
  int total_workers = 0;
  int peak_workers = 0;
  int64_t requests = 0;
  // Fault-tolerance counters (zero on a fault-free run).
  int worker_retries = 0;
  int speculative_launches = 0;
  int worker_errors = 0;
  // Streaming-execution memory profile: the largest resident footprint any
  // worker reported, the morsel count across all workers, and the smallest
  // Lambda memory configuration that covers the peak (the memory-config
  // recommendation fed into break-even analysis).
  int64_t peak_worker_memory_bytes = 0;
  int64_t total_batches = 0;
  int recommended_memory_mib = 0;
  // Overload-robustness counters (zero / absent unless a deadline or retry
  // budget was configured; see EngineContext).
  int degraded_stages = 0;        ///< Stages scheduled with reduced fan-out.
  double retry_budget_initial = 0;    ///< Pool size at query start.
  double retry_budget_remaining = 0;  ///< Tokens left at query end.
  int64_t retry_budget_acquired = 0;  ///< Retries granted across all layers.
  int64_t retry_budget_denied = 0;    ///< Retries refused (pool empty).
  Json raw;

  static QueryResponse FromJson(const Json& json);
};

class QueryEngine {
 public:
  explicit QueryEngine(EngineContext context) : context_(std::move(context)) {}
  SKYRISE_DISALLOW_COPY_AND_ASSIGN(QueryEngine);

  /// Registers the coordinator, worker, and invoker function binaries.
  /// Workers use the paper's 4-vCPU / 7,076 MiB configuration by default.
  [[nodiscard]] Status Deploy(faas::FunctionRegistry* registry,
                double worker_memory_mib = 7076);

  /// Submits `plan` to the coordinator on `platform` (Lambda or EC2 fleet).
  /// The response callback receives the coordinator's JSON response.
  void Run(faas::ComputePlatform* platform, const QueryPlan& plan,
           const std::string& query_id,
           std::function<void(Result<QueryResponse>)> callback,
           int partitions_per_worker = 0);

  EngineContext* context() { return &context_; }

  /// Decodes the final result object of a completed query into a chunk
  /// (control-plane read; for verification and result display).
  [[nodiscard]] Result<data::Chunk> FetchResult(const std::string& query_id) const;

 private:
  EngineContext context_;
};

}  // namespace skyrise::engine
