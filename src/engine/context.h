#pragma once

#include <map>
#include <string>

#include "common/circuit_breaker.h"
#include "common/deadline.h"
#include "common/retry_budget.h"
#include "engine/executor.h"
#include "faas/function.h"
#include "format/cof.h"
#include "pricing/cost_meter.h"
#include "storage/queue_service.h"
#include "storage/retry_client.h"
#include "storage/storage_service.h"

/// \file context.h
/// Shared wiring for the engine's coordinator/worker function handlers: the
/// simulation environment, base-table and shuffle storage, the synthetic
/// file catalog, retry/timeout policy, and the compute platform workers are
/// invoked on. Any number of queries may be in flight concurrently on one
/// context (interleaved on the single-threaded event loop); per-query state
/// lives in `query_grants`, keyed by query id.

// skyrise-domain(coordinator)
namespace skyrise::engine {

struct EngineContext {
  sim::SimEnvironment* env = nullptr;
  // Client stubs: every mutation goes through the declared storage request
  // API crossings (GetRange/Put/Insert).
  // skyrise-check: allow(domain-escape) — client stub for a crossing API.
  storage::StorageService* table_store = nullptr;
  // skyrise-check: allow(domain-escape) — client stub, see table_store.
  storage::StorageService* shuffle_store = nullptr;
  format::SyntheticFileCatalog* catalog = nullptr;
  // Client stub for the coordination queue crossing (QueueService::Arrive).
  // skyrise-check: allow(domain-escape) — client stub for a crossing API.
  storage::QueueService* queue = nullptr;
  /// Platform worker invocations go to (set per run: Lambda or EC2 fleet).
  /// Client stub for the invocation crossing (ComputePlatform::Invoke).
  // skyrise-check: allow(domain-escape) — client stub for a crossing API.
  faas::ComputePlatform* worker_platform = nullptr;
  /// Experiment-wide request metering hook.
  pricing::CostMeter* meter = nullptr;

  CostModel cost_model;

  // Worker I/O policy.
  storage::RetryClient::Options retry;
  int max_concurrent_requests = 16;
  int64_t range_chunk_bytes = 8 * kMiB;

  // Worker execution policy: morsel size for the streaming operator chain.
  //   > 0  — re-slice decoded row groups into batches of this many rows;
  //   == 0 — natural morsels (one decoded row group each);
  //   < 0  — whole-fragment materialization (the pre-streaming semantics).
  // Results are bit-identical across settings; only peak memory and the
  // I/O-compute overlap change.
  int64_t morsel_rows = 4096;

  // Coordinator scheduling policy.
  int partitions_per_worker = 1;
  /// Memory configured for deployed workers (set by QueryEngine::Deploy);
  /// the coordinator's memory-aware partitions_per_worker default budgets
  /// worker inputs against a fraction of this allocation.
  int worker_memory_mib = 7076;
  int max_parallelism = 10000;        ///< Scheduling wave width.
  int two_level_threshold = 256;      ///< Fan out via invoker functions.
  int invoker_fanout = 32;

  // Coordinator fault-tolerance policy. Worker outputs are deterministic
  // functions of their payload and shuffle writes are full-object replaces
  // under attempt-independent keys, so re-executed and speculative attempts
  // are idempotent: the coordinator keeps the first completion per fragment
  // and duplicates overwrite byte-identical objects.
  /// Total invocation attempts per fragment (first + retries + speculative)
  /// before the query fails.
  int worker_max_attempts = 4;
  /// Pause before re-invoking a failed fragment (scaled by attempt count).
  SimDuration worker_retry_backoff = Millis(100);
  /// Straggler speculation: a duplicate of a still-running fragment is
  /// launched once it has been in flight this long (builds on the size-based
  /// straggler timeouts the storage retry policy below applies per request).
  /// <= 0 disables speculation.
  SimDuration speculation_after = Seconds(10);
  /// Cadence of the coordinator's per-stage straggler sweep.
  SimDuration speculation_interval = Seconds(2);

  // Overload-robustness policy (all disabled by default; see DESIGN.md
  // "Overload & degradation model").
  /// End-to-end wall budget per query. QueryEngine::Run stamps the absolute
  /// expiry into the coordinator payload as "deadline_us"; the coordinator
  /// propagates it to every worker/invoker payload (where the platforms
  /// clamp execution timeouts against it) and into every storage
  /// ClientContext (where RetryClient clamps attempt timeouts and backoff).
  /// <= 0: unbounded.
  SimDuration query_deadline = 0;
  /// Per-query retry-token pool: every retry across layers (storage
  /// re-request, worker re-invocation, speculative duplicate) draws one
  /// token; storage successes refund `retry_budget_refund` tokens each.
  /// <= 0: disabled (per-call max_attempts arithmetic alone, as before).
  double retry_budget_tokens = 0;
  double retry_budget_refund = 0.15;
  /// Per-service circuit breakers, owned by the testbed/harness (optional).
  /// `storage_breaker` is carried in worker/coordinator storage contexts;
  /// `invoke_breaker` gates the coordinator's worker-invocation path and is
  /// fed by worker-attempt outcomes.
  CircuitBreaker* storage_breaker = nullptr;
  CircuitBreaker* invoke_breaker = nullptr;
  /// Graceful degradation: when the live retry budget has drained below
  /// this fraction of its initial size at stage start, the coordinator
  /// sheds load by scaling partitions-per-worker up by
  /// `degrade_fanout_factor` (fewer, larger fragments — less invoke and
  /// shuffle pressure at the cost of per-stage latency).
  double degrade_budget_fraction = 0.25;
  int degrade_fanout_factor = 2;

  // Live per-query state published by the coordinator, keyed by query id.
  // Multiple queries run interleaved on one context (the serving frontend
  // admits a whole tenant population against a shared deployment), so
  // workers look up the coordinator-granted budget/deadline for *their*
  // query by the query_id in their payload — the simulator's stand-in for
  // a budget grant travelling in-band. Entries exist only while the
  // owning coordinator task is live; a missing entry means the grant was
  // withdrawn (query finished/failed) and workers fall back to ungoverned
  // per-call retry arithmetic, matching zombie-execution semantics.
  struct QueryGrants {
    RetryBudget* retry_budget = nullptr;
    Deadline deadline;
  };
  std::map<std::string, QueryGrants> query_grants;
  const QueryGrants* FindGrants(const std::string& query_id) const {
    auto it = query_grants.find(query_id);
    return it == query_grants.end() ? nullptr : &it->second;
  }

  EngineContext() {
    // Straggler re-triggering: generous size-based allowance so congested
    // (post-burst) scans do not spuriously time out, while first-byte
    // stragglers are retried.
    retry.request_timeout = Millis(600);
    retry.timeout_per_mib = Millis(400);
    retry.max_attempts = 16;  // Shuffle bursts ride out cold-bucket limits.
    retry.backoff_cap = Seconds(10);
  }
};

/// Well-known function names registered by the engine.
inline constexpr char kCoordinatorFunction[] = "skyrise-coordinator";
inline constexpr char kWorkerFunction[] = "skyrise-worker";
inline constexpr char kInvokerFunction[] = "skyrise-invoker";

}  // namespace skyrise::engine
