#include "serving/arrival.h"

#include <algorithm>
#include <cmath>

namespace skyrise::serving {

ArrivalSpec ArrivalSpec::Poisson(double rate_per_sec) {
  ArrivalSpec spec;
  spec.kind = Kind::kPoisson;
  spec.rate_per_sec = rate_per_sec;
  return spec;
}

ArrivalSpec ArrivalSpec::Diurnal(double rate_per_sec, double amplitude,
                                 SimDuration period, SimDuration phase) {
  ArrivalSpec spec;
  spec.kind = Kind::kDiurnal;
  spec.rate_per_sec = rate_per_sec;
  spec.diurnal_amplitude = amplitude;
  spec.diurnal_period = period;
  spec.diurnal_phase = phase;
  return spec;
}

ArrivalSpec ArrivalSpec::Bursty(double rate_per_sec, double burst_multiplier,
                                SimDuration on_mean, SimDuration off_mean) {
  ArrivalSpec spec;
  spec.kind = Kind::kBursty;
  spec.rate_per_sec = rate_per_sec;
  spec.burst_multiplier = burst_multiplier;
  spec.burst_on_mean = on_mean;
  spec.burst_off_mean = off_mean;
  return spec;
}

ArrivalProcess::ArrivalProcess(const ArrivalSpec& spec, Rng rng)
    : spec_(spec), rng_(rng) {}

double ArrivalProcess::PeakRate() const {
  switch (spec_.kind) {
    case ArrivalSpec::Kind::kPoisson:
      return spec_.rate_per_sec;
    case ArrivalSpec::Kind::kDiurnal:
      return spec_.rate_per_sec * (1.0 + spec_.diurnal_amplitude);
    case ArrivalSpec::Kind::kBursty:
      return spec_.rate_per_sec * spec_.burst_multiplier;
  }
  return spec_.rate_per_sec;
}

double ArrivalProcess::RateAt(SimTime t) const {
  switch (spec_.kind) {
    case ArrivalSpec::Kind::kPoisson:
      return spec_.rate_per_sec;
    case ArrivalSpec::Kind::kDiurnal: {
      const double x = 2.0 * M_PI *
                       ToSeconds(t + spec_.diurnal_phase) /
                       ToSeconds(spec_.diurnal_period);
      return spec_.rate_per_sec *
             (1.0 + spec_.diurnal_amplitude * std::sin(x));
    }
    case ArrivalSpec::Kind::kBursty:
      return spec_.rate_per_sec *
             (in_burst_ ? spec_.burst_multiplier : spec_.idle_multiplier);
  }
  return spec_.rate_per_sec;
}

SimTime ArrivalProcess::Next(SimTime now) {
  switch (spec_.kind) {
    case ArrivalSpec::Kind::kPoisson: {
      const double gap_us = rng_.Exponential(1e6 / spec_.rate_per_sec);
      return now + std::max<SimDuration>(1, Micros(gap_us));
    }
    case ArrivalSpec::Kind::kDiurnal: {
      // Thinning (Lewis & Shedler): sample candidates at the peak rate and
      // accept each with probability rate(t)/peak. Both draws come from the
      // process's own stream, so the accepted sequence is deterministic.
      const double peak = PeakRate();
      SimTime t = now;
      for (;;) {
        const double gap_us = rng_.Exponential(1e6 / peak);
        t += std::max<SimDuration>(1, Micros(gap_us));
        if (rng_.NextDouble() < RateAt(t) / peak) return t;
      }
    }
    case ArrivalSpec::Kind::kBursty: {
      // Interrupted Poisson: a two-state phase machine modulates the rate.
      // The exponential is memoryless, so re-sampling the gap after a phase
      // boundary preserves the per-phase process.
      SimTime t = now;
      for (;;) {
        if (t >= phase_until_) {
          in_burst_ = !in_burst_;
          const SimDuration mean =
              in_burst_ ? spec_.burst_on_mean : spec_.burst_off_mean;
          phase_until_ =
              t + std::max<SimDuration>(
                      1, Micros(rng_.Exponential(ToSeconds(mean) * 1e6)));
        }
        const double rate =
            spec_.rate_per_sec *
            (in_burst_ ? spec_.burst_multiplier : spec_.idle_multiplier);
        if (rate <= 0) {
          t = phase_until_;
          continue;
        }
        const double gap_us = rng_.Exponential(1e6 / rate);
        const SimTime candidate = t + std::max<SimDuration>(1, Micros(gap_us));
        if (candidate <= phase_until_) return candidate;
        t = phase_until_;
      }
    }
  }
  return now + 1;
}

}  // namespace skyrise::serving
