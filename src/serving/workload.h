#pragma once

#include <string>
#include <vector>

#include "common/random.h"
#include "engine/queries.h"

/// \file workload.h
/// Per-tenant query mixes for the serving frontend, mirroring the SeBS
/// mixed-workload methodology: each tenant draws query classes from a
/// weighted mix — the paper's TPC-H/TPCx-BB suite plus a parameterized
/// ad-hoc class whose predicates are sampled from the tenant's RNG stream
/// (so "exploratory" traffic differs per arrival but is still a pure
/// function of the seed).

namespace skyrise::serving {

enum class QueryClass {
  kTpchQ1,    ///< Scan-heavy aggregation.
  kTpchQ6,    ///< Selective scan + aggregation (interactive-sized).
  kTpchQ12,   ///< Shuffle join.
  kTpcxBbQ3,  ///< Sessionization MapReduce with a UDF.
  kAdHoc,     ///< Randomized selective lineitem scan (exploratory traffic).
};

const char* QueryClassName(QueryClass cls);

/// Weighted class mix; weights need not sum to 1.
struct WorkloadMix {
  struct Entry {
    QueryClass cls;
    double weight = 1.0;
  };
  std::vector<Entry> entries;

  /// Interactive dashboards: mostly Q6 and ad-hoc probes.
  static WorkloadMix Interactive();
  /// Scheduled analytics: the heavier suite queries.
  static WorkloadMix Analytics();
  /// All five classes, equal weight.
  static WorkloadMix Uniform();
};

/// Draws a class from `mix` (deterministic given the RNG state). An empty
/// mix yields kTpchQ6.
QueryClass SampleClass(const WorkloadMix& mix, Rng* rng);

/// Builds the physical plan for one arrival of `cls`. kAdHoc consumes RNG
/// draws for its predicate/aggregate parameters; the suite classes ignore
/// `rng`.
engine::QueryPlan BuildPlanFor(QueryClass cls,
                               const engine::QuerySuiteOptions& options,
                               Rng* rng);

}  // namespace skyrise::serving
