#pragma once

#include "common/random.h"
#include "common/units.h"

/// \file arrival.h
/// Deterministic open-loop arrival processes for the serving frontend. Each
/// tenant owns one process seeded from the simulation RNG (never wall
/// clock), so a scenario's arrival sequence is a pure function of
/// (seed, spec): identical runs produce bit-identical arrival instants.
///
/// Three shapes cover the serving scenarios:
///  - kPoisson: homogeneous Poisson (exponential inter-arrivals).
///  - kDiurnal: inhomogeneous Poisson with a sinusoidal day/night rate,
///    sampled by thinning against the peak rate.
///  - kBursty: interrupted Poisson (ON/OFF bursts), the step-load shape used
///    to exercise the platform's burst-then-ramp admission path (Fig. 1).

namespace skyrise::serving {

struct ArrivalSpec {
  enum class Kind { kPoisson, kDiurnal, kBursty };
  Kind kind = Kind::kPoisson;

  /// Base arrival rate in queries/second. For kPoisson this is the rate;
  /// for kDiurnal the mean of the sinusoid; for kBursty the rate is
  /// `rate_per_sec * burst_multiplier` during bursts and
  /// `rate_per_sec * idle_multiplier` between them.
  double rate_per_sec = 1.0;

  // kDiurnal: rate(t) = rate_per_sec * (1 + amplitude * sin(2*pi*(t+phase)/period)).
  double diurnal_amplitude = 0.8;  ///< In [0, 1).
  SimDuration diurnal_period = Hours(24);
  SimDuration diurnal_phase = 0;

  // kBursty: exponentially distributed ON/OFF phase lengths.
  double burst_multiplier = 8.0;
  double idle_multiplier = 0.1;
  SimDuration burst_on_mean = Seconds(5);
  SimDuration burst_off_mean = Seconds(20);

  static ArrivalSpec Poisson(double rate_per_sec);
  static ArrivalSpec Diurnal(double rate_per_sec, double amplitude,
                             SimDuration period, SimDuration phase = 0);
  static ArrivalSpec Bursty(double rate_per_sec, double burst_multiplier,
                            SimDuration on_mean, SimDuration off_mean);
};

class ArrivalProcess {
 public:
  ArrivalProcess(const ArrivalSpec& spec, Rng rng);

  /// Absolute sim time of the next arrival strictly after `now`. Calls must
  /// pass non-decreasing `now` values (the frontend always passes the
  /// previous arrival instant), since the bursty phase machine advances
  /// with the samples it hands out.
  SimTime Next(SimTime now);

  /// Instantaneous target rate at `t` in queries/second (for tests/plots;
  /// for kBursty this is the phase the process would be in at `t` if `t` is
  /// within the already-sampled phase schedule).
  double RateAt(SimTime t) const;

  const ArrivalSpec& spec() const { return spec_; }

 private:
  double PeakRate() const;

  ArrivalSpec spec_;
  Rng rng_;
  // Bursty phase machine: the process is in a burst until/from
  // `phase_until_`; phases are sampled lazily as Next() crosses them.
  bool in_burst_ = false;
  SimTime phase_until_ = 0;
};

}  // namespace skyrise::serving
