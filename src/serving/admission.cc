#include "serving/admission.h"

#include <algorithm>

namespace skyrise::serving {

AdmissionController::AdmissionController(const Options& options,
                                         std::vector<TenantPolicy> tenants)
    : opt_(options) {
  tenants_.reserve(tenants.size());
  for (auto& policy : tenants) {
    Tenant tenant;
    tenant.policy = std::move(policy);
    tenants_.push_back(std::move(tenant));
  }
}

bool AdmissionController::HasFreeSlot(const Tenant& tenant) const {
  if (tenant.stats.in_flight >= tenant.policy.max_concurrent) return false;
  if (opt_.global_max_concurrent > 0 &&
      global_in_flight_ >= opt_.global_max_concurrent) {
    return false;
  }
  return true;
}

void AdmissionController::AccountDispatch(Tenant* tenant) {
  ++tenant->stats.dispatched;
  ++tenant->stats.in_flight;
  tenant->stats.peak_in_flight =
      std::max(tenant->stats.peak_in_flight, tenant->stats.in_flight);
  ++global_in_flight_;
  peak_global_in_flight_ = std::max(peak_global_in_flight_, global_in_flight_);
  // Advance the stride pass: heavier tenants move slower, so they win the
  // min-pass election proportionally more often.
  const double weight = std::max(tenant->policy.weight, 1e-9);
  tenant->pass += 1.0 / weight;
  virtual_time_ = std::max(virtual_time_, tenant->pass);
}

AdmissionController::Decision AdmissionController::Offer(int tenant_index,
                                                         int64_t item) {
  Tenant& tenant = tenants_[static_cast<size_t>(tenant_index)];
  ++tenant.stats.arrivals;
  if (tenant.queue.empty() && HasFreeSlot(tenant)) {
    AccountDispatch(&tenant);
    return Decision::kDispatch;
  }
  if (static_cast<int>(tenant.queue.size()) >= tenant.policy.max_queue) {
    ++tenant.stats.shed;
    return Decision::kShed;
  }
  if (tenant.queue.empty()) {
    // Re-entering contention after an idle stretch: catch the pass up to
    // the current virtual time so banked idleness is not a fairness credit.
    tenant.pass = std::max(tenant.pass, virtual_time_);
  }
  tenant.queue.push_back(item);
  ++tenant.stats.queued;
  tenant.stats.queue_depth = static_cast<int>(tenant.queue.size());
  tenant.stats.peak_queue_depth =
      std::max(tenant.stats.peak_queue_depth, tenant.stats.queue_depth);
  return Decision::kQueue;
}

void AdmissionController::Release(int tenant_index) {
  Tenant& tenant = tenants_[static_cast<size_t>(tenant_index)];
  tenant.stats.in_flight = std::max(0, tenant.stats.in_flight - 1);
  global_in_flight_ = std::max(0, global_in_flight_ - 1);
}

std::optional<std::pair<int, int64_t>>
AdmissionController::TryDispatchQueued() {
  int best = -1;
  for (size_t i = 0; i < tenants_.size(); ++i) {
    const Tenant& tenant = tenants_[i];
    if (tenant.queue.empty() || !HasFreeSlot(tenant)) continue;
    if (best < 0 ||
        tenant.pass < tenants_[static_cast<size_t>(best)].pass) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0) return std::nullopt;
  Tenant& tenant = tenants_[static_cast<size_t>(best)];
  const int64_t item = tenant.queue.front();
  tenant.queue.pop_front();
  tenant.stats.queue_depth = static_cast<int>(tenant.queue.size());
  AccountDispatch(&tenant);
  return std::make_pair(best, item);
}

int AdmissionController::backlog() const {
  int total = 0;
  for (const auto& tenant : tenants_) {
    total += static_cast<int>(tenant.queue.size());
  }
  return total;
}

}  // namespace skyrise::serving
