#include "serving/frontend.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"

namespace skyrise::serving {

namespace {

std::vector<TenantPolicy> ExtractPolicies(
    const std::vector<TenantSpec>& tenants) {
  std::vector<TenantPolicy> policies;
  policies.reserve(tenants.size());
  for (const auto& tenant : tenants) policies.push_back(tenant.policy);
  return policies;
}

const char* OutcomeOf(const Result<Json>& result) {
  if (result.ok()) return "ok";
  const Status& status = result.status();
  if (status.IsDeadlineExceeded()) return "timeout";
  if (status.IsResourceExhausted()) return "throttle";
  return "error";
}

}  // namespace

ServingFrontend::ServingFrontend(sim::SimEnvironment* env,
                                 faas::ComputePlatform* platform,
                                 engine::QueryEngine* engine,
                                 obs::Tracer* tracer,
                                 obs::MetricsRegistry* metrics,
                                 const ServingOptions& options,
                                 std::vector<TenantSpec> tenants)
    : env_(env),
      platform_(platform),
      engine_(engine),
      tracer_(tracer),
      metrics_(metrics),
      opt_(options),
      admission_(AdmissionController::Options{options.global_max_concurrent},
                 ExtractPolicies(tenants)) {
  const Rng base = env_->ForkRng(opt_.rng_stream);
  tenants_.reserve(tenants.size());
  for (size_t i = 0; i < tenants.size(); ++i) {
    // Two independent sub-streams per tenant: arrival instants and
    // workload sampling never perturb each other.
    tenants_.emplace_back(
        tenants[i],
        ArrivalProcess(tenants[i].arrival,
                       base.Fork(2 * static_cast<uint64_t>(i))),
        base.Fork(2 * static_cast<uint64_t>(i) + 1));
  }
}

void ServingFrontend::Start() {
  started_ = true;
  start_time_ = env_->now();
  horizon_end_ = start_time_ + opt_.horizon;
  // Deployment-time wiring: the frontend points the engine at the compute
  // platform before any query runs.
  // skyrise-check: allow(cross-domain-mutation) — deployment-time wiring.
  if (engine_ != nullptr) engine_->context()->worker_platform = platform_;
  for (size_t i = 0; i < tenants_.size(); ++i) {
    tenants_[i].last_arrival = start_time_;
    ScheduleNextArrival(static_cast<int>(i));
  }
  if (opt_.sample_period > 0) Sample();
}

bool ServingFrontend::Done() const {
  if (!started_) return false;
  for (const auto& tenant : tenants_) {
    if (!tenant.arrivals_done) return false;
  }
  return admission_.global_in_flight() == 0 && admission_.backlog() == 0;
}

void ServingFrontend::DriveUntil(SimTime hard_horizon) {
  while (!Done() && env_->now() < hard_horizon) {
    // The receiver is the sim environment (event API); name-based call
    // resolution also matches net::Fabric::Step.
    // skyrise-check: allow(cross-domain-mutation) — event-API receiver.
    if (!env_->Step()) break;
  }
}

void ServingFrontend::ScheduleNextArrival(int tenant_index) {
  TenantState& tenant = tenants_[static_cast<size_t>(tenant_index)];
  const SimTime next = tenant.arrivals.Next(tenant.last_arrival);
  if (next >= horizon_end_) {
    tenant.arrivals_done = true;
    return;
  }
  tenant.last_arrival = next;
  env_->ScheduleAt(next, [this, tenant_index] { OnArrival(tenant_index); });
}

void ServingFrontend::OnArrival(int tenant_index) {
  TenantState& tenant = tenants_[static_cast<size_t>(tenant_index)];
  const int64_t record_index = static_cast<int64_t>(records_.size());
  QueryRecord record;
  record.tenant = tenant_index;
  record.cls = SampleClass(tenant.spec.mix, &tenant.workload_rng);
  record.id = "t" + std::to_string(tenant_index) + "-q" +
              std::to_string(tenant.next_sequence++);
  record.plan = BuildPlanFor(record.cls, opt_.suite, &tenant.workload_rng);
  record.arrival = env_->now();
  records_.push_back(std::move(record));

  const std::string& name = tenant.spec.policy.name;
  if (metrics_ != nullptr) {
    metrics_->Add("serving.arrivals");
    metrics_->Add("serving." + name + ".arrivals");
  }
  switch (admission_.Offer(tenant_index, record_index)) {
    case AdmissionController::Decision::kDispatch:
      Dispatch(record_index);
      break;
    case AdmissionController::Decision::kQueue:
      if (metrics_ != nullptr) {
        metrics_->Add("serving.queued");
        metrics_->Add("serving." + name + ".queued");
      }
      break;
    case AdmissionController::Decision::kShed:
      records_[static_cast<size_t>(record_index)].shed = true;
      if (metrics_ != nullptr) {
        metrics_->Add("serving.shed");
        metrics_->Add("serving." + name + ".shed");
      }
      if (tracer_ != nullptr) {
        tracer_->Instant("serving", "admission.shed", "serving");
      }
      break;
  }
  ScheduleNextArrival(tenant_index);
}

void ServingFrontend::Dispatch(int64_t record_index) {
  QueryRecord& record = records_[static_cast<size_t>(record_index)];
  const TenantState& tenant = tenants_[static_cast<size_t>(record.tenant)];
  record.dispatch = env_->now();
  if (tracer_ != nullptr) {
    record.span = tracer_->Begin("serving", "query " + record.id, "serving");
    tracer_->SetArg(record.span, "tenant", Json(tenant.spec.policy.name));
    tracer_->SetArg(record.span, "class", Json(QueryClassName(record.cls)));
  }
  if (metrics_ != nullptr) {
    metrics_->Add("serving.dispatched");
    metrics_->Add("serving." + tenant.spec.policy.name + ".dispatched");
  }
  Json payload = engine::CoordinatorPayload(record.plan, record.id,
                                            tenant.spec.partitions_per_worker);
  if (tenant.spec.query_deadline > 0) {
    payload["deadline_us"] = env_->now() + tenant.spec.query_deadline;
  }
  if (record.span != obs::kNoSpan) payload["trace_parent"] = record.span;
  platform_->Invoke(
      engine::kCoordinatorFunction, std::move(payload),
      [this, record_index](Result<Json> result) {
        OnComplete(record_index, result);
      });
}

void ServingFrontend::OnComplete(int64_t record_index,
                                 const Result<Json>& result) {
  QueryRecord& record = records_[static_cast<size_t>(record_index)];
  record.complete = env_->now();
  record.ok = result.ok();
  if (tracer_ != nullptr) tracer_->EndWith(record.span, OutcomeOf(result));
  const std::string& name =
      tenants_[static_cast<size_t>(record.tenant)].spec.policy.name;
  if (metrics_ != nullptr) {
    if (record.ok) {
      const double latency_ms = ToMillis(record.complete - record.arrival);
      metrics_->Add("serving.completed");
      metrics_->Add("serving." + name + ".completed");
      metrics_->Record("serving.latency_ms", latency_ms);
      metrics_->Record("serving." + name + ".latency_ms", latency_ms);
      metrics_->Record("serving." + name + ".queue_ms",
                       ToMillis(record.dispatch - record.arrival));
    } else {
      metrics_->Add("serving.failed");
      metrics_->Add("serving." + name + ".failed");
    }
  }
  admission_.Release(record.tenant);
  DrainQueues();
}

void ServingFrontend::DrainQueues() {
  while (auto next = admission_.TryDispatchQueued()) {
    Dispatch(next->second);
  }
}

void ServingFrontend::Sample() {
  ServingReport::Sample sample;
  sample.t_s = ToSeconds(env_->now() - start_time_);
  sample.in_flight = admission_.global_in_flight();
  sample.backlog = admission_.backlog();
  sample.fleet_active = opt_.fleet_probe ? opt_.fleet_probe() : 0;
  timeline_.push_back(sample);
  if (Done()) return;
  env_->Schedule(opt_.sample_period, [this] { Sample(); });
}

ServingReport ServingFrontend::Report() const {
  ServingReport report;
  const SimDuration elapsed =
      std::max<SimDuration>(1, env_->now() - start_time_);
  report.sim_seconds = ToSeconds(elapsed);
  report.timeline = timeline_;
  report.peak_in_flight = admission_.peak_global_in_flight();

  // Per-span subtree cost rollup: span ids are allocated in open order and
  // parents open before children, so one reverse pass accumulates each
  // subtree's exact USD into its root (the serving span of each query).
  std::vector<double> subtree;
  if (tracer_ != nullptr) {
    const auto& spans = tracer_->spans();
    subtree.assign(spans.size() + 1, 0.0);
    for (size_t i = spans.size(); i > 0; --i) {
      const obs::Span& span = spans[i - 1];
      subtree[i] += span.cost_usd;
      if (span.parent > 0 && static_cast<size_t>(span.parent) < i) {
        subtree[static_cast<size_t>(span.parent)] += subtree[i];
      }
    }
  }
  auto query_cost = [&](const QueryRecord& record) {
    if (record.span <= 0 ||
        static_cast<size_t>(record.span) >= subtree.size()) {
      return 0.0;
    }
    return subtree[static_cast<size_t>(record.span)];
  };

  struct SliceAccumulator {
    int64_t dispatched = 0;
    int64_t completed = 0;
    Histogram latency;
    double cost_usd = 0;
  };
  auto finish_slice = [](const std::string& name,
                         const SliceAccumulator& acc) {
    ClassSlice slice;
    slice.name = name;
    slice.dispatched = acc.dispatched;
    slice.completed = acc.completed;
    slice.p50_ms = acc.latency.Percentile(50);
    slice.p99_ms = acc.latency.Percentile(99);
    slice.cost_usd = acc.cost_usd;
    slice.cost_per_1k_usd =
        acc.completed == 0
            ? 0
            : acc.cost_usd / static_cast<double>(acc.completed) * 1000.0;
    return slice;
  };

  // std::map keyed by the class enum keeps slice order deterministic.
  std::map<int, SliceAccumulator> global_classes;
  Histogram global_latency;

  for (size_t t = 0; t < tenants_.size(); ++t) {
    const auto& stats = admission_.stats(static_cast<int>(t));
    ServingReport::Tenant tenant;
    tenant.name = tenants_[t].spec.policy.name;
    tenant.arrivals = stats.arrivals;
    tenant.dispatched = stats.dispatched;
    tenant.queued = stats.queued;
    tenant.shed = stats.shed;
    tenant.peak_in_flight = stats.peak_in_flight;

    Histogram latency;
    Histogram queue_wait;
    std::map<int, SliceAccumulator> classes;
    for (const auto& record : records_) {
      if (record.tenant != static_cast<int>(t) || record.shed) continue;
      if (record.dispatch < 0) continue;  // Still queued at report time.
      auto& slice = classes[static_cast<int>(record.cls)];
      auto& global_slice = global_classes[static_cast<int>(record.cls)];
      ++slice.dispatched;
      ++global_slice.dispatched;
      if (record.complete < 0) continue;  // Still in flight.
      if (!record.ok) {
        ++tenant.failed;
        continue;
      }
      ++tenant.completed;
      ++slice.completed;
      ++global_slice.completed;
      const double latency_ms = ToMillis(record.complete - record.arrival);
      latency.Record(latency_ms);
      global_latency.Record(latency_ms);
      slice.latency.Record(latency_ms);
      global_slice.latency.Record(latency_ms);
      queue_wait.Record(ToMillis(record.dispatch - record.arrival));
      const double cost = query_cost(record);
      tenant.cost_usd += cost;
      slice.cost_usd += cost;
      global_slice.cost_usd += cost;
    }
    tenant.queries_per_sec =
        static_cast<double>(tenant.completed) / report.sim_seconds;
    tenant.p50_ms = latency.Percentile(50);
    tenant.p99_ms = latency.Percentile(99);
    tenant.queue_p99_ms = queue_wait.Percentile(99);
    tenant.cost_per_1k_usd =
        tenant.completed == 0
            ? 0
            : tenant.cost_usd / static_cast<double>(tenant.completed) * 1000.0;
    for (const auto& [cls, acc] : classes) {
      tenant.classes.push_back(
          finish_slice(QueryClassName(static_cast<QueryClass>(cls)), acc));
    }

    report.total_arrivals += tenant.arrivals;
    report.total_dispatched += tenant.dispatched;
    report.total_completed += tenant.completed;
    report.total_failed += tenant.failed;
    report.total_shed += tenant.shed;
    report.total_cost_usd += tenant.cost_usd;
    report.tenants.push_back(std::move(tenant));
  }
  for (const auto& [cls, acc] : global_classes) {
    report.classes.push_back(
        finish_slice(QueryClassName(static_cast<QueryClass>(cls)), acc));
  }
  report.queries_per_sec =
      static_cast<double>(report.total_completed) / report.sim_seconds;
  report.p99_ms = global_latency.Percentile(99);
  report.cost_per_1k_usd =
      report.total_completed == 0
          ? 0
          : report.total_cost_usd /
                static_cast<double>(report.total_completed) * 1000.0;
  return report;
}

namespace {

Json SliceToJson(const ClassSlice& slice) {
  Json json = Json::Object();
  json["class"] = slice.name;
  json["dispatched"] = slice.dispatched;
  json["completed"] = slice.completed;
  json["p50_ms"] = slice.p50_ms;
  json["p99_ms"] = slice.p99_ms;
  json["cost_usd"] = slice.cost_usd;
  json["cost_per_1k_usd"] = slice.cost_per_1k_usd;
  return json;
}

}  // namespace

Json ServingReport::ToJson() const {
  Json json = Json::Object();
  json["sim_seconds"] = sim_seconds;
  Json totals = Json::Object();
  totals["arrivals"] = total_arrivals;
  totals["dispatched"] = total_dispatched;
  totals["completed"] = total_completed;
  totals["failed"] = total_failed;
  totals["shed"] = total_shed;
  totals["queries_per_sec"] = queries_per_sec;
  totals["p99_ms"] = p99_ms;
  totals["cost_usd"] = total_cost_usd;
  totals["cost_per_1k_usd"] = cost_per_1k_usd;
  totals["peak_in_flight"] = peak_in_flight;
  json["totals"] = std::move(totals);

  Json tenant_array = Json::Array();
  for (const auto& tenant : tenants) {
    Json entry = Json::Object();
    entry["tenant"] = tenant.name;
    entry["arrivals"] = tenant.arrivals;
    entry["dispatched"] = tenant.dispatched;
    entry["queued"] = tenant.queued;
    entry["shed"] = tenant.shed;
    entry["completed"] = tenant.completed;
    entry["failed"] = tenant.failed;
    entry["queries_per_sec"] = tenant.queries_per_sec;
    entry["p50_ms"] = tenant.p50_ms;
    entry["p99_ms"] = tenant.p99_ms;
    entry["queue_p99_ms"] = tenant.queue_p99_ms;
    entry["cost_usd"] = tenant.cost_usd;
    entry["cost_per_1k_usd"] = tenant.cost_per_1k_usd;
    entry["peak_in_flight"] = tenant.peak_in_flight;
    Json class_array = Json::Array();
    for (const auto& slice : tenant.classes) {
      class_array.Append(SliceToJson(slice));
    }
    entry["classes"] = std::move(class_array);
    tenant_array.Append(std::move(entry));
  }
  json["tenants"] = std::move(tenant_array);

  Json class_array = Json::Array();
  for (const auto& slice : classes) class_array.Append(SliceToJson(slice));
  json["classes"] = std::move(class_array);

  Json samples = Json::Array();
  for (const auto& sample : timeline) {
    Json entry = Json::Object();
    entry["t_s"] = sample.t_s;
    entry["in_flight"] = sample.in_flight;
    entry["backlog"] = sample.backlog;
    entry["fleet_active"] = sample.fleet_active;
    samples.Append(std::move(entry));
  }
  json["timeline"] = std::move(samples);
  return json;
}

std::string RenderSloTable(const ServingReport& report) {
  const std::vector<std::string> headers = {
      "tenant", "arrivals", "disp", "queued", "shed",  "done",
      "fail",   "qps",      "p50 ms", "p99 ms", "q p99", "USD/1k"};
  std::vector<std::vector<std::string>> rows;
  auto add_row = [&rows](const std::string& name, int64_t arrivals,
                         int64_t dispatched, int64_t queued, int64_t shed,
                         int64_t completed, int64_t failed, double qps,
                         double p50, double p99, double queue_p99,
                         double cost_per_1k) {
    rows.push_back({name, std::to_string(arrivals),
                    std::to_string(dispatched), std::to_string(queued),
                    std::to_string(shed), std::to_string(completed),
                    std::to_string(failed), StrFormat("%.2f", qps),
                    StrFormat("%.0f", p50), StrFormat("%.0f", p99),
                    StrFormat("%.0f", queue_p99),
                    StrFormat("%.4f", cost_per_1k)});
  };
  for (const auto& tenant : report.tenants) {
    add_row(tenant.name, tenant.arrivals, tenant.dispatched, tenant.queued,
            tenant.shed, tenant.completed, tenant.failed,
            tenant.queries_per_sec, tenant.p50_ms, tenant.p99_ms,
            tenant.queue_p99_ms, tenant.cost_per_1k_usd);
  }
  int64_t total_queued = 0;
  for (const auto& tenant : report.tenants) total_queued += tenant.queued;
  add_row("TOTAL", report.total_arrivals, report.total_dispatched,
          total_queued, report.total_shed, report.total_completed,
          report.total_failed, report.queries_per_sec, 0, report.p99_ms, 0,
          report.cost_per_1k_usd);

  std::vector<size_t> widths(headers.size());
  for (size_t c = 0; c < headers.size(); ++c) widths[c] = headers[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&widths](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) line += "  ";
      line += std::string(widths[c] - cells[c].size(), ' ') + cells[c];
    }
    return line + "\n";
  };
  std::string out = render_row(headers);
  size_t total_width = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total_width += widths[c] + (c > 0 ? 2 : 0);
  }
  out += std::string(total_width, '-') + "\n";
  for (const auto& row : rows) out += render_row(row);
  return out;
}

}  // namespace skyrise::serving
