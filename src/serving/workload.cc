#include "serving/workload.h"

#include "data/types.h"

namespace skyrise::serving {

const char* QueryClassName(QueryClass cls) {
  switch (cls) {
    case QueryClass::kTpchQ1:
      return "tpch-q1";
    case QueryClass::kTpchQ6:
      return "tpch-q6";
    case QueryClass::kTpchQ12:
      return "tpch-q12";
    case QueryClass::kTpcxBbQ3:
      return "tpcxbb-q3";
    case QueryClass::kAdHoc:
      return "adhoc";
  }
  return "unknown";
}

WorkloadMix WorkloadMix::Interactive() {
  WorkloadMix mix;
  mix.entries = {{QueryClass::kTpchQ6, 0.6}, {QueryClass::kAdHoc, 0.4}};
  return mix;
}

WorkloadMix WorkloadMix::Analytics() {
  WorkloadMix mix;
  mix.entries = {{QueryClass::kTpchQ1, 0.4},
                 {QueryClass::kTpchQ12, 0.4},
                 {QueryClass::kTpcxBbQ3, 0.2}};
  return mix;
}

WorkloadMix WorkloadMix::Uniform() {
  WorkloadMix mix;
  mix.entries = {{QueryClass::kTpchQ1, 1.0},
                 {QueryClass::kTpchQ6, 1.0},
                 {QueryClass::kTpchQ12, 1.0},
                 {QueryClass::kTpcxBbQ3, 1.0},
                 {QueryClass::kAdHoc, 1.0}};
  return mix;
}

QueryClass SampleClass(const WorkloadMix& mix, Rng* rng) {
  double total = 0;
  for (const auto& entry : mix.entries) total += entry.weight;
  if (total <= 0) return QueryClass::kTpchQ6;
  double pick = rng->Uniform(0, total);
  for (const auto& entry : mix.entries) {
    pick -= entry.weight;
    if (pick < 0) return entry.cls;
  }
  return mix.entries.back().cls;
}

namespace {

/// Randomized selective lineitem scan in the shape of Q6: a date window,
/// a discount band, and a quantity cutoff drawn per arrival, feeding one of
/// several aggregates. Two stages (partial agg per worker, final agg), so
/// ad-hoc traffic still exercises shuffle writes and the second scheduling
/// wave.
engine::QueryPlan BuildAdHoc(Rng* rng) {
  using engine::And;
  using engine::Arith;
  using engine::Between;
  using engine::Cmp;
  using engine::Col;
  using engine::InputSpec;
  using engine::Num;
  using engine::OperatorSpec;
  using engine::PipelineSpec;
  using engine::QueryPlan;
  const int year = static_cast<int>(rng->UniformInt(1993, 1996));
  const double lo_discount = 0.01 * static_cast<double>(rng->UniformInt(1, 6));
  const double hi_discount = lo_discount + 0.02;
  const double quantity_cut = static_cast<double>(rng->UniformInt(10, 40));
  const int agg_pick = static_cast<int>(rng->UniformInt(0, 2));

  QueryPlan plan;
  plan.query_name = "adhoc";

  PipelineSpec scan;
  scan.id = 1;
  InputSpec input;
  input.type = InputSpec::Type::kTable;
  input.table = "lineitem";
  input.columns = {"l_shipdate", "l_discount", "l_quantity",
                   "l_extendedprice"};
  const double from = static_cast<double>(data::DaysSinceEpoch(year, 1, 1));
  const double to = static_cast<double>(data::DaysSinceEpoch(year + 1, 1, 1));
  input.pushdown =
      And(And(Cmp(">=", Col("l_shipdate"), Num(from)),
              Cmp("<", Col("l_shipdate"), Num(to))),
          And(Between(Col("l_discount"), Num(lo_discount), Num(hi_discount)),
              Cmp("<", Col("l_quantity"), Num(quantity_cut))));
  // Synthetic hint: ~3/11 discount steps times the quantity fraction.
  input.pushdown_selectivity = 0.27 * quantity_cut / 50.0;
  scan.inputs.push_back(std::move(input));

  OperatorSpec project;
  project.op = "project";
  project.projections.emplace_back(
      "metric", Arith("*", Col("l_extendedprice"), Col("l_discount")));
  scan.ops.push_back(std::move(project));

  const char* agg_fn = agg_pick == 0 ? "sum" : agg_pick == 1 ? "min" : "max";
  OperatorSpec partial;
  partial.op = "hash_agg";
  partial.aggregates.push_back({agg_fn, Col("metric"), "metric"});
  partial.groups_hint = 1;
  scan.ops.push_back(std::move(partial));

  OperatorSpec write;
  write.op = "partition_write";
  write.partition_count = 1;
  scan.ops.push_back(std::move(write));
  plan.pipelines.push_back(std::move(scan));

  PipelineSpec final_stage;
  final_stage.id = 2;
  final_stage.depends_on = {1};
  InputSpec shuffle;
  shuffle.type = InputSpec::Type::kShuffle;
  shuffle.upstream_pipeline = 1;
  final_stage.inputs.push_back(std::move(shuffle));
  OperatorSpec final_agg;
  final_agg.op = "hash_agg";
  final_agg.aggregates.push_back({agg_fn, Col("metric"), "metric"});
  final_agg.groups_hint = 1;
  final_stage.ops.push_back(std::move(final_agg));
  OperatorSpec collect;
  collect.op = "collect";
  final_stage.ops.push_back(std::move(collect));
  plan.pipelines.push_back(std::move(final_stage));
  return plan;
}

}  // namespace

engine::QueryPlan BuildPlanFor(QueryClass cls,
                               const engine::QuerySuiteOptions& options,
                               Rng* rng) {
  switch (cls) {
    case QueryClass::kTpchQ1:
      return engine::BuildTpchQ1();
    case QueryClass::kTpchQ6:
      return engine::BuildTpchQ6();
    case QueryClass::kTpchQ12:
      return engine::BuildTpchQ12(options);
    case QueryClass::kTpcxBbQ3:
      return engine::BuildTpcxBbQ3(options);
    case QueryClass::kAdHoc:
      return BuildAdHoc(rng);
  }
  return engine::BuildTpchQ6();
}

}  // namespace skyrise::serving
