#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

/// \file admission.h
/// Multi-tenant admission control for the serving frontend: per-tenant
/// concurrency quotas, a global in-flight cap (the frontend's own budget
/// against the shared Lambda fleet, below the account limit so the platform
/// is not the first thing to throttle), bounded per-tenant backlogs, and
/// weighted fair scheduling over the queued work.
///
/// Fairness is stride scheduling: each tenant carries a virtual "pass";
/// dispatching from a tenant advances its pass by 1/weight, and the
/// eligible backlogged tenant with the smallest pass dispatches next (ties
/// break by tenant index). Under saturation, tenants with 2:1 weights
/// therefore complete queries at a 2:1 ratio. Pure integer/double state,
/// no RNG, no clock — decisions are a deterministic function of the
/// offer/release sequence.

namespace skyrise::serving {

struct TenantPolicy {
  std::string name;
  /// Queries this tenant may have in flight at once; at the quota, new
  /// arrivals queue instead of invoking.
  int max_concurrent = 4;
  /// Weighted-fair share of dispatch slots under contention.
  double weight = 1.0;
  /// Backlog bound; arrivals beyond it are shed (admission-level 429).
  int max_queue = 10000;
};

class AdmissionController {
 public:
  struct Options {
    /// Total in-flight queries across all tenants; <= 0 means unlimited.
    int global_max_concurrent = 64;
  };

  enum class Decision {
    kDispatch,  ///< Admitted immediately; caller launches the query now.
    kQueue,     ///< Quota/cap reached (or backlog ahead); parked in order.
    kShed,      ///< Backlog full; rejected outright.
  };

  struct TenantStats {
    int64_t arrivals = 0;
    int64_t dispatched = 0;  ///< Admitted to the platform (direct + queued).
    int64_t queued = 0;      ///< Arrivals that had to wait.
    int64_t shed = 0;
    int in_flight = 0;
    int peak_in_flight = 0;
    int queue_depth = 0;
    int peak_queue_depth = 0;
  };

  AdmissionController(const Options& options,
                      std::vector<TenantPolicy> tenants);

  int tenant_count() const { return static_cast<int>(tenants_.size()); }
  const TenantPolicy& policy(int tenant) const {
    return tenants_[static_cast<size_t>(tenant)].policy;
  }
  const TenantStats& stats(int tenant) const {
    return tenants_[static_cast<size_t>(tenant)].stats;
  }
  int global_in_flight() const { return global_in_flight_; }
  int peak_global_in_flight() const { return peak_global_in_flight_; }

  /// Offers one arrival (an opaque item id) for `tenant`. On kDispatch the
  /// slot accounting is already done — the caller must launch the item.
  /// FIFO per tenant: if the tenant already has a backlog, new arrivals
  /// queue behind it even when a slot is free.
  Decision Offer(int tenant, int64_t item);

  /// Returns one query's in-flight slot (on completion or failure). Follow
  /// with a TryDispatchQueued() drain loop to hand freed slots to waiters.
  void Release(int tenant);

  /// Picks the next queued item eligible under quotas and the global cap,
  /// by weighted fair order; accounts it as dispatched. nullopt when
  /// nothing is eligible.
  std::optional<std::pair<int, int64_t>> TryDispatchQueued();

  /// Total queued items across tenants.
  int backlog() const;

 private:
  struct Tenant {
    TenantPolicy policy;
    TenantStats stats;
    std::deque<int64_t> queue;
    double pass = 0;  ///< Stride-scheduling virtual time.
  };

  bool HasFreeSlot(const Tenant& tenant) const;
  void AccountDispatch(Tenant* tenant);

  Options opt_;
  std::vector<Tenant> tenants_;
  int global_in_flight_ = 0;
  int peak_global_in_flight_ = 0;
  /// Pass of the most recent dispatch; newly backlogged tenants start here
  /// so an idle tenant cannot bank service and later starve the others.
  double virtual_time_ = 0;
};

}  // namespace skyrise::serving
