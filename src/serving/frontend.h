#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "engine/engine.h"
#include "faas/function.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serving/admission.h"
#include "serving/arrival.h"
#include "serving/workload.h"
#include "sim/environment.h"

/// \file frontend.h
/// Multi-tenant serving frontend: admits a population of tenants — each
/// with its own arrival process, query mix, quota, and fair-share weight —
/// against one shared compute platform on the single-threaded DES. Queries
/// interleave freely on the event loop (the coordinator publishes per-query
/// grants keyed by query id), and all tenants draw sandboxes from the same
/// warm pool, so cross-tenant contention and reuse are actually modeled.
///
/// Determinism: arrival instants come from per-tenant forks of the sim RNG,
/// admission decisions are pure functions of the offer/release sequence,
/// query ids are `t<tenant>-q<seq>`, and the report walks vectors and
/// std::maps only — two identically-seeded runs produce byte-identical
/// report JSON (pinned by tests/serving).

// skyrise-domain(serving)
namespace skyrise::serving {

struct TenantSpec {
  TenantPolicy policy;
  ArrivalSpec arrival;
  WorkloadMix mix = WorkloadMix::Interactive();
  /// Per-tenant scheduling override (0 = engine context default).
  int partitions_per_worker = 0;
  /// Per-tenant end-to-end query deadline stamped into the coordinator
  /// payload (0 = none; the engine-context policy then applies).
  SimDuration query_deadline = 0;
};

struct ServingOptions {
  /// Arrivals are generated for this long after Start(); in-flight and
  /// queued work then drains.
  SimDuration horizon = Seconds(60);
  /// Frontend-wide in-flight cap (the serving tier's own budget against the
  /// shared fleet); <= 0 = unlimited.
  int global_max_concurrent = 64;
  /// RNG stream id for the frontend (tenant i forks sub-stream i).
  uint64_t rng_stream = 0x5E21;
  /// Plan parameters for the suite query classes.
  engine::QuerySuiteOptions suite;
  /// Concurrency-timeline sampling cadence (<= 0 disables sampling).
  SimDuration sample_period = Seconds(1);
  /// Optional probe recorded with each timeline sample, e.g.
  /// `[&] { return lambda->active_executions(); }` to watch the fleet's
  /// burst-then-ramp admission behavior next to the frontend's own counts.
  std::function<int64_t()> fleet_probe;
};

/// Per-class slice of a tenant (or of the whole run).
struct ClassSlice {
  std::string name;
  int64_t dispatched = 0;
  int64_t completed = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double cost_usd = 0;
  double cost_per_1k_usd = 0;  ///< USD per 1,000 completed queries.
};

struct ServingReport {
  double sim_seconds = 0;

  struct Tenant {
    std::string name;
    int64_t arrivals = 0;
    int64_t dispatched = 0;
    int64_t queued = 0;
    int64_t shed = 0;
    int64_t completed = 0;
    int64_t failed = 0;
    double queries_per_sec = 0;  ///< Completed queries / sim second.
    double p50_ms = 0;           ///< Arrival-to-completion latency.
    double p99_ms = 0;
    double queue_p99_ms = 0;  ///< Arrival-to-dispatch wait.
    double cost_usd = 0;      ///< Span-subtree USD across this tenant's queries.
    double cost_per_1k_usd = 0;
    int peak_in_flight = 0;
    std::vector<ClassSlice> classes;
  };
  std::vector<Tenant> tenants;
  /// Cross-tenant per-class aggregates.
  std::vector<ClassSlice> classes;

  int64_t total_arrivals = 0;
  int64_t total_dispatched = 0;
  int64_t total_completed = 0;
  int64_t total_failed = 0;
  int64_t total_shed = 0;
  double queries_per_sec = 0;
  double p99_ms = 0;
  double total_cost_usd = 0;
  double cost_per_1k_usd = 0;
  int peak_in_flight = 0;

  struct Sample {
    double t_s = 0;
    int in_flight = 0;       ///< Frontend-admitted queries in flight.
    int backlog = 0;         ///< Queued arrivals across tenants.
    int64_t fleet_active = 0;  ///< fleet_probe() value (0 when unset).
  };
  std::vector<Sample> timeline;

  Json ToJson() const;
};

/// Aligned per-tenant SLO table (and a totals row) for terminal output.
std::string RenderSloTable(const ServingReport& report);

class ServingFrontend {
 public:
  /// `engine` is optional: when set, Start() points the engine context's
  /// worker platform at `platform` (the usual single-deployment wiring);
  /// pass nullptr when driving a fake platform or pre-wired context.
  /// `tracer`/`metrics` may be nullptr (cost attribution then reports 0).
  ServingFrontend(sim::SimEnvironment* env, faas::ComputePlatform* platform,
                  engine::QueryEngine* engine, obs::Tracer* tracer,
                  obs::MetricsRegistry* metrics, const ServingOptions& options,
                  std::vector<TenantSpec> tenants);
  SKYRISE_DISALLOW_COPY_AND_ASSIGN(ServingFrontend);

  /// Schedules the first arrival per tenant and the timeline sampler.
  void Start();

  /// True once the arrival horizon has passed and no query is in flight or
  /// queued.
  bool Done() const;

  /// Steps the simulation until Done() or `hard_horizon` (absolute sim
  /// time), whichever comes first.
  void DriveUntil(SimTime hard_horizon);

  /// Builds the scenario report from the completed records (callable any
  /// time; usually after DriveUntil).
  ServingReport Report() const;

  const AdmissionController& admission() const { return admission_; }

 private:
  struct QueryRecord {
    int tenant = 0;
    QueryClass cls = QueryClass::kTpchQ6;
    std::string id;
    engine::QueryPlan plan;
    SimTime arrival = 0;
    SimTime dispatch = -1;
    SimTime complete = -1;
    bool shed = false;
    bool ok = false;
    obs::SpanId span = obs::kNoSpan;
  };

  void OnArrival(int tenant_index);
  void ScheduleNextArrival(int tenant_index);
  void Dispatch(int64_t record_index);
  void OnComplete(int64_t record_index, const Result<Json>& result);
  void DrainQueues();
  void Sample();
  const char* TenantName(int tenant_index) const {
    return tenants_[static_cast<size_t>(tenant_index)].spec.policy.name.c_str();
  }

  struct TenantState {
    TenantSpec spec;
    ArrivalProcess arrivals;
    Rng workload_rng;
    int64_t next_sequence = 0;
    SimTime last_arrival = 0;
    bool arrivals_done = false;

    TenantState(const TenantSpec& s, ArrivalProcess a, Rng rng)
        : spec(s), arrivals(std::move(a)), workload_rng(rng) {}
  };

  sim::SimEnvironment* env_;
  // Client stub for the invocation crossing (ComputePlatform::Invoke).
  // skyrise-check: allow(domain-escape) — client stub for a crossing API.
  faas::ComputePlatform* platform_;
  // The frontend drives query submission through the engine's public
  // entry points only.
  // skyrise-check: allow(domain-escape) — engine entry points only.
  engine::QueryEngine* engine_;
  obs::Tracer* tracer_;
  obs::MetricsRegistry* metrics_;
  ServingOptions opt_;
  std::vector<TenantState> tenants_;
  AdmissionController admission_;
  std::vector<QueryRecord> records_;
  std::vector<ServingReport::Sample> timeline_;
  SimTime start_time_ = 0;
  SimTime horizon_end_ = 0;
  bool started_ = false;
};

}  // namespace skyrise::serving
