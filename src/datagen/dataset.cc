#include "datagen/dataset.h"

#include "common/string_util.h"

namespace skyrise::datagen {

Json DatasetInfo::ToJson() const {
  Json out = Json::Object();
  out["name"] = name;
  Json schema_json = Json::Array();
  for (const auto& field : schema.fields()) {
    Json f = Json::Object();
    f["name"] = field.name;
    f["type"] = data::DataTypeName(field.type);
    schema_json.Append(std::move(f));
  }
  out["schema"] = std::move(schema_json);
  Json parts = Json::Array();
  for (const auto& p : partitions) {
    Json pj = Json::Object();
    pj["key"] = p.key;
    pj["size"] = p.size_bytes;
    pj["rows"] = p.rows;
    parts.Append(std::move(pj));
  }
  out["partitions"] = std::move(parts);
  out["total_bytes"] = total_bytes;
  out["total_rows"] = total_rows;
  return out;
}

Result<DatasetInfo> DatasetInfo::FromJson(const Json& json) {
  if (!json.is_object()) return Status::IoError("manifest is not an object");
  DatasetInfo info;
  info.name = json.GetString("name");
  std::vector<data::Field> fields;
  for (const auto& f : json.Get("schema").AsArray()) {
    const std::string type = f.GetString("type");
    data::DataType dt = data::DataType::kInt64;
    if (type == "double") dt = data::DataType::kDouble;
    if (type == "string") dt = data::DataType::kString;
    if (type == "date") dt = data::DataType::kDate;
    fields.push_back(data::Field{f.GetString("name"), dt});
  }
  info.schema = data::Schema(std::move(fields));
  for (const auto& p : json.Get("partitions").AsArray()) {
    info.partitions.push_back(PartitionInfo{
        p.GetString("key"), p.GetInt("size"), p.GetInt("rows")});
  }
  info.total_bytes = json.GetInt("total_bytes");
  info.total_rows = json.GetInt("total_rows");
  return info;
}

std::string DatasetPartitionKey(const std::string& name, int partition) {
  return StrFormat("tables/%s/part-%05d.cof", name.c_str(), partition);
}

std::string DatasetManifestKey(const std::string& name) {
  return StrFormat("tables/%s/manifest.json", name.c_str());
}

Result<DatasetInfo> UploadDataset(
    storage::StorageService* store, const std::string& name,
    const data::Schema& schema, int partition_count,
    const std::function<data::Chunk(int)>& generator,
    int64_t row_group_rows) {
  DatasetInfo info;
  info.name = name;
  info.schema = schema;
  for (int p = 0; p < partition_count; ++p) {
    data::Chunk chunk = generator(p);
    if (!(chunk.schema() == schema)) {
      return Status::InvalidArgument("generator schema mismatch");
    }
    const std::string bytes =
        format::WriteCofFile(schema, {chunk}, row_group_rows);
    PartitionInfo part;
    part.key = DatasetPartitionKey(name, p);
    part.size_bytes = static_cast<int64_t>(bytes.size());
    part.rows = chunk.rows();
    info.total_bytes += part.size_bytes;
    info.total_rows += part.rows;
    SKYRISE_RETURN_IF_ERROR(
        store->Insert(part.key, storage::Blob::FromString(bytes)));
    info.partitions.push_back(std::move(part));
  }
  SKYRISE_RETURN_IF_ERROR(
      store->Insert(DatasetManifestKey(name),
                    storage::Blob::FromString(info.ToJson().Dump())));
  return info;
}

Result<DatasetInfo> UploadSyntheticDataset(
    storage::StorageService* store, format::SyntheticFileCatalog* catalog,
    const std::string& name, const data::Schema& schema, int partition_count,
    int64_t rows_per_partition, int64_t bytes_per_partition,
    const std::vector<format::SyntheticColumnStats>& stats,
    int64_t row_group_rows) {
  DatasetInfo info;
  info.name = name;
  info.schema = schema;
  for (int p = 0; p < partition_count; ++p) {
    format::FileMeta meta = format::BuildSyntheticFileMeta(
        schema, rows_per_partition, bytes_per_partition, row_group_rows,
        stats);
    PartitionInfo part;
    part.key = DatasetPartitionKey(name, p);
    part.size_bytes = meta.data_size + format::kCofTrailerSize;
    part.rows = rows_per_partition;
    info.total_bytes += part.size_bytes;
    info.total_rows += part.rows;
    SKYRISE_RETURN_IF_ERROR(
        store->Insert(part.key, storage::Blob::Synthetic(part.size_bytes)));
    catalog->Register(part.key, std::move(meta));
    info.partitions.push_back(std::move(part));
  }
  SKYRISE_RETURN_IF_ERROR(
      store->Insert(DatasetManifestKey(name),
                    storage::Blob::FromString(info.ToJson().Dump())));
  return info;
}

Result<DatasetInfo> ReadManifest(const storage::StorageService& store,
                                 const std::string& name) {
  storage::Blob blob;
  SKYRISE_ASSIGN_OR_RETURN(blob, store.Peek(DatasetManifestKey(name)));
  Json json;
  SKYRISE_ASSIGN_OR_RETURN(json, Json::Parse(blob.data()));
  return DatasetInfo::FromJson(json);
}

}  // namespace skyrise::datagen
