#include "datagen/tpcxbb.h"

#include <algorithm>

namespace skyrise::datagen {

using data::DataType;
using data::Field;
using data::Schema;

Schema ClickstreamsSchema() {
  return Schema({
      {"wcs_click_date", DataType::kDate},
      {"wcs_user_sk", DataType::kInt64},
      {"wcs_item_sk", DataType::kInt64},
      {"wcs_sales_sk", DataType::kInt64},  ///< >0 => purchase, 0 => view.
  });
}

Schema ItemSchema() {
  return Schema({
      {"i_item_sk", DataType::kInt64},
      {"i_category_id", DataType::kInt64},
      {"i_current_price", DataType::kDouble},
  });
}

int64_t TotalUsers(const TpcxBbConfig& config) {
  return std::max<int64_t>(
      1, static_cast<int64_t>(config.users_per_sf * config.scale_factor));
}

int64_t TotalItems(const TpcxBbConfig& config) {
  return std::max<int64_t>(
      10, static_cast<int64_t>(config.items_per_sf * config.scale_factor));
}

data::Chunk GenerateClickstreamsPartition(const TpcxBbConfig& config,
                                          int partition,
                                          int partition_count) {
  SKYRISE_CHECK(partition >= 0 && partition < partition_count);
  const int64_t users = TotalUsers(config);
  const int64_t items = TotalItems(config);
  const int64_t first_user = users * partition / partition_count;
  const int64_t user_count =
      users * (partition + 1) / partition_count - first_user;

  data::Chunk chunk = data::Chunk::Empty(ClickstreamsSchema());
  auto& date = chunk.column(0).ints();
  auto& user = chunk.column(1).ints();
  auto& item = chunk.column(2).ints();
  auto& sale = chunk.column(3).ints();

  const int32_t max_day = 365 * 2;  // Two years of click history.
  int64_t next_sale_sk = first_user * 1000 + 1;
  for (int64_t u = first_user; u < first_user + user_count; ++u) {
    Rng rng = Rng(config.seed).Fork(static_cast<uint64_t>(u) + 1);
    // Click count: geometric-ish around the configured mean.
    const int clicks = 1 + static_cast<int>(
                               rng.Exponential(config.clicks_per_user - 1));
    int32_t day = static_cast<int32_t>(rng.UniformInt(0, max_day / 2));
    for (int c = 0; c < clicks; ++c) {
      day += static_cast<int32_t>(rng.Exponential(2.0));
      if (day > max_day) day = max_day;
      date.push_back(day);
      user.push_back(u);
      // Item popularity is skewed (Zipf), as in web click data.
      item.push_back(1 + rng.Zipf(items, 0.8));
      // ~8% of clicks are purchases.
      sale.push_back(rng.Bernoulli(0.08) ? next_sale_sk++ : 0);
    }
  }
  return chunk;
}

data::Chunk GenerateItemTable(const TpcxBbConfig& config) {
  const int64_t items = TotalItems(config);
  data::Chunk chunk = data::Chunk::Empty(ItemSchema());
  auto& sk = chunk.column(0).ints();
  auto& category = chunk.column(1).ints();
  auto& price = chunk.column(2).doubles();
  Rng rng(config.seed ^ 0xABCDEF);
  for (int64_t i = 1; i <= items; ++i) {
    sk.push_back(i);
    category.push_back(1 + rng.UniformInt(0, config.num_categories - 1));
    price.push_back(0.99 + rng.NextDouble() * 300.0);
  }
  return chunk;
}

}  // namespace skyrise::datagen
