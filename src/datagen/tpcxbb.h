#pragma once

#include "common/random.h"
#include "data/chunk.h"

/// \file tpcxbb.h
/// TPCx-BB-style generator for the web_clickstreams and item tables used by
/// the paper's Q3 (an I/O-bound MapReduce-style sessionization job with a
/// UDF). Clickstreams are partitioned by user range so any partition can be
/// generated independently; each user's clicks are a time-ordered stream of
/// item views with occasional purchases.

namespace skyrise::datagen {

data::Schema ClickstreamsSchema();
data::Schema ItemSchema();

struct TpcxBbConfig {
  double scale_factor = 0.01;
  uint64_t seed = 20130601;
  /// Users and items scale linearly; clicks per user follow a heavy-ish
  /// geometric-style distribution around this mean.
  int64_t users_per_sf = 50000;
  int64_t items_per_sf = 2000;
  double clicks_per_user = 20.0;
  int num_categories = 10;
};

int64_t TotalUsers(const TpcxBbConfig& config);
int64_t TotalItems(const TpcxBbConfig& config);

/// Clickstream rows for user-range partition `partition` of
/// `partition_count`, ordered by (user, click date).
data::Chunk GenerateClickstreamsPartition(const TpcxBbConfig& config,
                                          int partition, int partition_count);

/// The (single-partition) item dimension table.
data::Chunk GenerateItemTable(const TpcxBbConfig& config);

}  // namespace skyrise::datagen
