#pragma once

#include "common/random.h"
#include "data/chunk.h"

/// \file tpch.h
/// Deterministic TPC-H-style data generator for the tables the paper's query
/// suite touches (lineitem, orders). Generation is partitioned: partition p
/// of P covers a contiguous order-key range and contains all lineitems of
/// those orders, so joins across partitioned files are consistent and any
/// partition can be (re)generated independently — the property the engine's
/// data-parallel workers rely on.
///
/// Value distributions follow the TPC-H specification closely enough for the
/// paper's queries: quantities 1-50, discounts 0.00-0.10, dates uniform over
/// 1992-1998, the standard flag/mode/priority domains, and selectivities
/// matching the published Q1/Q6/Q12 filter fractions.

namespace skyrise::datagen {

/// Rows per scale factor unit (TPC-H: 6M lineitems, 1.5M orders per SF).
constexpr int64_t kOrdersPerSf = 1500000;
constexpr double kLineitemsPerOrder = 4.0;  ///< Expected (1..7 uniform-ish).

data::Schema LineitemSchema();
data::Schema OrdersSchema();

struct TpchConfig {
  double scale_factor = 0.01;
  uint64_t seed = 19920101;
};

/// Generates lineitem rows for partition `partition` of `partition_count`.
data::Chunk GenerateLineitemPartition(const TpchConfig& config, int partition,
                                      int partition_count);

/// Generates orders rows for partition `partition` of `partition_count`.
data::Chunk GenerateOrdersPartition(const TpchConfig& config, int partition,
                                    int partition_count);

}  // namespace skyrise::datagen
