#include "datagen/tpch.h"

#include <algorithm>
#include <cmath>

namespace skyrise::datagen {

using data::DataType;
using data::Field;
using data::Schema;

Schema LineitemSchema() {
  return Schema({
      {"l_orderkey", DataType::kInt64},
      {"l_partkey", DataType::kInt64},
      {"l_suppkey", DataType::kInt64},
      {"l_linenumber", DataType::kInt64},
      {"l_quantity", DataType::kDouble},
      {"l_extendedprice", DataType::kDouble},
      {"l_discount", DataType::kDouble},
      {"l_tax", DataType::kDouble},
      {"l_returnflag", DataType::kString},
      {"l_linestatus", DataType::kString},
      {"l_shipdate", DataType::kDate},
      {"l_commitdate", DataType::kDate},
      {"l_receiptdate", DataType::kDate},
      {"l_shipinstruct", DataType::kString},
      {"l_shipmode", DataType::kString},
  });
}

Schema OrdersSchema() {
  return Schema({
      {"o_orderkey", DataType::kInt64},
      {"o_custkey", DataType::kInt64},
      {"o_orderstatus", DataType::kString},
      {"o_totalprice", DataType::kDouble},
      {"o_orderdate", DataType::kDate},
      {"o_orderpriority", DataType::kString},
  });
}

namespace {

const char* kShipmodes[] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                            "TRUCK",   "MAIL", "FOB"};
const char* kShipinstruct[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                               "TAKE BACK RETURN"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};

// Date range: 1992-01-01 .. 1998-12-01 (TPC-H order dates), shipped up to
// 122 days later.
const int32_t kMaxOrderDate = data::DaysSinceEpoch(1998, 8, 2);

struct OrderRange {
  int64_t first_order = 0;
  int64_t order_count = 0;
};

OrderRange PartitionOrders(const TpchConfig& config, int partition,
                           int partition_count) {
  const int64_t total =
      std::max<int64_t>(1, static_cast<int64_t>(kOrdersPerSf *
                                                config.scale_factor));
  OrderRange range;
  range.first_order = total * partition / partition_count;
  range.order_count =
      total * (partition + 1) / partition_count - range.first_order;
  return range;
}

/// Per-order deterministic RNG stream: identical values regardless of the
/// partitioning used to generate them.
Rng OrderRng(const TpchConfig& config, int64_t orderkey) {
  return Rng(config.seed).Fork(static_cast<uint64_t>(orderkey) + 1);
}

int LineCount(Rng* rng) { return 1 + static_cast<int>(rng->UniformInt(0, 6)); }

}  // namespace

data::Chunk GenerateLineitemPartition(const TpchConfig& config, int partition,
                                      int partition_count) {
  SKYRISE_CHECK(partition >= 0 && partition < partition_count);
  const OrderRange range = PartitionOrders(config, partition, partition_count);
  data::Chunk chunk = data::Chunk::Empty(LineitemSchema());
  auto& orderkey = chunk.column(0).ints();
  auto& partkey = chunk.column(1).ints();
  auto& suppkey = chunk.column(2).ints();
  auto& linenumber = chunk.column(3).ints();
  auto& quantity = chunk.column(4).doubles();
  auto& extendedprice = chunk.column(5).doubles();
  auto& discount = chunk.column(6).doubles();
  auto& tax = chunk.column(7).doubles();
  auto& returnflag = chunk.column(8).strings();
  auto& linestatus = chunk.column(9).strings();
  auto& shipdate = chunk.column(10).ints();
  auto& commitdate = chunk.column(11).ints();
  auto& receiptdate = chunk.column(12).ints();
  auto& shipinstruct = chunk.column(13).strings();
  auto& shipmode = chunk.column(14).strings();

  const int32_t cutoff = data::DaysSinceEpoch(1995, 6, 17);
  for (int64_t o = range.first_order; o < range.first_order + range.order_count;
       ++o) {
    Rng rng = OrderRng(config, o);
    const int32_t orderdate =
        static_cast<int32_t>(rng.UniformInt(0, kMaxOrderDate));
    const int lines = LineCount(&rng);
    for (int l = 0; l < lines; ++l) {
      orderkey.push_back(o);
      partkey.push_back(rng.UniformInt(1, 200000));
      suppkey.push_back(rng.UniformInt(1, 10000));
      linenumber.push_back(l + 1);
      const double qty = static_cast<double>(rng.UniformInt(1, 50));
      quantity.push_back(qty);
      const double unit_price = 900.0 + rng.NextDouble() * 100100.0 / 50.0;
      extendedprice.push_back(std::round(qty * unit_price * 100) / 100);
      discount.push_back(static_cast<double>(rng.UniformInt(0, 10)) / 100.0);
      tax.push_back(static_cast<double>(rng.UniformInt(0, 8)) / 100.0);
      const int32_t ship =
          orderdate + static_cast<int32_t>(rng.UniformInt(1, 121));
      const int32_t commit =
          orderdate + static_cast<int32_t>(rng.UniformInt(30, 90));
      const int32_t receipt =
          ship + static_cast<int32_t>(rng.UniformInt(1, 30));
      shipdate.push_back(ship);
      commitdate.push_back(commit);
      receiptdate.push_back(receipt);
      // Return flag: R/A for shipped-before-cutoff rows, N otherwise
      // (approximates the TPC-H returnability window).
      if (receipt <= cutoff) {
        returnflag.push_back(rng.Bernoulli(0.5) ? "R" : "A");
      } else {
        returnflag.push_back("N");
      }
      linestatus.push_back(ship > cutoff ? "O" : "F");
      shipinstruct.push_back(
          kShipinstruct[rng.UniformInt(0, 3)]);
      shipmode.push_back(kShipmodes[rng.UniformInt(0, 6)]);
    }
  }
  return chunk;
}

data::Chunk GenerateOrdersPartition(const TpchConfig& config, int partition,
                                    int partition_count) {
  SKYRISE_CHECK(partition >= 0 && partition < partition_count);
  const OrderRange range = PartitionOrders(config, partition, partition_count);
  data::Chunk chunk = data::Chunk::Empty(OrdersSchema());
  auto& orderkey = chunk.column(0).ints();
  auto& custkey = chunk.column(1).ints();
  auto& orderstatus = chunk.column(2).strings();
  auto& totalprice = chunk.column(3).doubles();
  auto& orderdate = chunk.column(4).ints();
  auto& priority = chunk.column(5).strings();

  for (int64_t o = range.first_order; o < range.first_order + range.order_count;
       ++o) {
    // Same stream head as the lineitem generator: order date and line count
    // are the first draws, so the two tables agree on both.
    Rng rng = OrderRng(config, o);
    const int32_t date = static_cast<int32_t>(rng.UniformInt(0, kMaxOrderDate));
    const int lines = LineCount(&rng);
    double total = 0;
    for (int l = 0; l < lines; ++l) {
      const double qty = static_cast<double>(rng.UniformInt(1, 50));
      const double unit_price = 900.0 + rng.NextDouble() * 100100.0 / 50.0;
      total += qty * unit_price;
    }
    orderkey.push_back(o);
    custkey.push_back(rng.UniformInt(1, 150000));
    orderstatus.push_back(rng.Bernoulli(0.5) ? "F" : "O");
    totalprice.push_back(std::round(total * 100) / 100);
    orderdate.push_back(date);
    priority.push_back(kPriorities[rng.UniformInt(0, 4)]);
  }
  return chunk;
}

}  // namespace skyrise::datagen
