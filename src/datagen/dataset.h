#pragma once

#include <functional>
#include <string>
#include <vector>

#include "format/cof.h"
#include "storage/storage_service.h"

/// \file dataset.h
/// Dataset loading: encodes partitioned tables into COF files and registers
/// them in a storage service under `tables/<name>/part-NNNNN.cof` plus a
/// `manifest.json` the coordinator reads for file counts and sizes (the
/// paper's "metadata on the referenced pipeline input datasets").

namespace skyrise::datagen {

struct PartitionInfo {
  std::string key;
  int64_t size_bytes = 0;
  int64_t rows = 0;
};

struct DatasetInfo {
  std::string name;
  data::Schema schema;
  std::vector<PartitionInfo> partitions;
  int64_t total_bytes = 0;
  int64_t total_rows = 0;

  Json ToJson() const;
  [[nodiscard]] static Result<DatasetInfo> FromJson(const Json& json);
};

/// Uploads a real dataset: `generator(partition)` produces each partition's
/// rows, which are COF-encoded and stored. Returns the manifest (also stored
/// as `tables/<name>/manifest.json`).
[[nodiscard]] Result<DatasetInfo> UploadDataset(
    storage::StorageService* store, const std::string& name,
    const data::Schema& schema, int partition_count,
    const std::function<data::Chunk(int)>& generator,
    int64_t row_group_rows = 65536);

/// Uploads a synthetic dataset: footers are registered in `catalog`, blobs
/// are size-only. `rows_per_partition` and `bytes_per_partition` set the
/// geometry; `stats` clusters per-column value ranges across row groups.
[[nodiscard]] Result<DatasetInfo> UploadSyntheticDataset(
    storage::StorageService* store, format::SyntheticFileCatalog* catalog,
    const std::string& name, const data::Schema& schema, int partition_count,
    int64_t rows_per_partition, int64_t bytes_per_partition,
    const std::vector<format::SyntheticColumnStats>& stats,
    int64_t row_group_rows = 1 << 20);

/// Reads a dataset manifest back from storage (instant control-plane read;
/// the coordinator's timed metadata fetch goes through the data plane).
[[nodiscard]] Result<DatasetInfo> ReadManifest(const storage::StorageService& store,
                                 const std::string& name);

/// Key helpers.
std::string DatasetPartitionKey(const std::string& name, int partition);
std::string DatasetManifestKey(const std::string& name);

}  // namespace skyrise::datagen
