#include "storage/retry_client.h"

#include <algorithm>
#include <cmath>

namespace skyrise::storage {

namespace {

/// Shared between an in-flight attempt and its timeout event: whichever
/// fires first claims the attempt; the loser becomes a no-op.
struct AttemptGate {
  bool settled = false;
  bool Claim() {
    if (settled) return false;
    settled = true;
    return true;
  }
};

}  // namespace

RetryClient::RetryClient(sim::SimEnvironment* env, StorageService* service,
                         const Options& options, uint64_t rng_stream)
    : env_(env),
      service_(service),
      opt_(options),
      rng_(env->ForkRng(rng_stream)) {}

SimDuration RetryClient::TimeoutFor(int64_t expected_bytes) const {
  SimDuration timeout = opt_.request_timeout;
  if (opt_.timeout_per_mib > 0 && expected_bytes > 0) {
    timeout += static_cast<SimDuration>(
        opt_.timeout_per_mib * (static_cast<double>(expected_bytes) / kMiB));
  }
  return timeout;
}

SimDuration RetryClient::BackoffDelay(int attempt) {
  const double factor = std::pow(2.0, attempt);
  const SimDuration ceiling = std::min<SimDuration>(
      opt_.backoff_cap,
      static_cast<SimDuration>(opt_.backoff_base * factor));
  if (!opt_.full_jitter) return ceiling;
  return static_cast<SimDuration>(rng_.NextDouble() *
                                  static_cast<double>(ceiling));
}

void RetryClient::Get(const std::string& key, const ClientContext& ctx,
                      GetCallback callback) {
  AttemptGet(key, 0, -1, ctx, 0, std::move(callback));
}

void RetryClient::GetRange(const std::string& key, int64_t offset,
                           int64_t length, const ClientContext& ctx,
                           GetCallback callback) {
  AttemptGet(key, offset, length, ctx, 0, std::move(callback));
}

void RetryClient::AttemptGet(const std::string& key, int64_t offset,
                             int64_t length, const ClientContext& ctx,
                             int attempt, GetCallback callback) {
  ++stats_.attempts;
  auto gate = std::make_shared<AttemptGate>();
  auto shared_cb = std::make_shared<GetCallback>(std::move(callback));

  auto retry_or_fail = [this, key, offset, length, ctx, attempt,
                        shared_cb](Status error) {
    if (attempt + 1 >= opt_.max_attempts) {
      ++stats_.permanent_failures;
      (*shared_cb)(std::move(error));
      return;
    }
    env_->Schedule(BackoffDelay(attempt),
                   [this, key, offset, length, ctx, attempt, shared_cb] {
                     AttemptGet(key, offset, length, ctx, attempt + 1,
                                std::move(*shared_cb));
                   });
  };

  const SimDuration timeout = static_cast<SimDuration>(
      static_cast<double>(TimeoutFor(length >= 0 ? length : 0)) *
      std::pow(opt_.timeout_growth, attempt));
  const sim::EventId timeout_event = env_->Schedule(
      timeout, [this, gate, retry_or_fail]() mutable {
        if (!gate->Claim()) return;
        ++stats_.timeouts;
        retry_or_fail(Status::DeadlineExceeded("request timed out"));
      });

  service_->GetRange(
      key, offset, length, ctx,
      [this, gate, timeout_event, retry_or_fail,
       shared_cb](Result<Blob> result) mutable {
        if (!gate->Claim()) return;  // Timed out; stale response.
        env_->Cancel(timeout_event);
        if (result.ok()) {
          ++stats_.successes;
          (*shared_cb)(std::move(result));
          return;
        }
        Status st = result.status();
        if (st.IsResourceExhausted()) ++stats_.throttles;
        if (st.IsRetriable()) {
          // Throttles (503 SlowDown), timeouts, and transient I/O errors
          // (500 InternalError) are worth another attempt.
          retry_or_fail(std::move(st));
        } else {
          // NotFound, InvalidArgument, etc. will not heal with time: fail
          // fast instead of burning the retry budget.
          ++stats_.fail_fasts;
          ++stats_.permanent_failures;
          (*shared_cb)(std::move(st));
        }
      });
}

void RetryClient::Put(const std::string& key, Blob data,
                      const ClientContext& ctx, PutCallback callback) {
  AttemptPut(key, std::move(data), ctx, 0, std::move(callback));
}

void RetryClient::AttemptPut(const std::string& key, Blob data,
                             const ClientContext& ctx, int attempt,
                             PutCallback callback) {
  ++stats_.attempts;
  auto gate = std::make_shared<AttemptGate>();
  auto shared_cb = std::make_shared<PutCallback>(std::move(callback));

  auto retry_or_fail = [this, key, data, ctx, attempt,
                        shared_cb](Status error) {
    if (attempt + 1 >= opt_.max_attempts) {
      ++stats_.permanent_failures;
      (*shared_cb)(std::move(error));
      return;
    }
    env_->Schedule(BackoffDelay(attempt),
                   [this, key, data, ctx, attempt, shared_cb] {
                     AttemptPut(key, data, ctx, attempt + 1,
                                std::move(*shared_cb));
                   });
  };

  const SimDuration timeout = static_cast<SimDuration>(
      static_cast<double>(TimeoutFor(data.size())) *
      std::pow(opt_.timeout_growth, attempt));
  const sim::EventId timeout_event =
      env_->Schedule(timeout, [this, gate, retry_or_fail]() mutable {
        if (!gate->Claim()) return;
        ++stats_.timeouts;
        retry_or_fail(Status::DeadlineExceeded("request timed out"));
      });

  service_->Put(key, data, ctx,
                [this, gate, timeout_event, retry_or_fail,
                 shared_cb](Status status) mutable {
                  if (!gate->Claim()) return;
                  env_->Cancel(timeout_event);
                  if (status.ok()) {
                    ++stats_.successes;
                    (*shared_cb)(std::move(status));
                    return;
                  }
                  if (status.IsResourceExhausted()) ++stats_.throttles;
                  if (status.IsRetriable()) {
                    retry_or_fail(std::move(status));
                  } else {
                    ++stats_.fail_fasts;
                    ++stats_.permanent_failures;
                    (*shared_cb)(std::move(status));
                  }
                });
}

}  // namespace skyrise::storage
