#include "storage/retry_client.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace skyrise::storage {

namespace {

/// Shared between an in-flight attempt and its timeout event: whichever
/// fires first claims the attempt; the loser becomes a no-op.
struct AttemptGate {
  bool settled = false;
  bool Claim() {
    if (settled) return false;
    settled = true;
    return true;
  }
};

}  // namespace

RetryClient::RetryClient(sim::SimEnvironment* env, StorageService* service,
                         const Options& options, uint64_t rng_stream)
    : env_(env),
      service_(service),
      opt_(options),
      rng_(env->ForkRng(rng_stream)) {}

SimDuration RetryClient::TimeoutFor(int64_t expected_bytes) const {
  SimDuration timeout = opt_.request_timeout;
  if (opt_.timeout_per_mib > 0 && expected_bytes > 0) {
    timeout += static_cast<SimDuration>(
        opt_.timeout_per_mib * (static_cast<double>(expected_bytes) / kMiB));
  }
  return timeout;
}

SimDuration RetryClient::BackoffDelay(int attempt) {
  const double factor = std::pow(2.0, attempt);
  const SimDuration ceiling = std::min<SimDuration>(
      opt_.backoff_cap,
      static_cast<SimDuration>(opt_.backoff_base * factor));
  if (!opt_.full_jitter) return ceiling;
  return static_cast<SimDuration>(rng_.NextDouble() *
                                  static_cast<double>(ceiling));
}

std::string RetryClient::Track() const {
  return "storage/" + service_->service_name();
}

std::string RetryClient::MetricPrefix() const {
  return "storage." + service_->service_name();
}

Status RetryClient::AdmitAttempt(const ClientContext& ctx, int attempt,
                                 obs::SpanId req_span) {
  const SimTime now = env_->now();
  if (ctx.breaker != nullptr && !ctx.breaker->Allow(now)) {
    ++stats_.breaker_rejections;
    ++stats_.permanent_failures;
    if (ctx.metrics != nullptr) {
      ctx.metrics->Add(MetricPrefix() + ".breaker_rejections");
      ctx.metrics->Add(MetricPrefix() + ".permanent_failures");
    }
    if (ctx.tracer != nullptr) {
      ctx.tracer->SetArg(req_span, "shed", Json("breaker_open"));
      ctx.tracer->SetArg(req_span, "attempts", Json(attempt));
    }
    return Status::ResourceExhausted(StrFormat(
        "%s circuit open; retry after %lld us",
        ctx.breaker->options().name.c_str(),
        static_cast<long long>(ctx.breaker->RetryAfter(now))));
  }
  if (ctx.deadline.Expired(now)) {
    ++stats_.deadline_rejections;
    ++stats_.permanent_failures;
    if (ctx.metrics != nullptr) {
      ctx.metrics->Add(MetricPrefix() + ".deadline_rejections");
      ctx.metrics->Add(MetricPrefix() + ".permanent_failures");
    }
    if (ctx.tracer != nullptr) {
      ctx.tracer->SetArg(req_span, "shed", Json("deadline"));
      ctx.tracer->SetArg(req_span, "attempts", Json(attempt));
    }
    return Status::DeadlineExceeded("deadline expired before storage attempt");
  }
  return Status::OK();
}

void RetryClient::Get(const std::string& key, const ClientContext& ctx,
                      GetCallback callback) {
  GetRange(key, 0, -1, ctx, std::move(callback));
}

// skyrise-domain-crossing(storage client API: issues the storage read RPC with retry and backoff on the caller's behalf)
void RetryClient::GetRange(const std::string& key, int64_t offset,
                           int64_t length, const ClientContext& ctx,
                           GetCallback callback) {
  obs::SpanId req = obs::kNoSpan;
  if (ctx.tracer != nullptr) {
    req = ctx.tracer->Begin(Track(), "get " + key, "storage", ctx.span);
    ctx.tracer->SetArg(req, "key", Json(key));
    ctx.tracer->SetArg(req, "offset", Json(offset));
    ctx.tracer->SetArg(req, "length", Json(length));
  }
  if (ctx.tracer != nullptr || ctx.metrics != nullptr) {
    const SimTime req_start = env_->now();
    auto inner = std::make_shared<GetCallback>(std::move(callback));
    callback = [this, ctx, req, req_start, inner](Result<Blob> result) {
      if (ctx.metrics != nullptr) {
        ctx.metrics->Record(MetricPrefix() + ".request_ms",
                            ToMillis(env_->now() - req_start));
      }
      if (ctx.tracer != nullptr) {
        ctx.tracer->EndWith(req, result.ok() ? "ok" : "error");
      }
      (*inner)(std::move(result));
    };
  }
  AttemptGet(key, offset, length, ctx, 0, req, std::move(callback));
}

void RetryClient::AttemptGet(const std::string& key, int64_t offset,
                             int64_t length, const ClientContext& ctx,
                             int attempt, obs::SpanId req_span,
                             GetCallback callback) {
  if (Status admit = AdmitAttempt(ctx, attempt, req_span); !admit.ok()) {
    // Shed before any work is issued; delivered asynchronously so callers
    // see the same callback discipline as a served request.
    auto cb = std::make_shared<GetCallback>(std::move(callback));
    env_->Schedule(0, [cb, admit] { (*cb)(admit); });
    return;
  }
  ++stats_.attempts;
  if (ctx.metrics != nullptr) ctx.metrics->Add(MetricPrefix() + ".attempts");
  auto gate = std::make_shared<AttemptGate>();
  auto shared_cb = std::make_shared<GetCallback>(std::move(callback));

  ClientContext attempt_ctx = ctx;
  obs::SpanId att = obs::kNoSpan;
  const SimTime att_start = env_->now();
  if (ctx.tracer != nullptr) {
    att = ctx.tracer->Begin(Track(), StrFormat("attempt %d", attempt + 1),
                            "storage", req_span);
    attempt_ctx.span = att;
  }
  auto settle_attempt = [this, ctx, att, att_start](const char* outcome) {
    if (ctx.tracer != nullptr) ctx.tracer->EndWith(att, outcome);
    if (ctx.metrics != nullptr) {
      ctx.metrics->Record(MetricPrefix() + ".attempt_ms",
                          ToMillis(env_->now() - att_start));
    }
  };

  auto retry_or_fail = [this, key, offset, length, ctx, attempt, req_span,
                        shared_cb](Status error) {
    auto give_up = [this, &ctx, attempt, req_span, &shared_cb](Status fin) {
      ++stats_.permanent_failures;
      if (ctx.metrics != nullptr) {
        ctx.metrics->Add(MetricPrefix() + ".permanent_failures");
      }
      if (ctx.tracer != nullptr) {
        ctx.tracer->SetArg(req_span, "attempts", Json(attempt + 1));
      }
      (*shared_cb)(std::move(fin));
    };
    if (attempt + 1 >= opt_.max_attempts) {
      give_up(std::move(error));
      return;
    }
    const SimTime now = env_->now();
    if (ctx.deadline.Expired(now)) {
      ++stats_.deadline_rejections;
      if (ctx.metrics != nullptr) {
        ctx.metrics->Add(MetricPrefix() + ".deadline_rejections");
      }
      give_up(Status::DeadlineExceeded(
          StrFormat("deadline exhausted after %d attempts: ", attempt + 1) +
          error.message()));
      return;
    }
    if (ctx.retry_budget != nullptr && !ctx.retry_budget->TryAcquire()) {
      ++stats_.budget_denials;
      if (ctx.metrics != nullptr) {
        ctx.metrics->Add(MetricPrefix() + ".budget_denials");
      }
      give_up(Status::ResourceExhausted(
          StrFormat("retry budget exhausted after %d attempts: ",
                    attempt + 1) +
          error.message()));
      return;
    }
    if (ctx.metrics != nullptr) ctx.metrics->Add(MetricPrefix() + ".retries");
    obs::SpanId backoff = obs::kNoSpan;
    if (ctx.tracer != nullptr) {
      backoff = ctx.tracer->Begin(Track(), "backoff", "storage", req_span);
    }
    const SimDuration wait = ctx.deadline.Clamp(now, BackoffDelay(attempt));
    env_->Schedule(wait, [this, key, offset, length, ctx, attempt, req_span,
                          backoff, shared_cb] {
      if (ctx.tracer != nullptr) ctx.tracer->End(backoff);
      AttemptGet(key, offset, length, ctx, attempt + 1, req_span,
                 std::move(*shared_cb));
    });
  };

  const SimDuration timeout = ctx.deadline.Clamp(
      env_->now(),
      static_cast<SimDuration>(
          static_cast<double>(TimeoutFor(length >= 0 ? length : 0)) *
          std::pow(opt_.timeout_growth, attempt)));
  const sim::EventId timeout_event = env_->Schedule(
      timeout, [this, ctx, gate, settle_attempt, retry_or_fail]() mutable {
        if (!gate->Claim()) return;
        ++stats_.timeouts;
        if (ctx.metrics != nullptr) {
          ctx.metrics->Add(MetricPrefix() + ".timeouts");
        }
        if (ctx.breaker != nullptr) ctx.breaker->RecordFailure(env_->now());
        settle_attempt("timeout");
        retry_or_fail(Status::DeadlineExceeded("request timed out"));
      });

  service_->GetRange(
      key, offset, length, attempt_ctx,
      [this, ctx, attempt, req_span, gate, timeout_event, settle_attempt,
       retry_or_fail, shared_cb](Result<Blob> result) mutable {
        if (!gate->Claim()) return;  // Timed out; stale response.
        env_->Cancel(timeout_event);
        if (result.ok()) {
          ++stats_.successes;
          if (ctx.metrics != nullptr) {
            ctx.metrics->Add(MetricPrefix() + ".successes");
          }
          if (ctx.breaker != nullptr) ctx.breaker->RecordSuccess(env_->now());
          if (ctx.retry_budget != nullptr) ctx.retry_budget->RecordSuccess();
          settle_attempt("ok");
          if (ctx.tracer != nullptr) {
            ctx.tracer->SetArg(req_span, "attempts", Json(attempt + 1));
          }
          (*shared_cb)(std::move(result));
          return;
        }
        Status st = result.status();
        if (st.IsResourceExhausted()) {
          ++stats_.throttles;
          if (ctx.metrics != nullptr) {
            ctx.metrics->Add(MetricPrefix() + ".throttles");
          }
        }
        if (st.IsRetriable()) {
          // Throttles (503 SlowDown), timeouts, and transient I/O errors
          // (500 InternalError) are worth another attempt.
          if (ctx.breaker != nullptr) ctx.breaker->RecordFailure(env_->now());
          settle_attempt(st.IsResourceExhausted() ? "throttle" : "error");
          retry_or_fail(std::move(st));
        } else {
          // NotFound, InvalidArgument, etc. will not heal with time: fail
          // fast instead of burning the retry budget.
          ++stats_.fail_fasts;
          ++stats_.permanent_failures;
          if (ctx.metrics != nullptr) {
            ctx.metrics->Add(MetricPrefix() + ".fail_fasts");
            ctx.metrics->Add(MetricPrefix() + ".permanent_failures");
          }
          settle_attempt("fail_fast");
          if (ctx.tracer != nullptr) {
            ctx.tracer->SetArg(req_span, "attempts", Json(attempt + 1));
          }
          (*shared_cb)(std::move(st));
        }
      });
}

// skyrise-domain-crossing(storage client API: issues the storage write RPC with retry and backoff on the caller's behalf)
void RetryClient::Put(const std::string& key, Blob data,
                      const ClientContext& ctx, PutCallback callback) {
  obs::SpanId req = obs::kNoSpan;
  if (ctx.tracer != nullptr) {
    req = ctx.tracer->Begin(Track(), "put " + key, "storage", ctx.span);
    ctx.tracer->SetArg(req, "key", Json(key));
    ctx.tracer->SetArg(req, "bytes", Json(data.size()));
  }
  if (ctx.tracer != nullptr || ctx.metrics != nullptr) {
    const SimTime req_start = env_->now();
    auto inner = std::make_shared<PutCallback>(std::move(callback));
    callback = [this, ctx, req, req_start, inner](Status status) {
      if (ctx.metrics != nullptr) {
        ctx.metrics->Record(MetricPrefix() + ".request_ms",
                            ToMillis(env_->now() - req_start));
      }
      if (ctx.tracer != nullptr) {
        ctx.tracer->EndWith(req, status.ok() ? "ok" : "error");
      }
      (*inner)(std::move(status));
    };
  }
  AttemptPut(key, std::move(data), ctx, 0, req, std::move(callback));
}

void RetryClient::AttemptPut(const std::string& key, Blob data,
                             const ClientContext& ctx, int attempt,
                             obs::SpanId req_span, PutCallback callback) {
  if (Status admit = AdmitAttempt(ctx, attempt, req_span); !admit.ok()) {
    auto cb = std::make_shared<PutCallback>(std::move(callback));
    env_->Schedule(0, [cb, admit] { (*cb)(admit); });
    return;
  }
  ++stats_.attempts;
  if (ctx.metrics != nullptr) ctx.metrics->Add(MetricPrefix() + ".attempts");
  auto gate = std::make_shared<AttemptGate>();
  auto shared_cb = std::make_shared<PutCallback>(std::move(callback));

  ClientContext attempt_ctx = ctx;
  obs::SpanId att = obs::kNoSpan;
  const SimTime att_start = env_->now();
  if (ctx.tracer != nullptr) {
    att = ctx.tracer->Begin(Track(), StrFormat("attempt %d", attempt + 1),
                            "storage", req_span);
    attempt_ctx.span = att;
  }
  auto settle_attempt = [this, ctx, att, att_start](const char* outcome) {
    if (ctx.tracer != nullptr) ctx.tracer->EndWith(att, outcome);
    if (ctx.metrics != nullptr) {
      ctx.metrics->Record(MetricPrefix() + ".attempt_ms",
                          ToMillis(env_->now() - att_start));
    }
  };

  auto retry_or_fail = [this, key, data, ctx, attempt, req_span,
                        shared_cb](Status error) {
    auto give_up = [this, &ctx, attempt, req_span, &shared_cb](Status fin) {
      ++stats_.permanent_failures;
      if (ctx.metrics != nullptr) {
        ctx.metrics->Add(MetricPrefix() + ".permanent_failures");
      }
      if (ctx.tracer != nullptr) {
        ctx.tracer->SetArg(req_span, "attempts", Json(attempt + 1));
      }
      (*shared_cb)(std::move(fin));
    };
    if (attempt + 1 >= opt_.max_attempts) {
      give_up(std::move(error));
      return;
    }
    const SimTime now = env_->now();
    if (ctx.deadline.Expired(now)) {
      ++stats_.deadline_rejections;
      if (ctx.metrics != nullptr) {
        ctx.metrics->Add(MetricPrefix() + ".deadline_rejections");
      }
      give_up(Status::DeadlineExceeded(
          StrFormat("deadline exhausted after %d attempts: ", attempt + 1) +
          error.message()));
      return;
    }
    if (ctx.retry_budget != nullptr && !ctx.retry_budget->TryAcquire()) {
      ++stats_.budget_denials;
      if (ctx.metrics != nullptr) {
        ctx.metrics->Add(MetricPrefix() + ".budget_denials");
      }
      give_up(Status::ResourceExhausted(
          StrFormat("retry budget exhausted after %d attempts: ",
                    attempt + 1) +
          error.message()));
      return;
    }
    if (ctx.metrics != nullptr) ctx.metrics->Add(MetricPrefix() + ".retries");
    obs::SpanId backoff = obs::kNoSpan;
    if (ctx.tracer != nullptr) {
      backoff = ctx.tracer->Begin(Track(), "backoff", "storage", req_span);
    }
    const SimDuration wait = ctx.deadline.Clamp(now, BackoffDelay(attempt));
    env_->Schedule(wait,
                   [this, key, data, ctx, attempt, req_span, backoff,
                    shared_cb] {
                     if (ctx.tracer != nullptr) ctx.tracer->End(backoff);
                     AttemptPut(key, data, ctx, attempt + 1, req_span,
                                std::move(*shared_cb));
                   });
  };

  const SimDuration timeout = ctx.deadline.Clamp(
      env_->now(), static_cast<SimDuration>(
                       static_cast<double>(TimeoutFor(data.size())) *
                       std::pow(opt_.timeout_growth, attempt)));
  const sim::EventId timeout_event = env_->Schedule(
      timeout, [this, ctx, gate, settle_attempt, retry_or_fail]() mutable {
        if (!gate->Claim()) return;
        ++stats_.timeouts;
        if (ctx.metrics != nullptr) {
          ctx.metrics->Add(MetricPrefix() + ".timeouts");
        }
        if (ctx.breaker != nullptr) ctx.breaker->RecordFailure(env_->now());
        settle_attempt("timeout");
        retry_or_fail(Status::DeadlineExceeded("request timed out"));
      });

  service_->Put(
      key, data, attempt_ctx,
      [this, ctx, attempt, req_span, gate, timeout_event, settle_attempt,
       retry_or_fail, shared_cb](Status status) mutable {
        if (!gate->Claim()) return;
        env_->Cancel(timeout_event);
        if (status.ok()) {
          ++stats_.successes;
          if (ctx.metrics != nullptr) {
            ctx.metrics->Add(MetricPrefix() + ".successes");
          }
          if (ctx.breaker != nullptr) ctx.breaker->RecordSuccess(env_->now());
          if (ctx.retry_budget != nullptr) ctx.retry_budget->RecordSuccess();
          settle_attempt("ok");
          if (ctx.tracer != nullptr) {
            ctx.tracer->SetArg(req_span, "attempts", Json(attempt + 1));
          }
          (*shared_cb)(std::move(status));
          return;
        }
        if (status.IsResourceExhausted()) {
          ++stats_.throttles;
          if (ctx.metrics != nullptr) {
            ctx.metrics->Add(MetricPrefix() + ".throttles");
          }
        }
        if (status.IsRetriable()) {
          if (ctx.breaker != nullptr) ctx.breaker->RecordFailure(env_->now());
          settle_attempt(status.IsResourceExhausted() ? "throttle" : "error");
          retry_or_fail(std::move(status));
        } else {
          ++stats_.fail_fasts;
          ++stats_.permanent_failures;
          if (ctx.metrics != nullptr) {
            ctx.metrics->Add(MetricPrefix() + ".fail_fasts");
            ctx.metrics->Add(MetricPrefix() + ".permanent_failures");
          }
          settle_attempt("fail_fast");
          if (ctx.tracer != nullptr) {
            ctx.tracer->SetArg(req_span, "attempts", Json(attempt + 1));
          }
          (*shared_cb)(std::move(status));
        }
      });
}

}  // namespace skyrise::storage
