#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/circuit_breaker.h"
#include "common/deadline.h"
#include "common/result.h"
#include "common/retry_budget.h"
#include "common/units.h"
#include "net/fabric_driver.h"
#include "net/nic.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pricing/cost_meter.h"
#include "storage/blob.h"

/// \file storage_service.h
/// Abstract serverless storage interface (the HTTP Get/Put API of Fig. 2).
/// Requests execute asynchronously on the simulation clock: admission
/// (quotas/throttling) -> first-byte latency -> optional payload streaming
/// through the network fabric -> completion callback.

// skyrise-domain(storage-partition)
namespace skyrise::storage {

/// Per-client request context. When `nic` and `fabric` are set, payloads at
/// or above the service's streaming threshold move through the fluid network
/// (so a Lambda client's burst budget gates its scan throughput); otherwise
/// transfer time is folded into the sampled latency.
struct ClientContext {
  // The requesting client's NIC, passed so streaming transfers go through
  // the StartTransfer crossing.
  // skyrise-check: allow(domain-escape) — NIC attachment, crossings only.
  net::Nic* nic = nullptr;
  // skyrise-check: allow(domain-escape) — network attachment, see nic.
  net::FabricDriver* fabric = nullptr;
  net::VpcId vpc = net::kNoVpc;
  pricing::CostMeter* meter = nullptr;  ///< Request metering hook (optional).
  obs::Tracer* tracer = nullptr;        ///< Span sink (optional).
  obs::SpanId span = obs::kNoSpan;      ///< Parent span for request spans.
  obs::MetricsRegistry* metrics = nullptr;  ///< Counter sink (optional).

  // --- Overload-robustness plumbing (all optional; defaults change
  // nothing). The retrying client clamps per-attempt timeouts and backoff
  // waits against `deadline`, draws every retry from `retry_budget`, and
  // sheds through `breaker` — so a query's storage traffic is bounded by
  // what the query has left, not by per-call max_attempts arithmetic.
  Deadline deadline;                    ///< End-to-end request deadline.
  RetryBudget* retry_budget = nullptr;  ///< Shared per-query retry tokens.
  CircuitBreaker* breaker = nullptr;    ///< Per-service breaker (shared).
};

using GetCallback = std::function<void(Result<Blob>)>;
using PutCallback = std::function<void(Status)>;

struct ObjectInfo {
  std::string key;
  int64_t size = 0;
};

class StorageService {
 public:
  virtual ~StorageService() = default;

  /// Pricing/metering identifier: "s3", "s3express", "dynamodb", "efs".
  virtual const std::string& service_name() const = 0;

  /// Asynchronous full-object read.
  virtual void Get(const std::string& key, const ClientContext& ctx,
                   GetCallback callback) = 0;

  /// Asynchronous byte-range read (length -1 => to the end).
  virtual void GetRange(const std::string& key, int64_t offset, int64_t length,
                        const ClientContext& ctx, GetCallback callback) = 0;

  /// Asynchronous write (full object replace).
  virtual void Put(const std::string& key, Blob data, const ClientContext& ctx,
                   PutCallback callback) = 0;

  // --- Instant control-plane helpers (no simulated latency). Used for
  // dataset setup, metadata lookups in tests, and result verification.

  [[nodiscard]] virtual Status Insert(const std::string& key, Blob data) = 0;
  [[nodiscard]] virtual Result<Blob> Peek(const std::string& key) const = 0;
  [[nodiscard]] virtual Status Delete(const std::string& key) = 0;
  virtual std::vector<ObjectInfo> List(const std::string& prefix) const = 0;
  virtual bool Contains(const std::string& key) const = 0;
};

}  // namespace skyrise::storage
