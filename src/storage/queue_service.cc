#include "storage/queue_service.h"

#include <utility>

namespace skyrise::storage {

QueueService::QueueService(sim::SimEnvironment* env, const Options& options)
    : env_(env), opt_(options) {}

// skyrise-domain-crossing(coordination queue API: a barrier-arrival message, an HTTP request against the queue service in the real system)
void QueueService::Arrive(const std::string& name, int expected,
                          std::function<void()> on_release) {
  SKYRISE_CHECK(expected >= 1);
  Barrier& barrier = barriers_[name];
  barrier.expected = expected;
  barrier.waiters.push_back(std::move(on_release));
  if (static_cast<int>(barrier.waiters.size()) < expected) return;
  // All arrived: release everyone after one poll round-trip each. Waiters
  // discover the condition on their next poll, so release times spread over
  // one polling interval.
  std::vector<std::function<void()>> waiters = std::move(barrier.waiters);
  barriers_.erase(name);
  for (size_t i = 0; i < waiters.size(); ++i) {
    const SimDuration jitter =
        static_cast<SimDuration>(static_cast<double>(opt_.poll_interval) *
                                 static_cast<double>(i) /
                                 static_cast<double>(waiters.size()));
    env_->Schedule(opt_.poll_latency_median + jitter, std::move(waiters[i]));
  }
}

void QueueService::Push(const std::string& queue, std::string message,
                        std::function<void()> on_done) {
  env_->Schedule(opt_.poll_latency_median,
                 [this, queue, message = std::move(message),
                  on_done = std::move(on_done)]() mutable {
                   queues_[queue].push_back(std::move(message));
                   if (on_done) on_done();
                 });
}

void QueueService::Pop(const std::string& queue,
                       std::function<void(bool, std::string)> on_done) {
  env_->Schedule(opt_.poll_latency_median,
                 [this, queue, on_done = std::move(on_done)] {
                   auto& q = queues_[queue];
                   if (q.empty()) {
                     on_done(false, "");
                     return;
                   }
                   std::string msg = std::move(q.front());
                   q.erase(q.begin());
                   on_done(true, std::move(msg));
                 });
}

int64_t QueueService::Depth(const std::string& queue) const {
  auto it = queues_.find(queue);
  return it == queues_.end() ? 0 : static_cast<int64_t>(it->second.size());
}

}  // namespace skyrise::storage
