#pragma once

#include "common/random.h"
#include "common/units.h"

/// \file latency_model.h
/// First-byte latency distributions for storage requests: lognormal body with
/// a small Pareto-tail mixture, matching the shapes of Fig. 10 (e.g., S3
/// Standard: 27 ms median reads, 75 ms p95, ~10 s extreme outliers over 1M
/// requests).

namespace skyrise::storage {

struct LatencyProfile {
  double median_ms = 10.0;
  /// Sigma of the underlying normal; p95/median = exp(1.645 * sigma).
  double sigma = 0.4;
  /// Probability a request draws from the heavy Pareto tail instead.
  double tail_probability = 0.0;
  double tail_scale_ms = 200.0;
  double tail_alpha = 1.2;
  double min_ms = 0.2;

  /// Convenience: profile hitting a target p95 given a median.
  static LatencyProfile FromMedianP95(double median_ms, double p95_ms);
};

/// Draws one first-byte latency.
SimDuration SampleLatency(const LatencyProfile& profile, Rng* rng);

}  // namespace skyrise::storage
