#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/environment.h"
#include "sim/fault_injector.h"
#include "sim/token_bucket.h"
#include "storage/latency_model.h"
#include "storage/storage_service.h"

/// \file object_store.h
/// Simulated S3-style object storage (one instance == one bucket).
///
/// Mechanisms modelled after Sections 2.2, 4.3 and 4.4:
///  - User data is horizontally partitioned; each prefix partition serves
///    ~5.5K read / 3.5K write IOPS with a limited burst allowance.
///  - Under sustained read overload a partition accumulates "warming" credit
///    and is split (capacity grows linearly, with delay — admission control).
///  - Under extended low load partitions merge back: all partitions survive a
///    full idle day, a reduced set persists for several more days, then the
///    bucket returns to a single partition (Fig. 13).
///  - Requests beyond capacity are rejected quickly (503 SlowDown).
///  - First-byte latency is lognormal with a heavy Pareto tail (Fig. 10);
///    payloads stream at a bounded per-connection rate, so aggregate
///    throughput scales linearly with client count (Fig. 8).
///  - Write IOPS do not scale with partitions (the Section 4.4.1 finding);
///    writes share one bucket-level limiter.
///
/// S3 Express One Zone is the same machinery with partitioning disabled,
/// zonal low-latency profiles, and high flat IOPS ceilings.

// skyrise-domain(storage-partition)
namespace skyrise::storage {

class ObjectStore : public StorageService {
 public:
  struct Options {
    std::string service_name = "s3";

    // Per-partition admission (Standard).
    double partition_read_iops = 5500;
    double partition_write_iops = 3500;
    /// Burst allowance: freshly created partitions can briefly exceed the
    /// sustained rate (new buckets measure ~8K read / 4K write IOPS over a
    /// short run, cf. Fig. 9) before throttling kicks in.
    double read_burst_tokens = 30000;
    double write_burst_tokens = 10000;

    /// Express: disable partition scaling and use flat bucket-level limits.
    bool partitioned = true;
    double bucket_read_iops = 0;   ///< Only when !partitioned.
    double bucket_write_iops = 0;  ///< Only when !partitioned.

    // Partition warming (split) behaviour.
    double split_overload_utilization = 0.85;  ///< Of sustained capacity.
    SimDuration split_after_overload = Minutes(5.2);
    int max_partitions = 64;

    // Partition cooling (merge) behaviour. The cooling clock runs while the
    // load EWMA stays below a fraction of a single partition's capacity;
    // short measurement probes do not reset it (Fig. 13 could observe the
    // downscaling despite generating hourly/daily probe load).
    SimDuration merge_to_two_after_idle = Hours(26);
    SimDuration merge_to_one_after_idle = Hours(108);
    SimDuration cooling_ewma_tau = Minutes(30);
    double cooling_rate_threshold_fraction = 0.6;  ///< Of one partition.

    // Latency (Fig. 10) and data-plane streaming.
    LatencyProfile read_latency;
    LatencyProfile write_latency;
    double read_stream_rate = 62.0 * kMiB;   ///< Bytes/s per request.
    double write_stream_rate = 40.0 * kMiB;
    double stream_jitter_sigma = 0.25;
    int64_t min_fabric_bytes = 256 * kKiB;
    /// Service endpoint ceilings (S3's fleet is effectively unlimited at our
    /// scales; EFS/DynamoDB-style services reuse this class via options).
    double service_egress = 400.0 * kGiB;
    double service_ingress = 400.0 * kGiB;

    /// Latency of a throttle rejection (fail-fast SlowDown response).
    LatencyProfile throttle_latency;

    /// Maximum object size accepted by Put (DynamoDB: 400 KiB); 0 => none.
    int64_t max_object_bytes = 0;
    /// Initial burst tokens; -1 => start full (new DynamoDB tables start
    /// empty: burst accrues from *unused* capacity).
    double read_burst_initial = -1;
    double write_burst_initial = -1;

    /// Documented container-level quotas, for reporting next to measured
    /// values (Fig. 9); 0 => same as the enforced limits.
    double documented_read_iops = 0;
    double documented_write_iops = 0;

    Options();
  };

  /// S3 Standard defaults.
  static Options StandardOptions();
  /// S3 Express One Zone: no partition quota, 220K/42K IOPS, ~5 ms medians.
  static Options ExpressOptions();
  /// DynamoDB on-demand: 400 KiB items, new-table IOPS envelope, 5-minute
  /// burst credit accrual, ~380 / ~30 MiB/s service read/write ceilings.
  static Options DynamoDbOptions();
  /// EFS elastic throughput: no request fee, 20 / 5 GiB/s per-filesystem
  /// read/write ceilings, elevated synchronous write latency.
  static Options EfsOptions();

  ObjectStore(sim::SimEnvironment* env, const Options& options,
              uint64_t rng_stream = 1001);

  const std::string& service_name() const override {
    return opt_.service_name;
  }

  void Get(const std::string& key, const ClientContext& ctx,
           GetCallback callback) override;
  void GetRange(const std::string& key, int64_t offset, int64_t length,
                const ClientContext& ctx, GetCallback callback) override;
  void Put(const std::string& key, Blob data, const ClientContext& ctx,
           PutCallback callback) override;

  [[nodiscard]] Status Insert(const std::string& key, Blob data) override;
  [[nodiscard]] Result<Blob> Peek(const std::string& key) const override;
  [[nodiscard]] Status Delete(const std::string& key) override;
  std::vector<ObjectInfo> List(const std::string& prefix) const override;
  bool Contains(const std::string& key) const override;

  /// Current number of prefix partitions (1 when !partitioned). Applies any
  /// pending cooling merges before answering.
  int partition_count();
  /// Sustained read IOPS capacity across all partitions.
  double ReadIopsCapacity() const;

  /// Forces the partition count (warm-bucket scenario setup).
  void SetPartitionCount(int count);

  /// Installs a fault injector: requests may fail with injected transient
  /// 500/503 errors before admission, and the data path may pick up
  /// network-blip latency. Pass nullptr to disable.
  void set_fault_injector(sim::FaultInjector* injector) {
    fault_injector_ = injector;
  }

  const Options& options() const { return opt_; }

 private:
  struct Partition {
    sim::TokenBucket read_bucket;
    sim::TokenBucket write_bucket;
    // Overload ("warming") tracking.
    int64_t arrivals_since_check = 0;
    SimTime last_check = 0;
    double overload_seconds = 0;
    Partition(const Options& o, SimTime now);
  };

  Partition& PartitionOf(const std::string& key);
  void NoteArrival(Partition* partition, bool is_read);
  void MaybeSplit(Partition* partition);
  /// Folds accumulated arrivals into the load EWMA and advances the cooling
  /// clock; applies due merges. Called lazily from the request path and from
  /// partition_count().
  void UpdateLoadEwma();
  void ApplyCooling();

  /// Common read/write completion path: latency, streaming, callback.
  void FinishGet(Blob payload, const ClientContext& ctx, GetCallback callback);
  void FinishPut(int64_t bytes, const ClientContext& ctx, PutCallback callback);
  void FailAfterRejectLatency(const ClientContext& ctx, Status error,
                              GetCallback get_cb, PutCallback put_cb);

  sim::SimEnvironment* env_;
  Options opt_;
  Rng rng_;
  sim::FaultInjector* fault_injector_ = nullptr;
  std::map<std::string, Blob> objects_;
  std::vector<Partition> partitions_;
  sim::TokenBucket global_write_bucket_;  ///< Writes never scale (4.4.1).
  sim::TokenBucket express_read_bucket_;  ///< Only when !partitioned.
  net::UnlimitedNic service_nic_;

  // Warming/cooling state.
  SimTime last_split_ = 0;
  double load_ewma_ = 0;
  int64_t ewma_arrival_counter_ = 0;
  SimTime ewma_last_update_ = 0;
  SimTime cooling_since_ = 0;  ///< -1 while load is above the threshold.
};

}  // namespace skyrise::storage
