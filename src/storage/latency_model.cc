#include "storage/latency_model.h"

#include <algorithm>
#include <cmath>

namespace skyrise::storage {

// skyrise-domain-crossing(static value factory: builds a LatencyProfile from its arguments and touches no storage-partition state)
LatencyProfile LatencyProfile::FromMedianP95(double median_ms, double p95_ms) {
  LatencyProfile p;
  p.median_ms = median_ms;
  p.sigma = std::log(p95_ms / median_ms) / 1.6449;  // z(0.95).
  return p;
}

SimDuration SampleLatency(const LatencyProfile& profile, Rng* rng) {
  double ms;
  if (profile.tail_probability > 0 && rng->Bernoulli(profile.tail_probability)) {
    ms = rng->Pareto(profile.tail_scale_ms, profile.tail_alpha);
  } else {
    ms = rng->LognormalMedianSigma(profile.median_ms, profile.sigma);
  }
  ms = std::max(ms, profile.min_ms);
  return Millis(ms);
}

}  // namespace skyrise::storage
