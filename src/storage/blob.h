#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/macros.h"

/// \file blob.h
/// Payloads stored in the simulated storage services. A Blob either carries
/// real bytes (query data the engine must actually process) or is synthetic —
/// a size without materialized content — so microbenchmarks can move hundreds
/// of GiB/s without allocating them.

namespace skyrise::storage {

class Blob {
 public:
  Blob() = default;

  static Blob FromString(std::string data) {
    Blob b;
    b.size_ = static_cast<int64_t>(data.size());
    b.data_ = std::make_shared<const std::string>(std::move(data));
    return b;
  }

  static Blob Synthetic(int64_t size) {
    SKYRISE_CHECK(size >= 0);
    Blob b;
    b.size_ = size;
    return b;
  }

  int64_t size() const { return size_; }
  bool is_synthetic() const { return data_ == nullptr; }

  /// Real content; must not be called on synthetic blobs.
  const std::string& data() const {
    SKYRISE_CHECK(data_ != nullptr);
    return *data_;
  }

  /// Byte range [offset, offset+length). Clamps to the blob end. Synthetic
  /// blobs slice to synthetic blobs.
  Blob Slice(int64_t offset, int64_t length) const {
    SKYRISE_CHECK(offset >= 0 && length >= 0);
    const int64_t begin = std::min(offset, size_);
    const int64_t len = std::min(length, size_ - begin);
    if (is_synthetic()) return Synthetic(len);
    return FromString(data_->substr(static_cast<size_t>(begin),
                                    static_cast<size_t>(len)));
  }

 private:
  int64_t size_ = 0;
  std::shared_ptr<const std::string> data_;
};

}  // namespace skyrise::storage
