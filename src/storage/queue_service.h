#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/environment.h"

/// \file queue_service.h
/// Minimal shared-queue service, used the way the paper uses SQS-style
/// queues: distributed clients synchronize on startup ("all instances
/// synchronize via a shared queue"), and the query engine injects barrier
/// operators that poll a shared queue for a barrier condition.

namespace skyrise::storage {

class QueueService {
 public:
  struct Options {
    SimDuration poll_latency_median = Millis(8);
    SimDuration poll_interval = Millis(100);  ///< Barrier polling cadence.
  };

  explicit QueueService(sim::SimEnvironment* env) : QueueService(env, Options{}) {}
  QueueService(sim::SimEnvironment* env, const Options& options);
  SKYRISE_DISALLOW_COPY_AND_ASSIGN(QueueService);

  /// Registers a participant with barrier `name` of size `expected`. The
  /// callback fires (for every participant) once all have arrived, after the
  /// polling delay. Models the engine's synchronization-barrier operator.
  void Arrive(const std::string& name, int expected,
              std::function<void()> on_release);

  /// Simple message queue: push is asynchronous with a small latency.
  void Push(const std::string& queue, std::string message,
            std::function<void()> on_done);

  /// Pops one message if available; fires with empty optional semantics via
  /// the bool flag otherwise.
  void Pop(const std::string& queue,
           std::function<void(bool, std::string)> on_done);

  int64_t Depth(const std::string& queue) const;

 private:
  struct Barrier {
    int expected = 0;
    std::vector<std::function<void()>> waiters;
  };

  sim::SimEnvironment* env_;
  Options opt_;
  std::map<std::string, Barrier> barriers_;
  std::map<std::string, std::vector<std::string>> queues_;
};

}  // namespace skyrise::storage
