#include "storage/object_store.h"

#include <algorithm>

#include "common/string_util.h"

namespace skyrise::storage {

ObjectStore::Options::Options() {
  // Fig. 10 S3 Standard shape: 27 ms median / 75 ms p95 reads with rare
  // multi-second outliers; writes at 40 ms median.
  read_latency = LatencyProfile::FromMedianP95(27, 75);
  read_latency.tail_probability = 2e-4;
  read_latency.tail_scale_ms = 300;
  read_latency.tail_alpha = 1.1;
  write_latency = LatencyProfile::FromMedianP95(40, 112);
  write_latency.tail_probability = 2e-4;
  write_latency.tail_scale_ms = 400;
  write_latency.tail_alpha = 1.1;
  throttle_latency = LatencyProfile::FromMedianP95(8, 20);
}

ObjectStore::Options ObjectStore::StandardOptions() { return Options(); }

ObjectStore::Options ObjectStore::ExpressOptions() {
  Options o;
  o.service_name = "s3express";
  o.partitioned = false;
  o.bucket_read_iops = 220000;
  o.bucket_write_iops = 42000;
  o.read_burst_tokens = 220000;  // ~1 s of headroom; effectively flat.
  o.write_burst_tokens = 42000;
  // Zonal deployment: ~5 ms medians with tight tails (Fig. 10).
  o.read_latency = LatencyProfile::FromMedianP95(4.8, 5.6);
  o.read_latency.tail_probability = 2e-5;
  o.read_latency.tail_scale_ms = 40;
  o.read_latency.tail_alpha = 1.5;
  o.write_latency = LatencyProfile::FromMedianP95(6.5, 8.5);
  o.write_latency.tail_probability = 2e-5;
  o.write_latency.tail_scale_ms = 50;
  o.write_latency.tail_alpha = 1.5;
  o.write_stream_rate = 55.0 * kMiB;
  o.stream_jitter_sigma = 0.1;
  o.throttle_latency = LatencyProfile::FromMedianP95(3, 6);
  return o;
}

ObjectStore::Options ObjectStore::DynamoDbOptions() {
  Options o;
  o.service_name = "dynamodb";
  o.partitioned = false;
  // Measured new-table envelope (Fig. 9): 16K read / 9.6K write IOPS,
  // slightly above the documented on-demand quotas.
  o.bucket_read_iops = 16000;
  o.bucket_write_iops = 9600;
  o.documented_read_iops = 12000;
  o.documented_write_iops = 4000;
  // "Burst throughput from up to 5 minutes of unused capacity" — the credit
  // pool starts empty on a fresh table and accrues while under-utilized.
  o.read_burst_tokens = 16000.0 * 300;
  o.write_burst_tokens = 9600.0 * 300;
  // Fresh tables hold only a fraction of a second of allowance; the burst
  // pool accrues while capacity goes unused.
  o.read_burst_initial = 4000;
  o.write_burst_initial = 2400;
  o.max_object_bytes = 400 * kKiB;
  // Fig. 10: slightly lower yet more variable latency than S3 Express.
  o.read_latency = LatencyProfile::FromMedianP95(4.0, 9.0);
  o.read_latency.tail_probability = 5e-5;
  o.read_latency.tail_scale_ms = 60;
  o.read_latency.tail_alpha = 1.3;
  o.write_latency = LatencyProfile::FromMedianP95(5.0, 11.5);
  o.write_latency.tail_probability = 5e-5;
  o.write_latency.tail_scale_ms = 70;
  o.write_latency.tail_alpha = 1.3;
  // Fig. 8: throughput saturates at ~380 MiB/s reads / ~30 MiB/s writes.
  o.service_egress = 380.0 * kMiB;
  o.service_ingress = 30.0 * kMiB;
  o.read_stream_rate = 200.0 * kMiB;  // Service ceiling binds, not streams.
  o.write_stream_rate = 30.0 * kMiB;
  o.stream_jitter_sigma = 0.2;
  o.min_fabric_bytes = 256 * kKiB;
  o.throttle_latency = LatencyProfile::FromMedianP95(2.5, 5);
  return o;
}

ObjectStore::Options ObjectStore::EfsOptions() {
  Options o;
  o.service_name = "efs";
  o.partitioned = false;
  // Fig. 9: measured IOPS miss the documented per-filesystem quotas by more
  // than an order of magnitude.
  o.bucket_read_iops = 22000;
  o.bucket_write_iops = 6000;
  o.documented_read_iops = 250000;
  o.documented_write_iops = 50000;
  o.read_burst_tokens = 22000;
  o.write_burst_tokens = 6000;
  // Fig. 10: reads as consistent as S3 Express; writes 2-3x slower
  // (synchronous durability).
  o.read_latency = LatencyProfile::FromMedianP95(4.5, 8.0);
  o.read_latency.tail_probability = 3e-5;
  o.read_latency.tail_scale_ms = 50;
  o.read_latency.tail_alpha = 1.4;
  o.write_latency = LatencyProfile::FromMedianP95(11.0, 26.0);
  o.write_latency.tail_probability = 3e-5;
  o.write_latency.tail_scale_ms = 120;
  o.write_latency.tail_alpha = 1.4;
  // Elastic-throughput quotas for one filesystem: 20 / 5 GiB/s (Fig. 8).
  o.service_egress = 20.0 * kGiB;
  o.service_ingress = 5.0 * kGiB;
  o.read_stream_rate = 12.0 * kMiB;
  o.write_stream_rate = 4.0 * kMiB;
  o.stream_jitter_sigma = 0.2;
  o.throttle_latency = LatencyProfile::FromMedianP95(4, 9);
  return o;
}

ObjectStore::Partition::Partition(const Options& o, SimTime now)
    : read_bucket(o.read_burst_tokens, o.partition_read_iops,
                  o.read_burst_tokens),
      write_bucket(o.write_burst_tokens, o.partition_write_iops,
                   o.write_burst_tokens),
      last_check(now) {
  read_bucket.SetTokens(o.read_burst_tokens, now);
  write_bucket.SetTokens(o.write_burst_tokens, now);
}

ObjectStore::ObjectStore(sim::SimEnvironment* env, const Options& options,
                         uint64_t rng_stream)
    : env_(env),
      opt_(options),
      rng_(env->ForkRng(rng_stream)),
      global_write_bucket_(
          opt_.write_burst_tokens,
          opt_.partitioned ? opt_.partition_write_iops : opt_.bucket_write_iops,
          opt_.write_burst_tokens),
      express_read_bucket_(opt_.read_burst_tokens, opt_.bucket_read_iops,
                           opt_.read_burst_tokens),
      service_nic_(opt_.service_ingress, opt_.service_egress) {
  partitions_.emplace_back(opt_, env_->now());
  if (opt_.read_burst_initial >= 0) {
    express_read_bucket_.SetTokens(opt_.read_burst_initial, env_->now());
  }
  if (opt_.write_burst_initial >= 0) {
    global_write_bucket_.SetTokens(opt_.write_burst_initial, env_->now());
  }
  ewma_last_update_ = env_->now();
  cooling_since_ = env_->now();
  // Construction-time wiring: the service labels the NIC it owns before
  // any traffic flows.
  // skyrise-check: allow(cross-domain-mutation) — construction-time wiring.
  service_nic_.set_name(opt_.service_name);
}

int ObjectStore::partition_count() {
  if (!opt_.partitioned) return 1;
  ApplyCooling();
  return static_cast<int>(partitions_.size());
}

double ObjectStore::ReadIopsCapacity() const {
  if (!opt_.partitioned) return opt_.bucket_read_iops;
  return opt_.partition_read_iops * static_cast<double>(partitions_.size());
}

void ObjectStore::SetPartitionCount(int count) {
  SKYRISE_CHECK(count >= 1 && count <= opt_.max_partitions);
  while (static_cast<int>(partitions_.size()) < count) {
    partitions_.emplace_back(opt_, env_->now());
  }
  while (static_cast<int>(partitions_.size()) > count) partitions_.pop_back();
}

namespace {
uint64_t HashKey(const std::string& key) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a.
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}
}  // namespace

ObjectStore::Partition& ObjectStore::PartitionOf(const std::string& key) {
  return partitions_[HashKey(key) % partitions_.size()];
}

void ObjectStore::UpdateLoadEwma() {
  const SimTime now = env_->now();
  const SimDuration dt = now - ewma_last_update_;
  if (dt < Seconds(5)) return;  // Fold in 5 s batches.
  const double rate =
      static_cast<double>(ewma_arrival_counter_) / ToSeconds(dt);
  ewma_arrival_counter_ = 0;
  const double w = std::exp(-ToSeconds(dt) / ToSeconds(opt_.cooling_ewma_tau));
  load_ewma_ = load_ewma_ * w + rate * (1.0 - w);
  ewma_last_update_ = now;
  const bool cooling = load_ewma_ < opt_.cooling_rate_threshold_fraction *
                                        opt_.partition_read_iops;
  if (cooling) {
    if (cooling_since_ < 0) cooling_since_ = now;
  } else {
    cooling_since_ = -1;
  }
}

void ObjectStore::ApplyCooling() {
  UpdateLoadEwma();
  if (cooling_since_ < 0 || partitions_.size() <= 1) return;
  const SimDuration idle = env_->now() - cooling_since_;
  if (idle >= opt_.merge_to_one_after_idle) {
    SetPartitionCount(1);
  } else if (idle >= opt_.merge_to_two_after_idle && partitions_.size() > 2) {
    SetPartitionCount(2);
  }
}

void ObjectStore::NoteArrival(Partition* partition, bool is_read) {
  if (!opt_.partitioned || !is_read) return;
  ++partition->arrivals_since_check;
  ++ewma_arrival_counter_;
  UpdateLoadEwma();
  const SimTime now = env_->now();
  const SimDuration elapsed = now - partition->last_check;
  if (elapsed < Seconds(10)) return;
  const double rate =
      static_cast<double>(partition->arrivals_since_check) / ToSeconds(elapsed);
  partition->arrivals_since_check = 0;
  partition->last_check = now;
  if (rate >= opt_.split_overload_utilization * opt_.partition_read_iops) {
    partition->overload_seconds += ToSeconds(elapsed);
  } else {
    partition->overload_seconds =
        std::max(0.0, partition->overload_seconds - ToSeconds(elapsed));
  }
  MaybeSplit(partition);
}

void ObjectStore::MaybeSplit(Partition* partition) {
  if (partition->overload_seconds < ToSeconds(opt_.split_after_overload)) {
    return;
  }
  // Splits are serialized bucket-wide: S3 "only allocates resources linearly
  // and with delay as a form of admission control" (Section 4.4.1).
  const SimTime now = env_->now();
  if (now - last_split_ < opt_.split_after_overload &&
      partitions_.size() > 1) {
    return;
  }
  if (static_cast<int>(partitions_.size()) >= opt_.max_partitions) return;
  partition->overload_seconds = 0;
  last_split_ = now;
  partitions_.emplace_back(opt_, now);
}

void ObjectStore::FailAfterRejectLatency(const ClientContext& ctx,
                                         Status error, GetCallback get_cb,
                                         PutCallback put_cb) {
  (void)ctx;
  const SimDuration delay = SampleLatency(opt_.throttle_latency, &rng_);
  env_->Schedule(delay, [error = std::move(error), get_cb = std::move(get_cb),
                         put_cb = std::move(put_cb)] {
    if (get_cb) get_cb(error);
    if (put_cb) put_cb(error);
  });
}

void ObjectStore::FinishGet(Blob payload, const ClientContext& ctx,
                            GetCallback callback) {
  SimDuration first_byte = SampleLatency(opt_.read_latency, &rng_);
  if (fault_injector_ != nullptr) {
    first_byte += fault_injector_->MaybeNetworkBlip();
  }
  const double rate = opt_.read_stream_rate *
                      rng_.Lognormal(0.0, opt_.stream_jitter_sigma);
  if (ctx.fabric != nullptr && ctx.nic != nullptr &&
      payload.size() >= opt_.min_fabric_bytes) {
    env_->Schedule(first_byte, [this, payload, ctx, rate,
                                callback = std::move(callback)]() mutable {
      net::Fabric::TransferSpec spec;
      spec.src = &service_nic_;
      spec.dst = ctx.nic;
      spec.flows = 1;
      spec.total_bytes = payload.size();
      spec.vpc = ctx.vpc;
      spec.rate_cap_bytes_per_sec = rate;
      spec.on_complete = [payload, callback = std::move(callback)](
                             net::TransferId) { callback(payload); };
      ctx.fabric->StartTransfer(spec);
    });
    return;
  }
  const SimDuration transfer =
      Seconds(static_cast<double>(payload.size()) / rate);
  env_->Schedule(first_byte + transfer,
                 [payload, callback = std::move(callback)] {
                   callback(payload);
                 });
}

void ObjectStore::FinishPut(int64_t bytes, const ClientContext& ctx,
                            PutCallback callback) {
  SimDuration first_byte = SampleLatency(opt_.write_latency, &rng_);
  if (fault_injector_ != nullptr) {
    first_byte += fault_injector_->MaybeNetworkBlip();
  }
  const double rate = opt_.write_stream_rate *
                      rng_.Lognormal(0.0, opt_.stream_jitter_sigma);
  if (ctx.fabric != nullptr && ctx.nic != nullptr &&
      bytes >= opt_.min_fabric_bytes) {
    env_->Schedule(first_byte, [this, bytes, ctx, rate,
                                callback = std::move(callback)]() mutable {
      net::Fabric::TransferSpec spec;
      spec.src = ctx.nic;
      spec.dst = &service_nic_;
      spec.flows = 1;
      spec.total_bytes = bytes;
      spec.vpc = ctx.vpc;
      spec.rate_cap_bytes_per_sec = rate;
      spec.on_complete = [callback = std::move(callback)](net::TransferId) {
        callback(Status::OK());
      };
      ctx.fabric->StartTransfer(spec);
    });
    return;
  }
  const SimDuration transfer = Seconds(static_cast<double>(bytes) / rate);
  env_->Schedule(first_byte + transfer,
                 [callback = std::move(callback)] { callback(Status::OK()); });
}

void ObjectStore::Get(const std::string& key, const ClientContext& ctx,
                      GetCallback callback) {
  GetRange(key, 0, -1, ctx, std::move(callback));
}

// skyrise-domain-crossing(storage request API: an HTTP GET against the store in the real system; latency, faults, and throttling are modeled inside)
void ObjectStore::GetRange(const std::string& key, int64_t offset,
                           int64_t length, const ClientContext& ctx,
                           GetCallback callback) {
  const SimTime now = env_->now();
  if (fault_injector_ != nullptr) {
    Status injected = fault_injector_->MaybeStorageError(/*is_write=*/false);
    if (!injected.ok()) {
      if (ctx.meter != nullptr) {
        const double usd = ctx.meter->RecordStorageRequest(
            opt_.service_name, /*is_write=*/false, 0, /*success=*/false);
        if (ctx.tracer != nullptr) ctx.tracer->AddCost(ctx.span, usd);
      }
      if (ctx.tracer != nullptr) {
        ctx.tracer->Instant("storage/" + opt_.service_name, "fault.injected",
                            "storage", ctx.span);
      }
      if (ctx.metrics != nullptr) {
        ctx.metrics->Add("storage." + opt_.service_name + ".faults_injected");
      }
      FailAfterRejectLatency(ctx, std::move(injected), std::move(callback),
                             nullptr);
      return;
    }
  }
  bool admitted;
  if (opt_.partitioned) {
    ApplyCooling();
    Partition& partition = PartitionOf(key);
    admitted = partition.read_bucket.TryConsume(1, now);
    NoteArrival(&partition, /*is_read=*/true);
  } else {
    admitted = express_read_bucket_.TryConsume(1, now);
  }
  auto it = objects_.find(key);
  const bool found = it != objects_.end();
  const int64_t payload_size =
      !found ? 0
             : (length < 0 ? it->second.size() - std::min(offset, it->second.size())
                           : std::min(length, it->second.size() - offset));
  if (ctx.meter != nullptr) {
    const double usd = ctx.meter->RecordStorageRequest(
        opt_.service_name, /*is_write=*/false,
        std::max<int64_t>(payload_size, 0), admitted && found);
    if (ctx.tracer != nullptr) ctx.tracer->AddCost(ctx.span, usd);
  }
  if (!admitted) {
    if (ctx.tracer != nullptr) {
      ctx.tracer->Instant("storage/" + opt_.service_name, "throttle",
                          "storage", ctx.span);
    }
    FailAfterRejectLatency(ctx,
                           Status::ResourceExhausted("503 SlowDown: " + key),
                           std::move(callback), nullptr);
    return;
  }
  if (!found) {
    FailAfterRejectLatency(ctx, Status::NotFound("NoSuchKey: " + key),
                           std::move(callback), nullptr);
    return;
  }
  Blob payload = length < 0 && offset == 0
                     ? it->second
                     : it->second.Slice(offset, length < 0
                                                    ? it->second.size() - offset
                                                    : length);
  FinishGet(std::move(payload), ctx, std::move(callback));
}

// skyrise-domain-crossing(storage request API: an HTTP PUT against the store in the real system; latency, faults, and throttling are modeled inside)
void ObjectStore::Put(const std::string& key, Blob data,
                      const ClientContext& ctx, PutCallback callback) {
  const SimTime now = env_->now();
  if (fault_injector_ != nullptr) {
    Status injected = fault_injector_->MaybeStorageError(/*is_write=*/true);
    if (!injected.ok()) {
      if (ctx.meter != nullptr) {
        const double usd = ctx.meter->RecordStorageRequest(
            opt_.service_name, /*is_write=*/true, data.size(),
            /*success=*/false);
        if (ctx.tracer != nullptr) ctx.tracer->AddCost(ctx.span, usd);
      }
      if (ctx.tracer != nullptr) {
        ctx.tracer->Instant("storage/" + opt_.service_name, "fault.injected",
                            "storage", ctx.span);
      }
      if (ctx.metrics != nullptr) {
        ctx.metrics->Add("storage." + opt_.service_name + ".faults_injected");
      }
      FailAfterRejectLatency(ctx, std::move(injected), nullptr,
                             std::move(callback));
      return;
    }
  }
  if (opt_.max_object_bytes > 0 && data.size() > opt_.max_object_bytes) {
    // Size violations are rejected synchronously at request validation and
    // are not billed (the SDK refuses to send them).
    env_->Schedule(0, [key, callback = std::move(callback)] {
      callback(Status::InvalidArgument(
          StrFormat("item too large: %s", key.c_str())));
    });
    return;
  }
  const bool admitted = global_write_bucket_.TryConsume(1, now);
  if (ctx.meter != nullptr) {
    const double usd = ctx.meter->RecordStorageRequest(
        opt_.service_name, /*is_write=*/true, data.size(), admitted);
    if (ctx.tracer != nullptr) ctx.tracer->AddCost(ctx.span, usd);
  }
  if (!admitted) {
    if (ctx.tracer != nullptr) {
      ctx.tracer->Instant("storage/" + opt_.service_name, "throttle",
                          "storage", ctx.span);
    }
    FailAfterRejectLatency(ctx,
                           Status::ResourceExhausted("503 SlowDown: " + key),
                           nullptr, std::move(callback));
    return;
  }
  const int64_t bytes = data.size();
  // The object becomes visible on completion (read-after-write consistency).
  FinishPut(bytes, ctx,
            [this, key, data = std::move(data),
             callback = std::move(callback)](Status status) mutable {
              if (status.ok()) objects_[key] = std::move(data);
              callback(status);
            });
}

Status ObjectStore::Insert(const std::string& key, Blob data) {
  objects_[key] = std::move(data);
  return Status::OK();
}

Result<Blob> ObjectStore::Peek(const std::string& key) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("NoSuchKey: " + key);
  return it->second;
}

Status ObjectStore::Delete(const std::string& key) {
  objects_.erase(key);
  return Status::OK();
}

std::vector<ObjectInfo> ObjectStore::List(const std::string& prefix) const {
  std::vector<ObjectInfo> out;
  for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
    if (!StartsWith(it->first, prefix)) break;
    out.push_back(ObjectInfo{it->first, it->second.size()});
  }
  return out;
}

bool ObjectStore::Contains(const std::string& key) const {
  return objects_.count(key) > 0;
}

}  // namespace skyrise::storage
