#pragma once

#include <memory>

#include "sim/environment.h"
#include "storage/storage_service.h"

/// \file retry_client.h
/// SDK-style storage client with request timeouts and exponential backoff
/// with full jitter (the Fig. 11 client configuration: "eager but not
/// aggressive"). Requests that repeatedly fail back off exponentially — the
/// mechanism behind the straggler-induced IOPS drops in Section 4.4.1.
///
/// Overload robustness (all opt-in via ClientContext): per-attempt timeouts
/// and backoff waits are clamped to the remaining `ctx.deadline` and the
/// request fails fast with DeadlineExceeded once it expires (cumulative
/// backoff can no longer outlive the caller); every retry draws a token
/// from `ctx.retry_budget` when one is attached (successes refund a
/// fraction); and an open `ctx.breaker` sheds attempts with a typed
/// ResourceExhausted carrying the retry-after hint.

namespace skyrise::storage {

class RetryClient {
 public:
  struct Options {
    SimDuration request_timeout = Millis(200);
    int max_attempts = 8;
    SimDuration backoff_base = Millis(25);
    SimDuration backoff_cap = Seconds(20);
    bool full_jitter = true;
    /// Timeout scaling for large payloads: extra allowance per MiB
    /// transferred (the engine's size-based straggler timeout); 0 disables.
    SimDuration timeout_per_mib = 0;
    /// Timeout growth per retry attempt, so retries of genuinely slow (e.g.,
    /// congestion-bound) transfers eventually succeed instead of looping.
    double timeout_growth = 1.5;
  };

  struct Stats {
    int64_t attempts = 0;
    int64_t throttles = 0;
    int64_t timeouts = 0;
    int64_t successes = 0;
    int64_t permanent_failures = 0;
    /// Non-retriable errors (NotFound, InvalidArgument, Internal, ...)
    /// surfaced immediately without consuming the retry budget. Also
    /// counted in `permanent_failures`.
    int64_t fail_fasts = 0;
    /// Requests abandoned because the propagated deadline expired (before
    /// an attempt or between attempts). Counted in `permanent_failures`.
    int64_t deadline_rejections = 0;
    /// Retries refused because the shared per-query RetryBudget was empty.
    int64_t budget_denials = 0;
    /// Attempts shed by an open circuit breaker.
    int64_t breaker_rejections = 0;
  };

  RetryClient(sim::SimEnvironment* env, StorageService* service,
              const Options& options, uint64_t rng_stream = 2001);

  /// Retrying full-object read. The callback receives the final outcome
  /// after all attempts. When `ctx.tracer` is set, the request opens a span
  /// on track "storage/<service>" under `ctx.span`, with one child span per
  /// attempt and per backoff wait; the storage service attributes request
  /// costs and fault/throttle markers to the active attempt span.
  void Get(const std::string& key, const ClientContext& ctx,
           GetCallback callback);
  void GetRange(const std::string& key, int64_t offset, int64_t length,
                const ClientContext& ctx, GetCallback callback);
  void Put(const std::string& key, Blob data, const ClientContext& ctx,
           PutCallback callback);

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }
  StorageService* service() { return service_; }
  const Options& options() const { return opt_; }

 private:
  SimDuration TimeoutFor(int64_t expected_bytes) const;
  SimDuration BackoffDelay(int attempt);
  std::string Track() const;
  std::string MetricPrefix() const;

  /// Pre-attempt admission: OK to proceed, or the typed shed error (open
  /// breaker -> ResourceExhausted with a retry-after hint, expired deadline
  /// -> DeadlineExceeded). Stats/metrics for the shed are recorded here.
  [[nodiscard]] Status AdmitAttempt(const ClientContext& ctx, int attempt,
                                    obs::SpanId req_span);

  void AttemptGet(const std::string& key, int64_t offset, int64_t length,
                  const ClientContext& ctx, int attempt, obs::SpanId req_span,
                  GetCallback callback);
  void AttemptPut(const std::string& key, Blob data, const ClientContext& ctx,
                  int attempt, obs::SpanId req_span, PutCallback callback);

  sim::SimEnvironment* env_;
  StorageService* service_;
  Options opt_;
  Rng rng_;
  Stats stats_;
};

}  // namespace skyrise::storage
