#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"
#include "data/chunk.h"

/// \file encoding.h
/// Column-chunk encodings for the COF file format: zigzag-varint deltas for
/// integers/dates, raw little-endian doubles, and dictionary or plain
/// layouts for strings (dictionary when the value domain is small, as for
/// TPC flag/mode columns — this is where most of the compression comes from).

namespace skyrise::format {

// Low-level primitives (exposed for tests).
void PutVarint(std::string* out, uint64_t v);
[[nodiscard]] Result<uint64_t> GetVarint(const std::string& in, size_t* pos);
uint64_t ZigzagEncode(int64_t v);
int64_t ZigzagDecode(uint64_t v);

enum class ColumnEncoding : uint8_t {
  kIntDelta = 0,    ///< Zigzag-varint of deltas.
  kDoubleRaw = 1,   ///< 8-byte little-endian.
  kStringPlain = 2,
  kStringDict = 3,
};

/// Encodes a column into `out`; returns the encoding used. The first byte of
/// the encoded chunk records the encoding.
ColumnEncoding EncodeColumn(const data::Column& column, std::string* out);

/// Decodes an encoded column chunk of `rows` values.
[[nodiscard]] Result<data::Column> DecodeColumn(const std::string& bytes,
                                  data::DataType type, int64_t rows);

/// Decode-into-reused-buffer variant: overwrites `out` (retyping it if
/// needed), recycling its vector capacity and — for strings — per-element
/// buffers across calls. The decode kernels run branch-light over the
/// contiguous input span (pointer-walked varints with a one-byte fast path)
/// instead of per-byte bounds-checked string indexing. On error `out`'s
/// contents are unspecified. This is the hot path under
/// format::DecodeRowGroupInto; DecodeColumn wraps it.
[[nodiscard]] Status DecodeColumnInto(const char* data, size_t size,
                                      data::DataType type, int64_t rows,
                                      data::Column* out);

}  // namespace skyrise::format
