#include "format/cof.h"

#include <algorithm>
#include <cstring>

#include "format/encoding.h"

namespace skyrise::format {

namespace {
constexpr char kMagic[4] = {'C', 'O', 'F', '1'};

std::optional<double> ColumnMin(const data::Column& col) {
  using data::DataType;
  if (col.size() == 0) return std::nullopt;
  if (col.type() == DataType::kDouble) {
    return *std::min_element(col.doubles().begin(), col.doubles().end());
  }
  if (col.type() == DataType::kString) return std::nullopt;
  return static_cast<double>(
      *std::min_element(col.ints().begin(), col.ints().end()));
}

std::optional<double> ColumnMax(const data::Column& col) {
  using data::DataType;
  if (col.size() == 0) return std::nullopt;
  if (col.type() == DataType::kDouble) {
    return *std::max_element(col.doubles().begin(), col.doubles().end());
  }
  if (col.type() == DataType::kString) return std::nullopt;
  return static_cast<double>(
      *std::max_element(col.ints().begin(), col.ints().end()));
}

data::DataType TypeFromName(const std::string& name) {
  if (name == "double") return data::DataType::kDouble;
  if (name == "string") return data::DataType::kString;
  if (name == "date") return data::DataType::kDate;
  return data::DataType::kInt64;
}

}  // namespace

int64_t FileMeta::TotalRows() const {
  int64_t rows = 0;
  for (const auto& rg : row_groups) rows += rg.rows;
  return rows;
}

Json FileMeta::ToJson() const {
  Json out = Json::Object();
  Json schema_json = Json::Array();
  for (const auto& field : schema.fields()) {
    Json f = Json::Object();
    f["name"] = field.name;
    f["type"] = data::DataTypeName(field.type);
    schema_json.Append(std::move(f));
  }
  out["schema"] = std::move(schema_json);
  out["data_size"] = data_size;
  out["synthetic"] = synthetic;
  Json groups = Json::Array();
  for (const auto& rg : row_groups) {
    Json g = Json::Object();
    g["rows"] = rg.rows;
    Json cols = Json::Array();
    for (const auto& c : rg.columns) {
      Json cj = Json::Object();
      cj["offset"] = c.offset;
      cj["size"] = c.size;
      if (c.min.has_value()) cj["min"] = *c.min;
      if (c.max.has_value()) cj["max"] = *c.max;
      cols.Append(std::move(cj));
    }
    g["columns"] = std::move(cols);
    groups.Append(std::move(g));
  }
  out["row_groups"] = std::move(groups);
  return out;
}

Result<FileMeta> FileMeta::FromJson(const Json& json) {
  if (!json.is_object()) return Status::IoError("footer is not an object");
  FileMeta meta;
  std::vector<data::Field> fields;
  for (const auto& f : json.Get("schema").AsArray()) {
    fields.push_back(
        data::Field{f.GetString("name"), TypeFromName(f.GetString("type"))});
  }
  meta.schema = data::Schema(std::move(fields));
  meta.data_size = json.GetInt("data_size");
  meta.synthetic = json.GetBool("synthetic");
  for (const auto& g : json.Get("row_groups").AsArray()) {
    RowGroupMeta rg;
    rg.rows = g.GetInt("rows");
    for (const auto& c : g.Get("columns").AsArray()) {
      ColumnChunkMeta cm;
      cm.offset = c.GetInt("offset");
      cm.size = c.GetInt("size");
      if (c.Has("min")) cm.min = c.GetDouble("min");
      if (c.Has("max")) cm.max = c.GetDouble("max");
      rg.columns.push_back(cm);
    }
    if (rg.columns.size() != meta.schema.size()) {
      return Status::IoError("row group column count mismatch");
    }
    meta.row_groups.push_back(std::move(rg));
  }
  return meta;
}

CofWriter::CofWriter(data::Schema schema, int64_t row_group_rows)
    : schema_(std::move(schema)),
      row_group_rows_(row_group_rows),
      buffer_(data::Chunk::Empty(schema_)) {
  SKYRISE_CHECK(row_group_rows_ > 0);
}

Status CofWriter::Append(const data::Chunk& chunk) {
  if (!(chunk.schema() == schema_)) {
    return Status::InvalidArgument("chunk schema mismatch");
  }
  if (chunk.is_synthetic()) {
    return Status::InvalidArgument("cannot write synthetic chunk");
  }
  buffer_.Append(chunk);
  while (buffer_.rows() >= row_group_rows_) FlushRowGroup();
  return Status::OK();
}

void CofWriter::FlushRowGroup() {
  const int64_t take = std::min<int64_t>(buffer_.rows(), row_group_rows_);
  if (take == 0) return;
  // Split buffer into [0, take) and the remainder.
  data::Chunk group = data::Chunk::Empty(schema_);
  data::Chunk rest = data::Chunk::Empty(schema_);
  std::vector<uint32_t> head, tail;
  for (int64_t i = 0; i < buffer_.rows(); ++i) {
    (i < take ? head : tail).push_back(static_cast<uint32_t>(i));
  }
  std::vector<data::Column> head_cols, tail_cols;
  for (size_t c = 0; c < buffer_.num_columns(); ++c) {
    head_cols.push_back(buffer_.column(c).Filter(head));
    tail_cols.push_back(buffer_.column(c).Filter(tail));
  }
  group = data::Chunk(schema_, std::move(head_cols));
  rest = data::Chunk(schema_, std::move(tail_cols));

  RowGroupMeta rg;
  rg.rows = group.rows();
  for (size_t c = 0; c < group.num_columns(); ++c) {
    ColumnChunkMeta cm;
    cm.offset = static_cast<int64_t>(data_.size());
    cm.min = ColumnMin(group.column(c));
    cm.max = ColumnMax(group.column(c));
    std::string encoded;
    EncodeColumn(group.column(c), &encoded);
    cm.size = static_cast<int64_t>(encoded.size());
    data_ += encoded;
    rg.columns.push_back(cm);
  }
  row_groups_.push_back(std::move(rg));
  buffer_ = std::move(rest);
}

std::string CofWriter::Finish() {
  while (buffer_.rows() > 0) FlushRowGroup();
  FileMeta meta;
  meta.schema = schema_;
  meta.row_groups = std::move(row_groups_);
  meta.data_size = static_cast<int64_t>(data_.size());
  const std::string footer = meta.ToJson().Dump();
  std::string out = std::move(data_);
  out += footer;
  const uint32_t footer_size = static_cast<uint32_t>(footer.size());
  char trailer[8];
  std::memcpy(trailer, &footer_size, 4);
  std::memcpy(trailer + 4, kMagic, 4);
  out.append(trailer, 8);
  return out;
}

std::string WriteCofFile(const data::Schema& schema,
                         const std::vector<data::Chunk>& chunks,
                         int64_t row_group_rows) {
  CofWriter writer(schema, row_group_rows);
  for (const auto& chunk : chunks) SKYRISE_CHECK_OK(writer.Append(chunk));
  return writer.Finish();
}

FileMeta BuildSyntheticFileMeta(
    const data::Schema& schema, int64_t rows, int64_t target_bytes,
    int64_t row_group_rows,
    const std::vector<SyntheticColumnStats>& stats) {
  SKYRISE_CHECK(rows >= 0 && row_group_rows > 0);
  FileMeta meta;
  meta.schema = schema;
  meta.synthetic = true;
  meta.data_size = target_bytes;
  const int64_t groups = std::max<int64_t>(1, (rows + row_group_rows - 1) /
                                                  row_group_rows);
  const double bytes_per_row =
      rows > 0 ? static_cast<double>(target_bytes) / rows : 0;
  int64_t offset = 0;
  int64_t remaining = rows;
  for (int64_t g = 0; g < groups; ++g) {
    RowGroupMeta rg;
    rg.rows = std::min(remaining, row_group_rows);
    remaining -= rg.rows;
    const int64_t group_bytes =
        static_cast<int64_t>(bytes_per_row * rg.rows);
    const int64_t per_column =
        std::max<int64_t>(1, group_bytes / static_cast<int64_t>(schema.size()));
    for (size_t c = 0; c < schema.size(); ++c) {
      ColumnChunkMeta cm;
      cm.offset = offset;
      cm.size = per_column;
      offset += per_column;
      // Spread each column's global [min, max] range over the row groups so
      // range predicates prune a realistic subset (clustered layout).
      for (const auto& s : stats) {
        if (s.column == schema.field(c).name) {
          const double span = (s.max - s.min) / static_cast<double>(groups);
          cm.min = s.min + span * static_cast<double>(g);
          cm.max = s.min + span * static_cast<double>(g + 1);
        }
      }
      rg.columns.push_back(cm);
    }
    meta.row_groups.push_back(std::move(rg));
  }
  meta.data_size = offset;
  return meta;
}

Result<FileMeta> ParseFooter(const std::string& tail, int64_t tail_offset,
                             int64_t file_size) {
  if (tail.size() < kCofTrailerSize) return Status::IoError("file too small");
  const int64_t tail_end = tail_offset + static_cast<int64_t>(tail.size());
  if (tail_end != file_size) {
    return Status::InvalidArgument("tail does not reach end of file");
  }
  if (std::memcmp(tail.data() + tail.size() - 4, kMagic, 4) != 0) {
    return Status::IoError("bad magic: not a COF file");
  }
  uint32_t footer_size;
  std::memcpy(&footer_size, tail.data() + tail.size() - 8, 4);
  if (footer_size + static_cast<size_t>(kCofTrailerSize) > tail.size()) {
    return Status::IoError("footer larger than fetched tail");
  }
  const std::string footer =
      tail.substr(tail.size() - kCofTrailerSize - footer_size, footer_size);
  Json json;
  SKYRISE_ASSIGN_OR_RETURN(json, Json::Parse(footer));
  return FileMeta::FromJson(json);
}

Result<std::vector<ColumnRange>> RowGroupColumnRanges(
    const FileMeta& meta, size_t row_group,
    const std::vector<std::string>& projection) {
  if (row_group >= meta.row_groups.size()) {
    return Status::OutOfRange("row group index");
  }
  const RowGroupMeta& rg = meta.row_groups[row_group];
  std::vector<ColumnRange> ranges;
  ranges.reserve(projection.size());
  for (const auto& name : projection) {
    const int idx = meta.schema.FieldIndex(name);
    if (idx < 0) return Status::NotFound("no column: " + name);
    const ColumnChunkMeta& cm = rg.columns[static_cast<size_t>(idx)];
    ranges.push_back(ColumnRange{cm.offset, cm.size});
  }
  return ranges;
}

Status DecodeRowGroupInto(const FileMeta& meta, size_t row_group,
                          const std::vector<std::string>& projection,
                          const std::vector<std::string>& column_bytes,
                          data::Chunk* out) {
  if (row_group >= meta.row_groups.size()) {
    return Status::OutOfRange("row group index");
  }
  if (projection.size() != column_bytes.size()) {
    return Status::InvalidArgument("projection/bytes size mismatch");
  }
  const RowGroupMeta& rg = meta.row_groups[row_group];
  data::Schema projected;
  SKYRISE_ASSIGN_OR_RETURN(projected, meta.schema.Select(projection));
  if (meta.synthetic) {
    *out = data::Chunk::Synthetic(std::move(projected), rg.rows);
    return Status::OK();
  }
  out->PrepareFor(projected);
  for (size_t i = 0; i < projection.size(); ++i) {
    SKYRISE_RETURN_IF_ERROR(DecodeColumnInto(
        column_bytes[i].data(), column_bytes[i].size(),
        projected.field(i).type, rg.rows, &out->column(i)));
  }
  return Status::OK();
}

Result<data::Chunk> DecodeRowGroup(
    const FileMeta& meta, size_t row_group,
    const std::vector<std::string>& projection,
    const std::vector<std::string>& column_bytes) {
  data::Chunk chunk;
  SKYRISE_RETURN_IF_ERROR(
      DecodeRowGroupInto(meta, row_group, projection, column_bytes, &chunk));
  return chunk;
}

}  // namespace skyrise::format
