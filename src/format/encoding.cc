#include "format/encoding.h"

#include <cstring>
#include <map>

namespace skyrise::format {

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

Result<uint64_t> GetVarint(const std::string& in, size_t* pos) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < in.size() && shift <= 63) {
    const uint8_t byte = static_cast<uint8_t>(in[(*pos)++]);
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
  return Status::IoError("truncated varint");
}

uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

ColumnEncoding EncodeColumn(const data::Column& column, std::string* out) {
  using data::DataType;
  switch (column.type()) {
    case DataType::kDouble: {
      out->push_back(static_cast<char>(ColumnEncoding::kDoubleRaw));
      const auto& vals = column.doubles();
      const size_t base = out->size();
      out->resize(base + vals.size() * 8);
      std::memcpy(out->data() + base, vals.data(), vals.size() * 8);
      return ColumnEncoding::kDoubleRaw;
    }
    case DataType::kString: {
      const auto& vals = column.strings();
      // Count distinct values (bail out once clearly high-cardinality).
      std::map<std::string, uint32_t> dict;
      for (const auto& s : vals) {
        dict.emplace(s, 0);
        if (dict.size() > 255) break;
      }
      if (dict.size() <= 255 && !vals.empty()) {
        out->push_back(static_cast<char>(ColumnEncoding::kStringDict));
        uint32_t next = 0;
        for (auto& [key, id] : dict) id = next++;
        PutVarint(out, dict.size());
        for (const auto& [key, id] : dict) {
          PutVarint(out, key.size());
          out->append(key);
        }
        for (const auto& s : vals) {
          out->push_back(static_cast<char>(dict[s]));
        }
        return ColumnEncoding::kStringDict;
      }
      out->push_back(static_cast<char>(ColumnEncoding::kStringPlain));
      for (const auto& s : vals) {
        PutVarint(out, s.size());
        out->append(s);
      }
      return ColumnEncoding::kStringPlain;
    }
    default: {  // kInt64 / kDate.
      out->push_back(static_cast<char>(ColumnEncoding::kIntDelta));
      int64_t prev = 0;
      for (int64_t v : column.ints()) {
        PutVarint(out, ZigzagEncode(v - prev));
        prev = v;
      }
      return ColumnEncoding::kIntDelta;
    }
  }
}

Result<data::Column> DecodeColumn(const std::string& bytes,
                                  data::DataType type, int64_t rows) {
  using data::DataType;
  if (bytes.empty()) return Status::IoError("empty column chunk");
  const auto encoding = static_cast<ColumnEncoding>(bytes[0]);
  size_t pos = 1;
  data::Column column(type);
  switch (encoding) {
    case ColumnEncoding::kDoubleRaw: {
      if (type != DataType::kDouble) {
        return Status::IoError("encoding/type mismatch");
      }
      if (bytes.size() - pos < static_cast<size_t>(rows) * 8) {
        return Status::IoError("truncated double chunk");
      }
      column.doubles().resize(static_cast<size_t>(rows));
      std::memcpy(column.doubles().data(), bytes.data() + pos,
                  static_cast<size_t>(rows) * 8);
      return column;
    }
    case ColumnEncoding::kStringDict: {
      if (type != DataType::kString) {
        return Status::IoError("encoding/type mismatch");
      }
      uint64_t dict_size;
      SKYRISE_ASSIGN_OR_RETURN(dict_size, GetVarint(bytes, &pos));
      std::vector<std::string> dict;
      dict.reserve(dict_size);
      for (uint64_t i = 0; i < dict_size; ++i) {
        uint64_t len;
        SKYRISE_ASSIGN_OR_RETURN(len, GetVarint(bytes, &pos));
        if (pos + len > bytes.size()) {
          return Status::IoError("truncated dictionary");
        }
        dict.push_back(bytes.substr(pos, len));
        pos += len;
      }
      if (pos + static_cast<size_t>(rows) > bytes.size()) {
        return Status::IoError("truncated dict indices");
      }
      column.strings().reserve(static_cast<size_t>(rows));
      for (int64_t i = 0; i < rows; ++i) {
        const uint8_t id = static_cast<uint8_t>(bytes[pos + static_cast<size_t>(i)]);
        if (id >= dict.size()) return Status::IoError("bad dict index");
        column.strings().push_back(dict[id]);
      }
      return column;
    }
    case ColumnEncoding::kStringPlain: {
      if (type != DataType::kString) {
        return Status::IoError("encoding/type mismatch");
      }
      column.strings().reserve(static_cast<size_t>(rows));
      for (int64_t i = 0; i < rows; ++i) {
        uint64_t len;
        SKYRISE_ASSIGN_OR_RETURN(len, GetVarint(bytes, &pos));
        if (pos + len > bytes.size()) return Status::IoError("truncated string");
        column.strings().push_back(bytes.substr(pos, len));
        pos += len;
      }
      return column;
    }
    case ColumnEncoding::kIntDelta: {
      if (type != DataType::kInt64 && type != DataType::kDate) {
        return Status::IoError("encoding/type mismatch");
      }
      column.ints().reserve(static_cast<size_t>(rows));
      int64_t prev = 0;
      for (int64_t i = 0; i < rows; ++i) {
        uint64_t raw;
        SKYRISE_ASSIGN_OR_RETURN(raw, GetVarint(bytes, &pos));
        prev += ZigzagDecode(raw);
        column.ints().push_back(prev);
      }
      return column;
    }
  }
  return Status::IoError("unknown encoding");
}

}  // namespace skyrise::format
