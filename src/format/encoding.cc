#include "format/encoding.h"

#include <cstring>
#include <map>

namespace skyrise::format {

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

Result<uint64_t> GetVarint(const std::string& in, size_t* pos) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < in.size() && shift <= 63) {
    const uint8_t byte = static_cast<uint8_t>(in[(*pos)++]);
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
  return Status::IoError("truncated varint");
}

uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

ColumnEncoding EncodeColumn(const data::Column& column, std::string* out) {
  using data::DataType;
  switch (column.type()) {
    case DataType::kDouble: {
      out->push_back(static_cast<char>(ColumnEncoding::kDoubleRaw));
      const auto& vals = column.doubles();
      const size_t base = out->size();
      out->resize(base + vals.size() * 8);
      std::memcpy(out->data() + base, vals.data(), vals.size() * 8);
      return ColumnEncoding::kDoubleRaw;
    }
    case DataType::kString: {
      const auto& vals = column.strings();
      // Count distinct values (bail out once clearly high-cardinality).
      std::map<std::string, uint32_t> dict;
      for (const auto& s : vals) {
        dict.emplace(s, 0);
        if (dict.size() > 255) break;
      }
      if (dict.size() <= 255 && !vals.empty()) {
        out->push_back(static_cast<char>(ColumnEncoding::kStringDict));
        uint32_t next = 0;
        for (auto& [key, id] : dict) id = next++;
        PutVarint(out, dict.size());
        for (const auto& [key, id] : dict) {
          PutVarint(out, key.size());
          out->append(key);
        }
        for (const auto& s : vals) {
          out->push_back(static_cast<char>(dict[s]));
        }
        return ColumnEncoding::kStringDict;
      }
      out->push_back(static_cast<char>(ColumnEncoding::kStringPlain));
      for (const auto& s : vals) {
        PutVarint(out, s.size());
        out->append(s);
      }
      return ColumnEncoding::kStringPlain;
    }
    default: {  // kInt64 / kDate.
      out->push_back(static_cast<char>(ColumnEncoding::kIntDelta));
      int64_t prev = 0;
      for (int64_t v : column.ints()) {
        PutVarint(out, ZigzagEncode(v - prev));
        prev = v;
      }
      return ColumnEncoding::kIntDelta;
    }
  }
}

namespace {

/// Pointer-walking varint decode over a contiguous span; returns the
/// position past the varint, or nullptr on truncation/overflow. The caller
/// handles the one-byte fast path inline, so this only runs for multi-byte
/// values.
inline const uint8_t* GetVarintSpan(const uint8_t* p, const uint8_t* end,
                                    uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (p < end && shift <= 63) {
    const uint8_t byte = *p++;
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return p;
    }
    shift += 7;
  }
  return nullptr;
}

}  // namespace

Status DecodeColumnInto(const char* data, size_t size, data::DataType type,
                        int64_t rows, data::Column* out) {
  using data::DataType;
  if (size == 0) return Status::IoError("empty column chunk");
  if (out->type() != type) out->Reset(type);
  const auto encoding = static_cast<ColumnEncoding>(data[0]);
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data) + 1;
  const uint8_t* const end = reinterpret_cast<const uint8_t*>(data) + size;
  switch (encoding) {
    case ColumnEncoding::kDoubleRaw: {
      if (type != DataType::kDouble) {
        return Status::IoError("encoding/type mismatch");
      }
      if (static_cast<size_t>(end - p) < static_cast<size_t>(rows) * 8) {
        return Status::IoError("truncated double chunk");
      }
      out->doubles().resize(static_cast<size_t>(rows));
      std::memcpy(out->doubles().data(), p, static_cast<size_t>(rows) * 8);
      return Status::OK();
    }
    case ColumnEncoding::kStringDict: {
      if (type != DataType::kString) {
        return Status::IoError("encoding/type mismatch");
      }
      uint64_t dict_size = 0;
      p = GetVarintSpan(p, end, &dict_size);
      if (p == nullptr) return Status::IoError("truncated varint");
      std::vector<std::pair<const char*, size_t>> dict;
      dict.reserve(dict_size);
      for (uint64_t i = 0; i < dict_size; ++i) {
        uint64_t len = 0;
        p = GetVarintSpan(p, end, &len);
        if (p == nullptr) return Status::IoError("truncated varint");
        if (static_cast<size_t>(end - p) < len) {
          return Status::IoError("truncated dictionary");
        }
        dict.emplace_back(reinterpret_cast<const char*>(p), len);
        p += len;
      }
      if (static_cast<size_t>(end - p) < static_cast<size_t>(rows)) {
        return Status::IoError("truncated dict indices");
      }
      auto& strings = out->strings();
      strings.resize(static_cast<size_t>(rows));
      for (int64_t i = 0; i < rows; ++i) {
        const uint8_t id = p[i];
        if (id >= dict.size()) return Status::IoError("bad dict index");
        // assign into the existing element: per-string capacity is recycled
        // across decode calls when the column buffer is pooled.
        strings[static_cast<size_t>(i)].assign(dict[id].first,
                                               dict[id].second);
      }
      return Status::OK();
    }
    case ColumnEncoding::kStringPlain: {
      if (type != DataType::kString) {
        return Status::IoError("encoding/type mismatch");
      }
      auto& strings = out->strings();
      strings.resize(static_cast<size_t>(rows));
      for (int64_t i = 0; i < rows; ++i) {
        uint64_t len = 0;
        if (p < end && *p < 0x80) {
          len = *p++;  // One-byte fast path: typical TPC string lengths.
        } else {
          p = GetVarintSpan(p, end, &len);
          if (p == nullptr) return Status::IoError("truncated varint");
        }
        if (static_cast<size_t>(end - p) < len) {
          return Status::IoError("truncated string");
        }
        strings[static_cast<size_t>(i)].assign(
            reinterpret_cast<const char*>(p), len);
        p += len;
      }
      return Status::OK();
    }
    case ColumnEncoding::kIntDelta: {
      if (type != DataType::kInt64 && type != DataType::kDate) {
        return Status::IoError("encoding/type mismatch");
      }
      auto& ints = out->ints();
      ints.resize(static_cast<size_t>(rows));
      int64_t* dst = ints.data();
      int64_t prev = 0;
      for (int64_t i = 0; i < rows; ++i) {
        if (p < end && *p < 0x80) {
          // One-byte fast path: deltas of sorted keys / small domains.
          prev += ZigzagDecode(*p++);
          dst[i] = prev;
          continue;
        }
        uint64_t raw = 0;
        p = GetVarintSpan(p, end, &raw);
        if (p == nullptr) return Status::IoError("truncated varint");
        prev += ZigzagDecode(raw);
        dst[i] = prev;
      }
      return Status::OK();
    }
  }
  return Status::IoError("unknown encoding");
}

Result<data::Column> DecodeColumn(const std::string& bytes,
                                  data::DataType type, int64_t rows) {
  data::Column column(type);
  SKYRISE_RETURN_IF_ERROR(
      DecodeColumnInto(bytes.data(), bytes.size(), type, rows, &column));
  return column;
}

}  // namespace skyrise::format
