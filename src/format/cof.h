#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "data/chunk.h"

/// \file cof.h
/// COF — Columnar Object Format. A Parquet/ORC-style immutable columnar file
/// used for base tables and shuffle intermediates:
///
///   [row group 0: col chunk 0, col chunk 1, ...]
///   [row group 1: ...]
///   [JSON footer: schema, per-row-group column offsets/sizes, min/max]
///   [footer length: 4 bytes LE][magic "COF1"]
///
/// Readers fetch the footer with a single trailing range request, prune row
/// groups by min/max statistics (selection pushdown), and fetch only the
/// column chunks a query projects (projection pushdown) — the Section 3.2
/// access pattern on cloud object storage.
///
/// For paper-scale experiments a file can be *synthetic*: the footer is
/// materialized, the data region is a size without content, and scans yield
/// synthetic chunks (row counts only) through the same request sequence.

namespace skyrise::format {

struct ColumnChunkMeta {
  int64_t offset = 0;  ///< Absolute file offset.
  int64_t size = 0;
  /// Min/max for numeric/date columns (unset for strings).
  std::optional<double> min;
  std::optional<double> max;
};

struct RowGroupMeta {
  int64_t rows = 0;
  std::vector<ColumnChunkMeta> columns;  ///< One per schema field.
};

struct FileMeta {
  data::Schema schema;
  std::vector<RowGroupMeta> row_groups;
  int64_t data_size = 0;  ///< Bytes before the footer.
  bool synthetic = false;

  int64_t TotalRows() const;
  Json ToJson() const;
  [[nodiscard]] static Result<FileMeta> FromJson(const Json& json);
};

constexpr int64_t kCofTrailerSize = 8;  ///< Footer length + magic.
/// Readers fetch this much from the file tail to get trailer + footer in one
/// request for typical footers.
constexpr int64_t kFooterFetchSize = 16 * 1024;

class CofWriter {
 public:
  /// `row_group_rows`: target rows per row group.
  explicit CofWriter(data::Schema schema, int64_t row_group_rows = 65536);

  /// Appends a materialized chunk (split across row groups as needed).
  [[nodiscard]] Status Append(const data::Chunk& chunk);

  /// Finalizes and returns the file bytes.
  std::string Finish();

 private:
  void FlushRowGroup();

  data::Schema schema_;
  int64_t row_group_rows_;
  data::Chunk buffer_;
  std::string data_;
  std::vector<RowGroupMeta> row_groups_;
};

/// Serializes a materialized table in one call.
std::string WriteCofFile(const data::Schema& schema,
                         const std::vector<data::Chunk>& chunks,
                         int64_t row_group_rows = 65536);

/// Builds the footer for a synthetic file of `rows` rows and roughly
/// `target_bytes` of data, with per-column min/max ranges supplied by
/// `stats` (nullptr => no stats). Returns (footer-only file bytes to attach,
/// total synthetic file size). The returned FileMeta describes the file.
struct SyntheticColumnStats {
  std::string column;
  double min = 0;
  double max = 0;
};

FileMeta BuildSyntheticFileMeta(const data::Schema& schema, int64_t rows,
                                int64_t target_bytes, int64_t row_group_rows,
                                const std::vector<SyntheticColumnStats>& stats);

/// Parses a footer from the trailing `tail` bytes of a file of `file_size`
/// bytes. `tail_offset` is the file offset where `tail` begins.
[[nodiscard]] Result<FileMeta> ParseFooter(const std::string& tail, int64_t tail_offset,
                             int64_t file_size);

/// One ranged read needed to fetch a projected column chunk of a row group.
struct ColumnRange {
  int64_t offset = 0;  ///< Absolute file offset.
  int64_t size = 0;
};

/// The ranged reads needed to decode row group `row_group` restricted to
/// `projection` (in projection order) — the unit of incremental, per-row-group
/// fetching. Synthetic files report the same ranges so the request sequence
/// matches the real layout.
[[nodiscard]] Result<std::vector<ColumnRange>> RowGroupColumnRanges(
    const FileMeta& meta, size_t row_group,
    const std::vector<std::string>& projection);

/// Decodes one row group (selected columns, in `projection` order) from
/// per-column chunk bytes.
[[nodiscard]] Result<data::Chunk> DecodeRowGroup(
    const FileMeta& meta, size_t row_group,
    const std::vector<std::string>& projection,
    const std::vector<std::string>& column_bytes);

/// Decode-into variant: reshapes `out` to the projected schema and decodes
/// each column chunk into its reused buffers (see format::DecodeColumnInto).
/// With a pooled `out` chunk, steady-state row-group decode performs no
/// column-vector allocations. Synthetic files reset `out` to a synthetic
/// chunk. On error `out`'s contents are unspecified.
[[nodiscard]] Status DecodeRowGroupInto(
    const FileMeta& meta, size_t row_group,
    const std::vector<std::string>& projection,
    const std::vector<std::string>& column_bytes, data::Chunk* out);

/// Registry of synthetic file footers, consulted by readers when the stored
/// blob carries no real bytes. Keyed by the storage key.
class SyntheticFileCatalog {
 public:
  void Register(const std::string& key, FileMeta meta) {
    files_[key] = std::move(meta);
  }
  [[nodiscard]] Result<FileMeta> Find(const std::string& key) const {
    auto it = files_.find(key);
    if (it == files_.end()) return Status::NotFound("no synthetic meta: " + key);
    return it->second;
  }
  bool Contains(const std::string& key) const { return files_.count(key) > 0; }

 private:
  std::map<std::string, FileMeta> files_;
};

}  // namespace skyrise::format
