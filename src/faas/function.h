#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/json.h"
#include "common/units.h"
#include "net/fabric_driver.h"
#include "net/nic.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/environment.h"

/// \file function.h
/// Cloud function abstraction shared by the FaaS platform (Lambda) and the
/// IaaS shim (EC2): the paper deploys the *same* coordinator/worker binaries
/// on both. A handler is a C++ callback standing in for the function binary;
/// it drives simulated I/O through the context and must finish exactly once.

// skyrise-domain(sandbox-fleet)
namespace skyrise::faas {

struct FunctionConfig {
  std::string name;
  double memory_mib = 1769;
  int64_t binary_size_bytes = 8 * kMiB;  ///< Paper keeps binaries < 10 MiB.
  SimDuration timeout = Minutes(15);

  /// Lambda grants one vCPU equivalent per 1,769 MiB of configured memory.
  int vcpus() const {
    return std::max(1, static_cast<int>(memory_mib / 1769.0 + 0.5));
  }
  double memory_gib() const { return memory_mib / 1024.0; }
};

class FunctionContext;
using FunctionHandler =
    std::function<void(const std::shared_ptr<FunctionContext>&)>;
using ResponseCallback = std::function<void(Result<Json>)>;

/// Execution-environment handle passed to a running function.
class FunctionContext : public std::enable_shared_from_this<FunctionContext> {
 public:
  FunctionContext(sim::SimEnvironment* env, net::Nic* nic,
                  net::FabricDriver* fabric, Json payload, bool cold_start,
                  const FunctionConfig& config)
      : env_(env),
        nic_(nic),
        fabric_(fabric),
        payload_(std::move(payload)),
        cold_start_(cold_start),
        config_(config) {}

  sim::SimEnvironment* env() const { return env_; }
  /// The sandbox/instance NIC; storage clients pass it in a ClientContext so
  /// large payloads stream through the function's network budget.
  net::Nic* nic() const { return nic_; }
  net::FabricDriver* fabric() const { return fabric_; }
  const Json& payload() const { return payload_; }
  bool cold_start() const { return cold_start_; }
  const FunctionConfig& config() const { return config_; }

  /// Models CPU work: schedules `then` after `cpu_time` of virtual time.
  // skyrise-domain-crossing(sandbox lifecycle API: workload code charges CPU time to its own sandbox by scheduling through the sim-kernel event loop)
  void Compute(SimDuration cpu_time, std::function<void()> then) {
    env_->Schedule(cpu_time, std::move(then));
  }

  /// Completes the invocation successfully. Must be called exactly once.
  void Finish(Json response) {
    SKYRISE_CHECK(!finished_);
    finished_ = true;
    if (on_finish_) on_finish_(std::move(response));
  }

  /// Completes the invocation with an error.
  // skyrise-domain-crossing(sandbox lifecycle API: fires the completion callback the platform wired in before the handler ran)
  void FinishError(Status status) {
    SKYRISE_CHECK(!finished_);
    SKYRISE_CHECK(!status.ok());
    finished_ = true;
    if (on_finish_error_) on_finish_error_(std::move(status));
  }

  bool finished() const { return finished_; }

  // Wired by the platform before the handler runs.
  void set_on_finish(std::function<void(Json)> cb) {
    on_finish_ = std::move(cb);
  }
  void set_on_finish_error(std::function<void(Status)> cb) {
    on_finish_error_ = std::move(cb);
  }

  /// Observability hooks, wired by the platform before the handler runs.
  /// `span` is the execution span for this invocation; handlers open child
  /// spans under it and storage clients attribute request costs to it.
  /// All three may be null/kNoSpan when tracing is off.
  void set_observability(obs::Tracer* tracer, obs::SpanId span,
                         obs::MetricsRegistry* metrics) {
    tracer_ = tracer;
    span_ = span;
    metrics_ = metrics;
  }
  obs::Tracer* tracer() const { return tracer_; }
  obs::SpanId span() const { return span_; }
  obs::MetricsRegistry* metrics() const { return metrics_; }

 private:
  sim::SimEnvironment* env_;
  // The sandbox's network attachment; transfers go through the
  // StartTransfer / NotifyIdle crossings.
  // skyrise-check: allow(domain-escape) — NIC attachment, crossings only.
  net::Nic* nic_;
  // skyrise-check: allow(domain-escape) — network attachment, see nic_.
  net::FabricDriver* fabric_;
  Json payload_;
  bool cold_start_;
  FunctionConfig config_;
  bool finished_ = false;
  std::function<void(Json)> on_finish_;
  std::function<void(Status)> on_finish_error_;
  obs::Tracer* tracer_ = nullptr;
  obs::SpanId span_ = obs::kNoSpan;
  obs::MetricsRegistry* metrics_ = nullptr;
};

/// Uploaded function binaries: name -> (config, handler). Shared between the
/// FaaS platform and the EC2 shim so both run identical "binaries".
class FunctionRegistry {
 public:
  [[nodiscard]] Status Register(const FunctionConfig& config, FunctionHandler handler) {
    if (functions_.count(config.name) > 0) {
      return Status::AlreadyExists("function exists: " + config.name);
    }
    functions_[config.name] = {config, std::move(handler)};
    return Status::OK();
  }

  struct Entry {
    FunctionConfig config;
    FunctionHandler handler;
  };

  [[nodiscard]] Result<Entry> Find(const std::string& name) const {
    auto it = functions_.find(name);
    if (it == functions_.end()) {
      return Status::NotFound("no such function: " + name);
    }
    return it->second;
  }

 private:
  std::map<std::string, Entry> functions_;
};

/// Compute platforms (FaaS or IaaS shim) expose the same invocation API, so
/// the engine's coordinator is deployment-agnostic (Fig. 4).
class ComputePlatform {
 public:
  virtual ~ComputePlatform() = default;
  virtual void Invoke(const std::string& function, Json payload,
                      ResponseCallback callback) = 0;
  virtual const std::string& platform_name() const = 0;

  /// Attaches a span/metric sink for the invocation lifecycle. Callers may
  /// carry a parent span into Invoke via `payload["trace_parent"]`.
  virtual void set_observer(obs::Tracer* /*tracer*/,
                            obs::MetricsRegistry* /*metrics*/) {}
};

}  // namespace skyrise::faas
