#include "faas/lambda_platform.h"

#include <algorithm>

#include "common/deadline.h"

namespace skyrise::faas {

LambdaPlatform::Options::Options() {
  frontend_latency = storage::LatencyProfile::FromMedianP95(3.0, 7.0);
  warm_overhead = storage::LatencyProfile::FromMedianP95(6.0, 14.0);
}

LambdaPlatform::LambdaPlatform(sim::SimEnvironment* env,
                               net::FabricDriver* fabric,
                               FunctionRegistry* registry,
                               const Options& options)
    : env_(env),
      fabric_(fabric),
      registry_(registry),
      opt_(options),
      rng_(env->ForkRng(options.rng_stream)) {}

int LambdaPlatform::WarmSandboxCount(const std::string& function) const {
  auto it = warm_pool_.find(function);
  return it == warm_pool_.end() ? 0 : static_cast<int>(it->second.size());
}

int LambdaPlatform::CurrentScaleLimit() {
  // Concurrency may jump to the burst limit instantly, then the platform
  // scales tenant slots at `scale_rate_per_minute`. Regional contention slows
  // the ramp.
  int limit = opt_.burst_concurrency;
  if (ramp_start_ >= 0) {
    const double minutes = ToSeconds(env_->now() - ramp_start_) / 60.0;
    limit += static_cast<int>(opt_.scale_rate_per_minute * minutes /
                              opt_.region_contention);
  }
  return std::min(limit, opt_.account_concurrency);
}

// skyrise-domain-crossing(platform invocation API: the coordinator-to-fleet request boundary, an HTTP invoke against the provider in the real system)
void LambdaPlatform::Invoke(const std::string& function, Json payload,
                            ResponseCallback callback) {
  DoInvoke(function, std::move(payload), std::move(callback), 0);
}

void LambdaPlatform::InvokeAsync(const std::string& function, Json payload,
                                 ResponseCallback callback) {
  // Events are polled from queues by the polling service and invoked by
  // proxy, adding latency to the invocation path.
  DoInvoke(function, std::move(payload), std::move(callback),
           opt_.async_poll_latency);
}

void LambdaPlatform::DoInvoke(const std::string& function, Json payload,
                              ResponseCallback callback,
                              SimDuration extra_latency) {
  obs::SpanId invoke_span = obs::kNoSpan;
  if (tracer_ != nullptr) {
    invoke_span = tracer_->Begin("lambda", "invoke " + function, "faas",
                                 payload.GetInt("trace_parent", obs::kNoSpan));
    // The invoke span closes when the caller's response callback fires, with
    // an outcome derived from the final status.
    auto inner = std::make_shared<ResponseCallback>(std::move(callback));
    callback = [this, invoke_span, inner](Result<Json> result) {
      const char* outcome = "ok";
      if (!result.ok()) {
        const Status& st = result.status();
        outcome = st.IsResourceExhausted() ? "throttle"
                  : st.IsDeadlineExceeded() ? "timeout"
                                            : "error";
      }
      tracer_->EndWith(invoke_span, outcome);
      (*inner)(std::move(result));
    };
  }
  SimDuration frontend =
      storage::SampleLatency(opt_.frontend_latency, &rng_) + extra_latency;
  if (fault_injector_ != nullptr) {
    frontend += fault_injector_->MaybeInvokeDelay();
  }
  obs::SpanId frontend_span = obs::kNoSpan;
  if (tracer_ != nullptr) {
    frontend_span = tracer_->Begin("lambda", "frontend", "faas", invoke_span);
  }
  env_->Schedule(frontend, [this, function, invoke_span, frontend_span,
                            payload = std::move(payload),
                            callback = std::move(callback)]() mutable {
    if (tracer_ != nullptr) tracer_->End(frontend_span);
    ++stats_.invocations;
    if (metrics_ != nullptr) metrics_->Add("lambda.invocations");
    // Admission: account-level concurrent execution quota.
    auto entry = registry_->Find(function);
    if (!entry.ok()) {
      ++stats_.errors;
      if (metrics_ != nullptr) metrics_->Add("lambda.errors");
      callback(entry.status());
      return;
    }
    if (active_ >= opt_.account_concurrency) {
      ++stats_.throttles;
      if (metrics_ != nullptr) metrics_->Add("lambda.throttles");
      if (tracer_ != nullptr) {
        tracer_->Instant("lambda", "throttle.concurrency", "faas",
                         invoke_span);
      }
      callback(Status::ResourceExhausted(
          "429 TooManyRequestsException: account concurrency"));
      return;
    }
    // Burst/ramp scaling: beyond the initial burst, capacity grows at a
    // fixed rate per minute.
    if (active_ >= opt_.burst_concurrency && ramp_start_ < 0) {
      ramp_start_ = env_->now();
    }
    if (active_ >= CurrentScaleLimit()) {
      ++stats_.throttles;
      if (metrics_ != nullptr) metrics_->Add("lambda.throttles");
      if (tracer_ != nullptr) {
        tracer_->Instant("lambda", "throttle.scaling", "faas", invoke_span);
      }
      callback(Status::ResourceExhausted(
          "429 TooManyRequestsException: scaling rate"));
      return;
    }
    ++active_;
    if (active_ > stats_.active_peak) {
      stats_.active_peak = active_;
      if (metrics_ != nullptr) metrics_->Max("lambda.active_peak", active_);
    }

    // Assignment: look for a warm sandbox.
    auto& pool = warm_pool_[function];
    if (!pool.empty()) {
      std::shared_ptr<Sandbox> sandbox = std::move(pool.front());
      pool.pop_front();
      --warm_total_;
      env_->Cancel(sandbox->reap_event);
      ++stats_.warm_starts;
      if (metrics_ != nullptr) metrics_->Add("lambda.warm_starts");
      const SimDuration dispatch =
          storage::SampleLatency(opt_.warm_overhead, &rng_);
      obs::SpanId warm_span = obs::kNoSpan;
      if (tracer_ != nullptr) {
        warm_span = tracer_->Begin("lambda", "warm dispatch", "faas",
                                   invoke_span);
      }
      env_->Schedule(dispatch, [this, invoke_span, warm_span,
                                entry = std::move(entry).ValueUnsafe(),
                                sandbox = std::move(sandbox),
                                payload = std::move(payload),
                                callback = std::move(callback)]() mutable {
        if (tracer_ != nullptr) tracer_->End(warm_span);
        Execute(entry, std::move(sandbox), std::move(payload), /*cold=*/false,
                invoke_span, std::move(callback));
      });
      return;
    }

    // Placement: create a new execution environment (coldstart).
    ++stats_.cold_starts;
    ++stats_.sandboxes_created;
    if (metrics_ != nullptr) metrics_->Add("lambda.cold_starts");
    auto sandbox = std::make_shared<Sandbox>();
    sandbox->nic = std::make_unique<net::LambdaNic>();
    sandbox->id = next_sandbox_id_++;
    const SimDuration cold = SampleColdstart(entry->config);
    if (metrics_ != nullptr) {
      metrics_->Record("lambda.coldstart_ms", ToMillis(cold));
    }
    obs::SpanId cold_span = obs::kNoSpan;
    if (tracer_ != nullptr) {
      cold_span = tracer_->Begin("lambda", "coldstart", "faas", invoke_span);
      tracer_->SetArg(cold_span, "binary_bytes",
                      Json(entry->config.binary_size_bytes));
    }
    env_->Schedule(cold, [this, invoke_span, cold_span,
                          entry = std::move(entry).ValueUnsafe(),
                          sandbox = std::move(sandbox),
                          payload = std::move(payload),
                          callback = std::move(callback)]() mutable {
      if (tracer_ != nullptr) tracer_->End(cold_span);
      Execute(entry, std::move(sandbox), std::move(payload), /*cold=*/true,
              invoke_span, std::move(callback));
    });
  });
}

SimDuration LambdaPlatform::SampleColdstart(const FunctionConfig& config) {
  double ms = ToMillis(opt_.coldstart_base) +
              ToMillis(opt_.runtime_init) +
              static_cast<double>(config.binary_size_bytes) /
                  opt_.binary_init_rate * 1000.0;
  ms *= rng_.Lognormal(0.0, opt_.coldstart_sigma) * opt_.region_contention;
  if (rng_.Bernoulli(opt_.coldstart_straggler_probability)) {
    ms += rng_.Pareto(opt_.coldstart_straggler_scale_ms,
                      opt_.coldstart_straggler_alpha);
  }
  return Millis(ms);
}

void LambdaPlatform::Execute(const FunctionRegistry::Entry& entry,
                             std::shared_ptr<Sandbox> sandbox, Json payload,
                             bool cold, obs::SpanId invoke_span,
                             ResponseCallback callback) {
  // End-to-end deadline: a propagated "deadline_us" (absolute sim time)
  // clamps the configured function timeout to the query's remaining
  // lifetime, so an execution never outlives the query that invoked it.
  const Deadline deadline = Deadline::At(payload.GetInt("deadline_us", 0));
  auto ctx = std::make_shared<FunctionContext>(
      env_, sandbox->nic.get(), fabric_, std::move(payload), cold,
      entry.config);
  const SimTime exec_start = env_->now();
  const std::string function = entry.config.name;
  ++sandbox->uses;
  obs::SpanId exec_span = obs::kNoSpan;
  if (tracer_ != nullptr) {
    exec_span = tracer_->Begin("lambda", "exec " + function, "faas",
                               invoke_span);
    tracer_->SetArg(exec_span, "cold", Json(cold));
    tracer_->SetArg(exec_span, "memory_mib", Json(entry.config.memory_mib));
  }
  ctx->set_observability(tracer_, exec_span, metrics_);
  // The handler, the enforced timeout, and an injected crash race to settle
  // the execution; whichever claims the gate first wins, the others no-op.
  struct Gate {
    bool settled = false;
    sim::EventId timeout_event = sim::kInvalidEventId;
    sim::EventId crash_event = sim::kInvalidEventId;
  };
  auto gate = std::make_shared<Gate>();
  // Shared cleanup. Abnormal terminations (timeout, sandbox kill) tear the
  // execution environment down instead of returning it to the warm pool.
  // The billed invocation cost is attributed to the execution span; the
  // handler may keep running as a zombie after an abnormal settle, so its
  // child spans (on other tracks) can outlive this one.
  auto settle = [this, gate, exec_start, exec_span, function, sandbox,
                 config = entry.config](bool keep_sandbox,
                                        const char* outcome) {
    env_->Cancel(gate->timeout_event);
    env_->Cancel(gate->crash_event);
    const SimDuration duration = env_->now() - exec_start;
    const double usd = meter_.RecordLambdaInvocation(
        config.memory_gib(), std::max<SimDuration>(duration, 1));
    if (tracer_ != nullptr) {
      tracer_->AddCost(exec_span, usd);
      tracer_->EndWith(exec_span, outcome);
    }
    if (metrics_ != nullptr) {
      metrics_->Record("lambda.exec_ms", ToMillis(duration));
    }
    --active_;
    if (keep_sandbox) {
      sandbox->nic->NotifyIdle();
      ReleaseSandbox(function, sandbox);
    }
  };
  ctx->set_on_finish([gate, settle, callback](Json response) mutable {
    if (gate->settled) return;
    gate->settled = true;
    settle(/*keep_sandbox=*/true, "ok");
    callback(std::move(response));
  });
  ctx->set_on_finish_error(
      [this, gate, settle, callback](Status status) mutable {
        if (gate->settled) return;
        gate->settled = true;
        ++stats_.errors;
        if (metrics_ != nullptr) metrics_->Add("lambda.errors");
        settle(/*keep_sandbox=*/true, "error");
        callback(std::move(status));
      });
  SimDuration timeout = entry.config.timeout;
  bool deadline_clamped = false;
  if (deadline.bounded()) {
    const SimDuration remaining =
        std::max<SimDuration>(1, deadline.Remaining(env_->now()));
    if (timeout <= 0 || remaining < timeout) {
      timeout = remaining;
      deadline_clamped = true;
    }
  }
  if (timeout > 0) {
    gate->timeout_event = env_->Schedule(
        timeout,
        [this, gate, settle, callback, function, deadline_clamped] {
          if (gate->settled) return;
          gate->settled = true;
          ++stats_.timeouts;
          ++stats_.errors;
          if (metrics_ != nullptr) {
            metrics_->Add("lambda.timeouts");
            metrics_->Add("lambda.errors");
            if (deadline_clamped) metrics_->Add("lambda.deadline_kills");
          }
          settle(/*keep_sandbox=*/false, "timeout");
          callback(Status::DeadlineExceeded(
              (deadline_clamped ? "Query deadline exceeded in: "
                                : "Task timed out: ") +
              function));
        });
  }
  if (fault_injector_ != nullptr) {
    const auto crash = fault_injector_->SampleCrash(function);
    if (crash.crash) {
      gate->crash_event = env_->Schedule(
          crash.after,
          [this, gate, settle, callback, function,
           kill = crash.kill_sandbox] {
            if (gate->settled) return;
            gate->settled = true;
            ++stats_.crashes;
            ++stats_.errors;
            if (metrics_ != nullptr) {
              metrics_->Add("lambda.crashes");
              metrics_->Add("lambda.errors");
            }
            settle(/*keep_sandbox=*/!kill, "crash");
            callback(Status::IoError("function crashed (injected): " +
                                     function));
          });
    }
  }
  entry.handler(ctx);
}

void LambdaPlatform::ReleaseSandbox(const std::string& function,
                                    std::shared_ptr<Sandbox> sandbox) {
  const uint64_t id = sandbox->id;
  const double lifetime_ms =
      ToMillis(opt_.idle_lifetime_median) *
      rng_.Lognormal(0.0, opt_.idle_lifetime_sigma);
  sandbox->reap_event = env_->Schedule(Millis(lifetime_ms), [this, function,
                                                             id] {
    auto& pool = warm_pool_[function];
    for (auto it = pool.begin(); it != pool.end(); ++it) {
      if ((*it)->id == id) {
        const int64_t uses = (*it)->uses;
        pool.erase(it);
        --warm_total_;
        ++stats_.reaped_sandboxes;
        if (metrics_ != nullptr) {
          metrics_->Add("lambda.reaped_sandboxes");
          // Reuse distribution: how many executions this environment served
          // before going idle long enough to be reclaimed.
          metrics_->Record("lambda.sandbox_uses",
                           static_cast<double>(uses));
        }
        if (tracer_ != nullptr) {
          tracer_->Instant("lambda", "sandbox.reap", "faas");
        }
        return;
      }
    }
  });
  warm_pool_[function].push_back(std::move(sandbox));
  ++warm_total_;
  if (warm_total_ > stats_.warm_pool_peak) {
    stats_.warm_pool_peak = warm_total_;
    if (metrics_ != nullptr) {
      metrics_->Max("lambda.warm_pool_peak", warm_total_);
    }
  }
}

void LambdaPlatform::Prewarm(const std::string& function, int count) {
  for (int i = 0; i < count; ++i) {
    ++stats_.sandboxes_created;
    auto sandbox = std::make_shared<Sandbox>();
    sandbox->nic = std::make_unique<net::LambdaNic>();
    sandbox->id = next_sandbox_id_++;
    ReleaseSandbox(function, std::move(sandbox));
  }
}

}  // namespace skyrise::faas
