#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "faas/function.h"
#include "net/instance_specs.h"
#include "pricing/cost_meter.h"
#include "sim/fault_injector.h"

/// \file ec2_fleet.h
/// IaaS deployment: a provisioned cluster of EC2 VMs running function
/// binaries through a shim layer that resembles the Lambda execution
/// environment (Section 3.1). Invocations are queued and distributed across
/// the available worker slots; there are no coldstarts, but capacity is
/// fixed and billed for the full fleet lifetime.

// skyrise-domain(sandbox-fleet)
namespace skyrise::faas {

class Ec2Fleet : public ComputePlatform {
 public:
  struct Options {
    std::string instance_type = "c6g.xlarge";
    int instance_count = 1;
    /// Worker slots per instance (a 4-vCPU worker on a 4-vCPU instance -> 1).
    int slots_per_instance = 1;
    /// VM boot+bootstrap time when not pre-provisioned.
    SimDuration provision_time = Seconds(45);
    bool pre_provisioned = true;
    bool reserved_pricing = false;
    uint64_t rng_stream = 3501;
  };

  struct Stats {
    int64_t invocations = 0;
    int64_t errors = 0;
    int64_t timeouts = 0;  ///< Executions killed at FunctionConfig::timeout.
    int64_t crashes = 0;   ///< Injected worker-process crashes.
  };

  Ec2Fleet(sim::SimEnvironment* env, net::FabricDriver* fabric,
           FunctionRegistry* registry, const Options& options);
  SKYRISE_DISALLOW_COPY_AND_ASSIGN(Ec2Fleet);

  const std::string& platform_name() const override { return name_; }

  /// Boots the fleet; `on_ready` fires when all instances are up (instantly
  /// for pre-provisioned fleets).
  void Start(std::function<void()> on_ready);

  /// Stops the fleet and bills its lifetime.
  void Stop();

  /// Shim invocation: runs on a free slot or queues until one frees up.
  void Invoke(const std::string& function, Json payload,
              ResponseCallback callback) override;

  int free_slots() const { return free_slots_; }
  int queued() const { return static_cast<int>(queue_.size()); }
  int total_slots() const {
    return opt_.instance_count * opt_.slots_per_instance;
  }
  pricing::CostMeter* meter() { return &meter_; }
  bool running() const { return running_; }
  const Stats& stats() const { return stats_; }

  /// Installs a fault injector: worker processes may crash mid-execution
  /// (the slot is reclaimed either way). Pass nullptr to disable.
  void set_fault_injector(sim::FaultInjector* injector) {
    fault_injector_ = injector;
  }

  /// Emits the shim lifecycle (queueing, execution, fleet lifetime) as spans
  /// on track "ec2" and mirrors Stats onto "ec2.*" counters. The fleet's
  /// lifetime bill is attributed to the fleet span at Stop().
  void set_observer(obs::Tracer* tracer, obs::MetricsRegistry* metrics) override {
    tracer_ = tracer;
    metrics_ = metrics;
  }

 private:
  struct Pending {
    std::string function;
    Json payload;
    ResponseCallback callback;
    obs::SpanId invoke_span = obs::kNoSpan;
    obs::SpanId queued_span = obs::kNoSpan;
    SimTime enqueued_at = 0;
  };

  void Dispatch(Pending pending);
  void MaybeDispatch();

  sim::SimEnvironment* env_;
  // The fleet's network attachment; transfers go through the network
  // transfer API crossing (StartTransfer).
  // skyrise-check: allow(domain-escape) — NIC attachment, crossings only.
  net::FabricDriver* fabric_;
  FunctionRegistry* registry_;
  Options opt_;
  Rng rng_;
  sim::FaultInjector* fault_injector_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::SpanId fleet_span_ = obs::kNoSpan;
  Stats stats_;
  std::string name_ = "ec2";
  // Per-instance NICs the fleet owns and hands to its sandboxes; idle
  // signals use the NotifyIdle crossing.
  // skyrise-check: allow(domain-escape) — NIC attachment, crossings only.
  std::vector<std::unique_ptr<net::Ec2Nic>> nics_;
  std::vector<int> slot_instance_;  ///< Round-robin slot -> instance NIC.
  int free_slots_ = 0;
  std::deque<Pending> queue_;
  bool running_ = false;
  SimTime started_at_ = 0;
  pricing::CostMeter meter_;
  int next_slot_rr_ = 0;
};

}  // namespace skyrise::faas
