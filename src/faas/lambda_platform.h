#pragma once

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "faas/function.h"
#include "pricing/cost_meter.h"
#include "sim/fault_injector.h"
#include "storage/latency_model.h"

/// \file lambda_platform.h
/// AWS Lambda platform simulator following the Fig. 1 architecture:
///
///   request -> frontend (routing latency)
///           -> admission (account concurrency quota)
///           -> burst/ramp scaling (3,000 burst + 500/min)
///           -> assignment (warm sandbox lookup)
///           -> placement (coldstart: sandbox creation + binary download +
///              runtime init, scaled by binary size)
///           -> execution in a sandbox owning a LambdaNic
///
/// Warm sandboxes are reaped after a sampled idle lifetime; their NICs keep
/// their (idle-refilled) burst budgets across invocations. Asynchronous
/// invocations pass through the polling service and pay extra latency.

// skyrise-domain(sandbox-fleet)
namespace skyrise::faas {

class LambdaPlatform : public ComputePlatform {
 public:
  struct Options {
    int account_concurrency = 1000;  ///< Paper's quota raise: 10,000.
    int burst_concurrency = 3000;
    double scale_rate_per_minute = 500;

    // Coldstart model (the blue path in Fig. 1).
    SimDuration coldstart_base = Millis(140);  ///< Sandbox creation.
    double binary_init_rate = 40.0 * kMiB;     ///< Download+init bytes/s.
    SimDuration runtime_init = Millis(45);
    double coldstart_sigma = 0.35;  ///< Lognormal multiplier spread.
    /// Rare placement stragglers (multi-second coldstarts).
    double coldstart_straggler_probability = 0.004;
    double coldstart_straggler_scale_ms = 1500;
    double coldstart_straggler_alpha = 1.6;

    // Warm path and routing.
    storage::LatencyProfile frontend_latency;   ///< Per-hop routing.
    storage::LatencyProfile warm_overhead;      ///< Sandbox dispatch.
    SimDuration async_poll_latency = Millis(35);

    // Sandbox idle lifetime before reaping (minutes-scale, heavy spread).
    SimDuration idle_lifetime_median = Minutes(7);
    double idle_lifetime_sigma = 0.5;

    /// Regional contention multiplier on coldstart/ramp (Table 5: the EU
    /// region starts large clusters ~1.5x slower).
    double region_contention = 1.0;

    uint64_t rng_stream = 3001;

    Options();
  };

  struct Stats {
    int64_t invocations = 0;
    int64_t cold_starts = 0;
    int64_t warm_starts = 0;
    int64_t throttles = 0;
    int64_t reaped_sandboxes = 0;
    int64_t errors = 0;
    int64_t timeouts = 0;  ///< Executions killed at FunctionConfig::timeout.
    int64_t crashes = 0;   ///< Injected function crashes / sandbox kills.
    // Fleet accounting (serving scenarios share one fleet across tenants).
    int64_t sandboxes_created = 0;  ///< Coldstarts + prewarms.
    int64_t active_peak = 0;        ///< Max concurrent executions observed.
    int64_t warm_pool_peak = 0;     ///< Max idle warm sandboxes observed.
  };

  LambdaPlatform(sim::SimEnvironment* env, net::FabricDriver* fabric,
                 FunctionRegistry* registry, const Options& options);
  SKYRISE_DISALLOW_COPY_AND_ASSIGN(LambdaPlatform);

  const std::string& platform_name() const override { return name_; }

  /// Synchronous (request/response) invocation.
  void Invoke(const std::string& function, Json payload,
              ResponseCallback callback) override;

  /// Asynchronous/event invocation: routed via the polling service.
  void InvokeAsync(const std::string& function, Json payload,
                   ResponseCallback callback);

  int active_executions() const { return active_; }
  int WarmSandboxCount(const std::string& function) const;
  const Stats& stats() const { return stats_; }
  pricing::CostMeter* meter() { return &meter_; }
  const Options& options() const { return opt_; }

  /// Pre-warms `count` sandboxes (used by warm-start experiment setups).
  void Prewarm(const std::string& function, int count);

  /// Installs a fault injector: executions may crash mid-flight (optionally
  /// losing their sandbox) and invocations may pick up latency spikes.
  void set_fault_injector(sim::FaultInjector* injector) {
    fault_injector_ = injector;
  }

  /// Emits the invocation lifecycle (frontend routing, throttles, warm
  /// dispatch / coldstart, execution, sandbox reaping) as spans on track
  /// "lambda" and mirrors Stats onto "lambda.*" counters.
  void set_observer(obs::Tracer* tracer, obs::MetricsRegistry* metrics) override {
    tracer_ = tracer;
    metrics_ = metrics;
  }

 private:
  struct Sandbox {
    // The sandbox's attachment; idle signals use the NotifyIdle crossing.
    // skyrise-check: allow(domain-escape) — NIC attachment, crossings only.
    std::unique_ptr<net::LambdaNic> nic;
    sim::EventId reap_event = sim::kInvalidEventId;
    uint64_t id = 0;
    /// Executions served over this sandbox's lifetime; recorded to the
    /// "lambda.sandbox_uses" histogram at reap time, so warm-pool reuse
    /// across interleaved queries/tenants is measurable.
    int64_t uses = 0;
  };

  void DoInvoke(const std::string& function, Json payload,
                ResponseCallback callback, SimDuration extra_latency);
  void Execute(const FunctionRegistry::Entry& entry,
               std::shared_ptr<Sandbox> sandbox, Json payload, bool cold,
               obs::SpanId invoke_span, ResponseCallback callback);
  void ReleaseSandbox(const std::string& function,
                      std::shared_ptr<Sandbox> sandbox);
  SimDuration SampleColdstart(const FunctionConfig& config);
  int CurrentScaleLimit();

  sim::SimEnvironment* env_;
  // The platform's attachment; transfers use the StartTransfer crossing.
  // skyrise-check: allow(domain-escape) — NIC attachment, crossings only.
  net::FabricDriver* fabric_;
  FunctionRegistry* registry_;
  Options opt_;
  Rng rng_;
  sim::FaultInjector* fault_injector_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::string name_ = "lambda";
  std::map<std::string, std::deque<std::shared_ptr<Sandbox>>> warm_pool_;
  int active_ = 0;
  int warm_total_ = 0;
  SimTime ramp_start_ = -1;
  uint64_t next_sandbox_id_ = 1;
  Stats stats_;
  pricing::CostMeter meter_;
};

}  // namespace skyrise::faas
