#include "faas/ec2_fleet.h"

#include <algorithm>

#include "common/deadline.h"

namespace skyrise::faas {

Ec2Fleet::Ec2Fleet(sim::SimEnvironment* env, net::FabricDriver* fabric,
                   FunctionRegistry* registry, const Options& options)
    : env_(env),
      fabric_(fabric),
      registry_(registry),
      opt_(options),
      rng_(env->ForkRng(options.rng_stream)) {
  SKYRISE_CHECK(opt_.instance_count >= 1 && opt_.slots_per_instance >= 1);
  auto nic_options = net::MakeEc2NicOptions(opt_.instance_type);
  SKYRISE_CHECK_OK(nic_options.status());
  for (int i = 0; i < opt_.instance_count; ++i) {
    nics_.push_back(std::make_unique<net::Ec2Nic>(*nic_options));
  }
}

void Ec2Fleet::Start(std::function<void()> on_ready) {
  SKYRISE_CHECK(!running_);
  if (tracer_ != nullptr) {
    fleet_span_ = tracer_->Begin("ec2", "fleet " + opt_.instance_type, "faas");
    tracer_->SetArg(fleet_span_, "instances", Json(opt_.instance_count));
    tracer_->SetArg(fleet_span_, "slots", Json(total_slots()));
  }
  const SimDuration boot =
      opt_.pre_provisioned
          ? 0
          : static_cast<SimDuration>(
                static_cast<double>(opt_.provision_time) *
                rng_.Lognormal(0.0, 0.2));
  env_->Schedule(boot, [this, on_ready = std::move(on_ready)] {
    running_ = true;
    started_at_ = env_->now();
    free_slots_ = total_slots();
    if (on_ready) on_ready();
    MaybeDispatch();
  });
}

void Ec2Fleet::Stop() {
  if (!running_) return;
  running_ = false;
  const double usd = meter_.RecordEc2Usage(
      opt_.instance_type, (env_->now() - started_at_) * opt_.instance_count,
      opt_.reserved_pricing);
  if (tracer_ != nullptr) {
    tracer_->AddCost(fleet_span_, usd);
    tracer_->End(fleet_span_);
    fleet_span_ = obs::kNoSpan;
  }
}

// skyrise-domain-crossing(platform invocation API: the coordinator-to-fleet request boundary, an HTTP invoke against the provider in the real system)
void Ec2Fleet::Invoke(const std::string& function, Json payload,
                      ResponseCallback callback) {
  Pending pending;
  pending.function = function;
  pending.enqueued_at = env_->now();
  if (tracer_ != nullptr) {
    pending.invoke_span =
        tracer_->Begin("ec2", "invoke " + function, "faas",
                       payload.GetInt("trace_parent", obs::kNoSpan));
    pending.queued_span =
        tracer_->Begin("ec2", "queued", "faas", pending.invoke_span);
    auto inner = std::make_shared<ResponseCallback>(std::move(callback));
    const obs::SpanId invoke_span = pending.invoke_span;
    callback = [this, invoke_span, inner](Result<Json> result) {
      const char* outcome = "ok";
      if (!result.ok()) {
        outcome = result.status().IsDeadlineExceeded() ? "timeout" : "error";
      }
      tracer_->EndWith(invoke_span, outcome);
      (*inner)(std::move(result));
    };
  }
  pending.payload = std::move(payload);
  pending.callback = std::move(callback);
  queue_.push_back(std::move(pending));
  MaybeDispatch();
}

void Ec2Fleet::MaybeDispatch() {
  while (running_ && free_slots_ > 0 && !queue_.empty()) {
    Pending pending = std::move(queue_.front());
    queue_.pop_front();
    --free_slots_;
    Dispatch(std::move(pending));
  }
}

void Ec2Fleet::Dispatch(Pending pending) {
  if (tracer_ != nullptr) tracer_->End(pending.queued_span);
  if (metrics_ != nullptr) {
    metrics_->Record("ec2.queue_wait_ms",
                     ToMillis(env_->now() - pending.enqueued_at));
  }
  auto entry = registry_->Find(pending.function);
  if (!entry.ok()) {
    ++free_slots_;
    pending.callback(entry.status());
    return;
  }
  // Shim dispatch is local: sub-millisecond, no coldstart.
  const int instance = next_slot_rr_++ % static_cast<int>(nics_.size());
  env_->Schedule(Micros(300), [this, entry = std::move(entry).ValueUnsafe(),
                               instance,
                               pending = std::move(pending)]() mutable {
    ++stats_.invocations;
    if (metrics_ != nullptr) metrics_->Add("ec2.invocations");
    // See LambdaPlatform::Execute: a propagated "deadline_us" clamps the
    // configured timeout to the query's remaining lifetime.
    const Deadline deadline =
        Deadline::At(pending.payload.GetInt("deadline_us", 0));
    auto ctx = std::make_shared<FunctionContext>(
        env_, nics_[static_cast<size_t>(instance)].get(), fabric_,
        std::move(pending.payload), /*cold_start=*/false, entry.config);
    obs::SpanId exec_span = obs::kNoSpan;
    const SimTime exec_start = env_->now();
    if (tracer_ != nullptr) {
      exec_span = tracer_->Begin("ec2", "exec " + entry.config.name, "faas",
                                 pending.invoke_span);
      tracer_->SetArg(exec_span, "cold", Json(false));
      tracer_->SetArg(exec_span, "memory_mib", Json(entry.config.memory_mib));
    }
    ctx->set_observability(tracer_, exec_span, metrics_);
    auto callback =
        std::make_shared<ResponseCallback>(std::move(pending.callback));
    // The handler, the enforced timeout, and an injected crash race to
    // settle the slot; first one through the gate wins.
    struct Gate {
      bool settled = false;
      sim::EventId timeout_event = sim::kInvalidEventId;
      sim::EventId crash_event = sim::kInvalidEventId;
    };
    auto gate = std::make_shared<Gate>();
    auto settle = [this, gate, exec_span, exec_start](const char* outcome) {
      env_->Cancel(gate->timeout_event);
      env_->Cancel(gate->crash_event);
      if (tracer_ != nullptr) tracer_->EndWith(exec_span, outcome);
      if (metrics_ != nullptr) {
        metrics_->Record("ec2.exec_ms", ToMillis(env_->now() - exec_start));
      }
      ++free_slots_;
      MaybeDispatch();
    };
    ctx->set_on_finish([gate, settle, callback](Json response) {
      if (gate->settled) return;
      gate->settled = true;
      settle("ok");
      (*callback)(std::move(response));
    });
    ctx->set_on_finish_error([this, gate, settle, callback](Status status) {
      if (gate->settled) return;
      gate->settled = true;
      ++stats_.errors;
      if (metrics_ != nullptr) metrics_->Add("ec2.errors");
      settle("error");
      (*callback)(std::move(status));
    });
    const std::string function = entry.config.name;
    SimDuration timeout = entry.config.timeout;
    bool deadline_clamped = false;
    if (deadline.bounded()) {
      const SimDuration remaining =
          std::max<SimDuration>(1, deadline.Remaining(env_->now()));
      if (timeout <= 0 || remaining < timeout) {
        timeout = remaining;
        deadline_clamped = true;
      }
    }
    if (timeout > 0) {
      gate->timeout_event = env_->Schedule(
          timeout,
          [this, gate, settle, callback, function, deadline_clamped] {
            if (gate->settled) return;
            gate->settled = true;
            ++stats_.timeouts;
            ++stats_.errors;
            if (metrics_ != nullptr) {
              metrics_->Add("ec2.timeouts");
              metrics_->Add("ec2.errors");
              if (deadline_clamped) metrics_->Add("ec2.deadline_kills");
            }
            settle("timeout");
            (*callback)(Status::DeadlineExceeded(
                (deadline_clamped ? "Query deadline exceeded in: "
                                  : "Task timed out: ") +
                function));
          });
    }
    if (fault_injector_ != nullptr) {
      const auto crash = fault_injector_->SampleCrash(function);
      if (crash.crash) {
        gate->crash_event = env_->Schedule(
            crash.after, [this, gate, settle, callback, function] {
              if (gate->settled) return;
              gate->settled = true;
              ++stats_.crashes;
              ++stats_.errors;
              if (metrics_ != nullptr) {
                metrics_->Add("ec2.crashes");
                metrics_->Add("ec2.errors");
              }
              settle("crash");
              (*callback)(Status::IoError("worker crashed (injected): " +
                                          function));
            });
      }
    }
    entry.handler(ctx);
  });
}

}  // namespace skyrise::faas
