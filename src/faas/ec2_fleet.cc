#include "faas/ec2_fleet.h"

namespace skyrise::faas {

Ec2Fleet::Ec2Fleet(sim::SimEnvironment* env, net::FabricDriver* fabric,
                   FunctionRegistry* registry, const Options& options)
    : env_(env),
      fabric_(fabric),
      registry_(registry),
      opt_(options),
      rng_(env->ForkRng(options.rng_stream)) {
  SKYRISE_CHECK(opt_.instance_count >= 1 && opt_.slots_per_instance >= 1);
  auto nic_options = net::MakeEc2NicOptions(opt_.instance_type);
  SKYRISE_CHECK_OK(nic_options.status());
  for (int i = 0; i < opt_.instance_count; ++i) {
    nics_.push_back(std::make_unique<net::Ec2Nic>(*nic_options));
  }
}

void Ec2Fleet::Start(std::function<void()> on_ready) {
  SKYRISE_CHECK(!running_);
  const SimDuration boot =
      opt_.pre_provisioned
          ? 0
          : static_cast<SimDuration>(
                static_cast<double>(opt_.provision_time) *
                rng_.Lognormal(0.0, 0.2));
  env_->Schedule(boot, [this, on_ready = std::move(on_ready)] {
    running_ = true;
    started_at_ = env_->now();
    free_slots_ = total_slots();
    if (on_ready) on_ready();
    MaybeDispatch();
  });
}

void Ec2Fleet::Stop() {
  if (!running_) return;
  running_ = false;
  meter_.RecordEc2Usage(opt_.instance_type,
                        (env_->now() - started_at_) * opt_.instance_count,
                        opt_.reserved_pricing);
}

void Ec2Fleet::Invoke(const std::string& function, Json payload,
                      ResponseCallback callback) {
  queue_.push_back(Pending{function, std::move(payload), std::move(callback)});
  MaybeDispatch();
}

void Ec2Fleet::MaybeDispatch() {
  while (running_ && free_slots_ > 0 && !queue_.empty()) {
    Pending pending = std::move(queue_.front());
    queue_.pop_front();
    --free_slots_;
    Dispatch(std::move(pending));
  }
}

void Ec2Fleet::Dispatch(Pending pending) {
  auto entry = registry_->Find(pending.function);
  if (!entry.ok()) {
    ++free_slots_;
    pending.callback(entry.status());
    return;
  }
  // Shim dispatch is local: sub-millisecond, no coldstart.
  const int instance = next_slot_rr_++ % static_cast<int>(nics_.size());
  env_->Schedule(Micros(300), [this, entry = std::move(entry).ValueUnsafe(),
                               instance,
                               pending = std::move(pending)]() mutable {
    ++stats_.invocations;
    auto ctx = std::make_shared<FunctionContext>(
        env_, nics_[static_cast<size_t>(instance)].get(), fabric_,
        std::move(pending.payload), /*cold_start=*/false, entry.config);
    auto callback =
        std::make_shared<ResponseCallback>(std::move(pending.callback));
    // The handler, the enforced timeout, and an injected crash race to
    // settle the slot; first one through the gate wins.
    struct Gate {
      bool settled = false;
      sim::EventId timeout_event = sim::kInvalidEventId;
      sim::EventId crash_event = sim::kInvalidEventId;
    };
    auto gate = std::make_shared<Gate>();
    auto settle = [this, gate] {
      env_->Cancel(gate->timeout_event);
      env_->Cancel(gate->crash_event);
      ++free_slots_;
      MaybeDispatch();
    };
    ctx->set_on_finish([gate, settle, callback](Json response) {
      if (gate->settled) return;
      gate->settled = true;
      settle();
      (*callback)(std::move(response));
    });
    ctx->set_on_finish_error([this, gate, settle, callback](Status status) {
      if (gate->settled) return;
      gate->settled = true;
      ++stats_.errors;
      settle();
      (*callback)(std::move(status));
    });
    const std::string function = entry.config.name;
    if (entry.config.timeout > 0) {
      gate->timeout_event = env_->Schedule(
          entry.config.timeout, [this, gate, settle, callback, function] {
            if (gate->settled) return;
            gate->settled = true;
            ++stats_.timeouts;
            ++stats_.errors;
            settle();
            (*callback)(
                Status::DeadlineExceeded("Task timed out: " + function));
          });
    }
    if (fault_injector_ != nullptr) {
      const auto crash = fault_injector_->SampleCrash(function);
      if (crash.crash) {
        gate->crash_event = env_->Schedule(
            crash.after, [this, gate, settle, callback, function] {
              if (gate->settled) return;
              gate->settled = true;
              ++stats_.crashes;
              ++stats_.errors;
              settle();
              (*callback)(Status::IoError("worker crashed (injected): " +
                                          function));
            });
      }
    }
    entry.handler(ctx);
  });
}

}  // namespace skyrise::faas
