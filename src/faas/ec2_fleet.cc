#include "faas/ec2_fleet.h"

namespace skyrise::faas {

Ec2Fleet::Ec2Fleet(sim::SimEnvironment* env, net::FabricDriver* fabric,
                   FunctionRegistry* registry, const Options& options)
    : env_(env),
      fabric_(fabric),
      registry_(registry),
      opt_(options),
      rng_(env->ForkRng(options.rng_stream)) {
  SKYRISE_CHECK(opt_.instance_count >= 1 && opt_.slots_per_instance >= 1);
  auto nic_options = net::MakeEc2NicOptions(opt_.instance_type);
  SKYRISE_CHECK_OK(nic_options.status());
  for (int i = 0; i < opt_.instance_count; ++i) {
    nics_.push_back(std::make_unique<net::Ec2Nic>(*nic_options));
  }
}

void Ec2Fleet::Start(std::function<void()> on_ready) {
  SKYRISE_CHECK(!running_);
  const SimDuration boot =
      opt_.pre_provisioned
          ? 0
          : static_cast<SimDuration>(
                static_cast<double>(opt_.provision_time) *
                rng_.Lognormal(0.0, 0.2));
  env_->Schedule(boot, [this, on_ready = std::move(on_ready)] {
    running_ = true;
    started_at_ = env_->now();
    free_slots_ = total_slots();
    if (on_ready) on_ready();
    MaybeDispatch();
  });
}

void Ec2Fleet::Stop() {
  if (!running_) return;
  running_ = false;
  meter_.RecordEc2Usage(opt_.instance_type,
                        (env_->now() - started_at_) * opt_.instance_count,
                        opt_.reserved_pricing);
}

void Ec2Fleet::Invoke(const std::string& function, Json payload,
                      ResponseCallback callback) {
  queue_.push_back(Pending{function, std::move(payload), std::move(callback)});
  MaybeDispatch();
}

void Ec2Fleet::MaybeDispatch() {
  while (running_ && free_slots_ > 0 && !queue_.empty()) {
    Pending pending = std::move(queue_.front());
    queue_.pop_front();
    --free_slots_;
    Dispatch(std::move(pending));
  }
}

void Ec2Fleet::Dispatch(Pending pending) {
  auto entry = registry_->Find(pending.function);
  if (!entry.ok()) {
    ++free_slots_;
    pending.callback(entry.status());
    return;
  }
  // Shim dispatch is local: sub-millisecond, no coldstart.
  const int instance = next_slot_rr_++ % static_cast<int>(nics_.size());
  env_->Schedule(Micros(300), [this, entry = std::move(entry).ValueUnsafe(),
                               instance,
                               pending = std::move(pending)]() mutable {
    auto ctx = std::make_shared<FunctionContext>(
        env_, nics_[static_cast<size_t>(instance)].get(), fabric_,
        std::move(pending.payload), /*cold_start=*/false, entry.config);
    auto callback =
        std::make_shared<ResponseCallback>(std::move(pending.callback));
    ctx->set_on_finish([this, callback](Json response) {
      ++free_slots_;
      MaybeDispatch();
      (*callback)(std::move(response));
    });
    ctx->set_on_finish_error([this, callback](Status status) {
      ++free_slots_;
      MaybeDispatch();
      (*callback)(std::move(status));
    });
    entry.handler(ctx);
  });
}

}  // namespace skyrise::faas
