#pragma once

#include <memory>

#include "engine/engine.h"
#include "net/fabric_driver.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/object_store.h"

/// \file testbed.h
/// Pre-wired simulation testbeds for experiments: environment, fabric, the
/// four storage services, the FaaS platform, and (optionally) a deployed
/// query engine. Benches and examples build on this instead of repeating
/// the wiring.

// skyrise-domain(shared)
namespace skyrise::platform {

/// Resource-level testbed: network + storage + FaaS.
struct Testbed {
  explicit Testbed(uint64_t seed = 42, double fabric_jitter = 0.0)
      : env(seed),
        fabric(MakeFabricOptions(seed, fabric_jitter)),
        fabric_driver(&env, &fabric),
        s3(&env, storage::ObjectStore::StandardOptions(), 1001),
        s3express(&env, storage::ObjectStore::ExpressOptions(), 1002),
        dynamodb(&env, storage::ObjectStore::DynamoDbOptions(), 1003),
        efs(&env, storage::ObjectStore::EfsOptions(), 1004) {}

  static net::Fabric::Options MakeFabricOptions(uint64_t seed, double jitter) {
    net::Fabric::Options options;
    options.seed = seed ^ 0xF00D;
    options.jitter_sigma = jitter;
    return options;
  }

  sim::SimEnvironment env;
  net::Fabric fabric;
  net::FabricDriver fabric_driver;
  storage::ObjectStore s3;
  storage::ObjectStore s3express;
  storage::ObjectStore dynamodb;
  storage::ObjectStore efs;
};

/// Query-engine testbed on top of a Testbed: registry, Lambda platform,
/// engine wiring, synthetic catalog, shared cost meter.
struct EngineTestbed {
  explicit EngineTestbed(uint64_t seed = 42,
                         storage::ObjectStore* shuffle_store = nullptr)
      : base(seed), queue(&base.env) {
    faas::LambdaPlatform::Options lambda_options;
    lambda_options.account_concurrency = 10000;  // The paper's quota raise.
    lambda = std::make_unique<faas::LambdaPlatform>(
        &base.env, &base.fabric_driver, &registry, lambda_options);
    lambda->set_observer(&tracer, &metrics);
    engine::EngineContext context;
    context.env = &base.env;
    context.table_store = &base.s3;
    context.shuffle_store =
        shuffle_store != nullptr ? shuffle_store : &base.s3;
    context.catalog = &catalog;
    context.queue = &queue;
    context.meter = &meter;
    // The testbed's 2-hour horizon is enforced as a real query deadline:
    // a query that outlives it fails typed (DeadlineExceeded, spans closed)
    // through the coordinator instead of the drive loop silently bailing.
    context.query_deadline = Hours(2);
    engine = std::make_unique<engine::QueryEngine>(std::move(context));
    SKYRISE_CHECK_OK(engine->Deploy(&registry));
  }

  /// Runs a plan on a platform until the response arrives. The engine
  /// context's 2-hour query deadline bounds the run; the drive loop's
  /// slightly longer horizon is only a backstop against a wedged simulation.
  /// Stops at completion so warm sandbox/bucket state is preserved for
  /// back-to-back runs.
  [[nodiscard]] Result<engine::QueryResponse> RunOn(faas::ComputePlatform* platform,
                                      const engine::QueryPlan& plan,
                                      const std::string& query_id,
                                      int partitions_per_worker = 0) {
    Result<engine::QueryResponse> outcome =
        Status::DeadlineExceeded("query did not finish in the horizon");
    bool done = false;
    engine->Run(platform, plan, query_id,
                [&](Result<engine::QueryResponse> r) {
                  outcome = std::move(r);
                  done = true;
                },
                partitions_per_worker);
    const SimTime horizon = base.env.now() + Hours(2) + Minutes(5);
    while (!done && base.env.now() < horizon) {
      if (!base.env.Step()) break;
    }
    return outcome;
  }

  [[nodiscard]] Result<engine::QueryResponse> RunOnLambda(const engine::QueryPlan& plan,
                                            const std::string& query_id,
                                            int partitions_per_worker = 0) {
    return RunOn(lambda.get(), plan, query_id, partitions_per_worker);
  }

  [[nodiscard]] Result<engine::QueryResponse> RunOnFleet(faas::Ec2Fleet* fleet,
                                           const engine::QueryPlan& plan,
                                           const std::string& query_id,
                                           int partitions_per_worker = 0) {
    return RunOn(fleet, plan, query_id, partitions_per_worker);
  }

  Testbed base;
  storage::QueueService queue;
  format::SyntheticFileCatalog catalog;
  pricing::CostMeter meter;
  /// Query tracing + metrics; the Lambda platform publishes here (spans on
  /// tracks "lambda"/"worker"/"coordinator"/"fragments"/"storage/<svc>").
  /// Ec2 fleets join via `fleet.set_observer(&tracer, &metrics)`.
  obs::Tracer tracer{&base.env};
  obs::MetricsRegistry metrics;
  faas::FunctionRegistry registry;
  std::unique_ptr<faas::LambdaPlatform> lambda;
  std::unique_ptr<engine::QueryEngine> engine;
};

}  // namespace skyrise::platform
