#include "platform/storage_io.h"

#include "common/string_util.h"

namespace skyrise::platform {

namespace {

struct BenchState {
  sim::SimEnvironment* env = nullptr;
  storage::StorageService* service = nullptr;
  std::unique_ptr<storage::RetryClient> retry_client;
  StorageIoConfig config;
  SimTime start = 0;
  SimTime deadline = 0;
  StorageIoResult result;
  std::vector<std::unique_ptr<net::Nic>> nics;
  std::vector<storage::ClientContext> contexts;  ///< Per client.
  Rng rng{0};
  int64_t next_write_key = 0;
  int64_t next_read_key = 0;
  int active_threads = 0;
  std::function<void()> on_done;

  void RecordSample(SimTime issued, bool ok, int64_t bytes) {
    ++result.requests;
    const size_t bucket = static_cast<size_t>(
        (issued - start) / config.sample_interval);
    if (result.success_iops_series.size() <= bucket) {
      result.success_iops_series.resize(bucket + 1, 0);
      result.failure_iops_series.resize(bucket + 1, 0);
    }
    const double per_interval = 1.0 / ToSeconds(config.sample_interval);
    if (ok) {
      ++result.successes;
      result.bytes_moved += bytes;
      result.latency_ms.Record(ToMillis(env->now() - issued));
      result.success_iops_series[bucket] += per_interval;
    } else {
      ++result.failures;
      result.failure_iops_series[bucket] += per_interval;
    }
  }
};

void IssueNext(std::shared_ptr<BenchState> state, int client);

void OnComplete(std::shared_ptr<BenchState> state, int client, SimTime issued,
                bool ok, int64_t bytes) {
  state->RecordSample(issued, ok, bytes);
  IssueNext(std::move(state), client);
}

void IssueNext(std::shared_ptr<BenchState> state, int client) {
  sim::SimEnvironment* env = state->env;
  if (env->now() >= state->deadline) {
    if (--state->active_threads == 0 && state->on_done) state->on_done();
    return;
  }
  // Optional issue pacing (open-ish loop for rate-controlled experiments).
  SimDuration pacing = 0;
  if (state->config.max_rps_per_client > 0) {
    const double mean_gap_s = state->config.threads_per_client /
                              state->config.max_rps_per_client;
    pacing = static_cast<SimDuration>(state->rng.Exponential(mean_gap_s) *
                                      kSecond);
  }
  env->Schedule(pacing, [state, client] {
    sim::SimEnvironment* env = state->env;
    if (env->now() >= state->deadline) {
      if (--state->active_threads == 0 && state->on_done) state->on_done();
      return;
    }
    const SimTime issued = env->now();
    const auto& ctx = state->contexts[static_cast<size_t>(client)];
    if (state->config.write) {
      const std::string key =
          state->config.key_prefix +
          StrFormat("w-%08lld", static_cast<long long>(state->next_write_key++));
      auto blob = storage::Blob::Synthetic(state->config.request_bytes);
      auto cb = [state, client, issued](Status status) {
        OnComplete(state, client, issued, status.ok(),
                   state->config.request_bytes);
      };
      if (state->retry_client) {
        state->retry_client->Put(key, std::move(blob), ctx, std::move(cb));
      } else {
        state->service->Put(key, std::move(blob), ctx, std::move(cb));
      }
    } else {
      const std::string key =
          state->config.key_prefix +
          StrFormat("obj-%08lld",
                    static_cast<long long>(state->next_read_key++ %
                                           state->config.object_count));
      auto cb = [state, client, issued](Result<storage::Blob> result) {
        OnComplete(state, client, issued, result.ok(),
                   result.ok() ? result->size() : 0);
      };
      if (state->retry_client) {
        state->retry_client->Get(key, ctx, std::move(cb));
      } else {
        state->service->Get(key, ctx, std::move(cb));
      }
    }
  });
}

}  // namespace

StorageIoResult RunStorageIo(sim::SimEnvironment* env,
                             net::FabricDriver* fabric,
                             storage::StorageService* service,
                             const StorageIoConfig& config) {
  auto state = std::make_shared<BenchState>();
  state->env = env;
  state->service = service;
  state->config = config;
  state->rng = env->ForkRng(config.rng_stream);
  if (config.use_retry_client) {
    state->retry_client = std::make_unique<storage::RetryClient>(
        env, service, config.retry, config.rng_stream + 1);
  }

  // Pre-create read objects (control plane).
  if (!config.write) {
    for (int i = 0; i < config.object_count; ++i) {
      SKYRISE_CHECK_OK(service->Insert(
          config.key_prefix + StrFormat("obj-%08d", i),
          storage::Blob::Synthetic(config.request_bytes)));
    }
  }

  // One NIC per client (EC2 instance type or Lambda function).
  for (int c = 0; c < config.clients; ++c) {
    std::unique_ptr<net::Nic> nic;
    if (config.client_instance_type == "lambda") {
      nic = std::make_unique<net::LambdaNic>();
    } else {
      auto options = net::MakeEc2NicOptions(config.client_instance_type);
      SKYRISE_CHECK_OK(options.status());
      nic = std::make_unique<net::Ec2Nic>(*options);
    }
    storage::ClientContext ctx;
    if (config.use_fabric) {
      ctx.nic = nic.get();
      ctx.fabric = fabric;
    }
    // Requests in flight at the measurement deadline may drain through
    // retries for at most `drain_grace`; the retry client then fails them
    // typed instead of backing off past the driver's horizon.
    ctx.deadline =
        Deadline::At(env->now() + config.duration + config.drain_grace);
    state->contexts.push_back(ctx);
    state->nics.push_back(std::move(nic));
  }

  state->start = env->now();
  state->deadline = env->now() + config.duration;
  state->active_threads = config.clients * config.threads_per_client;
  bool finished = false;
  state->on_done = [&finished] { finished = true; };

  for (int c = 0; c < config.clients; ++c) {
    for (int t = 0; t < config.threads_per_client; ++t) {
      IssueNext(state, c);
    }
  }
  // Drive the simulation until all threads observed the deadline. The
  // per-request deadlines above bound the drain; the loop guard is a
  // backstop against a wedged service, and leaving it with threads still
  // active is reported as a typed outcome rather than silently dropped.
  while (!finished && env->now() < state->deadline + config.drain_grace) {
    if (!env->Step()) break;
  }
  if (!finished) state->result.abandoned_threads = state->active_threads;
  state->result.elapsed = config.duration;
  return std::move(state->result);
}

}  // namespace skyrise::platform
