#pragma once

#include <string>
#include <vector>

#include "common/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

/// \file report.h
/// Result presentation for experiment harnesses: aligned ASCII tables (the
/// rows/series the paper's figures and tables report) and JSON result files
/// (the driver's output format in Fig. 3).

namespace skyrise::platform {

/// Column-aligned text table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  /// Renders with a header rule; every column padded to its widest cell.
  std::string Render() const;
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a numeric series as a fixed-height ASCII chart (the plotter stage
/// of the framework), e.g. throughput over time.
std::string RenderAsciiSeries(const std::vector<double>& values,
                              int height = 8, int max_width = 100);

/// Writes an experiment result document to `path` (pretty JSON).
[[nodiscard]] Status WriteResultFile(const std::string& path, const Json& result);

/// Prints a experiment banner.
void PrintHeader(const std::string& experiment_id, const std::string& title);

/// Prints a short paper-vs-measured comparison line.
void PrintComparison(const std::string& metric, const std::string& paper,
                     const std::string& measured);

/// Renders the per-stage fault-tolerance table from a coordinator response
/// (retries, speculative launches, worker errors per pipeline, plus a total
/// row). Returns an empty string when the response reports no stages.
std::string RenderFaultSummary(const Json& coordinator_response);

/// Renders the per-stage worker execution table from a coordinator response:
/// fragment count, morsel batches processed, peak worker-resident memory, and
/// bytes moved per pipeline, plus a total row with the engine's memory-config
/// recommendation. Returns an empty string when the response has no stages.
std::string RenderWorkerStats(const Json& coordinator_response);

/// Renders the metrics registry as two tables: counters (name, value) and
/// latency histograms (count, mean, p50/p95/p99, max — the percentiles the
/// paper's latency figures report). Returns an empty string when the
/// registry holds nothing.
std::string RenderMetrics(const obs::MetricsRegistry& metrics);

/// Renders a query profile from a trace: the critical path (the chain of
/// latest-ending children from the slowest root span), a time-in-state
/// breakdown (per-category busy time, interval-union so overlapping spans
/// count once), and the top-10 slowest spans with their attributed cost.
/// Returns an empty string when the tracer holds no spans.
std::string RenderQueryProfile(const obs::Tracer& tracer);

}  // namespace skyrise::platform
