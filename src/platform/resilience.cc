#include "platform/resilience.h"

#include <algorithm>
#include <map>
#include <memory>

#include "common/string_util.h"
#include "datagen/dataset.h"
#include "datagen/tpch.h"
#include "engine/engine.h"
#include "engine/queries.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/fault_injector.h"
#include "storage/object_store.h"

namespace skyrise::platform {

namespace {

/// The chaos-e2e aggressive profile with every probability scaled by
/// `intensity` (clamped to a valid probability). Intensity 0 disables
/// injection entirely — the per-seed fault-free baseline.
sim::FaultInjector::Profile ScaledProfile(double intensity) {
  if (intensity <= 0) return sim::FaultInjector::Disabled();
  auto p = [intensity](double base) {
    return std::clamp(base * intensity, 0.0, 0.95);
  };
  sim::FaultInjector::Profile profile;
  profile.storage_read_error_probability = p(0.03);
  profile.storage_write_error_probability = p(0.03);
  profile.storage_burst_error_probability = p(0.4);
  profile.storage_burst_duration = Seconds(1);
  profile.storage_burst_interval = Seconds(15);
  profile.network_blip_probability = p(0.05);
  profile.network_blip_max = Millis(100);
  profile.function_crash_probability = p(0.20);
  profile.sandbox_kill_probability = p(0.05);
  profile.crash_delay_max = Millis(400);
  profile.crash_exempt_functions = {engine::kCoordinatorFunction};
  profile.invoke_delay_probability = p(0.1);
  profile.invoke_delay_max = Millis(300);
  return profile;
}

/// One fully wired engine deployment with the robustness features armed.
/// Identical seeds and intensities reproduce identical stacks.
struct Stack {
  Stack(uint64_t seed, double intensity, const ChaosSweepConfig& config)
      : env(seed),
        fabric_driver(&env, &fabric),
        store(&env, storage::ObjectStore::StandardOptions()),
        queue(&env),
        injector(&env, ScaledProfile(intensity)),
        tracer(&env) {
    datagen::TpchConfig tpch;
    tpch.scale_factor = config.tpch_scale_factor;
    SKYRISE_CHECK_OK(datagen::UploadDataset(
                         &store, "lineitem", datagen::LineitemSchema(),
                         config.partitions,
                         [&](int p) {
                           return datagen::GenerateLineitemPartition(
                               tpch, p, config.partitions);
                         })
                         .status());
    SKYRISE_CHECK_OK(datagen::UploadDataset(
                         &store, "orders", datagen::OrdersSchema(),
                         config.partitions,
                         [&](int p) {
                           return datagen::GenerateOrdersPartition(
                               tpch, p, config.partitions);
                         })
                         .status());

    if (config.enable_breakers) {
      CircuitBreaker::Options storage_options;
      storage_options.name = "storage";
      storage_breaker = std::make_unique<CircuitBreaker>(storage_options);
      CircuitBreaker::Options invoke_options;
      invoke_options.name = "invoke";
      invoke_breaker = std::make_unique<CircuitBreaker>(invoke_options);
    }

    engine::EngineContext context;
    context.env = &env;
    context.table_store = &store;
    context.shuffle_store = &store;
    context.catalog = &catalog;
    context.queue = &queue;
    context.meter = &meter;
    context.partitions_per_worker = 2;
    context.worker_max_attempts = config.worker_max_attempts;
    context.query_deadline = config.query_deadline;
    context.retry_budget_tokens = config.retry_budget_tokens;
    context.retry_budget_refund = config.retry_budget_refund;
    context.storage_breaker = storage_breaker.get();
    context.invoke_breaker = invoke_breaker.get();
    engine = std::make_unique<engine::QueryEngine>(std::move(context));
    SKYRISE_CHECK_OK(engine->Deploy(&registry));

    faas::LambdaPlatform::Options lambda_options;
    lambda_options.account_concurrency = 10000;
    lambda = std::make_unique<faas::LambdaPlatform>(
        &env, &fabric_driver, &registry, lambda_options);
    lambda->set_observer(&tracer, &metrics);
    store.set_fault_injector(&injector);
    lambda->set_fault_injector(&injector);
  }

  struct RunOutcome {
    bool settled = false;  ///< Callback fired inside the horizon.
    Result<engine::QueryResponse> result = Status::Internal("did not settle");
    int64_t requests = 0;  ///< Storage requests metered during this query.
  };

  RunOutcome Run(const engine::QueryPlan& plan, const std::string& id,
                 SimDuration horizon) {
    RunOutcome outcome;
    const int64_t requests_before = meter.TotalRequests();
    engine->Run(lambda.get(), plan, id,
                [&outcome](Result<engine::QueryResponse> r) {
                  outcome.settled = true;
                  outcome.result = std::move(r);
                });
    // The horizon also drains zombie executions (deadline-killed or crashed
    // workers), so every span is closed before the leak check.
    env.RunUntil(env.now() + horizon);
    outcome.requests = meter.TotalRequests() - requests_before;
    return outcome;
  }

  /// Raw result object bytes (control-plane read, no fault injection).
  std::string ResultBytes(const std::string& id) {
    auto blob = store.Peek(engine::ResultKey(id));
    if (!blob.ok()) return std::string();
    if (blob->is_synthetic()) return std::string();
    return blob->data();
  }

  sim::SimEnvironment env;
  net::Fabric fabric;
  net::FabricDriver fabric_driver;
  storage::ObjectStore store;
  storage::QueueService queue;
  format::SyntheticFileCatalog catalog;
  pricing::CostMeter meter;
  faas::FunctionRegistry registry;
  sim::FaultInjector injector;
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  std::unique_ptr<CircuitBreaker> storage_breaker;
  std::unique_ptr<CircuitBreaker> invoke_breaker;
  std::unique_ptr<engine::QueryEngine> engine;
  std::unique_ptr<faas::LambdaPlatform> lambda;
};

struct Baseline {
  std::string bytes;
  int64_t requests = 0;
};

}  // namespace

ChaosSweepOutcome RunChaosSweep(const ChaosSweepConfig& config) {
  ChaosSweepOutcome sweep;
  auto violate = [&sweep](std::string what) {
    sweep.violations.push_back(std::move(what));
  };

  engine::QuerySuiteOptions suite_options;
  suite_options.join_partitions = config.join_partitions;
  // Q6: scan-heavy, join-free. Q12: multi-stage partitioned shuffle join —
  // retries across shuffle writers and readers.
  const std::map<std::string, engine::QueryPlan> queries = {
      {"q6", engine::BuildTpchQ6()},
      {"q12", engine::BuildTpchQ12(suite_options)},
  };

  // Per-seed fault-free references, filled by the intensity-0 cells. The
  // intensity grid is traversed in ascending order so baselines exist
  // before any chaos cell needs them.
  std::map<std::pair<uint64_t, std::string>, Baseline> baselines;
  std::vector<double> intensities = config.intensities;
  std::sort(intensities.begin(), intensities.end());
  if (intensities.empty() || intensities.front() > 0) {
    intensities.insert(intensities.begin(), 0.0);
  }

  Json cells = Json::Array();
  for (const uint64_t seed : config.seeds) {
    for (const double intensity : intensities) {
      Stack stack(seed, intensity, config);
      for (const auto& [name, plan] : queries) {
        const std::string cell_id = StrFormat(
            "seed=%llu intensity=%g query=%s",
            static_cast<unsigned long long>(seed), intensity, name.c_str());
        const std::string query_id =
            StrFormat("%s-i%g", name.c_str(), intensity);
        auto outcome = stack.Run(plan, query_id, config.horizon);

        Json cell = Json::Object();
        cell["seed"] = static_cast<int64_t>(seed);
        cell["intensity"] = intensity;
        cell["query"] = name;
        cell["settled"] = outcome.settled;
        cell["requests"] = outcome.requests;

        // Invariant 1: no hang.
        if (!outcome.settled) {
          violate(cell_id + ": query did not settle inside the horizon");
        }
        const bool completed = outcome.settled && outcome.result.ok();
        cell["completed"] = completed;

        if (intensity <= 0) {
          // Baseline cell: fault-free runs must complete.
          if (!completed) {
            violate(cell_id + ": fault-free baseline failed: " +
                    outcome.result.status().ToString());
          }
          baselines[{seed, name}] =
              Baseline{stack.ResultBytes(query_id), outcome.requests};
        }
        const auto baseline_it = baselines.find({seed, name});

        if (completed) {
          const engine::QueryResponse& response = *outcome.result;
          cell["runtime_ms"] = response.runtime_ms;
          cell["worker_retries"] = response.worker_retries;
          cell["worker_errors"] = response.worker_errors;
          cell["degraded_stages"] = response.degraded_stages;
          // Invariant 2: bit-identical results.
          const std::string bytes = stack.ResultBytes(query_id);
          const bool identical = baseline_it != baselines.end() &&
                                 !baseline_it->second.bytes.empty() &&
                                 bytes == baseline_it->second.bytes;
          cell["identical"] = identical;
          if (!identical) {
            violate(cell_id + ": completed with result bytes differing from "
                              "the fault-free baseline");
          }
          // Invariant 5: budget conservation (granted <= initial + refunds).
          if (response.retry_budget_initial > 0) {
            Json budget = Json::Object();
            budget["initial"] = response.retry_budget_initial;
            budget["remaining"] = response.retry_budget_remaining;
            budget["acquired"] = response.retry_budget_acquired;
            budget["denied"] = response.retry_budget_denied;
            budget["refunded"] =
                response.raw.Get("retry_budget").GetDouble("refunded");
            cell["retry_budget"] = budget;
            const double cap = response.retry_budget_initial +
                               budget.GetDouble("refunded") + 1e-9;
            if (static_cast<double>(response.retry_budget_acquired) > cap) {
              violate(cell_id +
                      StrFormat(": budget conservation broken: %lld retries "
                                "granted from %g tokens",
                                static_cast<long long>(
                                    response.retry_budget_acquired),
                                cap));
            }
          }
        } else if (outcome.settled) {
          const Status& status = outcome.result.status();
          // Invariant 3: failures are typed sheds, not raw errors.
          const bool typed =
              status.IsDeadlineExceeded() || status.IsResourceExhausted();
          cell["status"] = status.ToString();
          cell["typed"] = typed;
          if (!typed) {
            violate(cell_id + ": untyped failure: " + status.ToString());
          }
        }

        // Invariant 4: bounded attempt amplification vs the baseline.
        if (intensity > 0 && baseline_it != baselines.end() &&
            baseline_it->second.requests > 0) {
          const double amplification =
              static_cast<double>(outcome.requests) /
              static_cast<double>(baseline_it->second.requests);
          cell["amplification"] = amplification;
          if (amplification > config.amplification_limit) {
            violate(cell_id +
                    StrFormat(": request amplification %.2f exceeds limit "
                              "%.2f",
                              amplification, config.amplification_limit));
          }
        }
        cells.Append(std::move(cell));
      }

      // Invariant 6: zero span leaks after the stack drained.
      Status trace_ok = stack.tracer.Validate();
      if (!trace_ok.ok()) {
        violate(StrFormat("seed=%llu intensity=%g: trace invalid: ",
                          static_cast<unsigned long long>(seed), intensity) +
                trace_ok.ToString());
      }
      if (stack.tracer.open_spans() != 0) {
        violate(StrFormat("seed=%llu intensity=%g: %lld spans left open",
                          static_cast<unsigned long long>(seed), intensity,
                          static_cast<long long>(stack.tracer.open_spans())));
      }
      // Invariant 7: per-span costs reconcile bitwise with the meters.
      if (stack.tracer.attributed_usd("storage") != stack.meter.StorageUsd()) {
        violate(StrFormat(
            "seed=%llu intensity=%g: storage cost attribution diverged",
            static_cast<unsigned long long>(seed), intensity));
      }
      if (stack.tracer.attributed_usd("faas") !=
          stack.lambda->meter()->ComputeUsd()) {
        violate(StrFormat(
            "seed=%llu intensity=%g: faas cost attribution diverged",
            static_cast<unsigned long long>(seed), intensity));
      }
    }
  }

  Json report = Json::Object();
  Json config_json = Json::Object();
  Json intensity_list = Json::Array();
  for (double i : intensities) intensity_list.Append(Json(i));
  Json seed_list = Json::Array();
  for (uint64_t s : config.seeds) {
    seed_list.Append(Json(static_cast<int64_t>(s)));
  }
  config_json["intensities"] = std::move(intensity_list);
  config_json["seeds"] = std::move(seed_list);
  config_json["partitions"] = config.partitions;
  config_json["tpch_scale_factor"] = config.tpch_scale_factor;
  config_json["query_deadline_us"] = config.query_deadline;
  config_json["retry_budget_tokens"] = config.retry_budget_tokens;
  config_json["breakers"] = config.enable_breakers;
  config_json["amplification_limit"] = config.amplification_limit;
  report["bench"] = "resilience";
  report["config"] = std::move(config_json);
  report["cells"] = std::move(cells);
  Json violation_list = Json::Array();
  for (const auto& v : sweep.violations) violation_list.Append(Json(v));
  report["violations"] = std::move(violation_list);
  sweep.ok = sweep.violations.empty();
  report["ok"] = sweep.ok;
  sweep.report = std::move(report);
  return sweep;
}

}  // namespace skyrise::platform
