#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/units.h"

/// \file resilience.h
/// Deterministic chaos-sweep harness for overload robustness (see DESIGN.md
/// "Overload & degradation model"). Sweeps a fault-intensity x seed grid
/// through representative TPC-H queries on a full engine stack with the
/// robustness features armed (end-to-end deadline, per-query retry budget,
/// storage/invoke circuit breakers) and asserts the resilience invariants:
///
///   1. No hang: every query settles its callback inside the horizon —
///      completion or a typed failure, never silence.
///   2. Bit-identity: a query that completes under chaos produces result
///      bytes identical to the same seed's fault-free run.
///   3. Typed failure: a query that does not complete fails with
///      DeadlineExceeded or ResourceExhausted (shed), never an untyped hang
///      or a raw internal error from the robustness machinery.
///   4. Bounded amplification: storage requests under chaos stay within a
///      configured factor of the fault-free run (the retry budget conserves
///      retries across layers; no retry storms).
///   5. Budget conservation: retries granted never exceed the initial pool
///      plus refunds earned.
///   6. Zero span leaks: after the sweep drains, the tracer validates and
///      has no open spans.
///   7. Cost reconciliation: per-span attributed USD equals the cost meters
///      bitwise per bucket.
///
/// Everything downstream of the seed is deterministic, so the emitted
/// BENCH_resilience.json is byte-identical across runs of the same config —
/// the determinism pin CI enforces.

namespace skyrise::platform {

struct ChaosSweepConfig {
  /// Fault-intensity grid: each value scales the aggressive chaos profile's
  /// probabilities (0 = fault-free baseline; 1 = full chaos profile).
  std::vector<double> intensities = {0.0, 0.5, 1.0};
  std::vector<uint64_t> seeds = {2024, 7};

  // Dataset / query shape (chaos-e2e scale: small but multi-stage).
  int partitions = 6;
  double tpch_scale_factor = 0.002;
  int join_partitions = 4;

  // Robustness policy under test.
  SimDuration query_deadline = Minutes(30);
  double retry_budget_tokens = 256;
  double retry_budget_refund = 0.15;
  bool enable_breakers = true;
  int worker_max_attempts = 8;

  /// Invariant 4 bound: chaos-run storage requests per query must stay
  /// within this factor of the same seed's fault-free request count.
  double amplification_limit = 8.0;
  /// No-hang bound per query (virtual time).
  SimDuration horizon = Minutes(60);
};

struct ChaosSweepOutcome {
  Json report = Json::Object();  ///< The BENCH_resilience.json document.
  bool ok = false;               ///< All invariants held across the grid.
  std::vector<std::string> violations;
};

/// Runs the sweep; purely simulated and deterministic in `config`.
ChaosSweepOutcome RunChaosSweep(const ChaosSweepConfig& config);

}  // namespace skyrise::platform
