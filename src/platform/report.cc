#include "platform/report.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <utility>

#include "common/string_util.h"
#include "common/units.h"

namespace skyrise::platform {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      out += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return out + "\n";
  };
  std::string out = render_row(headers_);
  std::string rule = "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    rule += std::string(widths[c] + 2, '-') + "|";
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(Render().c_str(), stdout); }

std::string RenderAsciiSeries(const std::vector<double>& values, int height,
                              int max_width) {
  if (values.empty()) return "(empty series)\n";
  // Downsample to the display width by averaging.
  std::vector<double> cols;
  const int width = std::min<int>(max_width, static_cast<int>(values.size()));
  for (int c = 0; c < width; ++c) {
    const size_t begin = values.size() * static_cast<size_t>(c) /
                         static_cast<size_t>(width);
    const size_t end = values.size() * static_cast<size_t>(c + 1) /
                       static_cast<size_t>(width);
    double sum = 0;
    for (size_t i = begin; i < std::max(end, begin + 1); ++i) sum += values[i];
    cols.push_back(sum / static_cast<double>(std::max<size_t>(1, end - begin)));
  }
  const double peak = *std::max_element(cols.begin(), cols.end());
  std::string out;
  for (int level = height; level >= 1; --level) {
    const double threshold =
        peak * (static_cast<double>(level) - 0.5) / static_cast<double>(height);
    std::string line;
    for (double v : cols) line += v >= threshold ? '#' : ' ';
    out += StrFormat("%10.2f |", peak * level / height) + line + "\n";
  }
  out += std::string(11, ' ') + "+" + std::string(cols.size(), '-') + "\n";
  return out;
}

Status WriteResultFile(const std::string& path, const Json& result) {
  std::ofstream out(path);
  if (!out.good()) return Status::IoError("cannot open " + path);
  out << result.Dump(2) << "\n";
  return Status::OK();
}

void PrintHeader(const std::string& experiment_id, const std::string& title) {
  std::printf("\n=== %s — %s ===\n\n", experiment_id.c_str(), title.c_str());
}

void PrintComparison(const std::string& metric, const std::string& paper,
                     const std::string& measured) {
  std::printf("  %-44s paper: %-14s measured: %s\n", metric.c_str(),
              paper.c_str(), measured.c_str());
}

std::string RenderFaultSummary(const Json& coordinator_response) {
  const Json& stages = coordinator_response.Get("stages");
  if (!stages.is_array() || stages.AsArray().empty()) return "";
  TablePrinter table({"pipeline", "fragments", "retries", "speculative",
                      "worker_errors"});
  for (const auto& stage : stages.AsArray()) {
    table.AddRow({std::to_string(stage.GetInt("pipeline")),
                  std::to_string(stage.GetInt("fragments")),
                  std::to_string(stage.GetInt("retries")),
                  std::to_string(stage.GetInt("speculative")),
                  std::to_string(stage.GetInt("worker_errors"))});
  }
  table.AddRow({"total", "",
                std::to_string(coordinator_response.GetInt("worker_retries")),
                std::to_string(
                    coordinator_response.GetInt("speculative_launches")),
                std::to_string(coordinator_response.GetInt("worker_errors"))});
  return table.Render();
}

std::string RenderWorkerStats(const Json& coordinator_response) {
  const Json& stages = coordinator_response.Get("stages");
  if (!stages.is_array() || stages.AsArray().empty()) return "";
  TablePrinter table({"pipeline", "fragments", "batches", "peak_memory",
                      "bytes_read", "bytes_written"});
  for (const auto& stage : stages.AsArray()) {
    table.AddRow({std::to_string(stage.GetInt("pipeline")),
                  std::to_string(stage.GetInt("fragments")),
                  std::to_string(stage.GetInt("batches")),
                  FormatBytes(stage.GetInt("peak_memory_bytes")),
                  FormatBytes(stage.GetInt("bytes_read")),
                  FormatBytes(stage.GetInt("bytes_written"))});
  }
  table.AddRow(
      {"total", "",
       std::to_string(coordinator_response.GetInt("total_batches")),
       FormatBytes(coordinator_response.GetInt("peak_worker_memory_bytes")),
       "", ""});
  std::string out = table.Render();
  const int64_t recommended =
      coordinator_response.GetInt("recommended_memory_mib");
  if (recommended > 0) {
    out += StrFormat("recommended worker memory: %lld MiB\n",
                     static_cast<long long>(recommended));
  }
  return out;
}

std::string RenderMetrics(const obs::MetricsRegistry& metrics) {
  std::string out;
  if (!metrics.counters().empty()) {
    TablePrinter counters({"counter", "value"});
    for (const auto& [name, value] : metrics.counters()) {
      counters.AddRow({name, std::to_string(value)});
    }
    out += counters.Render();
  }
  if (!metrics.histograms().empty()) {
    if (!out.empty()) out += "\n";
    TablePrinter hists(
        {"histogram", "count", "mean", "p50", "p95", "p99", "max"});
    for (const auto& [name, hist] : metrics.histograms()) {
      hists.AddRow({name, std::to_string(hist.count()),
                    StrFormat("%.2f", hist.mean()),
                    StrFormat("%.2f", hist.Percentile(50.0)),
                    StrFormat("%.2f", hist.Percentile(95.0)),
                    StrFormat("%.2f", hist.Percentile(99.0)),
                    StrFormat("%.2f", hist.max())});
    }
    out += hists.Render();
  }
  return out;
}

std::string RenderQueryProfile(const obs::Tracer& tracer) {
  const std::vector<obs::Span>& spans = tracer.spans();
  if (spans.empty()) return "";
  std::map<obs::SpanId, std::vector<const obs::Span*>> children;
  for (const auto& span : spans) children[span.parent].push_back(&span);
  // Profile root: the slowest top-level span; ties break to the earliest
  // id, so the rendering is deterministic.
  const obs::Span* root = nullptr;
  for (const obs::Span* span : children[obs::kNoSpan]) {
    if (root == nullptr || span->duration() > root->duration()) root = span;
  }
  if (root == nullptr) return "";

  std::string out = "critical path:\n";
  TablePrinter path({"span", "track", "start_ms", "duration_ms", "outcome"});
  std::string indent;
  for (const obs::Span* node = root; node != nullptr;) {
    path.AddRow({indent + node->name, node->track,
                 StrFormat("%.3f", ToMillis(node->start - root->start)),
                 StrFormat("%.3f", ToMillis(node->duration())),
                 node->outcome.empty() ? "open" : node->outcome});
    const obs::Span* next = nullptr;
    const auto it = children.find(node->id);
    if (it != children.end()) {
      for (const obs::Span* child : it->second) {
        if (child->instant) continue;
        if (next == nullptr || child->end > next->end) next = child;
      }
    }
    node = next;
    indent += "  ";
  }
  out += path.Render();

  out += "\ntime in state (per-category busy time, overlaps counted once):\n";
  std::map<std::string, std::vector<std::pair<SimTime, SimTime>>> by_category;
  for (const auto& span : spans) {
    if (span.instant || span.end <= span.start) continue;
    by_category[span.category].emplace_back(span.start, span.end);
  }
  TablePrinter states({"category", "busy_ms", "share"});
  const double window_ms = ToMillis(root->duration());
  for (auto& [category, intervals] : by_category) {
    std::sort(intervals.begin(), intervals.end());
    SimDuration busy = 0;
    SimTime merged_start = intervals[0].first;
    SimTime merged_end = intervals[0].second;
    for (const auto& [begin, end] : intervals) {
      if (begin > merged_end) {
        busy += merged_end - merged_start;
        merged_start = begin;
        merged_end = end;
      } else {
        merged_end = std::max(merged_end, end);
      }
    }
    busy += merged_end - merged_start;
    states.AddRow({category, StrFormat("%.3f", ToMillis(busy)),
                   window_ms > 0
                       ? StrFormat("%.1f%%", 100.0 * ToMillis(busy) / window_ms)
                       : "-"});
  }
  out += states.Render();

  out += "\nslowest spans:\n";
  std::vector<const obs::Span*> slowest;
  for (const auto& span : spans) {
    if (!span.instant) slowest.push_back(&span);
  }
  std::stable_sort(slowest.begin(), slowest.end(),
                   [](const obs::Span* a, const obs::Span* b) {
                     return a->duration() > b->duration();
                   });
  if (slowest.size() > 10) slowest.resize(10);
  TablePrinter top({"span", "track", "duration_ms", "cost_usd", "outcome"});
  for (const obs::Span* span : slowest) {
    top.AddRow({span->name, span->track,
                StrFormat("%.3f", ToMillis(span->duration())),
                StrFormat("%.6f", span->cost_usd),
                span->outcome.empty() ? "open" : span->outcome});
  }
  out += top.Render();
  return out;
}

}  // namespace skyrise::platform
