#include "platform/report.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/string_util.h"
#include "common/units.h"

namespace skyrise::platform {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      out += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return out + "\n";
  };
  std::string out = render_row(headers_);
  std::string rule = "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    rule += std::string(widths[c] + 2, '-') + "|";
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(Render().c_str(), stdout); }

std::string RenderAsciiSeries(const std::vector<double>& values, int height,
                              int max_width) {
  if (values.empty()) return "(empty series)\n";
  // Downsample to the display width by averaging.
  std::vector<double> cols;
  const int width = std::min<int>(max_width, static_cast<int>(values.size()));
  for (int c = 0; c < width; ++c) {
    const size_t begin = values.size() * static_cast<size_t>(c) /
                         static_cast<size_t>(width);
    const size_t end = values.size() * static_cast<size_t>(c + 1) /
                       static_cast<size_t>(width);
    double sum = 0;
    for (size_t i = begin; i < std::max(end, begin + 1); ++i) sum += values[i];
    cols.push_back(sum / static_cast<double>(std::max<size_t>(1, end - begin)));
  }
  const double peak = *std::max_element(cols.begin(), cols.end());
  std::string out;
  for (int level = height; level >= 1; --level) {
    const double threshold =
        peak * (static_cast<double>(level) - 0.5) / static_cast<double>(height);
    std::string line;
    for (double v : cols) line += v >= threshold ? '#' : ' ';
    out += StrFormat("%10.2f |", peak * level / height) + line + "\n";
  }
  out += std::string(11, ' ') + "+" + std::string(cols.size(), '-') + "\n";
  return out;
}

Status WriteResultFile(const std::string& path, const Json& result) {
  std::ofstream out(path);
  if (!out.good()) return Status::IoError("cannot open " + path);
  out << result.Dump(2) << "\n";
  return Status::OK();
}

void PrintHeader(const std::string& experiment_id, const std::string& title) {
  std::printf("\n=== %s — %s ===\n\n", experiment_id.c_str(), title.c_str());
}

void PrintComparison(const std::string& metric, const std::string& paper,
                     const std::string& measured) {
  std::printf("  %-44s paper: %-14s measured: %s\n", metric.c_str(),
              paper.c_str(), measured.c_str());
}

std::string RenderFaultSummary(const Json& coordinator_response) {
  const Json& stages = coordinator_response.Get("stages");
  if (!stages.is_array() || stages.AsArray().empty()) return "";
  TablePrinter table({"pipeline", "fragments", "retries", "speculative",
                      "worker_errors"});
  for (const auto& stage : stages.AsArray()) {
    table.AddRow({std::to_string(stage.GetInt("pipeline")),
                  std::to_string(stage.GetInt("fragments")),
                  std::to_string(stage.GetInt("retries")),
                  std::to_string(stage.GetInt("speculative")),
                  std::to_string(stage.GetInt("worker_errors"))});
  }
  table.AddRow({"total", "",
                std::to_string(coordinator_response.GetInt("worker_retries")),
                std::to_string(
                    coordinator_response.GetInt("speculative_launches")),
                std::to_string(coordinator_response.GetInt("worker_errors"))});
  return table.Render();
}

std::string RenderWorkerStats(const Json& coordinator_response) {
  const Json& stages = coordinator_response.Get("stages");
  if (!stages.is_array() || stages.AsArray().empty()) return "";
  TablePrinter table({"pipeline", "fragments", "batches", "peak_memory",
                      "bytes_read", "bytes_written"});
  for (const auto& stage : stages.AsArray()) {
    table.AddRow({std::to_string(stage.GetInt("pipeline")),
                  std::to_string(stage.GetInt("fragments")),
                  std::to_string(stage.GetInt("batches")),
                  FormatBytes(stage.GetInt("peak_memory_bytes")),
                  FormatBytes(stage.GetInt("bytes_read")),
                  FormatBytes(stage.GetInt("bytes_written"))});
  }
  table.AddRow(
      {"total", "",
       std::to_string(coordinator_response.GetInt("total_batches")),
       FormatBytes(coordinator_response.GetInt("peak_worker_memory_bytes")),
       "", ""});
  std::string out = table.Render();
  const int64_t recommended =
      coordinator_response.GetInt("recommended_memory_mib");
  if (recommended > 0) {
    out += StrFormat("recommended worker memory: %lld MiB\n",
                     static_cast<long long>(recommended));
  }
  return out;
}

}  // namespace skyrise::platform
