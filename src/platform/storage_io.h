#pragma once

#include <memory>
#include <vector>

#include "common/histogram.h"
#include "net/fabric_driver.h"
#include "net/instance_specs.h"
#include "storage/retry_client.h"
#include "storage/storage_service.h"

/// \file storage_io.h
/// The framework's Storage I/O measurement function (Table 3): closed-loop
/// clients (VMs or Lambda instances) with a fixed thread count issue fixed-
/// size read or write requests against a storage service for a fixed
/// duration, reporting throughput, IOPS, latency distribution, and error
/// rates, optionally sampled over time.

namespace skyrise::platform {

struct StorageIoConfig {
  int clients = 1;
  int threads_per_client = 32;
  int64_t request_bytes = kKiB;
  bool write = false;
  SimDuration duration = Seconds(30);
  /// Distinct pre-created objects to read (spread across partitions).
  int object_count = 1024;
  std::string key_prefix = "bench/";
  /// Client NIC model: an EC2 instance type, or "lambda" for function NICs.
  std::string client_instance_type = "c6gn.2xlarge";
  /// Route payloads through the fluid fabric (large requests only).
  bool use_fabric = true;
  /// Issue through a retrying client (timeout/backoff); otherwise failures
  /// are terminal and counted directly.
  bool use_retry_client = false;
  storage::RetryClient::Options retry;
  SimDuration sample_interval = Seconds(1);
  /// Cap on request issue rate per client (0 = closed-loop unbounded).
  double max_rps_per_client = 0;
  /// How long past the measurement window in-flight requests may drain
  /// (stragglers deep in retry backoff). The drain bound is enforced as a
  /// per-request deadline, so late requests fail typed (DeadlineExceeded)
  /// instead of the driver silently abandoning the simulation loop.
  SimDuration drain_grace = Minutes(10);
  uint64_t rng_stream = 0xB000;
};

struct StorageIoResult {
  int64_t requests = 0;       ///< Completed operations (success or failure).
  int64_t successes = 0;
  int64_t failures = 0;       ///< Throttled or timed out (after retries).
  int64_t bytes_moved = 0;    ///< Successful payload bytes.
  /// Threads whose last request had not completed when the drain grace ran
  /// out (0 unless the service wedged; a typed outcome, not a hang).
  int abandoned_threads = 0;
  SimDuration elapsed = 0;
  Histogram latency_ms;       ///< Successful request latencies.
  std::vector<double> success_iops_series;  ///< Per sample interval.
  std::vector<double> failure_iops_series;

  double SuccessIops() const {
    return elapsed == 0 ? 0 : static_cast<double>(successes) / ToSeconds(elapsed);
  }
  double ThroughputGiBps() const {
    return elapsed == 0 ? 0 : ToGiB(bytes_moved) / ToSeconds(elapsed);
  }
  double ErrorRate() const {
    return requests == 0 ? 0
                         : static_cast<double>(failures) /
                               static_cast<double>(requests);
  }
};

/// Runs the measurement starting at the environment's current time; returns
/// after the virtual duration has been simulated.
StorageIoResult RunStorageIo(sim::SimEnvironment* env,
                             net::FabricDriver* fabric,
                             storage::StorageService* service,
                             const StorageIoConfig& config);

}  // namespace skyrise::platform
