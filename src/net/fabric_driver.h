#pragma once

#include "net/fabric.h"
#include "sim/environment.h"

/// \file fabric_driver.h
/// Binds a Fabric to a SimEnvironment: while transfers are active, the driver
/// steps the fluid simulation at a fixed cadence on the event queue and goes
/// quiescent when the fabric drains, so event-based components (storage
/// services, FaaS platform) and the fluid network co-simulate.

// skyrise-domain(network)
namespace skyrise::net {

class FabricDriver {
 public:
  FabricDriver(sim::SimEnvironment* env, Fabric* fabric,
               SimDuration step = Millis(20))
      : env_(env), fabric_(fabric), step_(step) {}
  SKYRISE_DISALLOW_COPY_AND_ASSIGN(FabricDriver);

  /// Starts a transfer and guarantees the fabric is being stepped. The
  /// spec's on_complete fires from a scheduled event.
  TransferId StartTransfer(Fabric::TransferSpec spec);

  Fabric* fabric() const { return fabric_; }
  sim::SimEnvironment* env() const { return env_; }
  SimDuration step() const { return step_; }

 private:
  void EnsureRunning();
  void Tick();

  sim::SimEnvironment* env_;
  Fabric* fabric_;
  SimDuration step_;
  bool running_ = false;
};

}  // namespace skyrise::net
