#include "net/instance_specs.h"

#include "common/string_util.h"

namespace skyrise::net {

namespace {

std::vector<Ec2NetworkSpec> BuildC6g() {
  // {type, vcpu, mem GiB, burst Gbps, baseline Gbps, bucket GiB}.
  // Bucket sizes grow with instance size; burst drains them in minutes
  // (vs. Lambda's sub-second 0.3 GiB budget).
  return {
      {"c6g.medium", 1, 2, 10, 0.5, 150},
      {"c6g.large", 2, 4, 10, 0.75, 240},
      {"c6g.xlarge", 4, 8, 10, 1.25, 360},
      {"c6g.2xlarge", 8, 16, 10, 2.5, 570},
      {"c6g.4xlarge", 16, 32, 10, 5.0, 960},
      {"c6g.8xlarge", 32, 64, 12, 12.0, 0},
      {"c6g.12xlarge", 48, 96, 20, 20.0, 0},
      {"c6g.16xlarge", 64, 128, 25, 25.0, 0},
  };
}

std::vector<Ec2NetworkSpec> BuildC6gn() {
  return {
      {"c6gn.medium", 1, 2, 16, 1.6, 240},
      {"c6gn.large", 2, 4, 25, 3.0, 390},
      {"c6gn.xlarge", 4, 8, 25, 5.0, 570},
      {"c6gn.2xlarge", 8, 16, 25, 10.0, 960},
      {"c6gn.4xlarge", 16, 32, 25, 25.0, 0},
      {"c6gn.8xlarge", 32, 64, 50, 50.0, 0},
      {"c6gn.12xlarge", 48, 96, 75, 75.0, 0},
      {"c6gn.16xlarge", 64, 128, 100, 100.0, 0},
  };
}

}  // namespace

const std::vector<Ec2NetworkSpec>& C6gNetworkSpecs() {
  static const std::vector<Ec2NetworkSpec> specs = BuildC6g();
  return specs;
}

const std::vector<Ec2NetworkSpec>& C6gnNetworkSpecs() {
  static const std::vector<Ec2NetworkSpec> specs = BuildC6gn();
  return specs;
}

Result<Ec2NetworkSpec> FindInstanceSpec(const std::string& instance_type) {
  for (const auto* family : {&C6gNetworkSpecs(), &C6gnNetworkSpecs()}) {
    for (const auto& spec : *family) {
      if (spec.instance_type == instance_type) return spec;
    }
  }
  return Status::NotFound(
      StrFormat("unknown instance type: %s", instance_type.c_str()));
}

Result<Ec2Nic::Options> MakeEc2NicOptions(const std::string& instance_type) {
  Ec2NetworkSpec spec;
  SKYRISE_ASSIGN_OR_RETURN(spec, FindInstanceSpec(instance_type));
  Ec2Nic::Options options;
  options.burst_rate = GbpsToBytesPerSecond(spec.burst_gbps);
  options.baseline_rate = GbpsToBytesPerSecond(spec.baseline_gbps);
  options.bucket_bytes = spec.bucket_gib * kGiB;
  return options;
}

LambdaNetworkSpec DefaultLambdaNetworkSpec() { return LambdaNetworkSpec{}; }

}  // namespace skyrise::net
