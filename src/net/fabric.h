#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "net/nic.h"

/// \file fabric.h
/// Fluid-flow network fabric. Transfers between NICs are advanced in fixed
/// time windows; per window, rates are assigned by progressive-filling
/// max-min fairness subject to: source egress allowance, destination ingress
/// allowance, the 5 Gbps single-flow EC2 cap (multiplied by the number of
/// parallel TCP connections), and an optional per-VPC aggregate ceiling (the
/// ~20 GiB/s limit Section 4.2.2 observes for customer-owned VPCs).

// skyrise-domain(network)
namespace skyrise::net {

using TransferId = uint64_t;
using VpcId = int32_t;
constexpr VpcId kNoVpc = -1;

class Fabric {
 public:
  struct Options {
    double per_flow_cap_bytes_per_sec = GbpsToBytesPerSecond(5.0);
    /// Multiplicative lognormal jitter applied to each transfer's rate per
    /// window, modelling co-tenant contention. Sigma of the underlying
    /// normal; 0 disables jitter.
    double jitter_sigma = 0.0;
    uint64_t seed = 42;
  };

  Fabric() : Fabric(Options{}) {}
  explicit Fabric(const Options& options);

  /// Registers a VPC domain with an aggregate throughput ceiling.
  VpcId AddVpc(double aggregate_cap_bytes_per_sec);

  struct TransferSpec {
    Nic* src = nullptr;
    Nic* dst = nullptr;
    int flows = 1;                 ///< Parallel TCP connections.
    int64_t total_bytes = -1;      ///< -1 => unbounded (timed run).
    VpcId vpc = kNoVpc;
    /// Per-transfer rate ceiling in bytes/s (e.g., an S3 per-connection
    /// stream limit); 0 => no extra cap beyond the flow cap.
    double rate_cap_bytes_per_sec = 0;
    std::function<void(TransferId)> on_complete;
  };

  TransferId StartTransfer(const TransferSpec& spec);
  void StopTransfer(TransferId id);
  bool IsActive(TransferId id) const;

  /// Advances all active transfers by one window of length `dt` starting at
  /// virtual time `now`.
  void Step(SimTime now, SimDuration dt);

  /// Bytes moved by a transfer during the most recent Step.
  double LastWindowBytes(TransferId id) const;
  /// Cumulative bytes moved by a transfer.
  double TotalBytes(TransferId id) const;

  /// Sum of bytes moved by all transfers during the most recent Step.
  double last_window_total() const { return last_window_total_; }

  int active_transfers() const { return static_cast<int>(transfers_.size()); }

 private:
  struct Transfer {
    TransferSpec spec;
    double moved = 0;
    double last_window = 0;
  };

  Options opt_;
  Rng rng_;
  TransferId next_id_ = 1;
  std::map<TransferId, Transfer> transfers_;
  std::vector<double> vpc_caps_;
  double last_window_total_ = 0;
};

}  // namespace skyrise::net
