#include "net/fabric.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/macros.h"

namespace skyrise::net {

Fabric::Fabric(const Options& options) : opt_(options), rng_(options.seed) {}

VpcId Fabric::AddVpc(double aggregate_cap_bytes_per_sec) {
  vpc_caps_.push_back(aggregate_cap_bytes_per_sec);
  return static_cast<VpcId>(vpc_caps_.size() - 1);
}

// skyrise-domain-crossing(network transfer API: accepts a transfer spec by value; completion fires from a scheduled event)
TransferId Fabric::StartTransfer(const TransferSpec& spec) {
  SKYRISE_CHECK(spec.src != nullptr && spec.dst != nullptr);
  SKYRISE_CHECK(spec.flows >= 1);
  if (spec.vpc != kNoVpc) {
    SKYRISE_CHECK(spec.vpc >= 0 &&
                  static_cast<size_t>(spec.vpc) < vpc_caps_.size());
  }
  const TransferId id = next_id_++;
  transfers_.emplace(id, Transfer{spec, 0, 0});
  return id;
}

void Fabric::StopTransfer(TransferId id) { transfers_.erase(id); }

bool Fabric::IsActive(TransferId id) const {
  return transfers_.count(id) > 0;
}

double Fabric::LastWindowBytes(TransferId id) const {
  auto it = transfers_.find(id);
  return it == transfers_.end() ? 0 : it->second.last_window;
}

double Fabric::TotalBytes(TransferId id) const {
  auto it = transfers_.find(id);
  return it == transfers_.end() ? 0 : it->second.moved;
}

void Fabric::Step(SimTime now, SimDuration dt) {
  last_window_total_ = 0;
  if (transfers_.empty()) return;
  const double window_sec = ToSeconds(dt);

  // Build the constraint system: one capacity per (NIC, direction) touched,
  // one per VPC, plus a private cap per transfer (flow cap x flows, jitter,
  // remaining bytes).
  struct Constraint {
    double remaining = 0;
    std::vector<size_t> members;
  };
  std::vector<Constraint> constraints;
  // Lookup-only indices (never iterated); constraint order is fixed by the
  // deterministic transfers_ (std::map) walk below, not by hash order.
  std::unordered_map<const Nic*, size_t> egress_index;
  std::unordered_map<const Nic*, size_t> ingress_index;
  std::unordered_map<VpcId, size_t> vpc_index;

  std::vector<TransferId> ids;
  std::vector<Transfer*> items;
  ids.reserve(transfers_.size());
  for (auto& [id, t] : transfers_) {
    ids.push_back(id);
    items.push_back(&t);
  }

  const size_t n = items.size();
  std::vector<double> own_cap(n);
  std::vector<std::vector<size_t>> transfer_constraints(n);

  for (size_t i = 0; i < n; ++i) {
    Transfer& t = *items[i];
    double cap =
        opt_.per_flow_cap_bytes_per_sec * t.spec.flows * window_sec;
    if (t.spec.rate_cap_bytes_per_sec > 0) {
      cap = std::min(cap, t.spec.rate_cap_bytes_per_sec * window_sec);
    }
    if (opt_.jitter_sigma > 0) {
      cap *= rng_.Lognormal(0.0, opt_.jitter_sigma);
    }
    if (t.spec.total_bytes >= 0) {
      cap = std::min(cap, static_cast<double>(t.spec.total_bytes) - t.moved);
    }
    own_cap[i] = std::max(0.0, cap);

    auto add_nic_constraint = [&](std::unordered_map<const Nic*, size_t>* idx,
                                  Nic* nic, Direction dir) {
      auto [it, inserted] = idx->try_emplace(nic, constraints.size());
      if (inserted) {
        constraints.push_back(
            Constraint{nic->AllowedBytes(dir, now, dt), {}});
      }
      constraints[it->second].members.push_back(i);
      transfer_constraints[i].push_back(it->second);
    };
    add_nic_constraint(&egress_index, t.spec.src, Direction::kOut);
    add_nic_constraint(&ingress_index, t.spec.dst, Direction::kIn);

    if (t.spec.vpc != kNoVpc) {
      auto [it, inserted] = vpc_index.try_emplace(t.spec.vpc,
                                                  constraints.size());
      if (inserted) {
        constraints.push_back(
            Constraint{vpc_caps_[t.spec.vpc] * window_sec, {}});
      }
      constraints[it->second].members.push_back(i);
      transfer_constraints[i].push_back(it->second);
    }
  }

  // Iterative water-filling: each round, every still-active transfer takes
  // the minimum of its own remaining cap and its fair share of each touched
  // constraint (remaining / active members), applied simultaneously. A round
  // either exhausts a shared constraint or clamps every own-cap-limited
  // transfer, so convergence is fast even with thousands of transfers with
  // distinct (jittered) caps; rounds are bounded as a backstop.
  std::vector<double> alloc(n, 0.0);
  std::vector<bool> active(n, true);
  std::vector<int> active_members(constraints.size(), 0);
  for (size_t c = 0; c < constraints.size(); ++c) {
    active_members[c] = static_cast<int>(constraints[c].members.size());
  }
  size_t active_count = n;
  for (size_t i = 0; i < n; ++i) {
    if (own_cap[i] <= 1e-9) {
      active[i] = false;
      --active_count;
      for (size_t c : transfer_constraints[i]) --active_members[c];
    }
  }

  const double eps = 1e-6;
  std::vector<double> share(constraints.size(), 0.0);
  for (int round = 0; round < 48 && active_count > 0; ++round) {
    // Fair shares against a snapshot of the remaining capacities, so every
    // member of a constraint receives an equal offer this round.
    for (size_t c = 0; c < constraints.size(); ++c) {
      share[c] = active_members[c] > 0
                     ? constraints[c].remaining / active_members[c]
                     : 0.0;
    }
    double moved = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      double grant = own_cap[i] - alloc[i];
      for (size_t c : transfer_constraints[i]) {
        grant = std::min(grant, share[c]);
      }
      if (grant > 0) {
        alloc[i] += grant;
        moved += grant;
        for (size_t c : transfer_constraints[i]) {
          constraints[c].remaining -= grant;
        }
      }
    }
    // Freeze transfers whose own cap or any constraint saturated.
    for (size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      bool saturated = own_cap[i] - alloc[i] <= eps;
      if (!saturated) {
        for (size_t c : transfer_constraints[i]) {
          if (constraints[c].remaining <= eps) {
            saturated = true;
            break;
          }
        }
      }
      if (saturated) {
        active[i] = false;
        --active_count;
        for (size_t c : transfer_constraints[i]) --active_members[c];
      }
    }
    if (moved <= eps) break;
  }

  // Apply allocations: consume NIC budgets, advance transfers, complete.
  std::vector<TransferId> completed;
  for (size_t i = 0; i < n; ++i) {
    Transfer& t = *items[i];
    const double bytes = alloc[i];
    t.spec.src->Consume(Direction::kOut, bytes, now, dt);
    t.spec.dst->Consume(Direction::kIn, bytes, now, dt);
    t.moved += bytes;
    t.last_window = bytes;
    last_window_total_ += bytes;
    if (t.spec.total_bytes >= 0 &&
        t.moved >= static_cast<double>(t.spec.total_bytes) - 0.5) {
      completed.push_back(ids[i]);
    }
  }
  for (TransferId id : completed) {
    auto it = transfers_.find(id);
    if (it == transfers_.end()) continue;
    auto on_complete = it->second.spec.on_complete;
    transfers_.erase(it);
    if (on_complete) on_complete(id);
  }
}

}  // namespace skyrise::net
