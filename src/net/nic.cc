#include "net/nic.h"

#include <algorithm>

namespace skyrise::net {

LambdaNic::Options::Options() {
  // Inbound: measured 1.2 GiB/s burst. Outbound: reduced and more variable
  // (the paper attributes part of that to iPerf3 data generation overhead);
  // we model a 0.9 GiB/s outbound burst cap.
  in.burst_rate = 1.2 * kGiB;
  out.burst_rate = 0.9 * kGiB;
}

LambdaNic::LambdaNic(const Options& options)
    : in_(options.in), out_(options.out) {}

double LambdaNic::AllowedBytes(Direction dir, SimTime now, SimDuration dt) {
  return (dir == Direction::kIn ? in_ : out_).AllowedBytes(now, dt);
}

void LambdaNic::Consume(Direction dir, double bytes, SimTime now,
                        SimDuration dt) {
  (void)dt;
  (dir == Direction::kIn ? in_ : out_).Consume(bytes, now);
}

// skyrise-domain-crossing(NIC flow-control callback: the owning sandbox signals its network attachment has gone idle)
void LambdaNic::NotifyIdle() {
  in_.NotifyIdle();
  out_.NotifyIdle();
}

Ec2Nic::Ec2Nic(const Options& options) : opt_(options) {
  in_.tokens = options.bucket_bytes;
  out_.tokens = options.bucket_bytes;
}

void Ec2Nic::DirState::RefillTo(SimTime t, double fill_rate, double capacity) {
  if (t <= last) return;
  tokens = std::min(capacity, tokens + ToSeconds(t - last) * fill_rate);
  last = t;
}

double Ec2Nic::AllowedBytes(Direction dir, SimTime now, SimDuration dt) {
  const double window_sec = ToSeconds(dt);
  if (opt_.bucket_bytes <= 0) {
    // No burst mechanism: flat baseline == burst rate.
    return opt_.baseline_rate * window_sec;
  }
  DirState& s = state(dir);
  s.RefillTo(now, opt_.baseline_rate, opt_.bucket_bytes);
  // Stored tokens plus the baseline earned during the window itself.
  const double budget = s.tokens + opt_.baseline_rate * window_sec;
  return std::min(opt_.burst_rate * window_sec, budget);
}

void Ec2Nic::Consume(Direction dir, double bytes, SimTime now,
                     SimDuration dt) {
  if (opt_.bucket_bytes <= 0) return;
  DirState& s = state(dir);
  s.RefillTo(now, opt_.baseline_rate, opt_.bucket_bytes);
  s.tokens += opt_.baseline_rate * ToSeconds(dt) - bytes;
  s.tokens = std::clamp(s.tokens, 0.0, opt_.bucket_bytes);
  s.last = now + dt;
}

double Ec2Nic::BucketRemaining(Direction dir, SimTime now) {
  if (opt_.bucket_bytes <= 0) return 0;
  DirState& s = state(dir);
  s.RefillTo(now, opt_.baseline_rate, opt_.bucket_bytes);
  return s.tokens;
}

}  // namespace skyrise::net
