#include "net/fabric_driver.h"

namespace skyrise::net {

// skyrise-domain-crossing(network transfer API: accepts a transfer spec by value and keeps the fluid fabric stepping while transfers are active)
TransferId FabricDriver::StartTransfer(Fabric::TransferSpec spec) {
  const TransferId id = fabric_->StartTransfer(spec);
  EnsureRunning();
  return id;
}

void FabricDriver::EnsureRunning() {
  if (running_) return;
  running_ = true;
  env_->Schedule(step_, [this] { Tick(); });
}

void FabricDriver::Tick() {
  // The window that just elapsed ended now; step it with its start time.
  fabric_->Step(env_->now() - step_, step_);
  if (fabric_->active_transfers() > 0) {
    env_->Schedule(step_, [this] { Tick(); });
  } else {
    running_ = false;
  }
}

}  // namespace skyrise::net
