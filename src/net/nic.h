#pragma once

#include <memory>
#include <string>

#include "common/units.h"
#include "sim/token_bucket.h"

/// \file nic.h
/// Per-instance network interface models. A NIC exposes, per direction, how
/// many bytes it permits in a fluid-simulation window and records actual
/// consumption. Three concrete models:
///  - LambdaNic: dual-budget bursting (Section 4.2 mechanism),
///  - Ec2Nic: classic token bucket with baseline refill and burst cap,
///  - UnlimitedNic: fixed line rate (used for beefy iPerf servers).

// skyrise-domain(network)
namespace skyrise::net {

enum class Direction { kIn = 0, kOut = 1 };

class Nic {
 public:
  virtual ~Nic() = default;

  /// Bytes this NIC allows in `dir` during the window [now, now+dt).
  virtual double AllowedBytes(Direction dir, SimTime now, SimDuration dt) = 0;

  /// Records `bytes` consumed during the window starting at `now` with
  /// length `dt`.
  virtual void Consume(Direction dir, double bytes, SimTime now,
                       SimDuration dt) = 0;

  /// Owner released the NIC (e.g., the function terminated).
  // skyrise-domain-crossing(NIC flow-control callback: the owning sandbox signals its network attachment has gone idle)
  virtual void NotifyIdle() {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  std::string name_;
};

/// AWS Lambda function NIC: ~300 MiB initial budget (150 MiB one-off +
/// 150 MiB rechargeable), 1.2 GiB/s inbound burst, reduced outbound burst,
/// 75 MiB/s chunked baseline. Bandwidth is constant across function sizes.
class LambdaNic : public Nic {
 public:
  struct Options {
    sim::BurstBudget::Options in;
    sim::BurstBudget::Options out;
    Options();
  };

  explicit LambdaNic(const Options& options = Options());

  double AllowedBytes(Direction dir, SimTime now, SimDuration dt) override;
  void Consume(Direction dir, double bytes, SimTime now,
               SimDuration dt) override;
  void NotifyIdle() override;

  const sim::BurstBudget& budget(Direction dir) const {
    return dir == Direction::kIn ? in_ : out_;
  }

 private:
  sim::BurstBudget in_;
  sim::BurstBudget out_;
};

/// EC2 instance NIC: token bucket refilled at the baseline rate, capped at
/// the burst rate; large instances have no burst (baseline == burst).
class Ec2Nic : public Nic {
 public:
  struct Options {
    double burst_rate = 10e9 / 8;     ///< Bytes/s.
    double baseline_rate = 1.25e9 / 8;
    double bucket_bytes = 8.0 * kGiB;  ///< 0 => no bucket (sustained rate).
  };

  explicit Ec2Nic(const Options& options);

  double AllowedBytes(Direction dir, SimTime now, SimDuration dt) override;
  void Consume(Direction dir, double bytes, SimTime now,
               SimDuration dt) override;

  /// Remaining burst tokens (for bucket-size measurements).
  double BucketRemaining(Direction dir, SimTime now);

 private:
  /// Bucket with in-window accrual: stored tokens are capped at capacity,
  /// but baseline refill earned during an active window is usable directly.
  struct DirState {
    double tokens = 0;
    SimTime last = 0;
    void RefillTo(SimTime t, double fill_rate, double capacity);
  };

  DirState& state(Direction dir) { return dir == Direction::kIn ? in_ : out_; }

  Options opt_;
  DirState in_;
  DirState out_;
};

/// Fixed line-rate NIC with no bucket (e.g., a 100 Gbps measurement server,
/// or a storage service endpoint with asymmetric read/write ceilings).
class UnlimitedNic : public Nic {
 public:
  explicit UnlimitedNic(double rate_bytes_per_sec)
      : in_rate_(rate_bytes_per_sec), out_rate_(rate_bytes_per_sec) {}
  UnlimitedNic(double in_rate_bytes_per_sec, double out_rate_bytes_per_sec)
      : in_rate_(in_rate_bytes_per_sec), out_rate_(out_rate_bytes_per_sec) {}

  double AllowedBytes(Direction dir, SimTime, SimDuration dt) override {
    return (dir == Direction::kIn ? in_rate_ : out_rate_) * ToSeconds(dt);
  }
  void Consume(Direction, double, SimTime, SimDuration) override {}

 private:
  double in_rate_;
  double out_rate_;
};

}  // namespace skyrise::net
