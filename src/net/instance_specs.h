#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "net/nic.h"

/// \file instance_specs.h
/// Network and compute specifications for the instance families used in the
/// paper (EC2 C6g / C6gn, ARM Lambda). Burst/baseline bandwidths follow the
/// AWS published per-size figures; bucket sizes are calibrated so burst
/// durations land in the 3–45 minute range the paper's Fig. 6 sweep observed.

namespace skyrise::net {

struct Ec2NetworkSpec {
  std::string instance_type;
  int vcpus = 0;
  double memory_gib = 0;
  double burst_gbps = 0;     ///< 0 burst == baseline (no bursting).
  double baseline_gbps = 0;
  double bucket_gib = 0;     ///< Token bucket size; 0 => sustained.
};

/// All C6g sizes (medium .. 16xlarge).
const std::vector<Ec2NetworkSpec>& C6gNetworkSpecs();

/// Network-optimized C6gn sizes (4x the C6g throughput).
const std::vector<Ec2NetworkSpec>& C6gnNetworkSpecs();

/// Looks up a spec by full instance type name, e.g. "c6g.xlarge".
[[nodiscard]] Result<Ec2NetworkSpec> FindInstanceSpec(const std::string& instance_type);

/// Builds a NIC model for an EC2 instance type.
[[nodiscard]] Result<Ec2Nic::Options> MakeEc2NicOptions(const std::string& instance_type);

/// Lambda network constants from Section 4.2 (constant across sizes).
struct LambdaNetworkSpec {
  double burst_in_gib_s = 1.2;
  double burst_out_gib_s = 0.9;
  double baseline_mib_s = 75.0;
  double one_off_mib = 150.0;
  double bucket_mib = 150.0;
};

LambdaNetworkSpec DefaultLambdaNetworkSpec();

}  // namespace skyrise::net
