#pragma once

#include <vector>

#include "common/units.h"
#include "net/fabric.h"
#include "net/nic.h"

/// \file iperf.h
/// iPerf3-style closed-loop traffic measurement on the simulated fabric,
/// mirroring the paper's network I/O measurement function: a client pushes or
/// pulls random data for a fixed duration while throughput is sampled at
/// fixed (default 20 ms) intervals.

namespace skyrise::net {

struct ThroughputSample {
  SimTime time = 0;        ///< Window start.
  double bytes = 0;        ///< Bytes moved in the window.
  double gib_per_sec = 0;  ///< Window throughput.
};

struct IperfResult {
  std::vector<ThroughputSample> samples;
  double total_bytes = 0;
  SimDuration duration = 0;
  double mean_gib_per_sec = 0;

  /// Peak window throughput (GiB/s).
  double BurstThroughput() const;
  /// Mean throughput over the trailing fraction of the run, after the burst
  /// has drained (GiB/s).
  double BaselineThroughput(double trailing_fraction = 0.25) const;
  /// Bytes moved above baseline before throughput first drops to the
  /// baseline level — an estimate of the token bucket size.
  double EstimatedBucketBytes() const;
};

struct IperfConfig {
  SimDuration duration = Seconds(5);
  SimDuration sample_interval = Millis(20);
  int flows = 4;                    ///< One TCP connection per vCPU.
  Direction direction = Direction::kIn;  ///< kIn: server->client download.
  /// Optional traffic pause (e.g., the paper's 3 s sleep) inserted at
  /// `pause_at` for `pause_duration`; 0 disables.
  SimDuration pause_at = 0;
  SimDuration pause_duration = 0;
  VpcId vpc = kNoVpc;
};

/// Runs a single client/server measurement. `client` is the NIC under test;
/// `server` should be an UnlimitedNic so it never bottlenecks.
IperfResult RunIperf(Fabric* fabric, Nic* client, Nic* server,
                     const IperfConfig& config, SimTime start = 0);

/// Runs `clients.size()` concurrent measurements (one server per up to 10
/// clients is the paper setup; here servers are unlimited so one per client
/// is equivalent). Returns per-client results plus an aggregate series.
struct MultiIperfResult {
  std::vector<IperfResult> per_client;
  std::vector<ThroughputSample> aggregate;
  double aggregate_mean_gib_per_sec = 0;
};

MultiIperfResult RunIperfConcurrent(Fabric* fabric,
                                    const std::vector<Nic*>& clients,
                                    const std::vector<Nic*>& servers,
                                    const IperfConfig& config,
                                    SimTime start = 0);

}  // namespace skyrise::net
