#include "net/iperf.h"

#include <algorithm>

#include "common/macros.h"
#include "common/stats.h"

namespace skyrise::net {

double IperfResult::BurstThroughput() const {
  double peak = 0;
  for (const auto& s : samples) peak = std::max(peak, s.gib_per_sec);
  return peak;
}

double IperfResult::BaselineThroughput(double trailing_fraction) const {
  if (samples.empty()) return 0;
  const size_t start =
      static_cast<size_t>(samples.size() * (1.0 - trailing_fraction));
  double bytes = 0;
  SimDuration time = 0;
  for (size_t i = start; i < samples.size(); ++i) {
    bytes += samples[i].bytes;
    time += samples.size() > 1 && i + 1 < samples.size()
                ? samples[i + 1].time - samples[i].time
                : 0;
  }
  // Use window count * interval for the trailing duration.
  const size_t count = samples.size() - start;
  if (count < 2) return samples.back().gib_per_sec;
  const SimDuration interval = samples[1].time - samples[0].time;
  return GiBPerSecond(static_cast<int64_t>(bytes),
                      static_cast<SimDuration>(count) * interval);
}

double IperfResult::EstimatedBucketBytes() const {
  if (samples.empty()) return 0;
  const double baseline = BaselineThroughput();
  const SimDuration interval =
      samples.size() > 1 ? samples[1].time - samples[0].time : Millis(20);
  double above = 0;
  for (const auto& s : samples) {
    if (s.gib_per_sec <= baseline * 1.5) break;  // Burst has drained.
    above += s.bytes - baseline * kGiB * ToSeconds(interval);
  }
  return std::max(0.0, above);
}

IperfResult RunIperf(Fabric* fabric, Nic* client, Nic* server,
                     const IperfConfig& config, SimTime start) {
  MultiIperfResult multi =
      RunIperfConcurrent(fabric, {client}, {server}, config, start);
  return std::move(multi.per_client[0]);
}

MultiIperfResult RunIperfConcurrent(Fabric* fabric,
                                    const std::vector<Nic*>& clients,
                                    const std::vector<Nic*>& servers,
                                    const IperfConfig& config,
                                    SimTime start) {
  SKYRISE_CHECK(!clients.empty());
  SKYRISE_CHECK(!servers.empty());
  MultiIperfResult out;
  out.per_client.resize(clients.size());

  std::vector<TransferId> transfer_of_client(clients.size(), 0);
  auto start_all = [&] {
    for (size_t i = 0; i < clients.size(); ++i) {
      Nic* server = servers[i % servers.size()];
      Fabric::TransferSpec spec;
      if (config.direction == Direction::kIn) {
        spec.src = server;  // Download: server egress -> client ingress.
        spec.dst = clients[i];
      } else {
        spec.src = clients[i];
        spec.dst = server;
      }
      spec.flows = config.flows;
      spec.total_bytes = -1;
      spec.vpc = config.vpc;
      transfer_of_client[i] = fabric->StartTransfer(spec);
    }
  };
  auto stop_all = [&] {
    for (size_t i = 0; i < clients.size(); ++i) {
      if (transfer_of_client[i] != 0) {
        fabric->StopTransfer(transfer_of_client[i]);
        transfer_of_client[i] = 0;
      }
    }
  };

  start_all();
  const SimDuration dt = config.sample_interval;
  bool paused = false;
  for (SimTime t = 0; t < config.duration; t += dt) {
    const SimTime now = start + t;
    // Handle the optional mid-run traffic pause.
    if (config.pause_duration > 0) {
      const bool in_pause =
          t >= config.pause_at && t < config.pause_at + config.pause_duration;
      if (in_pause && !paused) {
        stop_all();
        for (Nic* c : clients) c->NotifyIdle();
        paused = true;
      } else if (!in_pause && paused) {
        start_all();
        paused = false;
      }
    }

    fabric->Step(now, dt);

    double window_total = 0;
    for (size_t i = 0; i < clients.size(); ++i) {
      const double bytes = transfer_of_client[i] != 0
                               ? fabric->LastWindowBytes(transfer_of_client[i])
                               : 0.0;
      out.per_client[i].samples.push_back(
          ThroughputSample{now, bytes, GiBPerSecond(
                                           static_cast<int64_t>(bytes), dt)});
      out.per_client[i].total_bytes += bytes;
      window_total += bytes;
    }
    out.aggregate.push_back(ThroughputSample{
        now, window_total,
        GiBPerSecond(static_cast<int64_t>(window_total), dt)});
  }
  stop_all();

  for (auto& r : out.per_client) {
    r.duration = config.duration;
    r.mean_gib_per_sec = GiBPerSecond(
        static_cast<int64_t>(r.total_bytes), config.duration);
  }
  double agg_bytes = 0;
  for (const auto& s : out.aggregate) agg_bytes += s.bytes;
  out.aggregate_mean_gib_per_sec =
      GiBPerSecond(static_cast<int64_t>(agg_bytes), config.duration);
  return out;
}

}  // namespace skyrise::net
