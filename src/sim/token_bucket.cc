#include "sim/token_bucket.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace skyrise::sim {

TokenBucket::TokenBucket(double capacity, double fill_rate_per_sec,
                         double initial)
    : capacity_(capacity), fill_rate_(fill_rate_per_sec), tokens_(initial) {
  SKYRISE_CHECK(capacity >= 0 && fill_rate_per_sec >= 0);
  tokens_ = std::min(tokens_, capacity_);
}

void TokenBucket::Refill(SimTime now) {
  SKYRISE_CHECK(now >= last_refill_);
  const double elapsed = ToSeconds(now - last_refill_);
  tokens_ = std::min(capacity_, tokens_ + elapsed * fill_rate_);
  last_refill_ = now;
}

double TokenBucket::Available(SimTime now) {
  Refill(now);
  return tokens_;
}

double TokenBucket::Consume(double requested, SimTime now) {
  Refill(now);
  const double granted = std::clamp(requested, 0.0, tokens_);
  tokens_ -= granted;
  return granted;
}

bool TokenBucket::TryConsume(double amount, SimTime now) {
  Refill(now);
  if (tokens_ + 1e-9 < amount) return false;
  tokens_ -= amount;
  return true;
}

SimDuration TokenBucket::TimeUntilAvailable(double amount, SimTime now) {
  Refill(now);
  if (tokens_ >= amount) return 0;
  if (fill_rate_ <= 0) return kDay * 365;  // Effectively never.
  const double deficit = std::min(amount, capacity_) - tokens_;
  return static_cast<SimDuration>(std::ceil(deficit / fill_rate_ * kSecond));
}

void TokenBucket::set_capacity(double capacity) {
  capacity_ = capacity;
  tokens_ = std::min(tokens_, capacity_);
}

void TokenBucket::SetTokens(double tokens, SimTime now) {
  tokens_ = std::clamp(tokens, 0.0, capacity_);
  last_refill_ = now;
}

BurstBudget::BurstBudget(const Options& options)
    : opt_(options), one_off_(options.one_off_bytes),
      bucket_(options.bucket_bytes) {}

void BurstBudget::MaybeIdleRefill(SimTime now) {
  if (ever_active_ && now - last_activity_ >= opt_.idle_refill_after) {
    // Section 4.2: "the token bucket refills halfway to the initial capacity
    // as soon as a function stops utilizing the network" — i.e., the
    // rechargeable half is restored while the one-off half stays consumed.
    bucket_ = opt_.bucket_bytes;
  }
}

double BurstBudget::BaselineAvailable(SimTime now) {
  const int64_t interval = now / opt_.baseline_interval;
  if (interval != baseline_interval_index_) {
    baseline_interval_index_ = interval;
    baseline_available_ = opt_.baseline_chunk_bytes;
  }
  return baseline_available_;
}

double BurstBudget::AllowedBytes(SimTime now, SimDuration dt) {
  MaybeIdleRefill(now);
  const double window_sec = ToSeconds(dt);
  if (InBurst()) {
    const double rate_cap = opt_.burst_rate * window_sec;
    return std::min(rate_cap, one_off_ + bucket_);
  }
  return std::min(BaselineAvailable(now), opt_.burst_rate * window_sec);
}

void BurstBudget::Consume(double bytes, SimTime now) {
  if (bytes <= 0) {
    MaybeIdleRefill(now);
    return;
  }
  MaybeIdleRefill(now);
  ever_active_ = true;
  last_activity_ = now;
  // Drain one-off first, then the rechargeable bucket, then the baseline
  // chunk for the current interval.
  double remaining = bytes;
  const double from_one_off = std::min(one_off_, remaining);
  one_off_ -= from_one_off;
  remaining -= from_one_off;
  const double from_bucket = std::min(bucket_, remaining);
  bucket_ -= from_bucket;
  remaining -= from_bucket;
  if (remaining > 0) {
    const double base = BaselineAvailable(now);
    const double from_base = std::min(base, remaining);
    baseline_available_ -= from_base;
    remaining -= from_base;
  }
  // Any residual overdraft is dropped; callers should respect AllowedBytes.
}

void BurstBudget::NotifyIdle() { bucket_ = opt_.bucket_bytes; }

}  // namespace skyrise::sim
