#include "sim/environment.h"

namespace skyrise::sim {

SimEnvironment::SimEnvironment(uint64_t seed) : seed_(seed), root_rng_(seed) {}

EventId SimEnvironment::Schedule(SimDuration delay, std::function<void()> fn) {
  SKYRISE_CHECK(delay >= 0);
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId SimEnvironment::ScheduleAt(SimTime when, std::function<void()> fn) {
  SKYRISE_CHECK(when >= now_);
  const EventId id = next_id_++;
  queue_.push(Event{when, next_sequence_++, id, std::move(fn)});
  ++pending_count_;
  return id;
}

void SimEnvironment::Cancel(EventId id) {
  if (id != kInvalidEventId) cancelled_.insert(id);
}

bool SimEnvironment::Step() {
  while (!queue_.empty()) {
    // Copy out the event before popping: the callback may schedule new events.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    --pending_count_;
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.time;
    ++events_processed_;
    ev.fn();
    return true;
  }
  return false;
}

SimTime SimEnvironment::Run() {
  while (Step()) {
  }
  return now_;
}

void SimEnvironment::RunUntil(SimTime until) {
  SKYRISE_CHECK(until >= now_);
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.time > until) break;
    if (cancelled_.count(top.id) > 0) {
      cancelled_.erase(top.id);
      queue_.pop();
      --pending_count_;
      continue;
    }
    Step();
  }
  now_ = until;
}

}  // namespace skyrise::sim
