#include "sim/environment.h"

#include <limits>

namespace skyrise::sim {

SimEnvironment::SimEnvironment(uint64_t seed) : seed_(seed), root_rng_(seed) {}

EventId SimEnvironment::ScheduleImpl(SimTime when, EventCallback callback) {
  SKYRISE_CHECK(when >= now_);
  return queue_.Push(when, std::move(callback));
}

void SimEnvironment::Cancel(EventId id) { queue_.Cancel(id); }

bool SimEnvironment::FireNext(SimTime limit) {
  SimTime time = 0;
  bool cancelled = false;
  while (queue_.PeekNext(&time, &cancelled)) {
    if (time > limit) return false;
    if (cancelled) {
      queue_.DropNext();
      continue;
    }
    EventCallback callback = queue_.PopNext(&time);
    now_ = time;
    ++events_processed_;
    callback();
    return true;
  }
  return false;
}

bool SimEnvironment::Step() {
  return FireNext(std::numeric_limits<SimTime>::max());
}

SimTime SimEnvironment::Run() {
  while (Step()) {
  }
  return now_;
}

void SimEnvironment::RunUntil(SimTime until) {
  SKYRISE_CHECK(until >= now_);
  while (FireNext(until)) {
  }
  now_ = until;
}

}  // namespace skyrise::sim
