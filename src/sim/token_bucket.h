#pragma once

#include <cstdint>

#include "common/units.h"

/// \file token_bucket.h
/// Rate-limiting primitives used by the network and storage models.
///
/// `TokenBucket` is the classic continuously-refilled bucket (EC2 NICs, S3
/// partition IOPS, DynamoDB burst capacity). `BurstBudget` implements the
/// Lambda NIC semantics reverse-engineered in Section 4.2 of the paper: a
/// one-off non-rechargeable budget plus a rechargeable bucket that refills to
/// full when the NIC goes idle, and a chunked baseline allowance once both
/// are drained (7.5 MiB per 100 ms interval -> 75 MiB/s).

namespace skyrise::sim {

class TokenBucket {
 public:
  /// `capacity`/`initial` in tokens, `fill_rate` in tokens per second.
  TokenBucket(double capacity, double fill_rate_per_sec, double initial);

  /// Tokens currently available at virtual time `now`.
  double Available(SimTime now);

  /// Consumes up to `requested` tokens; returns the amount granted.
  double Consume(double requested, SimTime now);

  /// Consumes exactly `amount` if available; returns false otherwise.
  bool TryConsume(double amount, SimTime now);

  /// Virtual time until `amount` tokens will be available (0 if already).
  SimDuration TimeUntilAvailable(double amount, SimTime now);

  void set_fill_rate(double per_sec) { fill_rate_ = per_sec; }
  void set_capacity(double capacity);
  double capacity() const { return capacity_; }
  double fill_rate() const { return fill_rate_; }

  /// Forces the token count (used for warm/cold scenario setup).
  void SetTokens(double tokens, SimTime now);

 private:
  void Refill(SimTime now);

  double capacity_;
  double fill_rate_;  ///< Tokens per second.
  double tokens_;
  SimTime last_refill_ = 0;
};

/// Lambda-style dual-budget NIC allowance (one direction).
class BurstBudget {
 public:
  struct Options {
    double one_off_bytes = 150.0 * kMiB;     ///< Non-rechargeable.
    double bucket_bytes = 150.0 * kMiB;      ///< Rechargeable on idle.
    double burst_rate = 1.2 * kGiB;          ///< Bytes/s while budget lasts.
    double baseline_chunk_bytes = 7.5 * kMiB;
    SimDuration baseline_interval = Millis(100);
    SimDuration idle_refill_after = Millis(500);
  };

  explicit BurstBudget(const Options& options);

  /// Bytes permitted for a transfer window [now, now + dt). Also detects idle
  /// gaps and refills the rechargeable bucket.
  double AllowedBytes(SimTime now, SimDuration dt);

  /// Records actual consumption for the window starting at `now`.
  void Consume(double bytes, SimTime now);

  /// True while burst budget (one-off + bucket) has tokens left.
  bool InBurst() const { return one_off_ + bucket_ > 0.5; }

  double one_off_remaining() const { return one_off_; }
  double bucket_remaining() const { return bucket_; }

  /// Notifies that the owner released the NIC (function stopped/terminated);
  /// triggers the idle refill immediately.
  void NotifyIdle();

 private:
  void MaybeIdleRefill(SimTime now);
  /// Baseline tokens currently usable in the chunk interval containing `now`.
  double BaselineAvailable(SimTime now);

  Options opt_;
  double one_off_;
  double bucket_;
  double baseline_available_ = 0;
  int64_t baseline_interval_index_ = -1;
  SimTime last_activity_ = 0;
  bool ever_active_ = false;
};

}  // namespace skyrise::sim
