#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "sim/environment.h"

/// \file fault_injector.h
/// Seeded, deterministic fault injection for chaos experiments. One injector
/// is shared by every service in a testbed; each consumer asks it for a
/// decision at well-defined points (storage admission, function execution
/// start, invoke dispatch, data-path streaming). All randomness comes from an
/// `Rng` stream forked off the simulation seed, so for a fixed (seed,
/// profile) the exact same faults fire at the exact same virtual times — a
/// chaos run is as reproducible as a fault-free one.
///
/// Fault classes follow the reliability observations of Sections 3.2/4.4:
///  - transient storage 500/503 responses, optionally clustered into bursts
///    (SlowDown storms on cold prefix partitions),
///  - function crashes mid-execution and sandbox kills (worker loss at
///    1,000-way fan-out),
///  - invoke-path latency spikes (slow placement/dispatch),
///  - network blips (added first-byte latency on the storage data path).

namespace skyrise::sim {

class FaultInjector {
 public:
  struct Profile {
    // --- Storage faults (consumed by storage::ObjectStore). ---
    /// Per-request probability of a transient error outside burst windows.
    double storage_read_error_probability = 0;
    double storage_write_error_probability = 0;
    /// Fraction of injected storage errors surfaced as 503 SlowDown
    /// (kResourceExhausted); the rest are 500 InternalError (kIoError).
    /// Both are retriable by `storage::RetryClient`.
    double storage_slowdown_fraction = 0.5;
    /// When `storage_burst_interval` > 0, every interval opens with a
    /// `storage_burst_duration` window during which the error probability is
    /// `storage_burst_error_probability` instead of the baseline.
    double storage_burst_error_probability = 0;
    SimDuration storage_burst_duration = 0;
    SimDuration storage_burst_interval = 0;

    /// Network blips: probability of adding U(0, max) first-byte latency on
    /// the storage data path.
    double network_blip_probability = 0;
    SimDuration network_blip_max = 0;

    // --- Compute faults (consumed by LambdaPlatform / Ec2Fleet). ---
    /// Probability that an execution crashes mid-flight (handler error; the
    /// execution environment survives).
    double function_crash_probability = 0;
    /// Probability that the whole sandbox is killed (environment lost; on
    /// Lambda the sandbox is not returned to the warm pool).
    double sandbox_kill_probability = 0;
    /// Crash point: sampled uniformly in [0, crash_delay_max) after the
    /// handler starts.
    SimDuration crash_delay_max = Seconds(2);
    /// Functions never crashed (e.g. the query coordinator, which is the
    /// single point whose loss fails the whole query by design).
    std::vector<std::string> crash_exempt_functions;

    // --- Invoke-path faults (consumed by LambdaPlatform). ---
    /// Probability of adding U(0, max) latency to the invoke path.
    double invoke_delay_probability = 0;
    SimDuration invoke_delay_max = 0;
  };

  /// All-quiet profile; the default-constructed Profile injects nothing.
  static Profile Disabled() { return Profile{}; }
  /// Aggressive chaos-testing profile: 5% transient storage errors with
  /// periodic SlowDown storms, 15% function crashes + 5% sandbox kills,
  /// invoke delays and network blips.
  static Profile Chaos();

  struct Stats {
    int64_t storage_errors = 0;   ///< Total injected storage failures.
    int64_t slowdowns = 0;        ///< ... of which 503 SlowDown.
    int64_t internal_errors = 0;  ///< ... of which 500 InternalError.
    int64_t function_crashes = 0;
    int64_t sandbox_kills = 0;
    int64_t invoke_delays = 0;
    int64_t network_blips = 0;
  };

  /// Crash decision for one execution, sampled when the handler starts.
  struct CrashDecision {
    bool crash = false;
    bool kill_sandbox = false;
    SimDuration after = 0;
  };

  FaultInjector(SimEnvironment* env, const Profile& profile,
                uint64_t rng_stream = 7001);
  SKYRISE_DISALLOW_COPY_AND_ASSIGN(FaultInjector);

  /// Storage admission hook: OK to serve the request, or the transient error
  /// to fail it with.
  [[nodiscard]] Status MaybeStorageError(bool is_write);

  /// Extra first-byte latency on the storage data path (0 = no blip).
  SimDuration MaybeNetworkBlip();

  /// Samples the crash plan for one execution of `function`.
  CrashDecision SampleCrash(const std::string& function);

  /// Extra invoke-path latency (0 = no spike).
  SimDuration MaybeInvokeDelay();

  /// True while inside a storage error-burst window.
  bool InStorageBurst() const;

  const Stats& stats() const { return stats_; }
  const Profile& profile() const { return profile_; }

 private:
  SimEnvironment* env_;
  Profile profile_;
  Rng rng_;
  Stats stats_;
};

}  // namespace skyrise::sim
