#include "sim/fault_injector.h"

namespace skyrise::sim {

FaultInjector::Profile FaultInjector::Chaos() {
  Profile p;
  p.storage_read_error_probability = 0.05;
  p.storage_write_error_probability = 0.05;
  p.storage_slowdown_fraction = 0.5;
  p.storage_burst_error_probability = 0.5;
  p.storage_burst_duration = Seconds(2);
  p.storage_burst_interval = Seconds(30);
  p.network_blip_probability = 0.05;
  p.network_blip_max = Millis(200);
  p.function_crash_probability = 0.15;
  p.sandbox_kill_probability = 0.05;
  p.crash_delay_max = Seconds(2);
  p.invoke_delay_probability = 0.1;
  p.invoke_delay_max = Millis(500);
  return p;
}

FaultInjector::FaultInjector(SimEnvironment* env, const Profile& profile,
                             uint64_t rng_stream)
    : env_(env), profile_(profile), rng_(env->ForkRng(rng_stream)) {}

bool FaultInjector::InStorageBurst() const {
  if (profile_.storage_burst_interval <= 0) return false;
  return env_->now() % profile_.storage_burst_interval <
         profile_.storage_burst_duration;
}

Status FaultInjector::MaybeStorageError(bool is_write) {
  const double base = is_write ? profile_.storage_write_error_probability
                               : profile_.storage_read_error_probability;
  const double p =
      InStorageBurst() ? profile_.storage_burst_error_probability : base;
  if (p <= 0 || !rng_.Bernoulli(p)) return Status::OK();
  ++stats_.storage_errors;
  if (rng_.Bernoulli(profile_.storage_slowdown_fraction)) {
    ++stats_.slowdowns;
    return Status::ResourceExhausted("503 SlowDown (injected)");
  }
  ++stats_.internal_errors;
  return Status::IoError("500 InternalError (injected)");
}

SimDuration FaultInjector::MaybeNetworkBlip() {
  if (profile_.network_blip_probability <= 0 ||
      !rng_.Bernoulli(profile_.network_blip_probability)) {
    return 0;
  }
  ++stats_.network_blips;
  return static_cast<SimDuration>(
      rng_.Uniform(0, static_cast<double>(profile_.network_blip_max)));
}

FaultInjector::CrashDecision FaultInjector::SampleCrash(
    const std::string& function) {
  CrashDecision decision;
  for (const auto& exempt : profile_.crash_exempt_functions) {
    if (exempt == function) return decision;
  }
  if (profile_.sandbox_kill_probability > 0 &&
      rng_.Bernoulli(profile_.sandbox_kill_probability)) {
    decision.crash = true;
    decision.kill_sandbox = true;
  } else if (profile_.function_crash_probability > 0 &&
             rng_.Bernoulli(profile_.function_crash_probability)) {
    decision.crash = true;
  }
  if (decision.crash) {
    decision.after = static_cast<SimDuration>(
        rng_.Uniform(0, static_cast<double>(profile_.crash_delay_max)));
    ++stats_.function_crashes;
    if (decision.kill_sandbox) ++stats_.sandbox_kills;
  }
  return decision;
}

SimDuration FaultInjector::MaybeInvokeDelay() {
  if (profile_.invoke_delay_probability <= 0 ||
      !rng_.Bernoulli(profile_.invoke_delay_probability)) {
    return 0;
  }
  ++stats_.invoke_delays;
  return static_cast<SimDuration>(
      rng_.Uniform(0, static_cast<double>(profile_.invoke_delay_max)));
}

}  // namespace skyrise::sim
