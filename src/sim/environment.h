#pragma once

#include <cstdint>
#include <utility>

#include "common/macros.h"
#include "common/random.h"
#include "common/units.h"
#include "sim/event_queue.h"

/// \file environment.h
/// Discrete-event simulation kernel. All serverless services (network, FaaS
/// platform, storage) schedule their state transitions on one shared
/// `SimEnvironment`, which owns the virtual clock and the event queue.
///
/// Determinism: ties in event time are broken by insertion sequence number,
/// and randomness comes from per-entity `Rng` streams forked off the
/// environment seed, so a run is a pure function of (seed, configuration).
///
/// The queue is a pooled calendar queue (see event_queue.h): scheduling in
/// steady state performs zero heap allocations for callbacks that fit the
/// 48-byte inline buffer, and cancellation is an O(1) generation check
/// instead of a tombstone-set insert.

// skyrise-domain(sim-kernel)
namespace skyrise::sim {

class SimEnvironment {
 public:
  explicit SimEnvironment(uint64_t seed = 42);
  SKYRISE_DISALLOW_COPY_AND_ASSIGN(SimEnvironment);

  SimTime now() const { return now_; }
  uint64_t seed() const { return seed_; }

  /// Schedules `fn` to run `delay` microseconds from now. Returns an id that
  /// can be passed to Cancel(). Accepts any void() callable; small captures
  /// are stored inline in the event slot (no heap allocation).
  template <typename F>
  EventId Schedule(SimDuration delay, F&& fn) {
    SKYRISE_CHECK(delay >= 0);
    return ScheduleImpl(now_ + delay, EventCallback(std::forward<F>(fn)));
  }

  /// Schedules at an absolute virtual time (>= now).
  template <typename F>
  EventId ScheduleAt(SimTime when, F&& fn) {
    return ScheduleImpl(when, EventCallback(std::forward<F>(fn)));
  }

  /// Cancels a pending event; no-op if it already fired or was cancelled
  /// (stale ids are rejected by the slot generation, so this never leaks).
  void Cancel(EventId id);

  /// Runs until the event queue drains. Returns the final virtual time.
  SimTime Run();

  /// Runs all events with time <= `until`, then sets now to `until`.
  void RunUntil(SimTime until);

  /// Executes the single next event. Returns false when the queue is empty.
  bool Step();

  bool empty() const { return queue_.size() == 0; }
  int64_t events_processed() const { return events_processed_; }

  /// Forks a deterministic RNG stream for an entity.
  Rng ForkRng(uint64_t stream_id) const { return root_rng_.Fork(stream_id); }

  /// Event pool / calendar counters for bench/sim_core and tests.
  EventPoolStats pool_stats() const { return queue_.stats(); }

 private:
  EventId ScheduleImpl(SimTime when, EventCallback callback);

  /// Fires the next live event if its time is <= `limit`, freeing lazily
  /// cancelled events encountered at the head along the way. Returns false
  /// when the queue is empty or the head lies beyond `limit` (the time bound
  /// is checked before the cancelled flag, matching the seed's RunUntil).
  /// This is the single copy of the skip logic Step and RunUntil share.
  bool FireNext(SimTime limit);

  uint64_t seed_;
  Rng root_rng_;
  SimTime now_ = 0;
  int64_t events_processed_ = 0;
  CalendarEventQueue queue_;
};

}  // namespace skyrise::sim
