#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/macros.h"
#include "common/random.h"
#include "common/units.h"

/// \file environment.h
/// Discrete-event simulation kernel. All serverless services (network, FaaS
/// platform, storage) schedule their state transitions on one shared
/// `SimEnvironment`, which owns the virtual clock and the event queue.
///
/// Determinism: ties in event time are broken by insertion sequence number,
/// and randomness comes from per-entity `Rng` streams forked off the
/// environment seed, so a run is a pure function of (seed, configuration).

namespace skyrise::sim {

using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

class SimEnvironment {
 public:
  explicit SimEnvironment(uint64_t seed = 42);
  SKYRISE_DISALLOW_COPY_AND_ASSIGN(SimEnvironment);

  SimTime now() const { return now_; }
  uint64_t seed() const { return seed_; }

  /// Schedules `fn` to run `delay` microseconds from now. Returns an id that
  /// can be passed to Cancel().
  EventId Schedule(SimDuration delay, std::function<void()> fn);

  /// Schedules at an absolute virtual time (>= now).
  EventId ScheduleAt(SimTime when, std::function<void()> fn);

  /// Cancels a pending event; no-op if it already fired or was cancelled.
  void Cancel(EventId id);

  /// Runs until the event queue drains. Returns the final virtual time.
  SimTime Run();

  /// Runs all events with time <= `until`, then sets now to `until`.
  void RunUntil(SimTime until);

  /// Executes the single next event. Returns false when the queue is empty.
  bool Step();

  bool empty() const { return pending_count_ == 0; }
  int64_t events_processed() const { return events_processed_; }

  /// Forks a deterministic RNG stream for an entity.
  Rng ForkRng(uint64_t stream_id) const { return root_rng_.Fork(stream_id); }

 private:
  struct Event {
    SimTime time;
    uint64_t sequence;
    EventId id;
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return sequence > other.sequence;
    }
  };

  uint64_t seed_;
  Rng root_rng_;
  SimTime now_ = 0;
  uint64_t next_sequence_ = 1;
  EventId next_id_ = 1;
  int64_t events_processed_ = 0;
  int64_t pending_count_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  // Membership-test only (never iterated), so hash order cannot leak.
  std::unordered_set<EventId> cancelled_;
};

}  // namespace skyrise::sim
