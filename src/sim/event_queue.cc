#include "sim/event_queue.h"

#include <algorithm>
#include <limits>

namespace skyrise::sim {

CalendarEventQueue::CalendarEventQueue() {
  buckets_.assign(size_t{kMinBuckets}, kNil);
  tails_.assign(size_t{kMinBuckets}, kNil);
  bucket_mask_ = size_t{kMinBuckets} - 1;
  width_ = 1;
  SetCursor(0);
}

void CalendarEventQueue::SetCursor(SimTime time) {
  const SimTime bucket_index = time / width_;
  cur_bucket_ = static_cast<size_t>(bucket_index) & bucket_mask_;
  bucket_top_ = bucket_index * width_ + width_;
}

uint32_t CalendarEventQueue::AllocSlot() {
  if (free_head_ != kNil) {
    const uint32_t index = free_head_;
    free_head_ = slots_[index].next;
    return index;
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void CalendarEventQueue::FreeSlot(uint32_t index) {
  Slot& slot = slots_[index];
  slot.callback.Reset();
  slot.queued = false;
  slot.cancelled = false;
  slot.in_overflow = false;
  // Invalidates every outstanding id for this slot, so a stale Cancel (after
  // fire, after drop, or from a previous occupant) is a no-op by construction.
  ++slot.generation;
  slot.next = free_head_;
  free_head_ = index;
}

EventId CalendarEventQueue::Push(SimTime time, EventCallback callback) {
  const uint32_t index = AllocSlot();
  Slot& slot = slots_[index];
  slot.time = time;
  slot.sequence = next_sequence_++;
  if (callback && !callback.is_inline()) ++stats_.heap_callbacks;
  slot.callback = std::move(callback);
  slot.queued = true;
  slot.cancelled = false;
  InsertIntoCalendar(index);
  ++count_;
  ++stats_.scheduled;
  MaybeGrow();
  return (static_cast<EventId>(slots_[index].generation) << 32) |
         (static_cast<EventId>(index) + 1);
}

bool CalendarEventQueue::Cancel(EventId id) {
  if (id == kInvalidEventId) return false;
  const uint64_t index_part = id & 0xffffffffull;
  if (index_part == 0 || index_part > slots_.size()) return false;
  const uint32_t index = static_cast<uint32_t>(index_part - 1);
  const uint32_t generation = static_cast<uint32_t>(id >> 32);
  Slot& slot = slots_[index];
  if (!slot.queued || slot.generation != generation || slot.cancelled) {
    return false;
  }
  slot.cancelled = true;
  if (slot.in_overflow) {
    ++overflow_dead_;
    // Long-horizon events are usually timeouts that get cancelled long
    // before they fire; once the dead outnumber the live, one linear filter
    // pass reclaims them (amortized O(1) per cancel, since each pass frees
    // at least half the list).
    if (overflow_dead_ >= 64 && overflow_dead_ * 2 >= overflow_.size()) {
      PurgeOverflow();
    }
  }
  return true;
}

void CalendarEventQueue::PurgeOverflow() {
  size_t kept = 0;
  for (const uint32_t index : overflow_) {
    if (slots_[index].cancelled) {
      FreeSlot(index);
      --count_;
      ++stats_.cancelled_dropped;
    } else {
      overflow_[kept++] = index;
    }
  }
  overflow_.resize(kept);
  overflow_dead_ = 0;
}

bool CalendarEventQueue::PeekNext(SimTime* time, bool* cancelled) {
  const uint32_t index = FindMin();
  if (index == kNil) return false;
  *time = slots_[index].time;
  *cancelled = slots_[index].cancelled;
  return true;
}

void CalendarEventQueue::DropNext() {
  const uint32_t index = UnlinkMin();
  SKYRISE_CHECK(index != kNil);
  FreeSlot(index);
  ++stats_.cancelled_dropped;
  MaybeShrink();
}

EventCallback CalendarEventQueue::PopNext(SimTime* time) {
  const uint32_t index = UnlinkMin();
  SKYRISE_CHECK(index != kNil);
  *time = slots_[index].time;
  // Move the callback out and recycle the slot *before* the caller invokes
  // it: the callback may schedule (growing the pool) or cancel reentrantly.
  EventCallback callback = std::move(slots_[index].callback);
  FreeSlot(index);
  ++stats_.fired;
  MaybeShrink();
  return callback;
}

uint32_t CalendarEventQueue::FindMin() {
  if (count_ == 0) return kNil;
  if (calendar_count_ == 0) {
    // The calendar year drained but long-horizon events remain in overflow:
    // rebuild the calendar around them. (Every calendar event precedes every
    // overflow event, so the minimum was never in overflow until now.)
    Resize();
    if (calendar_count_ == 0) return kNil;  // Everything was cancelled.
  }
  size_t bucket = cur_bucket_;
  SimTime top = bucket_top_;
  const size_t nbuckets = bucket_mask_ + 1;
  for (size_t i = 0; i < nbuckets; ++i) {
    const uint32_t head = buckets_[bucket];
    if (head != kNil && slots_[head].time < top) {
      // Within the window [top - width_, top): the earliest remaining event.
      // (No event earlier than the sweep start can exist — inserts rewind
      // the cursor — and equal times always share a bucket, so the chain's
      // sequence order settles ties.)
      cur_bucket_ = bucket;
      bucket_top_ = top;
      return head;
    }
    bucket = (bucket + 1) & bucket_mask_;
    top += width_;
  }
  // A full sweep of bucket windows came up empty: the next event lies at
  // least one calendar "year" ahead. Direct-search the chain heads for the
  // global minimum and jump the cursor there.
  uint32_t best = kNil;
  for (size_t i = 0; i < nbuckets; ++i) {
    const uint32_t head = buckets_[i];
    if (head == kNil) continue;
    if (best == kNil || slots_[head].time < slots_[best].time ||
        (slots_[head].time == slots_[best].time &&
         slots_[head].sequence < slots_[best].sequence)) {
      best = head;
    }
  }
  SetCursor(slots_[best].time);
  return best;
}

uint32_t CalendarEventQueue::UnlinkMin() {
  const uint32_t index = FindMin();
  if (index == kNil) return kNil;
  Slot& slot = slots_[index];
  buckets_[cur_bucket_] = slot.next;
  if (slot.next == kNil) tails_[cur_bucket_] = kNil;
  slot.next = kNil;
  slot.queued = false;
  --count_;
  --calendar_count_;
  return index;
}

void CalendarEventQueue::InsertIntoCalendar(uint32_t index) {
  Slot& slot = slots_[index];
  if (slot.time >= year_limit_) {
    // Beyond the current calendar year: park in the overflow list instead of
    // wrapping around the bucket array, where a far-future event stuck in a
    // near-term chain would turn every tail append into a sorted walk.
    slot.in_overflow = true;
    overflow_.push_back(index);
    return;
  }
  slot.in_overflow = false;
  ++calendar_count_;
  if (slot.time < bucket_top_ - width_) {
    // Earlier than the cursor window (e.g. first insert after the calendar
    // drained far in the future): rewind so FindMin's sweep cannot miss it.
    SetCursor(slot.time);
  }
  const size_t bucket = static_cast<size_t>(slot.time / width_) & bucket_mask_;
  const uint32_t head = buckets_[bucket];
  if (head == kNil) {
    buckets_[bucket] = index;
    tails_[bucket] = index;
    slot.next = kNil;
    return;
  }
  const uint32_t tail = tails_[bucket];
  if (slots_[tail].time <= slot.time) {
    // Common case: the newest event sorts after the whole chain (sequence
    // numbers are monotone, so equal times append too).
    slots_[tail].next = index;
    tails_[bucket] = index;
    slot.next = kNil;
    return;
  }
  if (slots_[head].time > slot.time) {
    slot.next = head;
    buckets_[bucket] = index;
    return;
  }
  uint32_t prev = head;
  while (slots_[prev].next != kNil &&
         slots_[slots_[prev].next].time <= slot.time) {
    prev = slots_[prev].next;
  }
  slot.next = slots_[prev].next;
  slots_[prev].next = index;
}

void CalendarEventQueue::MaybeGrow() {
  // Grow on calendar residency (chains getting long), shrink on the total
  // population (array oversized). Resize sizes the array from the live total,
  // so neither condition can hold immediately after it — no thrash.
  const size_t nbuckets = bucket_mask_ + 1;
  if (calendar_count_ > 2 * nbuckets) Resize();
}

void CalendarEventQueue::MaybeShrink() {
  const size_t nbuckets = bucket_mask_ + 1;
  if (nbuckets > size_t{kMinBuckets} && count_ < nbuckets / 8) Resize();
}

void CalendarEventQueue::Resize() {
  // skyrise-check: allow(sim-hot-path) — a rebuild runs once per O(nbuckets) events.
  std::vector<uint32_t> queued;
  queued.reserve(count_);
  for (size_t b = 0; b < buckets_.size(); ++b) {
    uint32_t i = buckets_[b];
    while (i != kNil) {
      const uint32_t next = slots_[i].next;
      if (slots_[i].cancelled) {
        // Compact cancelled events out instead of re-sorting and re-homing
        // dead weight on every resize: cancel-heavy workloads (timeouts that
        // almost always get cancelled) would otherwise keep the population —
        // and the bucket array sized from it — growing without bound.
        slots_[i].next = kNil;
        FreeSlot(i);
        --count_;
        ++stats_.cancelled_dropped;
      } else {
        queued.push_back(i);
      }
      i = next;
    }
  }
  for (const uint32_t i : overflow_) {
    if (slots_[i].cancelled) {
      FreeSlot(i);
      --count_;
      ++stats_.cancelled_dropped;
    } else {
      queued.push_back(i);
    }
  }
  overflow_.clear();
  overflow_dead_ = 0;
  calendar_count_ = 0;
  std::sort(queued.begin(), queued.end(), [this](uint32_t a, uint32_t b) {
    if (slots_[a].time != slots_[b].time) {
      return slots_[a].time < slots_[b].time;
    }
    return slots_[a].sequence < slots_[b].sequence;
  });
  // Size the bucket array from the live population (post-purge): smallest
  // power of two holding it, so grow/shrink thresholds cannot thrash.
  size_t new_bucket_count = size_t{kMinBuckets};
  while (new_bucket_count < queued.size()) new_bucket_count *= 2;
  // Width from the *median* inter-event gap of the head half of the sorted
  // population, not the global span: real populations are skewed (dense near
  // now, sparse timeout tail), and any mean-based width lets a few far-future
  // outliers stretch buckets until the dense head piles into long chains.
  // The median ignores outliers entirely; far-future events simply wrap
  // around the bucket array, which FindMin's windowed sweep handles.
  SimTime new_width = 1;
  SimTime min_time = 0;
  if (!queued.empty()) {
    min_time = slots_[queued.front()].time;
    const size_t head = std::max<size_t>(queued.size() / 2, 2);
    // skyrise-check: allow(sim-hot-path) — amortized with the rebuild itself.
    std::vector<SimTime> gaps;
    gaps.reserve(head);
    for (size_t i = 1; i < head && i < queued.size(); ++i) {
      gaps.push_back(slots_[queued[i]].time - slots_[queued[i - 1]].time);
    }
    if (!gaps.empty()) {
      std::nth_element(gaps.begin(), gaps.begin() + gaps.size() / 2,
                       gaps.end());
      new_width = std::max<SimTime>(1, 2 * gaps[gaps.size() / 2]);
    }
  }
  buckets_.assign(new_bucket_count, kNil);
  tails_.assign(new_bucket_count, kNil);
  bucket_mask_ = new_bucket_count - 1;
  width_ = new_width;
  // One calendar year spans the bucket array exactly once; anything past it
  // re-enters the overflow list during reinsertion below.
  const SimTime span_max = std::numeric_limits<SimTime>::max() - min_time;
  if (new_width > span_max / static_cast<SimTime>(new_bucket_count)) {
    year_limit_ = std::numeric_limits<SimTime>::max();
  } else {
    year_limit_ = min_time + new_width * static_cast<SimTime>(new_bucket_count);
  }
  SetCursor(min_time);
  for (uint32_t index : queued) {
    // Sorted reinsertion: every calendar insert lands as an O(1) tail append.
    InsertIntoCalendar(index);
  }
  ++stats_.calendar_resizes;
}

EventPoolStats CalendarEventQueue::stats() const {
  EventPoolStats snapshot = stats_;
  snapshot.pool_capacity = slots_.size();
  snapshot.queued = count_;
  snapshot.bucket_count = bucket_mask_ + 1;
  uint64_t free_count = 0;
  for (uint32_t i = free_head_; i != kNil; i = slots_[i].next) ++free_count;
  snapshot.free_slots = free_count;
  return snapshot;
}

}  // namespace skyrise::sim
