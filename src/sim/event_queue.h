#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/units.h"

/// \file event_queue.h
/// Storage layer of the DES kernel: pooled event slots with small-buffer
/// callback storage and a bucketed calendar queue (Brown 1988) replacing the
/// seed binary heap + tombstone set.
///
/// Determinism contract: events pop in ascending (time, sequence) order — the
/// exact total order the seed `std::priority_queue` used — so any run driven
/// through this queue is bit-identical to a heap-driven run.
///
/// Memory model:
///   - Events live in a slot pool (`slots_`) addressed by index; a free list
///     threads through the same `next` field used for bucket chains. The pool
///     only grows (doubling); capacity is retained for the lifetime of the
///     queue so steady-state scheduling performs zero allocations.
///   - `EventId` packs (generation << 32 | slot_index + 1). Freeing a slot
///     bumps its generation, so a stale id — cancel-after-fire, double
///     cancel, an id from a previous occupant — never matches and Cancel is
///     an O(1) no-op. `kInvalidEventId == 0` is preserved because the index
///     half is offset by one.
///   - Cancellation is lazy: the slot is flagged and the event is dropped
///     (slot freed) when it surfaces at the head of the queue, mirroring the
///     seed's tombstone-at-pop semantics without the unbounded tombstone set.

// skyrise-domain(sim-kernel)
namespace skyrise::sim {

using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

/// Move-only callable with a 48-byte inline buffer. Typical sim callbacks
/// capture a `this` pointer plus a few ints and fit inline; larger captures
/// spill to the heap (counted, see EventPoolStats::heap_callbacks) instead of
/// unconditionally heap-allocating like libstdc++'s std::function does for
/// captures past 16 bytes.
class EventCallback {
 public:
  enum : size_t { kInlineSize = 48 };

  EventCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback>>>
  EventCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= size_t{kInlineSize} &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      inline_ = true;
      invoke_ = &InlineInvoke<Fn>;
      manage_ = &InlineManage<Fn>;
    } else {
      heap_ = new Fn(std::forward<F>(fn));
      inline_ = false;
      invoke_ = &HeapInvoke<Fn>;
      manage_ = &HeapManage<Fn>;
    }
  }

  EventCallback(EventCallback&& other) noexcept { MoveFrom(&other); }
  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(&other);
    }
    return *this;
  }
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;
  ~EventCallback() { Reset(); }

  void operator()() { invoke_(this); }

  explicit operator bool() const { return invoke_ != nullptr; }

  /// True when the callable lives in the inline buffer (no heap allocation).
  bool is_inline() const { return invoke_ != nullptr && inline_; }

  void Reset() {
    if (invoke_ != nullptr) {
      manage_(this, nullptr);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

 private:
  using InvokeFn = void (*)(EventCallback*);
  /// Moves `src` into `dst` when src != nullptr, else destroys dst's callable.
  using ManageFn = void (*)(EventCallback* dst, EventCallback* src);

  template <typename Fn>
  static void InlineInvoke(EventCallback* self) {
    (*std::launder(reinterpret_cast<Fn*>(self->storage_)))();
  }
  template <typename Fn>
  static void InlineManage(EventCallback* dst, EventCallback* src) {
    if (src != nullptr) {
      Fn* from = std::launder(reinterpret_cast<Fn*>(src->storage_));
      ::new (static_cast<void*>(dst->storage_)) Fn(std::move(*from));
      from->~Fn();
    } else {
      std::launder(reinterpret_cast<Fn*>(dst->storage_))->~Fn();
    }
  }
  template <typename Fn>
  static void HeapInvoke(EventCallback* self) {
    (*static_cast<Fn*>(self->heap_))();
  }
  template <typename Fn>
  static void HeapManage(EventCallback* dst, EventCallback* src) {
    if (src != nullptr) {
      dst->heap_ = src->heap_;
      src->heap_ = nullptr;
    } else {
      delete static_cast<Fn*>(dst->heap_);
      dst->heap_ = nullptr;
    }
  }

  void MoveFrom(EventCallback* other) {
    if (other->invoke_ == nullptr) return;
    invoke_ = other->invoke_;
    manage_ = other->manage_;
    inline_ = other->inline_;
    manage_(this, other);
    other->invoke_ = nullptr;
    other->manage_ = nullptr;
  }

  union {
    alignas(std::max_align_t) unsigned char storage_[kInlineSize];
    void* heap_;
  };
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
  bool inline_ = false;
};

/// Counters exposed for bench/sim_core and the pool-lifetime tests. All are
/// cumulative except pool_capacity / free_slots / queued / bucket_count,
/// which snapshot current state.
struct EventPoolStats {
  uint64_t scheduled = 0;        ///< Total events ever scheduled.
  uint64_t fired = 0;            ///< Events whose callback ran.
  uint64_t cancelled_dropped = 0;  ///< Cancelled events freed at pop.
  uint64_t heap_callbacks = 0;   ///< Callbacks that spilled past the inline buffer.
  uint64_t pool_capacity = 0;    ///< Slots allocated (high-water mark).
  uint64_t free_slots = 0;       ///< Slots currently on the free list.
  uint64_t queued = 0;           ///< Events currently queued (incl. lazily cancelled).
  uint64_t bucket_count = 0;     ///< Current calendar bucket array size.
  uint64_t calendar_resizes = 0;  ///< Calendar rebuilds (grow + shrink).
};

/// Bucketed calendar queue over the slot pool. Buckets are sorted singly
/// linked chains (ascending time, sequence) with tail pointers so the common
/// schedule-into-the-future case is an O(1) append. A cursor
/// (`cur_bucket_`, `bucket_top_`) tracks the bucket window
/// [bucket_top_ - width_, bucket_top_) containing the virtual clock; pops
/// advance it, inserts earlier than the window rewind it.
///
/// Events beyond the calendar's current year (`year_limit_`) — typically
/// long-horizon timeouts — live in an unsorted overflow list instead of
/// wrapping around the bucket array, which would interleave them with
/// near-term chains and defeat the tail-append fast path. The overflow is
/// redistributed when the calendar drains, and cancelled overflow entries
/// are purged by a cheap in-place filter once they outnumber the live ones
/// (long-horizon timeouts are almost always cancelled before they fire).
class CalendarEventQueue {
 public:
  CalendarEventQueue();
  SKYRISE_DISALLOW_COPY_AND_ASSIGN(CalendarEventQueue);

  /// Allocates a slot, stores the callback, and inserts into the calendar.
  EventId Push(SimTime time, EventCallback callback);

  /// O(1) lazy cancel. No-op (returns false) when the id is stale: already
  /// fired, already cancelled and dropped, or never issued.
  bool Cancel(EventId id);

  /// Non-destructive peek at the head event (which may be cancelled).
  /// Returns false when the queue is empty.
  bool PeekNext(SimTime* time, bool* cancelled);

  /// Frees the head event without running it (it was cancelled). Must follow
  /// a successful PeekNext.
  void DropNext();

  /// Unlinks the head event, frees its slot, and returns its callback. Must
  /// follow a successful PeekNext. The slot is recycled *before* the caller
  /// invokes the callback, so callbacks may freely schedule (and grow the
  /// pool) or cancel.
  EventCallback PopNext(SimTime* time);

  /// Events currently queued, including lazily cancelled ones that have not
  /// yet surfaced — mirrors the seed's pending count semantics.
  uint64_t size() const { return count_; }

  /// Snapshot of the cumulative counters plus current pool/calendar state.
  EventPoolStats stats() const;

 private:
  enum : uint32_t { kNil = 0xffffffffu };
  enum : size_t { kMinBuckets = 8 };

  struct Slot {
    SimTime time = 0;
    uint64_t sequence = 0;
    uint32_t generation = 0;
    bool queued = false;
    bool cancelled = false;
    bool in_overflow = false;  ///< Lives in overflow_, not a bucket chain.
    uint32_t next = kNil;      ///< Bucket chain link, or free-list link.
    EventCallback callback;
  };

  uint32_t AllocSlot();
  void FreeSlot(uint32_t index);
  void InsertIntoCalendar(uint32_t index);
  /// Positions the cursor on the bucket holding the global (time, sequence)
  /// minimum and returns its slot index, or kNil when empty.
  uint32_t FindMin();
  /// Unlinks the head of the current bucket (must be the FindMin result).
  uint32_t UnlinkMin();
  void SetCursor(SimTime time);
  void Resize();
  void MaybeGrow();
  void MaybeShrink();
  void PurgeOverflow();

  std::vector<Slot> slots_;
  uint32_t free_head_ = kNil;
  uint64_t next_sequence_ = 1;

  std::vector<uint32_t> buckets_;  ///< Chain heads, one per bucket.
  std::vector<uint32_t> tails_;    ///< Chain tails for O(1) future-append.
  size_t bucket_mask_ = 0;
  SimTime width_ = 1;
  size_t cur_bucket_ = 0;
  SimTime bucket_top_ = 1;
  uint64_t count_ = 0;           ///< All queued events (calendar + overflow).
  uint64_t calendar_count_ = 0;  ///< Events resident in bucket chains.

  std::vector<uint32_t> overflow_;  ///< Events at/beyond year_limit_.
  uint64_t overflow_dead_ = 0;      ///< Cancelled events still in overflow_.
  SimTime year_limit_ = kMinBuckets;  ///< First time outside the calendar.

  EventPoolStats stats_;
};

}  // namespace skyrise::sim
