#include "cfg.h"

#include <set>

namespace skyrise::check {
namespace {

constexpr size_t kNone = FunctionScope::kNone;

bool IsSpecifier(const Token& t) {
  static const std::set<std::string> kSpecifiers = {
      "const", "noexcept", "override", "final", "mutable", "&", "&&"};
  return kSpecifiers.count(t.text) > 0;
}

bool IsControlKeyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch";
}

/// True when the `[` at `open` introduces a lambda rather than a subscript:
/// subscripts follow a value (identifier, `)`, `]`, or a closing template
/// `>`); lambda introducers follow operators, `(`, `,`, `=`, `return`, ...
bool IsLambdaIntro(const std::vector<Token>& toks, size_t open) {
  if (open == 0) return true;
  const Token& prev = toks[open - 1];
  if (prev.IsIdent()) {
    // `return [..]` / `co_return [..]` still introduce lambdas.
    return prev.Is("return") || prev.Is("co_return");
  }
  return !(prev.Is(")") || prev.Is("]") || prev.Is(">"));
}

/// Walks backward from the token before a `{`, skipping trailing-return
/// types and function specifiers, to find the `)` closing the parameter
/// list. Returns kNone when the brace cannot be a function body.
size_t FindParamClose(const std::vector<Token>& toks,
                      const BracketMap& brackets, size_t brace) {
  size_t j = brace;
  int guard = 0;
  while (j > 0 && ++guard < 64) {
    --j;
    const Token& t = toks[j];
    if (IsSpecifier(t)) continue;
    if (t.Is(")")) {
      const size_t open = brackets.MatchOf(j);
      if (open == kNone || open == 0) return kNone;
      if (toks[open - 1].Is("noexcept")) {
        j = open - 1;  // noexcept(expr) — keep walking.
        continue;
      }
      return j;
    }
    if (t.Is("]")) {
      // Lambda with no parameter list: `[...] {`.
      const size_t open = brackets.MatchOf(j);
      if (open != kNone && IsLambdaIntro(toks, open)) return j;
      return kNone;
    }
    // Trailing return type `-> Type` between the params and the body: scan
    // back for the `->`, bounded by statement punctuation.
    if (t.IsIdent() || t.Is(">") || t.Is("<") || t.Is("::") || t.Is("*")) {
      size_t k = j;
      int inner = 0;
      while (k > 0 && ++inner < 48) {
        --k;
        const std::string& s = toks[k].text;
        if (s == "->") {
          j = k;  // Loop continues from before the arrow.
          break;
        }
        if (s == ";" || s == "{" || s == "}" || s == "(" || s == ")") {
          return kNone;
        }
      }
      if (j == k) continue;
      return kNone;
    }
    return kNone;
  }
  return kNone;
}

}  // namespace

std::vector<FunctionScope> ExtractFunctions(const std::vector<Token>& toks,
                                            const BracketMap& brackets) {
  std::vector<FunctionScope> scopes;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].Is("{") || brackets.MatchOf(i) == kNone) continue;
    if (i == 0) continue;
    const size_t close = FindParamClose(toks, brackets, i);
    if (close == kNone) continue;

    FunctionScope scope;
    scope.line = toks[i].line;
    scope.body_begin = i;
    scope.body_end = brackets.MatchOf(i);
    scope.params_begin = kNone;
    scope.params_end = kNone;
    scope.capture_begin = kNone;
    scope.capture_end = kNone;

    if (toks[close].Is("]")) {
      // Lambda without parameter list.
      scope.is_lambda = true;
      scope.capture_end = close;
      scope.capture_begin = brackets.MatchOf(close);
      scopes.push_back(scope);
      continue;
    }
    const size_t open = brackets.MatchOf(close);
    if (open == kNone || open == 0) continue;
    scope.params_begin = open;
    scope.params_end = close;
    const Token& before = toks[open - 1];
    if (before.Is("]")) {
      const size_t cap = brackets.MatchOf(open - 1);
      if (cap == kNone || !IsLambdaIntro(toks, cap)) continue;
      scope.is_lambda = true;
      scope.capture_begin = cap;
      scope.capture_end = open - 1;
      scopes.push_back(scope);
      continue;
    }
    if (before.IsIdent()) {
      if (IsControlKeyword(before.text)) continue;
      scope.name = before.text;
      scopes.push_back(scope);
      continue;
    }
    // Operator overloads: `operator<symbol>(params)` / `operator()(params)`.
    for (size_t back = 1; back <= 3 && open >= 1 + back; ++back) {
      if (toks[open - 1 - back].Is("operator")) {
        scope.name = "operator";
        scopes.push_back(scope);
        break;
      }
    }
  }
  return scopes;
}

namespace {

/// Advances from `i` to the next token matching `text` at bracket depth 0,
/// jumping over balanced groups. Returns `end` when not found.
size_t ScanTo(const std::vector<Token>& toks, const BracketMap& brackets,
              size_t i, size_t end, const char* text) {
  while (i < end) {
    const std::string& t = toks[i].text;
    if (t == text) return i;
    if (t == "(" || t == "[" || t == "{") {
      const size_t m = brackets.MatchOf(i);
      if (m == kNone || m <= i || m >= end) return end;
      i = m + 1;
      continue;
    }
    ++i;
  }
  return end;
}

class Parser {
 public:
  Parser(const std::vector<Token>& toks, const BracketMap& brackets)
      : toks_(toks), brackets_(brackets) {}

  /// Parses statements in [begin, end) into `out`.
  void ParseList(size_t begin, size_t end, std::vector<Stmt>* out) {
    size_t i = begin;
    int guard = 0;
    while (i < end && ++guard < (1 << 20)) {
      // Skip case/default labels so the statements after them parse.
      if (toks_[i].Is("case")) {
        const size_t colon = ScanTo(toks_, brackets_, i + 1, end, ":");
        i = colon < end ? colon + 1 : end;
        continue;
      }
      if (toks_[i].Is("default") && i + 1 < end && toks_[i + 1].Is(":")) {
        i += 2;
        continue;
      }
      if (toks_[i].Is(";")) {
        ++i;
        continue;
      }
      Stmt stmt;
      i = ParseOne(i, end, &stmt);
      out->push_back(std::move(stmt));
    }
  }

  /// Parses one statement starting at `i`; returns the index just past it.
  size_t ParseOne(size_t i, size_t end, Stmt* stmt) {
    stmt->begin = i;
    const std::string& t = toks_[i].text;
    if (t == "{") {
      const size_t m = brackets_.MatchOf(i);
      if (m == kNone || m >= end) return Simple(i, end, stmt);
      stmt->kind = Stmt::Kind::kBlock;
      stmt->end = m;
      ParseList(i + 1, m, &stmt->sub);
      return m + 1;
    }
    if (t == "if") return ParseIf(i, end, stmt);
    if (t == "while" || t == "for") return ParseLoop(i, end, stmt);
    if (t == "do") return ParseDo(i, end, stmt);
    if (t == "switch") return ParseSwitch(i, end, stmt);
    if (t == "try") return ParseTry(i, end, stmt);
    if (t == "return" || t == "co_return") {
      stmt->kind = Stmt::Kind::kReturn;
      const size_t semi = ScanTo(toks_, brackets_, i, end, ";");
      stmt->end = semi < end ? semi : end - 1;
      return stmt->end + 1;
    }
    if (t == "break" || t == "continue") {
      stmt->kind = t == "break" ? Stmt::Kind::kBreak : Stmt::Kind::kContinue;
      const size_t semi = ScanTo(toks_, brackets_, i, end, ";");
      stmt->end = semi < end ? semi : end - 1;
      return stmt->end + 1;
    }
    return Simple(i, end, stmt);
  }

 private:
  size_t Simple(size_t i, size_t end, Stmt* stmt) {
    stmt->kind = Stmt::Kind::kSimple;
    const size_t semi = ScanTo(toks_, brackets_, i, end, ";");
    stmt->end = semi < end ? semi : end - 1;
    return stmt->end + 1;
  }

  /// Returns the `(`'s index for a control header at/after `i`, or kNone.
  size_t HeaderOpen(size_t i, size_t end) const {
    for (size_t j = i; j < end && j < i + 3; ++j) {
      if (toks_[j].Is("(")) {
        const size_t m = brackets_.MatchOf(j);
        if (m != kNone && m < end) return j;
        return kNone;
      }
    }
    return kNone;
  }

  size_t ParseIf(size_t i, size_t end, Stmt* stmt) {
    stmt->kind = Stmt::Kind::kIf;
    const size_t open = HeaderOpen(i + 1, end);  // Skips `constexpr`.
    if (open == kNone) return Simple(i, end, stmt);
    const size_t close = brackets_.MatchOf(open);
    stmt->cond_begin = open + 1;
    stmt->cond_end = close > open ? close - 1 : open;
    Stmt then_stmt;
    size_t next = ParseOne(close + 1, end, &then_stmt);
    stmt->sub.push_back(std::move(then_stmt));
    if (next < end && toks_[next].Is("else")) {
      Stmt else_stmt;
      next = ParseOne(next + 1, end, &else_stmt);
      stmt->sub.push_back(std::move(else_stmt));
    }
    stmt->end = next > i ? next - 1 : i;
    return next;
  }

  size_t ParseLoop(size_t i, size_t end, Stmt* stmt) {
    stmt->kind = Stmt::Kind::kLoop;
    const size_t open = HeaderOpen(i + 1, end);
    if (open == kNone) return Simple(i, end, stmt);
    const size_t close = brackets_.MatchOf(open);
    stmt->cond_begin = open + 1;
    stmt->cond_end = close > open ? close - 1 : open;
    if (toks_[i].Is("for")) {
      const size_t semi =
          ScanTo(toks_, brackets_, stmt->cond_begin, close, ";");
      stmt->range_for = semi >= close;
    }
    Stmt body;
    const size_t next = ParseOne(close + 1, end, &body);
    stmt->sub.push_back(std::move(body));
    stmt->end = next > i ? next - 1 : i;
    return next;
  }

  size_t ParseDo(size_t i, size_t end, Stmt* stmt) {
    stmt->kind = Stmt::Kind::kDo;
    Stmt body;
    size_t next = ParseOne(i + 1, end, &body);
    stmt->sub.push_back(std::move(body));
    if (next < end && toks_[next].Is("while")) {
      const size_t open = HeaderOpen(next + 1, end);
      if (open != kNone) {
        const size_t close = brackets_.MatchOf(open);
        stmt->cond_begin = open + 1;
        stmt->cond_end = close > open ? close - 1 : open;
        next = close + 1;
        if (next < end && toks_[next].Is(";")) ++next;
      }
    }
    stmt->end = next > i ? next - 1 : i;
    return next;
  }

  size_t ParseSwitch(size_t i, size_t end, Stmt* stmt) {
    stmt->kind = Stmt::Kind::kSwitch;
    const size_t open = HeaderOpen(i + 1, end);
    if (open == kNone) return Simple(i, end, stmt);
    const size_t close = brackets_.MatchOf(open);
    stmt->cond_begin = open + 1;
    stmt->cond_end = close > open ? close - 1 : open;
    Stmt body;
    const size_t next = ParseOne(close + 1, end, &body);
    stmt->sub.push_back(std::move(body));
    stmt->end = next > i ? next - 1 : i;
    return next;
  }

  size_t ParseTry(size_t i, size_t end, Stmt* stmt) {
    stmt->kind = Stmt::Kind::kTry;
    Stmt body;
    size_t next = ParseOne(i + 1, end, &body);
    stmt->sub.push_back(std::move(body));
    while (next < end && toks_[next].Is("catch")) {
      const size_t open = HeaderOpen(next + 1, end);
      if (open == kNone) break;
      const size_t close = brackets_.MatchOf(open);
      Stmt handler;
      next = ParseOne(close + 1, end, &handler);
      stmt->sub.push_back(std::move(handler));
    }
    stmt->end = next > i ? next - 1 : i;
    return next;
  }

  const std::vector<Token>& toks_;
  const BracketMap& brackets_;
};

}  // namespace

Stmt ParseFunctionBody(const std::vector<Token>& toks,
                       const BracketMap& brackets, size_t body_begin,
                       size_t body_end) {
  Stmt root;
  root.kind = Stmt::Kind::kBlock;
  root.begin = body_begin;
  root.end = body_end;
  if (body_begin < body_end && body_end <= toks.size()) {
    Parser parser(toks, brackets);
    parser.ParseList(body_begin + 1, body_end, &root.sub);
  }
  return root;
}

}  // namespace skyrise::check
