#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "cfg.h"
#include "checker.h"
#include "lexer.h"

/// \file symbols.h
/// Cross-TU symbol index for the interprocedural half of skyrise_check.
/// Layered on the existing lexer/CFG: every file added to the index
/// contributes its function (and named-lambda) definitions with best-effort
/// qualified names, the call sites inside each body, the per-function facts
/// the interprocedural rules need (direct banned-API uses, retry-scheduling
/// sites, visible retry bounds, span-returning signatures), and an inventory
/// of every static-storage variable (namespace-scope globals, static locals,
/// static data members) with const-ness recorded.
///
/// Name resolution model (documented best-effort, shared with callgraph.h):
///  - Free functions and methods get `ns::Class::Name` qualified names from
///    the enclosing namespace/class braces plus any explicit `A::B::`
///    qualifiers on an out-of-line definition.
///  - A lambda assigned to a local (`auto f = [...] {...};`) becomes its own
///    symbol named `<enclosing>::f`, with an implicit call edge from the
///    enclosing function (the lambda is assumed invoked by its creator —
///    callbacks run eventually, and for taint purposes creating one is as
///    good as calling it). Anonymous lambdas fold their facts into the
///    enclosing function for the same reason.
///  - Overloads share a name; calls resolve to every same-named definition.
///    This over-approximates edges, which is the conservative direction for
///    taint but can create spurious chains; diagnostics carry the full
///    witness chain so a false edge is visible and suppressible.

namespace skyrise::check {

/// One direct use of a banned nondeterminism API inside a function body.
struct BannedUse {
  std::string api;   ///< Token that matched (e.g. "steady_clock").
  std::string why;   ///< Reason string from the banned-API table.
  int line = 0;
  /// `skyrise-check: allow(banned-api)` covers the use itself; the wrapper
  /// still taints callers unless `allow(transitive-nondeterminism)` also
  /// covers this line (a blessed *source* stops propagation).
  bool sanctioned_source = false;
};

/// One call expression inside a function body.
struct CallSite {
  std::string name;  ///< Possibly qualified callee text, e.g. "sim::Now".
  int line = 0;
  /// Any identifier in the call's argument list (lambdas included) mentions
  /// retry/backoff/attempt — the trigger the retry-wrapper rule keys on.
  bool retry_args = false;
};

/// One function (or named-lambda) definition.
struct FunctionSym {
  std::string qualified;  ///< Best-effort "ns::Class::Name".
  std::string name;       ///< Last segment of `qualified`.
  std::string file;
  int line = 0;
  bool is_lambda = false;
  /// Shard-ownership domain (see domains.h): from the innermost
  /// `skyrise-domain(...)` annotation, else inferred from the namespace.
  std::string domain;
  /// "annotation" | "namespace" | "default" — how `domain` was assigned.
  const char* domain_source = "default";
  /// The definition sits inside a class region (an in-class method).
  bool in_class = false;
  /// Member function declared with a trailing `const` qualifier — a read;
  /// never a cross-domain mutation.
  bool is_const_method = false;
  /// In-class definition led by `static`: no receiver, so calls pass state
  /// explicitly — not a mutation through a retained cross-domain handle.
  bool is_static_method = false;
  /// Definition carries a `skyrise-domain-crossing(<rationale>)` comment:
  /// a declared boundary API. Calls to it are sanctioned crossing edges.
  bool crossing_point = false;
  std::string crossing_rationale;
  /// Declared return type is (obs::)SpanId and the body calls Begin: the
  /// function hands an *open* span to its caller, transferring the End
  /// obligation (span-transfer-leak keys on this).
  bool returns_open_span = false;
  /// Body contains a Schedule(...) call (any arguments) — the function puts
  /// work on the event loop, directly.
  bool calls_scheduler = false;
  /// Body contains a Schedule(...) whose arguments mention retry-ish work
  /// (the intraprocedural unbounded-retry trigger).
  bool direct_retry_schedule = false;
  int retry_line = 0;
  /// Some identifier in the capture list, parameters, or body names a
  /// deadline, a retry budget, or a max-attempts cap — the function's retry
  /// behavior is visibly clamped.
  bool has_bound = false;
  /// Body contains a Begin(...) call; with a SpanId return type this marks
  /// the function a span source (internal input to returns_open_span).
  bool has_begin_call = false;
  std::vector<BannedUse> banned;
  std::vector<CallSite> calls;
};

/// One static-storage variable: a namespace-scope global, a function-local
/// static, or a static data member.
struct StaticVar {
  enum class Storage { kNamespaceScope, kStaticLocal, kStaticMember };
  std::string qualified;  ///< "ns::Class::name" / "ns::Fn::name" for locals.
  std::string file;
  int line = 0;
  Storage storage = Storage::kNamespaceScope;
  bool is_const = false;      ///< const / constexpr / constinit declaration.
  bool thread_local_ = false;
  bool suppressed = false;    ///< allow(shared-mutable-state) on the line.
  std::string type_text;      ///< Declared type, for the inventory.
};

/// One data member of a class that holds a *handle* — a raw pointer, an
/// lvalue reference, or a std::unique_ptr/shared_ptr/weak_ptr — to another
/// class type. Plain value members are not recorded: a copy cannot mutate
/// across a shard boundary, a retained handle can.
struct FieldHandle {
  std::string name;        ///< Member name as declared.
  std::string type_text;   ///< Declared type, for the inventory.
  std::string pointee;     ///< Possibly qualified pointee type name.
  int line = 0;
  bool is_const = false;    ///< const pointee — a read-only handle.
  bool suppressed = false;  ///< allow(domain-escape) on the line.
};

/// One class/struct definition, with its ownership domain and the handle
/// members the escape analysis inspects.
struct ClassSym {
  std::string qualified;  ///< "ns::Outer::Name".
  std::string name;       ///< Last segment.
  std::string file;
  int line = 0;
  std::string domain;
  const char* domain_source = "default";
  std::vector<FieldHandle> handles;
};

const char* StorageName(StaticVar::Storage storage);

/// Returns the reason a token is a banned nondeterminism API, or nullptr.
/// `rand`/`time` are only banned in call position; callers check context.
const char* BannedApiReason(const std::string& token);

/// True for paths the interprocedural rules police: src/ plus bare file
/// names (lint fixtures). Tests, tools, and benches drive simulations by
/// hand and may touch host state freely.
bool SrcScoped(const std::string& path);

class SymbolIndex {
 public:
  /// Indexes one preprocessed file. Never fails; constructs it cannot
  /// classify are skipped (degrading to "unknown", not to false facts).
  void AddFile(const SourceFile& file);

  /// Appends another index's symbols (used by the parallel driver: files are
  /// indexed into per-file indexes concurrently, then merged in file order
  /// so the result is identical to sequential AddFile calls).
  void Merge(SymbolIndex&& other);

  const std::vector<FunctionSym>& functions() const { return functions_; }
  const std::vector<StaticVar>& statics() const { return statics_; }
  const std::vector<ClassSym>& classes() const { return classes_; }

  /// Names (last segment) of functions that return an open span; the
  /// dataflow pass treats calls to these like Tracer::Begin.
  std::set<std::string> SpanSourceNames() const;

 private:
  std::vector<FunctionSym> functions_;
  std::vector<StaticVar> statics_;
  std::vector<ClassSym> classes_;
};

}  // namespace skyrise::check
