#pragma once

#include <set>
#include <string>
#include <vector>

#include "cfg.h"
#include "checker.h"
#include "lexer.h"

/// \file dataflow.h
/// Flow-sensitive rule pass: a symbolic abstract interpreter over the
/// statement tree from cfg.h. Per function (and per lambda — each lambda
/// body is its own scope, with its capture list treated as the boundary to
/// the enclosing scope), the engine tracks a small abstract state per local:
///
///   Result<T> locals/params   checked-ok / checked-err / unknown, driven by
///                             `ok()` / `has_value()` in branch conditions
///                             (polarity-aware, early returns narrow the
///                             fall-through path) and assert-style reads
///   Status/Result locals      consumed-on-this-path (read, returned, passed,
///                             branched on) for status-path-drop
///   data::Chunk/Status/Result moved-from via `std::move(x)`, including
///                             moves in lambda capture initializers
///   obs::SpanId locals        open/closed per path; `End`/`EndWith` close,
///                             guard-correlated conditionals (`if (tracer_)`
///                             around both Begin and End) do not leak
///   collector locals          tainted by appends inside iteration over an
///                             unordered container; `std::sort` cleanses;
///                             ordered collectors (std::map/set) never taint
///
/// Rules emitted here: unchecked-result-access, status-path-drop,
/// use-after-move, span-leak, unordered-taint. Loops run their body to a
/// small fixpoint (the lattice is finite), so facts survive back edges.

namespace skyrise::check {

/// Cross-file name knowledge harvested by Checker::CollectFallibleNames.
struct FlowContext {
  const std::set<std::string>* result_names = nullptr;  ///< return Result<T>
  const std::set<std::string>* status_names = nullptr;  ///< return Status
  const std::set<std::string>* void_names = nullptr;    ///< void overloads
  /// Functions (by last name segment, harvested cross-TU by the symbol
  /// index) that return an *open* span: `SpanId` return type and a Begin()
  /// in the body. Binding one transfers the End obligation to the caller —
  /// a leak there is span-transfer-leak rather than span-leak.
  const std::set<std::string>* span_source_names = nullptr;
};

/// Runs every flow-sensitive rule over one file. Suppressions
/// (`skyrise-check: allow(<rule>)`) are honored via the shared Emit path.
void CheckFlowRules(const SourceFile& file, const FlowContext& ctx,
                    std::vector<Diagnostic>* out);

}  // namespace skyrise::check
