#pragma once

#include <set>
#include <string>
#include <vector>

#include "checker.h"

/// \file baseline.h
/// Ratchet mode: a checked-in baseline of formatted diagnostics lets CI fail
/// only on *new* violations while legacy ones are burned down. The baseline
/// file holds one `FormatDiagnostic` line per accepted finding; blank lines
/// and `#` comments are ignored. The goal state is an empty baseline, which
/// makes `--baseline` equivalent to the strict default.

namespace skyrise::check {

/// Parses baseline `contents` into the set of accepted diagnostic lines.
std::set<std::string> ParseBaseline(const std::string& contents);

/// Reads a baseline file; returns false (and leaves `out` empty) when the
/// file cannot be read.
bool LoadBaselineFile(const std::string& path, std::set<std::string>* out);

/// Diagnostics not covered by the baseline, in input order.
std::vector<Diagnostic> FilterBaseline(const std::vector<Diagnostic>& diags,
                                       const std::set<std::string>& baseline);

/// Serializes diagnostics as a baseline file body (header comment included).
std::string RenderBaseline(const std::vector<Diagnostic>& diags);

}  // namespace skyrise::check
