#pragma once

#include <string>
#include <vector>

#include "checker.h"

/// \file nodiscard.h
/// Interprocedural `[[nodiscard]]` inference plus the `--fix` rewriter.
///
/// Every function that returns `Status` or `Result<T>` hands an error to its
/// caller; the class-level `[[nodiscard]]` on Status/Result already makes
/// discards warn, but the attribute on the *function* keeps the contract
/// visible at the declaration and survives `auto&&` laundering. The
/// missing-nodiscard rule flags Status/Result-returning declarations in src/
/// headers that lack the attribute.
///
/// The same detection drives `skyrise_check --fix`: insertions are computed
/// from token positions, applied bottom-up, and are idempotent (fixing a
/// fixed file changes nothing). Only mechanical rules are fixable:
/// missing-nodiscard (`[[nodiscard]] ` before the declaration) and
/// pragma-once (`#pragma once` as the first line).

namespace skyrise::check {

/// Emits missing-nodiscard diagnostics for `file` (suppression-aware).
/// Scope: headers under src/ (bare-filename headers stay in scope so lint
/// fixtures exercise the rule).
void CheckMissingNodiscard(const SourceFile& file,
                           std::vector<Diagnostic>* out);

/// Applies every mechanical fix to `contents` (the original text of `file`)
/// and returns the rewritten text; returns `contents` unchanged when there is
/// nothing to fix. Suppressed findings are not fixed. Pure function of its
/// inputs so the idempotence property is testable without a filesystem.
std::string ApplyMechanicalFixes(const SourceFile& file,
                                 const std::string& contents);

}  // namespace skyrise::check
