#include "sarif.h"

#include <cstdio>
#include <set>

namespace skyrise::check {
namespace {

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string RenderSarif(const std::vector<Diagnostic>& diags) {
  std::set<std::string> rule_ids;
  for (const Diagnostic& d : diags) rule_ids.insert(d.rule);

  std::string out;
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"skyrise_check\",\n"
      "          \"informationUri\": "
      "\"https://github.com/skyrise-sim/skyrise-sim\",\n"
      "          \"rules\": [\n";
  bool first = true;
  for (const std::string& id : rule_ids) {
    if (!first) out += ",\n";
    first = false;
    out += "            {\"id\": ";
    AppendJsonString(id, &out);
    out += "}";
  }
  if (!first) out += "\n";
  out +=
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  first = true;
  for (const Diagnostic& d : diags) {
    if (!first) out += ",\n";
    first = false;
    out += "        {\n          \"ruleId\": ";
    AppendJsonString(d.rule, &out);
    out += ",\n          \"level\": \"error\",\n          \"message\": {";
    out += "\"text\": ";
    AppendJsonString(d.message, &out);
    out +=
        "},\n          \"locations\": [\n            {\n"
        "              \"physicalLocation\": {\n"
        "                \"artifactLocation\": {\"uri\": ";
    AppendJsonString(d.file, &out);
    out += "},\n                \"region\": {\"startLine\": " +
           std::to_string(d.line > 0 ? d.line : 1) + "}\n";
    out +=
        "              }\n"
        "            }\n"
        "          ]\n"
        "        }";
  }
  if (!first) out += "\n";
  out +=
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace skyrise::check
