#include "symbols.h"

#include <algorithm>
#include <cctype>
#include <tuple>

#include "domains.h"

namespace skyrise::check {
namespace {

constexpr size_t kNone = FunctionScope::kNone;

/// Case-insensitive substring search over identifier text.
bool ContainsCi(const std::string& haystack, const std::string& needle) {
  if (needle.size() > haystack.size()) return false;
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    size_t j = 0;
    while (j < needle.size() &&
           std::tolower(static_cast<unsigned char>(haystack[i + j])) ==
               std::tolower(static_cast<unsigned char>(needle[j]))) {
      ++j;
    }
    if (j == needle.size()) return true;
  }
  return false;
}

bool IsRetryIshIdent(const std::string& s) {
  return ContainsCi(s, "retry") || ContainsCi(s, "backoff") ||
         ContainsCi(s, "attempt");
}

bool IsBoundIdent(const std::string& s) {
  return ContainsCi(s, "budget") || ContainsCi(s, "deadline") ||
         (ContainsCi(s, "max") && ContainsCi(s, "attempt"));
}

/// Identifiers that precede `(` without being callees.
bool IsCallKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",        "for",      "while",    "switch",   "return",
      "co_return", "catch",    "sizeof",   "alignof",  "decltype",
      "noexcept",  "new",      "delete",   "throw",    "case",
      "co_await",  "co_yield", "operator", "alignas",  "typeid",
      "assert",    "defined",  "requires", "static_assert"};
  return kKeywords.count(s) > 0;
}

/// Declaration-statement leads at namespace/class scope that never begin a
/// variable definition we need to inventory.
bool IsDeclKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "using",  "typedef", "extern",    "friend",  "static_assert",
      "template", "public", "private", "protected", "operator"};
  return kKeywords.count(s) > 0;
}

bool IsCvKeyword(const std::string& s) {
  return s == "const" || s == "constexpr" || s == "constinit";
}

/// Token-level template-argument matcher (`>>` closes two), bounded so a
/// stray `<` comparison cannot send the scan far afield.
size_t AngleMatch(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size() && i < open + 256; ++i) {
    const std::string& t = toks[i].text;
    if (t == "<") ++depth;
    if (t == ">") --depth;
    if (t == ">>") depth -= 2;
    if (depth <= 0) return i;
    if (t == ";" || t == "{") break;
  }
  return kNone;
}

struct Region {
  enum class Kind { kNamespace, kClass, kEnum, kFunction, kOther };
  size_t open = 0;
  size_t close = 0;
  Kind kind = Kind::kOther;
  std::string name;   ///< Namespace/class name ("" when anonymous).
  int decl_line = 0;  ///< Line of the `namespace`/`class` keyword (domain
                      ///< annotations attach here, not at the `{`).
};

/// Classifies brace regions in the stream: function bodies (from the scope
/// extractor), namespace bodies, class/struct/union bodies, and enum bodies.
/// Initializer braces and compound statements are deliberately absent — at
/// walk time they inherit the innermost classified region's kind.
std::vector<Region> BuildRegions(const std::vector<Token>& toks,
                                 const BracketMap& brackets,
                                 const std::vector<FunctionScope>& scopes) {
  std::map<size_t, Region> by_open;
  for (const FunctionScope& s : scopes) {
    Region r;
    r.open = s.body_begin;
    r.close = s.body_end;
    r.kind = Region::Kind::kFunction;
    by_open[r.open] = r;
  }
  for (size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "namespace") {
      // `namespace A::B {` / anonymous `namespace {`; aliases (`= other`)
      // and `using namespace` have no brace and are skipped naturally.
      if (i > 0 && toks[i - 1].Is("using")) continue;
      std::string name;
      size_t j = i + 1;
      while (j < toks.size() && (toks[j].IsIdent() || toks[j].Is("::"))) {
        if (toks[j].IsIdent()) {
          if (!name.empty()) name += "::";
          name += toks[j].text;
        }
        ++j;
      }
      if (j < toks.size() && toks[j].Is("{") &&
          brackets.MatchOf(j) != BracketMap::kUnmatched &&
          by_open.count(j) == 0) {
        Region r;
        r.open = j;
        r.close = brackets.MatchOf(j);
        r.kind = Region::Kind::kNamespace;
        r.name = name;
        r.decl_line = toks[i].line;
        by_open[j] = r;
      }
      continue;
    }
    if (t == "class" || t == "struct" || t == "union" || t == "enum") {
      // Skip template parameters (`template <class T>`) and the `class`
      // token of `enum class` (the `enum` token drives that region).
      if (i > 0 && (toks[i - 1].Is("<") || toks[i - 1].Is(",") ||
                    toks[i - 1].Is("enum") || toks[i - 1].Is("typename"))) {
        continue;
      }
      const bool is_enum = t == "enum";
      // Name: first identifier after the keyword, skipping `class`/`struct`
      // of `enum class` and attribute brackets.
      std::string name;
      size_t j = i + 1;
      while (j < toks.size()) {
        if (toks[j].Is("class") || toks[j].Is("struct")) {
          ++j;
          continue;
        }
        if (toks[j].Is("[")) {
          const size_t m = brackets.MatchOf(j);
          if (m == BracketMap::kUnmatched) break;
          j = m + 1;
          continue;
        }
        break;
      }
      if (j < toks.size() && toks[j].IsIdent()) {
        name = toks[j].text;
        ++j;
      }
      // Scan forward for the body `{`; a `;`, `(`, or `=` first means this
      // was a forward declaration, a variable of class type, or a function
      // signature, not a definition.
      size_t brace = kNone;
      for (size_t k = j; k < toks.size() && k < j + 64; ++k) {
        const std::string& s = toks[k].text;
        if (s == "<") {
          const size_t m = AngleMatch(toks, k);
          if (m == kNone) break;
          k = m;
          continue;
        }
        if (s == "{") {
          brace = k;
          break;
        }
        if (s == ";" || s == "(" || s == "=" || s == "}") break;
      }
      if (brace != kNone &&
          brackets.MatchOf(brace) != BracketMap::kUnmatched &&
          by_open.count(brace) == 0) {
        Region r;
        r.open = brace;
        r.close = brackets.MatchOf(brace);
        r.kind = is_enum ? Region::Kind::kEnum : Region::Kind::kClass;
        r.name = name;
        r.decl_line = toks[i].line;
        by_open[brace] = r;
      }
    }
  }
  std::vector<Region> regions;
  regions.reserve(by_open.size());
  for (auto& [open, r] : by_open) regions.push_back(std::move(r));
  return regions;
}

/// Joined namespace/class names of every region enclosing token `pos`.
std::string PrefixAt(const std::vector<Region>& regions, size_t pos) {
  std::string prefix;
  for (const Region& r : regions) {
    if (r.open >= pos || r.close <= pos) continue;
    if (r.kind != Region::Kind::kNamespace &&
        r.kind != Region::Kind::kClass) {
      continue;
    }
    if (r.name.empty()) continue;
    if (!prefix.empty()) prefix += "::";
    prefix += r.name;
  }
  return prefix;
}

/// Walks from `i` to the first top-level declarator delimiter: `(` means
/// function, `=`/`{` an initialized variable, `;` a plain variable or
/// forward declaration. Template-argument lists and attribute brackets are
/// jumped. Returns kNone when the statement is malformed.
size_t FirstDelim(const std::vector<Token>& toks, const BracketMap& brackets,
                  size_t i) {
  for (size_t j = i; j < toks.size(); ++j) {
    const std::string& t = toks[j].text;
    if (t == "<" && j > i && toks[j - 1].IsIdent()) {
      const size_t m = AngleMatch(toks, j);
      if (m == kNone) return kNone;
      j = m;
      continue;
    }
    if (t == "[") {
      const size_t m = brackets.MatchOf(j);
      if (m == BracketMap::kUnmatched) return kNone;
      j = m;
      continue;
    }
    if (t == "(" || t == "=" || t == "{" || t == ";" || t == "}") return j;
  }
  return kNone;
}

/// Advances past the rest of a declaration whose first delimiter is `d`.
/// Function signatures stop AT the body `{` (so the region walk enters it
/// and still sees static locals inside); variables skip to past their `;`.
size_t SkipDecl(const std::vector<Token>& toks, const BracketMap& brackets,
                size_t d) {
  const std::string& t = toks[d].text;
  if (t == ";" || t == "}") return d + 1;
  if (t == "(") {
    const size_t close = brackets.MatchOf(d);
    if (close == BracketMap::kUnmatched) return d + 1;
    // Specifiers / trailing return / member-init list up to `{` or `;`.
    size_t j = close + 1;
    while (j < toks.size() && !toks[j].Is("{") && !toks[j].Is(";") &&
           !toks[j].Is("}")) {
      if (toks[j].Is("(")) {
        const size_t m = brackets.MatchOf(j);
        if (m == BracketMap::kUnmatched) break;
        j = m;
      }
      ++j;
    }
    if (j < toks.size() && toks[j].Is("{")) return j;  // Enter the body.
    return j + 1;
  }
  // `=` / `{` initializer: scan to `;` jumping balanced groups.
  size_t j = d;
  while (j < toks.size() && !toks[j].Is(";")) {
    if (toks[j].Is("(") || toks[j].Is("{") || toks[j].Is("[")) {
      const size_t m = brackets.MatchOf(j);
      if (m == BracketMap::kUnmatched) return j + 1;
      j = m;
    }
    ++j;
  }
  return j + 1;
}

/// Parses the variable name (with explicit `A::B::` qualifiers) directly
/// before delimiter `d`; empty when the tokens do not look like `Type name`.
std::string DeclaratorName(const std::vector<Token>& toks, size_t begin,
                           size_t d) {
  if (d == 0 || d <= begin) return "";
  size_t idx = d - 1;
  // Array declarator `name[N]` — walk back over the brackets.
  while (idx > begin && toks[idx].Is("]")) {
    while (idx > begin && !toks[idx].Is("[")) --idx;
    if (idx > begin) --idx;
  }
  if (!toks[idx].IsIdent()) return "";
  std::string name = toks[idx].text;
  while (idx >= begin + 2 && toks[idx - 1].Is("::") &&
         toks[idx - 2].IsIdent()) {
    name = toks[idx - 2].text + "::" + name;
    idx -= 2;
  }
  // A lone identifier is an expression statement, not `Type name`.
  for (size_t j = begin; j < idx; ++j) {
    if (toks[j].IsIdent() && !IsCvKeyword(toks[j].text) &&
        !toks[j].Is("static") && !toks[j].Is("inline") &&
        !toks[j].Is("thread_local")) {
      return name;
    }
    if (toks[j].Is("*") || toks[j].Is("&")) return name;
  }
  return "";
}

std::string JoinTokens(const std::vector<Token>& toks, size_t b, size_t e) {
  std::string text;
  for (size_t j = b; j < e && j < toks.size(); ++j) {
    if (toks[j].Is("static") || toks[j].Is("inline")) continue;
    if (!text.empty() &&
        (toks[j].IsIdent() || toks[j].kind == Token::Kind::kNumber)) {
      const std::string& prev = toks[j - 1].text;
      if (prev != "::" && prev != "<" && prev != "*" && prev != "&") {
        text += ' ';
      }
    }
    text += toks[j].text;
  }
  return text;
}

/// Annotation note on `line` or the line directly above it (the same
/// coverage rule `skyrise-check: allow` uses), or nullptr.
const std::string* NoteAt(const std::map<int, std::string>& notes, int line) {
  auto it = notes.find(line);
  if (it != notes.end()) return &it->second;
  it = notes.find(line - 1);
  if (it != notes.end()) return &it->second;
  return nullptr;
}

/// Innermost namespace/class region enclosing token `pos`, or nullptr.
const Region* InnermostScopeRegion(const std::vector<Region>& regions,
                                   size_t pos) {
  const Region* best = nullptr;
  for (const Region& r : regions) {
    if (r.open >= pos || r.close <= pos) continue;
    if (r.kind != Region::Kind::kNamespace &&
        r.kind != Region::Kind::kClass) {
      continue;
    }
    if (best == nullptr || r.open > best->open) best = &r;
  }
  return best;
}

/// First qualified-name segment that maps to a built-in domain, or nullptr.
const char* InferredSegmentDomain(const std::string& qualified) {
  size_t pos = 0;
  while (pos <= qualified.size()) {
    const size_t sep = qualified.find("::", pos);
    const std::string seg =
        sep == std::string::npos ? qualified.substr(pos)
                                 : qualified.substr(pos, sep - pos);
    if (const char* d = DomainForSegment(seg)) return d;
    if (sep == std::string::npos) break;
    pos = sep + 2;
  }
  return nullptr;
}

/// Domain assignment (see domains.h): explicit annotation on the definition
/// wins, then the innermost annotated enclosing namespace/class, then
/// namespace-segment inference, then the `shared` default. Provenance is
/// recorded so inference is explicit in the inventory, never silent.
void AssignDomain(const SourceFile& file, const std::vector<Region>& regions,
                  size_t pos, int decl_line, const std::string& qualified,
                  std::string* domain, const char** source) {
  if (const std::string* note = NoteAt(file.domain_notes, decl_line)) {
    *domain = *note;
    *source = "annotation";
    return;
  }
  const Region* annotated = nullptr;
  for (const Region& r : regions) {
    if (r.open >= pos || r.close <= pos) continue;
    if (r.kind != Region::Kind::kNamespace &&
        r.kind != Region::Kind::kClass) {
      continue;
    }
    if (NoteAt(file.domain_notes, r.decl_line) == nullptr) continue;
    if (annotated == nullptr || r.open > annotated->open) annotated = &r;
  }
  if (annotated != nullptr) {
    *domain = *NoteAt(file.domain_notes, annotated->decl_line);
    *source = "annotation";
    return;
  }
  if (const char* inferred = InferredSegmentDomain(qualified)) {
    *domain = inferred;
    *source = "namespace";
    return;
  }
  *domain = kSharedDomain;
  *source = "default";
}

bool IsSmartHandle(const std::string& s) {
  return s == "unique_ptr" || s == "shared_ptr" || s == "weak_ptr";
}

/// Joins the qualified identifier chain ending at token `last` (inclusive),
/// walking back over `A::B` pairs; empty when `last` is not an identifier.
std::string QualifiedChainEndingAt(const std::vector<Token>& toks,
                                   size_t last, size_t begin) {
  if (last >= toks.size() || !toks[last].IsIdent()) return "";
  std::string name = toks[last].text;
  size_t idx = last;
  while (idx >= begin + 2 && toks[idx - 1].Is("::") &&
         toks[idx - 2].IsIdent()) {
    name = toks[idx - 2].text + "::" + name;
    idx -= 2;
  }
  return name;
}

/// Records the member declared at [begin, delim) as a handle field when its
/// type retains a reference: a top-level `*`/`&`, or a
/// unique_ptr/shared_ptr/weak_ptr. Plain value members are skipped — a copy
/// cannot mutate across a shard boundary. Pointers *into containers*
/// (`vector<Foo*>`) are a documented under-approximation: the angle group is
/// jumped like everywhere else in this index.
void MaybeRecordHandle(const SourceFile& file, const std::vector<Token>& toks,
                       size_t begin, size_t delim, ClassSym* cls) {
  const std::string name = DeclaratorName(toks, begin, delim);
  if (name.empty()) return;
  size_t type_end;
  {
    size_t idx = delim - 1;
    while (idx > begin && toks[idx].Is("]")) {
      while (idx > begin && !toks[idx].Is("[")) --idx;
      if (idx > begin) --idx;
    }
    while (idx >= begin + 2 && toks[idx - 1].Is("::") &&
           toks[idx - 2].IsIdent()) {
      idx -= 2;
    }
    type_end = idx;
  }
  if (type_end <= begin) return;
  std::string pointee;
  bool is_const = false;
  for (size_t j = begin; j < type_end; ++j) {
    if (toks[j].Is("<") && j > begin && toks[j - 1].IsIdent()) {
      const size_t m = AngleMatch(toks, j);
      if (m == kNone) return;
      j = m;
      continue;
    }
    if (toks[j].Is("const")) is_const = true;
    if ((toks[j].Is("*") || toks[j].Is("&")) && j > begin &&
        pointee.empty()) {
      pointee = QualifiedChainEndingAt(toks, j - 1, begin);
    }
  }
  if (pointee.empty()) {
    for (size_t j = begin; j + 1 < type_end; ++j) {
      if (toks[j].IsIdent() && IsSmartHandle(toks[j].text) &&
          toks[j + 1].Is("<")) {
        size_t k = j + 2;
        while (k < type_end && toks[k].Is("const")) {
          is_const = true;
          ++k;
        }
        if (k < type_end && toks[k].IsIdent()) {
          std::string chain = toks[k].text;
          while (k + 2 < type_end && toks[k + 1].Is("::") &&
                 toks[k + 2].IsIdent()) {
            chain += "::" + toks[k + 2].text;
            k += 2;
          }
          pointee = chain;
        }
        break;
      }
    }
  }
  if (pointee.empty()) return;
  FieldHandle h;
  h.name = name;
  h.pointee = pointee;
  h.is_const = is_const;
  h.type_text = JoinTokens(toks, begin, type_end);
  h.line = toks[begin].line;
  h.suppressed = IsSuppressed(file, h.line, "domain-escape");
  cls->handles.push_back(std::move(h));
}

/// Class inventory pass: one ClassSym per named class/struct region, with
/// domain assignment and the handle members the escape analysis inspects.
/// Nested regions (method bodies, nested classes — inventoried on their own)
/// are jumped, so only class-top-level member declarations are walked.
void CollectClassesIn(const SourceFile& file, const std::vector<Token>& toks,
                      const BracketMap& brackets,
                      const std::vector<Region>& regions,
                      std::vector<ClassSym>* out) {
  std::map<size_t, const Region*> by_open;
  for (const Region& r : regions) by_open[r.open] = &r;
  for (const Region& r : regions) {
    if (r.kind != Region::Kind::kClass || r.name.empty()) continue;
    ClassSym cls;
    cls.name = r.name;
    const std::string prefix = PrefixAt(regions, r.open);
    cls.qualified = prefix.empty() ? r.name : prefix + "::" + r.name;
    cls.file = file.path;
    cls.line = r.decl_line;
    AssignDomain(file, regions, r.open + 1, r.decl_line, cls.qualified,
                 &cls.domain, &cls.domain_source);
    size_t i = r.open + 1;
    while (i < r.close) {
      auto rit = by_open.find(i);
      if (rit != by_open.end()) {
        i = rit->second->close + 1;
        continue;
      }
      const Token& t = toks[i];
      if (t.Is("}") || t.Is(";") || t.Is(":")) {
        ++i;
        continue;
      }
      if (t.Is("public") || t.Is("private") || t.Is("protected")) {
        i += 2;  // The specifier and its `:`.
        continue;
      }
      if (t.Is("static") || t.Is("class") || t.Is("struct") ||
          t.Is("union") || t.Is("enum") || IsDeclKeyword(t.text)) {
        // Statics live in the state inventory; nested type leads advance to
        // their `;` or region brace so the by_open jump above takes over.
        size_t j = i + 1;
        while (j < r.close && !toks[j].Is(";") && by_open.count(j) == 0) {
          if (toks[j].Is("(") || toks[j].Is("[")) {
            const size_t m = brackets.MatchOf(j);
            if (m == BracketMap::kUnmatched) break;
            j = m;
          }
          ++j;
        }
        i = (j < r.close && toks[j].Is(";")) ? j + 1 : j;
        continue;
      }
      const size_t delim = FirstDelim(toks, brackets, i);
      if (delim == kNone || delim >= r.close) break;
      if (!toks[delim].Is("(") && !toks[delim].Is("}") &&
          by_open.count(delim) == 0) {
        MaybeRecordHandle(file, toks, i, delim, &cls);
      }
      i = by_open.count(delim) > 0 ? delim
                                   : SkipDecl(toks, brackets, delim);
    }
    out->push_back(std::move(cls));
  }
}

/// Static-storage variable inventory pass: walks the token stream with the
/// classified region stack, recognizing namespace-scope declarations and
/// `static`-anchored statements inside classes and function bodies.
void CollectStaticsIn(const SourceFile& file, const std::vector<Token>& toks,
                      const BracketMap& brackets,
                      const std::vector<Region>& regions,
                      const std::vector<FunctionSym>& functions,
                      std::vector<StaticVar>* out) {
  std::map<size_t, const Region*> by_open;
  for (const Region& r : regions) by_open[r.open] = &r;

  std::vector<const Region*> stack;
  auto context = [&]() {
    return stack.empty() ? Region::Kind::kNamespace : stack.back()->kind;
  };

  auto record = [&](size_t begin, size_t delim, StaticVar::Storage storage) {
    const std::string name = DeclaratorName(toks, begin, delim);
    if (name.empty()) return;
    StaticVar var;
    var.file = file.path;
    var.line = toks[begin].line;
    var.storage = storage;
    // Type text ends where the (possibly qualified) name chain starts.
    size_t type_end;
    {
      size_t idx = delim - 1;
      while (idx > begin && toks[idx].Is("]")) {
        while (idx > begin && !toks[idx].Is("[")) --idx;
        if (idx > begin) --idx;
      }
      while (idx >= begin + 2 && toks[idx - 1].Is("::") &&
             toks[idx - 2].IsIdent()) {
        idx -= 2;
      }
      type_end = idx;
    }
    // cv scan at declarator top level only: `map<K, const V*>` args are
    // jumped so element const-ness cannot launder a mutable container.
    for (size_t j = begin; j < type_end; ++j) {
      if (toks[j].Is("<") && j > begin && toks[j - 1].IsIdent()) {
        const size_t m = AngleMatch(toks, j);
        if (m != kNone) j = m;
        continue;
      }
      if (IsCvKeyword(toks[j].text)) var.is_const = true;
      if (toks[j].Is("thread_local")) var.thread_local_ = true;
    }
    var.type_text = JoinTokens(toks, begin, type_end);
    std::string prefix = PrefixAt(regions, begin);
    // Static locals nest under their function's qualified name; the region
    // prefix only carries namespaces/classes, so swap in the symbol name.
    if (storage == StaticVar::Storage::kStaticLocal && !stack.empty()) {
      for (const FunctionSym& sym : functions) {
        if (sym.file == file.path &&
            sym.line == toks[stack.back()->open].line) {
          prefix = sym.qualified;
          break;
        }
      }
    }
    var.qualified = prefix.empty() ? name : prefix + "::" + name;
    var.suppressed = IsSuppressed(file, var.line, "shared-mutable-state");
    out->push_back(std::move(var));
  };

  size_t i = 0;
  while (i < toks.size()) {
    while (!stack.empty() && i > stack.back()->close) stack.pop_back();
    auto rit = by_open.find(i);
    if (rit != by_open.end()) {
      stack.push_back(rit->second);
      ++i;
      continue;
    }
    const Token& t = toks[i];
    if (t.Is("}") || t.Is(";") || t.Is(":")) {
      ++i;
      continue;
    }

    if (context() == Region::Kind::kNamespace) {
      // Top-level declaration statement. Region-opening keywords were
      // classified by BuildRegions; non-variable leads advance to their `;`
      // or to the region brace so nested scopes still get walked.
      if (t.Is("namespace") || t.Is("class") || t.Is("struct") ||
          t.Is("union") || t.Is("enum") || IsDeclKeyword(t.text)) {
        size_t j = i + 1;
        while (j < toks.size() && !toks[j].Is(";") &&
               by_open.count(j) == 0) {
          if (toks[j].Is("(") || toks[j].Is("[")) {
            const size_t m = brackets.MatchOf(j);
            if (m == BracketMap::kUnmatched) break;
            j = m;
          }
          ++j;
        }
        i = (j < toks.size() && toks[j].Is(";")) ? j + 1 : j;
        continue;
      }
      const size_t delim = FirstDelim(toks, brackets, i);
      if (delim == kNone) {
        ++i;
        continue;
      }
      const bool region_brace =
          toks[delim].Is("{") && by_open.count(delim) > 0;
      if (!region_brace &&
          (toks[delim].Is("=") || toks[delim].Is("{") ||
           toks[delim].Is(";"))) {
        record(i, delim, StaticVar::Storage::kNamespaceScope);
      }
      i = region_brace ? delim : SkipDecl(toks, brackets, delim);
      continue;
    }

    if (t.Is("static") && (context() == Region::Kind::kClass ||
                           context() == Region::Kind::kFunction)) {
      const size_t delim = FirstDelim(toks, brackets, i + 1);
      if (delim != kNone && !toks[delim].Is("(") && !toks[delim].Is("}") &&
          by_open.count(delim) == 0) {
        // Pull in cv-qualifiers written before `static`.
        size_t begin = i;
        while (begin > 0 && (IsCvKeyword(toks[begin - 1].text) ||
                             toks[begin - 1].Is("inline") ||
                             toks[begin - 1].Is("thread_local"))) {
          --begin;
        }
        record(begin, delim,
               context() == Region::Kind::kClass
                   ? StaticVar::Storage::kStaticMember
                   : StaticVar::Storage::kStaticLocal);
        i = SkipDecl(toks, brackets, delim);
        continue;
      }
    }
    ++i;
  }
}

}  // namespace

const char* StorageName(StaticVar::Storage storage) {
  switch (storage) {
    case StaticVar::Storage::kNamespaceScope:
      return "namespace-scope";
    case StaticVar::Storage::kStaticLocal:
      return "static-local";
    case StaticVar::Storage::kStaticMember:
      return "static-member";
  }
  return "unknown";
}

const char* BannedApiReason(const std::string& token) {
  struct Banned {
    const char* token;
    const char* why;
  };
  static const Banned kBanned[] = {
      {"system_clock", "wall clock; use sim::SimEnvironment::now()"},
      {"steady_clock", "host clock; use sim::SimEnvironment::now()"},
      {"high_resolution_clock", "host clock; use sim::SimEnvironment::now()"},
      {"random_device", "nondeterministic seed; use Rng::Fork / env seed"},
      {"mt19937", "ambient RNG; use skyrise::Rng streams"},
      {"mt19937_64", "ambient RNG; use skyrise::Rng streams"},
      {"default_random_engine", "ambient RNG; use skyrise::Rng streams"},
      {"srand", "global RNG; use skyrise::Rng streams"},
      {"getenv", "environment lookup makes runs host-dependent"},
      {"gettimeofday", "wall clock; use sim::SimEnvironment::now()"},
      {"clock_gettime", "wall clock; use sim::SimEnvironment::now()"},
      {"localtime", "wall-clock formatting; derive from virtual time"},
      {"gmtime", "wall-clock formatting; derive from virtual time"},
      {"this_thread", "thread identity/sleep leaks host scheduling"},
  };
  for (const Banned& b : kBanned) {
    if (token == b.token) return b.why;
  }
  return nullptr;
}

bool SrcScoped(const std::string& path) {
  if (path.find('/') == std::string::npos) return true;
  return path.rfind("src/", 0) == 0 || path.find("/src/") != std::string::npos;
}

void SymbolIndex::AddFile(const SourceFile& file) {
  const std::vector<Token> toks = Lex(file);
  const BracketMap brackets = PairBrackets(toks);
  const std::vector<FunctionScope> scopes = ExtractFunctions(toks, brackets);
  const std::vector<Region> regions = BuildRegions(toks, brackets, scopes);

  // --- Pass 1: create symbols (functions + lambdas assigned to locals) and
  // the per-scope ownership map (anonymous lambdas fold into their creator).
  struct ScopeInfo {
    size_t sym = kNone;        ///< Symbol this scope defines, or kNone.
    size_t owner_sym = kNone;  ///< Symbol owning this scope's tokens.
  };
  std::vector<ScopeInfo> infos(scopes.size());
  // Scopes are in body_begin order, so an enclosing scope precedes its
  // nested scopes; a stack of indices tracks the enclosing chain.
  std::vector<size_t> stack;
  for (size_t s = 0; s < scopes.size(); ++s) {
    const FunctionScope& scope = scopes[s];
    while (!stack.empty() &&
           scopes[stack.back()].body_end < scope.body_begin) {
      stack.pop_back();
    }
    const size_t parent = stack.empty() ? kNone : stack.back();
    const size_t parent_sym =
        parent != kNone ? infos[parent].owner_sym : kNone;

    std::string name;
    std::string qualified;
    bool creates_sym = false;
    if (!scope.is_lambda) {
      creates_sym = true;
      name = scope.name.empty() ? "<anonymous>" : scope.name;
      // Explicit qualifiers on an out-of-line definition: `A::B::name(`.
      std::string quals;
      if (scope.params_begin != kNone && scope.params_begin >= 1) {
        size_t idx = scope.params_begin - 1;
        while (idx >= 2 && toks[idx - 1].Is("::") &&
               toks[idx - 2].IsIdent()) {
          quals = toks[idx - 2].text + "::" + quals;
          idx -= 2;
        }
      }
      qualified = PrefixAt(regions, scope.body_begin);
      if (!qualified.empty()) qualified += "::";
      qualified += quals + name;
    } else if (scope.capture_begin != kNone && scope.capture_begin >= 2 &&
               toks[scope.capture_begin - 1].Is("=") &&
               toks[scope.capture_begin - 2].IsIdent()) {
      // `auto f = [...] {...};` — a named local callable.
      creates_sym = true;
      name = toks[scope.capture_begin - 2].text;
      qualified = parent_sym != kNone ? functions_[parent_sym].qualified
                                      : PrefixAt(regions, scope.body_begin);
      if (!qualified.empty()) qualified += "::";
      qualified += name;
    }

    if (creates_sym) {
      FunctionSym sym;
      sym.qualified = qualified;
      sym.name = name;
      sym.file = file.path;
      sym.line = toks[scope.body_begin].line;
      sym.is_lambda = scope.is_lambda;
      // Domain facts anchor on the declarator line (where a
      // `skyrise-domain(...)` / `skyrise-domain-crossing(...)` comment sits
      // on or above), not the body `{`, which may be lines later.
      int decl_line = toks[scope.body_begin].line;
      if (!scope.is_lambda && scope.params_begin != kNone &&
          scope.params_begin >= 1) {
        decl_line = toks[scope.params_begin - 1].line;
      } else if (scope.is_lambda && scope.capture_begin != kNone &&
                 scope.capture_begin >= 2) {
        decl_line = toks[scope.capture_begin - 2].line;
      }
      AssignDomain(file, regions, scope.body_begin, decl_line, qualified,
                   &sym.domain, &sym.domain_source);
      if (const std::string* note =
              NoteAt(file.crossing_notes, decl_line)) {
        sym.crossing_point = true;
        sym.crossing_rationale = *note;
      }
      const Region* enclosing = InnermostScopeRegion(regions, scope.body_begin);
      sym.in_class =
          enclosing != nullptr && enclosing->kind == Region::Kind::kClass;
      infos[s].sym = functions_.size();
      infos[s].owner_sym = infos[s].sym;
      functions_.push_back(std::move(sym));
      // The creator of a named lambda is assumed to invoke it: callbacks
      // run eventually, and for taint purposes creating one is as good as
      // calling it. The edge keeps witness chains connected.
      if (scope.is_lambda && parent_sym != kNone) {
        functions_[parent_sym].calls.push_back(
            CallSite{name, toks[scope.body_begin].line, false});
      }
    } else {
      infos[s].owner_sym = parent_sym;
    }
    stack.push_back(s);
  }

  // --- Pass 2: one linear walk attributing token events (calls, banned
  // APIs, bounds, scheduling) to the owning symbol.
  stack.clear();
  size_t next_scope = 0;
  for (size_t i = 0; i < toks.size(); ++i) {
    while (!stack.empty() && i > scopes[stack.back()].body_end) {
      stack.pop_back();
    }
    if (next_scope < scopes.size() && scopes[next_scope].body_begin == i) {
      stack.push_back(next_scope++);
      continue;  // The `{` token itself.
    }
    if (stack.empty()) continue;
    const size_t owner = infos[stack.back()].owner_sym;
    if (owner == kNone) continue;
    const Token& t = toks[i];
    if (!t.IsIdent()) continue;
    FunctionSym& sym = functions_[owner];

    if (IsBoundIdent(t.text)) sym.has_bound = true;

    const char* why = BannedApiReason(t.text);
    const bool call_pos = i + 1 < toks.size() && toks[i + 1].Is("(");
    const bool member_access =
        i >= 1 && (toks[i - 1].Is(".") || toks[i - 1].Is("->"));
    if (why == nullptr && call_pos && !member_access &&
        (t.text == "rand" || t.text == "time")) {
      why = "nondeterministic; use skyrise::Rng / virtual time";
    }
    if (why != nullptr) {
      BannedUse use;
      use.api = t.text;
      use.why = why;
      use.line = t.line;
      use.sanctioned_source =
          IsSuppressed(file, t.line, "transitive-nondeterminism");
      sym.banned.push_back(use);
    }

    // Call expression `name(...)` / `A::B::name(...)` / `x.name(...)`.
    if (call_pos && !IsCallKeyword(t.text)) {
      std::string callee = t.text;
      if (!member_access) {
        size_t idx = i;
        while (idx >= 2 && toks[idx - 1].Is("::") &&
               toks[idx - 2].IsIdent()) {
          callee = toks[idx - 2].text + "::" + callee;
          idx -= 2;
        }
      }
      bool retry_args = false;
      const size_t close = brackets.MatchOf(i + 1);
      if (close != BracketMap::kUnmatched) {
        for (size_t j = i + 2; j < close; ++j) {
          if (toks[j].IsIdent() && IsRetryIshIdent(toks[j].text)) {
            retry_args = true;
            break;
          }
        }
      }
      sym.calls.push_back(CallSite{callee, t.line, retry_args});
      if (t.text == "Schedule") {
        sym.calls_scheduler = true;
        if (retry_args && !sym.direct_retry_schedule) {
          sym.direct_retry_schedule = true;
          sym.retry_line = t.line;
        }
      }
      if (t.text == "Begin") sym.has_begin_call = true;
    }
  }

  // --- Pass 3: signature facts (parameter/capture tokens live outside the
  // body range and were not attributed above).
  for (size_t s = 0; s < scopes.size(); ++s) {
    if (infos[s].sym == kNone) continue;
    const FunctionScope& scope = scopes[s];
    FunctionSym& sym = functions_[infos[s].sym];
    auto scan_bounds = [&](size_t b, size_t e) {
      if (b == kNone || e == kNone) return;
      for (size_t j = b; j <= e && j < toks.size(); ++j) {
        if (toks[j].IsIdent() && IsBoundIdent(toks[j].text)) {
          sym.has_bound = true;
        }
      }
    };
    scan_bounds(scope.params_begin, scope.params_end);
    scan_bounds(scope.capture_begin, scope.capture_end);
    // Trailing `const` qualifier between `)` and the body: a const method.
    // Stop at `->` (trailing return type) and `:` (member-init list).
    if (!scope.is_lambda && scope.params_end != kNone) {
      for (size_t j = scope.params_end + 1;
           j < scope.body_begin && j < toks.size(); ++j) {
        if (toks[j].Is("->") || toks[j].Is(":")) break;
        if (toks[j].Is("const")) {
          sym.is_const_method = true;
          break;
        }
      }
    }
    // Leading `static` in the declaration head (in-class definitions only;
    // out-of-line definitions do not repeat it): a static factory/helper.
    if (!scope.is_lambda && scope.params_begin != kNone &&
        scope.params_begin >= 1) {
      size_t idx = scope.params_begin - 1;  // Name token.
      while (idx >= 2 && toks[idx - 1].Is("::") && toks[idx - 2].IsIdent()) {
        idx -= 2;
      }
      size_t steps = 0;
      while (idx > 0 && steps < 12) {
        const Token& q = toks[idx - 1];
        if (q.Is(";") || q.Is("{") || q.Is("}")) break;
        if (q.Is("static")) {
          sym.is_static_method = true;
          break;
        }
        --idx;
        ++steps;
      }
    }
    // Return type `[obs::]SpanId name(...)`, walking back over the explicit
    // qualifier chain from the name token.
    if (!scope.is_lambda && scope.params_begin != kNone &&
        scope.params_begin >= 2) {
      size_t idx = scope.params_begin - 1;  // Name token.
      while (idx >= 2 && toks[idx - 1].Is("::") && toks[idx - 2].IsIdent()) {
        idx -= 2;
      }
      if (idx >= 1 && toks[idx - 1].Is("SpanId") && sym.has_begin_call) {
        sym.returns_open_span = true;
      }
    }
  }

  // --- Pass 4: static-storage variables.
  CollectStaticsIn(file, toks, brackets, regions, functions_, &statics_);
  std::sort(statics_.begin(), statics_.end(),
            [](const StaticVar& a, const StaticVar& b) {
              return std::tie(a.file, a.line, a.qualified) <
                     std::tie(b.file, b.line, b.qualified);
            });

  // --- Pass 5: class definitions and their retained handle members.
  CollectClassesIn(file, toks, brackets, regions, &classes_);
}

void SymbolIndex::Merge(SymbolIndex&& other) {
  for (FunctionSym& f : other.functions_) functions_.push_back(std::move(f));
  for (ClassSym& c : other.classes_) classes_.push_back(std::move(c));
  for (StaticVar& v : other.statics_) statics_.push_back(std::move(v));
  std::sort(statics_.begin(), statics_.end(),
            [](const StaticVar& a, const StaticVar& b) {
              return std::tie(a.file, a.line, a.qualified) <
                     std::tie(b.file, b.line, b.qualified);
            });
}

std::set<std::string> SymbolIndex::SpanSourceNames() const {
  std::set<std::string> names;
  for (const FunctionSym& f : functions_) {
    if (f.returns_open_span) names.insert(f.name);
  }
  return names;
}

}  // namespace skyrise::check
