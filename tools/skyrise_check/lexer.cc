#include "lexer.h"

#include <cctype>

namespace skyrise::check {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Multi-character punctuators the flow passes care about, longest first so
/// maximal munch works with a simple prefix scan.
const char* const kPuncts[] = {
    "<=>", "->*", "...", "::", "->", "<<", ">>", "<=", ">=", "==", "!=",
    "&&",  "||",  "+=",  "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++",
    "--",  ".*",
};

}  // namespace

std::vector<Token> Lex(const SourceFile& file) {
  std::vector<Token> toks;
  bool in_directive = false;
  for (size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    const int lineno = static_cast<int>(li) + 1;
    size_t i = line.find_first_not_of(" \t");
    if (!in_directive && i != std::string::npos && line[i] == '#') {
      // Preprocessor directive: macro bodies are not reachable code for the
      // dataflow engine (expansion sites are), so skip the directive and any
      // backslash-continued lines.
      in_directive = true;
    }
    if (in_directive) {
      const size_t last = line.find_last_not_of(" \t");
      in_directive = last != std::string::npos && line[last] == '\\';
      continue;
    }
    if (i == std::string::npos) continue;
    while (i < line.size()) {
      const char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      if (IsIdentStart(c)) {
        size_t e = i;
        while (e < line.size() && IsIdentChar(line[e])) ++e;
        toks.push_back(Token{Token::Kind::kIdent, line.substr(i, e - i),
                             lineno, static_cast<int>(i)});
        i = e;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        size_t e = i;
        while (e < line.size() &&
               (IsIdentChar(line[e]) || line[e] == '.' ||
                ((line[e] == '+' || line[e] == '-') && e > i &&
                 (line[e - 1] == 'e' || line[e - 1] == 'E')))) {
          ++e;
        }
        toks.push_back(Token{Token::Kind::kNumber, line.substr(i, e - i),
                             lineno, static_cast<int>(i)});
        i = e;
        continue;
      }
      bool matched = false;
      for (const char* p : kPuncts) {
        const size_t n = std::char_traits<char>::length(p);
        if (line.compare(i, n, p) == 0) {
          toks.push_back(
              Token{Token::Kind::kPunct, p, lineno, static_cast<int>(i)});
          i += n;
          matched = true;
          break;
        }
      }
      if (matched) continue;
      toks.push_back(Token{Token::Kind::kPunct, std::string(1, c), lineno,
                           static_cast<int>(i)});
      ++i;
    }
  }
  return toks;
}

BracketMap PairBrackets(const std::vector<Token>& toks) {
  BracketMap map;
  map.match.assign(toks.size(), BracketMap::kUnmatched);
  std::vector<size_t> parens, squares, braces;
  for (size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "(") {
      parens.push_back(i);
    } else if (t == "[") {
      squares.push_back(i);
    } else if (t == "{") {
      braces.push_back(i);
    } else if (t == ")" && !parens.empty()) {
      map.match[i] = parens.back();
      map.match[parens.back()] = i;
      parens.pop_back();
    } else if (t == "]" && !squares.empty()) {
      map.match[i] = squares.back();
      map.match[squares.back()] = i;
      squares.pop_back();
    } else if (t == "}" && !braces.empty()) {
      map.match[i] = braces.back();
      map.match[braces.back()] = i;
      braces.pop_back();
    }
  }
  return map;
}

}  // namespace skyrise::check
