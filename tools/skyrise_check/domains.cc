#include "domains.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <tuple>

namespace skyrise::check {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Reads the identifier starting at `i`; empty when `i` is mid-identifier or
/// not an identifier character.
std::string IdentAt(const std::string& line, size_t i) {
  if (i >= line.size() || !IsIdentChar(line[i])) return "";
  if (i > 0 && IsIdentChar(line[i - 1])) return "";
  size_t e = i;
  while (e < line.size() && IsIdentChar(line[e])) ++e;
  return line.substr(i, e - i);
}

std::string LastSegment(const std::string& qualified) {
  const size_t pos = qualified.rfind("::");
  return pos == std::string::npos ? qualified : qualified.substr(pos + 2);
}

std::string DropLastSegment(const std::string& qualified) {
  const size_t pos = qualified.rfind("::");
  return pos == std::string::npos ? "" : qualified.substr(0, pos);
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// Name-resolution context shared by the two interprocedural domain rules:
/// classes by exact qualified name and by last segment.
struct DomainCtx {
  std::map<std::string, const ClassSym*> by_qualified;
  std::map<std::string, std::vector<const ClassSym*>> by_name;

  explicit DomainCtx(const SymbolIndex& index) {
    for (const ClassSym& c : index.classes()) {
      by_qualified.emplace(c.qualified, &c);
      by_name[c.name].push_back(&c);
    }
  }

  /// The class owning method `fn` (its qualified name minus the last
  /// segment), or nullptr when `fn` is a free function or the class is
  /// unknown. Exact qualified match first, then a unique last-segment match.
  const ClassSym* OwningClass(const FunctionSym& fn) const {
    const std::string prefix = DropLastSegment(fn.qualified);
    if (prefix.empty()) return nullptr;
    auto it = by_qualified.find(prefix);
    if (it != by_qualified.end()) return it->second;
    auto nit = by_name.find(LastSegment(prefix));
    if (nit == by_name.end()) return nullptr;
    // Ambiguous last-segment matches resolve only when every candidate
    // agrees on the domain (the only fact the rules read).
    const ClassSym* first = nit->second.front();
    for (const ClassSym* c : nit->second) {
      if (c->domain != first->domain) return nullptr;
    }
    return first;
  }

  /// Domain of the type a handle points at: a known class wins (annotation
  /// respected), else namespace-segment inference on the pointee text, else
  /// empty (unknown — no edge, the degrade-to-silence direction).
  std::string PointeeDomain(const std::string& pointee) const {
    auto it = by_qualified.find(pointee);
    if (it != by_qualified.end()) return it->second->domain;
    // Suffix match: `ComputePlatform` names `faas::ComputePlatform`.
    auto nit = by_name.find(LastSegment(pointee));
    if (nit != by_name.end()) {
      const ClassSym* first = nit->second.front();
      bool agree = true;
      for (const ClassSym* c : nit->second) {
        agree = agree && c->domain == first->domain;
      }
      if (agree) return first->domain;
    }
    const std::string inferred = InferDomainFromQualified(pointee);
    // Bare unqualified names carry no namespace evidence; stay silent
    // rather than defaulting them into `shared`.
    if (inferred == kSharedDomain &&
        pointee.find("::") == std::string::npos) {
      return "";
    }
    return inferred;
  }

  /// A function's effective domain: its own annotation wins, then its owning
  /// class's annotation (out-of-line methods inherit the class), then the
  /// function's inferred/default domain.
  std::string EffectiveDomain(const FunctionSym& fn) const {
    if (std::string(fn.domain_source) == "annotation") return fn.domain;
    const ClassSym* owner = OwningClass(fn);
    if (owner != nullptr && std::string(owner->domain_source) == "annotation") {
      return owner->domain;
    }
    return fn.domain;
  }

  /// Methods are the mutation vector the escape analysis cares about: a call
  /// through a retained handle is a member call. In-class definitions are
  /// certain; out-of-line definitions count when the penultimate qualified
  /// segment names a known class.
  bool IsMethod(const FunctionSym& fn) const {
    if (fn.is_lambda || fn.is_static_method) return false;
    return fn.in_class || OwningClass(fn) != nullptr;
  }
};

bool KnownDomain(const std::string& name) {
  const std::vector<std::string>& all = BuiltinDomains();
  return std::find(all.begin(), all.end(), name) != all.end();
}

void MaybeEmit(const FileMap& files, const std::string& path, int line,
               const std::string& rule, std::string message,
               std::vector<Diagnostic>* out) {
  if (out == nullptr) return;
  auto it = files.find(path);
  if (it == files.end()) return;
  EmitDiagnostic(*it->second, line, rule, std::move(message), out);
}

/// True when `path` is owned by the sim-kernel domain: src/sim/ on disk, or
/// a bare fixture name carrying "sim_kernel".
bool SimKernelFile(const std::string& path) {
  if (path.find('/') == std::string::npos) {
    return path.find("sim_kernel") != std::string::npos;
  }
  return path.rfind("src/sim/", 0) == 0 ||
         path.find("/src/sim/") != std::string::npos;
}

}  // namespace

const std::vector<std::string>& BuiltinDomains() {
  static const std::vector<std::string> kDomains = {
      "sim-kernel",    "network",  "storage-partition",
      "sandbox-fleet", "coordinator", "serving",
      "shared"};
  return kDomains;
}

const char* DomainForSegment(const std::string& segment) {
  struct Mapping {
    const char* segment;
    const char* domain;
  };
  static const Mapping kMap[] = {
      {"sim", "sim-kernel"},      {"net", "network"},
      {"storage", "storage-partition"}, {"faas", "sandbox-fleet"},
      {"engine", "coordinator"},  {"serving", "serving"},
      // The platform layer is the composition root: it builds, wires, owns,
      // and drives the whole stack around the event loop. It is not
      // shard-resident code, so it maps to the passive pseudo-domain.
      {"platform", "shared"},
  };
  for (const Mapping& m : kMap) {
    if (segment == m.segment) return m.domain;
  }
  return nullptr;
}

std::string InferDomainFromQualified(const std::string& qualified) {
  size_t pos = 0;
  while (pos <= qualified.size()) {
    const size_t sep = qualified.find("::", pos);
    const std::string seg =
        sep == std::string::npos ? qualified.substr(pos)
                                 : qualified.substr(pos, sep - pos);
    if (const char* d = DomainForSegment(seg)) return d;
    if (sep == std::string::npos) break;
    pos = sep + 2;
  }
  return kSharedDomain;
}

void CheckDomainEscape(const SymbolIndex& index, const FileMap& files,
                       std::vector<Diagnostic>* out,
                       std::vector<CrossingEdge>* edges) {
  const DomainCtx ctx(index);
  for (const ClassSym& cls : index.classes()) {
    if (!SrcScoped(cls.file)) continue;
    if (cls.domain == kSharedDomain) continue;  // Passive value code.
    for (const FieldHandle& h : cls.handles) {
      const std::string to_domain = ctx.PointeeDomain(h.pointee);
      if (to_domain.empty() || to_domain == cls.domain ||
          to_domain == kSharedDomain) {
        continue;  // Unknown, intra-domain, or a handle to passive code.
      }
      std::string sanction = "violation";
      if (to_domain == "sim-kernel") {
        // The env handle *is* the event API — the sanctioned crossing every
        // shard keeps.
        sanction = "event-api";
      } else if (h.is_const) {
        sanction = "const-read";
      } else if (h.suppressed) {
        sanction = "allow";
      }
      if (edges != nullptr) {
        edges->push_back(CrossingEdge{"field", cls.qualified, cls.domain,
                                      h.pointee, to_domain, cls.file, h.line,
                                      sanction});
      }
      if (sanction == "violation") {
        MaybeEmit(files, cls.file, h.line, "domain-escape",
                  "cross-domain handle: `" + cls.qualified + "` (" +
                      cls.domain + ") -> field `" + h.name + "` -> `" +
                      h.pointee + "` (" + to_domain +
                      "); a retained mutable handle lets one shard mutate "
                      "another's state outside the event API — copy the "
                      "value, make it const, route mutations through "
                      "sim-kernel scheduling, or justify with "
                      "allow(domain-escape)",
                  out);
      }
    }
  }
}

void CheckCrossDomainMutation(const SymbolIndex& index, const CallGraph& graph,
                              const FileMap& files,
                              std::vector<Diagnostic>* out,
                              std::vector<CrossingEdge>* edges) {
  const DomainCtx ctx(index);
  const std::vector<FunctionSym>& funcs = index.functions();
  for (size_t i = 0; i < funcs.size() && i < graph.callees.size(); ++i) {
    const FunctionSym& caller = funcs[i];
    if (!SrcScoped(caller.file)) continue;
    const std::string caller_dom = ctx.EffectiveDomain(caller);
    if (caller_dom == kSharedDomain) continue;  // Runs on the calling shard.
    for (size_t j : graph.callees[i]) {
      const FunctionSym& callee = funcs[j];
      if (!ctx.IsMethod(callee)) continue;
      const std::string callee_dom = ctx.EffectiveDomain(callee);
      if (callee_dom.empty() || callee_dom == caller_dom ||
          callee_dom == kSharedDomain) {
        continue;
      }
      // Own-domain-first resolution: name-based edges over-approximate
      // overloads, so a name that *also* resolves inside the caller's own
      // domain (or shared) is assumed intra-domain. Deliberate
      // under-approximation — the inventory's edge list keeps it visible.
      bool resolves_home = false;
      for (size_t k : graph.callees[i]) {
        if (funcs[k].name != callee.name) continue;
        const std::string dom = ctx.EffectiveDomain(funcs[k]);
        if (dom == caller_dom || dom == kSharedDomain) {
          resolves_home = true;
          break;
        }
      }
      if (resolves_home) continue;
      auto lit = graph.edge_line.find({i, j});
      const int line = lit != graph.edge_line.end() ? lit->second : caller.line;
      std::string sanction = "violation";
      if (callee.is_const_method) {
        sanction = "const-read";
      } else if (callee_dom == "sim-kernel") {
        sanction = "event-api";  // ScheduleAt / now() — the event API itself.
      } else if (callee.crossing_point) {
        sanction = "crossing-point";
      } else {
        auto fit = files.find(caller.file);
        if (fit != files.end() &&
            IsSuppressed(*fit->second, line, "cross-domain-mutation")) {
          sanction = "allow";
        }
      }
      if (edges != nullptr) {
        edges->push_back(CrossingEdge{"call", caller.qualified, caller_dom,
                                      callee.qualified, callee_dom,
                                      caller.file, line, sanction});
      }
      if (sanction == "violation") {
        MaybeEmit(files, caller.file, line, "cross-domain-mutation",
                  "cross-domain mutation: `" + caller.qualified + "` (" +
                      caller_dom + ") -> call `" + callee.qualified +
                      "` -> (" + callee_dom +
                      "): non-const call crosses the shard boundary outside "
                      "the sanctioned crossings; schedule through the "
                      "sim-kernel event API, pass a message copy, declare "
                      "the callee `skyrise-domain-crossing(<why>)`, or "
                      "justify with allow(cross-domain-mutation)",
                  out);
      }
    }
  }
}

void CheckLockDiscipline(const SourceFile& file,
                         std::vector<Diagnostic>* out) {
  if (!SrcScoped(file.path) || out == nullptr) return;
  const bool sim_kernel = SimKernelFile(file.path);

  // Pass A: mutex declarations and guard mentions anywhere in the file.
  bool has_guard = false;
  int first_mutex_line = 0;
  std::string first_mutex_name;
  for (size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    for (size_t i = 0; i < line.size(); ++i) {
      const std::string tok = IdentAt(line, i);
      if (tok.empty()) continue;
      if (tok == "lock_guard" || tok == "scoped_lock" ||
          tok == "unique_lock" || tok == "shared_lock") {
        has_guard = true;
      }
      if ((tok == "mutex" || tok == "shared_mutex" ||
           tok == "recursive_mutex" || tok == "timed_mutex") &&
          first_mutex_line == 0) {
        // Declaration shape: `std::mutex name` — an identifier follows.
        size_t p = i + tok.size();
        while (p < line.size() &&
               std::isspace(static_cast<unsigned char>(line[p]))) {
          ++p;
        }
        const std::string name = IdentAt(line, p);
        if (!name.empty()) {
          first_mutex_line = static_cast<int>(li) + 1;
          first_mutex_name = name;
        }
      }
      i += tok.size() - 1;
    }
  }

  if (first_mutex_line != 0 && !has_guard) {
    EmitDiagnostic(
        file, first_mutex_line, "lock-discipline",
        "mutex `" + first_mutex_name +
            "` is declared but no RAII guard (lock_guard / scoped_lock / "
            "unique_lock) appears in this file; manual lock/unlock "
            "pairing does not survive exceptions or early returns",
        out);
  }

  // Pass B: per-line findings.
  for (size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    const int lineno = static_cast<int>(li) + 1;
    for (size_t i = 0; i < line.size(); ++i) {
      const std::string tok = IdentAt(line, i);
      if (tok.empty()) continue;
      const bool member_access =
          (i >= 1 && line[i - 1] == '.') ||
          (i >= 2 && line[i - 2] == '-' && line[i - 1] == '>');
      // Raw lock member calls, only in files that declare a mutex so
      // weak_ptr::lock() elsewhere stays silent.
      if (first_mutex_line != 0 && member_access &&
          (tok == "lock" || tok == "unlock" || tok == "try_lock")) {
        size_t p = i + tok.size();
        while (p < line.size() &&
               std::isspace(static_cast<unsigned char>(line[p]))) {
          ++p;
        }
        if (p < line.size() && line[p] == '(') {
          EmitDiagnostic(file, lineno, "lock-discipline",
                         "raw `." + tok +
                             "()` call; hold the mutex through a RAII guard "
                             "(std::lock_guard / std::scoped_lock) so every "
                             "path releases it",
                         out);
        }
      }
      if (!sim_kernel && tok.rfind("atomic", 0) == 0 && i >= 2 &&
          line[i - 1] == ':' && line[i - 2] == ':') {
        EmitDiagnostic(
            file, lineno, "lock-discipline",
            "std::" + tok +
                " outside the sim-kernel domain; cross-shard coordination "
                "belongs in the kernel's event API — atomics elsewhere hide "
                "an unsequenced cross-domain write",
            out);
      }
      if (!sim_kernel && tok == "thread_local") {
        EmitDiagnostic(
            file, lineno, "lock-discipline",
            "thread_local outside the sim-kernel domain; per-thread state "
            "breaks replay once shards move across workers — key state by "
            "shard/domain instead",
            out);
      }
      i += tok.size() - 1;
    }
  }
}

void CheckDomainAnnotations(const SourceFile& file,
                            std::vector<Diagnostic>* out) {
  if (out == nullptr) return;
  for (const auto& [line, name] : file.domain_notes) {
    if (KnownDomain(name)) continue;
    EmitDiagnostic(file, line, "domain-escape",
                   "unknown domain `" + name +
                       "` in skyrise-domain(...) annotation; built-in "
                       "domains: sim-kernel, network, storage-partition, "
                       "sandbox-fleet, coordinator, serving, shared",
                   out);
  }
}

std::string RenderDomainInventory(const SymbolIndex& index,
                                  const FileMap& files) {
  std::vector<CrossingEdge> edges;
  CheckDomainEscape(index, files, nullptr, &edges);
  const CallGraph graph = BuildCallGraph(index);
  CheckCrossDomainMutation(index, graph, files, nullptr, &edges);
  std::sort(edges.begin(), edges.end(),
            [](const CrossingEdge& a, const CrossingEdge& b) {
              return std::tie(a.file, a.line, a.kind, a.from, a.to) <
                     std::tie(b.file, b.line, b.kind, b.from, b.to);
            });

  std::vector<const ClassSym*> classes;
  for (const ClassSym& c : index.classes()) {
    if (SrcScoped(c.file)) classes.push_back(&c);
  }
  std::sort(classes.begin(), classes.end(),
            [](const ClassSym* a, const ClassSym* b) {
              return std::tie(a->file, a->line, a->qualified) <
                     std::tie(b->file, b->line, b->qualified);
            });

  // Named lambdas fold into their enclosing function's domain; listing them
  // would churn the ratchet on every body edit.
  std::vector<const FunctionSym*> funcs;
  for (const FunctionSym& f : index.functions()) {
    if (SrcScoped(f.file) && !f.is_lambda) funcs.push_back(&f);
  }
  std::sort(funcs.begin(), funcs.end(),
            [](const FunctionSym* a, const FunctionSym* b) {
              return std::tie(a->file, a->line, a->qualified) <
                     std::tie(b->file, b->line, b->qualified);
            });

  std::string out = "{\n  \"domains\": [";
  bool first = true;
  for (const std::string& d : BuiltinDomains()) {
    if (!first) out += ", ";
    first = false;
    AppendJsonString(d, &out);
  }
  out += "],\n  \"classes\": [\n";
  first = true;
  for (const ClassSym* c : classes) {
    if (!first) out += ",\n";
    first = false;
    out += "    {\"qualified\": ";
    AppendJsonString(c->qualified, &out);
    out += ", \"file\": ";
    AppendJsonString(c->file, &out);
    out += ", \"line\": " + std::to_string(c->line);
    out += ", \"domain\": ";
    AppendJsonString(c->domain, &out);
    out += ", \"source\": ";
    AppendJsonString(c->domain_source, &out);
    out += ", \"handles\": " + std::to_string(c->handles.size());
    out += "}";
  }
  if (!first) out += "\n";
  out += "  ],\n  \"functions\": [\n";
  first = true;
  for (const FunctionSym* f : funcs) {
    if (!first) out += ",\n";
    first = false;
    out += "    {\"qualified\": ";
    AppendJsonString(f->qualified, &out);
    out += ", \"file\": ";
    AppendJsonString(f->file, &out);
    out += ", \"line\": " + std::to_string(f->line);
    out += ", \"domain\": ";
    AppendJsonString(f->domain, &out);
    out += ", \"source\": ";
    AppendJsonString(f->domain_source, &out);
    if (f->crossing_point) {
      out += ", \"crossing_point\": true, \"rationale\": ";
      AppendJsonString(f->crossing_rationale, &out);
    }
    out += "}";
  }
  if (!first) out += "\n";
  out += "  ],\n  \"crossings\": [\n";
  first = true;
  for (const CrossingEdge& e : edges) {
    if (!first) out += ",\n";
    first = false;
    out += "    {\"kind\": ";
    AppendJsonString(e.kind, &out);
    out += ", \"from\": ";
    AppendJsonString(e.from, &out);
    out += ", \"from_domain\": ";
    AppendJsonString(e.from_domain, &out);
    out += ", \"to\": ";
    AppendJsonString(e.to, &out);
    out += ", \"to_domain\": ";
    AppendJsonString(e.to_domain, &out);
    out += ", \"file\": ";
    AppendJsonString(e.file, &out);
    out += ", \"line\": " + std::to_string(e.line);
    out += ", \"sanction\": ";
    AppendJsonString(e.sanction, &out);
    out += "}";
  }
  if (!first) out += "\n";
  out += "  ]\n}\n";
  return out;
}

std::string RenderDomainInventoryForTree(const std::string& root) {
  std::vector<SourceFile> sources;
  SymbolIndex index;
  for (const TreeFile& f : LoadTree(root, {"src"})) {
    sources.push_back(Preprocess(f.rel, f.contents));
  }
  for (const SourceFile& f : sources) index.AddFile(f);
  FileMap file_map;
  for (const SourceFile& f : sources) file_map[f.path] = &f;
  return RenderDomainInventory(index, file_map);
}

}  // namespace skyrise::check
