#include <cstdio>
#include <string>
#include <vector>

#include "checker.h"

/// CLI for the skyrise static-analysis pass.
///
///   skyrise_check [--root DIR] [--quiet] [dirs...]
///
/// With no dirs, lints the default simulation-facing trees: src, examples,
/// bench, tests. Exits 0 when clean, 1 on violations, 2 on usage errors.

namespace {

void PrintUsage() {
  std::fprintf(stderr,
               "usage: skyrise_check [--root DIR] [--quiet] [--list-rules] "
               "[dirs...]\n"
               "Lints .h/.hpp/.cc/.cpp files for skyrise determinism and "
               "error-handling invariants.\n"
               "Default dirs: src examples bench tests\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> dirs;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        PrintUsage();
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list-rules") {
      for (const std::string& rule : skyrise::check::Checker::RuleIds()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      PrintUsage();
      return 2;
    } else {
      dirs.push_back(arg);
    }
  }
  if (dirs.empty()) dirs = {"src", "examples", "bench", "tests"};

  const std::vector<skyrise::check::Diagnostic> diags =
      skyrise::check::CheckTree(root, dirs);
  for (const auto& d : diags) {
    std::printf("%s\n", skyrise::check::FormatDiagnostic(d).c_str());
  }
  if (!quiet) {
    std::fprintf(stderr, "skyrise_check: %zu violation(s)\n", diags.size());
  }
  return diags.empty() ? 0 : 1;
}
