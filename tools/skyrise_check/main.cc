#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "baseline.h"
#include "checker.h"
#include "domains.h"
#include "explain.h"
#include "nodiscard.h"
#include "sarif.h"
#include "state_audit.h"

/// CLI for the skyrise static-analysis pass.
///
///   skyrise_check [--root DIR] [--quiet] [--verbose] [--fix] [--jobs N]
///                 [--baseline FILE] [--write-baseline FILE]
///                 [--sarif FILE] [--state-inventory FILE]
///                 [--domain-inventory FILE] [--explain RULE] [dirs...]
///
/// With no dirs, lints the default trees: src, examples, bench, tests,
/// tools (the checker lints its own sources). `--fix` applies mechanical
/// rewrites (missing-nodiscard, pragma-once) in place before reporting;
/// `--baseline` suppresses findings recorded in FILE so CI fails only on new
/// ones; `--write-baseline` records the current findings and exits 0.
/// `--sarif` writes the post-baseline findings as SARIF 2.1.0 for GitHub
/// code-scanning upload; `--state-inventory` writes the shared-mutable-state
/// audit of src/ as JSON (see state_audit.h) and exits 0;
/// `--domain-inventory` does the same for the shard-ownership domain audit
/// (see domains.h). `--jobs N` caps the analysis worker pool (0 = hardware
/// concurrency; output is byte-identical for any job count); `--verbose`
/// reports per-phase timing. `--explain RULE` prints the rule's invariant
/// and a minimal violating example ("all" prints every rule) and exits.
/// Exits 0 when clean, 1 on violations, 2 on usage/IO errors.

namespace {

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: skyrise_check [--root DIR] [--quiet] [--verbose] [--fix]\n"
      "                     [--jobs N] [--baseline FILE] "
      "[--write-baseline FILE]\n"
      "                     [--sarif FILE] [--state-inventory FILE]\n"
      "                     [--domain-inventory FILE] [--explain RULE] "
      "[dirs...]\n"
      "Lints .h/.hpp/.cc/.cpp files for skyrise determinism and "
      "error-handling invariants.\n"
      "  --fix             apply mechanical fixes (missing-nodiscard, "
      "pragma-once) in place\n"
      "  --jobs N          worker threads for the per-file phases (0 = "
      "hardware concurrency)\n"
      "  --verbose         report per-phase timing on stderr\n"
      "  --baseline FILE   report only findings not recorded in FILE\n"
      "  --write-baseline FILE\n"
      "                    record current findings as the new baseline\n"
      "  --sarif FILE      also write findings (after baseline filtering)\n"
      "                    as SARIF 2.1.0 for code-scanning upload\n"
      "  --state-inventory FILE\n"
      "                    write the src/ static-state audit as JSON and "
      "exit\n"
      "  --domain-inventory FILE\n"
      "                    write the src/ shard-ownership domain audit as "
      "JSON and exit\n"
      "  --explain RULE    print RULE's invariant and a minimal violating\n"
      "                    example (RULE may be 'all'), then exit\n"
      "Default dirs: src examples bench tests tools\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baseline_path;
  std::string write_baseline_path;
  std::string sarif_path;
  std::string inventory_path;
  std::string domain_inventory_path;
  std::vector<std::string> dirs;
  bool quiet = false;
  bool verbose = false;
  bool fix = false;
  size_t jobs = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" || arg == "--baseline" || arg == "--write-baseline" ||
        arg == "--sarif" || arg == "--state-inventory" ||
        arg == "--domain-inventory" || arg == "--explain" ||
        arg == "--jobs") {
      if (i + 1 >= argc) {
        PrintUsage();
        return 2;
      }
      const std::string value = argv[++i];
      if (arg == "--root") {
        root = value;
      } else if (arg == "--baseline") {
        baseline_path = value;
      } else if (arg == "--sarif") {
        sarif_path = value;
      } else if (arg == "--state-inventory") {
        inventory_path = value;
      } else if (arg == "--domain-inventory") {
        domain_inventory_path = value;
      } else if (arg == "--jobs") {
        jobs = static_cast<size_t>(std::strtoul(value.c_str(), nullptr, 10));
      } else if (arg == "--explain") {
        const std::string text = skyrise::check::RenderExplain(value);
        if (text.empty()) {
          std::fprintf(stderr,
                       "skyrise_check: unknown rule `%s` (try --list-rules)\n",
                       value.c_str());
          return 2;
        }
        std::printf("%s", text.c_str());
        return 0;
      } else {
        write_baseline_path = value;
      }
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--list-rules") {
      for (const std::string& rule : skyrise::check::Checker::RuleIds()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      PrintUsage();
      return 2;
    } else {
      dirs.push_back(arg);
    }
  }
  if (dirs.empty()) dirs = {"src", "examples", "bench", "tests", "tools"};

  if (!inventory_path.empty()) {
    std::ofstream out(inventory_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "skyrise_check: cannot write %s\n",
                   inventory_path.c_str());
      return 2;
    }
    out << skyrise::check::RenderStateInventoryForTree(root);
    if (!quiet) {
      std::fprintf(stderr, "skyrise_check: wrote state inventory to %s\n",
                   inventory_path.c_str());
    }
    return 0;
  }

  if (!domain_inventory_path.empty()) {
    std::ofstream out(domain_inventory_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "skyrise_check: cannot write %s\n",
                   domain_inventory_path.c_str());
      return 2;
    }
    out << skyrise::check::RenderDomainInventoryForTree(root);
    if (!quiet) {
      std::fprintf(stderr, "skyrise_check: wrote domain inventory to %s\n",
                   domain_inventory_path.c_str());
    }
    return 0;
  }

  if (fix) {
    size_t fixed = 0;
    for (const skyrise::check::TreeFile& f :
         skyrise::check::LoadTree(root, dirs)) {
      const skyrise::check::SourceFile sf =
          skyrise::check::Preprocess(f.rel, f.contents);
      const std::string rewritten =
          skyrise::check::ApplyMechanicalFixes(sf, f.contents);
      if (rewritten == f.contents) continue;
      std::ofstream out(f.abs, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "skyrise_check: cannot write %s\n",
                     f.abs.c_str());
        return 2;
      }
      out << rewritten;
      ++fixed;
      if (!quiet) std::fprintf(stderr, "fixed: %s\n", f.rel.c_str());
    }
    if (!quiet) {
      std::fprintf(stderr, "skyrise_check: rewrote %zu file(s)\n", fixed);
    }
  }

  skyrise::check::PhaseTimings timings;
  std::vector<skyrise::check::Diagnostic> diags =
      skyrise::check::CheckTree(root, dirs, jobs, &timings);
  if (verbose) {
    std::fprintf(stderr,
                 "skyrise_check: %zu file(s), %zu job(s)\n"
                 "  preprocess  %8.1f ms\n"
                 "  collect     %8.1f ms\n"
                 "  index       %8.1f ms\n"
                 "  per-file    %8.1f ms\n"
                 "  interproc   %8.1f ms\n"
                 "  total       %8.1f ms\n",
                 timings.files, timings.jobs, timings.preprocess_ms,
                 timings.collect_ms, timings.index_ms, timings.per_file_ms,
                 timings.interproc_ms, timings.total_ms);
  }

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "skyrise_check: cannot write %s\n",
                   write_baseline_path.c_str());
      return 2;
    }
    out << skyrise::check::RenderBaseline(diags);
    if (!quiet) {
      std::fprintf(stderr, "skyrise_check: wrote %zu finding(s) to %s\n",
                   diags.size(), write_baseline_path.c_str());
    }
    return 0;
  }

  if (!baseline_path.empty()) {
    std::set<std::string> baseline;
    if (!skyrise::check::LoadBaselineFile(baseline_path, &baseline)) {
      std::fprintf(stderr, "skyrise_check: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    const size_t total = diags.size();
    diags = skyrise::check::FilterBaseline(diags, baseline);
    if (!quiet && total != diags.size()) {
      std::fprintf(stderr,
                   "skyrise_check: %zu finding(s) covered by baseline\n",
                   total - diags.size());
    }
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "skyrise_check: cannot write %s\n",
                   sarif_path.c_str());
      return 2;
    }
    out << skyrise::check::RenderSarif(diags);
    if (!quiet) {
      std::fprintf(stderr, "skyrise_check: wrote SARIF to %s\n",
                   sarif_path.c_str());
    }
  }

  for (const auto& d : diags) {
    std::printf("%s\n", skyrise::check::FormatDiagnostic(d).c_str());
  }
  if (!quiet) {
    std::fprintf(stderr, "skyrise_check: %zu violation(s)\n", diags.size());
  }
  return diags.empty() ? 0 : 1;
}
