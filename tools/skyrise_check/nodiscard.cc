#include "nodiscard.h"

#include <algorithm>

#include "lexer.h"

namespace skyrise::check {
namespace {

/// The rule covers library headers: everything under src/, plus
/// bare-filename headers so fixtures can exercise it. Implementation files
/// inherit the contract from the declaration, so they are out of scope.
bool NodiscardScoped(const SourceFile& file) {
  if (!file.is_header) return false;
  const std::string& p = file.path;
  if (p.find('/') == std::string::npos) return true;
  return p.rfind("src/", 0) == 0 || p.find("/src/") != std::string::npos;
}

bool IsSpecifier(const Token& t) {
  return t.Is("virtual") || t.Is("static") || t.Is("inline") ||
         t.Is("constexpr") || t.Is("explicit");
}

struct Finding {
  int line = 0;  ///< Line to insert/report at (declaration start).
  int col = 0;   ///< Column of the declaration's first token.
};

/// Token-level matcher for a template argument list; `>>` closes two.
size_t MatchAngle(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size() && i < open + 256; ++i) {
    const std::string& t = toks[i].text;
    if (t == "<") ++depth;
    if (t == ">") --depth;
    if (t == ">>") depth -= 2;
    if (depth <= 0) return i;
    if (t == ";") break;
  }
  return static_cast<size_t>(-1);
}

/// Declarations shaped `Status name(` / `Result<...> name(` whose
/// declaration start (after walking back over specifiers and attributes)
/// sits at a statement boundary and carries no `[[nodiscard]]`.
std::vector<Finding> FindMissing(const SourceFile& file) {
  std::vector<Finding> findings;
  if (!NodiscardScoped(file)) return findings;
  const std::vector<Token> toks = Lex(file);
  for (size_t i = 0; i < toks.size(); ++i) {
    const bool is_status = toks[i].Is("Status");
    const bool is_result =
        toks[i].Is("Result") && i + 1 < toks.size() && toks[i + 1].Is("<");
    if (!is_status && !is_result) continue;

    // Walk back over decl-specifiers and attributes to the declaration
    // start; remember whether any attribute named nodiscard.
    size_t j = i;
    bool saw_nodiscard = false;
    bool friend_decl = false;
    while (j > 0) {
      const Token& p = toks[j - 1];
      if (IsSpecifier(p)) {
        --j;
        continue;
      }
      if (p.Is("friend")) {
        friend_decl = true;
        --j;
        continue;
      }
      if (p.Is("]") && j >= 2 && toks[j - 2].Is("]")) {
        // Attribute `[[ ... ]]`: scan back for the double `[[`.
        size_t k = j - 2;
        bool closed = false;
        while (k > 0) {
          --k;
          if (toks[k].Is("nodiscard")) saw_nodiscard = true;
          if (toks[k].Is("[") && k > 0 && toks[k - 1].Is("[")) {
            j = k - 1;
            closed = true;
            break;
          }
        }
        if (!closed) break;
        continue;
      }
      break;
    }
    if (saw_nodiscard || friend_decl) continue;
    // Declaration start must sit at a statement/member boundary. Anything
    // else (`<`, `,`, `(`, `->`, `return`, `::`, `>`, `=`) is a use of the
    // type, not a function declaration we can annotate.
    if (j > 0) {
      const Token& b = toks[j - 1];
      if (!b.Is(";") && !b.Is("{") && !b.Is("}") && !b.Is(":")) continue;
    }

    // Forward: the full return type, then `name (`.
    size_t t = i;
    if (is_result) {
      const size_t close = MatchAngle(toks, i + 1);
      if (close == static_cast<size_t>(-1)) continue;
      t = close;
    }
    if (t + 2 >= toks.size()) continue;
    const Token& ret_mod = toks[t + 1];
    if (ret_mod.Is("*") || ret_mod.Is("&") || ret_mod.Is("&&")) continue;
    if (!ret_mod.IsIdent()) continue;  // Constructor / conversion / macro.
    if (!toks[t + 2].Is("(")) continue;  // Variable, or qualified name.
    findings.push_back(Finding{toks[j].line, toks[j].col});
  }
  return findings;
}

bool HasPragmaOnce(const SourceFile& file) {
  for (const std::string& line : file.raw) {
    const size_t b = line.find_first_not_of(" \t");
    if (b != std::string::npos && line.compare(b, 12, "#pragma once") == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

void CheckMissingNodiscard(const SourceFile& file,
                           std::vector<Diagnostic>* out) {
  for (const Finding& f : FindMissing(file)) {
    EmitDiagnostic(file, f.line, "missing-nodiscard",
                   "Status/Result-returning function lacks [[nodiscard]]; "
                   "callers can silently drop the error (fixable with --fix)",
                   out);
  }
}

std::string ApplyMechanicalFixes(const SourceFile& file,
                                 const std::string& contents) {
  struct Insertion {
    int line;
    int col;
    std::string text;
  };
  std::vector<Insertion> insertions;
  for (const Finding& f : FindMissing(file)) {
    if (IsSuppressed(file, f.line, "missing-nodiscard")) continue;
    insertions.push_back(Insertion{f.line, f.col, "[[nodiscard]] "});
  }
  const bool add_pragma = file.is_header && !HasPragmaOnce(file) &&
                          !IsSuppressed(file, 1, "pragma-once");
  if (insertions.empty() && !add_pragma) return contents;

  std::vector<std::string> lines = file.raw;
  // Bottom-up so earlier insertions don't shift later columns.
  std::sort(insertions.begin(), insertions.end(),
            [](const Insertion& a, const Insertion& b) {
              if (a.line != b.line) return a.line > b.line;
              return a.col > b.col;
            });
  for (const Insertion& ins : insertions) {
    const size_t idx = static_cast<size_t>(ins.line) - 1;
    if (idx >= lines.size()) continue;
    if (static_cast<size_t>(ins.col) <= lines[idx].size()) {
      lines[idx].insert(static_cast<size_t>(ins.col), ins.text);
    }
  }
  if (add_pragma) {
    lines.insert(lines.begin(), {"#pragma once", ""});
  }
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  // Preserve a missing trailing newline so --fix never churns on that alone.
  if (!contents.empty() && contents.back() != '\n' && !out.empty()) {
    out.pop_back();
  }
  return out;
}

}  // namespace skyrise::check
