#pragma once

#include <string>
#include <vector>

#include "callgraph.h"
#include "checker.h"
#include "symbols.h"

/// \file domains.h
/// Shard-ownership domain analysis — the certificate ROADMAP item 3
/// (deterministic parallel simulation) needs on top of the PR-7
/// shared-mutable-state audit. The static inventory proves src/ has no
/// unconfined globals; this pass proves *instance* state is confined too:
/// every type and function belongs to exactly one future shard domain, and
/// no reference mutates across a domain boundary outside the event API.
///
/// Domain model:
///  - Built-in domains mirror the natural sharding seams of the simulator
///    (see kBuiltinDomains): `sim-kernel` (the event queue and virtual
///    clock — the hub every shard synchronizes through), `network`,
///    `storage-partition`, `sandbox-fleet`, `coordinator`, `serving`, and
///    the pseudo-domain `shared` for passive value/utility code (common,
///    data, format, obs, pricing, datagen) that executes on whichever shard
///    calls it and retains no cross-call state of its own.
///  - Assignment: an explicit `// skyrise-domain(<name>)` comment on (or
///    above) a namespace, class, or function definition wins, innermost
///    first; otherwise the domain is inferred from the qualified name's
///    namespace segments (sim -> sim-kernel, net -> network, storage ->
///    storage-partition, faas -> sandbox-fleet, engine -> coordinator,
///    serving -> serving, everything else -> shared; `platform` maps to
///    shared explicitly — it is the composition root that builds, wires,
///    and drives the whole stack, not shard-resident code). Every
///    assignment records its provenance in the inventory, so inference is
///    explicit, not silent.
///  - Sanctioned crossing points: the sim-kernel event API (ScheduleAt /
///    event payloads — all cross-shard effects flow through it once the DES
///    shards), const/value reads (a copy cannot race), the obs registry
///    (shared domain), and functions declared boundary APIs with a
///    `// skyrise-domain-crossing(<rationale>)` comment. Everything else
///    that mutates across a boundary is a violation.
///
/// Rules (ids in checker.h):
///   domain-escape          a class in concrete domain A retains a handle
///                          (pointer/reference/smart-pointer member) to a
///                          class in concrete domain B != A. Witness:
///                          `A -> field f -> B (file:line)`. sim-kernel
///                          handles are exempt (the env handle *is* the
///                          event API); justified retained handles carry
///                          allow(domain-escape) with a rationale.
///   cross-domain-mutation  a function in concrete domain A calls a
///                          non-const method defined in concrete domain
///                          B != A outside the sanctioned crossings.
///                          Member-call resolution is own-domain-first: a
///                          name that also resolves inside A (or shared) is
///                          assumed intra-domain — the conservative
///                          direction for noise, made visible by the
///                          inventory's crossing-edge list.
///   lock-discipline        synchronization hygiene ahead of the first real
///                          locks: a mutex declared in a file with no RAII
///                          guard (lock_guard/scoped_lock/unique_lock),
///                          raw .lock()/.unlock()/.try_lock() member calls
///                          in mutex-declaring files, std::atomic outside
///                          sim-kernel, thread_local outside sim-kernel.
///
/// The machine-readable side is `--domain-inventory`: every src/ class and
/// function with its domain and provenance, plus every crossing edge (call
/// or field) with its sanction. The committed copy
/// (tools/skyrise_check/domain_inventory.json) is a CI ratchet diffed like
/// state_inventory.json.

namespace skyrise::check {

/// Built-in domain names; `shared` last. Annotations naming anything else
/// are themselves diagnosed (unknown domain).
extern const std::vector<std::string>& BuiltinDomains();

/// The pseudo-domain for passive value/utility code.
inline const char* kSharedDomain = "shared";

/// Maps a namespace segment to its inferred domain, or nullptr when the
/// segment implies nothing (class names, unknown namespaces).
const char* DomainForSegment(const std::string& segment);

/// Infers a domain from a qualified name's segments (first match wins);
/// returns kSharedDomain when no segment maps.
std::string InferDomainFromQualified(const std::string& qualified);

/// One cross-domain edge for the inventory: a call into another domain or a
/// retained field handle.
struct CrossingEdge {
  std::string kind;         ///< "call" | "field".
  std::string from;         ///< Qualified caller / owning class.
  std::string from_domain;
  std::string to;           ///< Qualified callee / pointee class.
  std::string to_domain;
  std::string file;         ///< Where the edge lives (caller side).
  int line = 0;
  /// "event-api" (into sim-kernel), "crossing-point" (declared boundary
  /// API), "const-read" (const method), "allow" (suppressed with rationale),
  /// or "violation".
  std::string sanction;
};

/// Flags unjustified cross-domain handle members (domain-escape) and
/// appends every cross-domain field edge to `edges` when non-null.
void CheckDomainEscape(const SymbolIndex& index, const FileMap& files,
                       std::vector<Diagnostic>* out,
                       std::vector<CrossingEdge>* edges);

/// Flags unjustified cross-domain mutations (cross-domain-mutation) and
/// appends every cross-domain call edge to `edges` when non-null.
void CheckCrossDomainMutation(const SymbolIndex& index, const CallGraph& graph,
                              const FileMap& files,
                              std::vector<Diagnostic>* out,
                              std::vector<CrossingEdge>* edges);

/// Lock/atomic/thread_local discipline over one file (src-scoped inside).
void CheckLockDiscipline(const SourceFile& file,
                         std::vector<Diagnostic>* out);

/// Diagnoses `skyrise-domain(...)` annotations naming an unknown domain.
void CheckDomainAnnotations(const SourceFile& file,
                            std::vector<Diagnostic>* out);

/// Renders the machine-readable domain inventory of every src-scoped class
/// and function plus all crossing edges as deterministic JSON (sorted,
/// trailing newline). CI regenerates this and diffs against the committed
/// tools/skyrise_check/domain_inventory.json.
std::string RenderDomainInventory(const SymbolIndex& index,
                                  const FileMap& files);

/// Convenience for the CLI and CI ratchet: indexes `root`/src from disk and
/// renders the inventory.
std::string RenderDomainInventoryForTree(const std::string& root);

}  // namespace skyrise::check
