#include "baseline.h"

#include <fstream>
#include <sstream>

namespace skyrise::check {

std::set<std::string> ParseBaseline(const std::string& contents) {
  std::set<std::string> lines;
  std::stringstream ss(contents);
  std::string line;
  while (std::getline(ss, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const size_t b = line.find_first_not_of(" \t");
    if (b == std::string::npos || line[b] == '#') continue;
    const size_t e = line.find_last_not_of(" \t");
    lines.insert(line.substr(b, e - b + 1));
  }
  return lines;
}

bool LoadBaselineFile(const std::string& path, std::set<std::string>* out) {
  out->clear();
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  *out = ParseBaseline(buf.str());
  return true;
}

std::vector<Diagnostic> FilterBaseline(const std::vector<Diagnostic>& diags,
                                       const std::set<std::string>& baseline) {
  std::vector<Diagnostic> fresh;
  for (const Diagnostic& d : diags) {
    if (baseline.count(FormatDiagnostic(d)) == 0) fresh.push_back(d);
  }
  return fresh;
}

std::string RenderBaseline(const std::vector<Diagnostic>& diags) {
  std::string out =
      "# skyrise_check baseline — accepted legacy findings, one "
      "FormatDiagnostic line each.\n"
      "# CI fails only on findings not listed here; the goal state is an "
      "empty file.\n"
      "# Regenerate with: skyrise_check --root . --write-baseline "
      "tools/skyrise_check/baseline.txt\n";
  for (const Diagnostic& d : diags) {
    out += FormatDiagnostic(d);
    out += '\n';
  }
  return out;
}

}  // namespace skyrise::check
