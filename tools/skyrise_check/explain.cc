#include "explain.h"

#include "checker.h"

namespace skyrise::check {

const std::vector<RuleDoc>& RuleDocs() {
  static const std::vector<RuleDoc> kDocs = {
      {"banned-api",
       "Simulated runs must be bit-reproducible from the seed. Wall clocks, "
       "ambient RNG engines, environment lookups, and thread identity leak "
       "host state into behavior; virtual time comes from "
       "sim::SimEnvironment::now() and randomness from skyrise::Rng streams.",
       "uint64_t Seed() {\n"
       "  return std::random_device{}();  // host entropy, differs per run\n"
       "}"},
      {"discarded-status",
       "Every fallible call's Status/Result must be consumed; a dropped "
       "status silently swallows I/O and invariant failures that the "
       "evaluation pipeline must surface as retries or report rows.",
       "void Flush() {\n"
       "  writer.Append(chunk);  // Status discarded at statement level\n"
       "}"},
      {"unordered-iteration",
       "Iteration order of unordered_map/unordered_set is hash-seed and "
       "platform dependent; looping over one must never feed emitted rows, "
       "shuffle partitions, or reports, or replay diverges across hosts.",
       "for (const auto& [k, v] : unordered_index) {\n"
       "  out.Emit(k, v);  // hash order leaks into output\n"
       "}"},
      {"pragma-once",
       "Every header guards itself with `#pragma once`; a missing guard "
       "turns an include-graph change into duplicate-definition noise far "
       "from the cause.",
       "// foo.h, first line is a declaration instead of #pragma once\n"
       "struct Foo {};"},
      {"using-namespace",
       "`using namespace` in a header injects the namespace into every "
       "includer, so overload resolution changes at a distance; headers "
       "qualify names instead.",
       "// foo.h\n"
       "using namespace std;  // leaks into all includers"},
      {"raw-stdout",
       "Library code reports through the logging/report layers so output "
       "stays machine-readable and capturable; std::cout belongs to CLI "
       "tools and examples only.",
       "// src/engine/worker.cc\n"
       "std::cout << \"done\\n\";  // bypasses the report writer"},
      {"chunk-copy",
       "A by-value data::Chunk parameter deep-copies whole column vectors on "
       "the morsel hot path; engine code takes `const data::Chunk&` (readers) "
       "or `data::Chunk&&` (owning sinks).",
       "void Consume(data::Chunk chunk);  // silent deep copy per morsel"},
      {"unbounded-retry",
       "A function that schedules retry work must show a bound — a deadline, "
       "a retry budget, or a max-attempts cap — in its own scope; unbounded "
       "retries amplify overload into retry storms.",
       "void OnFail() {\n"
       "  env->Schedule(backoff_ms, RetryFetch);  // no visible bound\n"
       "}"},
      {"sim-hot-path",
       "Simulator-core code runs per event, millions of times; a by-value "
       "std::function parameter or a container local constructed inside a "
       "function body costs one heap allocation per call. Move callbacks, "
       "hoist buffers into reused members, or justify amortized uses.",
       "// src/sim/queue.cc\n"
       "void Fire(std::function<void()> cb) {\n"
       "  std::vector<Event> batch;  // allocates per event\n"
       "}"},
      {"unchecked-result-access",
       "Accessing `.value()` / `*r` / `r->` on a Result<T> is only safe on "
       "paths where a dominating ok()/has_value() check proved success; an "
       "unchecked access turns an expected error into undefined behavior.",
       "auto r = Load(key);\n"
       "Use(r.value());  // no ok() check dominates this access"},
      {"status-path-drop",
       "A Status/Result bound from a fallible call must be consumed on every "
       "path out of its scope; a path that forgets it silently swallows the "
       "failure the binding was supposed to handle.",
       "Status s = Flush();\n"
       "if (fast_path) return;  // s never consumed on this path"},
      {"use-after-move",
       "A moved-from Chunk/Status/Result is in an unspecified state; using "
       "it before reinitialization reads garbage that may differ across "
       "stdlib implementations, breaking replay.",
       "Push(std::move(chunk));\n"
       "size_t n = chunk.rows();  // moved-from read"},
      {"span-leak",
       "Every obs::Tracer span begun must be ended on every path, or the "
       "trace tree holds open spans and per-query cost attribution "
       "undercounts; guard Begin and End under the same condition.",
       "auto span = tracer.Begin(\"scan\");\n"
       "if (empty) return;  // span never ended on this path"},
      {"unordered-taint",
       "Rows collected while iterating an unordered container inherit hash "
       "order; they must pass through std::sort (or an ordered container) "
       "before reaching an ordered sink such as a report or partition "
       "writer.",
       "for (const auto& [k, v] : unordered_stats) rows.push_back(v);\n"
       "report.Write(rows);  // hash order reaches the report"},
      {"missing-nodiscard",
       "Status/Result-returning declarations in src/ headers carry "
       "[[nodiscard]] so the compiler (with -Werror=unused-result) backstops "
       "the discarded-status rule soundly; the token rule is only the belt.",
       "// src/storage/client.h\n"
       "Status Put(const std::string& key);  // missing [[nodiscard]]"},
      {"transitive-nondeterminism",
       "Banning direct wall-clock/RNG calls is not enough: a src/ function "
       "whose call chain reaches a banned API through any wrapper, lambda, "
       "or other TU is still nondeterministic. The diagnostic carries the "
       "witness chain; allow(transitive-nondeterminism) on the source line "
       "blesses a source, on a call site blesses that edge.",
       "double Jitter() { return HostNoise(); }  // HostNoise -> rand()\n"
       "// caller in src/ is flagged: Jitter -> HostNoise reaches rand"},
      {"shared-mutable-state",
       "Parallel simulation requires every static-storage variable in src/ "
       "to be const-init, confined under a sim:: owner, or explicitly "
       "justified; anonymous mutable globals are cross-shard races waiting "
       "to happen. state_inventory.json is the CI ratchet.",
       "namespace skyrise::engine {\n"
       "int g_query_count = 0;  // mutable global, no owner\n"
       "}"},
      {"unbounded-retry-wrapper",
       "A helper that Schedule()s work and exposes no bound exports its "
       "retry obligation to callers: a src/ caller passing retry-ish "
       "arguments into such a helper without a bound of its own recreates "
       "the unbounded-retry hazard one level up.",
       "void Kick() {\n"
       "  Defer(retry_task);  // Defer schedules; neither side has a bound\n"
       "}"},
      {"span-transfer-leak",
       "A function returning an open span (SpanId return type, Begin in "
       "body) transfers the End obligation to its caller; a caller that "
       "drops the returned span on some path leaks it just as surely as a "
       "local Begin without End.",
       "auto span = StartScanSpan(tracer);\n"
       "if (cached) return hit;  // transferred span never ended"},
      {"domain-escape",
       "Every src/ type belongs to one shard-ownership domain (annotation "
       "or namespace inference). A class in one concrete domain that "
       "retains a mutable pointer/reference/smart-pointer handle to a class "
       "in a different concrete domain can mutate another shard's state "
       "behind the scheduler's back; cross-domain effects flow through the "
       "sim-kernel event API (sim-kernel handles are exempt — the env "
       "handle *is* that API). Witness: `A -> field f -> B`.",
       "namespace serving {\n"
       "struct Frontend {\n"
       "  faas::ComputePlatform* platform_;  // serving -> sandbox-fleet\n"
       "};\n"
       "}"},
      {"cross-domain-mutation",
       "A function in one concrete domain calling a non-const method "
       "defined in a different concrete domain mutates state the callee's "
       "shard owns, outside the sanctioned crossing points (the sim-kernel "
       "event API, const/value reads, functions declared "
       "`skyrise-domain-crossing(<why>)`). Once the DES shards, such a call "
       "is an unsynchronized cross-shard write.",
       "namespace engine {\n"
       "void Rebalance(storage::Partition& p) {\n"
       "  p.Compact();  // coordinator mutates storage-partition directly\n"
       "}\n"
       "}"},
      {"lock-discipline",
       "Synchronization hygiene ahead of the parallel DES: a mutex must be "
       "held through a RAII guard in its file (manual lock/unlock pairing "
       "does not survive exceptions or early returns), raw "
       ".lock()/.unlock() calls are flagged, and std::atomic / thread_local "
       "outside the sim-kernel domain hide cross-shard coordination that "
       "belongs in the kernel's event API.",
       "std::mutex mu;  // no lock_guard/scoped_lock anywhere in the file\n"
       "void Inc() { mu.lock(); ++n; mu.unlock(); }"},
  };
  return kDocs;
}

const RuleDoc* FindRuleDoc(const std::string& rule) {
  for (const RuleDoc& doc : RuleDocs()) {
    if (doc.id == rule) return &doc;
  }
  return nullptr;
}

namespace {

void AppendDoc(const RuleDoc& doc, std::string* out) {
  *out += doc.id + "\n";
  out->append(doc.id.size(), '-');
  *out += "\n\nInvariant (DESIGN.md section 6):\n  ";
  // Re-wrap the invariant text at the stored sentence flow; it is already a
  // single paragraph, so just indent it.
  for (char c : doc.invariant) {
    out->push_back(c);
    if (c == '\n') *out += "  ";
  }
  *out += "\n\nMinimal violating example:\n";
  *out += "  | ";
  for (char c : doc.example) {
    out->push_back(c);
    if (c == '\n') *out += "  | ";
  }
  *out += "\n\nSuppress with `// skyrise-check: allow(" + doc.id +
          ")` plus a rationale on the offending line or the line above.\n";
}

}  // namespace

std::string RenderExplain(const std::string& rule) {
  std::string out;
  if (rule == "all") {
    for (const RuleDoc& doc : RuleDocs()) {
      if (!out.empty()) out += "\n";
      AppendDoc(doc, &out);
    }
    return out;
  }
  const RuleDoc* doc = FindRuleDoc(rule);
  if (doc == nullptr) return "";
  AppendDoc(*doc, &out);
  return out;
}

}  // namespace skyrise::check
