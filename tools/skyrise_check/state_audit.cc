#include "state_audit.h"

#include <cstdio>

namespace skyrise::check {
namespace {

/// True when the qualified name contains a `sim` segment (`sim::Foo::x`,
/// `skyrise::sim::registry`).
bool SimOwned(const std::string& qualified) {
  size_t pos = 0;
  while (pos <= qualified.size()) {
    size_t end = qualified.find("::", pos);
    if (end == std::string::npos) end = qualified.size();
    if (qualified.compare(pos, end - pos, "sim") == 0) return true;
    if (end == qualified.size()) break;
    pos = end + 2;
  }
  return false;
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

const char* ClassifyStatic(const StaticVar& var) {
  if (var.is_const) return "const-init";
  if (SimOwned(var.qualified)) return "sim-confined";
  if (var.suppressed) return "suppressed";
  return "unconfined";
}

void CheckSharedMutableState(const SymbolIndex& index, const FileMap& files,
                             std::vector<Diagnostic>* out) {
  for (const StaticVar& var : index.statics()) {
    if (!SrcScoped(var.file)) continue;
    if (std::string(ClassifyStatic(var)) != "unconfined") continue;
    auto it = files.find(var.file);
    if (it == files.end()) continue;
    EmitDiagnostic(
        *it->second, var.line, "shared-mutable-state",
        "mutable " + std::string(StorageName(var.storage)) + " `" +
            var.qualified +
            "` is not confined (not const-init, not sim-owned); parallel "
            "simulation requires shared state behind sim:: owners — make it "
            "const, move it under sim::, or justify with "
            "allow(shared-mutable-state)",
        out);
  }
}

std::string RenderStateInventory(const SymbolIndex& index) {
  std::string out = "{\n  \"statics\": [\n";
  bool first = true;
  for (const StaticVar& var : index.statics()) {
    if (!SrcScoped(var.file)) continue;
    if (!first) out += ",\n";
    first = false;
    out += "    {\n      \"qualified\": ";
    AppendJsonString(var.qualified, &out);
    out += ",\n      \"file\": ";
    AppendJsonString(var.file, &out);
    out += ",\n      \"line\": " + std::to_string(var.line);
    out += ",\n      \"storage\": ";
    AppendJsonString(StorageName(var.storage), &out);
    out += ",\n      \"type\": ";
    AppendJsonString(var.type_text, &out);
    out += ",\n      \"const\": ";
    out += var.is_const ? "true" : "false";
    out += ",\n      \"thread_local\": ";
    out += var.thread_local_ ? "true" : "false";
    out += ",\n      \"classification\": ";
    AppendJsonString(ClassifyStatic(var), &out);
    out += "\n    }";
  }
  if (!first) out += "\n";
  out += "  ]\n}\n";
  return out;
}

std::string RenderStateInventoryForTree(const std::string& root) {
  SymbolIndex index;
  for (const TreeFile& f : LoadTree(root, {"src"})) {
    index.AddFile(Preprocess(f.rel, f.contents));
  }
  return RenderStateInventory(index);
}

}  // namespace skyrise::check
