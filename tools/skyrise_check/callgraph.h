#pragma once

#include <map>
#include <string>
#include <vector>

#include "checker.h"
#include "symbols.h"

/// \file callgraph.h
/// Cross-TU call graph over a SymbolIndex plus the two interprocedural rule
/// drivers that need reachability:
///
///   transitive-nondeterminism  a src/ function whose call chain reaches a
///                              direct banned-API use in some other function
///                              (any TU). The diagnostic carries the full
///                              witness chain (`F -> G -> H reaches
///                              steady_clock at file:line`) so a spurious
///                              edge from best-effort overload resolution is
///                              visible and suppressible at the call site.
///                              `allow(banned-api)` on the source line keeps
///                              sanctioning the *direct* use but the wrapper
///                              still taints its callers; only
///                              `allow(transitive-nondeterminism)` on the
///                              source line (blessed source) or on a call
///                              site (blessed edge) stops propagation.
///
///   unbounded-retry-wrapper    closes the unbounded-retry rule's wrapper
///                              loophole: a helper that Schedule()s work and
///                              exposes no deadline/budget/max-attempts bound
///                              exports that obligation to its callers; a
///                              src/ caller passing retry-ish arguments into
///                              such a helper without a visible bound of its
///                              own is flagged. Propagation stops at any
///                              function that has a bound (the clamp is
///                              visible there).
///
/// Edge resolution is best-effort by name: exact qualified-suffix match
/// first, then every same-named definition. Calls that resolve to nothing
/// (std::, externs) are counted as unknown callees and create no edges — the
/// degrade-to-silence direction.

namespace skyrise::check {

struct CallGraph {
  /// callees[i] / callers[i] index into SymbolIndex::functions(). Edges are
  /// deduplicated and sorted; self-edges (recursion) are kept.
  std::vector<std::vector<size_t>> callees;
  std::vector<std::vector<size_t>> callers;
  /// First call-site line for each (caller, callee) edge, for diagnostics.
  std::map<std::pair<size_t, size_t>, int> edge_line;
  /// Call sites whose name matched no indexed definition (std::, externs,
  /// member calls on opaque objects). Unknown callees contribute no edges.
  size_t unresolved_calls = 0;
};

CallGraph BuildCallGraph(const SymbolIndex& index);

/// Files by diagnostic path, for suppression lookup during emission.
using FileMap = std::map<std::string, const SourceFile*>;

void CheckTransitiveNondeterminism(const SymbolIndex& index,
                                   const CallGraph& graph,
                                   const FileMap& files,
                                   std::vector<Diagnostic>* out);

void CheckRetryWrappers(const SymbolIndex& index, const CallGraph& graph,
                        const FileMap& files, std::vector<Diagnostic>* out);

}  // namespace skyrise::check
