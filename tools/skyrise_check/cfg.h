#pragma once

#include <string>
#include <vector>

#include "lexer.h"

/// \file cfg.h
/// Function discovery and per-function control-flow structure for the
/// flow-sensitive rules. Two layers:
///
///  1. ExtractFunctions() classifies every `{...}` region in a token stream
///     and returns the ones that are function (or lambda) bodies, with the
///     parameter-list and capture-list token ranges attached. Classification
///     is heuristic (no semantic analysis); a brace it cannot prove to be a
///     function body is simply not analyzed — the flow rules stay silent
///     there, which is the conservative direction for a linter.
///
///  2. ParseFunctionBody() turns one body into a statement tree (blocks,
///     if/else, loops, switch, return/break/continue) over token index
///     ranges. The dataflow engine abstractly interprets this tree; loops
///     are handled by re-executing their body to a small fixpoint, so the
///     tree *is* the CFG (join points are the structured merge points).
///
/// Both layers must accept every file in the repo without crashing — there
/// is a test that runs them over the full tree.

namespace skyrise::check {

struct FunctionScope {
  std::string name;           ///< Best-effort callee name ("" for lambdas).
  int line = 0;               ///< Line of the opening brace.
  size_t body_begin = 0;      ///< Token index of `{`.
  size_t body_end = 0;        ///< Token index of the matching `}`.
  size_t params_begin = 0;    ///< Token index of `(`, or kNone.
  size_t params_end = 0;      ///< Token index of `)`, or kNone.
  size_t capture_begin = 0;   ///< Lambdas: token index of `[`, or kNone.
  size_t capture_end = 0;     ///< Lambdas: token index of `]`, or kNone.
  bool is_lambda = false;

  static constexpr size_t kNone = static_cast<size_t>(-1);
};

/// All function/lambda bodies in the stream, in body_begin order. Nested
/// scopes (lambdas inside functions) appear as separate entries; callers
/// analyzing an outer scope should treat inner scopes' body ranges as
/// opaque.
std::vector<FunctionScope> ExtractFunctions(const std::vector<Token>& toks,
                                            const BracketMap& brackets);

struct Stmt {
  enum class Kind {
    kBlock,     ///< `{ sub... }`
    kSimple,    ///< expression/declaration statement up to `;`
    kIf,        ///< sub[0] = then, sub[1] = else (optional)
    kLoop,      ///< for/while: sub[0] = body
    kDo,        ///< do-while: sub[0] = body
    kSwitch,    ///< sub[0] = body (case labels are join points)
    kTry,       ///< sub[0] = try block, sub[1..] = catch blocks
    kReturn,
    kBreak,
    kContinue,
  };
  Kind kind = Kind::kSimple;
  size_t begin = 0;  ///< First token index of the statement.
  size_t end = 0;    ///< Last token index (inclusive).
  /// kIf/kLoop/kDo/kSwitch: token range inside the condition parens
  /// (begin > end when absent). For C++17 `if (init; cond)` this is the
  /// full paren contents; the condition parser handles the split.
  size_t cond_begin = 1;
  size_t cond_end = 0;
  /// kLoop: true for range-for (`for (decl : expr)`).
  bool range_for = false;
  std::vector<Stmt> sub;
};

/// Parses the token range strictly inside a body's braces into a statement
/// tree rooted at a kBlock. Never throws; malformed regions degrade to
/// kSimple statements covering the remaining tokens.
Stmt ParseFunctionBody(const std::vector<Token>& toks,
                       const BracketMap& brackets, size_t body_begin,
                       size_t body_end);

}  // namespace skyrise::check
