#pragma once

#include <string>
#include <vector>

#include "callgraph.h"
#include "checker.h"
#include "symbols.h"

/// \file state_audit.h
/// Shared-mutable-state confinement audit — the inventory ROADMAP item 3
/// (deterministic parallel simulation) needs before the DES can shard.
/// Every static-storage variable in src/ is classified:
///
///   const-init    const/constexpr/constinit declaration — an immutable
///                 lookup table; safe to read from any shard.
///   sim-confined  lives under a `sim` namespace/class segment — owned by
///                 the simulation environment, which is per-run state the
///                 sharding layer already partitions.
///   suppressed    carries `allow(shared-mutable-state)` with an inline
///                 justification — audited by a human, the registry is
///                 reached through a handle the caller owns.
///   unconfined    none of the above: mutable state reachable from sim
///                 callbacks with no owner — flagged by the
///                 shared-mutable-state rule, and a CI ratchet fails when a
///                 new one appears in `state_inventory.json`.

namespace skyrise::check {

/// One of "const-init", "sim-confined", "suppressed", "unconfined".
const char* ClassifyStatic(const StaticVar& var);

/// Flags every unconfined src-scoped static (suppressions applied through
/// EmitDiagnostic as usual).
void CheckSharedMutableState(const SymbolIndex& index, const FileMap& files,
                             std::vector<Diagnostic>* out);

/// Renders the machine-readable inventory of every src-scoped static as
/// deterministic pretty-printed JSON (sorted by file/line; trailing
/// newline). CI regenerates this and diffs against the committed baseline.
std::string RenderStateInventory(const SymbolIndex& index);

/// Convenience for the CLI and CI ratchet: indexes `root`/src from disk and
/// renders the inventory.
std::string RenderStateInventoryForTree(const std::string& root);

}  // namespace skyrise::check
