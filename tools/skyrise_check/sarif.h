#pragma once

#include <string>
#include <vector>

#include "checker.h"

/// \file sarif.h
/// SARIF 2.1.0 rendering of skyrise_check diagnostics, so CI can upload the
/// run to GitHub code scanning and findings annotate PR diffs inline. One
/// run, one tool (`skyrise_check`), one rule entry per rule id that fired;
/// results reference rules by id, locations use repo-relative URIs. Output
/// is deterministic (diagnostics are already sorted by the checker).

namespace skyrise::check {

std::string RenderSarif(const std::vector<Diagnostic>& diags);

}  // namespace skyrise::check
