#include "checker.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <sstream>
#include <thread>

#include "callgraph.h"
#include "dataflow.h"
#include "domains.h"
#include "nodiscard.h"
#include "state_audit.h"
#include "symbols.h"

namespace skyrise::check {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// True when `path` lives under a top-level directory that may write to
/// stdout directly (CLI tools and examples narrate; library code must not).
bool StdoutExempt(const std::string& path) {
  for (const char* dir : {"tools/", "examples/"}) {
    if (path.rfind(dir, 0) == 0 || path.find(std::string("/") + dir) !=
                                       std::string::npos) {
      return true;
    }
  }
  return false;
}

/// True for files under the engine layer, where morsels flow through the
/// operator chain and a by-value data::Chunk parameter is a silent deep copy
/// on the hot path. Bare file names (no directory) are in scope so lint
/// fixtures exercise the rule.
bool EngineScoped(const std::string& path) {
  if (path.find('/') == std::string::npos) return true;
  return path.rfind("src/engine/", 0) == 0 ||
         path.find("/src/engine/") != std::string::npos;
}

/// True for simulator-core files, where every event fire crosses this code
/// and per-call allocations multiply by millions. Bare file names are in
/// scope only when they name hot-path fixtures, so the other rule fixtures
/// stay out of this rule's reach.
bool SimScoped(const std::string& path) {
  if (path.find('/') == std::string::npos) {
    return path.find("hot_path") != std::string::npos;
  }
  return path.rfind("src/sim/", 0) == 0 ||
         path.find("/src/sim/") != std::string::npos;
}

/// Case-insensitive substring search over identifier text.
bool ContainsCi(const std::string& haystack, const std::string& needle) {
  if (needle.size() > haystack.size()) return false;
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    size_t j = 0;
    while (j < needle.size() &&
           std::tolower(static_cast<unsigned char>(haystack[i + j])) ==
               std::tolower(static_cast<unsigned char>(needle[j]))) {
      ++j;
    }
    if (j == needle.size()) return true;
  }
  return false;
}

/// Parses rule ids out of a suppression comment body, e.g.
/// "skyrise-check: allow(banned-api, raw-stdout)".
void ParseAllows(const std::string& comment, int line,
                 std::map<int, std::set<std::string>>* allows) {
  const std::string marker = "skyrise-check: allow(";
  size_t pos = comment.find(marker);
  while (pos != std::string::npos) {
    const size_t open = pos + marker.size();
    const size_t close = comment.find(')', open);
    if (close == std::string::npos) break;
    std::string inside = comment.substr(open, close - open);
    std::string rule;
    std::stringstream ss(inside);
    while (std::getline(ss, rule, ',')) {
      const size_t b = rule.find_first_not_of(" \t");
      const size_t e = rule.find_last_not_of(" \t");
      if (b == std::string::npos) continue;
      (*allows)[line].insert(rule.substr(b, e - b + 1));
    }
    pos = comment.find(marker, close);
  }
}

/// Parses `skyrise-domain(<name>)` and `skyrise-domain-crossing(<rationale>)`
/// annotations out of a comment body. (The two markers cannot shadow each
/// other: the domain marker requires `(` right after "skyrise-domain".)
/// The marker must *lead* the comment (extra `/`, `!`, and whitespace
/// allowed), so prose that merely mentions the marker is not an annotation.
void ParseDomainNotes(const std::string& comment, int line, SourceFile* file) {
  auto trimmed = [](const std::string& s) {
    const size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos) return std::string();
    const size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
  };
  size_t lead = 0;
  while (lead < comment.size() &&
         (comment[lead] == '/' || comment[lead] == '!' ||
          comment[lead] == ' ' || comment[lead] == '\t')) {
    ++lead;
  }
  auto parse_one = [&](const std::string& marker,
                       std::map<int, std::string>* notes) {
    if (comment.compare(lead, marker.size(), marker) != 0) return;
    const size_t open = lead + marker.size();
    const size_t close = comment.find(')', open);
    if (close == std::string::npos) return;
    const std::string inside = trimmed(comment.substr(open, close - open));
    if (!inside.empty()) (*notes)[line] = inside;
  };
  parse_one("skyrise-domain-crossing(", &file->crossing_notes);
  parse_one("skyrise-domain(", &file->domain_notes);
}

/// Minimal deterministic worker pool: runs `fn(i)` for every i in [0, n)
/// across up to `jobs` threads (the calling thread works too). Callers write
/// results into pre-sized per-index slots, so the merged output is identical
/// for any job count.
void ParallelFor(size_t n, size_t jobs, const std::function<void(size_t)>& fn) {
  if (jobs <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  auto work = [&]() {
    for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
  };
  std::vector<std::thread> workers;
  const size_t extra = std::min(jobs, n) - 1;
  workers.reserve(extra);
  for (size_t t = 0; t < extra; ++t) workers.emplace_back(work);
  work();
  for (std::thread& w : workers) w.join();
}

/// Skips whitespace forward from `i` within a single line.
size_t SkipSpaces(const std::string& s, size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i;
}

/// Reads the identifier token starting at `i` (must be an ident char).
std::string ReadIdent(const std::string& s, size_t i) {
  size_t e = i;
  while (e < s.size() && IsIdentChar(s[e])) ++e;
  return s.substr(i, e - i);
}

/// Finds the matching `>` for a template argument list whose `<` is at
/// `open`, treating `>>` as two closers. Returns npos when unbalanced.
size_t MatchAngle(const std::string& s, size_t open) {
  int depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    if (s[i] == '>') {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string::npos;
}

}  // namespace

SourceFile Preprocess(const std::string& path, const std::string& contents) {
  SourceFile file;
  file.path = path;
  file.is_header = EndsWith(path, ".h") || EndsWith(path, ".hpp");

  // Split into lines (keep an empty trailing line off).
  {
    std::string line;
    for (char c : contents) {
      if (c == '\n') {
        file.raw.push_back(line);
        line.clear();
      } else if (c != '\r') {
        line.push_back(c);
      }
    }
    if (!line.empty()) file.raw.push_back(line);
  }

  enum class State { kCode, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // closing delimiter for a raw string, `)delim"`.

  for (size_t li = 0; li < file.raw.size(); ++li) {
    const std::string& in = file.raw[li];
    std::string out(in.size(), ' ');
    std::string comment_text;
    for (size_t i = 0; i < in.size(); ++i) {
      const char c = in[i];
      const char next = i + 1 < in.size() ? in[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            comment_text += in.substr(i);
            i = in.size();
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            ++i;
          } else if (c == '"' && i >= 1 && in[i - 1] == 'R') {
            // Raw string literal R"delim( ... )delim".
            const size_t open = in.find('(', i);
            if (open == std::string::npos) break;
            raw_delim = ")" + in.substr(i + 1, open - i - 1) + "\"";
            state = State::kRawString;
            i = open;
          } else if (c == '"') {
            state = State::kString;
          } else if (c == '\'') {
            state = State::kChar;
          } else {
            out[i] = c;
          }
          break;
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kCode;
            ++i;
          } else {
            comment_text.push_back(c);
          }
          break;
        case State::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            state = State::kCode;
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            state = State::kCode;
          }
          break;
        case State::kRawString: {
          const size_t end = in.find(raw_delim, i);
          if (end == std::string::npos) {
            i = in.size();
          } else {
            i = end + raw_delim.size() - 1;
            state = State::kCode;
          }
          break;
        }
      }
    }
    if (state == State::kBlockComment) {
      // Block comments continue; the whole remainder of the line was comment.
    }
    if (!comment_text.empty()) {
      ParseAllows(comment_text, static_cast<int>(li) + 1, &file.allows);
      ParseDomainNotes(comment_text, static_cast<int>(li) + 1, &file);
    }
    file.code.push_back(std::move(out));
  }
  return file;
}

const std::vector<std::string>& Checker::RuleIds() {
  static const std::vector<std::string> kRules = {
      "banned-api",          "discarded-status",
      "unordered-iteration", "pragma-once",
      "using-namespace",     "raw-stdout",
      "chunk-copy",          "unbounded-retry",
      "sim-hot-path",
      "unchecked-result-access",
      "status-path-drop",    "use-after-move",
      "span-leak",           "unordered-taint",
      "missing-nodiscard",
      "transitive-nondeterminism",
      "shared-mutable-state",
      "unbounded-retry-wrapper",
      "span-transfer-leak",
      "domain-escape",
      "cross-domain-mutation",
      "lock-discipline"};
  return kRules;
}

bool IsSuppressed(const SourceFile& file, int line, const std::string& rule) {
  for (int l : {line, line - 1}) {
    auto it = file.allows.find(l);
    if (it != file.allows.end() && it->second.count(rule) > 0) return true;
  }
  return false;
}

void EmitDiagnostic(const SourceFile& file, int line, const std::string& rule,
                    std::string message, std::vector<Diagnostic>* out) {
  if (IsSuppressed(file, line, rule)) return;
  out->push_back(Diagnostic{file.path, line, rule, std::move(message)});
}

namespace {

// Local alias so the pre-existing rule bodies keep reading naturally.
void Emit(const SourceFile& file, int line, const std::string& rule,
          std::string message, std::vector<Diagnostic>* out) {
  EmitDiagnostic(file, line, rule, std::move(message), out);
}

}  // namespace

void Checker::CollectFallibleNames(const SourceFile& file) {
  for (const std::string& line : file.code) {
    for (size_t i = 0; i < line.size(); ++i) {
      if (!IsIdentChar(line[i]) || (i > 0 && IsIdentChar(line[i - 1]))) {
        continue;
      }
      const std::string tok = ReadIdent(line, i);
      size_t after = i + tok.size();
      const bool is_void = tok == "void";
      if (tok == "Result") {
        const size_t open = SkipSpaces(line, after);
        if (open >= line.size() || line[open] != '<') continue;
        const size_t close = MatchAngle(line, open);
        if (close == std::string::npos) continue;  // multi-line template args
        after = close + 1;
      } else if (tok != "Status" && !is_void) {
        i = after - 1;
        continue;
      }
      // Parse `name(` or a qualified `A::B::name(` chain after the type.
      size_t p = SkipSpaces(line, after);
      std::string name;
      while (p < line.size() && IsIdentChar(line[p])) {
        name = ReadIdent(line, p);
        p = SkipSpaces(line, p + name.size());
        if (p + 1 < line.size() && line[p] == ':' && line[p + 1] == ':') {
          p = SkipSpaces(line, p + 2);
          continue;
        }
        break;
      }
      if (!name.empty() && p < line.size() && line[p] == '(') {
        (is_void ? &void_names_ : &fallible_names_)->insert(name);
        if (tok == "Result") result_names_.insert(name);
      }
      i = after - 1;
    }
  }
}

void Checker::CheckBannedApis(const SourceFile& file,
                              std::vector<Diagnostic>* out) const {
  // The banned-API table lives in symbols.cc (BannedApiReason) so the
  // direct rule here and the transitive taint roots in the symbol index can
  // never drift apart.
  for (size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    const int lineno = static_cast<int>(li) + 1;
    for (size_t i = 0; i < line.size(); ++i) {
      if (!IsIdentChar(line[i]) || (i > 0 && IsIdentChar(line[i - 1]))) {
        continue;
      }
      const std::string tok = ReadIdent(line, i);
      const size_t after = SkipSpaces(line, i + tok.size());
      const char follow = after < line.size() ? line[after] : '\0';
      const bool member_access =
          (i >= 1 && line[i - 1] == '.') ||
          (i >= 2 && line[i - 2] == '-' && line[i - 1] == '>');
      if (const char* why = BannedApiReason(tok)) {
        Emit(file, lineno, "banned-api", tok + ": " + why, out);
      }
      if (!member_access && follow == '(' && (tok == "rand" || tok == "time")) {
        Emit(file, lineno, "banned-api",
             tok + "(): nondeterministic; use skyrise::Rng / virtual time",
             out);
      }
      if (tok == "thread" && line.compare(i, 10, "thread::id") == 0) {
        Emit(file, lineno, "banned-api",
             "thread::id: host scheduling leaks into behavior", out);
      }
      i += tok.size() - 1;
    }
  }
}

void Checker::CheckDiscardedStatus(const SourceFile& file,
                                   std::vector<Diagnostic>* out) const {
  // Scan for statement-level call chains `a.b->C::name(...);` whose final
  // callee returns Status/Result. `prev` tracks the last significant
  // character across lines; a chain starting after `;`, `{`, or `}` is a
  // full statement, so a trailing `;` right after the matching close paren
  // means the returned value was dropped. (`:` is deliberately not a
  // statement start: it would re-anchor mid-chain after `::` qualifiers.)
  char prev = '{';
  const size_t nlines = file.code.size();
  size_t li = 0, ci = 0;
  auto advance = [&]() {
    ++ci;
    while (li < nlines && ci >= file.code[li].size()) {
      ++li;
      ci = 0;
    }
  };
  while (li < nlines) {
    const std::string& line = file.code[li];
    const char c = ci < line.size() ? line[ci] : ' ';
    if (std::isspace(static_cast<unsigned char>(c)) || line.empty()) {
      advance();
      continue;
    }
    const bool stmt_start = prev == ';' || prev == '{' || prev == '}';
    if (IsIdentChar(c) && stmt_start) {
      // Parse the chain on this line only (multi-line chains are rare and the
      // compiler's -Werror=unused-result backstops them).
      size_t p = ci;
      std::string name;
      bool chain_ok = false;
      const int start_line = static_cast<int>(li) + 1;
      while (p < line.size() && IsIdentChar(line[p])) {
        name = ReadIdent(line, p);
        p += name.size();
        if (p + 1 < line.size() && line[p] == ':' && line[p + 1] == ':') {
          p += 2;
        } else if (p + 1 < line.size() && line[p] == '-' &&
                   line[p + 1] == '>') {
          p += 2;
        } else if (p < line.size() && line[p] == '.' && p + 1 < line.size() &&
                   IsIdentChar(line[p + 1])) {
          p += 1;
        } else {
          chain_ok = p < line.size() && line[p] == '(';
          break;
        }
      }
      // A name that also has a `void name(...)` declaration somewhere in the
      // tree is ambiguous at token level (e.g. Json::Append vs
      // ColumnFileWriter::Append); skip it — -Werror=unused-result still
      // catches real discards of the fallible overload.
      if (chain_ok && fallible_names_.count(name) > 0 &&
          void_names_.count(name) == 0 && name != "return") {
        // Find the matching close paren, possibly across lines.
        size_t pl = li, pc = p;
        int depth = 0;
        bool closed = false;
        while (pl < nlines) {
          const std::string& l2 = file.code[pl];
          for (; pc < l2.size(); ++pc) {
            if (l2[pc] == '(') ++depth;
            if (l2[pc] == ')') {
              --depth;
              if (depth == 0) {
                closed = true;
                break;
              }
            }
          }
          if (closed) break;
          ++pl;
          pc = 0;
        }
        if (closed) {
          // Next significant char after ')' decides: `;` == discarded.
          size_t ql = pl, qc = pc + 1;
          char follow = '\0';
          while (ql < nlines) {
            const std::string& l3 = file.code[ql];
            while (qc < l3.size() &&
                   std::isspace(static_cast<unsigned char>(l3[qc]))) {
              ++qc;
            }
            if (qc < l3.size()) {
              follow = l3[qc];
              break;
            }
            ++ql;
            qc = 0;
          }
          if (follow == ';') {
            Emit(file, start_line, "discarded-status",
                 "result of fallible call `" + name +
                     "(...)` is discarded; check the Status or use "
                     "SKYRISE_CHECK_OK / SKYRISE_RETURN_IF_ERROR",
                 out);
          }
          // Resume right after the close paren; whatever follows (`;`, `.`,
          // `)`) updates `prev` through the normal scan.
          prev = ')';
          li = pl;
          ci = pc;
          advance();
          continue;
        }
      }
      // Not a flagged chain: consume the identifier and move on.
      prev = 'a';
      ci += ReadIdent(line, ci).size() - 1;
      advance();
      continue;
    }
    if (!std::isspace(static_cast<unsigned char>(c))) prev = c;
    advance();
  }
}

void Checker::CheckUnorderedIteration(const SourceFile& file,
                                      std::vector<Diagnostic>* out) const {
  // Pass A: names declared with an unordered container type in this file.
  std::set<std::string> unordered_vars;
  for (const std::string& line : file.code) {
    for (size_t i = 0; i < line.size(); ++i) {
      if (!IsIdentChar(line[i]) || (i > 0 && IsIdentChar(line[i - 1]))) {
        continue;
      }
      const std::string tok = ReadIdent(line, i);
      i += tok.size() - 1;
      if (tok != "unordered_map" && tok != "unordered_set") continue;
      size_t p = SkipSpaces(line, i + 1);
      if (p < line.size() && line[p] == '<') {
        const size_t close = MatchAngle(line, p);
        if (close == std::string::npos) continue;
        p = close + 1;
      }
      p = SkipSpaces(line, p);
      while (p < line.size() && (line[p] == '*' || line[p] == '&')) {
        p = SkipSpaces(line, p + 1);
      }
      if (p < line.size() && IsIdentChar(line[p])) {
        unordered_vars.insert(ReadIdent(line, p));
      }
    }
  }
  if (unordered_vars.empty()) return;

  // Pass B: any `for (...)` whose header mentions one of those names — both
  // range-for and iterator forms touch the container's hash order.
  for (size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    size_t pos = 0;
    while ((pos = line.find("for", pos)) != std::string::npos) {
      const bool word =
          (pos == 0 || !IsIdentChar(line[pos - 1])) &&
          (pos + 3 >= line.size() || !IsIdentChar(line[pos + 3]));
      if (!word) {
        pos += 3;
        continue;
      }
      const size_t open = SkipSpaces(line, pos + 3);
      if (open >= line.size() || line[open] != '(') {
        pos += 3;
        continue;
      }
      // Collect the parenthesized header, possibly spanning lines.
      std::string header;
      int depth = 0;
      size_t hl = li, hc = open;
      bool closed = false;
      while (hl < file.code.size() && !closed) {
        const std::string& l2 = file.code[hl];
        for (; hc < l2.size(); ++hc) {
          if (l2[hc] == '(') ++depth;
          if (l2[hc] == ')') {
            --depth;
            if (depth == 0) {
              closed = true;
              break;
            }
          }
          header.push_back(l2[hc]);
        }
        ++hl;
        hc = 0;
        header.push_back(' ');
      }
      for (size_t i = 0; i < header.size(); ++i) {
        if (!IsIdentChar(header[i]) ||
            (i > 0 && IsIdentChar(header[i - 1]))) {
          continue;
        }
        const std::string tok = ReadIdent(header, i);
        i += tok.size() - 1;
        if (unordered_vars.count(tok) > 0) {
          Emit(file, static_cast<int>(li) + 1, "unordered-iteration",
               "loop over unordered container `" + tok +
                   "`: hash order is seed/platform dependent; sort before "
                   "emitting or switch to std::map",
               out);
          break;
        }
      }
      pos += 3;
    }
  }
}

void Checker::CheckHeaderHygiene(const SourceFile& file,
                                 std::vector<Diagnostic>* out) const {
  if (file.is_header) {
    bool has_pragma = false;
    for (const std::string& line : file.raw) {
      const size_t b = line.find_first_not_of(" \t");
      if (b != std::string::npos && line.compare(b, 12, "#pragma once") == 0) {
        has_pragma = true;
        break;
      }
    }
    if (!has_pragma) {
      Emit(file, 1, "pragma-once", "header is missing `#pragma once`", out);
    }
    for (size_t li = 0; li < file.code.size(); ++li) {
      const std::string& line = file.code[li];
      const size_t pos = line.find("using");
      if (pos == std::string::npos) continue;
      if (pos > 0 && IsIdentChar(line[pos - 1])) continue;
      const size_t rest = SkipSpaces(line, pos + 5);
      if (line.compare(rest, 9, "namespace") == 0) {
        Emit(file, static_cast<int>(li) + 1, "using-namespace",
             "`using namespace` in a header leaks into every includer", out);
      }
    }
  }
  if (!StdoutExempt(file.path)) {
    for (size_t li = 0; li < file.code.size(); ++li) {
      const std::string& line = file.code[li];
      size_t pos = 0;
      while ((pos = line.find("cout", pos)) != std::string::npos) {
        const bool word =
            (pos == 0 || !IsIdentChar(line[pos - 1])) &&
            (pos + 4 >= line.size() || !IsIdentChar(line[pos + 4]));
        if (word) {
          Emit(file, static_cast<int>(li) + 1, "raw-stdout",
               "std::cout in library code; use the logging layer or a "
               "report writer",
               out);
          break;
        }
        pos += 4;
      }
    }
  }
}

void Checker::CheckChunkCopy(const SourceFile& file,
                             std::vector<Diagnostic>* out) const {
  if (!EngineScoped(file.path)) return;
  for (size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    for (size_t i = 0; i < line.size(); ++i) {
      if (!IsIdentChar(line[i]) || (i > 0 && IsIdentChar(line[i - 1]))) {
        continue;
      }
      const std::string tok = ReadIdent(line, i);
      if (tok != "Chunk") {
        i += tok.size() - 1;
        continue;
      }
      // A by-value parameter reads `Chunk name` followed by `,`, `)`, `=`
      // (default argument), or the line end, in a position opened by `(` or
      // `,`. References, rvalue refs, pointers, template arguments, return
      // types, members, and locals all fail one of the two checks.
      const size_t after = SkipSpaces(line, i + tok.size());
      if (after >= line.size() || !IsIdentChar(line[after])) {
        i += tok.size() - 1;
        continue;
      }
      const std::string param = ReadIdent(line, after);
      const size_t fq = SkipSpaces(line, after + param.size());
      const char follow = fq < line.size() ? line[fq] : '\0';
      if (follow != ',' && follow != ')' && follow != '=' && follow != '\0') {
        i += tok.size() - 1;
        continue;
      }
      // Walk back over a `data::`-style qualifier and an optional `const`.
      size_t b = i;
      while (b >= 2 && line[b - 1] == ':' && line[b - 2] == ':') {
        size_t q = b - 2;
        while (q > 0 && IsIdentChar(line[q - 1])) --q;
        b = q;
      }
      size_t p = b;
      while (p > 0 && std::isspace(static_cast<unsigned char>(line[p - 1]))) {
        --p;
      }
      if (p >= 5 && line.compare(p - 5, 5, "const") == 0 &&
          (p == 5 || !IsIdentChar(line[p - 6]))) {
        p -= 5;
        while (p > 0 &&
               std::isspace(static_cast<unsigned char>(line[p - 1]))) {
          --p;
        }
      }
      char before = '\0';
      if (p > 0) {
        before = line[p - 1];
      } else {
        // Wrapped parameter list: the previous line's last significant
        // character decides.
        for (size_t pl = li; pl > 0; --pl) {
          const size_t e = file.code[pl - 1].find_last_not_of(" \t");
          if (e != std::string::npos) {
            before = file.code[pl - 1][e];
            break;
          }
        }
      }
      if (before != '(' && before != ',') {
        i += tok.size() - 1;
        continue;
      }
      Emit(file, static_cast<int>(li) + 1, "chunk-copy",
           "pass-by-value data::Chunk parameter `" + param +
               "` deep-copies column vectors on the morsel path; take "
               "`const data::Chunk&` or `data::Chunk&&`",
           out);
      i += tok.size() - 1;
    }
  }
}

void Checker::CheckUnboundedRetry(const SourceFile& file,
                                  std::vector<Diagnostic>* out) const {
  if (!SrcScoped(file.path)) return;
  const std::vector<Token> toks = Lex(file);
  const BracketMap brackets = PairBrackets(toks);
  for (const FunctionScope& fn : ExtractFunctions(toks, brackets)) {
    // Lambdas are scanned as part of their enclosing function, whose scope
    // is where the bound (a max-attempts cap, deadline, or budget) lives.
    if (fn.is_lambda) continue;
    const size_t scan_begin =
        fn.params_begin != FunctionScope::kNone ? fn.params_begin
                                                : fn.body_begin;
    // Trigger: a Schedule(...) call whose argument tokens (including any
    // lambda body inside the call) mention retry-ish work.
    int trigger_line = 0;
    for (size_t i = fn.body_begin + 1; i < fn.body_end && trigger_line == 0;
         ++i) {
      if (!toks[i].IsIdent() || !toks[i].Is("Schedule")) continue;
      if (i + 1 >= toks.size() || !toks[i + 1].Is("(")) continue;
      const size_t close = brackets.MatchOf(i + 1);
      if (close == BracketMap::kUnmatched) continue;
      for (size_t j = i + 2; j < close; ++j) {
        if (toks[j].IsIdent() && (ContainsCi(toks[j].text, "retry") ||
                                  ContainsCi(toks[j].text, "backoff") ||
                                  ContainsCi(toks[j].text, "attempt"))) {
          trigger_line = toks[i].line;
          break;
        }
      }
    }
    if (trigger_line == 0) continue;
    // Bound: any identifier in the function mentioning a budget, a
    // deadline, or a max-attempts cap shows the retry loop is clamped.
    bool bounded = false;
    for (size_t i = scan_begin; i <= fn.body_end && !bounded; ++i) {
      if (!toks[i].IsIdent()) continue;
      bounded = ContainsCi(toks[i].text, "budget") ||
                ContainsCi(toks[i].text, "deadline") ||
                (ContainsCi(toks[i].text, "max") &&
                 ContainsCi(toks[i].text, "attempt"));
    }
    if (bounded) continue;
    Emit(file, trigger_line, "unbounded-retry",
         "`" + (fn.name.empty() ? std::string("<function>") : fn.name) +
             "` schedules retry work with no visible bound (no deadline, "
             "retry budget, or max-attempts cap in scope); unbounded "
             "retries amplify overload",
         out);
  }
}

void Checker::CheckSimHotPath(const SourceFile& file,
                              std::vector<Diagnostic>* out) const {
  if (!SimScoped(file.path)) return;

  // Half A: by-value std::function parameters. Same parse shape as
  // chunk-copy — references, pointers, and rvalue refs all fail the
  // follow-character check, and the walk-back proves parameter position.
  for (size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    size_t pos = 0;
    while ((pos = line.find("std::function", pos)) != std::string::npos) {
      const size_t start = pos;
      pos += 13;
      if (start > 0 && IsIdentChar(line[start - 1])) continue;
      const size_t open = SkipSpaces(line, start + 13);
      if (open >= line.size() || line[open] != '<') continue;
      const size_t close = MatchAngle(line, open);
      if (close == std::string::npos) continue;
      const size_t np = SkipSpaces(line, close + 1);
      if (np >= line.size() || !IsIdentChar(line[np])) continue;
      const std::string param = ReadIdent(line, np);
      const size_t fq = SkipSpaces(line, np + param.size());
      const char follow = fq < line.size() ? line[fq] : '\0';
      if (follow != ',' && follow != ')' && follow != '=' && follow != '\0') {
        continue;
      }
      // Walk back over an optional `const`; the character before the type
      // must open a parameter (`(` or `,`), possibly on the previous line.
      size_t b = start;
      while (b > 0 && std::isspace(static_cast<unsigned char>(line[b - 1]))) {
        --b;
      }
      if (b >= 5 && line.compare(b - 5, 5, "const") == 0 &&
          (b == 5 || !IsIdentChar(line[b - 6]))) {
        b -= 5;
        while (b > 0 &&
               std::isspace(static_cast<unsigned char>(line[b - 1]))) {
          --b;
        }
      }
      char before = '\0';
      if (b > 0) {
        before = line[b - 1];
      } else {
        for (size_t pl = li; pl > 0; --pl) {
          const size_t e = file.code[pl - 1].find_last_not_of(" \t");
          if (e != std::string::npos) {
            before = file.code[pl - 1][e];
            break;
          }
        }
      }
      if (before != '(' && before != ',') continue;
      Emit(file, static_cast<int>(li) + 1, "sim-hot-path",
           "by-value std::function parameter `" + param +
               "` heap-allocates a copy per call on the simulator hot path; "
               "take it by rvalue reference (and move it) or use "
               "sim::EventCallback",
           out);
    }
  }

  // Half B: standard containers constructed inside function bodies — one
  // allocation (or more) per call on code that runs per event.
  const std::vector<Token> toks = Lex(file);
  const BracketMap brackets = PairBrackets(toks);
  for (const FunctionScope& fn : ExtractFunctions(toks, brackets)) {
    // Lambda bodies sit inside their enclosing function's token range, so
    // scanning only non-lambda scopes covers them without double-reporting.
    if (fn.is_lambda) continue;
    for (size_t i = fn.body_begin + 1; i + 1 < fn.body_end; ++i) {
      if (!toks[i].IsIdent()) continue;
      const bool container =
          toks[i].Is("vector") || toks[i].Is("deque") || toks[i].Is("map") ||
          toks[i].Is("set") || toks[i].Is("unordered_map") ||
          toks[i].Is("unordered_set");
      if (!container) continue;
      if (i < 2 || !toks[i - 1].Is("::") || !toks[i - 2].Is("std")) continue;
      // `static` / `constexpr` locals are constructed once, not per call.
      bool once = false;
      for (size_t j = i - 2; j > fn.body_begin; --j) {
        const Token& q = toks[j - 1];
        if (q.Is("const")) continue;
        once = q.Is("static") || q.Is("constexpr");
        break;
      }
      if (once) continue;
      if (!toks[i + 1].Is("<")) continue;
      // Match the template argument list over tokens (`>>` closes two
      // levels); statement punctuation means this was a comparison, not a
      // declaration.
      int depth = 0;
      size_t close = 0;
      for (size_t k = i + 1; k < fn.body_end; ++k) {
        const std::string& t = toks[k].text;
        if (t == "<") {
          ++depth;
        } else if (t == ">") {
          if (--depth == 0) {
            close = k;
            break;
          }
        } else if (t == ">>") {
          depth -= 2;
          if (depth <= 0) {
            close = k;
            break;
          }
        } else if (t == ";" || t == "{" || t == "}") {
          break;
        }
      }
      if (close == 0 || close + 2 >= fn.body_end) continue;
      // A declaration reads `std::vector<T> name` followed by an
      // initializer or `;`. Pointers, references, and nested type names
      // (`::iterator`) all miss this shape.
      const Token& name = toks[close + 1];
      if (!name.IsIdent()) continue;
      const std::string& after = toks[close + 2].text;
      if (after != ";" && after != "(" && after != "{" && after != "=") {
        continue;
      }
      Emit(file, toks[i].line, "sim-hot-path",
           "`std::" + toks[i].text + "` local `" + name.text +
               "` is constructed per call on the simulator hot path; hoist "
               "it into a reused member buffer, or add an allow comment "
               "stating why the cost is amortized",
           out);
    }
  }
}

void Checker::CheckFile(const SourceFile& file,
                        std::vector<Diagnostic>* out) const {
  CheckBannedApis(file, out);
  CheckDiscardedStatus(file, out);
  CheckUnorderedIteration(file, out);
  CheckHeaderHygiene(file, out);
  CheckChunkCopy(file, out);
  CheckUnboundedRetry(file, out);
  CheckSimHotPath(file, out);
  const FlowContext ctx{&result_names_, &fallible_names_, &void_names_,
                        &span_source_names_};
  CheckFlowRules(file, ctx, out);
  CheckMissingNodiscard(file, out);
  CheckLockDiscipline(file, out);
  CheckDomainAnnotations(file, out);
}

std::vector<Diagnostic> Checker::CheckSources(
    const std::vector<std::pair<std::string, std::string>>& path_contents,
    size_t jobs, PhaseTimings* timings) {
  // skyrise-check: allow(banned-api) — the tool timing its own phases.
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  auto ms = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };
  if (jobs == 0) {
    jobs = std::thread::hardware_concurrency();
    if (jobs == 0) jobs = 1;
  }
  const size_t n = path_contents.size();

  // Phase 1 (parallel): preprocess into per-file slots.
  std::vector<SourceFile> files(n);
  ParallelFor(n, jobs, [&](size_t i) {
    files[i] = Preprocess(path_contents[i].first, path_contents[i].second);
  });
  const auto t_pre = Clock::now();

  // Phase 2 (sequential): the fallible-name harvest mutates shared sets; it
  // is a cheap line scan, not worth slot-merging.
  for (const SourceFile& f : files) CollectFallibleNames(f);
  const auto t_collect = Clock::now();

  // Phase 3 (parallel): per-file symbol indexes, merged in file order — the
  // result is identical to sequential AddFile calls, so span sources, taint
  // roots, and retry obligations cross TU boundaries deterministically.
  std::vector<SymbolIndex> index_slots(n);
  ParallelFor(n, jobs, [&](size_t i) { index_slots[i].AddFile(files[i]); });
  SymbolIndex index;
  for (SymbolIndex& s : index_slots) index.Merge(std::move(s));
  span_source_names_ = index.SpanSourceNames();
  const auto t_index = Clock::now();

  // Phase 4 (parallel): per-file rule passes. CheckFile only reads `this`
  // and the file; diagnostics land in per-file slots merged in file order.
  std::vector<std::vector<Diagnostic>> diag_slots(n);
  ParallelFor(n, jobs, [&](size_t i) { CheckFile(files[i], &diag_slots[i]); });
  std::vector<Diagnostic> diags;
  for (std::vector<Diagnostic>& slot : diag_slots) {
    diags.insert(diags.end(), std::make_move_iterator(slot.begin()),
                 std::make_move_iterator(slot.end()));
  }
  const auto t_per_file = Clock::now();

  // Phase 5 (sequential): whole-program passes over the shared read-only
  // index and call graph.
  const CallGraph graph = BuildCallGraph(index);
  FileMap file_map;
  for (const SourceFile& f : files) file_map[f.path] = &f;
  CheckTransitiveNondeterminism(index, graph, file_map, &diags);
  CheckRetryWrappers(index, graph, file_map, &diags);
  CheckSharedMutableState(index, file_map, &diags);
  CheckDomainEscape(index, file_map, &diags, nullptr);
  CheckCrossDomainMutation(index, graph, file_map, &diags, nullptr);
  const auto t_end = Clock::now();

  if (timings != nullptr) {
    timings->preprocess_ms = ms(t0, t_pre);
    timings->collect_ms = ms(t_pre, t_collect);
    timings->index_ms = ms(t_collect, t_index);
    timings->per_file_ms = ms(t_index, t_per_file);
    timings->interproc_ms = ms(t_per_file, t_end);
    timings->total_ms = ms(t0, t_end);
    timings->files = n;
    timings->jobs = n == 0 ? 1 : std::min(jobs, n);
  }

  std::sort(diags.begin(), diags.end());
  return diags;
}

std::vector<TreeFile> LoadTree(const std::string& root,
                               const std::vector<std::string>& dirs) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  for (const std::string& dir : dirs) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".hpp" && ext != ".cc" && ext != ".cpp") {
        continue;
      }
      // Lint-test fixtures violate the rules on purpose.
      if (entry.path().string().find("/fixtures/") != std::string::npos) {
        continue;
      }
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<TreeFile> files;
  files.reserve(paths.size());
  for (const std::string& p : paths) {
    std::ifstream in(p);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string rel = p;
    const std::string prefix = (fs::path(root) / "").string();
    if (rel.rfind(prefix, 0) == 0) rel = rel.substr(prefix.size());
    files.push_back(TreeFile{rel, p, buf.str()});
  }
  return files;
}

std::vector<Diagnostic> CheckTree(const std::string& root,
                                  const std::vector<std::string>& dirs,
                                  size_t jobs, PhaseTimings* timings) {
  std::vector<std::pair<std::string, std::string>> sources;
  for (TreeFile& f : LoadTree(root, dirs)) {
    sources.emplace_back(std::move(f.rel), std::move(f.contents));
  }
  Checker checker;
  return checker.CheckSources(sources, jobs, timings);
}

std::string FormatDiagnostic(const Diagnostic& diag) {
  return diag.file + ":" + std::to_string(diag.line) + ": [" + diag.rule +
         "] " + diag.message;
}

}  // namespace skyrise::check
