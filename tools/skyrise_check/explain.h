#pragma once

#include <string>
#include <vector>

/// \file explain.h
/// `--explain <rule>` support: each rule carries the invariant it guards
/// (the same statement DESIGN.md §6 records) and a minimal violating
/// example, so a developer hitting a finding can see *why* the rule exists
/// without leaving the terminal. A doc_check-style test asserts three-way
/// sync: every id in Checker::RuleIds() has a RuleDoc, every RuleDoc id is a
/// real rule, and every id has a DESIGN.md §6 entry (and vice versa).

namespace skyrise::check {

struct RuleDoc {
  std::string id;
  std::string invariant;  ///< What the rule guards and why, one paragraph.
  std::string example;    ///< Minimal violating snippet.
};

/// One doc per rule id in Checker::RuleIds(), in the same order.
const std::vector<RuleDoc>& RuleDocs();

/// The doc for `rule`, or nullptr when unknown.
const RuleDoc* FindRuleDoc(const std::string& rule);

/// Renders the `--explain` output for one rule, or for every rule when
/// `rule` is "all". Empty string for an unknown rule.
std::string RenderExplain(const std::string& rule);

}  // namespace skyrise::check
