#pragma once

#include <string>
#include <vector>

#include "checker.h"

/// \file lexer.h
/// Token stream for the flow-sensitive half of skyrise_check. Lexes the
/// comment/literal-blanked `SourceFile::code` lines (so tokens never come
/// from strings or comments) into identifiers, numbers, and punctuators with
/// line/column positions, skipping preprocessor directives (including
/// backslash continuations). This is deliberately not a C++ parser: the CFG
/// builder and dataflow engine on top only need statement/brace structure
/// and identifier adjacency, which a token stream captures exactly.

namespace skyrise::check {

struct Token {
  enum class Kind { kIdent, kNumber, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;
  int line = 0;  ///< 1-based source line.
  int col = 0;   ///< 0-based column in the raw line.

  bool Is(const char* s) const { return text == s; }
  bool IsIdent() const { return kind == Kind::kIdent; }
};

/// Lexes a preprocessed file into tokens. Never fails: unknown bytes are
/// emitted as single-character punctuators.
std::vector<Token> Lex(const SourceFile& file);

/// Bracket pairing over a token stream: for every `(`/`[`/`{` token, the
/// index of its matching closer, and vice versa. Unbalanced brackets map to
/// `kUnmatched` so downstream passes can bail gracefully instead of walking
/// out of range.
struct BracketMap {
  static constexpr size_t kUnmatched = static_cast<size_t>(-1);
  std::vector<size_t> match;  ///< match[i] = index of partner, or kUnmatched.

  size_t MatchOf(size_t i) const {
    return i < match.size() ? match[i] : kUnmatched;
  }
};

BracketMap PairBrackets(const std::vector<Token>& toks);

}  // namespace skyrise::check
