#include "dataflow.h"

#include <algorithm>
#include <map>
#include <tuple>

namespace skyrise::check {
namespace {

constexpr size_t kNone = FunctionScope::kNone;

enum class VarKind { kResult, kStatus, kSpan, kChunk, kCollector };
enum class CheckState { kUnknown, kOk, kErr };

/// Abstract per-variable facts. The lattice is finite, so loop bodies reach
/// a fixpoint after a bounded number of re-executions.
struct VarState {
  VarKind kind = VarKind::kStatus;
  CheckState checked = CheckState::kUnknown;
  bool moved = false;
  bool used = false;     ///< Read/consumed at least once on this path.
  bool open = false;     ///< Span begun and not yet ended on this path.
  bool escaped = false;  ///< Left local reasoning (captured, aliased...).
  bool tainted = false;  ///< Holds unordered-iteration-ordered contents.
  bool call_origin = false;   ///< Bound from a fallible (non-OK) call.
  bool ordered_type = false;  ///< Collector is std::map/std::set — safe.
  bool transfer = false;  ///< Span received from a span-returning helper.
  int decl_line = 0;
  int origin_line = 0;  ///< Begin / move / taint site for the diagnostic.
  std::string guard;    ///< Condition text the span was opened under.

  auto Key() const {
    return std::tie(kind, checked, moved, used, open, escaped, tainted,
                    call_origin, ordered_type, transfer, guard);
  }
  bool operator==(const VarState& o) const { return Key() == o.Key(); }
};

using AbsState = std::map<std::string, VarState>;

bool SameState(const AbsState& a, const AbsState& b) {
  if (a.size() != b.size()) return false;
  auto it = b.begin();
  for (const auto& [name, st] : a) {
    if (it->first != name || !(it->second == st)) return false;
    ++it;
  }
  return true;
}

/// Result of abstractly executing a statement: the fall-through state (when
/// control can reach the next statement) plus any states that exited via
/// break/continue, to be joined at the enclosing loop/switch.
struct Flow {
  bool falls = true;
  AbsState state;
  std::vector<AbsState> breaks;
  std::vector<AbsState> continues;
};

struct CondAtom {
  std::string var;
  bool positive = true;  ///< `x.ok()` vs `!x.ok()`.
};

struct CondInfo {
  enum class Shape { kNone, kSingle, kAnd, kOr };
  Shape shape = Shape::kNone;
  std::vector<CondAtom> atoms;
};

bool IsValueToken(const Token& t) {
  return t.IsIdent() || t.kind == Token::Kind::kNumber || t.Is(")") ||
         t.Is("]");
}

const std::set<std::string>& DerefNames() {
  static const std::set<std::string> kNames = {"ValueOrDie", "ValueUnsafe",
                                               "value"};
  return kNames;
}

const std::set<std::string>& ReinitNames() {
  static const std::set<std::string> kNames = {"clear", "Clear", "reset",
                                               "Reset"};
  return kNames;
}

/// Tracer methods that take a span id without transferring ownership.
const std::set<std::string>& SpanNeutralCallees() {
  static const std::set<std::string> kNames = {"SetArg", "Instant", "Begin",
                                               "Find", "AddCost"};
  return kNames;
}

/// Collector mutators that pull loop values in (taint sources when the loop
/// iterates an unordered container).
const std::set<std::string>& CollectorAppendNames() {
  static const std::set<std::string> kNames = {
      "push_back", "emplace_back", "insert", "emplace", "Append", "push",
      "append"};
  return kNames;
}

/// Collector methods that serialize contents in iteration order.
const std::set<std::string>& CollectorSinkNames() {
  static const std::set<std::string> kNames = {"Dump", "Render", "Write",
                                               "Serialize", "Export"};
  return kNames;
}

class FunctionAnalyzer {
 public:
  FunctionAnalyzer(const SourceFile& file, const FlowContext& ctx,
                   const std::vector<Token>& toks, const BracketMap& brackets,
                   const std::vector<FunctionScope>& all_scopes,
                   const std::set<std::string>& unordered_names,
                   std::vector<Diagnostic>* out)
      : file_(file),
        ctx_(ctx),
        toks_(toks),
        brackets_(brackets),
        unordered_names_(unordered_names),
        out_(out) {
    for (const FunctionScope& s : all_scopes) {
      scope_entries_[s.is_lambda ? s.capture_begin : s.body_begin] = &s;
    }
  }

  void Analyze(const FunctionScope& scope) {
    scope_ = &scope;
    AbsState state;
    TrackParams(scope, &state);
    const Stmt root =
        ParseFunctionBody(toks_, brackets_, scope.body_begin, scope.body_end);
    unordered_depth_ = 0;
    const Flow flow = Exec(root, std::move(state));
    if (flow.falls) ExitChecks(flow.state, toks_[scope.body_end].line);
  }

 private:
  // --- Diagnostics -------------------------------------------------------

  void Emit(int line, const std::string& rule, const std::string& dedupe,
            std::string message) {
    if (!emitted_.insert(rule + ":" + std::to_string(line) + ":" + dedupe)
             .second) {
      return;
    }
    EmitDiagnostic(file_, line, rule, std::move(message), out_);
  }

  void ExitChecks(const AbsState& state, int exit_line) {
    for (const auto& [name, st] : state) ScopeEndCheck(name, st, exit_line);
  }

  /// Applied when a variable's scope ends on a falling path: at return
  /// statements, at the end of the function, and for branch-local variables
  /// at the join after their branch.
  void ScopeEndCheck(const std::string& name, const VarState& st,
                     int exit_line) {
    if (st.escaped) return;
    if (st.kind == VarKind::kSpan && st.open) {
      if (st.transfer) {
        Emit(st.origin_line, "span-transfer-leak", name,
             "span `" + name + "` received open from a span-returning "
             "helper here is not ended on the path leaving scope at line " +
             std::to_string(exit_line) + "; the call transferred the End "
             "obligation — End()/EndWith() it on every path (or hand it "
             "off)");
      } else {
        Emit(st.origin_line, "span-leak", name,
             "span `" + name + "` opened here is not ended on the path "
             "leaving scope at line " + std::to_string(exit_line) +
             "; every path must End()/EndWith() it (or hand it off)");
      }
    }
    if ((st.kind == VarKind::kStatus || st.kind == VarKind::kResult) &&
        st.call_origin && !st.used) {
      Emit(st.decl_line, "status-path-drop", name,
           "`" + name + "` holds a Status/Result that is never consumed on "
           "the path leaving scope at line " + std::to_string(exit_line) +
           "; check, return, or propagate it on every path");
    }
  }

  void TaintSink(const std::string& name, const VarState& st, int line) {
    Emit(line, "unordered-taint", name,
         "`" + name + "` was filled from unordered-container iteration "
         "(line " + std::to_string(st.origin_line) + ") and flows into an "
         "ordered sink without an intervening sort; sort it first");
  }

  // --- Parameter and declaration tracking --------------------------------

  void TrackParams(const FunctionScope& scope, AbsState* state) {
    if (scope.params_begin == kNone || scope.params_end == kNone) return;
    size_t i = scope.params_begin + 1;
    const size_t end = scope.params_end;
    while (i < end) {
      // One parameter: up to `,` at depth 0.
      size_t stop = i;
      {
        size_t j = i;
        while (j < end) {
          const std::string& t = toks_[j].text;
          if (t == ",") break;
          if (t == "(" || t == "[" || t == "{" || t == "<") {
            const size_t m = t == "<" ? MatchAngleTok(j) : brackets_.MatchOf(j);
            if (m == kNone || m >= end) {
              j = end;
              break;
            }
            j = m + 1;
            continue;
          }
          ++j;
        }
        stop = j;
      }
      TrackOneParam(i, stop, state);
      i = stop + 1;
    }
  }

  void TrackOneParam(size_t b, size_t e, AbsState* state) {
    // Cut off a default argument.
    for (size_t j = b; j < e; ++j) {
      if (toks_[j].Is("=")) {
        e = j;
        break;
      }
    }
    if (e <= b) return;
    VarKind kind = VarKind::kChunk;
    bool by_value = true;
    bool found = false;
    for (size_t j = b; j < e; ++j) {
      const std::string& t = toks_[j].text;
      if (t == "&" || t == "&&") by_value = false;
      if (t == "Result" && j + 1 < e && toks_[j + 1].Is("<")) {
        kind = VarKind::kResult;
        found = true;
      } else if (t == "Chunk") {
        kind = VarKind::kChunk;
        found = true;
      } else if (t == "SpanId") {
        kind = VarKind::kSpan;
        found = true;
      }
    }
    if (!found) return;
    // Parameter name: the last identifier of the segment.
    size_t name_idx = kNone;
    for (size_t j = e; j > b;) {
      --j;
      if (toks_[j].IsIdent()) {
        name_idx = j;
        break;
      }
    }
    if (name_idx == kNone) return;
    const std::string& name = toks_[name_idx].text;
    if (name == "Result" || name == "Chunk" || name == "SpanId" ||
        name == "const") {
      return;  // Unnamed parameter.
    }
    VarState st;
    st.kind = kind;
    st.decl_line = toks_[name_idx].line;
    if (kind == VarKind::kSpan) st.escaped = true;  // Caller owns it.
    if (kind == VarKind::kResult) st.used = true;   // Caller's value.
    if (kind == VarKind::kChunk && !by_value) {
      // Only by-value / rvalue-ref parameters are move-tracked; a move from
      // `const Chunk&` would not compile as a real move anyway.
      const bool rvalue_ref = std::any_of(
          toks_.begin() + static_cast<long>(b),
          toks_.begin() + static_cast<long>(e),
          [](const Token& t) { return t.Is("&&"); });
      if (!rvalue_ref) return;
    }
    (*state)[name] = st;
  }

  /// Token-level template-argument matcher (`>>` closes two).
  size_t MatchAngleTok(size_t open) const {
    int depth = 0;
    for (size_t i = open; i < toks_.size() && i < open + 256; ++i) {
      const std::string& t = toks_[i].text;
      if (t == "<") ++depth;
      if (t == ">") --depth;
      if (t == ">>") depth -= 2;
      if (depth <= 0) return i;
      if (t == ";") break;
    }
    return kNone;
  }

  struct RhsInfo {
    enum class Origin {
      kNone,
      kResultCall,
      kStatusCall,
      kSpanBegin,
      kSpanTransfer,  ///< Call to a helper that returns an open span.
      kNoSpan,
    };
    Origin origin = Origin::kNone;
    int line = 0;
  };

  /// Classifies the initializer/assignment RHS in [b, e] by its first
  /// top-level call.
  RhsInfo ClassifyRhs(size_t b, size_t e) const {
    RhsInfo info;
    for (size_t i = b; i <= e && i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.Is("kNoSpan")) {
        info.origin = RhsInfo::Origin::kNoSpan;
        info.line = t.line;
        return info;
      }
      // A `[` before any call means a lambda or subscript initializer; the
      // value's provenance is not a direct fallible call.
      if (t.Is("[")) return info;
      if (!t.IsIdent() || i + 1 > e || !toks_[i + 1].Is("(")) continue;
      const std::string& callee = t.text;
      info.line = t.line;
      if (callee == "Begin") {
        info.origin = RhsInfo::Origin::kSpanBegin;
        return info;
      }
      if (ctx_.span_source_names != nullptr &&
          ctx_.span_source_names->count(callee) > 0) {
        info.origin = RhsInfo::Origin::kSpanTransfer;
        return info;
      }
      // A chained call (`F(...).status()`, `F(...).ValueUnsafe()`) no longer
      // yields the callee's return type.
      const size_t close = brackets_.MatchOf(i + 1);
      const bool chained = close != kNone && close + 1 <= e &&
                           (toks_[close + 1].Is(".") ||
                            toks_[close + 1].Is("->"));
      if (chained) return info;
      if (ctx_.result_names != nullptr && ctx_.result_names->count(callee)) {
        info.origin = RhsInfo::Origin::kResultCall;
        return info;
      }
      if (ctx_.status_names != nullptr && ctx_.status_names->count(callee) &&
          (ctx_.void_names == nullptr || !ctx_.void_names->count(callee))) {
        info.origin = callee == "OK" ? RhsInfo::Origin::kNone
                                     : RhsInfo::Origin::kStatusCall;
        return info;
      }
      return info;  // Some other call: unknown value.
    }
    return info;
  }

  struct DeclInfo {
    bool recognized = false;
    std::string name;
    VarKind kind = VarKind::kStatus;
    bool ordered_type = false;
    bool has_kind = false;
    size_t init_begin = kNone;  ///< First RHS token, or kNone.
    size_t init_end = 0;
    int line = 0;
  };

  /// Best-effort local-declaration parse at the start of a statement.
  DeclInfo ParseDecl(size_t b, size_t e) const {
    DeclInfo d;
    size_t i = b;
    auto skip_quals = [&]() {
      while (i <= e && (toks_[i].Is("const") || toks_[i].Is("static") ||
                        toks_[i].Is("constexpr"))) {
        ++i;
      }
    };
    skip_quals();
    if (i > e) return d;
    const std::string& t0 = toks_[i].text;
    bool is_auto = false;
    if (t0 == "auto") {
      is_auto = true;
      ++i;
    } else if (t0 == "Status" ) {
      d.kind = VarKind::kStatus;
      d.has_kind = true;
      ++i;
    } else if (t0 == "Result" && i + 1 <= e && toks_[i + 1].Is("<")) {
      const size_t m = MatchAngleTok(i + 1);
      if (m == kNone || m > e) return d;
      d.kind = VarKind::kResult;
      d.has_kind = true;
      i = m + 1;
    } else if (t0 == "Json") {
      d.kind = VarKind::kCollector;
      d.has_kind = true;
      ++i;
    } else {
      // Qualified spellings: obs::SpanId, data::Chunk, std::vector<...>.
      size_t j = i;
      if (j + 2 <= e && toks_[j].IsIdent() && toks_[j + 1].Is("::")) j += 2;
      const std::string& ty = j <= e ? toks_[j].text : std::string();
      if (ty == "SpanId") {
        d.kind = VarKind::kSpan;
        d.has_kind = true;
        i = j + 1;
      } else if (ty == "Chunk") {
        d.kind = VarKind::kChunk;
        d.has_kind = true;
        i = j + 1;
      } else if (ty == "vector" || ty == "deque" || ty == "map" ||
                 ty == "set" || ty == "multimap" || ty == "multiset") {
        if (j + 1 > e || !toks_[j + 1].Is("<")) return d;
        const size_t m = MatchAngleTok(j + 1);
        if (m == kNone || m > e) return d;
        d.kind = VarKind::kCollector;
        d.ordered_type = ty != "vector" && ty != "deque";
        d.has_kind = true;
        i = m + 1;
      } else {
        return d;
      }
    }
    // Skip ref/pointer declarators; references alias something else, so only
    // track plain value declarations (and give up on pointers).
    if (i <= e && (toks_[i].Is("&") || toks_[i].Is("&&") || toks_[i].Is("*"))) {
      return d;
    }
    if (i > e || !toks_[i].IsIdent() || toks_[i].Is("operator")) return d;
    d.name = toks_[i].text;
    d.line = toks_[i].line;
    const size_t after = i + 1;
    if (after > e) {
      if (!is_auto && d.has_kind) d.recognized = true;  // `Status s;`
      return d;
    }
    const std::string& nx = toks_[after].text;
    if (nx == "=") {
      d.init_begin = after + 1;
      d.init_end = e;
      d.recognized = is_auto ? true : d.has_kind;
      if (is_auto) d.has_kind = false;
      return d;
    }
    if ((nx == "(" || nx == "{") && d.has_kind && !is_auto) {
      const size_t m = brackets_.MatchOf(after);
      if (m != kNone && m <= e) {
        d.init_begin = after + 1;
        d.init_end = m > after ? m - 1 : after;
        d.recognized = true;
      }
      return d;
    }
    if (nx == ";" || after == e) {
      d.recognized = !is_auto && d.has_kind;
      return d;
    }
    return d;
  }

  // --- Token-stream event interpretation ---------------------------------

  struct ScanFlags {
    bool in_condition = false;
    bool in_return = false;
  };

  /// Interprets one token range (a statement, condition, or capture-list
  /// segment) against `state`. Nested function/lambda scopes are treated as
  /// boundaries: their capture lists are scanned (moves and uses of
  /// enclosing locals), their parameter lists and bodies are skipped.
  void ScanTokens(size_t b, size_t e, AbsState* state, ScanFlags flags) {
    if (b == kNone || b > e) return;
    std::vector<std::string> frames;
    bool assign_seen = false;
    size_t i = b;
    while (i <= e && i < toks_.size()) {
      auto entry = scope_entries_.find(i);
      if (entry != scope_entries_.end() && entry->second != scope_ &&
          entry->second->body_end <= e) {
        const FunctionScope* child = entry->second;
        if (child->is_lambda && child->capture_begin != kNone) {
          ScanCaptureList(*child, state);
        }
        i = child->body_end + 1;
        continue;
      }
      const Token& t = toks_[i];
      if (t.Is("(") || t.Is("{") || t.Is("[")) {
        frames.push_back(i > 0 && toks_[i - 1].IsIdent() ? toks_[i - 1].text
                                                         : std::string());
        ++i;
        continue;
      }
      if (t.Is(")") || t.Is("}") || t.Is("]")) {
        if (!frames.empty()) frames.pop_back();
        ++i;
        continue;
      }
      if (t.Is("=") && frames.empty()) assign_seen = true;
      if (t.IsIdent() && state->count(t.text) > 0) {
        const bool member =
            i > b && (toks_[i - 1].Is(".") || toks_[i - 1].Is("->") ||
                      toks_[i - 1].Is("::"));
        if (!member) {
          HandleVarMention(i, b, e, frames, assign_seen, flags, state);
        }
      }
      ++i;
    }
  }

  void UseVar(const std::string& name, int line, VarState* st) {
    if (st->moved) {
      Emit(line, "use-after-move", name,
           "`" + name + "` is used here after being moved from on line " +
               std::to_string(st->origin_line) +
               " on at least one path; reinitialize it before reuse");
      st->moved = false;  // Report once per move site.
    }
    st->used = true;
  }

  void DerefResult(const std::string& name, int line, VarState* st) {
    if (st->kind != VarKind::kResult) return;
    if (st->checked != CheckState::kOk) {
      const char* why = st->checked == CheckState::kErr
                            ? "on a path where `ok()` was false"
                            : "without a dominating `ok()` check on this path";
      Emit(line, "unchecked-result-access", name,
           "`" + name + "` is dereferenced " + why +
               "; branch on `" + name + ".ok()` first");
      st->checked = CheckState::kOk;  // Avoid cascading reports.
    }
  }

  void HandleVarMention(size_t i, size_t stmt_begin, size_t stmt_end,
                        const std::vector<std::string>& frames,
                        bool assign_seen, ScanFlags flags, AbsState* state) {
    const std::string& name = toks_[i].text;
    VarState& st = (*state)[name];
    const int line = toks_[i].line;
    const Token* next = i + 1 <= stmt_end ? &toks_[i + 1] : nullptr;
    const Token* prev = i > stmt_begin ? &toks_[i - 1] : nullptr;

    // `SKYRISE_CHECK_OK(x.status())` aborts unless ok — the canonical
    // assert-style check; everything after it is a checked path.
    for (const std::string& f : frames) {
      if (f == "SKYRISE_CHECK_OK") {
        st.checked = CheckState::kOk;
        st.used = true;
        return;
      }
    }
    // `std::sort(rows.begin(), rows.end())` cleanses taint no matter how the
    // collector is mentioned inside the call.
    if (st.kind == VarKind::kCollector) {
      for (const std::string& f : frames) {
        if (f == "sort" || f == "stable_sort") {
          st.tainted = false;
          st.used = true;
          return;
        }
      }
    }

    // Member/method access: `x.m(...)` / `x->...`.
    if (next != nullptr && (next->Is(".") || next->Is("->"))) {
      if (next->Is("->")) {
        UseVar(name, line, &st);
        DerefResult(name, line, &st);
        return;
      }
      const Token* m = i + 2 <= stmt_end ? &toks_[i + 2] : nullptr;
      if (m != nullptr && m->IsIdent()) {
        if (ReinitNames().count(m->text) > 0) {
          st.moved = false;
          st.used = true;
          st.tainted = false;
          return;
        }
        if (m->text == "ok" || m->text == "has_value") {
          UseVar(name, line, &st);
          // Outside branch conditions, reading ok() is assert-style
          // awareness (SKYRISE_CHECK(x.ok()), ASSERT_TRUE(x.ok()), ternary
          // guards); the path is considered checked from here on.
          if (!flags.in_condition) st.checked = CheckState::kOk;
          return;
        }
        if (DerefNames().count(m->text) > 0) {
          UseVar(name, line, &st);
          DerefResult(name, line, &st);
          return;
        }
        if (st.kind == VarKind::kCollector) {
          HandleCollectorMethod(name, m->text, line, &st);
          return;
        }
        UseVar(name, line, &st);
        return;
      }
      UseVar(name, line, &st);
      return;
    }

    // Assignment target `x = ...`: classify the RHS, reset the state. (The
    // RHS tokens are scanned by the enclosing loop as usual; uses of other
    // variables there are still observed.)
    if (next != nullptr && next->Is("=") && frames.empty()) {
      const RhsInfo rhs = ClassifyRhs(i + 2, stmt_end);
      st.moved = false;
      st.checked = CheckState::kUnknown;
      switch (st.kind) {
        case VarKind::kSpan:
          if (rhs.origin == RhsInfo::Origin::kSpanBegin ||
              rhs.origin == RhsInfo::Origin::kSpanTransfer) {
            st.open = true;
            st.transfer = rhs.origin == RhsInfo::Origin::kSpanTransfer;
            st.origin_line = rhs.line;
            st.guard.clear();
          } else if (rhs.origin == RhsInfo::Origin::kNoSpan) {
            st.open = false;
          } else {
            st.escaped = true;  // Aliased to some other span id.
          }
          break;
        case VarKind::kStatus:
        case VarKind::kResult:
          st.used = false;
          st.call_origin = rhs.origin == RhsInfo::Origin::kStatusCall ||
                           rhs.origin == RhsInfo::Origin::kResultCall;
          break;
        case VarKind::kCollector:
          st.tainted = false;
          break;
        case VarKind::kChunk:
          break;
      }
      return;
    }

    // `std::move(x)` — exact argument of a move() frame.
    if (!frames.empty() && frames.back() == "move" && prev != nullptr &&
        prev->Is("(") && next != nullptr && next->Is(")")) {
      UseVar(name, line, &st);
      st.moved = true;
      st.origin_line = line;
      // `std::move(x).ValueUnsafe()` is still a dereference of x.
      if (i + 3 <= stmt_end && toks_[i + 2].Is(".") &&
          DerefNames().count(toks_[i + 3].text) > 0) {
        DerefResult(name, line, &st);
      }
      return;
    }

    // Unary dereference `*x`.
    if (prev != nullptr && prev->Is("*") &&
        (i < stmt_begin + 2 || !IsValueToken(toks_[i - 2]))) {
      UseVar(name, line, &st);
      DerefResult(name, line, &st);
      return;
    }

    if (st.kind == VarKind::kSpan) {
      if (!frames.empty()) {
        const std::string& callee = frames.back();
        if (callee == "End" || callee == "EndWith") {
          st.used = true;
          st.open = false;
          return;
        }
        if (SpanNeutralCallees().count(callee) > 0) {
          st.used = true;
          return;
        }
        st.used = true;
        st.escaped = true;  // Handed to other code; it owns closing now.
        return;
      }
      if (assign_seen || flags.in_return) {
        st.used = true;
        st.escaped = true;  // Aliased into another lvalue / returned.
        return;
      }
      st.used = true;
      return;
    }

    if (st.kind == VarKind::kCollector) {
      if (!frames.empty()) {
        const std::string& callee = frames.back();
        if (callee == "sort" || callee == "stable_sort") {
          st.used = true;
          st.tainted = false;
          return;
        }
        if (callee == "move" || callee == "swap") {
          st.used = true;
          return;
        }
        if (st.tainted) {
          TaintSink(name, st, line);
          st.tainted = false;  // Report once per taint site.
          return;
        }
      } else if (flags.in_return && st.tainted) {
        TaintSink(name, st, line);
        st.tainted = false;
        return;
      }
      st.used = true;
      return;
    }

    UseVar(name, line, &st);
  }

  void HandleCollectorMethod(const std::string& name, const std::string& m,
                             int line, VarState* st) {
    if (CollectorAppendNames().count(m) > 0) {
      if (unordered_depth_ > 0 && !st->ordered_type && !st->tainted) {
        st->tainted = true;
        st->origin_line = line;
      }
      st->used = true;
      return;
    }
    if (CollectorSinkNames().count(m) > 0 && st->tainted) {
      TaintSink(name, *st, line);
      st->tainted = false;
      return;
    }
    st->used = true;
  }

  /// Capture list `[a, &b, c = expr, this]`: by-value captures read the
  /// enclosing local; by-reference and default captures escape it; init
  /// captures execute their initializer (moves included) in the enclosing
  /// scope.
  void ScanCaptureList(const FunctionScope& child, AbsState* state) {
    size_t i = child.capture_begin + 1;
    const size_t end = child.capture_end;
    while (i < end) {
      size_t stop = i;
      {
        size_t j = i;
        while (j < end && !toks_[j].Is(",")) {
          if (toks_[j].Is("(") || toks_[j].Is("[") || toks_[j].Is("{")) {
            const size_t m = brackets_.MatchOf(j);
            if (m == kNone || m >= end) break;
            j = m;
          }
          ++j;
        }
        stop = j;
      }
      HandleCapture(i, stop, state);
      i = stop + 1;
    }
  }

  void HandleCapture(size_t b, size_t e, AbsState* state) {
    if (b >= e) {
      // `[&]` / `[=]` style single-token or empty segments are handled
      // below via b == e - 0 checks; fall through.
    }
    if (e == b + 1 && (toks_[b].Is("&") || toks_[b].Is("="))) {
      // Default capture: everything may be referenced inside the body.
      for (auto& [name, st] : *state) {
        st.used = true;
        st.escaped = true;
      }
      return;
    }
    if (e <= b) {
      if (b < toks_.size() && toks_[b].IsIdent() &&
          state->count(toks_[b].text) > 0) {
        VarState& st = (*state)[toks_[b].text];
        UseVar(toks_[b].text, toks_[b].line, &st);
        if (st.kind == VarKind::kSpan) st.escaped = true;
      }
      return;
    }
    // `&x`: by-reference capture.
    if (toks_[b].Is("&") && b + 1 < toks_.size() && toks_[b + 1].IsIdent()) {
      auto it = state->find(toks_[b + 1].text);
      if (it != state->end()) {
        it->second.used = true;
        it->second.escaped = true;
      }
      return;
    }
    // `name = expr`: init capture; the name shadows inside the lambda, the
    // initializer runs out here.
    if (toks_[b].IsIdent() && b + 1 <= e && toks_[b + 1].Is("=")) {
      ScanFlags flags;
      ScanTokens(b + 2, e, state, flags);
      return;
    }
    // Plain `x` (or `*this`, `this`).
    if (toks_[b].IsIdent() && state->count(toks_[b].text) > 0) {
      VarState& st = (*state)[toks_[b].text];
      UseVar(toks_[b].text, toks_[b].line, &st);
      if (st.kind == VarKind::kSpan) st.escaped = true;
    }
  }

  // --- Conditions --------------------------------------------------------

  std::string CondText(size_t b, size_t e) const {
    std::string text;
    for (size_t i = b; i <= e && i < toks_.size(); ++i) {
      if (!text.empty()) text += ' ';
      text += toks_[i].text;
    }
    return text;
  }

  /// Splits a C++17 `if (init; cond)` header; returns the cond sub-range.
  std::pair<size_t, size_t> SplitCondInit(size_t b, size_t e,
                                          AbsState* state) {
    for (size_t i = b; i <= e && i < toks_.size(); ++i) {
      const std::string& t = toks_[i].text;
      if (t == "(" || t == "[" || t == "{") {
        const size_t m = brackets_.MatchOf(i);
        if (m == kNone || m > e) break;
        i = m;
        continue;
      }
      if (t == ";") {
        ExecSimpleRange(b, i > b ? i - 1 : b, state);
        return {i + 1, e};
      }
    }
    return {b, e};
  }

  CondInfo ParseCondAtoms(size_t b, size_t e) const {
    CondInfo info;
    if (b > e || b == kNone) return info;
    // Strip one level of redundant parens.
    while (toks_[b].Is("(") && brackets_.MatchOf(b) == e && b + 1 < e) {
      ++b;
      --e;
    }
    bool saw_and = false, saw_or = false;
    std::vector<std::pair<size_t, size_t>> elems;
    size_t start = b;
    for (size_t i = b; i <= e; ++i) {
      const std::string& t = toks_[i].text;
      if (t == "(" || t == "[" || t == "{") {
        const size_t m = brackets_.MatchOf(i);
        if (m == kNone || m > e) return info;
        i = m;
        continue;
      }
      if (t == "&&" || t == "||") {
        (t == "&&" ? saw_and : saw_or) = true;
        if (i > start) elems.emplace_back(start, i - 1);
        start = i + 1;
      }
    }
    if (start <= e) elems.emplace_back(start, e);
    if (saw_and && saw_or) return info;  // Mixed: no branch facts.
    for (auto [eb, ee] : elems) {
      while (eb < ee && toks_[eb].Is("(") && brackets_.MatchOf(eb) == ee) {
        ++eb;
        --ee;
      }
      bool positive = true;
      while (eb <= ee && toks_[eb].Is("!")) {
        positive = !positive;
        ++eb;
      }
      // Exactly `x . ok ( )` / `x . has_value ( )`.
      if (ee == eb + 4 && toks_[eb].IsIdent() && toks_[eb + 1].Is(".") &&
          (toks_[eb + 2].Is("ok") || toks_[eb + 2].Is("has_value")) &&
          toks_[eb + 3].Is("(") && toks_[eb + 4].Is(")")) {
        info.atoms.push_back(CondAtom{toks_[eb].text, positive});
      }
    }
    if (info.atoms.empty()) return info;
    info.shape = saw_and   ? CondInfo::Shape::kAnd
                 : saw_or  ? CondInfo::Shape::kOr
                           : CondInfo::Shape::kSingle;
    return info;
  }

  void ApplyAtoms(const CondInfo& info, bool branch, AbsState* state) {
    auto set_atom = [&](const CondAtom& atom, bool truth) {
      auto it = state->find(atom.var);
      if (it == state->end()) return;
      it->second.checked = truth ? CheckState::kOk : CheckState::kErr;
    };
    switch (info.shape) {
      case CondInfo::Shape::kNone:
        return;
      case CondInfo::Shape::kSingle:
        set_atom(info.atoms[0], branch == info.atoms[0].positive);
        return;
      case CondInfo::Shape::kAnd:
        // `a && b` proves every atom on the true branch only.
        if (branch) {
          for (const CondAtom& a : info.atoms) set_atom(a, a.positive);
        }
        return;
      case CondInfo::Shape::kOr:
        // `!(a || b)` proves the negation of every atom (De Morgan).
        if (!branch) {
          for (const CondAtom& a : info.atoms) set_atom(a, !a.positive);
        }
        return;
    }
  }

  // --- Statement execution -----------------------------------------------

  void ExecSimpleRange(size_t b, size_t e, AbsState* state) {
    const DeclInfo d = ParseDecl(b, e);
    ScanFlags flags;
    if (d.recognized) {
      ScanTokens(d.init_begin, d.init_end, state, flags);
      VarState st;
      st.kind = d.kind;
      st.ordered_type = d.ordered_type;
      st.decl_line = d.line;
      const bool has_init = d.init_begin != kNone;
      if (has_init) {
        const RhsInfo rhs = ClassifyRhs(d.init_begin, d.init_end);
        if (!d.has_kind) {
          // `auto x = ...`: the kind comes from the initializer.
          switch (rhs.origin) {
            case RhsInfo::Origin::kResultCall:
              st.kind = VarKind::kResult;
              break;
            case RhsInfo::Origin::kStatusCall:
              st.kind = VarKind::kStatus;
              break;
            case RhsInfo::Origin::kSpanBegin:
            case RhsInfo::Origin::kSpanTransfer:
              st.kind = VarKind::kSpan;
              break;
            default:
              return;  // Untracked auto local.
          }
        }
        switch (rhs.origin) {
          case RhsInfo::Origin::kSpanBegin:
          case RhsInfo::Origin::kSpanTransfer:
            if (st.kind == VarKind::kSpan) {
              st.open = true;
              st.transfer = rhs.origin == RhsInfo::Origin::kSpanTransfer;
              st.origin_line = rhs.line;
            }
            break;
          case RhsInfo::Origin::kResultCall:
          case RhsInfo::Origin::kStatusCall:
            st.call_origin = true;
            break;
          default:
            break;
        }
      } else if (!d.has_kind) {
        return;
      }
      (*state)[d.name] = st;
      return;
    }
    ScanTokens(b, e, state, flags);
  }

  Flow Exec(const Stmt& stmt, AbsState in) {
    switch (stmt.kind) {
      case Stmt::Kind::kBlock:
        return ExecBlock(stmt, std::move(in));
      case Stmt::Kind::kSimple: {
        ExecSimpleRange(stmt.begin, stmt.end, &in);
        Flow f;
        f.state = std::move(in);
        return f;
      }
      case Stmt::Kind::kIf:
        return ExecIf(stmt, std::move(in));
      case Stmt::Kind::kLoop:
      case Stmt::Kind::kDo:
        return ExecLoop(stmt, std::move(in));
      case Stmt::Kind::kSwitch:
        return ExecSwitch(stmt, std::move(in));
      case Stmt::Kind::kTry:
        return ExecTry(stmt, std::move(in));
      case Stmt::Kind::kReturn: {
        ScanFlags flags;
        flags.in_return = true;
        ScanTokens(stmt.begin + 1, stmt.end, &in, flags);
        ExitChecks(in, toks_[stmt.begin].line);
        Flow f;
        f.falls = false;
        return f;
      }
      case Stmt::Kind::kBreak: {
        Flow f;
        f.falls = false;
        f.breaks.push_back(std::move(in));
        return f;
      }
      case Stmt::Kind::kContinue: {
        Flow f;
        f.falls = false;
        f.continues.push_back(std::move(in));
        return f;
      }
    }
    Flow f;
    f.state = std::move(in);
    return f;
  }

  Flow ExecBlock(const Stmt& stmt, AbsState in) {
    Flow out;
    AbsState cur = std::move(in);
    bool falls = true;
    for (const Stmt& sub : stmt.sub) {
      if (!falls) break;  // Unreachable after return/break/continue.
      Flow f = Exec(sub, std::move(cur));
      for (AbsState& s : f.breaks) out.breaks.push_back(std::move(s));
      for (AbsState& s : f.continues) out.continues.push_back(std::move(s));
      falls = f.falls;
      if (falls) cur = std::move(f.state);
    }
    out.falls = falls;
    if (falls) out.state = std::move(cur);
    return out;
  }

  /// Join two falling states. Variables present on one side only are
  /// branch-locals whose scope ends at the join: run their end-of-scope
  /// checks and drop them.
  AbsState Join(const AbsState& a, const AbsState& b, int join_line) {
    AbsState merged;
    for (const auto& [name, sa] : a) {
      auto it = b.find(name);
      if (it == b.end()) {
        ScopeEndCheck(name, sa, join_line);
        continue;
      }
      const VarState& sb = it->second;
      VarState m = sa;
      if (sa.checked != sb.checked) m.checked = CheckState::kUnknown;
      m.moved = sa.moved || sb.moved;
      m.used = sa.used && sb.used;
      m.open = sa.open || sb.open;
      m.escaped = sa.escaped || sb.escaped;
      m.tainted = sa.tainted || sb.tainted;
      // The drop fact is per-path: a branch that assigned a call result AND
      // consumed it is clean, even if the other branch never held one. Keep
      // `call_origin` only when some incoming path still has an unconsumed
      // call result (the exit check reads `call_origin && !used`).
      m.call_origin = (sa.call_origin && !sa.used) ||
                      (sb.call_origin && !sb.used);
      m.guard = sa.open ? sa.guard : sb.guard;
      // The diagnostic anchor (Begin/move/taint site) follows whichever side
      // carries the fact.
      if (m.origin_line == 0 || (sb.origin_line != 0 &&
                                 ((sb.open && !sa.open) ||
                                  (sb.moved && !sa.moved) ||
                                  (sb.tainted && !sa.tainted)))) {
        m.origin_line = sb.origin_line;
      }
      merged[name] = m;
    }
    for (const auto& [name, sb] : b) {
      if (a.find(name) == a.end()) ScopeEndCheck(name, sb, join_line);
    }
    return merged;
  }

  Flow ExecIf(const Stmt& stmt, AbsState in) {
    auto [cb, ce] = SplitCondInit(stmt.cond_begin, stmt.cond_end, &in);
    ScanFlags cond_flags;
    cond_flags.in_condition = true;
    ScanTokens(cb, ce, &in, cond_flags);
    const CondInfo cond = ParseCondAtoms(cb, ce);
    const std::string ctext = CondText(cb, ce);
    const AbsState pre = in;

    AbsState then_in = in;
    ApplyAtoms(cond, true, &then_in);
    Flow then_flow = Exec(stmt.sub[0], std::move(then_in));

    AbsState else_in = std::move(in);
    ApplyAtoms(cond, false, &else_in);
    Flow else_flow;
    if (stmt.sub.size() > 1) {
      else_flow = Exec(stmt.sub[1], std::move(else_in));
    } else {
      else_flow.state = std::move(else_in);
    }

    Flow out;
    for (auto& s : then_flow.breaks) out.breaks.push_back(std::move(s));
    for (auto& s : else_flow.breaks) out.breaks.push_back(std::move(s));
    for (auto& s : then_flow.continues) out.continues.push_back(std::move(s));
    for (auto& s : else_flow.continues) out.continues.push_back(std::move(s));
    out.falls = then_flow.falls || else_flow.falls;
    if (then_flow.falls && else_flow.falls) {
      const int join_line = toks_[stmt.end].line;
      out.state = Join(then_flow.state, else_flow.state, join_line);
      // Guard correlation for spans: `if (tracer_) s = Begin(...)` ...
      // `if (tracer_) End(s)` must not leak. A span opened only under this
      // condition remembers the condition text; a branch that closed it
      // under the same text closes it on the merged state too.
      for (auto& [name, m] : out.state) {
        if (m.kind != VarKind::kSpan) continue;
        const auto pit = pre.find(name);
        const auto tit = then_flow.state.find(name);
        const auto eit = else_flow.state.find(name);
        if (pit == pre.end() || tit == then_flow.state.end() ||
            eit == else_flow.state.end()) {
          continue;
        }
        const bool pre_open = pit->second.open;
        const bool then_open = tit->second.open;
        const bool else_open = eit->second.open;
        if (!pre_open && then_open && !else_open) m.guard = ctext;
        if (!pre_open && else_open && !then_open) m.guard = "!( " + ctext + " )";
        if (pre_open && !then_open && pit->second.guard == ctext) {
          m.open = false;
        }
        if (pre_open && !else_open &&
            pit->second.guard == "!( " + ctext + " )") {
          m.open = false;
        }
      }
    } else if (then_flow.falls) {
      out.state = std::move(then_flow.state);
    } else if (else_flow.falls) {
      out.state = std::move(else_flow.state);
    }
    return out;
  }

  /// True when a loop header iterates hash-ordered state: it mentions an
  /// unordered container declared in this file, or a collector local that is
  /// itself tainted.
  bool LoopIsUnordered(size_t b, size_t e, const AbsState& state) const {
    for (size_t i = b; i <= e && i < toks_.size(); ++i) {
      if (!toks_[i].IsIdent()) continue;
      const bool member =
          i > b && (toks_[i - 1].Is(".") || toks_[i - 1].Is("->") ||
                    toks_[i - 1].Is("::"));
      if (member) continue;
      if (unordered_names_.count(toks_[i].text) > 0) return true;
      auto it = state.find(toks_[i].text);
      if (it != state.end() && it->second.tainted) return true;
    }
    return false;
  }

  Flow ExecLoop(const Stmt& stmt, AbsState in) {
    size_t cb = stmt.cond_begin, ce = stmt.cond_end;
    size_t cond_b = cb, cond_e = ce;
    const bool classic_for =
        stmt.kind == Stmt::Kind::kLoop && !stmt.range_for && cb <= ce &&
        ScanToSemi(cb, ce) != kNone;
    if (classic_for) {
      // `for (init; cond; step)`: run init once, split out the condition.
      const size_t semi1 = ScanToSemi(cb, ce);
      if (semi1 != kNone) {
        if (semi1 > cb) ExecSimpleRange(cb, semi1 - 1, &in);
        const size_t semi2 = ScanToSemi(semi1 + 1, ce);
        cond_b = semi1 + 1;
        cond_e = semi2 != kNone && semi2 > semi1 ? semi2 - 1 : ce;
      }
    }
    const bool unordered = cb <= ce && LoopIsUnordered(cb, ce, in);
    const CondInfo cond = (stmt.kind == Stmt::Kind::kLoop && !stmt.range_for)
                              ? ParseCondAtoms(cond_b, cond_e)
                              : CondInfo{};
    ScanFlags cond_flags;
    cond_flags.in_condition = true;
    if (cb <= ce) ScanTokens(stmt.range_for ? cb : cond_b,
                             stmt.range_for ? ce : cond_e, &in, cond_flags);

    AbsState merged = std::move(in);
    std::vector<AbsState> break_states;
    const int join_line = toks_[stmt.end].line;
    for (int iter = 0; iter < 4; ++iter) {
      AbsState body_in = merged;
      ApplyAtoms(cond, true, &body_in);
      if (unordered) ++unordered_depth_;
      Flow f = Exec(stmt.sub[0], std::move(body_in));
      if (unordered) --unordered_depth_;
      AbsState next = merged;
      if (f.falls) next = Join(next, f.state, join_line);
      for (const AbsState& s : f.continues) next = Join(next, s, join_line);
      for (AbsState& s : f.breaks) break_states.push_back(std::move(s));
      if (SameState(next, merged)) break;
      merged = std::move(next);
    }
    AbsState after = std::move(merged);
    ApplyAtoms(cond, false, &after);
    for (const AbsState& s : break_states) after = Join(after, s, join_line);
    Flow out;
    out.state = std::move(after);
    return out;
  }

  size_t ScanToSemi(size_t b, size_t e) const {
    for (size_t i = b; i <= e && i < toks_.size(); ++i) {
      const std::string& t = toks_[i].text;
      if (t == "(" || t == "[" || t == "{") {
        const size_t m = brackets_.MatchOf(i);
        if (m == kNone || m > e) return kNone;
        i = m;
        continue;
      }
      if (t == ";") return i;
    }
    return kNone;
  }

  Flow ExecSwitch(const Stmt& stmt, AbsState in) {
    ScanFlags cond_flags;
    cond_flags.in_condition = true;
    if (stmt.cond_begin <= stmt.cond_end) {
      ScanTokens(stmt.cond_begin, stmt.cond_end, &in, cond_flags);
    }
    const int join_line = toks_[stmt.end].line;
    AbsState pre = in;
    Flow f = Exec(stmt.sub[0], std::move(in));
    AbsState after = std::move(pre);  // No case may match / default absent.
    if (f.falls) after = Join(after, f.state, join_line);
    for (const AbsState& s : f.breaks) after = Join(after, s, join_line);
    Flow out;
    for (AbsState& s : f.continues) out.continues.push_back(std::move(s));
    out.state = std::move(after);
    return out;
  }

  Flow ExecTry(const Stmt& stmt, AbsState in) {
    const int join_line = toks_[stmt.end].line;
    AbsState pre = in;
    Flow f = Exec(stmt.sub[0], std::move(in));
    Flow out;
    bool have = false;
    AbsState merged;
    if (f.falls) {
      merged = std::move(f.state);
      have = true;
    }
    for (AbsState& s : f.breaks) out.breaks.push_back(std::move(s));
    for (AbsState& s : f.continues) out.continues.push_back(std::move(s));
    for (size_t h = 1; h < stmt.sub.size(); ++h) {
      Flow hf = Exec(stmt.sub[h], pre);
      for (AbsState& s : hf.breaks) out.breaks.push_back(std::move(s));
      for (AbsState& s : hf.continues) out.continues.push_back(std::move(s));
      if (hf.falls) {
        merged = have ? Join(merged, hf.state, join_line)
                      : std::move(hf.state);
        have = true;
      }
    }
    out.falls = have;
    if (have) out.state = std::move(merged);
    return out;
  }

  const SourceFile& file_;
  const FlowContext& ctx_;
  const std::vector<Token>& toks_;
  const BracketMap& brackets_;
  const std::set<std::string>& unordered_names_;
  std::vector<Diagnostic>* out_;
  std::map<size_t, const FunctionScope*> scope_entries_;
  const FunctionScope* scope_ = nullptr;
  std::set<std::string> emitted_;
  int unordered_depth_ = 0;
};

/// Names declared with an unordered container type anywhere in the file
/// (locals, members, statics) — the taint sources.
std::set<std::string> CollectUnorderedNames(const std::vector<Token>& toks) {
  std::set<std::string> names;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].Is("unordered_map") && !toks[i].Is("unordered_set")) {
      continue;
    }
    size_t j = i + 1;
    if (toks[j].Is("<")) {
      int depth = 0;
      size_t k = j;
      for (; k < toks.size() && k < j + 256; ++k) {
        if (toks[k].Is("<")) ++depth;
        if (toks[k].Is(">")) --depth;
        if (toks[k].Is(">>")) depth -= 2;
        if (depth <= 0) break;
      }
      j = k + 1;
    }
    while (j < toks.size() && (toks[j].Is("*") || toks[j].Is("&"))) ++j;
    if (j < toks.size() && toks[j].IsIdent()) names.insert(toks[j].text);
  }
  return names;
}

}  // namespace

void CheckFlowRules(const SourceFile& file, const FlowContext& ctx,
                    std::vector<Diagnostic>* out) {
  const std::vector<Token> toks = Lex(file);
  const BracketMap brackets = PairBrackets(toks);
  const std::vector<FunctionScope> scopes = ExtractFunctions(toks, brackets);
  const std::set<std::string> unordered = CollectUnorderedNames(toks);
  FunctionAnalyzer analyzer(file, ctx, toks, brackets, scopes, unordered,
                            out);
  for (const FunctionScope& scope : scopes) analyzer.Analyze(scope);
}

}  // namespace skyrise::check
