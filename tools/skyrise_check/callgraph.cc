#include "callgraph.h"

#include <algorithm>
#include <deque>

namespace skyrise::check {
namespace {

constexpr size_t kNoSym = static_cast<size_t>(-1);

std::string LastSegment(const std::string& name) {
  const size_t pos = name.rfind("::");
  return pos == std::string::npos ? name : name.substr(pos + 2);
}

bool EndsWithQualified(const std::string& qualified, const std::string& name) {
  if (qualified == name) return true;
  if (qualified.size() <= name.size() + 2) return false;
  return qualified.compare(qualified.size() - name.size(), name.size(),
                           name) == 0 &&
         qualified.compare(qualified.size() - name.size() - 2, 2, "::") == 0;
}

/// Name-based definition lookup: last segment keyed, qualified calls must
/// suffix-match (so `std::max` does not resolve to an unrelated `max`).
struct Resolver {
  explicit Resolver(const std::vector<FunctionSym>& fns) : fns_(fns) {
    for (size_t i = 0; i < fns.size(); ++i) {
      by_last_[fns[i].name].push_back(i);
    }
  }

  std::vector<size_t> Resolve(const std::string& call_name) const {
    auto it = by_last_.find(LastSegment(call_name));
    if (it == by_last_.end()) return {};
    if (LastSegment(call_name) == call_name) return it->second;
    std::vector<size_t> matched;
    for (size_t i : it->second) {
      if (EndsWithQualified(fns_[i].qualified, call_name)) matched.push_back(i);
    }
    return matched;  // Empty on qualifier mismatch: unknown callee.
  }

  const std::vector<FunctionSym>& fns_;
  std::map<std::string, std::vector<size_t>> by_last_;
};

std::string ChainString(const std::vector<FunctionSym>& fns, size_t start,
                        const std::vector<size_t>& next) {
  std::string chain = fns[start].qualified;
  size_t cur = start;
  int guard = 0;
  while (next[cur] != kNoSym && next[cur] != cur && ++guard < 64) {
    cur = next[cur];
    chain += " -> " + fns[cur].qualified;
  }
  return chain;
}

const SourceFile* Lookup(const FileMap& files, const std::string& path) {
  auto it = files.find(path);
  return it == files.end() ? nullptr : it->second;
}

}  // namespace

CallGraph BuildCallGraph(const SymbolIndex& index) {
  const std::vector<FunctionSym>& fns = index.functions();
  const Resolver resolver(fns);
  CallGraph graph;
  graph.callees.resize(fns.size());
  graph.callers.resize(fns.size());
  for (size_t i = 0; i < fns.size(); ++i) {
    for (const CallSite& call : fns[i].calls) {
      const std::vector<size_t> targets = resolver.Resolve(call.name);
      if (targets.empty()) {
        ++graph.unresolved_calls;
        continue;
      }
      for (size_t t : targets) {
        graph.callees[i].push_back(t);
        auto key = std::make_pair(i, t);
        if (graph.edge_line.count(key) == 0) graph.edge_line[key] = call.line;
      }
    }
    auto& edges = graph.callees[i];
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    for (size_t t : edges) graph.callers[t].push_back(i);
  }
  for (auto& callers : graph.callers) {
    std::sort(callers.begin(), callers.end());
    callers.erase(std::unique(callers.begin(), callers.end()), callers.end());
  }
  return graph;
}

void CheckTransitiveNondeterminism(const SymbolIndex& index,
                                   const CallGraph& graph,
                                   const FileMap& files,
                                   std::vector<Diagnostic>* out) {
  const std::vector<FunctionSym>& fns = index.functions();
  std::vector<size_t> next(fns.size(), kNoSym);   // Next hop toward the root.
  std::vector<size_t> root(fns.size(), kNoSym);
  std::vector<const BannedUse*> use(fns.size(), nullptr);
  std::vector<int> call_line(fns.size(), 0);
  std::vector<char> tainted(fns.size(), 0);

  std::deque<size_t> queue;
  for (size_t i = 0; i < fns.size(); ++i) {
    for (const BannedUse& b : fns[i].banned) {
      if (b.sanctioned_source) continue;
      tainted[i] = 1;
      root[i] = i;
      use[i] = &b;
      queue.push_back(i);
      break;
    }
  }
  while (!queue.empty()) {
    const size_t f = queue.front();
    queue.pop_front();
    for (size_t c : graph.callers[f]) {
      if (tainted[c] || c == f) continue;
      auto lit = graph.edge_line.find(std::make_pair(c, f));
      const int line = lit != graph.edge_line.end() ? lit->second : 0;
      // An allow(transitive-nondeterminism) on the call site blesses the
      // edge: this caller accepts the callee's nondeterminism knowingly, and
      // functions above it are not tainted through this path.
      const SourceFile* file = Lookup(files, fns[c].file);
      if (file != nullptr && line > 0 &&
          IsSuppressed(*file, line, "transitive-nondeterminism")) {
        continue;
      }
      tainted[c] = 1;
      next[c] = f;
      root[c] = root[f];
      use[c] = use[f];
      call_line[c] = line;
      queue.push_back(c);
    }
  }

  for (size_t i = 0; i < fns.size(); ++i) {
    // Roots carry the direct banned-api diagnostic already; the transitive
    // rule flags callers, and only in the src/ scope the ban polices.
    if (!tainted[i] || next[i] == kNoSym || !SrcScoped(fns[i].file)) continue;
    const SourceFile* file = Lookup(files, fns[i].file);
    if (file == nullptr || call_line[i] <= 0) continue;
    const FunctionSym& r = fns[root[i]];
    EmitDiagnostic(
        *file, call_line[i], "transitive-nondeterminism",
        "`" + fns[i].qualified + "` reaches banned API `" + use[i]->api +
            "` through " + ChainString(fns, i, next) + " (" + r.file + ":" +
            std::to_string(use[i]->line) +
            "); route through sim::Environment or bless the source/call "
            "with allow(transitive-nondeterminism)",
        out);
  }
}

void CheckRetryWrappers(const SymbolIndex& index, const CallGraph& graph,
                        const FileMap& files, std::vector<Diagnostic>* out) {
  const std::vector<FunctionSym>& fns = index.functions();
  const Resolver resolver(fns);

  // A function exports the unbounded-retry obligation when it (or anything
  // it calls) Schedule()s work and no function on the way down clamps with
  // a deadline/budget/max-attempts bound.
  std::vector<char> exported(fns.size(), 0);
  std::vector<size_t> next(fns.size(), kNoSym);
  std::deque<size_t> queue;
  for (size_t i = 0; i < fns.size(); ++i) {
    if (fns[i].calls_scheduler && !fns[i].has_bound) {
      exported[i] = 1;
      queue.push_back(i);
    }
  }
  while (!queue.empty()) {
    const size_t f = queue.front();
    queue.pop_front();
    for (size_t c : graph.callers[f]) {
      if (exported[c] || c == f || fns[c].has_bound) continue;
      exported[c] = 1;
      next[c] = f;
      queue.push_back(c);
    }
  }

  for (size_t i = 0; i < fns.size(); ++i) {
    const FunctionSym& fn = fns[i];
    if (!SrcScoped(fn.file) || fn.has_bound) continue;
    // The intraprocedural unbounded-retry rule already covers a direct
    // Schedule(retry...) here; this rule closes the wrapper loophole.
    if (fn.direct_retry_schedule) continue;
    const SourceFile* file = Lookup(files, fn.file);
    if (file == nullptr) continue;
    for (const CallSite& call : fn.calls) {
      if (!call.retry_args) continue;
      bool flagged = false;
      for (size_t t : resolver.Resolve(call.name)) {
        if (t == i || !exported[t]) continue;
        EmitDiagnostic(
            *file, call.line, "unbounded-retry-wrapper",
            "`" + fn.qualified + "` passes retry work into `" +
                fns[t].qualified + "` (" + ChainString(fns, t, next) +
                " schedules with no deadline, retry budget, or max-attempts "
                "cap on the chain); thread a Deadline or RetryBudget "
                "through the wrapper",
            out);
        flagged = true;
        break;
      }
      if (flagged) break;  // One witness per function keeps output readable.
    }
  }
}

}  // namespace skyrise::check
