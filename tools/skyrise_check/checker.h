#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

/// \file checker.h
/// `skyrise_check` — the repo's own static-analysis pass. Token/line-level
/// (no libclang): each rule guards an invariant that deterministic replay or
/// error propagation rests on. Intentionally standalone: depends only on the
/// standard library so it builds before (and independently of) the simulator.
///
/// Rules (ids are what `skyrise-check: allow(<rule>)` suppressions name):
///   banned-api          wall clocks, ambient randomness, env lookups, thread
///                       ids — nondeterminism sources that must come from
///                       sim::Environment / common/random instead
///   discarded-status    statement-level call to a Status/Result-returning
///                       function whose result is dropped (belt; the
///                       [[nodiscard]] sweep + -Werror=unused-result is the
///                       sound suspenders)
///   unordered-iteration loops over unordered_map/unordered_set — iteration
///                       order is hash-seed dependent and must not leak into
///                       emitted rows, shuffle partitions, or reports
///   pragma-once         header missing `#pragma once`
///   using-namespace     `using namespace` at any scope in a header
///   raw-stdout          std::cout outside tools/ and examples/ (library code
///                       reports through the logging/report layers)
///   chunk-copy          pass-by-value data::Chunk parameter in engine code —
///                       a silent deep copy of whole column vectors on the
///                       morsel hot path; take `const data::Chunk&` or
///                       `data::Chunk&&` instead (sinks that must own their
///                       input take &&), or suppress with an allow comment
///   unbounded-retry     a src/ function that schedules retry work (a
///                       Schedule() call mentioning retry/backoff/attempt)
///                       with no visible bound — no identifier naming a
///                       deadline, a retry budget, or a max-attempts cap
///                       anywhere in the function. Unbounded retry loops
///                       amplify overload; clamp with the Deadline /
///                       RetryBudget plumbing or cap attempts
///   sim-hot-path        simulator-core hygiene (src/sim/ only): a by-value
///                       std::function parameter (one heap allocation per
///                       call — take it by rvalue reference or use
///                       sim::EventCallback), or a std::vector/map/set/deque
///                       local constructed inside a function body (one
///                       allocation per call — hoist into a reused member
///                       buffer). Amortized uses (e.g. a rebuild that runs
///                       once per thousands of events) carry an allow
///                       comment stating why
///
/// Flow-sensitive rules (v2, built on the lexer → CFG → dataflow stack in
/// lexer.h / cfg.h / dataflow.h — see those headers for the machinery):
///   unchecked-result-access  `.value()` / `*r` / `r->` on a Result<T> local
///                            on a path with no dominating ok()/has_value()
///                            check (polarity-aware: early `if (!r.ok())
///                            return` narrows the fall-through path)
///   status-path-drop         a Status/Result bound from a fallible call and
///                            never consumed on some path out of its scope
///   use-after-move           a moved-from Chunk/Status/Result local is used
///                            before reinitialization (capture-init moves in
///                            lambda intros count as moves)
///   span-leak                an obs::Tracer span begun but not ended on some
///                            path; `if (tracer_)`-style guards around Begin
///                            and End are correlated by condition text
///   unordered-taint          a collector filled while iterating an unordered
///                            container flows into an ordered sink without an
///                            intervening std::sort (collect-then-sort stays
///                            silent; std::map/std::set collectors never
///                            taint)
///   missing-nodiscard        Status/Result-returning declaration in a src/
///                            header without [[nodiscard]] (see nodiscard.h;
///                            mechanically fixable with --fix)
///
/// Interprocedural rules (v3, built on the cross-TU symbol index and call
/// graph in symbols.h / callgraph.h — whole-program passes that run when
/// files are checked together via CheckSources/CheckTree):
///   transitive-nondeterminism  a src/ function whose call chain (across
///                              TUs, through wrappers and named lambdas)
///                              reaches a direct banned-API use; the
///                              diagnostic carries the witness chain.
///                              allow(banned-api) keeps sanctioning the
///                              direct use but the wrapper still taints
///                              callers; allow(transitive-nondeterminism)
///                              on the source line or a call site blesses
///                              that source/edge and stops propagation
///   shared-mutable-state       a non-const static-storage variable in src/
///                              (namespace-scope, static-local, or static
///                              member) that is neither const-init nor
///                              confined under a sim:: owner — the audit
///                              gating parallel simulation (see
///                              state_audit.h and state_inventory.json)
///   unbounded-retry-wrapper    closes unbounded-retry's wrapper loophole: a
///                              src/ function passing retry-ish arguments
///                              into a helper that (transitively)
///                              Schedule()s work with no deadline / retry
///                              budget / max-attempts bound on the chain
///   span-transfer-leak         a span received open from a span-returning
///                              helper (SpanId return type + Begin in body,
///                              harvested cross-TU) is not ended on some
///                              path — the interprocedural extension of
///                              span-leak (End obligation transfers at the
///                              call site)
///
/// Domain-ownership rules (v4, built on the domain model in domains.h —
/// every src/ type and function is assigned to a shard-ownership domain
/// via `// skyrise-domain(<name>)` annotations or namespace inference):
///   domain-escape              a class in one concrete domain retains a
///                              pointer/reference/smart-pointer handle to a
///                              class owned by a different concrete domain
///                              (sim-kernel handles exempt — the event API
///                              is the sanctioned crossing); witness chain
///                              `A -> field f -> B (file:line)`
///   cross-domain-mutation      a function in one concrete domain calls a
///                              non-const method defined in a different
///                              concrete domain outside the sanctioned
///                              crossing points (the sim-kernel event API,
///                              value/const reads, declared
///                              `skyrise-domain-crossing(...)` functions)
///   lock-discipline            synchronization hygiene ahead of the
///                              parallel DES: a mutex with no RAII guard in
///                              its file, raw .lock()/.unlock() calls,
///                              std::atomic or thread_local outside the
///                              sim-kernel domain
///
/// A suppression comment `// skyrise-check: allow(rule-a, rule-b)` silences
/// the named rules on its own line and the following line, so intent stays
/// visible next to the code it blesses.

namespace skyrise::check {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Diagnostic& other) const {
    if (file != other.file) return file < other.file;
    if (line != other.line) return line < other.line;
    if (rule != other.rule) return rule < other.rule;
    return message < other.message;
  }
};

/// One source file, preprocessed for rule passes: `code` mirrors the original
/// line-for-line and column-for-column with comments and string/char literal
/// contents blanked out, and `allows` holds the per-line suppressed rule ids
/// parsed from `skyrise-check: allow(...)` comments.
struct SourceFile {
  std::string path;        ///< Path as reported in diagnostics.
  bool is_header = false;  ///< .h / .hpp
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::map<int, std::set<std::string>> allows;  ///< 1-based line -> rule ids.
  /// `// skyrise-domain(<name>)` comments: 1-based line -> domain name. The
  /// annotation assigns the namespace/class/function declared on its line or
  /// the line below to that ownership domain (see domains.h).
  std::map<int, std::string> domain_notes;
  /// `// skyrise-domain-crossing(<rationale>)` comments: 1-based line ->
  /// rationale. Declares the function defined on its line or the line below
  /// a sanctioned domain-boundary API; calls to it are recorded as crossing
  /// edges in the domain inventory instead of violations.
  std::map<int, std::string> crossing_notes;
};

/// Builds a SourceFile from in-memory contents (used by tests) — strips
/// comments/literals and records suppression comments.
SourceFile Preprocess(const std::string& path, const std::string& contents);

/// True when `rule` is suppressed on `line` (the allow comment may sit on the
/// line itself or the line above).
bool IsSuppressed(const SourceFile& file, int line, const std::string& rule);

/// Appends a diagnostic unless suppressed. All rule passes (including the
/// flow-sensitive ones in dataflow.cc and nodiscard.cc) emit through this so
/// suppression semantics stay uniform.
void EmitDiagnostic(const SourceFile& file, int line, const std::string& rule,
                    std::string message, std::vector<Diagnostic>* out);

/// Wall-clock milliseconds per analysis phase, filled by CheckSources when a
/// non-null pointer is passed (the CLI prints these under --verbose).
struct PhaseTimings {
  double preprocess_ms = 0;  ///< Comment/literal blanking, annotation parse.
  double collect_ms = 0;     ///< Fallible-name harvest (sequential).
  double index_ms = 0;       ///< Per-file symbol indexing + merge.
  double per_file_ms = 0;    ///< Token/flow rule passes over each file.
  double interproc_ms = 0;   ///< Call graph + whole-program rule drivers.
  double total_ms = 0;
  size_t files = 0;
  size_t jobs = 1;  ///< Worker threads actually used.
};

class Checker {
 public:
  /// Names of functions returning Status/Result<T>, harvested from
  /// declarations across all files handed to CollectFallibleNames(). The set
  /// is seeded with the Status factory names so discarded temporaries
  /// (`Status::IoError("x");`) are caught even when status.h is not scanned.
  void CollectFallibleNames(const SourceFile& file);

  /// Runs every per-file rule over one file and appends diagnostics
  /// (suppressions already applied). Call CollectFallibleNames() for all
  /// files first so discarded-status sees cross-file declarations. The
  /// interprocedural rules need the whole program — use CheckSources.
  void CheckFile(const SourceFile& file, std::vector<Diagnostic>* out) const;

  /// Preprocess + collect + check a set of in-memory files, then run the
  /// whole-program passes (cross-TU symbol index, call graph, transitive
  /// taint, retry-wrapper obligations, shared-mutable-state audit, domain
  /// ownership) over the set as one program. The embarrassingly parallel
  /// phases (preprocess, per-file indexing, per-file rules) fan out over
  /// `jobs` worker threads against the shared read-only symbol index;
  /// `jobs == 0` means hardware concurrency. Output is byte-identical for
  /// every job count: each phase writes to per-file slots merged in file
  /// order, and diagnostics are sorted before returning.
  std::vector<Diagnostic> CheckSources(
      const std::vector<std::pair<std::string, std::string>>& path_contents,
      size_t jobs = 0, PhaseTimings* timings = nullptr);

  const std::set<std::string>& fallible_names() const {
    return fallible_names_;
  }

  /// Subset of fallible_names() declared as returning Result<T>; the
  /// dataflow pass uses this to type `auto r = Foo(...)` locals.
  const std::set<std::string>& result_names() const { return result_names_; }

  static const std::vector<std::string>& RuleIds();

 private:
  void CheckBannedApis(const SourceFile& file,
                       std::vector<Diagnostic>* out) const;
  void CheckDiscardedStatus(const SourceFile& file,
                            std::vector<Diagnostic>* out) const;
  void CheckUnorderedIteration(const SourceFile& file,
                               std::vector<Diagnostic>* out) const;
  void CheckHeaderHygiene(const SourceFile& file,
                          std::vector<Diagnostic>* out) const;
  void CheckChunkCopy(const SourceFile& file,
                      std::vector<Diagnostic>* out) const;
  void CheckUnboundedRetry(const SourceFile& file,
                           std::vector<Diagnostic>* out) const;
  void CheckSimHotPath(const SourceFile& file,
                       std::vector<Diagnostic>* out) const;

  std::set<std::string> fallible_names_ = {
      "OK",        "InvalidArgument", "NotFound",    "AlreadyExists",
      "ResourceExhausted", "DeadlineExceeded", "FailedPrecondition",
      "OutOfRange", "Unimplemented",  "Internal",    "IoError",
      "Cancelled"};
  /// Names that also appear in a `void name(...)` declaration; ambiguous at
  /// token level, so discarded-status skips them (the compiler backstops).
  std::set<std::string> void_names_;
  /// Names declared as returning Result<T> somewhere in the tree.
  std::set<std::string> result_names_;
  /// Functions returning an open span (SpanId return + Begin in body),
  /// harvested by the symbol index in CheckSources; the dataflow pass
  /// treats calls to these like Tracer::Begin (span-transfer-leak).
  std::set<std::string> span_source_names_;
};

/// One file loaded from disk for tree-wide linting.
struct TreeFile {
  std::string rel;       ///< Path as reported in diagnostics (root-relative).
  std::string abs;       ///< Path on disk, for --fix write-back.
  std::string contents;  ///< Original text.
};

/// Collects every lintable file under `dirs` (recursively, deterministic
/// lexicographic order, `/fixtures/` excluded).
std::vector<TreeFile> LoadTree(const std::string& root,
                               const std::vector<std::string>& dirs);

/// Walks `dirs` (recursively, deterministic lexicographic order), lints every
/// .h/.hpp/.cc/.cpp file, and returns sorted diagnostics. Paths in
/// diagnostics are relative to `root` when they fall under it. `jobs` and
/// `timings` pass through to CheckSources.
std::vector<Diagnostic> CheckTree(const std::string& root,
                                  const std::vector<std::string>& dirs,
                                  size_t jobs = 0,
                                  PhaseTimings* timings = nullptr);

/// Formats one diagnostic as `file:line: [rule] message`.
std::string FormatDiagnostic(const Diagnostic& diag);

}  // namespace skyrise::check
