#pragma once

#include <string>
#include <vector>

/// \file doc_check.h
/// Dead-link checker for the repo's markdown documentation. Scans a fixed
/// set of documents for intra-repo links — `[text](relative/path.md)` and
/// heading anchors `[text](FILE.md#section)` / `[text](#section)` — and
/// reports every link whose target file or heading does not exist. External
/// links (http/https/mailto) are ignored: CI must not depend on the
/// network. Exposed as a library so tools_test can pin the slug and scan
/// behavior.

namespace skyrise::doccheck {

struct LinkRef {
  std::string source_file;  ///< Repo-relative path of the document.
  int line = 0;             ///< 1-based line of the link.
  std::string target;       ///< Raw link target, e.g. "docs/OPERATIONS.md#x".
};

struct BrokenLink {
  LinkRef ref;
  std::string reason;  ///< "missing file" or "missing anchor".
};

/// GitHub-style heading slug: lowercase; keep alphanumerics, '-' and '_';
/// spaces become '-'; everything else is dropped.
std::string Slugify(const std::string& heading);

/// Extracts all markdown link targets `](...)` from `content`, with line
/// numbers. Inline code spans (backticks) are skipped.
std::vector<LinkRef> ScanMarkdownLinks(const std::string& source_file,
                                       const std::string& content);

/// Anchors (slugified headings) defined by a markdown document. Duplicate
/// headings get GitHub's "-1", "-2" suffixes.
std::vector<std::string> HeadingAnchors(const std::string& content);

/// Checks every intra-repo link in `documents` (repo-relative paths)
/// against the tree rooted at `root`. Missing documents are themselves
/// reported as broken links.
std::vector<BrokenLink> CheckLinks(const std::string& root,
                                   const std::vector<std::string>& documents);

}  // namespace skyrise::doccheck
