/// doc_check: dead-link checker for the repo's operator-facing markdown.
/// CI runs it from the repo root over README.md, DESIGN.md, EXPERIMENTS.md,
/// ROADMAP.md, and docs/OPERATIONS.md; any intra-repo link to a missing
/// file or heading fails the build, so the documentation cannot silently
/// rot as files and sections move.
///
/// Usage: doc_check --root <repo-root> [extra-docs...]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "doc_check.h"

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> documents;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else {
      documents.push_back(argv[i]);
    }
  }
  if (documents.empty()) {
    documents = {"README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md",
                 "docs/OPERATIONS.md"};
  }

  const auto broken = skyrise::doccheck::CheckLinks(root, documents);
  if (broken.empty()) {
    std::printf("doc_check: %zu documents, all intra-repo links resolve\n",
                documents.size());
    return 0;
  }
  for (const auto& link : broken) {
    std::printf("%s:%d: broken link '%s' (%s)\n", link.ref.source_file.c_str(),
                link.ref.line, link.ref.target.c_str(), link.reason.c_str());
  }
  std::printf("doc_check: %zu broken link(s)\n", broken.size());
  return 1;
}
