#include "doc_check.h"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

namespace skyrise::doccheck {

namespace {

bool IsExternal(const std::string& target) {
  return target.rfind("http://", 0) == 0 ||
         target.rfind("https://", 0) == 0 ||
         target.rfind("mailto:", 0) == 0;
}

std::string ReadFile(const std::filesystem::path& path, bool* ok) {
  std::ifstream in(path);
  if (!in.good()) {
    *ok = false;
    return "";
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  *ok = true;
  return buffer.str();
}

/// Resolves "a/b/../c" style components without touching the filesystem,
/// so links are checked relative to their document's directory.
std::string NormalizePath(const std::string& path) {
  std::vector<std::string> parts;
  std::string part;
  std::stringstream stream(path);
  while (std::getline(stream, part, '/')) {
    if (part.empty() || part == ".") continue;
    if (part == "..") {
      if (!parts.empty()) parts.pop_back();
      continue;
    }
    parts.push_back(part);
  }
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += '/';
    out += parts[i];
  }
  return out;
}

}  // namespace

std::string Slugify(const std::string& heading) {
  std::string slug;
  for (const char c : heading) {
    const unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc)) {
      slug += static_cast<char>(std::tolower(uc));
    } else if (c == ' ') {
      slug += '-';
    } else if (c == '-' || c == '_') {
      slug += c;
    }
    // Everything else ('&', '.', ':', emoji bytes, ...) is dropped.
  }
  return slug;
}

std::vector<LinkRef> ScanMarkdownLinks(const std::string& source_file,
                                       const std::string& content) {
  std::vector<LinkRef> links;
  int line = 1;
  bool in_code_fence = false;
  size_t i = 0;
  // A fence delimiter at the start of a line toggles code mode; links
  // inside fenced blocks are examples, not navigation. The delimiter line
  // is consumed whole so its own backticks never scan as inline code.
  auto at_fence = [&content](size_t pos) {
    return content.compare(pos, 3, "```") == 0;
  };
  auto skip_fence_line = [&content, &i] {
    const size_t eol = content.find('\n', i);
    i = eol == std::string::npos ? content.size() : eol;  // Keep the '\n'.
  };
  if (at_fence(0)) {
    in_code_fence = true;
    skip_fence_line();
  }
  while (i < content.size()) {
    if (content[i] == '\n') {
      ++line;
      ++i;
      if (at_fence(i)) {
        in_code_fence = !in_code_fence;
        skip_fence_line();
      }
      continue;
    }
    if (in_code_fence) {
      ++i;
      continue;
    }
    if (content[i] == '`') {
      // Skip inline code spans.
      const size_t close = content.find('`', i + 1);
      if (close == std::string::npos) break;
      for (size_t j = i; j < close; ++j) {
        if (content[j] == '\n') ++line;
      }
      i = close + 1;
      continue;
    }
    if (content.compare(i, 2, "](") == 0) {
      const size_t close = content.find(')', i + 2);
      if (close != std::string::npos) {
        LinkRef ref;
        ref.source_file = source_file;
        ref.line = line;
        ref.target = content.substr(i + 2, close - i - 2);
        links.push_back(std::move(ref));
        i = close + 1;
        continue;
      }
    }
    ++i;
  }
  return links;
}

std::vector<std::string> HeadingAnchors(const std::string& content) {
  std::vector<std::string> anchors;
  std::map<std::string, int> seen;
  std::stringstream stream(content);
  std::string line;
  bool in_code_fence = false;
  while (std::getline(stream, line)) {
    if (line.rfind("```", 0) == 0) {
      in_code_fence = !in_code_fence;
      continue;
    }
    if (in_code_fence || line.empty() || line[0] != '#') continue;
    size_t level = 0;
    while (level < line.size() && line[level] == '#') ++level;
    if (level >= line.size() || line[level] != ' ') continue;
    std::string slug = Slugify(line.substr(level + 1));
    const int count = seen[slug]++;
    if (count > 0) slug += "-" + std::to_string(count);
    anchors.push_back(std::move(slug));
  }
  return anchors;
}

std::vector<BrokenLink> CheckLinks(const std::string& root,
                                   const std::vector<std::string>& documents) {
  std::vector<BrokenLink> broken;
  // Anchor cache per target markdown file (repo-relative path).
  std::map<std::string, std::vector<std::string>> anchor_cache;
  auto anchors_of = [&](const std::string& relative)
      -> const std::vector<std::string>* {
    auto it = anchor_cache.find(relative);
    if (it == anchor_cache.end()) {
      bool ok = false;
      const std::string content =
          ReadFile(std::filesystem::path(root) / relative, &ok);
      if (!ok) return nullptr;
      it = anchor_cache.emplace(relative, HeadingAnchors(content)).first;
    }
    return &it->second;
  };

  for (const std::string& document : documents) {
    bool ok = false;
    const std::string content =
        ReadFile(std::filesystem::path(root) / document, &ok);
    if (!ok) {
      broken.push_back({{document, 0, document}, "missing file"});
      continue;
    }
    const std::string directory =
        std::filesystem::path(document).parent_path().string();
    for (const LinkRef& ref : ScanMarkdownLinks(document, content)) {
      if (IsExternal(ref.target) || ref.target.empty()) continue;
      std::string path = ref.target;
      std::string anchor;
      const size_t hash = path.find('#');
      if (hash != std::string::npos) {
        anchor = path.substr(hash + 1);
        path = path.substr(0, hash);
      }
      // Resolve the file part relative to the linking document.
      std::string resolved = document;  // "#anchor" links stay in-file.
      if (!path.empty()) {
        resolved = NormalizePath(directory.empty() ? path
                                                   : directory + "/" + path);
        if (!std::filesystem::exists(std::filesystem::path(root) /
                                     resolved)) {
          broken.push_back({ref, "missing file"});
          continue;
        }
      }
      if (anchor.empty()) continue;
      if (std::filesystem::path(resolved).extension() != ".md") continue;
      const std::vector<std::string>* anchors = anchors_of(resolved);
      if (anchors == nullptr) {
        broken.push_back({ref, "missing file"});
        continue;
      }
      bool found = false;
      for (const std::string& candidate : *anchors) {
        if (candidate == anchor) {
          found = true;
          break;
        }
      }
      if (!found) broken.push_back({ref, "missing anchor"});
    }
  }
  return broken;
}

}  // namespace skyrise::doccheck
