/// trace_check: validates an exported Chrome trace-event JSON file against
/// the structural invariants of the tracing subsystem AND against the schema
/// documented in DESIGN.md §10 (the block between `<!-- trace-schema:begin
/// -->` and `<!-- trace-schema:end -->`). CI runs it on the chaos_demo
/// trace, so the documented schema and the emitted JSON cannot drift apart.
///
/// Checks:
///   1. Document structure: displayTimeUnit/metadata/traceEvents, metadata
///      clock/seed/span_count/attributed_usd, per-event required fields by
///      phase ("M" metadata, "X" complete slice, "i" instant).
///   2. Span-tree consistency: unique ids, parents precede children,
///      span_count matches.
///   3. Lane nesting: "X" slices sharing a (pid, tid) lane nest properly
///      (no partial overlap), so Perfetto renders them as a clean stack.
///   4. Cost reconciliation: per-category sums of args.cost_usd match the
///      metadata.attributed_usd buckets.
///   5. Schema conformance, field-for-field: every observed field, span arg,
///      and outcome value is documented, and every documented non-optional
///      one (no trailing `?` in the doc table) is observed in the trace.
///
/// Usage: trace_check <trace.json> <DESIGN.md>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/string_util.h"

namespace {

using skyrise::Json;

int g_failures = 0;

void Fail(const std::string& message) {
  std::fprintf(stderr, "trace_check: FAIL: %s\n", message.c_str());
  ++g_failures;
}

/// One documented schema section: token -> optional (trailing '?').
struct SchemaSection {
  std::map<std::string, bool> tokens;

  bool Has(const std::string& token) const { return tokens.count(token) > 0; }
};

struct Schema {
  SchemaSection events;    ///< Document/metadata/event field names.
  SchemaSection args;      ///< Span-specific args keys.
  SchemaSection outcomes;  ///< Outcome vocabulary.
};

/// Extracts the backticked token from a markdown table row ("| `tok` | ..."),
/// or an empty string when the line is not a token row. A `?` immediately
/// after the closing backtick (optional marker) is kept on the token.
std::string RowToken(const std::string& line) {
  const size_t first = line.find('`');
  if (first == std::string::npos || line.rfind("|", first) == std::string::npos)
    return "";
  const size_t second = line.find('`', first + 1);
  if (second == std::string::npos) return "";
  std::string token = line.substr(first + 1, second - first - 1);
  if (second + 1 < line.size() && line[second + 1] == '?') token += '?';
  return token;
}

bool LoadSchema(const std::string& design_path, Schema* schema) {
  std::ifstream in(design_path);
  if (!in.good()) {
    Fail("cannot open " + design_path);
    return false;
  }
  bool inside = false;
  bool found = false;
  SchemaSection* section = nullptr;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("<!-- trace-schema:begin -->") != std::string::npos) {
      inside = true;
      found = true;
      continue;
    }
    if (line.find("<!-- trace-schema:end -->") != std::string::npos) break;
    if (!inside) continue;
    if (line.find("<!-- trace-schema:events -->") != std::string::npos) {
      section = &schema->events;
      continue;
    }
    if (line.find("<!-- trace-schema:args -->") != std::string::npos) {
      section = &schema->args;
      continue;
    }
    if (line.find("<!-- trace-schema:outcomes -->") != std::string::npos) {
      section = &schema->outcomes;
      continue;
    }
    if (section == nullptr || line.rfind("| `", 0) != 0) continue;
    std::string token = RowToken(line);
    if (token.empty()) continue;
    bool optional = false;
    if (token.back() == '?') {
      optional = true;
      token.pop_back();
    }
    section->tokens[token] = optional;
  }
  if (!found) Fail("no <!-- trace-schema:begin --> block in " + design_path);
  return found;
}

struct Observed {
  std::set<std::string> fields;
  std::set<std::string> args;
  std::set<std::string> outcomes;
};

void CheckCoverage(const SchemaSection& documented,
                   const std::set<std::string>& observed,
                   const std::string& what) {
  for (const std::string& token : observed) {
    if (!documented.Has(token)) {
      Fail("emitted " + what + " `" + token + "` is not documented in the "
           "trace-schema block");
    }
  }
  for (const auto& [token, optional] : documented.tokens) {
    if (!optional && observed.count(token) == 0) {
      Fail("documented " + what + " `" + token +
           "` never appears in the trace (mark it optional with a trailing "
           "`?` or emit it)");
    }
  }
}

struct Slice {
  int64_t ts = 0;
  int64_t dur = 0;
  int64_t span = 0;
};

void CheckLaneNesting(std::map<std::pair<int64_t, int64_t>,
                               std::vector<Slice>>* lanes) {
  for (auto& [lane, slices] : *lanes) {
    std::sort(slices.begin(), slices.end(), [](const Slice& a,
                                               const Slice& b) {
      if (a.ts != b.ts) return a.ts < b.ts;
      if (a.dur != b.dur) return a.dur > b.dur;
      return a.span < b.span;
    });
    std::vector<int64_t> stack;  // End times of enclosing slices.
    for (const Slice& slice : slices) {
      while (!stack.empty() && stack.back() <= slice.ts) stack.pop_back();
      if (!stack.empty() && slice.ts + slice.dur > stack.back()) {
        Fail(skyrise::StrFormat(
            "span %lld overlaps but does not nest on pid %lld tid %lld",
            static_cast<long long>(slice.span),
            static_cast<long long>(lane.first),
            static_cast<long long>(lane.second)));
      }
      stack.push_back(slice.ts + slice.dur);
    }
  }
}

int Run(const std::string& trace_path, const std::string& design_path) {
  Schema schema;
  if (!LoadSchema(design_path, &schema)) return 1;

  std::ifstream in(trace_path);
  if (!in.good()) {
    Fail("cannot open " + trace_path);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto doc = Json::Parse(buffer.str());
  if (!doc.ok()) {
    Fail("trace is not valid JSON: " + doc.status().ToString());
    return 1;
  }

  Observed observed;

  // --- Document structure. ---
  if (!doc->is_object()) {
    Fail("top-level trace document must be a JSON object");
    return 1;
  }
  for (const auto& [key, value] : doc->AsObject()) observed.fields.insert(key);
  if (doc->GetString("displayTimeUnit") != "ms") {
    Fail("displayTimeUnit must be \"ms\"");
  }
  const Json& metadata = doc->Get("metadata");
  if (!metadata.is_object()) {
    Fail("metadata must be an object");
  } else {
    for (const auto& [key, value] : metadata.AsObject()) {
      observed.fields.insert(key);
    }
    if (metadata.GetString("clock") != "sim_us") {
      Fail("metadata.clock must be \"sim_us\"");
    }
    if (!metadata.Has("seed")) Fail("metadata.seed missing");
    if (!metadata.Get("attributed_usd").is_object()) {
      Fail("metadata.attributed_usd must be an object");
    }
  }

  const Json& events = doc->Get("traceEvents");
  if (!events.is_array()) {
    Fail("traceEvents must be an array");
    return 1;
  }

  // --- Per-event structure. ---
  std::set<int64_t> span_ids;
  std::map<int64_t, int64_t> parent_of;
  std::map<std::string, double> cost_by_category;
  std::map<std::pair<int64_t, int64_t>, std::vector<Slice>> lanes;
  int64_t slice_count = 0;
  int64_t instant_count = 0;
  for (const Json& event : events.AsArray()) {
    if (!event.is_object()) {
      Fail("trace event is not an object");
      continue;
    }
    for (const auto& [key, value] : event.AsObject()) {
      observed.fields.insert(key);
    }
    const std::string ph = event.GetString("ph");
    if (ph == "M") {
      const std::string name = event.GetString("name");
      if (name != "process_name" && name != "thread_name") {
        Fail("metadata event with unexpected name `" + name + "`");
      }
      if (!event.Get("args").Has("name")) {
        Fail("metadata event without args.name");
      }
      continue;
    }
    if (ph != "X" && ph != "i") {
      Fail("unexpected event phase `" + ph + "`");
      continue;
    }
    const Json& args = event.Get("args");
    if (!args.is_object()) {
      Fail("span event without args object");
      continue;
    }
    for (const auto& [key, value] : args.AsObject()) {
      if (key == "span" || key == "parent" || key == "cost_usd" ||
          key == "outcome") {
        observed.fields.insert(key);
      } else {
        observed.args.insert(key);
      }
    }
    const int64_t span = args.GetInt("span", -1);
    const int64_t parent = args.GetInt("parent", -1);
    if (span <= 0) Fail("span event with non-positive args.span");
    if (parent < 0) Fail("span event without args.parent");
    if (!span_ids.insert(span).second) {
      Fail(skyrise::StrFormat("duplicate span id %lld",
                              static_cast<long long>(span)));
    }
    parent_of[span] = parent;
    if (ph == "i") {
      ++instant_count;
      if (event.GetString("s") != "t") {
        Fail("instant event must have thread scope (s == \"t\")");
      }
      continue;
    }
    ++slice_count;
    const int64_t dur = event.GetInt("dur", -1);
    if (dur < 0) Fail("X event without a non-negative dur");
    const std::string outcome = args.GetString("outcome");
    if (outcome.empty()) {
      Fail("X event without args.outcome");
    } else {
      observed.outcomes.insert(outcome);
    }
    cost_by_category[event.GetString("cat")] += args.GetDouble("cost_usd");
    lanes[{event.GetInt("pid", -1), event.GetInt("tid", -1)}].push_back(
        Slice{event.GetInt("ts", 0), dur, span});
  }

  // --- Span-tree consistency. ---
  const int64_t span_count = metadata.GetInt("span_count", -1);
  if (span_count != static_cast<int64_t>(span_ids.size())) {
    Fail(skyrise::StrFormat(
        "metadata.span_count (%lld) != distinct span events (%lld)",
        static_cast<long long>(span_count),
        static_cast<long long>(span_ids.size())));
  }
  for (const auto& [span, parent] : parent_of) {
    if (parent == 0) continue;
    if (span_ids.count(parent) == 0) {
      Fail(skyrise::StrFormat("span %lld has unknown parent %lld",
                              static_cast<long long>(span),
                              static_cast<long long>(parent)));
    } else if (parent >= span) {
      Fail(skyrise::StrFormat("span %lld has parent %lld opened after it",
                              static_cast<long long>(span),
                              static_cast<long long>(parent)));
    }
  }

  CheckLaneNesting(&lanes);

  // --- Cost reconciliation. ---
  if (metadata.Get("attributed_usd").is_object()) {
    double bucket_total = 0;
    for (const auto& [bucket, usd] : metadata.Get("attributed_usd")
                                         .AsObject()) {
      bucket_total += usd.AsDouble();
      const double span_sum = cost_by_category.count(bucket) > 0
                                  ? cost_by_category[bucket]
                                  : 0.0;
      if (std::fabs(span_sum - usd.AsDouble()) > 1e-9) {
        Fail(skyrise::StrFormat(
            "category %s: per-span cost sum %.12f != attributed bucket %.12f",
            bucket.c_str(), span_sum, usd.AsDouble()));
      }
    }
    for (const auto& [category, sum] : cost_by_category) {
      if (sum > 0 &&
          !metadata.Get("attributed_usd").Has(category)) {
        Fail("category " + category +
             " carries span costs but has no attributed_usd bucket");
      }
    }
    (void)bucket_total;
  }

  // --- Schema conformance (both directions). ---
  CheckCoverage(schema.events, observed.fields, "field");
  CheckCoverage(schema.args, observed.args, "span arg");
  CheckCoverage(schema.outcomes, observed.outcomes, "outcome");

  if (g_failures > 0) {
    std::fprintf(stderr, "trace_check: %d failure(s) in %s\n", g_failures,
                 trace_path.c_str());
    return 1;
  }
  std::printf(
      "trace_check: OK — %lld slices, %lld instants, %zu distinct span "
      "args, schema in sync with %s\n",
      static_cast<long long>(slice_count),
      static_cast<long long>(instant_count), observed.args.size(),
      design_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: trace_check <trace.json> <DESIGN.md>\n");
    return 2;
  }
  return Run(argv[1], argv[2]);
}
