/// Reproduces Fig. 13: S3 scaling down from five prefix partitions to one
/// under hourly and daily measurement patterns. Two separately warmed
/// buckets are probed with short bursts of ~30K offered IOPS; the highest
/// observed IOPS per interval indicates the number of surviving partitions.

#include <cstdio>

#include "common/string_util.h"

#include "platform/report.h"
#include "platform/storage_io.h"
#include "platform/testbed.h"

using namespace skyrise;

namespace {

double Probe(platform::Testbed* bed, storage::ObjectStore* bucket,
             uint64_t seed) {
  // Three short repetitions of the largest-scale configuration; take the
  // highest observed IOPS.
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {
    platform::StorageIoConfig config;
    config.clients = 32;             // ~1K slots: offered load well above
    config.threads_per_client = 32;  // five partitions' capacity.
    config.request_bytes = kKiB;
    config.duration = Seconds(3);
    config.object_count = 2048;
    config.use_fabric = false;
    config.rng_stream = 0xE000 + seed * 17 + static_cast<uint64_t>(rep);
    auto result =
        platform::RunStorageIo(&bed->env, &bed->fabric_driver, bucket, config);
    best = std::max(best, result.SuccessIops());
    bed->env.RunUntil(bed->env.now() + Seconds(20));
  }
  return best;
}

void RunPattern(const char* label, SimDuration interval, SimDuration horizon) {
  platform::Testbed bed(1313);
  auto options = storage::ObjectStore::StandardOptions();
  options.read_burst_tokens = 2000;  // Modest burst: probes read capacity.
  storage::ObjectStore bucket(&bed.env, options, 3300);
  bucket.SetPartitionCount(5);  // Warmed by the Fig. 11 experiment.

  std::printf("\n%s measurement pattern:\n", label);
  platform::TablePrinter table(
      {"elapsed", "peak probe IOPS", "inferred partitions"});
  for (SimTime t = 0; t <= horizon; t += interval) {
    bed.env.RunUntil(t);
    const double iops = Probe(&bed, &bucket, static_cast<uint64_t>(t / interval));
    const int inferred =
        std::max(1, static_cast<int>(iops / 5500.0 + 0.35));
    table.AddRow({FormatDuration(t), StrFormat("%.0f", iops),
                  StrFormat("%d (actual %d)", inferred,
                            bucket.partition_count())});
  }
  table.Print();
}

}  // namespace

int main() {
  platform::PrintHeader("Figure 13",
                        "S3 downscaling from five to one prefix partitions");
  RunPattern("Daily", Hours(24), Hours(144));
  RunPattern("Hourly (every 8h shown)", Hours(8), Hours(136));
  std::printf(
      "\nShape (paper): after a full idle day all five partitions remain;\n"
      "two of the five stay available for roughly three more days before\n"
      "IOPS returns to a single partition's level — the full downscaling\n"
      "takes four to five days under both probe frequencies. IOPS scaling\n"
      "is therefore a relevant optimization even for hourly/daily\n"
      "workloads.\n");
  return 0;
}
