/// Reproduces Fig. 9: operations per second and container-level quotas for
/// each serverless storage system on freshly created buckets/tables/
/// filesystems (1 KiB requests, up to 128 nodes x 32 threads). EFS is shown
/// with one (EFS-1) and two (EFS-2) filesystems.

#include <cstdio>

#include "common/string_util.h"

#include "platform/report.h"
#include "platform/storage_io.h"
#include "platform/testbed.h"

using namespace skyrise;

namespace {

platform::StorageIoResult Measure(storage::ObjectStore* service,
                                  sim::SimEnvironment* env,
                                  net::FabricDriver* driver, bool write,
                                  int clients, SimDuration duration,
                                  uint64_t seed) {
  platform::StorageIoConfig config;
  config.clients = clients;
  config.threads_per_client = 32;
  config.request_bytes = kKiB;
  config.write = write;
  config.duration = duration;
  config.object_count = 4096;
  config.use_fabric = false;  // 1 KiB requests are latency-bound.
  config.rng_stream = 0xC000 + seed;
  return platform::RunStorageIo(env, driver, service, config);
}

}  // namespace

int main() {
  platform::PrintHeader(
      "Figure 9", "Storage IOPS vs documented container-level quotas");
  platform::TablePrinter table({"system", "read IOPS", "read quota",
                                "write IOPS", "write quota"});

  struct Service {
    const char* label;
    storage::ObjectStore::Options options;
    int clients;           // Enough offered load to exceed the quota.
    SimDuration duration;  // The paper's <5 min repetition windows.
  };
  const Service services[] = {
      {"S3 Standard", storage::ObjectStore::StandardOptions(), 16,
       Seconds(15)},
      {"S3 Express", storage::ObjectStore::ExpressOptions(), 64, Seconds(10)},
      {"DynamoDB", storage::ObjectStore::DynamoDbOptions(), 16, Seconds(15)},
      {"EFS-1", storage::ObjectStore::EfsOptions(), 16, Seconds(15)},
  };
  uint64_t seed = 100;
  for (const auto& service : services) {
    platform::Testbed read_bed(seed += 3), write_bed(seed += 3);
    storage::ObjectStore read_service(&read_bed.env, service.options, 2100);
    storage::ObjectStore write_service(&write_bed.env, service.options, 2101);
    auto reads = Measure(&read_service, &read_bed.env, &read_bed.fabric_driver,
                         false, service.clients, service.duration, seed);
    auto writes =
        Measure(&write_service, &write_bed.env, &write_bed.fabric_driver,
                true, service.clients, service.duration, seed + 1);
    const auto& o = service.options;
    const double read_quota =
        o.documented_read_iops > 0
            ? o.documented_read_iops
            : (o.partitioned ? o.partition_read_iops : o.bucket_read_iops);
    const double write_quota =
        o.documented_write_iops > 0
            ? o.documented_write_iops
            : (o.partitioned ? o.partition_write_iops : o.bucket_write_iops);
    table.AddRow({service.label, StrFormat("%.0f", reads.SuccessIops()),
                  StrFormat("%.0f", read_quota),
                  StrFormat("%.0f", writes.SuccessIops()),
                  StrFormat("%.0f", write_quota)});
  }
  // EFS-2: shard the load over two filesystems.
  {
    double read_iops = 0, write_iops = 0;
    for (int shard = 0; shard < 2; ++shard) {
      platform::Testbed bed(seed += 3);
      storage::ObjectStore fs(&bed.env, storage::ObjectStore::EfsOptions(),
                              2200 + static_cast<uint64_t>(shard));
      read_iops += Measure(&fs, &bed.env, &bed.fabric_driver, false, 16,
                           Seconds(15), seed + 10)
                       .SuccessIops();
      platform::Testbed wbed(seed += 3);
      storage::ObjectStore wfs(&wbed.env, storage::ObjectStore::EfsOptions(),
                               2300 + static_cast<uint64_t>(shard));
      write_iops += Measure(&wfs, &wbed.env, &wbed.fabric_driver, true, 16,
                            Seconds(15), seed + 11)
                        .SuccessIops();
    }
    table.AddRow({"EFS-2 (sharded)", StrFormat("%.0f", read_iops), "2x 250000",
                  StrFormat("%.0f", write_iops), "2x 50000"});
  }
  table.Print();

  std::printf(
      "\nShape (paper): S3 Standard lands just above its per-prefix quota\n"
      "(~8K reads / ~4K writes, thanks to fresh-partition burst); S3\n"
      "Express is unconstrained by partition quotas (~220K/42K). DynamoDB\n"
      "slightly exceeds its new-table quotas (~16K/9.6K). EFS misses its\n"
      "documented per-filesystem quotas by more than an order of magnitude;\n"
      "read IOPS double by sharding over two filesystems.\n");
  return 0;
}
